// Quickstart: generate a small synthetic LIDAR dataset in a temp directory,
// bulk-load it into the spatially-enabled column store, and run a spatial
// selection both through the engine API and through SQL.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"gisnav/internal/dataset"
	"gisnav/internal/geom"
	"gisnav/internal/sql"
)

func main() {
	dir, err := os.MkdirTemp("", "gisnav-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Generate the demo datasets: LIDAR tiles + OSM-like + UA-like vectors.
	info, err := dataset.Generate(dir, dataset.Params{
		Region: geom.NewEnvelope(0, 0, 1000, 1000),
		TilesX: 2, TilesY: 2,
		Density: 0.2, // 0.2 pts/m² → ~200k points
		UACells: 16,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d LIDAR points, %d OSM features, %d UA zones\n",
		info.Points, info.OSM, info.UA)

	// 2. Bulk-load through the binary COPY path (paper §3.2).
	db, st, err := dataset.Load(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %s (%.0f points/s)\n",
		st.Total().Round(time.Millisecond), st.PointsPerSecond())

	// 3. Engine API: filter-refine spatial selection (paper §3.3).
	pc, err := db.PointCloud(dataset.TableCloud)
	if err != nil {
		log.Fatal(err)
	}
	box := geom.NewEnvelope(200, 200, 450, 400)
	sel := pc.SelectBox(box)
	fmt.Printf("\npoints in %s: %d\n", box, len(sel.Rows))
	fmt.Println("operator trace of the first query (imprints build included):")
	fmt.Print(sel.Explain.String())

	// 4. The same through SQL, plus an aggregate.
	exec := sql.New(db)
	res, err := exec.Query(`
		SELECT count(*) AS n, avg(z) AS mean_z, max(z) AS max_z
		FROM ahn2
		WHERE ST_Contains(ST_MakeEnvelope(200, 200, 450, 400), ST_Point(x, y))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSQL: n=%s mean_z=%s max_z=%s\n",
		res.Rows[0][0], res.Rows[0][1], res.Rows[0][2])

	// 5. A thematic + spatial combination: buildings only.
	res2, err := exec.Query(`
		SELECT count(*) FROM ahn2
		WHERE ST_Contains(ST_MakeEnvelope(200, 200, 450, 400), ST_Point(x, y))
		  AND classification = 6`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("of which building returns: %s\n", res2.Rows[0][0])

	// 6. Imprint statistics — the secondary index the paper champions.
	sx, sy := pc.ImprintStats()
	fmt.Printf("\nimprints: x %.1f%% overhead %.0fx compression, y %.1f%% overhead %.0fx compression\n",
		sx.OverheadPercent, sx.CompressionRatio, sy.OverheadPercent, sy.CompressionRatio)
}

// Imprints lab: a guided tour of the column imprints secondary index
// (SIGMOD'13; paper §2.1.1) — how the bins are placed, how the cacheline
// dictionary compresses clustered data, how candidate sets shrink with more
// bins, and why imprints stay robust on shuffled (unclustered) input.
//
// Run with:
//
//	go run ./examples/imprints_lab
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"gisnav/internal/bench"
	"gisnav/internal/colstore"
	"gisnav/internal/imprints"
)

func main() {
	const n = 1_000_000

	// Three value distributions over the same domain.
	sorted := make([]float64, n)
	for i := range sorted {
		sorted[i] = float64(i) / 100 // strictly increasing: perfect clustering
	}
	rng := rand.New(rand.NewSource(1))
	clustered := make([]float64, n) // locally clustered: random walk
	v := 5000.0
	for i := range clustered {
		v += rng.NormFloat64() * 2
		clustered[i] = v
	}
	shuffled := append([]float64(nil), sorted...)
	rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	fmt.Println("-- 1. build anatomy on 1M float64 values")
	tbl := bench.NewTable("", "distribution", "build", "lines", "stored vectors", "compression", "overhead")
	cols := map[string][]float64{}
	for _, c := range []struct {
		name string
		vals []float64
	}{{"sorted", sorted}, {"random walk", clustered}, {"shuffled", shuffled}} {
		var im *imprints.Imprints
		d := bench.Measure(func() {
			var err error
			im, err = imprints.Build(c.vals, imprints.Options{})
			if err != nil {
				log.Fatal(err)
			}
		})
		s := im.Stats()
		tbl.AddRow(c.name, d, s.Lines, s.Vectors,
			fmt.Sprintf("%.1fx", s.CompressionRatio),
			fmt.Sprintf("%.2f%%", s.OverheadPercent))
		cols[c.name] = c.vals
	}
	fmt.Print(tbl.String())

	fmt.Println("\n-- 2. candidate fraction vs number of bins (1% range query)")
	tbl2 := bench.NewTable("", "bins", "sorted", "random walk", "shuffled")
	for _, bits := range []int{8, 16, 32, 64} {
		row := []any{bits}
		for _, name := range []string{"sorted", "random walk", "shuffled"} {
			im, err := imprints.Build(cols[name], imprints.Options{Bits: bits})
			if err != nil {
				log.Fatal(err)
			}
			lo := quantile(cols[name], 0.45)
			hi := quantile(cols[name], 0.46)
			row = append(row, fmt.Sprintf("%.3f", im.CandidateFraction(lo, hi)))
		}
		tbl2.AddRow(row...)
	}
	fmt.Print(tbl2.String())

	fmt.Println("\n-- 3. the exactness invariant (superset property)")
	im, err := imprints.Build(clustered, imprints.Options{})
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := quantile(clustered, 0.30), quantile(clustered, 0.31)
	ranges := im.CandidateRanges(lo, hi)
	matches, covered := 0, 0
	for i, val := range clustered {
		if val >= lo && val <= hi {
			matches++
			for _, r := range ranges {
				if i >= r.Start && i < r.End {
					covered++
					break
				}
			}
		}
	}
	fmt.Printf("range [%.1f, %.1f]: %d true matches, %d inside candidate ranges (must be equal)\n",
		lo, hi, matches, covered)
	if matches != covered {
		log.Fatal("superset invariant violated!")
	}
	fmt.Printf("candidate rows: %d of %d (%.2f%% of the column touched)\n",
		total(ranges), n, 100*float64(total(ranges))/float64(n))
}

func quantile(vals []float64, q float64) float64 {
	cp := append([]float64(nil), vals...)
	sort.Float64s(cp)
	return cp[int(q*float64(len(cp)-1))]
}

func total(rs []colstore.Range) int { return colstore.RangesLen(rs) }

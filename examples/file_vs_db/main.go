// File vs DB: the paper's first demo scenario (§4.1). The same clip queries
// run against (a) the file-based workflow — header pruning, then lasindex
// partial reads after a lassort+lasindex ETL pass — and (b) the column
// store's imprints + regular-grid filter–refine pipeline. The functional
// gap is shown too: the ad-hoc thematic query only the DBMS can express.
//
// Run with:
//
//	go run ./examples/file_vs_db
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"gisnav/internal/bench"
	"gisnav/internal/dataset"
	"gisnav/internal/geom"
	"gisnav/internal/lastools"
	"gisnav/internal/sfc"
	"gisnav/internal/sql"
)

func main() {
	dir, err := os.MkdirTemp("", "gisnav-filevsdb-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	if _, err := dataset.Generate(dir, dataset.Params{
		Region: geom.NewEnvelope(0, 0, 1500, 1500),
		TilesX: 3, TilesY: 3,
		Density: 0.1,
		UACells: 16,
		Seed:    3,
	}); err != nil {
		log.Fatal(err)
	}

	// --- file-based side: ETL (lassort + lasindex), then clip ------------
	repo, err := dataset.Repo(dir)
	if err != nil {
		log.Fatal(err)
	}
	etl := bench.Measure(func() {
		for _, f := range repo.Files() {
			if err := lastools.SortFile(f, sfc.Hilbert); err != nil {
				log.Fatal(err)
			}
			if err := lastools.IndexFile(f, 4096); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err := repo.ScanMetadata(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file-based ETL (lassort + lasindex over %d tiles): %s\n",
		len(repo.Files()), etl.Round(time.Millisecond))

	// --- DBMS side: binary bulk load -------------------------------------
	db, st, err := dataset.Load(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DBMS binary bulk load: %s (%s)\n\n",
		st.Total().Round(time.Millisecond), bench.Throughput(st.Points, st.Total()))

	pc, err := db.PointCloud(dataset.TableCloud)
	if err != nil {
		log.Fatal(err)
	}
	pc.EnsureImprints()

	// --- performance comparison: clip queries -----------------------------
	tbl := bench.NewTable("clip performance (mean of 5 runs)",
		"query box", "file-based (lasindex)", "column store", "matches")
	for _, box := range []geom.Envelope{
		geom.NewEnvelope(100, 100, 200, 200),
		geom.NewEnvelope(300, 300, 700, 700),
		geom.NewEnvelope(0, 0, 1200, 600),
	} {
		var fileMatches int
		dFile := bench.MeasureN(5, func() {
			pts, _, err := repo.ClipBox(box)
			if err != nil {
				log.Fatal(err)
			}
			fileMatches = len(pts)
		})
		var dbMatches int
		dDB := bench.MeasureN(5, func() {
			dbMatches = len(pc.SelectBox(box).Rows)
		})
		if fileMatches != dbMatches {
			log.Fatalf("result mismatch: file %d vs db %d", fileMatches, dbMatches)
		}
		tbl.AddRow(box.String(), dFile, dDB, dbMatches)
	}
	tbl.WriteTo(os.Stdout)

	// --- functional comparison --------------------------------------------
	fmt.Println("\nfunctional comparison:")
	fmt.Println("  file-based: clip by box/polygon over ONE dataset at a time")
	fmt.Println("  DBMS:       ad-hoc SQL over LIDAR + OSM + UA together, e.g.:")
	exec := sql.New(db)
	q := `SELECT count(*) AS ground_near_rivers
	      FROM ahn2, osm
	      WHERE osm.class = 'river'
	        AND ST_DWithin(osm.geom, ST_Point(ahn2.x, ahn2.y), 40)
	        AND classification = 2`
	res, err := exec.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  ground returns within 40 m of a river: %s\n", res.Rows[0][0])
	fmt.Println("  (no LAStools pipeline expresses this without custom code)")
}

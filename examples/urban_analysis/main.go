// Urban analysis: the paper's second demo scenario (§4.2). A spatially
// enabled DBMS lets analysts combine the LIDAR cloud with the Urban Atlas
// land-use coverage and the OSM road network in ad-hoc declarative queries:
//
//   - "select all LIDAR points that are near an area characterised as a
//     fast transit road according to the Urban Atlas nomenclature"
//   - "compute the average elevation of those points"
//   - noise-wall screening: points 3-8 m above ground near motorways
//   - densely populated zones and the buildings inside them
//
// Run with:
//
//	go run ./examples/urban_analysis
package main

import (
	"fmt"
	"log"
	"os"

	"gisnav/internal/dataset"
	"gisnav/internal/geom"
	"gisnav/internal/sql"
)

func main() {
	dir, err := os.MkdirTemp("", "gisnav-urban-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	if _, err := dataset.Generate(dir, dataset.Params{
		Region: geom.NewEnvelope(0, 0, 2000, 2000),
		TilesX: 2, TilesY: 2,
		Density: 0.1,
		UACells: 32,
		Seed:    7,
	}); err != nil {
		log.Fatal(err)
	}
	db, _, err := dataset.Load(dir)
	if err != nil {
		log.Fatal(err)
	}
	exec := sql.New(db)

	queries := []struct {
		title string
		sql   string
	}{
		{
			"points near fast-transit land (UA code 12210)",
			`SELECT count(*) AS points
			 FROM ahn2, ua
			 WHERE ua.class = '12210'
			   AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 25)`,
		},
		{
			"average elevation of those points",
			`SELECT avg(z) AS mean_elevation, min(z) AS lowest, max(z) AS highest
			 FROM ahn2, ua
			 WHERE ua.class = '12210'
			   AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 25)`,
		},
		{
			"vegetation returns near fast-transit land (noise screening)",
			`SELECT count(*) AS veg_points
			 FROM ahn2, ua
			 WHERE ua.class = '12210'
			   AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 25)
			   AND classification = 5`,
		},
		{
			"how much land is fast-transit, by zone count and area",
			`SELECT count(*) AS zones, sum(ST_Area(geom)) AS total_area
			 FROM ua WHERE class = '12210'`,
		},
		{
			"the five densest land-use zones",
			`SELECT name, pop_density
			 FROM ua ORDER BY pop_density DESC LIMIT 5`,
		},
		{
			"points inside continuous urban fabric higher than 20 m (towers)",
			`SELECT count(*) AS tower_points
			 FROM ahn2, ua
			 WHERE ua.class = '11100'
			   AND ST_Contains(ua.geom, ST_Point(ahn2.x, ahn2.y))
			   AND z > 20`,
		},
		{
			"per-class breakdown of a viewport (the navigation histogram)",
			`SELECT classification, count(*) AS points, avg(z) AS mean_z
			 FROM ahn2
			 WHERE ST_Contains(ST_MakeEnvelope(400, 400, 1400, 1400), ST_Point(x, y))
			 GROUP BY classification`,
		},
		{
			"zone count and mean density per land-use class",
			`SELECT class, count(*) AS zones, avg(pop_density) AS density
			 FROM ua GROUP BY class ORDER BY zones DESC LIMIT 5`,
		},
	}

	for i, q := range queries {
		fmt.Printf("-- Q%d: %s\n", i+1, q.title)
		res, err := exec.Query(q.sql)
		if err != nil {
			log.Fatalf("Q%d: %v", i+1, err)
		}
		for _, row := range res.Rows {
			for j, col := range res.Columns {
				if j > 0 {
					fmt.Print("  ")
				}
				fmt.Printf("%s=%s", col, row[j])
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// The per-operator trace of the headline query — what the demo lets the
	// audience inspect.
	res, err := exec.Query(queries[1].sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- per-operator execution trace of Q2:")
	fmt.Print(res.Explain.String())

	// Panning the viewport histogram: the same GROUP BY statement with a
	// slid bbox goes through Executor.Query, so the second step is a
	// shape-cache hit that re-binds the cached grouped plan instead of
	// re-planning — the trace's leading "plan" step says "rebound" and the
	// "group" step reports the vectorized strategy (dense: the class column
	// is a u8 key served by array-indexed accumulator banks).
	fmt.Println()
	fmt.Println("-- panning the viewport histogram (cached grouped plan):")
	pan := `SELECT classification, count(*) AS points, avg(z) AS mean_z
	        FROM ahn2
	        WHERE ST_Contains(ST_MakeEnvelope(600, 500, 1600, 1500), ST_Point(x, y))
	        GROUP BY classification`
	res, err = exec.Query(pan)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Explain.Steps {
		if s.Op == "plan" || s.Op == "group" {
			fmt.Printf("  %-6s %s\n", s.Op, s.Detail)
		}
	}
	st := exec.StmtCacheStats()
	fmt.Printf("  stmt cache: %d shapes, %d hits (%d shape hits, %d rebinds, %d front hits)\n",
		st.Entries, st.Hits, st.ShapeHits, st.Rebinds, st.FrontHits)
}

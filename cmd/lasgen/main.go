// Command lasgen generates the synthetic demo datasets: a tiled LIDAR scan
// of the "mini Netherlands" terrain model (the AHN2 stand-in), an OSM-like
// vector layer and an Urban-Atlas-like land-use coverage.
//
// Usage:
//
//	lasgen -out data -size 4000 -tiles 4 -density 0.05 [-laz] [-seed 2015]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gisnav/internal/dataset"
	"gisnav/internal/geom"
)

func main() {
	var (
		out     = flag.String("out", "data", "output directory")
		size    = flag.Float64("size", 4000, "region side length in metres")
		tiles   = flag.Int("tiles", 4, "tiles per side (tiles × tiles files)")
		density = flag.Float64("density", 0.05, "points per square metre")
		format  = flag.Int("format", 3, "LAS point format (0-3)")
		laz     = flag.Bool("laz", false, "write compressed LAZ-sim tiles")
		uaCells = flag.Int("uacells", 40, "Urban Atlas zones per side")
		seed    = flag.Uint64("seed", 2015, "generator seed")
	)
	flag.Parse()

	p := dataset.Params{
		Region:     geom.NewEnvelope(0, 0, *size, *size),
		TilesX:     *tiles,
		TilesY:     *tiles,
		Density:    *density,
		Format:     uint8(*format),
		Compressed: *laz,
		UACells:    *uaCells,
		Seed:       *seed,
	}
	start := time.Now()
	info, err := dataset.Generate(*out, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lasgen:", err)
		os.Exit(1)
	}
	fmt.Printf("dataset written to %s in %s\n", info.Dir, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  region : %s\n", info.Region)
	fmt.Printf("  lidar  : %d points in %d tiles\n", info.Points, info.Tiles)
	fmt.Printf("  osm    : %d features\n", info.OSM)
	fmt.Printf("  ua     : %d land-use zones\n", info.UA)
}

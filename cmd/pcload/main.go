// Command pcload bulk-loads a generated tile directory into the column
// store and reports loading throughput and storage, comparing the paper's
// binary COPY path against the conventional CSV route (§3.2).
//
// Usage:
//
//	pcload -data data [-loader binary|csv|both] [-imprints]
package main

import (
	"flag"
	"fmt"
	"os"

	"gisnav/internal/bench"
	"gisnav/internal/dataset"
	"gisnav/internal/engine"
)

func main() {
	var (
		dir      = flag.String("data", "data", "dataset directory (from lasgen)")
		loader   = flag.String("loader", "binary", "loading path: binary, csv or both")
		imprints = flag.Bool("imprints", true, "build coordinate imprints after loading")
		saveDir  = flag.String("save", "", "persist the loaded table to this directory")
	)
	flag.Parse()

	repo, err := dataset.Repo(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcload:", err)
		os.Exit(1)
	}
	if len(repo.Files()) == 0 {
		fmt.Fprintln(os.Stderr, "pcload: no tiles found; run lasgen first")
		os.Exit(1)
	}

	runs := []string{*loader}
	if *loader == "both" {
		runs = []string{"binary", "csv"}
	}
	tbl := bench.NewTable("bulk load ("+fmt.Sprint(len(repo.Files()))+" tiles)",
		"loader", "points", "convert", "append", "total", "throughput", "staging")
	var lastPC *engine.PointCloud
	for _, mode := range runs {
		pc := engine.NewPointCloud()
		var st engine.LoadStats
		var err error
		switch mode {
		case "binary":
			st, err = engine.LoadBinary(pc, repo)
		case "csv":
			st, err = engine.LoadCSV(pc, repo)
		default:
			fmt.Fprintf(os.Stderr, "pcload: unknown loader %q\n", mode)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcload:", err)
			os.Exit(1)
		}
		tbl.AddRow(mode, st.Points, st.ConvertTime, st.AppendTime, st.Total(),
			bench.Throughput(st.Points, st.Total()), bench.HumanBytes(st.StageBytes))
		lastPC = pc
	}
	tbl.WriteTo(os.Stdout)

	if *imprints && lastPC != nil {
		d := lastPC.EnsureImprints()
		sx, sy := lastPC.ImprintStats()
		fmt.Printf("\nimprints built in %s\n", d)
		fmt.Printf("  x: %d lines, %d vectors, %.1fx compression, %.2f%% overhead\n",
			sx.Lines, sx.Vectors, sx.CompressionRatio, sx.OverheadPercent)
		fmt.Printf("  y: %d lines, %d vectors, %.1fx compression, %.2f%% overhead\n",
			sy.Lines, sy.Vectors, sy.CompressionRatio, sy.OverheadPercent)
		fmt.Printf("  flat table: %s, imprints: %s\n",
			bench.HumanBytes(int64(lastPC.Bytes())), bench.HumanBytes(int64(lastPC.IndexBytes())))
	}

	if *saveDir != "" && lastPC != nil {
		if err := lastPC.Save(*saveDir); err != nil {
			fmt.Fprintln(os.Stderr, "pcload: save:", err)
			os.Exit(1)
		}
		// Re-open to prove the round trip.
		reopened, err := engine.OpenPointCloud(*saveDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcload: reopen:", err)
			os.Exit(1)
		}
		fmt.Printf("\npersisted %d rows to %s and verified reopen\n", reopened.Len(), *saveDir)
	}
}

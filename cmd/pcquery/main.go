// Command pcquery loads a generated dataset and executes SQL against it,
// either one-shot (-q) or as a small REPL on stdin. With -explain every
// query also prints its per-operator execution trace — the view the demo
// exposes in its second scenario (§4.2).
//
// Usage:
//
//	pcquery -data data -q "SELECT count(*) FROM ahn2 WHERE classification = 9"
//	pcquery -data data -explain              # REPL
//	pcquery -data data -timeout 50ms -q "..."  # deadline through QueryContext
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gisnav/internal/bench"
	"gisnav/internal/dataset"
	"gisnav/internal/server"
	"gisnav/internal/sql"
)

func main() {
	var (
		dir      = flag.String("data", "data", "dataset directory (from lasgen)")
		query    = flag.String("q", "", "one-shot query; REPL when empty")
		explain  = flag.Bool("explain", false, "print per-operator execution traces")
		maxRows  = flag.Int("maxrows", 20, "result rows to display")
		timeout  = flag.Duration("timeout", 0, "per-query deadline, wired through QueryContext (0 = none)")
		parallel = flag.Int("parallel", 0, "kernel worker cap per query (<=0 = default: GOMAXPROCS, max 8)")
	)
	flag.Parse()

	db, st, err := dataset.Load(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcquery:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d points from %d tiles in %s (%s)\n",
		st.Points, st.Files, st.Total().Round(time.Millisecond),
		bench.Throughput(st.Points, st.Total()))
	fmt.Printf("tables: %s\n", strings.Join(db.Tables(), ", "))

	exec := sql.New(db)
	exec.SetParallelism(*parallel)
	if *query != "" {
		if err := runOne(exec, *query, *explain, *maxRows, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "pcquery:", describeErr(err))
			os.Exit(1)
		}
		return
	}

	fmt.Println(`enter SQL (empty line or "quit" to exit):`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return
		}
		if err := runOne(exec, line, *explain, *maxRows, *timeout); err != nil {
			fmt.Println("error:", describeErr(err))
		}
	}
}

// describeErr appends the serving layer's stable taxonomy code, so scripts
// driving pcquery can branch on [deadline] / [overloaded] / ... the same
// way HTTP clients branch on the JSON error code.
func describeErr(err error) string {
	return fmt.Sprintf("%v [%s]", err, server.Code(err))
}

func runOne(exec *sql.Executor, q string, explain bool, maxRows int, timeout time.Duration) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := exec.QueryContext(ctx, q)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	tbl := bench.NewTable("", res.Columns...)
	shown := 0
	for _, row := range res.Rows {
		if shown >= maxRows {
			break
		}
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		tbl.AddRow(cells...)
		shown++
	}
	tbl.WriteTo(os.Stdout)
	if len(res.Rows) > shown {
		fmt.Printf("... %d more rows\n", len(res.Rows)-shown)
	}
	fmt.Printf("%d row(s) in %s\n", len(res.Rows), elapsed.Round(time.Microsecond))
	if explain {
		fmt.Println("\nplan:")
		fmt.Print(res.Explain.String())
	}
	return nil
}

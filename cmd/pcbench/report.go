package main

import (
	"encoding/json"
	"os"
	"time"

	"gisnav/internal/engine"
	"gisnav/internal/pyramid"
	"gisnav/internal/sql"
)

// jsonRecord is one measured arm of one experiment — the machine-readable
// counterpart of a result-table row, so successive PRs can diff performance
// trajectories (BENCH_filter.json style).
type jsonRecord struct {
	Experiment string  `json:"experiment"`
	Name       string  `json:"name"`
	Arm        string  `json:"arm"`
	Rows       int     `json:"rows"`
	Matches    int     `json:"matches"`
	NsPerOp    int64   `json:"ns_per_op"`
	Speedup    float64 `json:"speedup,omitempty"` // vs the experiment's baseline arm
	// AllocsPerOp is testing.AllocsPerRun for steady-state arms (the
	// repeated-query fast path's contract is 0); nil when not measured.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// cacheRecord snapshots the statement- and plan-cache counters after one
// experiment, so the trajectory captures hit rates and rebind counts, not
// just latencies — a pan/zoom regression that silently stops rebinding
// shows up here even if the timing noise hides it.
type cacheRecord struct {
	Experiment         string `json:"experiment"`
	StmtEntries        int    `json:"stmt_entries"`
	StmtHits           uint64 `json:"stmt_hits"`
	StmtMisses         uint64 `json:"stmt_misses"`
	StmtShapeHits      uint64 `json:"stmt_shape_hits"`
	StmtRebinds        uint64 `json:"stmt_rebinds"`
	StmtInvalidations  uint64 `json:"stmt_invalidations"`
	StmtFrontHits      uint64 `json:"stmt_front_hits"`
	PlanKernelsCached  int    `json:"plan_kernels_cached"`
	PlanKernelHits     uint64 `json:"plan_kernel_hits"`
	PlanKernelCompiles uint64 `json:"plan_kernel_compiles"`
}

// execRecord snapshots the executor's query-lifecycle counters after one
// experiment (PR 6): admission-gate traffic, sheds, cancellations,
// deadline expiries, recovered panics, and the run-latency estimate the
// deadline shedding compares against.
type execRecord struct {
	Experiment       string `json:"experiment"`
	MaxInFlight      int    `json:"max_in_flight"`
	Admitted         uint64 `json:"admitted"`
	Shed             uint64 `json:"shed"`
	Cancelled        uint64 `json:"cancelled"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	Panicked         uint64 `json:"panicked"`
	EWMARunNanos     int64  `json:"ewma_run_nanos"`
}

// jsonReport accumulates records across experiments and serialises them.
type jsonReport struct {
	Dataset struct {
		Points int    `json:"points"`
		Scale  string `json:"scale"`
		// GOMAXPROCS of the measuring process: the E16 scaling curve is
		// only meaningful up to this count (degrees past it exercise
		// partition queueing, not speedup).
		GOMAXPROCS int `json:"gomaxprocs"`
	} `json:"dataset"`
	GeneratedAt string        `json:"generated_at"`
	Records     []jsonRecord  `json:"records"`
	CacheStats  []cacheRecord `json:"cache_stats,omitempty"`
	ExecStats   []execRecord  `json:"exec_stats,omitempty"`
	// PyramidStats snapshots the pre-aggregation pyramid counters after
	// E18: builds, epoch drops and the interior/boundary tile split, so a
	// routing regression (everything classifying boundary) is visible in
	// the trajectory even when latency noise hides it.
	PyramidStats *pyramid.Stats `json:"pyramid_stats,omitempty"`
}

// add appends one measurement.
func (r *jsonReport) add(experiment, name, arm string, rows, matches int, d time.Duration, speedup float64) {
	r.Records = append(r.Records, jsonRecord{
		Experiment: experiment,
		Name:       name,
		Arm:        arm,
		Rows:       rows,
		Matches:    matches,
		NsPerOp:    d.Nanoseconds(),
		Speedup:    speedup,
	})
}

// addAllocs appends one measurement carrying an allocation count; pass a
// negative allocs for arms where it wasn't measured.
func (r *jsonReport) addAllocs(experiment, name, arm string, rows, matches int, d time.Duration, allocs float64) {
	r.addFull(experiment, name, arm, rows, matches, d, 0, allocs)
}

// addFull appends one measurement with both a speedup (vs the
// experiment's baseline arm; 0 omits it) and an allocation count
// (negative omits it).
func (r *jsonReport) addFull(experiment, name, arm string, rows, matches int, d time.Duration, speedup, allocs float64) {
	r.add(experiment, name, arm, rows, matches, d, speedup)
	if allocs >= 0 {
		r.Records[len(r.Records)-1].AllocsPerOp = &allocs
	}
}

// addCache appends one experiment's cache-counter snapshot.
func (r *jsonReport) addCache(experiment string, ss sql.StmtCacheStats, ps engine.PlanCacheStats) {
	r.CacheStats = append(r.CacheStats, cacheRecord{
		Experiment:         experiment,
		StmtEntries:        ss.Entries,
		StmtHits:           ss.Hits,
		StmtMisses:         ss.Misses,
		StmtShapeHits:      ss.ShapeHits,
		StmtRebinds:        ss.Rebinds,
		StmtInvalidations:  ss.Invalidations,
		StmtFrontHits:      ss.FrontHits,
		PlanKernelsCached:  ps.Entries,
		PlanKernelHits:     ps.Hits,
		PlanKernelCompiles: ps.Misses,
	})
}

// addExec appends one experiment's lifecycle-counter snapshot.
func (r *jsonReport) addExec(experiment string, st sql.ExecStats) {
	r.ExecStats = append(r.ExecStats, execRecord{
		Experiment:       experiment,
		MaxInFlight:      st.MaxInFlight,
		Admitted:         st.Admitted,
		Shed:             st.Shed,
		Cancelled:        st.Cancelled,
		DeadlineExceeded: st.DeadlineExceeded,
		Panicked:         st.Panicked,
		EWMARunNanos:     st.EWMARunNanos,
	})
}

// addPyramid records the pyramid-cache counter snapshot.
func (r *jsonReport) addPyramid(st pyramid.Stats) {
	r.PyramidStats = &st
}

// write dumps the report as indented JSON to path.
func (r *jsonReport) write(path string) error {
	r.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

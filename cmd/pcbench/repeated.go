package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"gisnav/internal/bench"
	"gisnav/internal/dataset"
	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/grid"
	"gisnav/internal/sql"
)

// --- E12: repeated queries ----------------------------------------------------

// expRepeated measures the repeated-query fast path the interactive
// workload lives on (every pan/zoom step re-issues a near-identical
// query): cold first query (index build + kernel compile) against the
// steady state where the plan cache serves compiled kernels and every
// buffer — selection vectors, imprint candidate ranges, grid cell states —
// comes from a pool. The alloc column is testing.AllocsPerRun over the
// steady-state arm; the fast path's contract is 0.
func expRepeated(env *benchEnv, w io.Writer, repeats int) {
	reps := repeats * 5
	tbl := bench.NewTable("E12 repeated queries: cold vs steady state (plan cache + pooled buffers)",
		"query", "arm", "mean time", "allocs/op", "rows")

	// Spatial bbox selection over ~10% of the extent, the navigation shape.
	e := env.region
	var region grid.Region = grid.GeometryRegion{G: geom.NewEnvelope(
		e.MinX+e.Width()*0.30, e.MinY+e.Height()*0.30,
		e.MinX+e.Width()*0.62, e.MinY+e.Height()*0.62).ToPolygon()}

	var bboxRows int
	dCold := bench.MeasureN(repeats, func() {
		env.pc.InvalidateIndexes() // forces imprint rebuild + kernel recompile
		sel := env.pc.SelectRegionRows(region)
		bboxRows = len(sel)
		engine.RecycleRows(sel)
	})
	dSteady := bench.MeasureN(reps, func() {
		sel := env.pc.SelectRegionRows(region)
		bboxRows = len(sel)
		engine.RecycleRows(sel)
	})
	allocs := testing.AllocsPerRun(20, func() {
		sel := env.pc.SelectRegionRows(region)
		engine.RecycleRows(sel)
	})
	tbl.AddRow("bbox select", "cold (rebuild per query)", dCold, "-", bboxRows)
	tbl.AddRow("bbox select", "steady state", dSteady, fmt.Sprintf("%.0f", allocs), bboxRows)
	env.report.addAllocs("repeated", "bbox_select", "cold", env.pc.Len(), bboxRows, dCold, -1)
	env.report.addAllocs("repeated", "bbox_select", "steady", env.pc.Len(), bboxRows, dSteady, allocs)

	// Thematic indexed range filter (column imprint + cached range kernel).
	zlo, zhi, _ := env.pc.Column(engine.ColZ).MinMax()
	lo, hi := zlo+(zhi-zlo)*0.2, zlo+(zhi-zlo)*0.5
	var zRows int
	dColdT := bench.MeasureN(repeats, func() {
		env.pc.InvalidateIndexes()
		sel, err := env.pc.FilterRangeIndexed(engine.ColZ, lo, hi, nil)
		if err != nil {
			fmt.Fprintln(w, "E12:", err)
			return
		}
		zRows = len(sel)
		engine.RecycleRows(sel)
	})
	dSteadyT := bench.MeasureN(reps, func() {
		sel, err := env.pc.FilterRangeIndexed(engine.ColZ, lo, hi, nil)
		if err != nil {
			return
		}
		zRows = len(sel)
		engine.RecycleRows(sel)
	})
	allocsT := testing.AllocsPerRun(20, func() {
		sel, _ := env.pc.FilterRangeIndexed(engine.ColZ, lo, hi, nil)
		engine.RecycleRows(sel)
	})
	tbl.AddRow("z range filter", "cold (rebuild per query)", dColdT, "-", zRows)
	tbl.AddRow("z range filter", "steady state", dSteadyT, fmt.Sprintf("%.0f", allocsT), zRows)
	env.report.addAllocs("repeated", "z_range", "cold", env.pc.Len(), zRows, dColdT, -1)
	env.report.addAllocs("repeated", "z_range", "steady", env.pc.Len(), zRows, dSteadyT, allocsT)

	// End-to-end SQL through the prepare/execute split. Three arms: cold
	// pays parse+bind+classify+compile on every call (the pre-split
	// Executor.Query behaviour), the steady arm serves the statement cache
	// (Executor.Query on repeated text), and a bbox-only prepared query is
	// measured against the engine-side SelectRegionRows path it wraps —
	// the remaining SQL-layer tax on the paper's navigation query.
	exec := sql.New(env.db)
	q := fmt.Sprintf("SELECT count(*) FROM %s WHERE ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y)) AND z BETWEEN %g AND %g",
		dataset.TableCloud, e.MinX+e.Width()*0.30, e.MinY+e.Height()*0.30,
		e.MinX+e.Width()*0.62, e.MinY+e.Height()*0.62, lo, hi)
	var sqlRows float64
	// One warmup query: the cold arms above left the coordinate imprints
	// and plan cache invalidated, and MeasureN has no warmup of its own —
	// without this the first iteration pays the index rebuild and inflates
	// the published steady-state mean.
	if _, err := exec.Query(q); err != nil {
		fmt.Fprintln(w, "E12 sql:", err)
	}
	// SQL arms are microsecond-scale; extra iterations keep the published
	// cold-vs-steady ratio out of the noise floor.
	sqlReps := reps * 8
	dSQLCold := bench.MeasureN(sqlReps, func() {
		pq, err := exec.Prepare(q)
		if err != nil {
			fmt.Fprintln(w, "E12 sql:", err)
			return
		}
		res, err := pq.Run()
		if err != nil {
			fmt.Fprintln(w, "E12 sql:", err)
			return
		}
		sqlRows = res.Rows[0][0].Num
	})
	// The prepared steady arm measures latency and allocations on the SAME
	// path (untraced PreparedQuery.Run on a reusable plan); the query
	// steady arm is the traced one-call Executor.Query surface, whose
	// statement cache serves the same plan but pays the EXPLAIN trace.
	pqSteady, err := exec.Prepare(q)
	if err != nil {
		fmt.Fprintln(w, "E12 sql:", err)
		return
	}
	dSQLSteady := bench.MeasureN(sqlReps, func() {
		res, err := pqSteady.Run()
		if err != nil {
			fmt.Fprintln(w, "E12 sql:", err)
			return
		}
		sqlRows = res.Rows[0][0].Num
	})
	sqlAllocs := testing.AllocsPerRun(20, func() {
		if _, err := pqSteady.Run(); err != nil {
			fmt.Fprintln(w, "E12 sql:", err)
		}
	})
	dSQLQuery := bench.MeasureN(sqlReps, func() {
		res, err := exec.Query(q)
		if err != nil {
			fmt.Fprintln(w, "E12 sql:", err)
			return
		}
		sqlRows = res.Rows[0][0].Num
	})
	coldVsSteady := float64(dSQLCold) / float64(dSQLSteady)
	tbl.AddRow("sql bbox+range count", "cold (prepare per query)", dSQLCold, "-", int(sqlRows))
	tbl.AddRow("sql bbox+range count", "prepared steady (Run)", dSQLSteady,
		fmt.Sprintf("%.0f", sqlAllocs), int(sqlRows))
	tbl.AddRow("sql bbox+range count", "query steady (stmt cache, traced)", dSQLQuery, "-", int(sqlRows))
	env.report.addAllocs("repeated", "sql_count", "cold", env.pc.Len(), int(sqlRows), dSQLCold, -1)
	// Speedup on the steady arm is the cold-vs-steady ratio (its baseline
	// arm is cold).
	env.report.addFull("repeated", "sql_count", "prepared_steady", env.pc.Len(), int(sqlRows),
		dSQLSteady, coldVsSteady, sqlAllocs)
	env.report.add("repeated", "sql_count", "query_steady", env.pc.Len(), int(sqlRows), dSQLQuery, 0)

	// The bbox-only prepared query against the engine path it wraps: the
	// end-to-end SQL tax on the pure navigation shape.
	qb := fmt.Sprintf("SELECT count(*) FROM %s WHERE ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y))",
		dataset.TableCloud, e.MinX+e.Width()*0.30, e.MinY+e.Height()*0.30,
		e.MinX+e.Width()*0.62, e.MinY+e.Height()*0.62)
	pqBbox, err := exec.Prepare(qb)
	if err != nil {
		fmt.Fprintln(w, "E12 sql:", err)
		return
	}
	var sqlBboxRows float64
	if res, err := pqBbox.Run(); err == nil {
		sqlBboxRows = res.Rows[0][0].Num
	}
	dSQLBbox := bench.MeasureN(sqlReps, func() {
		res, err := pqBbox.Run()
		if err != nil {
			fmt.Fprintln(w, "E12 sql:", err)
			return
		}
		sqlBboxRows = res.Rows[0][0].Num
	})
	gap := float64(dSQLBbox) / float64(dSteady)
	tbl.AddRow("sql bbox count", "prepared steady (vs engine)", dSQLBbox, "-", int(sqlBboxRows))
	// Speedup here is engine/sql: the inverse of the end-to-end gap factor.
	env.report.addFull("repeated", "sql_bbox_count", "prepared_steady", env.pc.Len(),
		int(sqlBboxRows), dSQLBbox, float64(dSteady)/float64(dSQLBbox), -1)

	tbl.WriteTo(w)
	st := env.pc.PlanCacheStats()
	fmt.Fprintf(w, "plan cache: %d kernels cached, %d hits / %d misses since last invalidation\n",
		st.Entries, st.Hits, st.Misses)
	ss := exec.StmtCacheStats()
	fmt.Fprintf(w, "stmt cache: %d shapes, %d hits (%d shape hits, %d rebinds) / %d misses, %d epoch invalidations\n",
		ss.Entries, ss.Hits, ss.ShapeHits, ss.Rebinds, ss.Misses, ss.Invalidations)
	env.report.addCache("repeated", ss, env.pc.PlanCacheStats())
	fmt.Fprintf(w, "sql cold/steady %.1fx; prepared bbox sql vs engine SelectRegionRows %.2fx\n",
		coldVsSteady, gap)
	if allocs != 0 || allocsT != 0 {
		fmt.Fprintf(w, "E12 WARNING: steady state allocates (bbox %.0f, range %.0f) — fast-path regression\n",
			allocs, allocsT)
	}

	// Concurrent steady state: the same bbox query fanned across workers —
	// the load shape the striped buffer pool exists for. The worker list is
	// deduplicated so a small GOMAXPROCS doesn't publish two
	// indistinguishable arms into the trajectory report.
	tc := bench.NewTable("E12b concurrent steady state: pooled query throughput",
		"workers", "total queries", "wall time", "throughput")
	p := runtime.GOMAXPROCS(0)
	workerArms := []int{1}
	for _, n := range []int{min(4, p), p} {
		if n > workerArms[len(workerArms)-1] {
			workerArms = append(workerArms, n)
		}
	}
	for _, workers := range workerArms {
		perWorker := reps * 4
		total := workers * perWorker
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					sel := env.pc.SelectRegionRows(region)
					engine.RecycleRows(sel)
				}
			}()
		}
		wg.Wait()
		d := time.Since(start)
		tc.AddRow(workers, total, d, queriesPerSecond(d, total))
		env.report.add("repeated", "bbox_select_concurrent",
			fmt.Sprintf("workers_%d", workers), env.pc.Len(), bboxRows,
			time.Duration(int64(d)/int64(total)), 0)
	}
	tc.WriteTo(w)
}

// queriesPerSecond formats a throughput figure.
func queriesPerSecond(d time.Duration, queries int) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f q/s", float64(queries)/d.Seconds())
}

package main

import (
	"testing"

	"gisnav/internal/engine"
)

func TestScaleParams(t *testing.T) {
	for _, scale := range []string{"small", "medium", "large"} {
		p, err := scaleParams(scale, 7)
		if err != nil {
			t.Fatalf("%s: %v", scale, err)
		}
		if p.Seed != 7 || p.Density <= 0 || p.TilesX <= 0 {
			t.Fatalf("%s params = %+v", scale, p)
		}
	}
	small, _ := scaleParams("small", 1)
	large, _ := scaleParams("large", 1)
	if small.Region.Area() >= large.Region.Area() {
		t.Fatal("scales must grow")
	}
	if _, err := scaleParams("galactic", 1); err == nil {
		t.Fatal("unknown scale should error")
	}
}

func TestColumnOf(t *testing.T) {
	if columnOf("z (terrain band)") != engine.ColZ {
		t.Fatal("z label wrong")
	}
	if columnOf("gps_time (1% window)") != engine.ColGPSTime {
		t.Fatal("gps label wrong")
	}
}

func TestSqrtHelper(t *testing.T) {
	if got := sqrt(0.25); got < 0.499 || got > 0.501 {
		t.Fatalf("sqrt(0.25) = %v", got)
	}
	if sqrt(0) != 0 || sqrt(-1) != 0 {
		t.Fatal("non-positive input should be 0")
	}
}

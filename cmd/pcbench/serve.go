package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gisnav/internal/bench"
	"gisnav/internal/server"
)

// --- E17: serving layer — concurrent HTTP clients over the query lifecycle ----

// expServe measures the hardened HTTP/JSON layer (PR 9) end to end: real
// sockets, real JSON encoding, the admission gate and deadline plumbing in
// the path. Three parts:
//
//  1. a client sweep (1, P, 2P, 4P concurrent closed-loop clients, P =
//     GOMAXPROCS) recording mean and tail latency plus throughput — the
//     c=1 arm is the steady serving fast path and is benchdiff-guarded;
//  2. an overload comparison on a one-slot gate: a blind hammering client
//     herd against one that honours the X-Retry-After-Ms backoff hint —
//     the hint exists so that well-behaved clients see fewer 503s;
//  3. a graceful drain timed mid-load, recording how long quiescence takes.
func expServe(env *benchEnv, w io.Writer, repeats int) {
	srv := server.New(server.Config{DB: env.db, DefaultTimeout: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(w, "E17:", err)
		return
	}
	hs := srv.HTTPServer(ln.Addr().String())
	go hs.Serve(ln)
	defer hs.Close()

	e := env.region
	q := fmt.Sprintf(`SELECT count(*) FROM ahn2
		WHERE ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y))
		  AND classification = 2`,
		e.MinX+e.Width()*0.30, e.MinY+e.Height()*0.30,
		e.MinX+e.Width()*0.62, e.MinY+e.Height()*0.62)
	queryURL := "http://" + ln.Addr().String() + "/query?q=" + url.QueryEscape(q)
	cli := &http.Client{Timeout: 10 * time.Second}

	// Warm: plan cache, statement cache, EWMA estimate, TCP stack.
	for i := 0; i < 3; i++ {
		if code, _, err := doServeRequest(cli, queryURL); err != nil || code != http.StatusOK {
			fmt.Fprintf(w, "E17 warmup: code %d, err %v\n", code, err)
			return
		}
	}

	p := runtime.GOMAXPROCS(0)
	tbl := bench.NewTable("E17 serving layer: concurrent HTTP clients (closed loop)",
		"clients", "requests", "ok", "shed", "mean", "p50", "p95", "p99", "throughput")
	perClient := 10 * repeats
	seen := map[int]bool{}
	for _, c := range []int{1, p, 2 * p, 4 * p} {
		if seen[c] {
			continue
		}
		seen[c] = true
		var mu sync.Mutex
		var lats []time.Duration
		var okN, shedN atomic.Uint64
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < c; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := make([]time.Duration, 0, perClient)
				for j := 0; j < perClient; j++ {
					t0 := time.Now()
					code, _, err := doServeRequest(cli, queryURL)
					lat := time.Since(t0)
					switch {
					case err != nil:
						fmt.Fprintln(w, "E17:", err)
						return
					case code == http.StatusOK:
						okN.Add(1)
						local = append(local, lat)
					case code == http.StatusServiceUnavailable:
						shedN.Add(1)
					}
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		if len(lats) == 0 {
			fmt.Fprintf(w, "E17: no request succeeded at c=%d\n", c)
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		mean := sum / time.Duration(len(lats))
		pct := func(f float64) time.Duration { return lats[int(f*float64(len(lats)-1))] }
		total := c * perClient
		tbl.AddRow(c, total, okN.Load(), shedN.Load(), mean, pct(0.50), pct(0.95), pct(0.99),
			fmt.Sprintf("%.0f q/s", float64(okN.Load())/wall.Seconds()))

		// The single-client arm is the steady serving-path latency (no
		// queueing, cache-hot) and carries the benchdiff guard; the
		// contended arms and the tails ride along unguarded — they are
		// diagnostic, and far noisier across hardware.
		arm := fmt.Sprintf("c%d", c)
		if c == 1 {
			arm = "c1_steady"
		}
		env.report.add("serve", "sql_serve_http", arm, total, int(okN.Load()), mean, 0)
		env.report.add("serve", "sql_serve_latency", "p95_"+fmt.Sprintf("c%d", c), total, int(okN.Load()), pct(0.95), 0)
		env.report.add("serve", "sql_serve_latency", "p99_"+fmt.Sprintf("c%d", c), total, int(okN.Load()), pct(0.99), 0)
	}
	tbl.WriteTo(w)

	// Overload backoff: one admission slot, a herd big enough to contend
	// it on any core count, a fixed wall-clock window. The query is the
	// heavy analytical join, long enough (tens of ms) that handler
	// goroutines overlap even on one core — a sub-quantum CPU-bound query
	// would serialize through the scheduler and never contend the gate.
	// The blind herd retries the instant it is shed; the polite herd
	// sleeps the X-Retry-After-Ms hint. Matches carries the 503 count
	// (the quantity under test), Rows the requests issued.
	heavy := `SELECT avg(z) FROM ahn2, ua
		WHERE ua.class = '12210' AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 25)`
	heavyURL := "http://" + ln.Addr().String() + "/query?q=" + url.QueryEscape(heavy)
	if code, _, err := doServeRequest(cli, heavyURL); err != nil || code != http.StatusOK {
		fmt.Fprintf(w, "E17b warmup: code %d, err %v\n", code, err)
		return
	}
	srv.Exec().SetMaxInFlight(1)
	herd := 2 * p
	if herd < 8 {
		herd = 8
	}
	window := 100 * time.Duration(repeats) * time.Millisecond
	blindOK, blindShed := hammerServe(cli, heavyURL, herd, window, false)
	politeOK, politeShed := hammerServe(cli, heavyURL, herd, window, true)
	srv.Exec().SetMaxInFlight(0)
	tb := bench.NewTable("E17b overload backoff on a one-slot gate (fixed window)",
		"client policy", "requests", "ok", "503 shed", "shed rate")
	rate := func(shed, total uint64) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(shed)/float64(total))
	}
	tb.AddRow("blind retry", blindOK+blindShed, blindOK, blindShed, rate(blindShed, blindOK+blindShed))
	tb.AddRow("honour Retry-After", politeOK+politeShed, politeOK, politeShed, rate(politeShed, politeOK+politeShed))
	tb.WriteTo(w)
	verdict := "fewer 503s for the polite client, as the hint promises"
	if politeShed >= blindShed {
		verdict = "WARNING: polite client saw no fewer 503s"
	}
	fmt.Fprintf(w, "backoff hint: %d vs %d sheds — %s\n", blindShed, politeShed, verdict)
	env.report.add("serve", "sql_serve_backoff", "blind_retry",
		int(blindOK+blindShed), int(blindShed), window, 0)
	env.report.add("serve", "sql_serve_backoff", "retry_after_hint",
		int(politeOK+politeShed), int(politeShed), window, 0)

	// Graceful drain under load: clients keep arriving while the server
	// drains; the measurement is time-to-quiescence.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				doServeRequest(cli, queryURL)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	dDrain := bench.Measure(func() {
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(w, "E17 drain:", err)
		}
	})
	close(stop)
	wg.Wait()
	fmt.Fprintf(w, "graceful drain under %d clients: quiescent in %s\n", p, dDrain)
	env.report.add("serve", "sql_serve_drain", "under_load", p, 0, dDrain, 0)
	env.report.addExec("serve", srv.Exec().ExecStats())
}

// doServeRequest issues one GET, drains the body and reports the status
// and the Retry-After hint (milliseconds; 0 when absent).
func doServeRequest(cli *http.Client, url string) (code int, retryAfterMs int64, err error) {
	resp, err := cli.Get(url)
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get("X-Retry-After-Ms"); h != "" {
		retryAfterMs, _ = strconv.ParseInt(h, 10, 64)
	}
	return resp.StatusCode, retryAfterMs, nil
}

// hammerServe runs a closed herd against the URL for a fixed window and
// counts outcomes. With honourHint, a shed client sleeps the server's
// X-Retry-After-Ms before re-issuing; without, it retries immediately.
func hammerServe(cli *http.Client, url string, clients int, window time.Duration, honourHint bool) (ok, shed uint64) {
	var okN, shedN atomic.Uint64
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				code, hint, err := doServeRequest(cli, url)
				if err != nil {
					return
				}
				switch code {
				case http.StatusOK:
					okN.Add(1)
				case http.StatusServiceUnavailable:
					shedN.Add(1)
					if honourHint && hint > 0 {
						d := time.Duration(hint) * time.Millisecond
						if rem := time.Until(deadline); d > rem {
							d = rem
						}
						time.Sleep(d)
					}
				}
			}
		}()
	}
	wg.Wait()
	return okN.Load(), shedN.Load()
}

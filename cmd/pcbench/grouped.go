package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"gisnav/internal/bench"
	"gisnav/internal/engine"
	"gisnav/internal/las"
	"gisnav/internal/sql"
)

// --- E14: grouped navigation --------------------------------------------------

// groupedCloudPoints is the fixed population of the E14 cloud. The paper's
// navigation workload re-aggregates the viewport on every pan/zoom step
// (per-class histograms, per-class elevation stats); 1M points keeps the
// per-row cost of the competing strategies out of the noise regardless of
// the -scale flag.
const groupedCloudPoints = 1_000_000

// buildGroupedCloud synthesises the E14 point cloud: 12 LAS-style classes
// with skewed frequencies (terrain classes dominate real tiles), terrain-ish
// elevations, and u16 intensities — the per-class viewport histogram shape.
func buildGroupedCloud() *engine.PointCloud {
	rng := rand.New(rand.NewSource(2015))
	pts := make([]las.Point, groupedCloudPoints)
	for i := range pts {
		cls := uint8(rng.Intn(12))
		if rng.Intn(3) != 0 {
			cls = uint8(rng.Intn(3)) + 1 // skew towards ground/vegetation
		}
		x, y := rng.Float64()*4000, rng.Float64()*4000
		pts[i] = las.Point{
			X: x, Y: y,
			Z:              20*math.Sin(x/300) + 15*math.Cos(y/500) + rng.Float64()*8,
			Intensity:      uint16(rng.Intn(1 << 11)),
			Classification: cls,
			GPSTime:        float64(rng.Intn(5000)) / 7,
		}
	}
	pc := engine.NewPointCloud()
	pc.AppendLAS(pts)
	return pc
}

// refGroupedAcc is the interpreter-reference accumulator: one map entry per
// rendered key, exactly the shape the SQL interpreter arm accumulates
// through (string-keyed map, per-row widening and formatting).
type refGroupedAcc struct {
	n   float64
	sum float64
}

// interpreterReferenceGrouped is the row-at-a-time reference arm: per row,
// widen the key through the Column interface, render it, look the group up
// in a string-keyed map and fold the value — the execution shape
// internal/sql/groupby.go had before the vectorized kernels, minus the
// expression-tree walk (so the published speedup is a lower bound).
func interpreterReferenceGrouped(pc *engine.PointCloud, keyName, valName string) map[string]*refGroupedAcc {
	key := pc.Column(keyName)
	val := pc.Column(valName)
	groups := map[string]*refGroupedAcc{}
	var keyBuf []byte
	for i, n := 0, pc.Len(); i < n; i++ {
		keyBuf = strconv.AppendFloat(keyBuf[:0], key.Value(i), 'g', -1, 64)
		g, ok := groups[string(keyBuf)]
		if !ok {
			g = &refGroupedAcc{}
			groups[string(keyBuf)] = g
		}
		g.n++
		g.sum += val.Value(i)
	}
	return groups
}

// expGrouped measures the PR 5 grouped-aggregation stack on the navigation
// workload it exists for: a per-class aggregate recomputed on every step.
//
//   - E14a (engine): the dense grouped kernel vs the interpreter-reference
//     row-at-a-time arm on a 1M-point per-class count+avg — the tentpole's
//     headline ratio — plus the hash-path arm on a float key. The dense
//     steady state must report 0 allocs/op (pooled accumulator banks,
//     reused result record).
//   - E14b (SQL): a per-class viewport histogram swept across the cloud,
//     cold Prepare-per-step vs the shape-cache steady state (rebind per
//     step), with a rebound-vs-fresh-Prepare equality check.
func expGrouped(env *benchEnv, w io.Writer, repeats int) {
	pc := buildGroupedCloud()
	db := engine.NewDB()
	db.RegisterPointCloud("cloud1m", pc)

	// --- E14a: engine kernels vs interpreter reference -----------------------
	tbl := bench.NewTable("E14a grouped aggregation: 1M-point per-class count+avg(z)",
		"arm", "mean time", "allocs/op", "groups", "speedup")
	specs := []engine.GroupedAggSpec{
		{Fn: engine.AggCount},
		{Fn: engine.AggSum, Column: engine.ColZ},
	}
	var res engine.GroupedResult
	if err := pc.GroupedAggregate(nil, engine.ColClassification, specs, &res, nil); err != nil {
		fmt.Fprintln(w, "E14:", err)
		return
	}
	denseGroups := res.Groups()
	dDense := bench.MeasureN(repeats*3, func() {
		if err := pc.GroupedAggregate(nil, engine.ColClassification, specs, &res, nil); err != nil {
			fmt.Fprintln(w, "E14:", err)
		}
	})
	denseAllocs := testing.AllocsPerRun(10, func() {
		if err := pc.GroupedAggregate(nil, engine.ColClassification, specs, &res, nil); err != nil {
			fmt.Fprintln(w, "E14:", err)
		}
	})

	var refGroups int
	dRef := bench.MeasureN(repeats, func() {
		refGroups = len(interpreterReferenceGrouped(pc, engine.ColClassification, engine.ColZ))
	})
	if refGroups != denseGroups {
		fmt.Fprintf(w, "E14 MISMATCH: dense %d groups, reference %d\n", denseGroups, refGroups)
	}

	dHash := bench.MeasureN(repeats*3, func() {
		if err := pc.GroupedAggregate(nil, engine.ColGPSTime, specs, &res, nil); err != nil {
			fmt.Fprintln(w, "E14:", err)
		}
	})
	hashGroups := res.Groups()

	denseSpeedup := float64(dRef) / float64(dDense)
	tbl.AddRow("interpreter reference (map, row-at-a-time)", dRef, "-", refGroups, "1.0x")
	tbl.AddRow("dense kernel (u8 class key)", dDense, fmt.Sprintf("%.0f", denseAllocs), denseGroups,
		fmt.Sprintf("%.1fx", denseSpeedup))
	tbl.AddRow("hash kernel (f64 key)", dHash, "-", hashGroups,
		fmt.Sprintf("%.1fx", float64(dRef)/float64(dHash)))
	tbl.WriteTo(w)
	fmt.Fprintf(w, "dense vs interpreter reference %.1fx (target >= 3x); dense steady-state allocs %.0f (contract: 0)\n",
		denseSpeedup, denseAllocs)
	if denseSpeedup < 3 {
		fmt.Fprintf(w, "E14 WARNING: dense grouped kernel under 3x vs the interpreter reference\n")
	}
	if denseAllocs != 0 {
		fmt.Fprintf(w, "E14 WARNING: dense grouped steady state allocates — fast-path regression\n")
	}
	env.report.add("grouped", "grouped_dense_1m", "interpreter_reference",
		pc.Len(), refGroups, dRef, 1)
	env.report.addFull("grouped", "grouped_dense_1m", "kernel", pc.Len(), denseGroups,
		dDense, denseSpeedup, denseAllocs)
	env.report.add("grouped", "grouped_hash_1m", "kernel", pc.Len(), hashGroups,
		dHash, float64(dRef)/float64(dHash))

	// --- E14b: SQL viewport histogram, cold vs shape-steady ------------------
	tb := bench.NewTable("E14b grouped navigation: per-class viewport histogram through SQL",
		"arm", "mean time/query", "allocs/op", "groups (last)")
	const steps = 32
	texts := make([]string, steps)
	for i := range texts {
		frac := float64(i) / steps * 0.5
		x0, y0 := 4000*frac, 4000*frac
		texts[i] = fmt.Sprintf(
			"SELECT classification, count(*) AS n, avg(z) AS mean_z FROM cloud1m WHERE ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y)) GROUP BY classification",
			x0, y0, x0+1200, y0+1200)
	}
	var lastGroups int

	coldExec := sql.New(db)
	if _, err := coldExec.Query(texts[0]); err != nil {
		fmt.Fprintln(w, "E14:", err)
		return
	}
	coldStep := 0
	dCold := bench.MeasureN(steps*2, func() {
		pq, err := coldExec.Prepare(texts[coldStep%steps])
		if err != nil {
			fmt.Fprintln(w, "E14:", err)
			return
		}
		r, err := pq.Run()
		if err != nil {
			fmt.Fprintln(w, "E14:", err)
			return
		}
		lastGroups = len(r.Rows)
		coldStep++
	})

	exec := sql.New(db)
	for _, text := range texts {
		if _, err := exec.QueryUntraced(text); err != nil {
			fmt.Fprintln(w, "E14:", err)
			return
		}
	}
	step := 0
	dSteady := bench.MeasureN(steps*max(2, repeats/2), func() {
		r, err := exec.QueryUntraced(texts[step%steps])
		if err != nil {
			fmt.Fprintln(w, "E14:", err)
			return
		}
		lastGroups = len(r.Rows)
		step++
	})
	steadyAllocs := testing.AllocsPerRun(20, func() {
		if _, err := exec.QueryUntraced(texts[step%steps]); err != nil {
			fmt.Fprintln(w, "E14:", err)
		}
		step++
	})

	// Rebind correctness: the shape-steady result of one position must equal
	// a fresh Prepare of the same text on a cold executor.
	probe := texts[steps/2]
	rebound, err := exec.QueryUntraced(probe)
	if err != nil {
		fmt.Fprintln(w, "E14:", err)
		return
	}
	freshPq, err := sql.New(db).Prepare(probe)
	if err != nil {
		fmt.Fprintln(w, "E14:", err)
		return
	}
	freshRes, err := freshPq.Run()
	if err != nil {
		fmt.Fprintln(w, "E14:", err)
		return
	}
	reboundOK := len(rebound.Rows) == len(freshRes.Rows)
	if reboundOK {
	cmp:
		for i := range rebound.Rows {
			for j := range rebound.Rows[i] {
				if rebound.Rows[i][j].String() != freshRes.Rows[i][j].String() {
					reboundOK = false
					break cmp
				}
			}
		}
	}
	if !reboundOK {
		fmt.Fprintln(w, "E14 MISMATCH: rebound grouped plan diverged from a fresh Prepare")
	}

	coldVsSteady := float64(dCold) / float64(dSteady)
	tb.AddRow("cold (prepare per step)", dCold, "-", lastGroups)
	tb.AddRow("shape steady (rebind per step)", dSteady, fmt.Sprintf("%.0f", steadyAllocs), lastGroups)
	tb.WriteTo(w)
	ss := exec.StmtCacheStats()
	fmt.Fprintf(w, "sweep cold/steady %.1fx; rebound == fresh prepare: %v; front hits %d\n",
		coldVsSteady, reboundOK, ss.FrontHits)
	env.report.addAllocs("grouped", "sql_grouped_hist", "cold", pc.Len(), lastGroups, dCold, -1)
	env.report.addFull("grouped", "sql_grouped_hist", "shape_steady", pc.Len(), lastGroups,
		dSteady, coldVsSteady, steadyAllocs)
	env.report.addCache("grouped", ss, pc.PlanCacheStats())
}

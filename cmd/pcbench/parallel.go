package main

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"

	"gisnav/internal/bench"
	"gisnav/internal/engine"
	"gisnav/internal/sql"
)

// --- E16: morsel-driven parallel execution -------------------------------------

// parallelDegrees is the scaling curve E16 publishes. Degrees past
// GOMAXPROCS still execute real multi-partition passes (excess partitions
// queue on the resident workers), so the bit-identity checks hold on any
// machine; the speedup column is only meaningful up to the core count,
// which the JSON report records alongside the curve.
var parallelDegrees = []int{1, 2, 4}

// expParallel measures the PR 8 morsel fan-out on the same 1M-point cloud
// as E14, one arm per parallel driver:
//
//   - filter: compiled predicate kernel over the full column,
//   - agg: the fused min/max pass (sum/avg stay serial by the float
//     determinism invariant),
//   - grouped dense (u8 class key) and grouped hash (f64 gps_time key)
//     with merge-exact specs (count/min/max).
//
// Every parallel result is checked bit-identical to the serial one before
// its timing is published — the determinism contract is part of the
// experiment, not just the test suite. E16b drives the same shapes through
// the SQL layer with the executor capped at degree 4 and publishes guarded
// steady records.
func expParallel(env *benchEnv, w io.Writer, repeats int) {
	pc := buildGroupedCloud()
	db := engine.NewDB()
	db.RegisterPointCloud("cloud1m", pc)
	preds := []engine.ColumnPred{{Column: engine.ColZ, Op: engine.CmpGT, Value: 5}}
	exact := []engine.GroupedAggSpec{
		{Fn: engine.AggCount},
		{Fn: engine.AggMin, Column: engine.ColZ},
		{Fn: engine.AggMax, Column: engine.ColGPSTime},
	}
	parRun := func(deg int) *engine.Run {
		run := new(engine.Run)
		run.SetMaxParallel(deg)
		return run
	}

	// Serial truths, once.
	serialRows, err := pc.FilterRows(nil, preds, nil)
	if err != nil {
		fmt.Fprintln(w, "E16:", err)
		return
	}
	serialMax, err := pc.Aggregate(nil, engine.AggMax, engine.ColZ, nil)
	if err != nil {
		fmt.Fprintln(w, "E16:", err)
		return
	}
	var serialDense, serialHash engine.GroupedResult
	if err := pc.GroupedAggregate(nil, engine.ColClassification, exact, &serialDense, nil); err != nil {
		fmt.Fprintln(w, "E16:", err)
		return
	}
	if err := pc.GroupedAggregate(nil, engine.ColGPSTime, exact, &serialHash, nil); err != nil {
		fmt.Fprintln(w, "E16:", err)
		return
	}

	sameGrouped := func(a, b *engine.GroupedResult) bool {
		if a.Strategy != b.Strategy || len(a.Keys) != len(b.Keys) || len(a.Cols) != len(b.Cols) {
			return false
		}
		for i := range a.Keys {
			if math.Float64bits(a.Keys[i]) != math.Float64bits(b.Keys[i]) {
				return false
			}
		}
		for c := range a.Cols {
			for i := range a.Cols[c] {
				if math.Float64bits(a.Cols[c][i]) != math.Float64bits(b.Cols[c][i]) {
					return false
				}
			}
		}
		return true
	}

	type arm struct {
		name string
		// run executes one pass at the given degree and reports whether the
		// result is bit-identical to the serial truth.
		run func(run *engine.Run) bool
	}
	var res engine.GroupedResult
	arms := []arm{
		{"parallel_filter_1m", func(run *engine.Run) bool {
			rows, err := pc.FilterRowsRun(run, nil, preds, nil)
			if err != nil {
				return false
			}
			same := len(rows) == len(serialRows)
			if same {
				for i := range rows {
					if rows[i] != serialRows[i] {
						same = false
						break
					}
				}
			}
			run.RecycleRows(rows)
			return same
		}},
		{"parallel_agg_1m", func(run *engine.Run) bool {
			v, err := pc.AggregateRun(run, nil, engine.AggMax, engine.ColZ, nil)
			return err == nil && math.Float64bits(v) == math.Float64bits(serialMax)
		}},
		{"parallel_grouped_dense_1m", func(run *engine.Run) bool {
			if err := pc.GroupedAggregateRun(run, nil, engine.ColClassification, exact, &res, nil); err != nil {
				return false
			}
			return sameGrouped(&res, &serialDense)
		}},
		{"parallel_grouped_hash_1m", func(run *engine.Run) bool {
			if err := pc.GroupedAggregateRun(run, nil, engine.ColGPSTime, exact, &res, nil); err != nil {
				return false
			}
			return sameGrouped(&res, &serialHash)
		}},
	}

	tbl := bench.NewTable(
		fmt.Sprintf("E16a morsel scaling: 1M-point parallel drivers (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		"driver", "degree", "mean time", "allocs/op", "speedup vs deg 1")
	for _, a := range arms {
		var base float64
		for _, deg := range parallelDegrees {
			run := parRun(deg)
			if !a.run(run) {
				fmt.Fprintf(w, "E16 MISMATCH: %s at degree %d diverged from serial\n", a.name, deg)
				return
			}
			d := bench.MeasureN(repeats*3, func() {
				if !a.run(run) {
					fmt.Fprintf(w, "E16 MISMATCH: %s at degree %d diverged from serial\n", a.name, deg)
				}
			})
			allocs := testing.AllocsPerRun(10, func() { a.run(run) })
			speedup := 1.0
			if base == 0 {
				base = float64(d)
			} else {
				speedup = base / float64(d)
			}
			tbl.AddRow(a.name, deg, d, fmt.Sprintf("%.0f", allocs), fmt.Sprintf("%.2fx", speedup))
			env.report.addFull("parallel", a.name, fmt.Sprintf("deg_%d", deg),
				pc.Len(), 0, d, speedup, allocs)
			// A single alloc/op can be the pool's capacity budget declining
			// to retain a worst-case partition buffer after earlier
			// experiments filled it — the zero-alloc contract proper is
			// pinned by engine/morsel_test.go; warn only on more.
			if allocs > 1 {
				fmt.Fprintf(w, "E16 WARNING: %s degree %d steady state allocates (%.0f/op)\n", a.name, deg, allocs)
			}
		}
	}
	tbl.WriteTo(w)
	engine.RecycleRows(serialRows)

	// --- E16b: the same shapes through SQL, executor capped at degree 4 ------
	queries := []struct{ name, text string }{
		{"sql_parallel_filter", "SELECT count(*) FROM cloud1m WHERE z > 5"},
		{"sql_parallel_agg", "SELECT max(z) FROM cloud1m"},
		{"sql_parallel_grouped", "SELECT classification, count(*), min(z) FROM cloud1m GROUP BY classification"},
	}
	tb := bench.NewTable("E16b SQL steady state at parallelism 4 vs serial",
		"query", "serial", "parallel", "allocs/op", "match")
	for _, q := range queries {
		serialExec := sql.New(db)
		serialExec.SetParallelism(1)
		want, err := serialExec.QueryUntraced(q.text)
		if err != nil {
			fmt.Fprintln(w, "E16:", err)
			return
		}
		dSerial := bench.MeasureN(repeats*2, func() {
			if _, err := serialExec.QueryUntraced(q.text); err != nil {
				fmt.Fprintln(w, "E16:", err)
			}
		})

		parExec := sql.New(db)
		parExec.SetParallelism(4)
		got, err := parExec.QueryUntraced(q.text)
		if err != nil {
			fmt.Fprintln(w, "E16:", err)
			return
		}
		match := len(got.Rows) == len(want.Rows)
		if match {
		cmp:
			for i := range want.Rows {
				for j := range want.Rows[i] {
					if got.Rows[i][j].String() != want.Rows[i][j].String() {
						match = false
						break cmp
					}
				}
			}
		}
		if !match {
			fmt.Fprintf(w, "E16 MISMATCH: %s parallel result diverged from serial\n", q.name)
		}
		dPar := bench.MeasureN(repeats*2, func() {
			if _, err := parExec.QueryUntraced(q.text); err != nil {
				fmt.Fprintln(w, "E16:", err)
			}
		})
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := parExec.QueryUntraced(q.text); err != nil {
				fmt.Fprintln(w, "E16:", err)
			}
		})
		tb.AddRow(q.name, dSerial, dPar, fmt.Sprintf("%.0f", allocs), match)
		env.report.add("parallel", q.name, "serial", pc.Len(), len(want.Rows), dSerial, 1)
		env.report.addFull("parallel", q.name, "steady", pc.Len(), len(got.Rows),
			dPar, float64(dSerial)/float64(dPar), allocs)
	}
	tb.WriteTo(w)
	fmt.Fprintf(w, "GOMAXPROCS=%d; degrees past the core count exercise partition queueing, not speedup\n",
		runtime.GOMAXPROCS(0))
}

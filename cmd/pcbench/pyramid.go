package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"gisnav/internal/bench"
	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/grid"
	"gisnav/internal/las"
	"gisnav/internal/pyramid"
	"gisnav/internal/sql"
)

// --- E18: pre-aggregation pyramid ----------------------------------------------

// pyramidBasePoints is the 1x population; the 4x and 16x arms grow the
// extent edge by sqrt(mult) at constant density, so the pyramid's base
// order deepens while per-tile occupancy stays comparable — the scaling
// regime the viewport-analytics claim is about.
const pyramidBasePoints = 120_000

// buildPyramidCloud synthesises one scale arm of the E18 cloud: the E14
// per-class histogram shape (skewed u8 classes, terrain-ish elevations)
// over an extent edge of 4000·sqrt(mult).
func buildPyramidCloud(mult int) *engine.PointCloud {
	edge := 4000 * sqrt(float64(mult))
	rng := rand.New(rand.NewSource(int64(2015 + mult)))
	pts := make([]las.Point, pyramidBasePoints*mult)
	for i := range pts {
		cls := uint8(rng.Intn(12))
		if rng.Intn(3) != 0 {
			cls = uint8(rng.Intn(3)) + 1
		}
		x, y := rng.Float64()*edge, rng.Float64()*edge
		pts[i] = las.Point{
			X: x, Y: y,
			Z:              20*math.Sin(x/300) + 15*math.Cos(y/500) + rng.Float64()*8,
			Intensity:      uint16(rng.Intn(1 << 11)),
			Classification: cls,
		}
	}
	pc := engine.NewPointCloud()
	pc.AppendLAS(pts)
	return pc
}

// expPyramid measures the PR 10 pre-aggregation pyramid on the workload it
// exists for: a whole-viewport per-class histogram recomputed as the
// dataset grows. Three scales (1x, 4x, 16x points at constant density),
// two arms each:
//
//   - exact:          the same SQL with pyramid routing disabled — the
//     filter + grouped-kernel path, O(rows in viewport).
//   - pyramid_steady: pyramid routing enabled with the pyramid resident —
//     interior tiles answer from pre-aggregates, O(visible tiles).
//
// The viewport is the extent buffered outward, so every data-carrying tile
// classifies as interior and the pyramid arm never touches a row. The
// contract printed at the end: pyramid latency grows <= 2x while the
// dataset grows 16x, the two arms return bit-identical rows, and the warm
// engine-level query does 0 allocs/op.
func expPyramid(env *benchEnv, w io.Writer, repeats int) {
	tbl := bench.NewTable("E18 pre-aggregation pyramid: whole-viewport histogram vs dataset scale",
		"scale", "arm", "mean time/query", "allocs/op", "groups")
	specs := []engine.GroupedAggSpec{
		{Fn: engine.AggCount},
		{Fn: engine.AggMin, Column: engine.ColZ},
		{Fn: engine.AggMax, Column: engine.ColZ},
	}
	type armTimes struct{ exact, pyr time.Duration }
	times := map[int]armTimes{}
	identical := true
	var routed bool

	for _, mult := range []int{1, 4, 16} {
		pc := buildPyramidCloud(mult)
		table := fmt.Sprintf("pyr%dx", mult)
		db := engine.NewDB()
		db.RegisterPointCloud(table, pc)
		exec := sql.New(db)
		ext := pc.Extent()
		text := fmt.Sprintf(
			"SELECT classification, count(*) AS n, min(z) AS lo, max(z) AS hi FROM %s WHERE ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y)) GROUP BY classification",
			table, ext.MinX-1, ext.MinY-1, ext.MaxX+1, ext.MaxY+1)
		label := fmt.Sprintf("%dx (%d pts)", mult, pc.Len())

		// Exact arm: pyramid routing off, the full filter + kernel path.
		pyramid.SetEnabled(false)
		resExact, err := exec.QueryUntraced(text)
		if err != nil {
			pyramid.SetEnabled(true)
			fmt.Fprintln(w, "E18:", err)
			return
		}
		dExact := bench.MeasureN(max(2, repeats), func() {
			if _, err := exec.QueryUntraced(text); err != nil {
				fmt.Fprintln(w, "E18:", err)
			}
		})
		pyramid.SetEnabled(true)

		// Pyramid arm: first traced query builds the pyramid and must show
		// the route in EXPLAIN; the steady state is measured warm.
		traced, err := exec.Query(text)
		if err != nil {
			fmt.Fprintln(w, "E18:", err)
			return
		}
		routed = strings.Contains(traced.Explain.String(), "pyramid")
		resPyr, err := exec.QueryUntraced(text)
		if err != nil {
			fmt.Fprintln(w, "E18:", err)
			return
		}
		dPyr := bench.MeasureN(max(2, repeats)*3, func() {
			if _, err := exec.QueryUntraced(text); err != nil {
				fmt.Fprintln(w, "E18:", err)
			}
		})

		// Bit-identity: count/min/max merge exactly, so the routed rows
		// must match the exact arm's rendering verbatim.
		if len(resPyr.Rows) != len(resExact.Rows) {
			identical = false
		} else {
		cmp:
			for i := range resPyr.Rows {
				for j := range resPyr.Rows[i] {
					if resPyr.Rows[i][j].String() != resExact.Rows[i][j].String() {
						identical = false
						break cmp
					}
				}
			}
		}

		// Engine-level warm query: the 0 allocs/op contract, measured under
		// the pyramid API directly (the SQL layer adds result rendering).
		sig, _ := pyramid.Shape(pc, engine.ColClassification, specs)
		run := new(engine.Run)
		pyr, err := pyramid.For(run, pc, engine.ColClassification, specs, sig, nil)
		if err != nil || pyr == nil {
			fmt.Fprintf(w, "E18: pyramid declined %s\n", table)
			return
		}
		var region grid.Region = grid.GeometryRegion{
			G: geom.NewEnvelope(ext.MinX-1, ext.MinY-1, ext.MaxX+1, ext.MaxY+1).ToPolygon()}
		var gres engine.GroupedResult
		if _, _, err := pyr.QueryRegionRun(run, region, specs, &gres); err != nil {
			fmt.Fprintln(w, "E18:", err)
			return
		}
		warmAllocs := testing.AllocsPerRun(50, func() {
			if _, _, err := pyr.QueryRegionRun(run, region, specs, &gres); err != nil {
				fmt.Fprintln(w, "E18:", err)
			}
		})
		pyr.Release()
		run.Drain()

		times[mult] = armTimes{exact: dExact, pyr: dPyr}
		tbl.AddRow(label, "exact (kernels)", dExact, "-", len(resExact.Rows))
		tbl.AddRow(label, "pyramid steady", dPyr, fmt.Sprintf("%.0f", warmAllocs), len(resPyr.Rows))
		name := fmt.Sprintf("sql_pyramid_%dx", mult)
		env.report.add("pyramid", name, "exact", pc.Len(), len(resExact.Rows), dExact, 1)
		env.report.addFull("pyramid", name, "pyramid_steady", pc.Len(), len(resPyr.Rows),
			dPyr, float64(dExact)/float64(dPyr), warmAllocs)
		if warmAllocs != 0 {
			fmt.Fprintf(w, "E18 WARNING: warm pyramid query allocates %.0f objects/op at %s (contract: 0)\n",
				warmAllocs, label)
		}
	}
	tbl.WriteTo(w)

	growth := float64(times[16].pyr) / float64(times[1].pyr)
	exactGrowth := float64(times[16].exact) / float64(times[1].exact)
	fmt.Fprintf(w, "dataset 16x: pyramid latency %.2fx (target <= 2x), exact arm %.1fx; rows bit-identical: %v; EXPLAIN routed: %v\n",
		growth, exactGrowth, identical, routed)
	if growth > 2 {
		fmt.Fprintf(w, "E18 WARNING: pyramid latency grew past 2x across the 16x scale sweep\n")
	}
	if !identical {
		fmt.Fprintf(w, "E18 MISMATCH: pyramid rows diverged from the exact arm\n")
	}
	if !routed {
		fmt.Fprintf(w, "E18 WARNING: EXPLAIN shows no pyramid route — the whole-viewport histogram fell back to kernels\n")
	}
	env.report.addPyramid(pyramid.Snapshot())
}

package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"gisnav/internal/bench"
	"gisnav/internal/sql"
)

// --- E15: query lifecycle — cancellation overhead + admission control ---------

// expCancel measures what the PR 6 lifecycle layer costs on the steady
// path and demonstrates its control surface. The overhead arm runs the
// same prepared navigation query with and without a live (cancellable)
// context: the admission gate, run-state binding and per-block
// cancellation polling must stay within noise of the plain run and add
// zero allocations. The second half drives every ExecStats counter —
// cancellations, deadline expiries, gate sheds — so the JSON trajectory
// records the lifecycle behaviour, not just its price.
func expCancel(env *benchEnv, w io.Writer, repeats int) {
	reps := repeats * 5
	tbl := bench.NewTable("E15 query lifecycle: cancellation plumbing overhead (prepared navigation query)",
		"query", "arm", "mean time", "allocs/op", "rows")

	exec := sql.New(env.db)
	e := env.region
	q := fmt.Sprintf(`SELECT count(*) FROM ahn2
		WHERE ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y))
		  AND classification = 2`,
		e.MinX+e.Width()*0.30, e.MinY+e.Height()*0.30,
		e.MinX+e.Width()*0.62, e.MinY+e.Height()*0.62)
	pq, err := exec.Prepare(q)
	if err != nil {
		fmt.Fprintln(w, "E15:", err)
		return
	}
	res, err := pq.Run()
	if err != nil {
		fmt.Fprintln(w, "E15:", err)
		return
	}
	matches := int(res.Rows[0][0].Num)

	dPlain := bench.MeasureN(reps, func() { pq.Run() })
	allocsPlain := testing.AllocsPerRun(20, func() { pq.Run() })

	ctx, cancelCtx := context.WithCancel(context.Background())
	defer cancelCtx()
	_ = ctx.Done() // materialise the done channel outside the measurement
	if _, err := pq.RunContext(ctx); err != nil {
		fmt.Fprintln(w, "E15:", err)
		return
	}
	dCtx := bench.MeasureN(reps, func() { pq.RunContext(ctx) })
	allocsCtx := testing.AllocsPerRun(20, func() { pq.RunContext(ctx) })

	overhead := 0.0
	if dPlain > 0 {
		overhead = (float64(dCtx) - float64(dPlain)) / float64(dPlain) * 100
	}
	tbl.AddRow("count over bbox", "prepared steady", dPlain, fmt.Sprintf("%.0f", allocsPlain), matches)
	tbl.AddRow("count over bbox", "ctx prepared steady", dCtx, fmt.Sprintf("%.0f", allocsCtx), matches)
	tbl.WriteTo(w)
	fmt.Fprintf(w, "context plumbing overhead: %+.1f%% (extra allocs/op: %.0f)\n",
		overhead, allocsCtx-allocsPlain)
	env.report.addAllocs("cancel", "sql_lifecycle", "prepared_steady", env.pc.Len(), matches, dPlain, allocsPlain)
	env.report.addAllocs("cancel", "sql_lifecycle", "ctx_prepared_steady", env.pc.Len(), matches, dCtx, allocsCtx)

	// Drive the lifecycle counters so the report captures the control
	// surface. Pre-cancelled contexts count as cancellations; an expired
	// deadline counts separately; a gate bounded to one slot under
	// concurrent callers sheds with ErrOverloaded.
	for i := 0; i < 3; i++ {
		cctx, cc := context.WithCancel(context.Background())
		cc()
		exec.QueryContext(cctx, q)
	}
	dctx, dc := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	exec.QueryContext(dctx, q)
	dc()

	// Deadline-aware shedding, deterministically: a deadline closer than
	// the executor's run-latency estimate is rejected at admission. (The
	// estimate is live, so retry a few times if scheduling ate the window
	// before the gate saw it.)
	for i := 0; i < 10 && exec.ExecStats().Shed == 0; i++ {
		est := time.Duration(exec.ExecStats().EWMARunNanos)
		if est <= 0 {
			est = time.Millisecond
		}
		sctx, sc := context.WithTimeout(context.Background(), est/2)
		exec.QueryContext(sctx, q)
		sc()
	}

	exec.SetMaxInFlight(1)
	var wg sync.WaitGroup
	var shedMu sync.Mutex
	shed := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := exec.QueryUntracedContext(context.Background(), q); errors.Is(err, sql.ErrOverloaded) {
					shedMu.Lock()
					shed++
					shedMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	exec.SetMaxInFlight(0) // restore the default bound

	st := exec.ExecStats()
	fmt.Fprintf(w, "lifecycle counters: admitted %d, shed %d (%d observed under 1-slot gate), cancelled %d, deadline-exceeded %d, panicked %d\n",
		st.Admitted, st.Shed, shed, st.Cancelled, st.DeadlineExceeded, st.Panicked)
	env.report.addExec("cancel", st)
	env.report.addCache("cancel", exec.StmtCacheStats(), env.pc.PlanCacheStats())
}

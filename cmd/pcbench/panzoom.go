package main

import (
	"fmt"
	"io"
	"testing"
	"time"

	"gisnav/internal/bench"
	"gisnav/internal/dataset"
	"gisnav/internal/sql"
)

// --- E13: pan/zoom sweep ------------------------------------------------------

// expPanZoom measures the auto-parameterised plan-skeleton fast path on the
// workload it exists for: a navigation session issuing the SAME statement
// shape with a DIFFERENT bbox literal vector on every step. PR 3's
// exact-text statement cache missed every step (each text is new) and paid
// the full parse + bind + classify + kernel-compile cold-prepare cost; the
// shape cache hits every step and only re-binds constants into the compiled
// skeleton. Three arms:
//
//   - cold:             Prepare + Run per step on a fresh executor — the
//     pre-PR-4 per-step cost of a sweep.
//   - shape_steady:     Executor.QueryUntraced per step — lex, shape hit,
//     rebind, run. The tentpole's fast path.
//   - same_text_steady: every step's text prepared ONCE up front, then the
//     sweep cycles the per-text PreparedQuery.Run calls — PR 3's same-text
//     prepared-steady state over the identical position sequence, so the
//     execution work matches arm-for-arm and the ratio isolates the
//     lex + rebind overhead (shape_steady must land within ~1.2x of it).
//
// The engine plan cache must compile ZERO kernels during the steady sweep
// (Misses flat): with constants out of the cache key, the sliding bbox
// re-binds the same x/y range kernels every step.
func expPanZoom(env *benchEnv, w io.Writer, repeats int) {
	tbl := bench.NewTable("E13 pan/zoom sweep: one plan skeleton, sliding bbox literals",
		"arm", "mean time/query", "allocs/op", "rows (last)")

	// A viewport covering ~2% of the extent's area sliding diagonally across
	// the dataset: every step is a distinct literal vector, and the viewport
	// is small enough that the plan-path cost the experiment isolates is not
	// drowned by row-selection work.
	e := env.region
	w0, h0 := e.Width()*0.14, e.Height()*0.14
	const steps = 64
	texts := make([]string, steps)
	for i := range texts {
		frac := float64(i) / steps * 0.6
		x0 := e.MinX + e.Width()*frac
		y0 := e.MinY + e.Height()*frac
		texts[i] = fmt.Sprintf(
			"SELECT count(*) FROM %s WHERE ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y)) AND classification >= 0",
			dataset.TableCloud, x0, y0, x0+w0, y0+h0)
	}

	// Whole sweep cycles per measurement window: every window then covers
	// each viewport position equally often, so window means differ only by
	// true noise, not by which slice of the (unevenly dense) sweep they hit.
	reps := steps * max(2, repeats/2)
	// Each arm's mean is the BEST of several measurement windows: the
	// per-query cost is ~100µs, so a single window is only a few
	// milliseconds and one scheduler stall can double an arm's mean. The
	// minimum across windows is the architectural signal benchdiff guards.
	bestOf := func(windows int, fn func()) time.Duration {
		best := bench.MeasureN(reps, fn)
		for i := 1; i < windows; i++ {
			if d := bench.MeasureN(reps, fn); d < best {
				best = d
			}
		}
		return best
	}
	var lastRows float64

	// Cold arm: what a sweep cost before auto-parameterisation — every step
	// is a fresh prepare (the exact-text cache never hits a new bbox).
	coldExec := sql.New(env.db)
	if _, err := coldExec.Query(texts[0]); err != nil {
		fmt.Fprintln(w, "E13:", err)
		return
	}
	coldStep := 0
	dCold := bestOf(5, func() {
		pq, err := coldExec.Prepare(texts[coldStep%steps])
		if err != nil {
			fmt.Fprintln(w, "E13:", err)
			return
		}
		res, err := pq.Run()
		if err != nil {
			fmt.Fprintln(w, "E13:", err)
			return
		}
		lastRows = res.Rows[0][0].Num
		coldStep++
	})

	// Shape-steady arm: the two-level lookup. Warm the shape AND every sweep
	// position once (the first pass through a position grows the pooled
	// buffers for its result size), then measure; every query is a shape
	// hit + rebind.
	exec := sql.New(env.db)
	for _, text := range texts {
		if _, err := exec.QueryUntraced(text); err != nil {
			fmt.Fprintln(w, "E13:", err)
			return
		}
	}
	ssBefore := exec.StmtCacheStats()
	kernelsBefore := env.pc.PlanCacheStats().Misses
	step := 0
	dShape := bestOf(5, func() {
		res, err := exec.QueryUntraced(texts[step%steps])
		if err != nil {
			fmt.Fprintln(w, "E13:", err)
			return
		}
		lastRows = res.Rows[0][0].Num
		step++
	})
	shapeAllocs := testing.AllocsPerRun(20, func() {
		if _, err := exec.QueryUntraced(texts[step%steps]); err != nil {
			fmt.Fprintln(w, "E13:", err)
		}
		step++
	})
	kernelCompiles := env.pc.PlanCacheStats().Misses - kernelsBefore
	ssAfter := exec.StmtCacheStats()

	// Reference arm: PR 3's same-text prepared steady state over the same
	// position sequence — one PreparedQuery per step text, warmed, cycled.
	pqs := make([]*sql.PreparedQuery, steps)
	for i, text := range texts {
		pq, err := exec.Prepare(text)
		if err != nil {
			fmt.Fprintln(w, "E13:", err)
			return
		}
		if _, err := pq.Run(); err != nil {
			fmt.Fprintln(w, "E13:", err)
			return
		}
		pqs[i] = pq
	}
	fixedStep := 0
	dFixed := bestOf(5, func() {
		res, err := pqs[fixedStep%steps].Run()
		if err != nil {
			fmt.Fprintln(w, "E13:", err)
			return
		}
		lastRows = res.Rows[0][0].Num
		fixedStep++
	})

	tbl.AddRow("cold (prepare per step)", dCold, "-", int(lastRows))
	tbl.AddRow("shape steady (rebind per step)", dShape, fmt.Sprintf("%.0f", shapeAllocs), int(lastRows))
	tbl.AddRow("same-text steady (per-text plans)", dFixed, "-", int(lastRows))
	tbl.WriteTo(w)

	coldVsShape := float64(dCold) / float64(dShape)
	gap := float64(dShape) / float64(dFixed)
	fmt.Fprintf(w, "sweep cold/shape-steady %.1fx; shape-steady vs same-text steady %.2fx (target <= 1.2x)\n",
		coldVsShape, gap)
	fmt.Fprintf(w, "kernel compiles during steady sweep: %d (contract: 0); shape hits %d, rebinds %d\n",
		kernelCompiles, ssAfter.ShapeHits-ssBefore.ShapeHits, ssAfter.Rebinds-ssBefore.Rebinds)
	if kernelCompiles != 0 {
		fmt.Fprintf(w, "E13 WARNING: the sliding bbox recompiled kernels — the (column, op) plan-cache key regressed\n")
	}

	env.report.addAllocs("panzoom", "sql_panzoom", "cold", env.pc.Len(), int(lastRows), dCold, -1)
	// Speedup on the steady arm is cold/steady (its baseline arm is cold).
	env.report.addFull("panzoom", "sql_panzoom", "shape_steady", env.pc.Len(), int(lastRows),
		dShape, coldVsShape, shapeAllocs)
	// The reference arm publishes the inverse gap so >1 stays "better".
	env.report.addFull("panzoom", "sql_panzoom", "same_text_steady", env.pc.Len(), int(lastRows),
		dFixed, float64(dFixed)/float64(dShape), -1)
	env.report.addCache("panzoom", exec.StmtCacheStats(), env.pc.PlanCacheStats())
}

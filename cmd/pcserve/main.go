// Command pcserve serves a loaded dataset over the hardened HTTP/JSON
// layer (internal/server): POST/GET /query with per-request deadlines,
// 503 + Retry-After under overload, /healthz, /readyz and /stats, and a
// graceful SIGTERM/SIGINT drain — readiness flips, the listener stops
// accepting, in-flight queries finish up to the drain deadline, and
// stragglers are cancelled through their run contexts before exit.
//
// Usage:
//
//	pcserve -data data -addr :7433
//	pcserve -gen small            # serve a generated synthetic dataset
//	curl 'localhost:7433/query?q=SELECT+count(*)+FROM+ahn2&timeout_ms=500'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gisnav/internal/dataset"
	"gisnav/internal/geom"
	"gisnav/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7433", "listen address")
		dir         = flag.String("data", "", "dataset directory (from lasgen); -gen when empty")
		gen         = flag.String("gen", "small", "generate a synthetic dataset at this scale when -data is empty: small, medium, large")
		maxTimeout  = flag.Duration("max-timeout", 30*time.Second, "server-side clamp on client query timeouts")
		defTimeout  = flag.Duration("default-timeout", 10*time.Second, "query timeout when the client supplies none")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline before in-flight queries are cancelled")
		maxInFlight = flag.Int("max-inflight", 0, "admission-gate bound on concurrent queries (<= 0 selects the default, 2x GOMAXPROCS)")
		parallelism = flag.Int("parallel", 0, "per-query morsel fan-out cap (<= 0 selects the default, auto)")
	)
	flag.Parse()

	if err := run(*addr, *dir, *gen, *maxTimeout, *defTimeout, *drain, *maxInFlight, *parallelism); err != nil {
		fmt.Fprintln(os.Stderr, "pcserve:", err)
		os.Exit(1)
	}
}

func run(addr, dir, gen string, maxTimeout, defTimeout, drain time.Duration, maxInFlight, parallelism int) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pcserve-*")
		if err != nil {
			return err
		}
		p, err := genParams(gen)
		if err != nil {
			return err
		}
		info, err := dataset.Generate(tmp, p)
		if err != nil {
			return err
		}
		fmt.Printf("generated %d points into %s\n", info.Points, tmp)
		dir = tmp
	}
	db, st, err := dataset.Load(dir)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d points from %d tiles in %s\n",
		st.Points, st.Files, st.Total().Round(time.Millisecond))

	srv := server.New(server.Config{
		DB:             db,
		MaxTimeout:     maxTimeout,
		DefaultTimeout: defTimeout,
	})
	srv.Exec().SetMaxInFlight(maxInFlight)
	srv.Exec().SetParallelism(parallelism)
	hs := srv.HTTPServer(addr)

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("serving on %s (max timeout %s, drain %s)\n", addr, maxTimeout, drain)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("received %s: draining (deadline %s)\n", sig, drain)
	}

	// Drain: the listener stops accepting while the query drain flips
	// readiness and rejects late arrivals with 503, in-flight queries
	// finish up to the deadline, and stragglers past it are cancelled
	// through their run contexts. Server.Shutdown guarantees every
	// in-flight request is answered before it returns; the final Close
	// tears down whatever idle connections remain.
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	lnErr := make(chan error, 1)
	go func() { lnErr <- hs.Shutdown(drainCtx) }()
	drainErr := srv.Shutdown(drainCtx)
	if err := <-lnErr; err != nil && err != context.DeadlineExceeded {
		fmt.Fprintln(os.Stderr, "pcserve: listener shutdown:", err)
	}
	hs.Close()
	if drainErr != nil {
		fmt.Println("drain deadline passed: stragglers cancelled")
	} else {
		fmt.Println("drained cleanly")
	}
	return nil
}

// genParams mirrors pcbench's scale presets for the standalone server.
func genParams(scale string) (dataset.Params, error) {
	switch scale {
	case "small":
		return dataset.Params{
			Region: geom.NewEnvelope(0, 0, 1500, 1500),
			TilesX: 3, TilesY: 3, Density: 0.08, UACells: 24, Seed: 2015,
		}, nil
	case "medium":
		return dataset.Params{
			Region: geom.NewEnvelope(0, 0, 3000, 3000),
			TilesX: 4, TilesY: 4, Density: 0.1, UACells: 40, Seed: 2015,
		}, nil
	case "large":
		return dataset.Params{
			Region: geom.NewEnvelope(0, 0, 6000, 6000),
			TilesX: 6, TilesY: 6, Density: 0.15, UACells: 60, Seed: 2015,
		}, nil
	default:
		return dataset.Params{}, fmt.Errorf("unknown scale %q", scale)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gisnav/internal/analysis"
)

// TestListAnalyzers: -list prints the whole suite and exits 0.
func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, stderr = %s", code, errb.String())
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}

// TestRepoClean: the suite over the whole module exits 0 with no output —
// the state the CI gate enforces.
func TestRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"../../..."}, &out, &errb); code != 0 {
		t.Fatalf("repo head not clean: exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

// TestViolationPackages: every golden violation package makes the driver
// exit non-zero, and -json emits parseable diagnostics for it.
func TestViolationPackages(t *testing.T) {
	for _, name := range []string{"constslot", "releaselist", "cancelpoll", "epochguard", "boundedcache"} {
		t.Run(name, func(t *testing.T) {
			dir := "../../internal/analysis/testdata/src/" + name
			var out, errb bytes.Buffer
			code := run([]string{"-json", "-analyzers", name, dir}, &out, &errb)
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
			}
			var diags []analysis.Diagnostic
			if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
				t.Fatalf("-json output unparseable: %v\n%s", err, out.String())
			}
			if len(diags) == 0 {
				t.Fatal("-json output has no diagnostics")
			}
			for _, d := range diags {
				if d.Analyzer != name {
					t.Errorf("diagnostic from %q, want %q: %s", d.Analyzer, name, d.Message)
				}
			}
		})
	}
}

// TestAnalyzerSubset: -analyzers restricts the suite, so a violation
// package is clean under an unrelated analyzer.
func TestAnalyzerSubset(t *testing.T) {
	var out, errb bytes.Buffer
	dir := "../../internal/analysis/testdata/src/releaselist"
	if code := run([]string{"-analyzers", "constslot", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestUnknownAnalyzer: a bad -analyzers value is a usage error (exit 2).
func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errb.String())
	}
}

// invariantlint runs the repo's custom static-analysis suite (see
// internal/analysis) over a set of packages and fails the build on any
// invariant violation.
//
// Usage:
//
//	go run ./cmd/invariantlint [flags] ./...
//
// Flags:
//
//	-json       emit diagnostics as a JSON array (machine-readable; CI)
//	-analyzers  comma-separated subset of analyzers to run (default: all)
//	-list       print the analyzer suite and exit
//
// Exit status: 0 when every package loads and no diagnostics survive
// suppression; 1 on diagnostics; 2 on load/usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"gisnav/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("invariantlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	names := fs.String("analyzers", "", "comma-separated analyzers to run (default all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, n := range strings.Split(*names, ",") {
			a := analysis.ByName(strings.TrimSpace(n))
			if a == nil {
				fmt.Fprintf(stderr, "invariantlint: unknown analyzer %q\n", n)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "invariantlint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "invariantlint: %v\n", err)
		return 2
	}
	paths, err := loader.Expand(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "invariantlint: %v\n", err)
		return 2
	}

	// Analysis of distinct packages is independent; loading serialises
	// inside the loader. Keep package order stable in the output.
	type result struct {
		diags []analysis.Diagnostic
		err   error
	}
	results := make([]result, len(paths))
	var wg sync.WaitGroup
	for i, path := range paths {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pkg, err := loader.Load(path)
			if err != nil {
				results[i] = result{err: err}
				return
			}
			results[i] = result{diags: analysis.RunAnalyzers(pkg, analyzers)}
		}()
	}
	wg.Wait()

	var diags []analysis.Diagnostic
	loadFailed := false
	for i, r := range results {
		if r.err != nil {
			loadFailed = true
			fmt.Fprintf(stderr, "invariantlint: %s: %v\n", paths[i], r.err)
			continue
		}
		diags = append(diags, r.diags...)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "invariantlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "invariantlint: %d violation(s) in %d package(s)\n", len(diags), len(paths))
		}
	}
	switch {
	case loadFailed:
		return 2
	case len(diags) > 0:
		return 1
	}
	return 0
}

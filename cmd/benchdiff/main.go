// Command benchdiff guards the benchmark trajectory: it compares a fresh
// pcbench JSON report against the committed baseline (BENCH_filter.json)
// and fails when a guarded record regressed past the threshold. CI runs it
// after regenerating the report so a PR that slows the SQL steady-state
// fast path down by more than the threshold fails the build instead of
// silently shipping.
//
// Only steady-state arms are guarded by default: they are the contractual
// fast path, and their microsecond scale is far less noisy across runs
// than cold arms that include index builds. The threshold is deliberately
// loose (2x) because the baseline and the CI runner are different
// hardware; it catches architectural regressions (a cache stops hitting,
// a pool stops pooling), not percent-level drift.
//
// Usage:
//
//	benchdiff [-threshold 2.0] [-experiment repeated,panzoom] [-prefix sql] baseline.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// record mirrors the fields of pcbench's jsonRecord that the diff needs.
type record struct {
	Experiment string `json:"experiment"`
	Name       string `json:"name"`
	Arm        string `json:"arm"`
	NsPerOp    int64  `json:"ns_per_op"`
}

// report mirrors pcbench's jsonReport envelope.
type report struct {
	Records []record `json:"records"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func key(r record) string { return r.Experiment + "|" + r.Name + "|" + r.Arm }

func main() {
	threshold := flag.Float64("threshold", 2.0, "fail when new/baseline time exceeds this ratio")
	experiment := flag.String("experiment", "repeated,panzoom,grouped,cancel,parallel,serve,pyramid",
		"guard records of these experiments, comma-separated (empty = all)")
	prefix := flag.String("prefix", "sql", "guard records whose name has this prefix (empty = all)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json new.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	baseline := make(map[string]int64, len(base.Records))
	for _, r := range base.Records {
		baseline[key(r)] = r.NsPerOp
	}

	experiments := map[string]bool{}
	if *experiment != "" {
		for _, e := range strings.Split(*experiment, ",") {
			experiments[strings.TrimSpace(e)] = true
		}
	}
	guarded := func(r record) bool {
		if len(experiments) > 0 && !experiments[r.Experiment] {
			return false
		}
		if *prefix != "" && !strings.HasPrefix(r.Name, *prefix) {
			return false
		}
		return strings.Contains(r.Arm, "steady")
	}

	matched, failed := 0, 0
	for _, r := range fresh.Records {
		if !guarded(r) {
			continue
		}
		old, ok := baseline[key(r)]
		if !ok {
			// A renamed or new record has no baseline yet; flag it so a
			// rename can't silently retire the guard.
			fmt.Printf("SKIP %-45s no baseline record\n", key(r))
			continue
		}
		matched++
		ratio := float64(r.NsPerOp) / float64(old)
		verdict := "ok"
		if ratio > *threshold {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Printf("%-4s %-45s %10dns -> %10dns  (%.2fx)\n", verdict, key(r), old, r.NsPerOp, ratio)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no guarded records matched the baseline — the guard is vacuous")
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d guarded record(s) regressed past %.1fx\n", failed, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d guarded record(s) within %.1fx of baseline\n", matched, *threshold)
}

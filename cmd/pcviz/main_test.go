package main

import (
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/synth"
	"gisnav/internal/viz"
)

func TestUAColorDistinctPerClass(t *testing.T) {
	codes := []string{
		synth.UAContinuousUrban, synth.UADiscontinuousUrban, synth.UAFastTransit,
		synth.UAGreenUrban, synth.UAArable, synth.UAForest, synth.UAWater, "junk",
	}
	seen := map[viz.Color]string{}
	for _, c := range codes {
		col := uaColor(c)
		if prev, dup := seen[col]; dup {
			t.Fatalf("classes %s and %s share colour %v", prev, c, col)
		}
		seen[col] = c
	}
}

func TestDrawLinesHandlesMulti(t *testing.T) {
	c := viz.NewCanvas(50, 50, geom.NewEnvelope(0, 0, 50, 50), viz.Black)
	ml := geom.MultiLineString{Lines: []geom.LineString{
		{Points: []geom.Point{{X: 5, Y: 25}, {X: 45, Y: 25}}},
	}}
	drawLines(c, ml, 1, viz.White)
	lit := false
	for px := 0; px < 50; px++ {
		for py := 20; py < 30; py++ {
			if c.At(px, py) == viz.White {
				lit = true
			}
		}
	}
	if !lit {
		t.Fatal("multilinestring not drawn")
	}
	// Non-line geometry is ignored without panic.
	drawLines(c, geom.Point{X: 1, Y: 1}, 1, viz.White)
}

// Command pcviz regenerates the paper's two figures from a generated
// dataset, standing in for the QGIS front-end:
//
//	-fig 1  renders the LIDAR point cloud coloured by elevation (Figure 1)
//	-fig 2  renders roads, rivers and land cover from the OSM and Urban
//	        Atlas layers (Figure 2)
//
// Usage:
//
//	pcviz -data data -fig 1 -out figure1.ppm
package main

import (
	"flag"
	"fmt"
	"os"

	"gisnav/internal/dataset"
	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/synth"
	"gisnav/internal/viz"
)

func main() {
	var (
		dir  = flag.String("data", "data", "dataset directory (from lasgen)")
		fig  = flag.Int("fig", 1, "figure to render: 1 (LIDAR) or 2 (OSM+UA)")
		out  = flag.String("out", "", "output PPM path (default figureN.ppm)")
		size = flag.Int("size", 1024, "image width/height in pixels")
	)
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("figure%d.ppm", *fig)
	}

	db, _, err := dataset.Load(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcviz:", err)
		os.Exit(1)
	}
	var canvas *viz.Canvas
	switch *fig {
	case 1:
		canvas, err = renderFigure1(db, *size)
	case 2:
		canvas, err = renderFigure2(db, *size)
	default:
		err = fmt.Errorf("unknown figure %d", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcviz:", err)
		os.Exit(1)
	}
	if err := canvas.SavePPM(*out); err != nil {
		fmt.Fprintln(os.Stderr, "pcviz:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%dx%d)\n", *out, canvas.W, canvas.H)
}

// renderFigure1 plots the point cloud coloured by elevation, with intensity
// shading — the stand-in for the paper's 3-D AHN2 rendering.
func renderFigure1(db *engine.DB, size int) (*viz.Canvas, error) {
	pc, err := db.PointCloud(dataset.TableCloud)
	if err != nil {
		return nil, err
	}
	ext := pc.Extent()
	c := viz.NewCanvas(size, size, ext, viz.Color{R: 10, G: 10, B: 20})
	xs, ys, zs := pc.X(), pc.Y(), pc.Z()
	zlo, zhi, ok := pc.Column(engine.ColZ).MinMax()
	if !ok {
		return c, nil
	}
	span := zhi - zlo
	if span == 0 {
		span = 1
	}
	intensity := pc.Column(engine.ColIntensity)
	for i := range xs {
		t := (zs[i] - zlo) / span
		col := viz.ElevationRamp(t)
		shade := 0.7 + 0.3*intensity.Value(i)/1100
		c.DrawPoint(xs[i], ys[i], 0, viz.Shade(col, shade))
	}
	return c, nil
}

// renderFigure2 plots the land-use coverage with the road and water network
// on top — the stand-in for the paper's OSM + Urban Atlas map.
func renderFigure2(db *engine.DB, size int) (*viz.Canvas, error) {
	ua, err := db.Vector(dataset.TableUA)
	if err != nil {
		return nil, err
	}
	osm, err := db.Vector(dataset.TableOSM)
	if err != nil {
		return nil, err
	}
	ext := db.Extent()
	c := viz.NewCanvas(size, size, ext, viz.White)

	// Land-use zones first (fills).
	for i := 0; i < ua.Len(); i++ {
		if p, ok := ua.Geometry(i).(geom.Polygon); ok {
			c.FillPolygon(p, uaColor(ua.Class(i)))
		}
	}

	// Vector layers on top.
	for i := 0; i < osm.Len(); i++ {
		g := osm.Geometry(i)
		switch osm.Class(i) {
		case synth.ClassMotorway:
			drawLines(c, g, 3, viz.Color{R: 200, G: 40, B: 40})
		case synth.ClassPrimary:
			drawLines(c, g, 2, viz.Color{R: 240, G: 160, B: 40})
		case synth.ClassResidential:
			drawLines(c, g, 1, viz.Color{R: 120, G: 120, B: 120})
		case synth.ClassRiver:
			drawLines(c, g, 3, viz.Color{R: 40, G: 90, B: 200})
		case synth.ClassCanal:
			drawLines(c, g, 1, viz.Color{R: 90, G: 140, B: 220})
		case synth.ClassPOI:
			if p, ok := g.(geom.Point); ok {
				c.DrawPoint(p.X, p.Y, 3, viz.Color{R: 90, G: 30, B: 120})
			}
		}
	}
	return c, nil
}

// drawLines renders line geometries of any multiplicity.
func drawLines(c *viz.Canvas, g geom.Geometry, width int, col viz.Color) {
	switch t := g.(type) {
	case geom.LineString:
		c.DrawLineString(t, width, col)
	case geom.MultiLineString:
		for _, l := range t.Lines {
			c.DrawLineString(l, width, col)
		}
	}
}

func uaColor(code string) viz.Color {
	switch code {
	case synth.UAContinuousUrban:
		return viz.Color{R: 190, G: 60, B: 60}
	case synth.UADiscontinuousUrban:
		return viz.Color{R: 230, G: 140, B: 120}
	case synth.UAFastTransit:
		return viz.Color{R: 150, G: 150, B: 160}
	case synth.UAGreenUrban:
		return viz.Color{R: 120, G: 200, B: 120}
	case synth.UAArable:
		return viz.Color{R: 240, G: 230, B: 160}
	case synth.UAForest:
		return viz.Color{R: 40, G: 130, B: 60}
	case synth.UAWater:
		return viz.Color{R: 120, G: 170, B: 230}
	default:
		return viz.Color{R: 220, G: 220, B: 220}
	}
}

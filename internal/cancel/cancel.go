// Package cancel carries a cooperative cancellation token through the
// query engine's kernel loops. It exists as a leaf package because the
// engine cannot import context plumbing from the SQL layer and the grid
// package cannot import the engine; both only need the answer to one
// question — "should this block of work still run?" — asked at block
// boundaries, thousands of times per query.
//
// The token is built for that read rate: Cancelled() first loads a cached
// atomic flag (one relaxed load, no fence traffic after the first
// positive) and only when the flag is unset polls the done channel with a
// non-blocking select. A nil token, or a token bound to no channel (the
// context.Background() paths), short-circuits on the nil check /
// nil-channel check, so uncancellable runs pay a test-and-branch per
// block and nothing else — preserving the engine's zero-allocation and
// steady-state throughput contracts.
package cancel

import (
	"errors"
	"sync/atomic"
)

// ErrCancelled is the sentinel the engine layers return when a token
// fires mid-query. The SQL layer maps it back to the context's own error
// (context.Canceled or context.DeadlineExceeded) before it reaches the
// caller, so errors.Is against the context sentinels works end to end.
var ErrCancelled = errors.New("query cancelled")

// Token is one run's cancellation flag. The zero value (and a nil
// pointer) is a valid, never-cancelled token. Reset rebinds it to a new
// done channel between runs, so a pooled per-run record can reuse one
// token allocation forever.
type Token struct {
	done <-chan struct{}
	hit  atomic.Bool
}

// Reset binds the token to done (nil means "never cancelled") and clears
// the cached verdict. Must not race with Cancelled; the per-run record
// owning the token resets it before handing it to kernel code.
func (t *Token) Reset(done <-chan struct{}) {
	t.done = done
	t.hit.Store(false)
}

// Cancelled reports whether the run should stop. Safe on a nil token.
// The answer is monotonic for one binding: once true, always true (the
// cached flag), so kernels may check it at different loop depths without
// seeing it flicker.
func (t *Token) Cancelled() bool {
	if t == nil || t.done == nil {
		return false
	}
	if t.hit.Load() {
		return true
	}
	select {
	case <-t.done:
		t.hit.Store(true)
		return true
	default:
		return false
	}
}

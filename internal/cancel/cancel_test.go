package cancel

import (
	"testing"
)

func TestNilToken(t *testing.T) {
	var tok *Token
	if tok.Cancelled() {
		t.Fatal("nil token reports cancelled")
	}
	var zero Token
	if zero.Cancelled() {
		t.Fatal("zero token reports cancelled")
	}
}

func TestTokenFiresAndLatches(t *testing.T) {
	done := make(chan struct{})
	var tok Token
	tok.Reset(done)
	if tok.Cancelled() {
		t.Fatal("unfired token reports cancelled")
	}
	close(done)
	if !tok.Cancelled() {
		t.Fatal("fired token not cancelled")
	}
	// Latched: the cached verdict answers without touching the channel.
	if !tok.Cancelled() {
		t.Fatal("verdict did not latch")
	}
	// Reset rebinds and clears the latch.
	tok.Reset(nil)
	if tok.Cancelled() {
		t.Fatal("reset token still cancelled")
	}
}

func TestCancelledAllocationFree(t *testing.T) {
	done := make(chan struct{})
	var tok Token
	tok.Reset(done)
	if a := testing.AllocsPerRun(100, func() { tok.Cancelled() }); a != 0 {
		t.Fatalf("Cancelled allocates %.1f/op before firing", a)
	}
	close(done)
	tok.Cancelled()
	if a := testing.AllocsPerRun(100, func() { tok.Cancelled() }); a != 0 {
		t.Fatalf("Cancelled allocates %.1f/op after firing", a)
	}
}

//go:build faultinject

package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gisnav/internal/faultpoint"
)

// TestServerChaos is the serving layer's fault-injection workout: handler
// panics, execution panics, response-write failures, a saturated admission
// gate under slowed kernels, epoch bumps, and a mid-flight drain — all in
// one server lifetime. Afterwards the accounting must balance (every
// request answered under exactly one taxonomy code), the lifecycle
// counters must have moved the right way, and the pools must be level.
func TestServerChaos(t *testing.T) {
	defer faultpoint.Reset()
	srv, pc := newTestServer(t, Config{DefaultTimeout: time.Second})
	h := srv.Handler()
	before := poolOutstanding()

	// Phase 1: the handler faultpoint panics before parsing. The recover
	// in handleQuery must answer 500/internal instead of dropping the
	// request, and the drain gate must settle (leave still runs).
	faultpoint.Arm("server.handler", faultpoint.Action{Panic: "chaos: handler"})
	for i := 0; i < 3; i++ {
		rec := doQuery(h, testQuery)
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("handler panic: status = %d, want 500", rec.Code)
		}
		if er := decodeError(t, rec); er.Error.Code != CodeInternal {
			t.Fatalf("handler panic: code = %q", er.Error.Code)
		}
	}
	faultpoint.Disarm("server.handler")

	// Phase 2: a panic deep in execution surfaces as *sql.QueryError →
	// 500/internal, and the lifecycle counts it.
	panickedBefore := srv.Exec().ExecStats().Panicked
	faultpoint.Arm("sql.run.filter", faultpoint.Action{Panic: "chaos: kernel"})
	rec := doQuery(h, testQuery)
	faultpoint.Disarm("sql.run.filter")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("execution panic: status = %d, want 500", rec.Code)
	}
	if er := decodeError(t, rec); er.Error.Code != CodeInternal {
		t.Fatalf("execution panic: code = %q", er.Error.Code)
	}
	if got := srv.Exec().ExecStats().Panicked; got != panickedBefore+1 {
		t.Fatalf("Panicked = %d, want %d", got, panickedBefore+1)
	}

	// Phase 3: a slowed kernel against a short client deadline → 504 with
	// the deadline code, pooled buffers already drained.
	faultpoint.Arm("engine.kernel.chunk", faultpoint.Action{Delay: 30 * time.Millisecond})
	rec = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet,
		"/query?timeout_ms=10&q="+url.QueryEscape(testQuery), nil)
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow kernel + 10ms deadline: status = %d, want 504", rec.Code)
	}
	if er := decodeError(t, rec); er.Error.Code != CodeDeadline {
		t.Fatalf("slow kernel: code = %q", er.Error.Code)
	}
	faultpoint.Disarm("engine.kernel.chunk")

	// Phase 4: the response-write faultpoint fails after the status line.
	// Unreportable to the client by construction; the server must not
	// panic, and the query still counts as answered.
	okBefore := srv.Stats().QueriesOK
	faultpoint.Arm("server.response.write", faultpoint.Action{Err: context.Canceled})
	rec = doQuery(h, testQuery)
	faultpoint.Disarm("server.response.write")
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Fatalf("write fault: status = %d, body = %q; want 200 with empty body", rec.Code, rec.Body.String())
	}
	if got := srv.Stats().QueriesOK; got != okBefore+1 {
		t.Fatalf("QueriesOK = %d, want %d", got, okBefore+1)
	}

	// Phase 5: saturation and drain. A two-slot gate under kernels slowed
	// to ~2ms/chunk and twelve hammering clients must shed; a drain begun
	// mid-flight must answer every straggler and reject the rest.
	srv.Exec().SetMaxInFlight(2)
	shedBefore := srv.Exec().ExecStats().Shed
	faultpoint.Arm("engine.kernel.chunk", faultpoint.Action{Delay: 2 * time.Millisecond})

	stop := make(chan struct{})
	var clients, bumper sync.WaitGroup
	var overloaded503, withRetryHeader atomic.Uint64

	bumper.Add(1)
	go func() {
		defer bumper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pc.InvalidateIndexes()
			time.Sleep(500 * time.Microsecond)
		}
	}()
	for r := 0; r < 12; r++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodGet,
					"/query?timeout_ms=250&q="+url.QueryEscape(testQuery), nil)
				h.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK, http.StatusGatewayTimeout, StatusClientClosed:
				case http.StatusServiceUnavailable:
					overloaded503.Add(1)
					if rec.Header().Get("X-Retry-After-Ms") != "" {
						withRetryHeader.Add(1)
					}
				default:
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}()
	}

	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err != nil && err != context.DeadlineExceeded {
		t.Fatalf("Shutdown: %v", err)
	}

	// The drain has completed: a late arrival is rejected as overloaded.
	rec = doQuery(h, testQuery)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query = %d, want 503", rec.Code)
	}
	close(stop)
	clients.Wait()
	bumper.Wait()
	faultpoint.Reset()

	if got := srv.Exec().ExecStats().Shed; got == shedBefore {
		t.Fatal("two-slot gate under twelve clients never shed")
	}
	if overloaded503.Load() == 0 {
		t.Fatal("clients never observed a 503")
	}
	if overloaded503.Load() != withRetryHeader.Load() {
		t.Fatalf("503s = %d but only %d carried X-Retry-After-Ms",
			overloaded503.Load(), withRetryHeader.Load())
	}

	// The books balance: every request that entered the handler was
	// answered as a success or under exactly one taxonomy code, and every
	// pooled buffer any of them held is back.
	st := srv.Stats()
	var errs uint64
	for _, n := range st.Errors {
		errs += n
	}
	if st.Requests != st.QueriesOK+errs {
		t.Fatalf("request accounting: %d requests, %d ok + %d errors", st.Requests, st.QueriesOK, errs)
	}
	if drift := poolOutstanding() - before; drift != 0 {
		t.Fatalf("pool drift across chaos: %d buffers outstanding", drift)
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/sql"
	"gisnav/internal/synth"
)

// testQuery exercises the pooled path end to end: a region selection (a
// pooled selection vector from the grid) plus a column filter kernel.
const testQuery = `SELECT count(*) FROM ahn2
	WHERE ST_Contains(ST_MakeEnvelope(200, 200, 1200, 1200), ST_Point(x, y)) AND z >= 0`

// newTestServer builds a Server over the same small demo catalog the SQL
// tests use. The PointCloud rides along for epoch-bump stress.
func newTestServer(t *testing.T, cfg Config) (*Server, *engine.PointCloud) {
	t.Helper()
	region := geom.NewEnvelope(0, 0, 2000, 2000)
	terrain := synth.NewTerrain(81, region)
	pts := synth.GenerateTile(terrain, synth.TileSpec{Env: region, Density: 0.01, Seed: 6})
	pc := engine.NewPointCloud()
	pc.AppendLAS(pts)

	osmFeatures := synth.GenerateOSM(terrain, 2)
	osm := engine.NewVectorTable()
	for _, f := range osmFeatures {
		osm.Append(f.ID, f.Class, f.Name, f.Geom, nil)
	}
	ua := engine.NewVectorTable()
	for _, z := range synth.GenerateUrbanAtlas(terrain, synth.Motorways(osmFeatures), 10, 10, 3) {
		ua.Append(int64(z.ID), z.Code, z.Label, z.Geom, map[string]float64{"pop_density": z.PopDensity})
	}

	db := engine.NewDB()
	db.RegisterPointCloud("ahn2", pc)
	db.RegisterVector("osm", osm)
	db.RegisterVector("ua", ua)
	cfg.DB = db
	return New(cfg), pc
}

// poolOutstanding sums the outstanding counters of every engine pool; the
// drain tests assert it is level across a full serve-and-shutdown cycle.
func poolOutstanding() int64 {
	return engine.SelectionPoolStats().Outstanding +
		engine.RangePoolStats().Outstanding +
		engine.F64PoolStats().Outstanding
}

func doQuery(h http.Handler, q string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/query?q="+url.QueryEscape(q), nil)
	h.ServeHTTP(rec, req)
	return rec
}

func decodeError(t *testing.T, rec *httptest.ResponseRecorder) errorResponse {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatalf("error body %q: %v", rec.Body.String(), err)
	}
	return er
}

func TestQueryGetAndPost(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	h := srv.Handler()

	rec := doQuery(h, testQuery)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /query = %d: %s", rec.Code, rec.Body.String())
	}
	var qr queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Columns) != 1 || len(qr.Rows) != 1 {
		t.Fatalf("shape = %d cols, %d rows", len(qr.Columns), len(qr.Rows))
	}
	n, ok := qr.Rows[0][0].(float64)
	if !ok || n <= 0 {
		t.Fatalf("count(*) = %v, want a positive number", qr.Rows[0][0])
	}

	rec = httptest.NewRecorder()
	body := strings.NewReader(`{"sql": "SELECT count(*) FROM ahn2", "timeout_ms": 5000}`)
	req := httptest.NewRequest(http.MethodPost, "/query", body)
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /query = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestParseErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxRequestBytes: 64})
	h := srv.Handler()

	cases := []struct {
		name string
		make func() *http.Request
	}{
		{"bad sql", func() *http.Request {
			return httptest.NewRequest(http.MethodGet, "/query?q=SELECT+FROM", nil)
		}},
		{"empty statement", func() *http.Request {
			return httptest.NewRequest(http.MethodGet, "/query", nil)
		}},
		{"bad timeout_ms", func() *http.Request {
			return httptest.NewRequest(http.MethodGet, "/query?q=SELECT+1&timeout_ms=soon", nil)
		}},
		{"negative timeout_ms", func() *http.Request {
			return httptest.NewRequest(http.MethodGet, "/query?q=SELECT+1&timeout_ms=-5", nil)
		}},
		{"bad header timeout", func() *http.Request {
			r := httptest.NewRequest(http.MethodGet, "/query?q=SELECT+1", nil)
			r.Header.Set("X-Query-Timeout-Ms", "never")
			return r
		}},
		{"method not allowed", func() *http.Request {
			return httptest.NewRequest(http.MethodPut, "/query", nil)
		}},
		{"oversized body", func() *http.Request {
			long := `{"sql": "SELECT count(*) FROM ahn2 WHERE ` + strings.Repeat("z > 0 AND ", 20) + ` z > 0"}`
			return httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(long))
		}},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, tc.make())
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, rec.Code)
		}
		if er := decodeError(t, rec); er.Error.Code != CodeParse {
			t.Errorf("%s: code = %q, want %q", tc.name, er.Error.Code, CodeParse)
		}
	}
}

// TestTimeoutClamp pins the deadline negotiation: client timeouts clamp to
// MaxTimeout, absence selects DefaultTimeout, and the header overrides the
// parameter.
func TestTimeoutClamp(t *testing.T) {
	srv, _ := newTestServer(t, Config{
		MaxTimeout:     2 * time.Second,
		DefaultTimeout: 500 * time.Millisecond,
	})

	req := httptest.NewRequest(http.MethodGet, "/query?q=SELECT+1&timeout_ms=3600000", nil)
	if _, timeout, err := srv.parseQueryRequest(req); err != nil || timeout != 2*time.Second {
		t.Fatalf("huge timeout_ms: timeout = %v, err = %v; want clamp to 2s", timeout, err)
	}

	req = httptest.NewRequest(http.MethodGet, "/query?q=SELECT+1", nil)
	if _, timeout, err := srv.parseQueryRequest(req); err != nil || timeout != 500*time.Millisecond {
		t.Fatalf("absent timeout: timeout = %v, err = %v; want default 500ms", timeout, err)
	}

	req = httptest.NewRequest(http.MethodGet, "/query?q=SELECT+1&timeout_ms=900", nil)
	req.Header.Set("X-Query-Timeout-Ms", "250")
	if _, timeout, err := srv.parseQueryRequest(req); err != nil || timeout != 250*time.Millisecond {
		t.Fatalf("header override: timeout = %v, err = %v; want 250ms", timeout, err)
	}
}

// TestCodeTaxonomy pins the stable error codes and their HTTP mapping — the
// contract retrying clients program against.
func TestCodeTaxonomy(t *testing.T) {
	cases := []struct {
		err    error
		code   string
		status int
	}{
		{sql.ErrOverloaded, CodeOverloaded, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, CodeDeadline, http.StatusGatewayTimeout},
		{context.Canceled, CodeCancelled, StatusClientClosed},
		{&sql.QueryError{Panic: "boom"}, CodeInternal, http.StatusInternalServerError},
		// Classification order: a panic that wrapped a context error is
		// still an internal failure, not a client cancellation.
		{&sql.QueryError{Panic: context.Canceled}, CodeInternal, http.StatusInternalServerError},
		{errors.New("sql: no such column"), CodeParse, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := Code(tc.err); got != tc.code {
			t.Errorf("Code(%v) = %q, want %q", tc.err, got, tc.code)
		}
		if got := HTTPStatus(tc.code); got != tc.status {
			t.Errorf("HTTPStatus(%q) = %d, want %d", tc.code, got, tc.status)
		}
	}
}

// TestContextualErrors drives the deadline and cancellation codes through
// the real handler: a request arriving with an already-dead context must
// answer 504/499 with the matching taxonomy code.
func TestContextualErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	h := srv.Handler()

	expired, cancelExpired := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelExpired()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/query?q="+url.QueryEscape(testQuery), nil)
	h.ServeHTTP(rec, req.WithContext(expired))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status = %d, want 504", rec.Code)
	}
	if er := decodeError(t, rec); er.Error.Code != CodeDeadline {
		t.Fatalf("expired deadline: code = %q", er.Error.Code)
	}

	cancelled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodGet, "/query?q="+url.QueryEscape(testQuery), nil)
	h.ServeHTTP(rec, req.WithContext(cancelled))
	if rec.Code != StatusClientClosed {
		t.Fatalf("cancelled client: status = %d, want 499", rec.Code)
	}
	if er := decodeError(t, rec); er.Error.Code != CodeCancelled {
		t.Fatalf("cancelled client: code = %q", er.Error.Code)
	}
}

func TestReadyzFlipAndDrainReject(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz = %d before drain", rec.Code)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("idle Shutdown: %v", err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d after drain, want 503", rec.Code)
	}

	rec = doQuery(h, testQuery)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("drained /query = %d, want 503", rec.Code)
	}
	er := decodeError(t, rec)
	if er.Error.Code != CodeOverloaded {
		t.Fatalf("drained /query code = %q, want %q", er.Error.Code, CodeOverloaded)
	}
	if rec.Header().Get("Retry-After") == "" || rec.Header().Get("X-Retry-After-Ms") == "" {
		t.Fatal("overload response missing Retry-After / X-Retry-After-Ms headers")
	}
	if er.RetryAfterMs < 1 {
		t.Fatalf("retry_after_ms = %d, want >= 1", er.RetryAfterMs)
	}
	if st := srv.Stats(); st.DrainRejected != 1 || !st.Draining {
		t.Fatalf("stats after drain reject: %+v", st)
	}

	// Shutdown is idempotent: a second call on a drained server returns
	// immediately.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	h := srv.Handler()

	if rec := doQuery(h, testQuery); rec.Code != http.StatusOK {
		t.Fatalf("query = %d", rec.Code)
	}
	if rec := doQuery(h, "SELECT FROM nothing"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad query = %d", rec.Code)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats = %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.QueriesOK != 1 {
		t.Fatalf("requests = %d, ok = %d", st.Requests, st.QueriesOK)
	}
	var errs uint64
	for _, n := range st.Errors {
		errs += n
	}
	// Every request that enters the handler is answered exactly once: as a
	// success or under exactly one taxonomy code.
	if st.Requests != st.QueriesOK+errs {
		t.Fatalf("request accounting: %d requests, %d ok + %d errors", st.Requests, st.QueriesOK, errs)
	}
	if st.Exec.Admitted < 1 {
		t.Fatalf("exec stats missing: %+v", st.Exec)
	}
	if _, ok := st.Pools["selection"]; !ok {
		t.Fatal("pool stats missing")
	}
	if _, ok := st.PlanCaches["ahn2"]; !ok {
		t.Fatal("plan cache stats missing for ahn2")
	}
	if st.Sessions.Total < 1 {
		t.Fatalf("session table never touched: %+v", st.Sessions)
	}
}

// TestSessionCacheBound pins the drop-and-rebuild bound of the session
// table: an unbounded stream of distinct client addresses must never grow
// the map past its bound.
func TestSessionCacheBound(t *testing.T) {
	c := sessionCache{max: 4}
	now := time.Now()
	for i := 0; i < 40; i++ {
		c.touch("10.0.0."+string(rune('a'+i%26))+":123", now)
	}
	st := c.stats()
	if st.Entries > 4 {
		t.Fatalf("entries = %d, want <= 4", st.Entries)
	}
	if st.Total != 40 {
		t.Fatalf("total = %d, want 40", st.Total)
	}
	if st.Drops == 0 {
		t.Fatal("bound never dropped the table")
	}
}

// TestShutdownDrainZeroPoolDrift proves the headline drain contract: a
// shutdown racing a herd of in-flight queries answers every request and
// returns every pooled buffer — outstanding counts level across the cycle.
func TestShutdownDrainZeroPoolDrift(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	h := srv.Handler()
	before := poolOutstanding()

	const clients, perClient = 8, 4
	statuses := make(chan int, clients*perClient)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				statuses <- doQuery(h, testQuery).Code
			}
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	close(statuses)

	var ok, rejected int
	for code := range statuses {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			rejected++
		case http.StatusGatewayTimeout, StatusClientClosed:
			// A straggler cancelled by the drain deadline — still answered.
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if ok+rejected == 0 {
		t.Fatal("no request completed at all")
	}
	if drift := poolOutstanding() - before; drift != 0 {
		t.Fatalf("pool drift across drain: %d buffers outstanding", drift)
	}
	st := srv.Stats()
	var errs uint64
	for _, n := range st.Errors {
		errs += n
	}
	if st.Requests != st.QueriesOK+errs {
		t.Fatalf("request accounting: %d requests, %d ok + %d errors", st.Requests, st.QueriesOK, errs)
	}
}

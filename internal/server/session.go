// The per-connection session table. Each TCP connection (keyed by its
// remote address, unique per connection) gets a small session record —
// query count, last activity — surfaced through /stats. A hostile client
// opening unbounded connections must not grow the map forever, so past the
// bound the whole table is dropped and rebuilt from the live traffic (the
// same drop-and-rebuild policy as the statement and plan caches below the
// serving layer; the boundedcache analyzer enforces the shape).
package server

import (
	"sync"
	"time"
)

// session is one connection's accumulated state.
type session struct {
	queries  uint64
	lastSeen int64 // unix nanos
}

// sessionCache is the bounded per-connection session table.
type sessionCache struct {
	mu       sync.Mutex
	sessions map[string]*session
	max      int

	total uint64 // sessions ever created (survives rebuilds)
	drops uint64 // whole-table rebuilds forced by the bound
}

// touch records one query on addr's session, creating it if needed and
// dropping the table first when it outgrew the bound.
func (c *sessionCache) touch(addr string, now time.Time) {
	c.mu.Lock()
	s := c.sessions[addr]
	if s == nil {
		if c.sessions == nil || len(c.sessions) >= c.max {
			if len(c.sessions) >= c.max {
				c.drops++
			}
			c.sessions = make(map[string]*session, 16)
		}
		s = &session{}
		c.sessions[addr] = s
		c.total++
	}
	s.queries++
	s.lastSeen = now.UnixNano()
	c.mu.Unlock()
}

// SessionStats reports the session table's occupancy and churn.
type SessionStats struct {
	// Entries is the current table occupancy (bounded by MaxSessions).
	Entries int `json:"entries"`
	// Total is the number of sessions ever created, across rebuilds.
	Total uint64 `json:"total"`
	// Drops is the number of whole-table rebuilds the bound forced.
	Drops uint64 `json:"drops"`
}

// stats snapshots the table.
func (c *sessionCache) stats() SessionStats {
	c.mu.Lock()
	st := SessionStats{Entries: len(c.sessions), Total: c.total, Drops: c.drops}
	c.mu.Unlock()
	return st
}

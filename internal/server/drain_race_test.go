package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"gisnav/internal/geom"
	"gisnav/internal/synth"
)

// TestDrainRaceEpochBumps is the -race workhorse for the serving layer:
// client goroutines hammer /query while another goroutine bumps the table
// epoch (the append-path signal, safe against concurrent readers) and a
// drain starts mid-flight. Every request must be answered with a taxonomy
// status, the pools must be level afterwards, and a real append once the
// server has quiesced must be visible to the executor's next query — no
// stale plan survives the churn.
func TestDrainRaceEpochBumps(t *testing.T) {
	srv, pc := newTestServer(t, Config{DefaultTimeout: 2 * time.Second})
	h := srv.Handler()
	before := poolOutstanding()

	stop := make(chan struct{})
	var clients, bumper sync.WaitGroup

	bumper.Add(1)
	go func() {
		defer bumper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pc.InvalidateIndexes()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const runners = 6
	for r := 0; r < runners; r++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch code := doQuery(h, testQuery).Code; code {
				case http.StatusOK, http.StatusServiceUnavailable,
					http.StatusGatewayTimeout, StatusClientClosed:
				default:
					t.Errorf("unexpected status %d", code)
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	clients.Wait()
	bumper.Wait()

	if drift := poolOutstanding() - before; drift != 0 {
		t.Fatalf("pool drift across racing drain: %d buffers outstanding", drift)
	}

	// Quiesced now (drain complete, writers joined): a real append must be
	// observed by the executor's very next run.
	rows := pc.Len()
	region := geom.NewEnvelope(0, 0, 2000, 2000)
	terrain := synth.NewTerrain(81, region)
	pc.AppendLAS(synth.GenerateTile(terrain, synth.TileSpec{Env: region, Density: 0.001, Seed: 12}))
	if pc.Len() == rows {
		t.Fatal("append added no rows; the staleness check is vacuous")
	}
	res, err := srv.Exec().Query(`SELECT count(*) FROM ahn2`)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(res.Rows[0][0].Num); got != pc.Len() {
		t.Fatalf("post-append count(*) = %d, table has %d rows (stale plan?)", got, pc.Len())
	}

	// The drained server still reports stats coherently.
	rec := doQuery(h, testQuery)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query = %d, want 503", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeOverloaded {
		t.Fatalf("post-drain code = %q", er.Error.Code)
	}
}

// Package server is the HTTP/JSON serving layer over the SQL executor —
// the multi-user front door the ROADMAP's "millions of users" north star
// asks for, built for robustness under hostile conditions rather than as a
// thin endpoint:
//
//   - Deadline propagation: a client-supplied timeout (X-Query-Timeout-Ms
//     header or timeout_ms parameter) is clamped by the server-side
//     maximum and wired into Executor.QueryContext, so the admission
//     gate's EWMA doomed-deadline shedding works end-to-end and every
//     kernel loop below polls the request's cancellation.
//   - Overload resilience: admission-gate sheds (sql.ErrOverloaded) map to
//     503 with a jittered Retry-After hint derived from the gate's run
//     latency estimate, and every failure carries a stable machine-
//     readable code (errors.go) so clients can implement retry policies.
//     Panics isolated into *sql.QueryError surface as 500 with the
//     statement already poisoned for replan.
//   - Graceful shutdown: Shutdown flips /readyz, rejects new queries,
//     drains in-flight requests up to the caller's deadline, then cancels
//     stragglers through their run contexts — every request is answered,
//     every pooled buffer returns (the lifecycle drain below guarantees
//     the latter; the chaos test proves both).
//   - Slow-client and abuse protection: HTTPServer configures read/
//     header/write timeouts, request bodies are size-bounded, and the
//     per-connection session table is bounded with drop-and-rebuild
//     (session.go).
//   - Observability: /healthz (process liveness), /readyz (accepting
//     queries), /stats (lifecycle counters, statement/plan/pool caches,
//     session table, per-code error counts) as JSON.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gisnav/internal/engine"
	"gisnav/internal/faultpoint"
	"gisnav/internal/pyramid"
	"gisnav/internal/sql"
)

// Config carries the server's tunables. Zero values select the documented
// defaults; DB is required.
type Config struct {
	// DB is the engine catalog queries run against.
	DB *engine.DB
	// Exec runs the queries; built fresh over DB when nil. Passing one in
	// lets the embedding process share its executor (and its statement
	// cache and admission gate) with the serving layer.
	Exec *sql.Executor
	// MaxTimeout clamps client-supplied query timeouts (default 30s). A
	// client asking for more silently gets MaxTimeout — the server's
	// resources are the server's to bound.
	MaxTimeout time.Duration
	// DefaultTimeout applies when the client supplies no timeout (default
	// 10s). Every query runs under SOME deadline: an unbounded query from
	// a disconnected client would otherwise hold an admission slot forever.
	DefaultTimeout time.Duration
	// MaxRequestBytes bounds the request body (default 1 MiB).
	MaxRequestBytes int64
	// MaxSessions bounds the per-connection session table (default 1024).
	MaxSessions int
	// ReadTimeout / ReadHeaderTimeout / IdleTimeout configure the
	// slow-client protection of HTTPServer (defaults 15s / 5s / 60s). The
	// write timeout derives from MaxTimeout so a legitimate long query is
	// never cut mid-response.
	ReadTimeout       time.Duration
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
}

// Server serves SQL over HTTP/JSON. Create with New, expose with Handler
// or HTTPServer, stop with Shutdown.
type Server struct {
	cfg  Config
	db   *engine.DB
	exec *sql.Executor
	mux  *http.ServeMux

	// runCtx parents every query context; cancelRuns fires it when the
	// drain deadline passes, cancelling stragglers through the lifecycle
	// layer's block-boundary polls.
	runCtx     context.Context
	cancelRuns context.CancelFunc

	// The drain gate: enter/leave track in-flight queries under mu, and
	// idle closes exactly once when draining with none in flight. A plain
	// mutex instead of a WaitGroup: Add-during-Wait on a zero counter is a
	// WaitGroup misuse, and drain racing new requests is this server's
	// normal shutdown mode, not an edge case.
	mu         sync.Mutex
	draining   bool
	inflight   int
	idleClosed bool
	idle       chan struct{}

	sessions sessionCache

	requests      atomic.Uint64
	queriesOK     atomic.Uint64
	drainRejected atomic.Uint64
	errCounts     [5]atomic.Uint64 // indexed by codeIndex
}

// New builds a Server over cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.DefaultTimeout > cfg.MaxTimeout {
		cfg.DefaultTimeout = cfg.MaxTimeout
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 1 << 20
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 15 * time.Second
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	exec := cfg.Exec
	if exec == nil {
		exec = sql.New(cfg.DB)
	}
	s := &Server{
		cfg:  cfg,
		db:   cfg.DB,
		exec: exec,
		idle: make(chan struct{}),
	}
	s.sessions.max = cfg.MaxSessions
	s.runCtx, s.cancelRuns = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// Exec returns the executor the server runs queries through.
func (s *Server) Exec() *sql.Executor { return s.exec }

// Handler returns the server's routing handler, for embedding under a
// caller-owned http.Server or test harness.
func (s *Server) Handler() http.Handler { return s.mux }

// HTTPServer returns an http.Server on addr with the slow-client
// protection configured: header/read timeouts bound how long a trickling
// client can hold a connection pre-handler, the write timeout covers the
// longest permitted query plus response-write slack, and header size is
// capped. Pair with Shutdown: stop the listener (http.Server.Shutdown),
// then drain queries (Server.Shutdown).
func (s *Server) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadTimeout:       s.cfg.ReadTimeout,
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		WriteTimeout:      s.cfg.MaxTimeout + 15*time.Second,
		IdleTimeout:       s.cfg.IdleTimeout,
		MaxHeaderBytes:    1 << 14,
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	d := s.draining
	s.mu.Unlock()
	return d
}

// Shutdown drains the server: new queries are rejected (503, and /readyz
// flips), in-flight queries run to completion until ctx's deadline, and
// stragglers past it are cancelled through their run contexts — their
// handlers still answer with a typed error, and the lifecycle layer
// returns their pooled buffers. Returns nil on a clean drain, ctx.Err()
// when stragglers had to be cancelled. Safe to call more than once; every
// call waits for quiescence.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 && !s.idleClosed {
		s.idleClosed = true
		close(s.idle)
	}
	s.mu.Unlock()
	select {
	case <-s.idle:
		return nil
	case <-ctx.Done():
		s.cancelRuns()
		<-s.idle
		return ctx.Err()
	}
}

// enter admits one request into the drain gate; false means the server is
// draining and the request must be rejected.
func (s *Server) enter() bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false
	}
	s.inflight++
	s.mu.Unlock()
	return true
}

// leave retires one request, closing the idle gate when a drain is waiting
// on the last one.
func (s *Server) leave() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 && !s.idleClosed {
		s.idleClosed = true
		close(s.idle)
	}
	s.mu.Unlock()
}

// --- query handling ---------------------------------------------------------

// queryRequest is the POST body of /query.
type queryRequest struct {
	SQL       string `json:"sql"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
}

// queryResponse is the success body of /query.
type queryResponse struct {
	Columns   []string `json:"columns"`
	Rows      [][]any  `json:"rows"`
	ElapsedUs int64    `json:"elapsed_us"`
}

// errorResponse is the failure body of /query; Code is one of the stable
// taxonomy codes and RetryAfterMs rides along on overload sheds.
type errorResponse struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if !s.enter() {
		s.drainRejected.Add(1)
		s.writeError(w, CodeOverloaded, errors.New("server: draining"))
		return
	}
	defer s.leave()
	// Handler-level panic isolation: anything the query lifecycle didn't
	// already catch (it recovers execution panics into *sql.QueryError)
	// still answers this request instead of killing the connection without
	// a response. Declared after the leave defer so the drain gate always
	// settles last.
	defer func() {
		if p := recover(); p != nil {
			s.writeError(w, CodeInternal, fmt.Errorf("server: handler panicked: %v", p))
		}
	}()
	if err := faultpoint.Hit("server.handler"); err != nil {
		s.writeError(w, CodeInternal, err)
		return
	}
	src, timeout, err := s.parseQueryRequest(r)
	if err != nil {
		s.writeError(w, CodeParse, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// A drain deadline passing mid-query cancels the straggler through the
	// same context the kernels poll.
	stop := context.AfterFunc(s.runCtx, cancel)
	defer stop()

	start := time.Now()
	res, err := s.exec.QueryUntracedContext(ctx, src)
	elapsed := time.Since(start)
	if err != nil {
		s.writeError(w, Code(err), err)
		return
	}
	s.queriesOK.Add(1)
	s.sessions.touch(r.RemoteAddr, time.Now())
	s.writeJSON(w, http.StatusOK, &queryResponse{
		Columns:   res.Columns,
		Rows:      encodeRows(res.Rows),
		ElapsedUs: elapsed.Microseconds(),
	})
}

// parseQueryRequest extracts the statement and effective timeout: GET reads
// the q and timeout_ms parameters, POST a size-bounded JSON body; the
// X-Query-Timeout-Ms header overrides either. Client timeouts are clamped
// to (0, MaxTimeout]; absent means DefaultTimeout.
func (s *Server) parseQueryRequest(r *http.Request) (src string, timeout time.Duration, err error) {
	var ms int64
	switch r.Method {
	case http.MethodGet:
		src = r.URL.Query().Get("q")
		if v := r.URL.Query().Get("timeout_ms"); v != "" {
			ms, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return "", 0, fmt.Errorf("server: bad timeout_ms %q", v)
			}
		}
	case http.MethodPost:
		var req queryRequest
		body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxRequestBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return "", 0, fmt.Errorf("server: bad request body: %w", err)
		}
		src, ms = req.SQL, req.TimeoutMs
	default:
		return "", 0, fmt.Errorf("server: method %s not allowed on /query", r.Method)
	}
	if h := r.Header.Get("X-Query-Timeout-Ms"); h != "" {
		ms, err = strconv.ParseInt(h, 10, 64)
		if err != nil {
			return "", 0, fmt.Errorf("server: bad X-Query-Timeout-Ms %q", h)
		}
	}
	if src == "" {
		return "", 0, errors.New("server: empty statement (use ?q= or a JSON body with \"sql\")")
	}
	timeout = s.cfg.DefaultTimeout
	if ms != 0 {
		if ms < 0 {
			return "", 0, fmt.Errorf("server: negative timeout_ms %d", ms)
		}
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	return src, timeout, nil
}

// encodeRows converts result values into their JSON-native forms: numbers
// as numbers, strings as strings, booleans as booleans, NULL as null, and
// geometries as WKT strings.
func encodeRows(rows [][]sql.Value) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		enc := make([]any, len(row))
		for j, v := range row {
			switch v.Kind {
			case sql.KindNum:
				enc[j] = v.Num
			case sql.KindStr:
				enc[j] = v.Str
			case sql.KindBool:
				enc[j] = v.Bool
			case sql.KindNull:
				enc[j] = nil
			default:
				enc[j] = v.String()
			}
		}
		out[i] = enc
	}
	return out
}

// retryAfter derives the overload backoff hint: one typical run (by then a
// slot has likely freed) plus uniform jitter of another run, so a stampede
// of shed clients re-arrives spread over [1x, 2x) of the latency estimate
// instead of as a synchronized second stampede. Clamped to [1ms, 5s]; with
// no estimate yet (cold gate) a flat 25ms stands in.
func (s *Server) retryAfter() time.Duration {
	est := time.Duration(s.exec.ExecStats().EWMARunNanos)
	if est <= 0 {
		est = 25 * time.Millisecond
	}
	d := est + time.Duration(rand.Int63n(int64(est)))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// codeIndex maps a stable error code to its counter slot.
func codeIndex(code string) int {
	switch code {
	case CodeOverloaded:
		return 0
	case CodeDeadline:
		return 1
	case CodeCancelled:
		return 2
	case CodeParse:
		return 3
	default:
		return 4
	}
}

// writeError answers the request with the taxonomy code's status and JSON
// body, attaching the Retry-After backoff hint to overload sheds (both the
// standard header, in whole seconds, and X-Retry-After-Ms for clients that
// can back off at millisecond granularity).
func (s *Server) writeError(w http.ResponseWriter, code string, err error) {
	s.errCounts[codeIndex(code)].Add(1)
	var resp errorResponse
	resp.Error.Code = code
	resp.Error.Message = err.Error()
	if code == CodeOverloaded {
		ra := s.retryAfter()
		resp.RetryAfterMs = ra.Milliseconds()
		if resp.RetryAfterMs < 1 {
			resp.RetryAfterMs = 1
		}
		secs := int64((ra + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(resp.RetryAfterMs, 10))
	}
	s.writeJSON(w, HTTPStatus(code), &resp)
}

// writeJSON writes one JSON response. The response-write faultpoint sits
// between status and body so the chaos tests can stall or fail the write
// path itself; a write error past WriteHeader is unreportable to the
// client and only counted.
func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(body)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.WriteHeader(status)
	if err := faultpoint.Hit("server.response.write"); err != nil {
		return
	}
	w.Write(append(data, '\n'))
}

// --- observability endpoints ------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ready\n"))
}

// Stats is the /stats payload: the serving layer's own counters plus every
// observability surface of the layers below it.
type Stats struct {
	Draining      bool              `json:"draining"`
	Requests      uint64            `json:"requests"`
	QueriesOK     uint64            `json:"queries_ok"`
	DrainRejected uint64            `json:"drain_rejected"`
	Errors        map[string]uint64 `json:"errors"`
	Sessions      SessionStats      `json:"sessions"`

	Exec       sql.ExecStats                    `json:"exec"`
	StmtCache  sql.StmtCacheStats               `json:"stmt_cache"`
	PlanCaches map[string]engine.PlanCacheStats `json:"plan_caches"`
	Pools      map[string]engine.PoolStats      `json:"pools"`
	Pyramid    pyramid.Stats                    `json:"pyramid"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	st := Stats{
		Draining:      s.Draining(),
		Requests:      s.requests.Load(),
		QueriesOK:     s.queriesOK.Load(),
		DrainRejected: s.drainRejected.Load(),
		Errors: map[string]uint64{
			CodeOverloaded: s.errCounts[0].Load(),
			CodeDeadline:   s.errCounts[1].Load(),
			CodeCancelled:  s.errCounts[2].Load(),
			CodeParse:      s.errCounts[3].Load(),
			CodeInternal:   s.errCounts[4].Load(),
		},
		Sessions:   s.sessions.stats(),
		Exec:       s.exec.ExecStats(),
		StmtCache:  s.exec.StmtCacheStats(),
		PlanCaches: map[string]engine.PlanCacheStats{},
		Pools: map[string]engine.PoolStats{
			"selection": engine.SelectionPoolStats(),
			"range":     engine.RangePoolStats(),
			"f64":       engine.F64PoolStats(),
		},
		Pyramid: pyramid.Snapshot(),
	}
	for _, name := range s.db.Tables() {
		if pc, err := s.db.PointCloud(name); err == nil {
			st.PlanCaches[name] = pc.PlanCacheStats()
		}
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Write(append(data, '\n'))
}

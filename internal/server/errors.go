// The serving layer's stable error taxonomy. Every query failure maps to
// one of five machine-readable codes so clients can implement retry
// policies against the CODE, never against error strings (which are free
// to change between versions):
//
//	overloaded — the admission gate shed the query, or the server is
//	             draining. Retryable: honour the Retry-After hint.
//	deadline   — the query's deadline expired (client-supplied or the
//	             server clamp). Retryable with a longer timeout.
//	cancelled  — the client went away mid-query (connection closed).
//	parse      — the statement failed to parse, bind, or evaluate; the
//	             request is at fault. NOT retryable as-is.
//	internal   — a panic isolated into *sql.QueryError. The statement is
//	             poisoned and replans on its next run, so a retry is safe
//	             and exercises a fresh plan.
package server

import (
	"context"
	"errors"
	"net/http"

	"gisnav/internal/sql"
)

// The stable error codes. These strings are API: clients switch on them.
const (
	CodeOverloaded = "overloaded"
	CodeDeadline   = "deadline"
	CodeCancelled  = "cancelled"
	CodeParse      = "parse"
	CodeInternal   = "internal"
)

// StatusClientClosed mirrors nginx's non-standard 499 "client closed
// request": the query was cancelled by the client side, so no standard 4xx
// or 5xx fits (the server did nothing wrong, and the client is gone).
const StatusClientClosed = 499

// Code classifies an error from the query lifecycle into its stable code.
// The order matters: a *sql.QueryError may wrap a context error via its
// panic value, but a recovered panic is an internal failure first.
func Code(err error) string {
	var qe *sql.QueryError
	switch {
	case errors.As(err, &qe):
		return CodeInternal
	case errors.Is(err, sql.ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeCancelled
	default:
		// Everything else the SQL layer surfaces — lexer, parser, binder,
		// evaluator — is a statement problem: the request is malformed.
		return CodeParse
	}
}

// HTTPStatus maps a stable error code to its HTTP status.
func HTTPStatus(code string) int {
	switch code {
	case CodeOverloaded:
		return http.StatusServiceUnavailable
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeCancelled:
		return StatusClientClosed
	case CodeParse:
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

package engine

import (
	"math/rand"
	"sync"
	"testing"

	"gisnav/internal/colstore"
)

// legacyFilterRowsOne is a verbatim copy of the pre-kernel filterRowsOne:
// typed value access, but operator re-dispatch through ColumnPred.Matches
// and float64 widening on every row. It is kept here as the benchmark
// baseline the kernels are measured against.
func legacyFilterRowsOne(col colstore.Column, rows []int, pred ColumnPred) []int {
	out := rows[:0]
	switch t := col.(type) {
	case *colstore.F64Column:
		vals := t.Values()
		for _, r := range rows {
			if pred.Matches(vals[r]) {
				out = append(out, r)
			}
		}
	case *colstore.U8Column:
		vals := t.Values()
		for _, r := range rows {
			if pred.Matches(float64(vals[r])) {
				out = append(out, r)
			}
		}
	case *colstore.U16Column:
		vals := t.Values()
		for _, r := range rows {
			if pred.Matches(float64(vals[r])) {
				out = append(out, r)
			}
		}
	case *colstore.I32Column:
		vals := t.Values()
		for _, r := range rows {
			if pred.Matches(float64(vals[r])) {
				out = append(out, r)
			}
		}
	default:
		for _, r := range rows {
			if pred.Matches(col.Value(r)) {
				out = append(out, r)
			}
		}
	}
	return out
}

const benchRows = 1 << 20 // 1M

var (
	benchOnce  sync.Once
	benchCloud *PointCloud
	benchIdent []int
)

// benchFixture builds a 1M-row cloud with random values in every kernel
// benchmark column, plus a reusable identity selection vector.
func benchFixture(b *testing.B) (*PointCloud, []int) {
	b.Helper()
	benchOnce.Do(func() {
		rng := rand.New(rand.NewSource(99))
		pc := NewPointCloud()
		for _, f := range pc.Schema().Fields {
			col := pc.Column(f.Name)
			switch f.Name {
			case ColClassification:
				for i := 0; i < benchRows; i++ {
					col.AppendValue(float64(rng.Intn(19)))
				}
			case ColIntensity:
				for i := 0; i < benchRows; i++ {
					col.AppendValue(float64(rng.Intn(1 << 16)))
				}
			case ColScanAngle:
				for i := 0; i < benchRows; i++ {
					col.AppendValue(float64(rng.Intn(60001) - 30000))
				}
			case ColZ:
				for i := 0; i < benchRows; i++ {
					col.AppendValue(rng.Float64() * 300)
				}
			default:
				// Cheap constant fill keeps the flat-table invariant.
				for i := 0; i < benchRows; i++ {
					col.AppendValue(0)
				}
			}
		}
		benchCloud = pc
		benchIdent = make([]int, benchRows)
		for i := range benchIdent {
			benchIdent[i] = i
		}
	})
	return benchCloud, benchIdent
}

// benchLegacy measures the pre-refactor arm: per-row Matches over an
// identity selection vector (scratch is reused, so allocations measure the
// dispatch loop only, as in the old FilterRows).
func benchLegacy(b *testing.B, column string, pred ColumnPred) {
	pc, ident := benchFixture(b)
	col := pc.Column(column)
	scratch := make([]int, len(ident))
	b.ReportAllocs()
	b.SetBytes(int64(benchRows) * int64(col.DType().Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, ident)
		legacyFilterRowsOne(col, scratch, pred)
	}
}

// benchKernel measures the compiled block kernel over the full column with
// a pooled result vector — the steady-state query path.
func benchKernel(b *testing.B, column string, pred ColumnPred) {
	pc, _ := benchFixture(b)
	col := pc.Column(column)
	k := CompileFilter(col, pred)
	b.ReportAllocs()
	b.SetBytes(int64(benchRows) * int64(col.DType().Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := k.FilterBlock(0, col.Len(), getRowBuf(col.Len()))
		RecycleRows(rows)
	}
}

var (
	predU8  = ColumnPred{Column: ColClassification, Op: CmpEQ, Value: 6}
	predU16 = ColumnPred{Column: ColIntensity, Op: CmpGT, Value: 60000}
	predI32 = ColumnPred{Column: ColScanAngle, Op: CmpBetween, Value: -5000, Value2: 5000}
	predF64 = ColumnPred{Column: ColZ, Op: CmpBetween, Value: 100, Value2: 130}
)

func BenchmarkFilterLegacyU8_1M(b *testing.B)  { benchLegacy(b, ColClassification, predU8) }
func BenchmarkFilterKernelU8_1M(b *testing.B)  { benchKernel(b, ColClassification, predU8) }
func BenchmarkFilterLegacyU16_1M(b *testing.B) { benchLegacy(b, ColIntensity, predU16) }
func BenchmarkFilterKernelU16_1M(b *testing.B) { benchKernel(b, ColIntensity, predU16) }
func BenchmarkFilterLegacyI32_1M(b *testing.B) { benchLegacy(b, ColScanAngle, predI32) }
func BenchmarkFilterKernelI32_1M(b *testing.B) { benchKernel(b, ColScanAngle, predI32) }
func BenchmarkFilterLegacyF64_1M(b *testing.B) { benchLegacy(b, ColZ, predF64) }
func BenchmarkFilterKernelF64_1M(b *testing.B) { benchKernel(b, ColZ, predF64) }

// BenchmarkFilterRowsKernel_1M measures the public FilterRows entry point
// end-to-end on the steady-state pooled path.
func BenchmarkFilterRowsKernel_1M(b *testing.B) {
	pc, _ := benchFixture(b)
	preds := []ColumnPred{predU8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := pc.FilterRows(nil, preds, nil)
		if err != nil {
			b.Fatal(err)
		}
		RecycleRows(rows)
	}
}

// BenchmarkAggregateLegacyClosure_1M vs the typed kernel: sum/min/max fused
// over the u16 intensity column.
func BenchmarkAggregateLegacyClosure_1M(b *testing.B) {
	pc, _ := benchFixture(b)
	col := pc.Column(ColIntensity)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		v, ok := naiveAggregate(col, nil, true, AggSum, pc.Len())
		if !ok {
			b.Fatal("naive aggregate undefined")
		}
		sink += v
	}
	_ = sink
}

func BenchmarkAggregateKernel_1M(b *testing.B) {
	pc, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		v, err := pc.Aggregate(nil, AggSum, ColIntensity, nil)
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

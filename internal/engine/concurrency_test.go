package engine

import (
	"sync"
	"testing"

	"gisnav/internal/geom"
)

// Concurrent readers: many goroutines querying one PointCloud (including
// the first query that triggers the imprint build) must agree and be
// race-free (run with -race).
func TestConcurrentQueries(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	boxes := []geom.Envelope{
		geom.NewEnvelope(0, 0, 300, 300),
		geom.NewEnvelope(200, 200, 700, 600),
		geom.NewEnvelope(500, 100, 900, 900),
		geom.NewEnvelope(50, 600, 450, 950),
	}
	// Reference results, computed serially first on a twin table so the
	// concurrent run still exercises the cold-start index build.
	twin, _ := buildCloud(t, 0.05)
	want := make([]int, len(boxes))
	for i, b := range boxes {
		want[i] = len(twin.SelectBox(b).Rows)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*len(boxes))
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, b := range boxes {
				got := len(pc.SelectBox(b).Rows)
				if got != want[i] {
					errs <- "box result mismatch under concurrency"
				}
				ex := &Explain{}
				if _, err := pc.Aggregate(nil, AggCount, "", ex); err != nil {
					errs <- err.Error()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// Concurrent vector-table queries share the lazily built R-tree.
func TestConcurrentVectorQueries(t *testing.T) {
	_, _, osm, _ := buildDemoDB(t)
	q := geom.NewEnvelope(100, 100, 1500, 1500).ToPolygon()
	ref := len(osm.SelectIntersects(q, &Explain{}))

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := len(osm.SelectIntersects(q, &Explain{})); got != ref {
				errs <- "vector result mismatch under concurrency"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

package engine

import (
	"testing"

	"gisnav/internal/cancel"
	"gisnav/internal/geom"
	"gisnav/internal/grid"
	"gisnav/internal/synth"
)

// Tests for the per-run lifecycle record (run.go): release-list tracking,
// drain semantics, and cooperative cancellation through the engine's
// public Run-variant entry points.

func selectionDrift(t *testing.T, fn func()) int64 {
	t.Helper()
	before := SelectionPoolStats().Outstanding
	fn()
	return SelectionPoolStats().Outstanding - before
}

func TestRunTrackDrain(t *testing.T) {
	var rs Run
	drift := selectionDrift(t, func() {
		rs.AcquireRows(16)
		rs.AcquireRows(16)
		if got := rs.Live(); got != 2 {
			t.Fatalf("Live = %d, want 2", got)
		}
		rs.Drain()
		if got := rs.Live(); got != 0 {
			t.Fatalf("Live after Drain = %d, want 0", got)
		}
		rs.Drain() // idempotent
	})
	if drift != 0 {
		t.Fatalf("drain left pool drift %d", drift)
	}
}

func TestRunRecycleUntracks(t *testing.T) {
	var rs Run
	drift := selectionDrift(t, func() {
		b := rs.AcquireRows(16)
		rs.RecycleRows(b)
		if got := rs.Live(); got != 0 {
			t.Fatalf("Live after recycle = %d, want 0", got)
		}
		// Drain after an explicit recycle must NOT put the buffer again:
		// a double-put would corrupt the pool's free list.
		rs.Drain()
	})
	if drift != 0 {
		t.Fatalf("recycle+drain drifted pool by %d", drift)
	}
}

func TestRunTrackAfterGrowth(t *testing.T) {
	// Track-after-production: a buffer that grew (reallocated) after
	// tracking would leave a stale base pointer in the release list. The
	// contract is that producers track the FINAL slice; this test pins the
	// identity mechanics untrack relies on.
	var rs Run
	b := rs.AcquireRows(1)
	grown := append(b, make([]int, 10_000)...) // forces reallocation
	rs.RecycleRows(b)                          // untracks by the original base
	if got := rs.Live(); got != 0 {
		t.Fatalf("Live = %d, want 0", got)
	}
	RecycleRows(grown) // the grown copy is pool-eligible on its own
}

func TestRunSwapRows(t *testing.T) {
	// Track-then-swap: the producer tracks the pooled buffer before a
	// growing call and swaps in the final slice after. Same base = no-op;
	// moved base = the entry follows the final slice, and accounting
	// stays balanced whichever buffer is eventually recycled.
	var rs Run
	drift := selectionDrift(t, func() {
		buf := rs.AcquireRows(4)
		same := rs.SwapRows(buf, buf[:2])
		if rs.Live() != 1 {
			t.Fatalf("Live after same-base swap = %d, want 1", rs.Live())
		}
		rs.RecycleRows(same)

		buf = rs.AcquireRows(1)
		grown := append(buf, make([]int, 10_000)...) // reallocates
		out := rs.SwapRows(buf, grown)
		if rs.Live() != 1 {
			t.Fatalf("Live after moved-base swap = %d, want 1", rs.Live())
		}
		rs.RecycleRows(out) // puts the grown buffer; the original is abandoned
		rs.Drain()
	})
	if drift != 0 {
		t.Fatalf("swap flows drifted pool by %d", drift)
	}
}

func testCloudForRun(t *testing.T) *PointCloud {
	t.Helper()
	region := geom.NewEnvelope(0, 0, 2000, 2000)
	terrain := synth.NewTerrain(31, region)
	pts := synth.GenerateTile(terrain, synth.TileSpec{Env: region, Density: 0.01, Seed: 11})
	pc := NewPointCloud()
	pc.AppendLAS(pts)
	return pc
}

func TestFilterRowsRunCancelled(t *testing.T) {
	pc := testCloudForRun(t)
	var rs Run
	done := make(chan struct{})
	close(done)
	rs.Bind(done)
	drift := selectionDrift(t, func() {
		rows, err := pc.FilterRowsRun(&rs, nil, []ColumnPred{{Column: "z", Op: CmpGT, Value: -1}}, nil)
		if err != cancel.ErrCancelled {
			t.Fatalf("err = %v, want cancel.ErrCancelled", err)
		}
		if rows != nil {
			t.Fatalf("cancelled filter returned rows")
		}
		rs.Drain()
	})
	if drift != 0 {
		t.Fatalf("cancelled filter drifted pool by %d", drift)
	}
}

func TestSelectRegionRunCancelled(t *testing.T) {
	pc := testCloudForRun(t)
	env := pc.Extent()
	region := grid.GeometryRegion{G: geom.NewEnvelope(env.MinX, env.MinY, env.MaxX, env.MaxY).ToPolygon()}
	var rs Run
	done := make(chan struct{})
	close(done)
	rs.Bind(done)
	drift := selectionDrift(t, func() {
		rows := pc.SelectRegionRowsRun(&rs, region)
		if !rs.Cancelled() {
			t.Fatal("run not cancelled")
		}
		// A fired token stops refinement within one block: the partial
		// result must be strictly smaller than the full selection.
		full := pc.SelectRegionRows(region)
		if len(rows) >= len(full) && len(full) > refinePollBlock {
			t.Fatalf("cancelled selection returned %d rows, full is %d", len(rows), len(full))
		}
		RecycleRows(full)
		rs.Drain()
	})
	if drift != 0 {
		t.Fatalf("cancelled selection drifted pool by %d", drift)
	}
}

// refinePollBlock mirrors grid.refineBlock for the partial-result bound
// above without exporting the constant.
const refinePollBlock = 4096

func TestGroupedAggregateRunCancelled(t *testing.T) {
	pc := testCloudForRun(t)
	rows := make([]int, pc.Len())
	for i := range rows {
		rows[i] = i
	}
	var rs Run
	done := make(chan struct{})
	close(done)
	rs.Bind(done)
	var res GroupedResult
	f64Before := F64PoolStats().Outstanding
	drift := selectionDrift(t, func() {
		err := pc.GroupedAggregateRun(&rs, rows, "classification",
			[]GroupedAggSpec{{Fn: engineAggCountForTest()}}, &res, nil)
		if err != cancel.ErrCancelled {
			t.Fatalf("err = %v, want cancel.ErrCancelled", err)
		}
		rs.Drain()
	})
	if drift != 0 {
		t.Fatalf("cancelled grouped aggregate drifted selection pool by %d", drift)
	}
	if d := F64PoolStats().Outstanding - f64Before; d != 0 {
		t.Fatalf("cancelled grouped aggregate drifted f64 pool by %d", d)
	}
}

func engineAggCountForTest() AggFunc { return AggCount }

func TestRunNilSafety(t *testing.T) {
	var rs *Run
	if rs.Cancelled() {
		t.Fatal("nil run reports cancelled")
	}
	if rs.Token() != nil {
		t.Fatal("nil run yields non-nil token")
	}
	if rs.Live() != 0 {
		t.Fatal("nil run has live buffers")
	}
	rs.Drain()
	b := rs.TrackRows(getRowBuf(4))
	rs.RecycleRows(b) // plain pool put
}

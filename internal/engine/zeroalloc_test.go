package engine

import (
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/grid"
	"gisnav/internal/synth"
)

// The acceptance bar for the repeated-query fast path: once imprints are
// built, kernels cached, and every buffer pooled, a steady-state query
// allocates nothing. testing.AllocsPerRun runs the closure once as warm-up,
// which is exactly the cold query that populates the caches and pools.

// TestSteadyStateSpatialQueryZeroAllocs covers the navigation bbox query
// through the explain-free path: imprint filter (pooled candidate ranges),
// grid refinement (pooled cell states), pooled selection vector.
func TestSteadyStateSpatialQueryZeroAllocs(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	// The interface conversion happens once, as in a real navigation session
	// where the region is built per user action, not per engine call.
	var region grid.Region = grid.GeometryRegion{G: geom.NewEnvelope(150, 150, 700, 620).ToPolygon()}
	pc.EnsureImprints()

	var got int
	allocs := testing.AllocsPerRun(50, func() {
		rows := pc.SelectRegionRows(region)
		got = len(rows)
		RecycleRows(rows)
	})
	if got == 0 {
		t.Fatal("query matched no rows; the measurement is vacuous")
	}
	if allocs != 0 {
		t.Fatalf("steady-state SelectRegionRows allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSteadyStateThematicQueryZeroAllocs covers the indexed range filter:
// cached range kernel, pooled candidate ranges, pooled selection vector.
func TestSteadyStateThematicQueryZeroAllocs(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	if _, err := pc.EnsureColumnImprint(ColZ); err != nil {
		t.Fatal(err)
	}

	var got int
	allocs := testing.AllocsPerRun(50, func() {
		rows, err := pc.FilterRangeIndexed(ColZ, 0, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		got = len(rows)
		RecycleRows(rows)
	})
	if got == 0 {
		t.Fatal("query matched no rows; the measurement is vacuous")
	}
	if allocs != 0 {
		t.Fatalf("steady-state FilterRangeIndexed allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPoolRetainsOversizeBuffers pins the pool-wide capacity budget: a
// single buffer bigger than any per-shard slice of the budget (e.g. the
// full-table selection vector of a multi-million-row cloud) must still be
// retained and reused, or large tables silently lose the zero-alloc steady
// state.
func TestPoolRetainsOversizeBuffers(t *testing.T) {
	const oversize = 5 << 20 // 5M rows ≈ 40 MiB, well past budget/poolShards
	allocs := testing.AllocsPerRun(10, func() {
		b := getRowBuf(oversize)
		RecycleRows(b)
	})
	if allocs != 0 {
		t.Fatalf("oversize buffers are not pooled: %.1f allocs/op, want 0", allocs)
	}
}

// TestSteadyStatePredicateFilterZeroAllocs covers FilterRows with cached
// predicate kernels over a pooled vector.
func TestSteadyStatePredicateFilterZeroAllocs(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	preds := []ColumnPred{
		{Column: ColClassification, Op: CmpEQ, Value: float64(synth.ClassGround)},
		{Column: ColIntensity, Op: CmpBetween, Value: 100, Value2: 900},
	}

	var got int
	allocs := testing.AllocsPerRun(50, func() {
		rows, err := pc.FilterRows(nil, preds, nil)
		if err != nil {
			t.Fatal(err)
		}
		got = len(rows)
		RecycleRows(rows)
	})
	if got == 0 {
		t.Fatal("query matched no rows; the measurement is vacuous")
	}
	if allocs != 0 {
		t.Fatalf("steady-state FilterRows allocates %.1f objects/op, want 0", allocs)
	}
}

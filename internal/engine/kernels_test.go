package engine

import (
	"math"
	"math/rand"
	"testing"

	"gisnav/internal/colstore"
	"gisnav/internal/geom"
	"gisnav/internal/grid"
)

// naiveFilterSel is the pre-kernel reference arm: per-row operator
// re-dispatch through ColumnPred.Matches over float64-widened values.
// Property tests and benchmarks compare the compiled kernels against it.
func naiveFilterSel(col colstore.Column, rows []int, pred ColumnPred) []int {
	var out []int
	for _, r := range rows {
		if pred.Matches(col.Value(r)) {
			out = append(out, r)
		}
	}
	return out
}

// naiveFilterAll scans the whole column with the reference arm.
func naiveFilterAll(col colstore.Column, pred ColumnPred) []int {
	var out []int
	for i, n := 0, col.Len(); i < n; i++ {
		if pred.Matches(col.Value(i)) {
			out = append(out, i)
		}
	}
	return out
}

// randomTestCloud fills every schema column with pseudo-random values drawn
// from its full native domain, plus adversarial float values (NaN, ±Inf) in
// the float columns.
func randomTestCloud(n int, seed int64) *PointCloud {
	rng := rand.New(rand.NewSource(seed))
	pc := NewPointCloud()
	for _, f := range pc.Schema().Fields {
		col := pc.Column(f.Name)
		for i := 0; i < n; i++ {
			switch f.Type {
			case colstore.F64:
				switch rng.Intn(50) {
				case 0:
					col.AppendValue(math.NaN())
				case 1:
					col.AppendValue(math.Inf(1))
				case 2:
					col.AppendValue(math.Inf(-1))
				default:
					col.AppendValue((rng.Float64() - 0.5) * 2000)
				}
			case colstore.I64:
				col.AppendValue(float64(rng.Int63n(1<<40) - 1<<39))
			case colstore.I32:
				col.AppendValue(float64(rng.Int31()) - float64(1<<30))
			case colstore.U16:
				col.AppendValue(float64(rng.Intn(1 << 16)))
			case colstore.U8:
				col.AppendValue(float64(rng.Intn(1 << 8)))
			default:
				col.AppendValue(float64(rng.Intn(100)))
			}
		}
	}
	return pc
}

// randomPred draws a predicate with adversarial constants: integral,
// non-integral, out-of-range, negative, NaN and ±Inf.
func randomPred(rng *rand.Rand, column string) ColumnPred {
	ops := []CmpOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, CmpBetween}
	randConst := func() float64 {
		switch rng.Intn(12) {
		case 0:
			return math.NaN()
		case 1:
			return math.Inf(1)
		case 2:
			return math.Inf(-1)
		case 3:
			return float64(rng.Intn(100000)) + 0.5 // non-integral
		case 4:
			return -float64(rng.Intn(1000)) // below unsigned domains
		case 5:
			return 1e18 // above every integer domain
		default:
			if rng.Intn(2) == 0 {
				return float64(rng.Intn(70000)) // integral, often in range
			}
			return (rng.Float64() - 0.5) * 150000
		}
	}
	p := ColumnPred{Column: column, Op: ops[rng.Intn(len(ops))], Value: randConst()}
	if p.Op == CmpBetween {
		p.Value2 = randConst()
	}
	return p
}

func equalRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKernelMatchesNaiveAllTypes is the core property test: for every
// column type and random adversarial predicates, the compiled kernel's
// block and selection paths must be bit-identical to the per-row Matches
// reference.
func TestKernelMatchesNaiveAllTypes(t *testing.T) {
	pc := randomTestCloud(3000, 1)
	rng := rand.New(rand.NewSource(2))
	columns := []string{ColZ, ColIntensity, ColClassification, ColScanAngle, ColWaveOffset, ColGPSTime}
	// A fixed scattered selection vector exercises the gather path.
	var sel []int
	for i := 0; i < pc.Len(); i += 1 + rng.Intn(4) {
		sel = append(sel, i)
	}
	for _, name := range columns {
		col := pc.Column(name)
		for trial := 0; trial < 300; trial++ {
			pred := randomPred(rng, name)
			k := CompileFilter(col, pred)
			wantAll := naiveFilterAll(col, pred)
			gotAll := k.FilterBlock(0, col.Len(), nil)
			if !equalRows(gotAll, wantAll) {
				t.Fatalf("%s %s: block kernel %d rows, naive %d rows", name, pred, len(gotAll), len(wantAll))
			}
			wantSel := naiveFilterSel(col, sel, pred)
			gotSel := k.FilterSel(sel, nil)
			if !equalRows(gotSel, wantSel) {
				t.Fatalf("%s %s: sel kernel %d rows, naive %d rows", name, pred, len(gotSel), len(wantSel))
			}
		}
	}
}

// TestKernelBlockSubranges checks block boundaries: filtering a column in
// arbitrary chunks must concatenate to the full-scan result.
func TestKernelBlockSubranges(t *testing.T) {
	pc := randomTestCloud(1000, 3)
	rng := rand.New(rand.NewSource(4))
	col := pc.Column(ColIntensity)
	for trial := 0; trial < 50; trial++ {
		pred := randomPred(rng, ColIntensity)
		k := CompileFilter(col, pred)
		var chunked []int
		for lo := 0; lo < col.Len(); {
			hi := lo + 1 + rng.Intn(200)
			if hi > col.Len() {
				hi = col.Len()
			}
			chunked = k.FilterBlock(lo, hi, chunked)
			lo = hi
		}
		if want := naiveFilterAll(col, pred); !equalRows(chunked, want) {
			t.Fatalf("%s: chunked blocks disagree with full scan", pred)
		}
	}
}

// TestFilterRangeIndexedMatchesNaive covers the whole indexed path —
// imprint candidates + block kernels — against both the kernel full scan
// and the naive reference, over random ranges on every imprintable type.
func TestFilterRangeIndexedMatchesNaive(t *testing.T) {
	pc := randomTestCloud(4000, 5)
	rng := rand.New(rand.NewSource(6))
	for _, name := range []string{ColZ, ColIntensity, ColClassification, ColScanAngle} {
		col := pc.Column(name)
		for trial := 0; trial < 60; trial++ {
			lo := (rng.Float64() - 0.5) * 150000
			hi := lo + rng.Float64()*80000
			ex := &Explain{}
			indexed, err := pc.FilterRangeIndexed(name, lo, hi, ex)
			if err != nil {
				t.Fatal(err)
			}
			scanned, err := pc.FilterRangeScan(name, lo, hi, ex)
			if err != nil {
				t.Fatal(err)
			}
			naive := naiveFilterAll(col, ColumnPred{Column: name, Op: CmpBetween, Value: lo, Value2: hi})
			if !equalRows(indexed, scanned) || !equalRows(scanned, naive) {
				t.Fatalf("%s in [%g,%g]: indexed %d, scan %d, naive %d rows",
					name, lo, hi, len(indexed), len(scanned), len(naive))
			}
			RecycleRows(indexed)
			RecycleRows(scanned)
		}
	}
}

// TestFilterRangeParallelIdentical forces the parallel block path and
// asserts bit-identical output with the serial arm.
func TestFilterRangeParallelIdentical(t *testing.T) {
	pc := randomTestCloud(300_000, 7)
	lo, hi := -20000.0, 20000.0
	ex := &Explain{}
	serial, err := pc.FilterRangeIndexed(ColScanAngle, lo, hi, ex)
	if err != nil {
		t.Fatal(err)
	}
	pc.Parallel = true
	par, err := pc.FilterRangeIndexed(ColScanAngle, lo, hi, ex)
	pc.Parallel = false
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 {
		t.Fatal("test range selected nothing; widen it")
	}
	if !equalRows(serial, par) {
		t.Fatalf("parallel %d rows vs serial %d rows", len(par), len(serial))
	}
}

// TestFilterRowsDoesNotClobberCallerSlice is the regression test for the
// old `out := rows[:0]` aliasing: the caller's selection vector must be
// untouched after FilterRows.
func TestFilterRowsDoesNotClobberCallerSlice(t *testing.T) {
	pc := randomTestCloud(500, 8)
	mine := make([]int, 0, pc.Len())
	for i := 0; i < pc.Len(); i++ {
		mine = append(mine, i)
	}
	snapshot := append([]int(nil), mine...)
	ex := &Explain{}
	out, err := pc.FilterRows(mine, []ColumnPred{
		{Column: ColClassification, Op: CmpLE, Value: 100},
		{Column: ColIntensity, Op: CmpGT, Value: 30000},
	}, ex)
	if err != nil {
		t.Fatal(err)
	}
	if !equalRows(mine, snapshot) {
		t.Fatal("FilterRows mutated the caller's slice")
	}
	if len(out) > 0 && &out[0] == &mine[0] {
		t.Fatal("FilterRows returned a vector aliasing the caller's backing array")
	}
	// And the result equals the chained naive passes.
	want := naiveFilterSel(pc.Column(ColIntensity),
		naiveFilterSel(pc.Column(ColClassification), snapshot, ColumnPred{Column: ColClassification, Op: CmpLE, Value: 100}),
		ColumnPred{Column: ColIntensity, Op: CmpGT, Value: 30000})
	if !equalRows(out, want) {
		t.Fatalf("filtered %d rows, naive %d", len(out), len(want))
	}
}

// TestFilterRowsMatchesNaiveChains runs random multi-predicate conjunctions
// through FilterRows and the naive reference.
func TestFilterRowsMatchesNaiveChains(t *testing.T) {
	pc := randomTestCloud(2000, 9)
	rng := rand.New(rand.NewSource(10))
	columns := []string{ColZ, ColIntensity, ColClassification, ColScanAngle, ColWaveOffset}
	for trial := 0; trial < 80; trial++ {
		var preds []ColumnPred
		for i := 0; i < 1+rng.Intn(3); i++ {
			preds = append(preds, randomPred(rng, columns[rng.Intn(len(columns))]))
		}
		ex := &Explain{}
		got, err := pc.FilterRows(nil, preds, ex)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int, pc.Len())
		for i := range want {
			want[i] = i
		}
		for _, p := range preds {
			want = naiveFilterSel(pc.Column(p.Column), want, p)
		}
		if !equalRows(got, want) {
			t.Fatalf("preds %v: kernel %d rows, naive %d rows", preds, len(got), len(want))
		}
		RecycleRows(got)
	}
}

// TestSelectRegionMatchesScan is the spatial property test: the pooled
// imprints+grid pipeline must return exactly the rows of the exhaustive
// no-index SelectRegionScan arm, over random boxes and polygons.
func TestSelectRegionMatchesScan(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		var region grid.Region
		if trial%2 == 0 {
			x, y := rng.Float64()*900, rng.Float64()*900
			w, h := rng.Float64()*300+1, rng.Float64()*300+1
			region = grid.GeometryRegion{G: geom.NewEnvelope(x, y, x+w, y+h).ToPolygon()}
		} else {
			cx, cy := rng.Float64()*1000, rng.Float64()*1000
			r := rng.Float64()*200 + 10
			region = grid.GeometryRegion{G: geom.Polygon{Shell: geom.Ring{Points: []geom.Point{
				{X: cx - r, Y: cy - r}, {X: cx + r, Y: cy - r/2}, {X: cx + r/2, Y: cy + r}, {X: cx - r/2, Y: cy + r/2},
			}}}}
		}
		sel := pc.SelectRegion(region)
		scan := pc.SelectRegionScan(region)
		if !equalRows(sel.Rows, scan.Rows) {
			t.Fatalf("trial %d: indexed %d rows, scan %d rows", trial, len(sel.Rows), len(scan.Rows))
		}
		sel.Release()
	}
}

// TestRecycledVectorsAreReused exercises the pool contract: a released
// vector with sufficient capacity comes back on the next query.
func TestRecycledVectorsAreReused(t *testing.T) {
	pc := randomTestCloud(1000, 12)
	ex := &Explain{}
	rows, err := pc.FilterRangeScan(ColIntensity, 0, 1<<16, ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != pc.Len() {
		t.Fatalf("full-range scan kept %d of %d rows", len(rows), pc.Len())
	}
	RecycleRows(rows)
	again, err := pc.FilterRangeScan(ColIntensity, 0, 1<<16, ex)
	if err != nil {
		t.Fatal(err)
	}
	if cap(again) < pc.Len() {
		t.Fatal("second query did not reuse a pooled vector of adequate capacity")
	}
	RecycleRows(again)
}

// TestNormalizeIntPred spot-checks the integer-domain reduction on the
// edge cases the float→int conversion must not get wrong.
func TestNormalizeIntPred(t *testing.T) {
	cases := []struct {
		pred  ColumnPred
		shape intShape
		lo    int64
		hi    int64
	}{
		{ColumnPred{Op: CmpEQ, Value: 6}, shapeEQ, 6, 6},
		{ColumnPred{Op: CmpEQ, Value: 6.5}, shapeNone, 0, 0},
		{ColumnPred{Op: CmpEQ, Value: 300}, shapeNone, 0, 0}, // above u8 max
		{ColumnPred{Op: CmpEQ, Value: -1}, shapeNone, 0, 0},  // below u8 min
		{ColumnPred{Op: CmpNE, Value: 6.5}, shapeAll, 0, 0},  // non-integral <> matches all
		{ColumnPred{Op: CmpNE, Value: 300}, shapeAll, 0, 0},  // out-of-range <> matches all
		{ColumnPred{Op: CmpNE, Value: 6}, shapeNE, 6, 6},
		{ColumnPred{Op: CmpLT, Value: 6.5}, shapeLE, 0, 6},   // v < 6.5 ⇔ v <= 6
		{ColumnPred{Op: CmpLT, Value: 6}, shapeLE, 0, 5},     // v < 6 ⇔ v <= 5
		{ColumnPred{Op: CmpLT, Value: 0}, shapeNone, 0, 0},   // nothing below u8 min
		{ColumnPred{Op: CmpLT, Value: 1000}, shapeAll, 0, 0}, // everything below 1000
		{ColumnPred{Op: CmpGE, Value: 6.5}, shapeGE, 7, 255}, // v >= 6.5 ⇔ v >= 7
		{ColumnPred{Op: CmpGT, Value: 6.5}, shapeGE, 7, 255}, // v > 6.5 ⇔ v >= 7
		{ColumnPred{Op: CmpGT, Value: 6}, shapeGE, 7, 255},   // v > 6 ⇔ v >= 7
		{ColumnPred{Op: CmpGE, Value: math.Inf(-1)}, shapeAll, 0, 0},
		{ColumnPred{Op: CmpLE, Value: math.Inf(1)}, shapeAll, 0, 0},
		{ColumnPred{Op: CmpLE, Value: math.NaN()}, shapeNone, 0, 0},
		{ColumnPred{Op: CmpBetween, Value: 2.5, Value2: 7.5}, shapeRange, 3, 7},
		{ColumnPred{Op: CmpBetween, Value: 7, Value2: 2}, shapeNone, 0, 0},
		{ColumnPred{Op: CmpBetween, Value: -10, Value2: 1000}, shapeAll, 0, 0},
	}
	for _, c := range cases {
		shape, lo, hi := normalizeIntPred(c.pred.Op, c.pred.Value, c.pred.Value2, 0, 255)
		if shape != c.shape {
			t.Errorf("%s over u8: shape %d, want %d", c.pred, shape, c.shape)
			continue
		}
		if shape == shapeRange || shape == shapeEQ || shape == shapeNE || shape == shapeLE || shape == shapeGE {
			if lo != c.lo || hi != c.hi {
				t.Errorf("%s over u8: bounds [%d,%d], want [%d,%d]", c.pred, lo, hi, c.lo, c.hi)
			}
		}
	}
}

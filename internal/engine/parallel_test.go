package engine

import (
	"testing"

	"gisnav/internal/geom"
)

func TestParallelSelectionMatchesSerial(t *testing.T) {
	pc, _ := buildCloud(t, 0.2) // enough rows to cross the parallel threshold
	serial := pc.SelectBox(geom.NewEnvelope(100, 100, 900, 900))

	pc.Parallel = true
	parallel := pc.SelectBox(geom.NewEnvelope(100, 100, 900, 900))
	pc.Parallel = false

	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("serial %d rows, parallel %d rows", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i] != parallel.Rows[i] {
			t.Fatalf("row %d differs", i)
		}
	}

	// Polygon and buffer regions too.
	poly := geom.Polygon{Shell: geom.Ring{Points: []geom.Point{
		{X: 100, Y: 200}, {X: 800, Y: 150}, {X: 900, Y: 800}, {X: 300, Y: 950},
	}}}
	s := pc.SelectGeometry(poly)
	pc.Parallel = true
	p := pc.SelectGeometry(poly)
	pc.Parallel = false
	if len(s.Rows) != len(p.Rows) {
		t.Fatalf("polygon: serial %d vs parallel %d", len(s.Rows), len(p.Rows))
	}

	road := geom.LineString{Points: []geom.Point{{X: 0, Y: 480}, {X: 1000, Y: 520}}}
	s2 := pc.SelectDWithin(road, 50)
	pc.Parallel = true
	p2 := pc.SelectDWithin(road, 50)
	pc.Parallel = false
	if len(s2.Rows) != len(p2.Rows) {
		t.Fatalf("dwithin: serial %d vs parallel %d", len(s2.Rows), len(p2.Rows))
	}
}

// Vectorized execution kernels: a predicate is compiled ONCE per
// (column, operator) into a typed, op-specialised filter kernel, then applied
// block-at-a-time over candidate ranges or selection vectors. This is the
// MonetDB-style operator-at-a-time execution the paper's performance case
// rests on (§2.1.1): the per-row cost is a monomorphic compare plus a
// branchless selection-vector write, with no interface dispatch, no operator
// re-dispatch, and no float64 widening on integer columns.
//
// Constant-slot invariant: compiled kernels do NOT close over predicate
// constants. The constants live in a KernelArgs record the caller binds once
// per run (Kernel.Bind) and passes by value into every FilterBlock/FilterSel
// call. A kernel is therefore pure per (column backing array, operator) and
// one compiled kernel serves every constant vector — the paper's pan/zoom
// workload slides its bbox on every step, and with constants out of the
// kernel the plan cache hits on every one of them (plancache.go keys on
// (column, op) alone; NaN constants need no cache bypass anymore because they
// never reach a map key). Binding is cheap: floats are stored as-is, integer
// domains run constant normalisation (normalizeIntPred) once per run, never
// per row.
//
// Integer columns (u8, u16, i32) are filtered in their native integer
// domain. The predicate's float64 constant is normalised at bind time into an
// inclusive integer interval [lo, hi] clamped to the column type's range —
// non-integral constants, out-of-range constants, NaN and ±Inf all reduce
// to trivially-true / trivially-false shapes or a tightened bound, so the
// per-value loop never sees a conversion. Every value of these types is
// exactly representable in float64, which makes the integer-domain result
// bit-identical to the naive float-widening scan. i64 columns keep the
// float64-compare semantics of the naive path (their widening is lossy, and
// equivalence with the scan arms takes priority over shaving the cast).
package engine

import (
	"math"

	"gisnav/internal/cancel"
	"gisnav/internal/colstore"
	"gisnav/internal/faultpoint"
)

// KernelArgs is the per-run constant-slot record of one compiled kernel:
// float-domain constants for the float kernels, plus the bind-time
// normalised integer shape and bounds for the integer-domain kernels. It is
// produced by Kernel.Bind and passed BY VALUE through the filter entry
// points — no pointer, so per-query binding never escapes to the heap and
// the zero-allocation steady state survives.
//
// tok is the run's cooperative cancellation token, set by the filter entry
// points after Bind (Bind itself stays a pure function of the constants).
// The chunk driver polls it once per scanChunk block — a nil-check plus one
// relaxed atomic load on the uncancellable paths — so a fired context stops
// a scan within one block without per-row cost.
type KernelArgs struct {
	f1, f2 float64  // float-domain predicate constants
	i1, i2 int64    // normalised integer bounds [i1, i2] (bind-time)
	shape  intShape // normalised integer-domain shape (bind-time)
	tok    *cancel.Token
}

// blockFn appends the row ids in [lo, hi) that satisfy the compiled
// predicate under args a to out and returns the extended slice.
type blockFn func(a KernelArgs, lo, hi int, out []int) []int

// selFn appends the row ids from rows that satisfy the compiled predicate
// under args a to out. out may alias rows[:0]: the write index never
// overtakes the read index, so in-place compaction is safe.
type selFn func(a KernelArgs, rows, out []int) []int

// bindFn normalises one predicate's constants into a KernelArgs record.
type bindFn func(v1, v2 float64) KernelArgs

// Kernel is a compiled (column, operator) pair bound to one column's backing
// array. Constants are NOT part of the kernel: Bind turns them into the
// KernelArgs every filter call takes, so one kernel serves every constant
// vector until the backing array moves (see plancache.go).
type Kernel struct {
	// Bind normalises predicate constants (Value, Value2) into the args
	// record subsequent FilterBlock/FilterSel calls read. Pure: safe for
	// concurrent binds of the same kernel.
	Bind bindFn
	// FilterBlock scans rows [lo, hi) of the column and appends matches to
	// out — the block-at-a-time entry point driven by imprint candidate
	// ranges.
	FilterBlock blockFn
	// FilterSel narrows an existing selection vector.
	FilterSel selFn
}

// CompileFilterKernel compiles the (column, op) pair into a kernel
// specialised for col's concrete type and the operator. Columns without a
// typed fast path (dictionary strings) fall back to a generic Value() loop
// with semantics identical to ColumnPred.Matches.
// Each arm below dispatches through a concrete-typed helper rather than a
// shared generic one: instantiating the per-op generic loops from inside
// another generic function would leave them on the compiler's gcshape
// dictionary path, which costs ~4x in the inner loop. One level of
// genericity, instantiated from non-generic code, compiles to fully
// specialised loops.
func CompileFilterKernel(col colstore.Column, op CmpOp) *Kernel {
	switch t := col.(type) {
	case *colstore.F64Column:
		return floatKernelF64(t.Values(), op)
	case *colstore.U8Column:
		return intKernelU8(t.Values(), op)
	case *colstore.U16Column:
		return intKernelU16(t.Values(), op)
	case *colstore.I32Column:
		return intKernelI32(t.Values(), op)
	case *colstore.I64Column:
		// Lossy widening: keep float64-compare semantics, but monomorphic.
		return floatKernelI64(t.Values(), op)
	default:
		return genericKernel(col, op)
	}
}

// BoundKernel pairs a compiled kernel with one bound constant record — the
// one-shot convenience for callers outside the plan-cache fast path (tests,
// benchmarks, ad-hoc tooling) that still think in terms of a fully
// constant-specialised kernel.
type BoundKernel struct {
	k *Kernel
	a KernelArgs
}

// FilterBlock scans rows [lo, hi) under the bound constants.
func (b *BoundKernel) FilterBlock(lo, hi int, out []int) []int {
	return b.k.FilterBlock(b.a, lo, hi, out)
}

// FilterSel narrows rows under the bound constants.
func (b *BoundKernel) FilterSel(rows, out []int) []int {
	return b.k.FilterSel(b.a, rows, out)
}

// CompileFilter compiles pred into a kernel with its constants pre-bound.
func CompileFilter(col colstore.Column, pred ColumnPred) *BoundKernel {
	k := CompileFilterKernel(col, pred.Op)
	return &BoundKernel{k: k, a: k.Bind(pred.Value, pred.Value2)}
}

// CompileRange compiles the inclusive range predicate lo <= v <= hi — the
// shape produced by the imprint filter path — with the bounds pre-bound.
func CompileRange(col colstore.Column, name string, lo, hi float64) *BoundKernel {
	return CompileFilter(col, ColumnPred{Column: name, Op: CmpBetween, Value: lo, Value2: hi})
}

// --- scan machinery -----------------------------------------------------------

// number covers the element types with typed kernel instantiations.
type number interface {
	~float64 | ~int64 | ~int32 | ~uint16 | ~uint8
}

// scanChunk is the block size of the branchless inner loops: small enough
// to stay cache resident, large enough to amortise both the capacity
// reserve and the per-chunk indirect dispatch.
const scanChunk = 1024

// chunkBlockFn writes the row ids in [lo, hi) (at most scanChunk rows)
// matching the compiled predicate under args a into buf and returns how many
// matched. buf must have room for hi-lo ids: the inner loops write every
// candidate unconditionally and advance the write index only on a match, so
// random selectivities pay no data-dependent branches.
type chunkBlockFn func(a KernelArgs, lo, hi int, buf []int) int

// chunkSelFn is the selection-vector counterpart: it writes the surviving
// ids of rows (at most scanChunk of them) into buf.
type chunkSelFn func(a KernelArgs, rows, buf []int) int

// The inner loops below materialise each comparison as a 0/1 increment
// written out longhand (`inc := 0; if cond { inc = 1 }; j += inc`) instead
// of through a helper: the compiler lowers the longhand shape to a
// branch-free SETcc, whereas a call to a tiny bool→int helper is NOT
// inlined inside gcshape-stenciled generic instantiations and costs a real
// CALL per row (measured ~4x on the u8 kernel). Compound predicates combine
// two flags with & — a && would reintroduce a data-dependent short-circuit
// branch that mispredicts at mid selectivities. The predicate constants are
// hoisted from the args record once per chunk call, so the row loops see
// plain locals.

// growRows extends out's capacity to hold n more elements.
func growRows(out []int, n int) []int {
	need := len(out) + n
	newCap := 2 * cap(out)
	if newCap < need {
		newCap = need
	}
	if newCap < 64 {
		newCap = 64
	}
	grown := make([]int, len(out), newCap)
	copy(grown, out)
	return grown
}

// bindFloat stores the raw float-domain constants; the float kernels apply
// ColumnPred.Matches semantics (including NaN failing every operator except
// <>) directly in their compare loops.
func bindFloat(v1, v2 float64) KernelArgs { return KernelArgs{f1: v1, f2: v2} }

// chunkKernel wraps per-op chunk filters into a Kernel: it reserves output
// capacity per chunk and drives the monomorphic inner loops. n bounds block
// scans to the column length. The per-chunk indirect call amortises over
// scanChunk rows; the row-level loops stay direct.
//
// The selection path may compact in place (out aliasing rows[:0]): the
// chunk's unconditional writes land at indices never past the current read
// position, because matches emitted so far can't exceed rows consumed.
func chunkKernel(n int, bind bindFn, cb chunkBlockFn, cs chunkSelFn) *Kernel {
	return &Kernel{
		Bind: bind,
		FilterBlock: func(a KernelArgs, lo, hi int, out []int) []int {
			if hi > n {
				hi = n
			}
			for lo < hi {
				// Cancellation is polled per block, never per row; a fired
				// token returns the partial vector and the caller maps the
				// token state to the context error.
				if a.tok.Cancelled() {
					return out
				}
				_ = faultpoint.Hit("engine.kernel.chunk")
				end := min(lo+scanChunk, hi)
				cn := end - lo
				if cap(out)-len(out) < cn {
					out = growRows(out, cn)
				}
				j := cb(a, lo, end, out[len(out):len(out)+cn])
				out = out[:len(out)+j]
				lo = end
			}
			return out
		},
		FilterSel: func(a KernelArgs, rows, out []int) []int {
			for base := 0; base < len(rows); base += scanChunk {
				if a.tok.Cancelled() {
					return out
				}
				_ = faultpoint.Hit("engine.kernel.chunk")
				end := min(base+scanChunk, len(rows))
				cn := end - base
				if cap(out)-len(out) < cn {
					out = growRows(out, cn)
				}
				j := cs(a, rows[base:end], out[len(out):len(out)+cn])
				out = out[:len(out)+j]
			}
			return out
		},
	}
}

// --- float-domain kernels (f64 and widened i64) ------------------------------

// The float-domain loops compare float64-widened values against the
// predicate constants, exactly as ColumnPred.Matches does — including its
// NaN behaviour (NaN fails every operator except <>). One generic function
// per operator keeps the comparison in the function body, so every
// (type × op) pair stencils into a direct branch-free loop.

func feqKernel[T number](vals []T) *Kernel {
	return chunkKernel(len(vals), bindFloat, func(a KernelArgs, lo, hi int, buf []int) int {
		c := a.f1
		j := 0
		for k, v := range vals[lo:hi] {
			buf[j] = lo + k
			inc := 0
			if float64(v) == c {
				inc = 1
			}
			j += inc
		}
		return j
	},
		func(a KernelArgs, rows, buf []int) int {
			c := a.f1
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) == c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func fneKernel[T number](vals []T) *Kernel {
	return chunkKernel(len(vals), bindFloat, func(a KernelArgs, lo, hi int, buf []int) int {
		c := a.f1
		j := 0
		for k, v := range vals[lo:hi] {
			buf[j] = lo + k
			inc := 0
			if float64(v) != c {
				inc = 1
			}
			j += inc
		}
		return j
	},
		func(a KernelArgs, rows, buf []int) int {
			c := a.f1
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) != c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func fltKernel[T number](vals []T) *Kernel {
	return chunkKernel(len(vals), bindFloat, func(a KernelArgs, lo, hi int, buf []int) int {
		c := a.f1
		j := 0
		for k, v := range vals[lo:hi] {
			buf[j] = lo + k
			inc := 0
			if float64(v) < c {
				inc = 1
			}
			j += inc
		}
		return j
	},
		func(a KernelArgs, rows, buf []int) int {
			c := a.f1
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) < c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func fleKernel[T number](vals []T) *Kernel {
	return chunkKernel(len(vals), bindFloat, func(a KernelArgs, lo, hi int, buf []int) int {
		c := a.f1
		j := 0
		for k, v := range vals[lo:hi] {
			buf[j] = lo + k
			inc := 0
			if float64(v) <= c {
				inc = 1
			}
			j += inc
		}
		return j
	},
		func(a KernelArgs, rows, buf []int) int {
			c := a.f1
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) <= c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func fgtKernel[T number](vals []T) *Kernel {
	return chunkKernel(len(vals), bindFloat, func(a KernelArgs, lo, hi int, buf []int) int {
		c := a.f1
		j := 0
		for k, v := range vals[lo:hi] {
			buf[j] = lo + k
			inc := 0
			if float64(v) > c {
				inc = 1
			}
			j += inc
		}
		return j
	},
		func(a KernelArgs, rows, buf []int) int {
			c := a.f1
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) > c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func fgeKernel[T number](vals []T) *Kernel {
	return chunkKernel(len(vals), bindFloat, func(a KernelArgs, lo, hi int, buf []int) int {
		c := a.f1
		j := 0
		for k, v := range vals[lo:hi] {
			buf[j] = lo + k
			inc := 0
			if float64(v) >= c {
				inc = 1
			}
			j += inc
		}
		return j
	},
		func(a KernelArgs, rows, buf []int) int {
			c := a.f1
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) >= c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func frangeKernel[T number](vals []T) *Kernel {
	return chunkKernel(len(vals), bindFloat, func(a KernelArgs, b0, b1 int, buf []int) int {
		lo, hi := a.f1, a.f2
		j := 0
		for k, v := range vals[b0:b1] {
			buf[j] = b0 + k
			f := float64(v)
			// Two independent flags combined with & — a && here would
			// reintroduce a data-dependent short-circuit branch.
			ge, le := 0, 0
			if f >= lo {
				ge = 1
			}
			if f <= hi {
				le = 1
			}
			j += ge & le
		}
		return j
	},
		func(a KernelArgs, rows, buf []int) int {
			lo, hi := a.f1, a.f2
			j := 0
			for _, r := range rows {
				buf[j] = r
				f := float64(vals[r])
				ge, le := 0, 0
				if f >= lo {
					ge = 1
				}
				if f <= hi {
					le = 1
				}
				j += ge & le
			}
			return j
		})
}

// floatKernelF64 builds the op-specialised float-domain kernel over a
// float64 column. It is deliberately concrete (see CompileFilterKernel): the
// generic per-op constructors instantiate here at a concrete type.
func floatKernelF64(vals []float64, op CmpOp) *Kernel {
	switch op {
	case CmpEQ:
		return feqKernel(vals)
	case CmpNE:
		return fneKernel(vals)
	case CmpLT:
		return fltKernel(vals)
	case CmpLE:
		return fleKernel(vals)
	case CmpGT:
		return fgtKernel(vals)
	case CmpGE:
		return fgeKernel(vals)
	case CmpBetween:
		return frangeKernel(vals)
	default:
		// Unknown operators match nothing, as in ColumnPred.Matches.
		return noneKernel()
	}
}

// floatKernelI64 is the float-compare kernel over an int64 column (lossy
// widening, identical to the naive arm's semantics).
func floatKernelI64(vals []int64, op CmpOp) *Kernel {
	switch op {
	case CmpEQ:
		return feqKernel(vals)
	case CmpNE:
		return fneKernel(vals)
	case CmpLT:
		return fltKernel(vals)
	case CmpLE:
		return fleKernel(vals)
	case CmpGT:
		return fgtKernel(vals)
	case CmpGE:
		return fgeKernel(vals)
	case CmpBetween:
		return frangeKernel(vals)
	default:
		return noneKernel()
	}
}

// --- integer-domain kernels ---------------------------------------------------

// integer covers the exactly-representable integer column element types.
type integer interface {
	~int32 | ~uint16 | ~uint8
}

// unsigned is the same-width unsigned counterpart used by the modular range
// trick (see intChunks).
type unsigned interface {
	~uint32 | ~uint16 | ~uint8
}

// intShape is the normalised form of a predicate over an integer domain.
// With constants bound per run, the shape is per-run state (KernelArgs), not
// compile-time structure: the chunk loops dispatch on it once per chunk.
type intShape uint8

const (
	shapeNone  intShape = iota // matches no value
	shapeAll                   // matches every value
	shapeNE                    // v != lo
	shapeEQ                    // v == lo (lo == hi)
	shapeLE                    // v <= hi (lo is the type minimum)
	shapeGE                    // v >= lo (hi is the type maximum)
	shapeRange                 // lo <= v <= hi
)

// normalizeIntPred reduces the float64 constants of (op, v1, v2) to an
// inclusive integer interval [lo, hi] over the type domain [tmin, tmax], or
// to one of the degenerate shapes. The reduction is exact: a value v in
// [tmin, tmax] satisfies the original float-domain predicate iff it
// satisfies the returned shape. It runs once per bind, never per row.
func normalizeIntPred(op CmpOp, v1, v2 float64, tmin, tmax int64) (shape intShape, lo, hi int64) {
	c := v1
	if op == CmpNE {
		// v != c holds for every integer v unless c is an integral value
		// inside the domain.
		if math.IsNaN(c) || c != math.Trunc(c) || c < float64(tmin) || c > float64(tmax) {
			return shapeAll, 0, 0
		}
		return shapeNE, int64(c), int64(c)
	}
	// Express the operator as a float-domain inclusive interval [flo, fhi].
	flo, fhi := math.Inf(-1), math.Inf(1)
	switch op {
	case CmpEQ:
		// ceil/floor cross for non-integral constants, yielding the empty
		// interval; for integral constants both equal c.
		flo, fhi = math.Ceil(c), math.Floor(c)
	case CmpLT:
		fhi = math.Ceil(c) - 1 // v < c  ⇔  v <= ceil(c)-1 for integer v
	case CmpLE:
		fhi = math.Floor(c)
	case CmpGT:
		flo = math.Floor(c) + 1
	case CmpGE:
		flo = math.Ceil(c)
	case CmpBetween:
		flo, fhi = math.Ceil(c), math.Floor(v2)
	default:
		return shapeNone, 0, 0
	}
	// NaN constants fail every ordered comparison.
	if math.IsNaN(flo) || math.IsNaN(fhi) {
		return shapeNone, 0, 0
	}
	// Clamp to the type domain in the float domain first, so ±Inf and
	// constants beyond int64 never reach an integer conversion.
	if flo > float64(tmax) || fhi < float64(tmin) {
		return shapeNone, 0, 0
	}
	lo, hi = tmin, tmax
	if flo > float64(tmin) {
		lo = int64(flo)
	}
	if fhi < float64(tmax) {
		hi = int64(fhi)
	}
	switch {
	case lo > hi:
		return shapeNone, 0, 0
	case lo == tmin && hi == tmax:
		return shapeAll, lo, hi
	case lo == hi:
		return shapeEQ, lo, hi
	case lo == tmin:
		return shapeLE, lo, hi
	case hi == tmax:
		return shapeGE, lo, hi
	default:
		return shapeRange, lo, hi
	}
}

// bindInt builds the bind step of an integer-domain kernel: it normalises
// the run's constants into the shape + bounds the chunk loops dispatch on.
func bindInt(op CmpOp, tmin, tmax int64) bindFn {
	return func(v1, v2 float64) KernelArgs {
		shape, lo, hi := normalizeIntPred(op, v1, v2, tmin, tmax)
		return KernelArgs{shape: shape, i1: lo, i2: hi}
	}
}

// intChunks builds the shape-dispatching native-integer-domain chunk loops
// over one column. The dispatch runs once per chunk (1024 rows), the
// per-shape loops are written out longhand so each stays a direct
// branch-free scan; the range shape tests lo <= v <= hi with one compare
// via modular arithmetic (for lo <= hi, v ∈ [lo, hi] iff U(v-lo) <= U(hi-lo)
// in the same-width unsigned domain U — two's-complement wraparound makes
// this exact for signed T as well).
func intChunks[T integer, U unsigned](vals []T) (chunkBlockFn, chunkSelFn) {
	block := func(a KernelArgs, b0, b1 int, buf []int) int {
		j := 0
		switch a.shape {
		case shapeNone:
		case shapeAll:
			for k := range vals[b0:b1] {
				buf[j] = b0 + k
				j++
			}
		case shapeEQ:
			c := T(a.i1)
			for k, v := range vals[b0:b1] {
				buf[j] = b0 + k
				inc := 0
				if v == c {
					inc = 1
				}
				j += inc
			}
		case shapeNE:
			c := T(a.i1)
			for k, v := range vals[b0:b1] {
				buf[j] = b0 + k
				inc := 0
				if v != c {
					inc = 1
				}
				j += inc
			}
		case shapeLE:
			c := T(a.i2)
			for k, v := range vals[b0:b1] {
				buf[j] = b0 + k
				inc := 0
				if v <= c {
					inc = 1
				}
				j += inc
			}
		case shapeGE:
			c := T(a.i1)
			for k, v := range vals[b0:b1] {
				buf[j] = b0 + k
				inc := 0
				if v >= c {
					inc = 1
				}
				j += inc
			}
		default: // shapeRange
			lo := T(a.i1)
			span := U(T(a.i2)) - U(lo)
			for k, v := range vals[b0:b1] {
				buf[j] = b0 + k
				inc := 0
				if U(v)-U(lo) <= span {
					inc = 1
				}
				j += inc
			}
		}
		return j
	}
	sel := func(a KernelArgs, rows, buf []int) int {
		j := 0
		switch a.shape {
		case shapeNone:
		case shapeAll:
			for _, r := range rows {
				buf[j] = r
				j++
			}
		case shapeEQ:
			c := T(a.i1)
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if vals[r] == c {
					inc = 1
				}
				j += inc
			}
		case shapeNE:
			c := T(a.i1)
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if vals[r] != c {
					inc = 1
				}
				j += inc
			}
		case shapeLE:
			c := T(a.i2)
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if vals[r] <= c {
					inc = 1
				}
				j += inc
			}
		case shapeGE:
			c := T(a.i1)
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if vals[r] >= c {
					inc = 1
				}
				j += inc
			}
		default: // shapeRange
			lo := T(a.i1)
			span := U(T(a.i2)) - U(lo)
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if U(vals[r])-U(lo) <= span {
					inc = 1
				}
				j += inc
			}
		}
		return j
	}
	return block, sel
}

// intKernelU8 builds the native-integer-domain kernel over a u8 column. The
// three intKernel* helpers are concrete clones of one instantiation: routing
// them through a shared generic dispatcher would nest the chunk-loop
// instantiations onto the slow gcshape dictionary path (see
// CompileFilterKernel).
func intKernelU8(vals []uint8, op CmpOp) *Kernel {
	cb, cs := intChunks[uint8, uint8](vals)
	return chunkKernel(len(vals), bindInt(op, 0, math.MaxUint8), cb, cs)
}

// intKernelU16 is the u16 instantiation of the integer-domain kernel.
func intKernelU16(vals []uint16, op CmpOp) *Kernel {
	cb, cs := intChunks[uint16, uint16](vals)
	return chunkKernel(len(vals), bindInt(op, 0, math.MaxUint16), cb, cs)
}

// intKernelI32 is the i32 instantiation of the integer-domain kernel.
func intKernelI32(vals []int32, op CmpOp) *Kernel {
	cb, cs := intChunks[int32, uint32](vals)
	return chunkKernel(len(vals), bindInt(op, math.MinInt32, math.MaxInt32), cb, cs)
}

// noneKernel rejects every row (unknown operators, as ColumnPred.Matches).
func noneKernel() *Kernel {
	return &Kernel{
		Bind:        bindFloat,
		FilterBlock: func(_ KernelArgs, _, _ int, out []int) []int { return out },
		FilterSel:   func(_ KernelArgs, _, out []int) []int { return out },
	}
}

// genericKernel is the interface-dispatch fallback for columns without a
// typed fast path; it preserves ColumnPred.Matches semantics exactly by
// rebuilding the predicate from the args record per call.
func genericKernel(col colstore.Column, op CmpOp) *Kernel {
	return &Kernel{
		Bind: bindFloat,
		FilterBlock: func(a KernelArgs, lo, hi int, out []int) []int {
			pred := ColumnPred{Op: op, Value: a.f1, Value2: a.f2}
			if n := col.Len(); hi > n {
				hi = n
			}
			// Block-granular cancellation, like the typed chunk driver; the
			// per-row interface dispatch dwarfs the masked counter check.
			for i := lo; i < hi; i++ {
				if (i-lo)%scanChunk == 0 && a.tok.Cancelled() {
					return out
				}
				if pred.Matches(col.Value(i)) {
					out = append(out, i)
				}
			}
			return out
		},
		FilterSel: func(a KernelArgs, rows, out []int) []int {
			pred := ColumnPred{Op: op, Value: a.f1, Value2: a.f2}
			for i, r := range rows {
				if i%scanChunk == 0 && a.tok.Cancelled() {
					return out
				}
				if pred.Matches(col.Value(r)) {
					out = append(out, r)
				}
			}
			return out
		},
	}
}

// Pooled selection vectors live in pool.go (getRowBuf / RecycleRows): a
// striped mutex-backed free list shared with the candidate-range pool.

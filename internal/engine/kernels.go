// Vectorized execution kernels: a ColumnPred is compiled ONCE into a typed,
// operator-specialised filter kernel, then applied block-at-a-time over
// candidate ranges or selection vectors. This is the MonetDB-style
// operator-at-a-time execution the paper's performance case rests on
// (§2.1.1): the per-row cost is a monomorphic compare plus a branchless
// selection-vector write, with no interface dispatch, no operator
// re-dispatch, and no float64 widening on integer columns.
//
// Integer columns (u8, u16, i32) are filtered in their native integer
// domain. The predicate's float64 constant is normalised once into an
// inclusive integer interval [lo, hi] clamped to the column type's range —
// non-integral constants, out-of-range constants, NaN and ±Inf all reduce
// to trivially-true / trivially-false kernels or a tightened bound, so the
// per-value loop never sees a conversion. Every value of these types is
// exactly representable in float64, which makes the integer-domain result
// bit-identical to the naive float-widening scan. i64 columns keep the
// float64-compare semantics of the naive path (their widening is lossy, and
// equivalence with the scan arms takes priority over shaving the cast).
package engine

import (
	"math"

	"gisnav/internal/colstore"
)

// blockFn appends the row ids in [lo, hi) that satisfy the compiled
// predicate to out and returns the extended slice.
type blockFn func(lo, hi int, out []int) []int

// selFn appends the row ids from rows that satisfy the compiled predicate
// to out. out may alias rows[:0]: the write index never overtakes the read
// index, so in-place compaction is safe.
type selFn func(rows, out []int) []int

// Kernel is a compiled ColumnPred bound to one column's backing array.
type Kernel struct {
	// FilterBlock scans rows [lo, hi) of the column and appends matches to
	// out — the block-at-a-time entry point driven by imprint candidate
	// ranges.
	FilterBlock blockFn
	// FilterSel narrows an existing selection vector.
	FilterSel selFn
}

// CompileFilter compiles pred into a kernel specialised for col's concrete
// type and the predicate's operator. Columns without a typed fast path
// (dictionary strings) fall back to a generic Value() loop with semantics
// identical to ColumnPred.Matches.
// Each arm below dispatches through a concrete-typed helper rather than a
// shared generic one: instantiating the per-op generic loops from inside
// another generic function would leave them on the compiler's gcshape
// dictionary path, which costs ~4x in the inner loop. One level of
// genericity, instantiated from non-generic code, compiles to fully
// specialised loops.
func CompileFilter(col colstore.Column, pred ColumnPred) *Kernel {
	switch t := col.(type) {
	case *colstore.F64Column:
		return floatKernelF64(t.Values(), pred)
	case *colstore.U8Column:
		return intKernelU8(t.Values(), pred)
	case *colstore.U16Column:
		return intKernelU16(t.Values(), pred)
	case *colstore.I32Column:
		return intKernelI32(t.Values(), pred)
	case *colstore.I64Column:
		// Lossy widening: keep float64-compare semantics, but monomorphic.
		return floatKernelI64(t.Values(), pred)
	default:
		return genericKernel(col, pred)
	}
}

// CompileRange compiles the inclusive range predicate lo <= v <= hi — the
// shape produced by the imprint filter path.
func CompileRange(col colstore.Column, name string, lo, hi float64) *Kernel {
	return CompileFilter(col, ColumnPred{Column: name, Op: CmpBetween, Value: lo, Value2: hi})
}

// --- scan machinery -----------------------------------------------------------

// number covers the element types with typed kernel instantiations.
type number interface {
	~float64 | ~int64 | ~int32 | ~uint16 | ~uint8
}

// scanChunk is the block size of the branchless inner loops: small enough
// to stay cache resident, large enough to amortise both the capacity
// reserve and the per-chunk indirect dispatch.
const scanChunk = 1024

// chunkBlockFn writes the row ids in [lo, hi) (at most scanChunk rows)
// matching the compiled predicate into buf and returns how many matched.
// buf must have room for hi-lo ids: the inner loops write every candidate
// unconditionally and advance the write index only on a match, so random
// selectivities pay no data-dependent branches.
type chunkBlockFn func(lo, hi int, buf []int) int

// chunkSelFn is the selection-vector counterpart: it writes the surviving
// ids of rows (at most scanChunk of them) into buf.
type chunkSelFn func(rows, buf []int) int

// The inner loops below materialise each comparison as a 0/1 increment
// written out longhand (`inc := 0; if cond { inc = 1 }; j += inc`) instead
// of through a helper: the compiler lowers the longhand shape to a
// branch-free SETcc, whereas a call to a tiny bool→int helper is NOT
// inlined inside gcshape-stenciled generic instantiations and costs a real
// CALL per row (measured ~4x on the u8 kernel). Compound predicates combine
// two flags with & — a && would reintroduce a data-dependent short-circuit
// branch that mispredicts at mid selectivities.

// growRows extends out's capacity to hold n more elements.
func growRows(out []int, n int) []int {
	need := len(out) + n
	newCap := 2 * cap(out)
	if newCap < need {
		newCap = need
	}
	if newCap < 64 {
		newCap = 64
	}
	grown := make([]int, len(out), newCap)
	copy(grown, out)
	return grown
}

// chunkKernel wraps per-op chunk filters into a Kernel: it reserves output
// capacity per chunk and drives the monomorphic inner loops. n bounds block
// scans to the column length. The per-chunk indirect call amortises over
// scanChunk rows; the row-level loops stay direct.
//
// The selection path may compact in place (out aliasing rows[:0]): the
// chunk's unconditional writes land at indices never past the current read
// position, because matches emitted so far can't exceed rows consumed.
func chunkKernel(n int, cb chunkBlockFn, cs chunkSelFn) *Kernel {
	return &Kernel{
		FilterBlock: func(lo, hi int, out []int) []int {
			if hi > n {
				hi = n
			}
			for lo < hi {
				end := min(lo+scanChunk, hi)
				cn := end - lo
				if cap(out)-len(out) < cn {
					out = growRows(out, cn)
				}
				j := cb(lo, end, out[len(out):len(out)+cn])
				out = out[:len(out)+j]
				lo = end
			}
			return out
		},
		FilterSel: func(rows, out []int) []int {
			for base := 0; base < len(rows); base += scanChunk {
				end := min(base+scanChunk, len(rows))
				cn := end - base
				if cap(out)-len(out) < cn {
					out = growRows(out, cn)
				}
				j := cs(rows[base:end], out[len(out):len(out)+cn])
				out = out[:len(out)+j]
			}
			return out
		},
	}
}

// --- float-domain kernels (f64 and widened i64) ------------------------------

// The float-domain loops compare float64-widened values against the
// predicate constants, exactly as ColumnPred.Matches does — including its
// NaN behaviour (NaN fails every operator except <>). One generic function
// per operator keeps the comparison in the function body, so every
// (type × op) pair stencils into a direct branch-free loop.

func feqKernel[T number](vals []T, c float64) *Kernel {
	return chunkKernel(len(vals),
		func(lo, hi int, buf []int) int {
			j := 0
			for k, v := range vals[lo:hi] {
				buf[j] = lo + k
				inc := 0
				if float64(v) == c {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) == c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func fneKernel[T number](vals []T, c float64) *Kernel {
	return chunkKernel(len(vals),
		func(lo, hi int, buf []int) int {
			j := 0
			for k, v := range vals[lo:hi] {
				buf[j] = lo + k
				inc := 0
				if float64(v) != c {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) != c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func fltKernel[T number](vals []T, c float64) *Kernel {
	return chunkKernel(len(vals),
		func(lo, hi int, buf []int) int {
			j := 0
			for k, v := range vals[lo:hi] {
				buf[j] = lo + k
				inc := 0
				if float64(v) < c {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) < c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func fleKernel[T number](vals []T, c float64) *Kernel {
	return chunkKernel(len(vals),
		func(lo, hi int, buf []int) int {
			j := 0
			for k, v := range vals[lo:hi] {
				buf[j] = lo + k
				inc := 0
				if float64(v) <= c {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) <= c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func fgtKernel[T number](vals []T, c float64) *Kernel {
	return chunkKernel(len(vals),
		func(lo, hi int, buf []int) int {
			j := 0
			for k, v := range vals[lo:hi] {
				buf[j] = lo + k
				inc := 0
				if float64(v) > c {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) > c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func fgeKernel[T number](vals []T, c float64) *Kernel {
	return chunkKernel(len(vals),
		func(lo, hi int, buf []int) int {
			j := 0
			for k, v := range vals[lo:hi] {
				buf[j] = lo + k
				inc := 0
				if float64(v) >= c {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if float64(vals[r]) >= c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func frangeKernel[T number](vals []T, lo, hi float64) *Kernel {
	return chunkKernel(len(vals),
		func(b0, b1 int, buf []int) int {
			j := 0
			for k, v := range vals[b0:b1] {
				buf[j] = b0 + k
				f := float64(v)
				// Two independent flags combined with & — a && here would
				// reintroduce a data-dependent short-circuit branch.
				ge, le := 0, 0
				if f >= lo {
					ge = 1
				}
				if f <= hi {
					le = 1
				}
				j += ge & le
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				f := float64(vals[r])
				ge, le := 0, 0
				if f >= lo {
					ge = 1
				}
				if f <= hi {
					le = 1
				}
				j += ge & le
			}
			return j
		})
}

// floatKernelF64 builds the op-specialised float-domain kernel over a
// float64 column. It is deliberately concrete (see CompileFilter): the
// generic per-op constructors instantiate here at a concrete type.
func floatKernelF64(vals []float64, pred ColumnPred) *Kernel {
	switch pred.Op {
	case CmpEQ:
		return feqKernel(vals, pred.Value)
	case CmpNE:
		return fneKernel(vals, pred.Value)
	case CmpLT:
		return fltKernel(vals, pred.Value)
	case CmpLE:
		return fleKernel(vals, pred.Value)
	case CmpGT:
		return fgtKernel(vals, pred.Value)
	case CmpGE:
		return fgeKernel(vals, pred.Value)
	case CmpBetween:
		return frangeKernel(vals, pred.Value, pred.Value2)
	default:
		// Unknown operators match nothing, as in ColumnPred.Matches.
		return noneKernel()
	}
}

// floatKernelI64 is the float-compare kernel over an int64 column (lossy
// widening, identical to the naive arm's semantics).
func floatKernelI64(vals []int64, pred ColumnPred) *Kernel {
	switch pred.Op {
	case CmpEQ:
		return feqKernel(vals, pred.Value)
	case CmpNE:
		return fneKernel(vals, pred.Value)
	case CmpLT:
		return fltKernel(vals, pred.Value)
	case CmpLE:
		return fleKernel(vals, pred.Value)
	case CmpGT:
		return fgtKernel(vals, pred.Value)
	case CmpGE:
		return fgeKernel(vals, pred.Value)
	case CmpBetween:
		return frangeKernel(vals, pred.Value, pred.Value2)
	default:
		return noneKernel()
	}
}

// --- integer-domain kernels ---------------------------------------------------

// integer covers the exactly-representable integer column element types.
type integer interface {
	~int32 | ~uint16 | ~uint8
}

// unsigned is the same-width unsigned counterpart used by the modular range
// trick (see irangeKernel).
type unsigned interface {
	~uint32 | ~uint16 | ~uint8
}

func ieqKernel[T integer](vals []T, c T) *Kernel {
	return chunkKernel(len(vals),
		func(lo, hi int, buf []int) int {
			j := 0
			for k, v := range vals[lo:hi] {
				buf[j] = lo + k
				inc := 0
				if v == c {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if vals[r] == c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func ineKernel[T integer](vals []T, c T) *Kernel {
	return chunkKernel(len(vals),
		func(lo, hi int, buf []int) int {
			j := 0
			for k, v := range vals[lo:hi] {
				buf[j] = lo + k
				inc := 0
				if v != c {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if vals[r] != c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func ileKernel[T integer](vals []T, c T) *Kernel {
	return chunkKernel(len(vals),
		func(lo, hi int, buf []int) int {
			j := 0
			for k, v := range vals[lo:hi] {
				buf[j] = lo + k
				inc := 0
				if v <= c {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if vals[r] <= c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

func igeKernel[T integer](vals []T, c T) *Kernel {
	return chunkKernel(len(vals),
		func(lo, hi int, buf []int) int {
			j := 0
			for k, v := range vals[lo:hi] {
				buf[j] = lo + k
				inc := 0
				if v >= c {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if vals[r] >= c {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

// irangeKernel tests lo <= v <= hi with one compare via modular arithmetic:
// for lo <= hi, v ∈ [lo, hi] iff U(v-lo) <= U(hi-lo) in the same-width
// unsigned domain U (two's-complement wraparound makes this exact for
// signed T as well).
func irangeKernel[T integer, U unsigned](vals []T, lo, hi T) *Kernel {
	span := U(hi) - U(lo)
	return chunkKernel(len(vals),
		func(b0, b1 int, buf []int) int {
			j := 0
			for k, v := range vals[b0:b1] {
				buf[j] = b0 + k
				inc := 0
				if U(v)-U(lo) <= span {
					inc = 1
				}
				j += inc
			}
			return j
		},
		func(rows, buf []int) int {
			j := 0
			for _, r := range rows {
				buf[j] = r
				inc := 0
				if U(vals[r])-U(lo) <= span {
					inc = 1
				}
				j += inc
			}
			return j
		})
}

// intShape is the normalised form of a predicate over an integer domain.
type intShape uint8

const (
	shapeNone  intShape = iota // matches no value
	shapeAll                   // matches every value
	shapeNE                    // v != lo
	shapeEQ                    // v == lo (lo == hi)
	shapeLE                    // v <= hi (lo is the type minimum)
	shapeGE                    // v >= lo (hi is the type maximum)
	shapeRange                 // lo <= v <= hi
)

// normalizeIntPred reduces pred's float64 constants to an inclusive integer
// interval [lo, hi] over the type domain [tmin, tmax], or to one of the
// degenerate shapes. The reduction is exact: a value v in [tmin, tmax]
// satisfies the original float-domain predicate iff it satisfies the
// returned shape.
func normalizeIntPred(pred ColumnPred, tmin, tmax int64) (shape intShape, lo, hi int64) {
	c := pred.Value
	if pred.Op == CmpNE {
		// v != c holds for every integer v unless c is an integral value
		// inside the domain.
		if math.IsNaN(c) || c != math.Trunc(c) || c < float64(tmin) || c > float64(tmax) {
			return shapeAll, 0, 0
		}
		return shapeNE, int64(c), int64(c)
	}
	// Express the operator as a float-domain inclusive interval [flo, fhi].
	flo, fhi := math.Inf(-1), math.Inf(1)
	switch pred.Op {
	case CmpEQ:
		// ceil/floor cross for non-integral constants, yielding the empty
		// interval; for integral constants both equal c.
		flo, fhi = math.Ceil(c), math.Floor(c)
	case CmpLT:
		fhi = math.Ceil(c) - 1 // v < c  ⇔  v <= ceil(c)-1 for integer v
	case CmpLE:
		fhi = math.Floor(c)
	case CmpGT:
		flo = math.Floor(c) + 1
	case CmpGE:
		flo = math.Ceil(c)
	case CmpBetween:
		flo, fhi = math.Ceil(c), math.Floor(pred.Value2)
	default:
		return shapeNone, 0, 0
	}
	// NaN constants fail every ordered comparison.
	if math.IsNaN(flo) || math.IsNaN(fhi) {
		return shapeNone, 0, 0
	}
	// Clamp to the type domain in the float domain first, so ±Inf and
	// constants beyond int64 never reach an integer conversion.
	if flo > float64(tmax) || fhi < float64(tmin) {
		return shapeNone, 0, 0
	}
	lo, hi = tmin, tmax
	if flo > float64(tmin) {
		lo = int64(flo)
	}
	if fhi < float64(tmax) {
		hi = int64(fhi)
	}
	switch {
	case lo > hi:
		return shapeNone, 0, 0
	case lo == tmin && hi == tmax:
		return shapeAll, lo, hi
	case lo == hi:
		return shapeEQ, lo, hi
	case lo == tmin:
		return shapeLE, lo, hi
	case hi == tmax:
		return shapeGE, lo, hi
	default:
		return shapeRange, lo, hi
	}
}

// intKernelU8 builds native-integer-domain loops for pred over a u8
// column. The three intKernel* helpers are concrete clones of one
// shape-switch: routing them through a shared generic dispatcher would
// nest the per-op instantiations onto the slow gcshape dictionary path
// (see CompileFilter).
func intKernelU8(vals []uint8, pred ColumnPred) *Kernel {
	shape, lo64, hi64 := normalizeIntPred(pred, 0, math.MaxUint8)
	lo, hi := uint8(lo64), uint8(hi64)
	switch shape {
	case shapeAll:
		return allKernel(len(vals))
	case shapeNone:
		return noneKernel()
	case shapeEQ:
		return ieqKernel(vals, lo)
	case shapeNE:
		return ineKernel(vals, lo)
	case shapeLE:
		return ileKernel(vals, hi)
	case shapeGE:
		return igeKernel(vals, lo)
	default:
		return irangeKernel[uint8, uint8](vals, lo, hi)
	}
}

// intKernelU16 is the u16 instantiation of the integer-domain dispatch.
func intKernelU16(vals []uint16, pred ColumnPred) *Kernel {
	shape, lo64, hi64 := normalizeIntPred(pred, 0, math.MaxUint16)
	lo, hi := uint16(lo64), uint16(hi64)
	switch shape {
	case shapeAll:
		return allKernel(len(vals))
	case shapeNone:
		return noneKernel()
	case shapeEQ:
		return ieqKernel(vals, lo)
	case shapeNE:
		return ineKernel(vals, lo)
	case shapeLE:
		return ileKernel(vals, hi)
	case shapeGE:
		return igeKernel(vals, lo)
	default:
		return irangeKernel[uint16, uint16](vals, lo, hi)
	}
}

// intKernelI32 is the i32 instantiation of the integer-domain dispatch.
func intKernelI32(vals []int32, pred ColumnPred) *Kernel {
	shape, lo64, hi64 := normalizeIntPred(pred, math.MinInt32, math.MaxInt32)
	lo, hi := int32(lo64), int32(hi64)
	switch shape {
	case shapeAll:
		return allKernel(len(vals))
	case shapeNone:
		return noneKernel()
	case shapeEQ:
		return ieqKernel(vals, lo)
	case shapeNE:
		return ineKernel(vals, lo)
	case shapeLE:
		return ileKernel(vals, hi)
	case shapeGE:
		return igeKernel(vals, lo)
	default:
		return irangeKernel[int32, uint32](vals, lo, hi)
	}
}

// allKernel accepts every row (n guards block bounds for callers that pass
// the full column range).
func allKernel(n int) *Kernel {
	return &Kernel{
		FilterBlock: func(lo, hi int, out []int) []int {
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		},
		FilterSel: func(rows, out []int) []int {
			return append(out, rows...)
		},
	}
}

// noneKernel rejects every row.
func noneKernel() *Kernel {
	return &Kernel{
		FilterBlock: func(lo, hi int, out []int) []int { return out },
		FilterSel:   func(rows, out []int) []int { return out },
	}
}

// genericKernel is the interface-dispatch fallback for columns without a
// typed fast path; it preserves ColumnPred.Matches semantics exactly.
func genericKernel(col colstore.Column, pred ColumnPred) *Kernel {
	return &Kernel{
		FilterBlock: func(lo, hi int, out []int) []int {
			if n := col.Len(); hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				if pred.Matches(col.Value(i)) {
					out = append(out, i)
				}
			}
			return out
		},
		FilterSel: func(rows, out []int) []int {
			for _, r := range rows {
				if pred.Matches(col.Value(r)) {
					out = append(out, r)
				}
			}
			return out
		},
	}
}

// Pooled selection vectors live in pool.go (getRowBuf / RecycleRows): a
// striped mutex-backed free list shared with the candidate-range pool.

// Package engine implements the paper's primary contribution: a
// "spatially-enabled" column store for massive point clouds (§3). Point
// clouds live in a flat table with one column per LAS attribute (X, Y, Z and
// 23 properties, §3.1); loading goes through per-attribute binary dumps
// appended with the COPY BINARY fast path (§3.2); spatial selections run the
// two-step filter–refine model — column imprints for coarse filtering, a
// regular grid plus exact tests for refinement (§3.3). Vector datasets
// (roads, land use) live in geometry tables so ad-hoc multi-dataset queries
// (§4.2) can join them with the cloud. Every operator reports its time into
// an EXPLAIN trace, mirroring the demo's per-operator view.
package engine

import (
	"fmt"

	"gisnav/internal/colstore"
	"gisnav/internal/las"
)

// Flat point-cloud table column names, in schema order: the X, Y, Z
// coordinates plus 23 point properties (the LAS 1.4 attribute set the paper
// counts in §1). Wave-packet fields are carried as zeros when the source
// format lacks them, exactly as a relational NULL-free flat table would.
const (
	ColX               = "x"
	ColY               = "y"
	ColZ               = "z"
	ColIntensity       = "intensity"
	ColReturnNumber    = "return_number"
	ColNumReturns      = "number_of_returns"
	ColScanDirection   = "scan_direction_flag"
	ColEdgeOfFlight    = "edge_of_flight_line"
	ColClassification  = "classification"
	ColSynthetic       = "synthetic_flag"
	ColKeyPoint        = "key_point_flag"
	ColWithheld        = "withheld_flag"
	ColOverlap         = "overlap_flag"
	ColScannerChannel  = "scanner_channel"
	ColScanAngle       = "scan_angle"
	ColUserData        = "user_data"
	ColPointSourceID   = "point_source_id"
	ColGPSTime         = "gps_time"
	ColRed             = "red"
	ColGreen           = "green"
	ColBlue            = "blue"
	ColNIR             = "nir"
	ColWaveDescriptor  = "wave_descriptor"
	ColWaveOffset      = "wave_offset"
	ColWavePacketSize  = "wave_packet_size"
	ColWaveReturnPoint = "wave_return_location"
)

// PointCloudSchema returns the 26-attribute flat table schema.
func PointCloudSchema() colstore.Schema {
	return colstore.Schema{Fields: []colstore.Field{
		{Name: ColX, Type: colstore.F64},
		{Name: ColY, Type: colstore.F64},
		{Name: ColZ, Type: colstore.F64},
		{Name: ColIntensity, Type: colstore.U16},
		{Name: ColReturnNumber, Type: colstore.U8},
		{Name: ColNumReturns, Type: colstore.U8},
		{Name: ColScanDirection, Type: colstore.U8},
		{Name: ColEdgeOfFlight, Type: colstore.U8},
		{Name: ColClassification, Type: colstore.U8},
		{Name: ColSynthetic, Type: colstore.U8},
		{Name: ColKeyPoint, Type: colstore.U8},
		{Name: ColWithheld, Type: colstore.U8},
		{Name: ColOverlap, Type: colstore.U8},
		{Name: ColScannerChannel, Type: colstore.U8},
		{Name: ColScanAngle, Type: colstore.I32},
		{Name: ColUserData, Type: colstore.U8},
		{Name: ColPointSourceID, Type: colstore.U16},
		{Name: ColGPSTime, Type: colstore.F64},
		{Name: ColRed, Type: colstore.U16},
		{Name: ColGreen, Type: colstore.U16},
		{Name: ColBlue, Type: colstore.U16},
		{Name: ColNIR, Type: colstore.U16},
		{Name: ColWaveDescriptor, Type: colstore.U8},
		{Name: ColWaveOffset, Type: colstore.I64},
		{Name: ColWavePacketSize, Type: colstore.I32},
		{Name: ColWaveReturnPoint, Type: colstore.F64},
	}}
}

// boolByte converts a flag to its column representation.
func boolByte(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// appendLASPoint appends one LAS point across the schema's columns. cols
// must follow PointCloudSchema order.
func appendLASPoint(cols []colstore.Column, p las.Point) {
	cols[0].AppendValue(p.X)
	cols[1].AppendValue(p.Y)
	cols[2].AppendValue(p.Z)
	cols[3].AppendValue(float64(p.Intensity))
	cols[4].AppendValue(float64(p.ReturnNumber))
	cols[5].AppendValue(float64(p.NumReturns))
	cols[6].AppendValue(boolByte(p.ScanDirection))
	cols[7].AppendValue(boolByte(p.EdgeOfFlight))
	cols[8].AppendValue(float64(p.Classification))
	cols[9].AppendValue(0)  // synthetic
	cols[10].AppendValue(0) // key point
	cols[11].AppendValue(0) // withheld
	cols[12].AppendValue(0) // overlap
	cols[13].AppendValue(0) // scanner channel
	cols[14].AppendValue(float64(p.ScanAngleRank))
	cols[15].AppendValue(float64(p.UserData))
	cols[16].AppendValue(float64(p.PointSourceID))
	cols[17].AppendValue(p.GPSTime)
	cols[18].AppendValue(float64(p.Red))
	cols[19].AppendValue(float64(p.Green))
	cols[20].AppendValue(float64(p.Blue))
	// NIR synthesised from the green channel for formats without it.
	cols[21].AppendValue(float64(p.Green) / 2)
	cols[22].AppendValue(0) // wave descriptor
	cols[23].AppendValue(0) // wave offset
	cols[24].AppendValue(0) // wave packet size
	cols[25].AppendValue(0) // wave return location
}

// validateSameLength checks the flat table invariant.
func validateSameLength(cols []colstore.Column) error {
	if len(cols) == 0 {
		return nil
	}
	n := cols[0].Len()
	for i, c := range cols[1:] {
		if c.Len() != n {
			return fmt.Errorf("engine: ragged flat table: column %d has %d rows, want %d", i+1, c.Len(), n)
		}
	}
	return nil
}

// Morsel-driven parallel execution (PR 8): the compiled filter kernels,
// the fused min/max aggregate and the grouped-aggregate strategies fan
// cache-sized partitions ("morsels") across the shared resident worker
// set in internal/morsel — the pool promoted out of grid/parallel.go —
// instead of running on a single core.
//
// Determinism contract: parallel output is bit-identical to the serial
// path. That is cheap for filters (partitions are disjoint ascending row
// ranges; concatenating partials in ascending-partition order IS the
// serial order) and provable for count/min/max (counts are exact integers
// in float64; min/max use strict compares seeded at ±Inf, so folding
// per-partition results in ascending-partition order reproduces the
// serial ascending fold bit-for-bit — equal-valued ties keep their
// earliest winner and NaN never wins). It is NOT true for sum/avg: float
// addition is not associative, and the aggregate-semantics invariant pins
// sums bit-identical to the ascending row-at-a-time loop — so sum/avg
// always run serial, and grouped plans containing them take the serial
// strategy (specsMergeExact).
//
// Degree selection: SetMaxParallel on the run caps the fan-out (the SQL
// layer sets it per run; 0 defers to PointCloud.Parallel); morselDegree
// then clamps by the driving row count so each partition carries at least
// morselMinRows rows — small selections stay serial, where fan-out costs
// more than it saves.
//
// Lifecycle contract (PR 6): per-worker scratch is pooled and registered
// on a per-worker release path — each RunPartition drains exactly the
// buffers it acquired before letting a panic escape, the pass machinery
// parks per-slot panics until every partition settles, and the driver
// recycles all surviving partials before re-raising the first panic for
// the query layer's recovery. Workers poll the run's cancel token at
// block boundaries (scanChunk blocks in the fold loops, one accumulate
// pass in the grouped strategies); a fired token surfaces from the driver
// with every buffer back in its pool. The engine.morsel.worker and
// engine.morsel.merge faultpoints prove both paths under -tags
// faultinject.
package engine

import (
	"math"
	"sync"

	"gisnav/internal/cancel"
	"gisnav/internal/colstore"
	"gisnav/internal/faultpoint"
	"gisnav/internal/grid"
	"gisnav/internal/morsel"
)

// morselMinRows is the minimum row count per partition: below two
// partitions' worth the serial path wins (this reproduces the old 1<<17
// parallel crossover of the indexed range filter at degree 2).
const morselMinRows = 1 << 16

// morselDegree picks the fan-out degree for an operator driving rows
// rows: the run's explicit cap (SetMaxParallel), else the resident worker
// count when the table opted into auto-parallel execution, clamped so
// every partition carries at least morselMinRows rows. 1 means serial.
func (pc *PointCloud) morselDegree(run *Run, rows int) int {
	limit := run.MaxParallel()
	if limit == 0 {
		if !pc.Parallel {
			return 1
		}
		limit = morsel.Workers()
	}
	if limit <= 1 {
		return 1
	}
	d := rows / morselMinRows
	if d < 2 {
		return 1
	}
	if d > limit {
		d = limit
	}
	return d
}

// passFree is the mutex-backed free list behind the pooled operator pass
// scratch. A sync.Pool would be idiomatic, but the race detector drops
// sync.Pool puts, which would fail the AllocsPerRun == 0 steady-state
// tests under the -race CI job (the SQL layer's runStatePool documents
// the same trade-off).
type passFree[T any] struct {
	mu   sync.Mutex
	free []*T
}

func (p *passFree[T]) get() *T {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		return t
	}
	return new(T)
}

func (p *passFree[T]) put(t *T) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < 16 {
		p.free = append(p.free, t)
	}
}

// --- parallel block filter ------------------------------------------------------

// filterPass is the pooled fan-out scaffolding of one parallel
// block-filter pass: the partition storage, the compiled kernel with its
// bound constant record, and the per-partition result slots.
type filterPass struct {
	pass    morsel.Pass
	partBuf []colstore.Range
	cuts    []int
	parts   [][]colstore.Range
	results [][]int
	k       *Kernel
	a       KernelArgs
	full    [1]colstore.Range // candidate storage for the full-column drive
}

var filterPasses passFree[filterPass]

// RunPartition drives the block kernel over one partition's ranges into a
// pooled per-worker selection vector — this slot's release entry. On a
// panic the buffer goes straight back to its pool and the result slot is
// cleared before the panic re-raises into the morsel recovery.
// Cancellation is polled inside FilterBlock per scanChunk block (the
// token rides in the bound args), so a fired token leaves a partial
// vector the driver discards.
func (fp *filterPass) RunPartition(slot int) {
	part := fp.parts[slot]
	buf := getRowBuf(colstore.RangesLen(part))
	defer func() {
		if p := recover(); p != nil {
			fp.results[slot] = nil
			rowPool.Put(buf)
			panic(p)
		}
	}()
	if err := faultpoint.Hit("engine.morsel.worker"); err != nil {
		panic(err)
	}
	for _, r := range part {
		buf = fp.k.FilterBlock(fp.a, r.Start, r.End, buf)
	}
	fp.results[slot] = buf
}

// drain recycles every surviving per-partition result.
func (fp *filterPass) drain() {
	for i := range fp.results {
		if fp.results[i] != nil {
			rowPool.Put(fp.results[i])
			fp.results[i] = nil
		}
	}
}

func (fp *filterPass) release() {
	fp.k = nil
	fp.a = KernelArgs{}
}

// filterFullMorsel fans the block kernel over the whole column [0, n) in
// deg partitions — the first-predicate fast path, which needs no
// candidate ranges.
func filterFullMorsel(k *Kernel, a KernelArgs, n, deg int, out []int) ([]int, error) {
	fp := filterPasses.get()
	fp.full[0] = colstore.Range{End: n}
	return runFilterPass(fp, k, a, fp.full[:1], deg, out)
}

// filterBlocksMorsel fans the block kernel over the candidate ranges in
// deg partitions, appending matches to out.
func filterBlocksMorsel(k *Kernel, a KernelArgs, cand []colstore.Range, deg int, out []int) ([]int, error) {
	return runFilterPass(filterPasses.get(), k, a, cand, deg, out)
}

// runFilterPass splits cand (via the shared grid partitioner), fans the
// partitions across the resident worker set and concatenates the partial
// vectors in ascending-partition order — partitions are disjoint
// ascending row ranges, so the result is bit-identical to the serial
// block drive. A partition panic re-raises here after all partitions
// settle, with every surviving partial already recycled; the merge
// faultpoint's error path proves the same accounting without a panic.
func runFilterPass(fp *filterPass, k *Kernel, a KernelArgs, cand []colstore.Range, deg int, out []int) ([]int, error) {
	fp.k, fp.a = k, a
	fp.partBuf, fp.cuts, fp.parts = grid.SplitRangesInto(cand, deg, fp.partBuf, fp.cuts, fp.parts)
	n := len(fp.parts)
	if cap(fp.results) < n {
		fp.results = make([][]int, n)
	}
	fp.results = fp.results[:n]
	if p := fp.pass.Run(n, fp); p != nil {
		fp.drain()
		fp.release()
		filterPasses.put(fp)
		panic(p)
	}
	if err := faultpoint.Hit("engine.morsel.merge"); err != nil {
		fp.drain()
		fp.release()
		filterPasses.put(fp)
		return out, err
	}
	for i := range fp.results {
		if fp.results[i] != nil {
			out = append(out, fp.results[i]...)
			rowPool.Put(fp.results[i])
			fp.results[i] = nil
		}
	}
	fp.release()
	filterPasses.put(fp)
	return out, nil
}

// --- parallel fused min/max aggregate -------------------------------------------

// aggPass is the pooled fan-out scaffolding of one parallel min/max
// aggregate: partition bounds are computed from (n, deg) per slot, and
// the per-slot partial folds land in preallocated banks — workers own no
// pooled buffers, so a partition panic has nothing to drain.
type aggPass struct {
	pass     morsel.Pass
	col      colstore.Column
	rows     []int
	all      bool
	n, deg   int
	los, his []float64
	tok      *cancel.Token
}

var aggPasses passFree[aggPass]

// RunPartition folds one partition's min/max in scanChunk blocks,
// polling the run's token at every block boundary. Strict folds in
// ascending block order reproduce the serial ascending fold bit-for-bit.
func (ap *aggPass) RunPartition(slot int) {
	if err := faultpoint.Hit("engine.morsel.worker"); err != nil {
		panic(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	start := slot * ap.n / ap.deg
	end := (slot + 1) * ap.n / ap.deg
	for b := start; b < end; b += scanChunk {
		if ap.tok.Cancelled() {
			break
		}
		be := min(b+scanChunk, end)
		var blo, bhi float64
		if ap.all {
			_, blo, bhi = aggColumnSpan(ap.col, b, be)
		} else {
			_, blo, bhi = aggColumn(ap.col, ap.rows[b:be], false)
		}
		if blo < lo {
			lo = blo
		}
		if bhi > hi {
			hi = bhi
		}
	}
	ap.los[slot], ap.his[slot] = lo, hi
}

func (ap *aggPass) release() {
	ap.col = nil
	ap.rows = nil
	ap.tok = nil
}

// aggMorsel computes the fused min/max over the selection in deg
// partitions and folds the partials in ascending-partition order —
// bit-identical to the serial fold (see the package comment).
func aggMorsel(run *Run, col colstore.Column, rows []int, all bool, n, deg int) (lo, hi float64, err error) {
	ap := aggPasses.get()
	ap.col, ap.rows, ap.all = col, rows, all
	ap.n, ap.deg = n, deg
	ap.tok = run.Token()
	if cap(ap.los) < deg {
		ap.los = make([]float64, deg)
		ap.his = make([]float64, deg)
	}
	ap.los, ap.his = ap.los[:deg], ap.his[:deg]
	if p := ap.pass.Run(deg, ap); p != nil {
		ap.release()
		aggPasses.put(ap)
		panic(p)
	}
	if ferr := faultpoint.Hit("engine.morsel.merge"); ferr != nil {
		ap.release()
		aggPasses.put(ap)
		return 0, 0, ferr
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for s := 0; s < deg; s++ {
		if ap.los[s] < lo {
			lo = ap.los[s]
		}
		if ap.his[s] > hi {
			hi = ap.his[s]
		}
	}
	ap.release()
	aggPasses.put(ap)
	return lo, hi, nil
}

// aggColumnSpan is aggColumn over the index span [lo, hi) of the full
// column — the all-rows partition arm.
func aggColumnSpan(col colstore.Column, lo, hi int) (sum, l, h float64) {
	switch t := col.(type) {
	case *colstore.F64Column:
		return aggVals(t.Values()[lo:hi], nil, true)
	case *colstore.I64Column:
		return aggVals(t.Values()[lo:hi], nil, true)
	case *colstore.I32Column:
		return aggVals(t.Values()[lo:hi], nil, true)
	case *colstore.U16Column:
		return aggVals(t.Values()[lo:hi], nil, true)
	case *colstore.U8Column:
		return aggVals(t.Values()[lo:hi], nil, true)
	default:
		l, h = math.Inf(1), math.Inf(-1)
		for i := lo; i < hi; i++ {
			v := col.Value(i)
			sum += v
			if v < l {
				l = v
			}
			if v > h {
				h = v
			}
		}
		return sum, l, h
	}
}

// --- parallel grouped aggregation -----------------------------------------------

// specsMergeExact reports whether every requested aggregate merges
// exactly across partitions: count (exact integer arithmetic in float64)
// and min/max (strict folds, order-associative). Sum and avg are
// excluded — float addition is not associative, and the aggregate
// semantics contract pins sums bit-identical to the ascending
// row-at-a-time fold — so plans containing them run the serial strategy.
func specsMergeExact(specs []GroupedAggSpec) bool {
	for _, s := range specs {
		switch s.Fn {
		case AggCount, AggMin, AggMax:
		default:
			return false
		}
	}
	return true
}

// densePass is the pooled fan-out scaffolding of one parallel dense
// grouped pass. Per-worker accumulator banks are disjoint slabs of one
// run-tracked buffer (banks), so workers own no pooled buffers and a
// partition panic has nothing to drain — the driver recycles the slab.
// Exactly one of keys8/keys16 is set.
type densePass struct {
	pass        morsel.Pass
	keys8       []uint8
	keys16      []uint16
	pc          *PointCloud
	rows        []int
	all         bool
	n, deg      int
	dom, stride int
	specs       []GroupedAggSpec
	banks       []float64
	tok         *cancel.Token
}

var densePasses passFree[densePass]

func (dp *densePass) RunPartition(slot int) {
	if dp.keys8 != nil {
		densePartition(dp, dp.keys8, slot)
		return
	}
	densePartition(dp, dp.keys16, slot)
}

func (dp *densePass) release() {
	dp.keys8, dp.keys16 = nil, nil
	dp.pc, dp.rows = nil, nil
	dp.specs, dp.banks = nil, nil
	dp.tok = nil
}

// densePartition runs the dense count + accumulate passes over one
// partition into this slot's bank slab. One accumulate pass is this
// layer's block (as in groupPassCheckpoint), so the token is polled
// between passes.
func densePartition[K denseKey](dp *densePass, keys []K, slot int) {
	if err := faultpoint.Hit("engine.morsel.worker"); err != nil {
		panic(err)
	}
	bank := dp.banks[slot*dp.stride : (slot+1)*dp.stride]
	cnt := bank[:dp.dom]
	for i := range cnt {
		cnt[i] = 0
	}
	start := slot * dp.n / dp.deg
	end := (slot + 1) * dp.n / dp.deg
	if dp.all {
		denseCount(keys[start:end], nil, true, cnt)
	} else {
		denseCount(keys, dp.rows[start:end], false, cnt)
	}
	for j, s := range dp.specs {
		if dp.tok.Cancelled() {
			return
		}
		b := bank[(1+j)*dp.dom : (2+j)*dp.dom]
		switch s.Fn {
		case AggCount:
			// Served from the shared count bank at emit time.
		case AggMin:
			for i := range b {
				b[i] = math.Inf(1)
			}
			denseAccumPart(keys, dp.pc.Column(s.Column), dp.rows, dp.all, start, end, AggMin, b)
		case AggMax:
			for i := range b {
				b[i] = math.Inf(-1)
			}
			denseAccumPart(keys, dp.pc.Column(s.Column), dp.rows, dp.all, start, end, AggMax, b)
		}
	}
}

// denseAccumPart is denseAccumCol restricted to the partition span
// [start, end) of the selection (or of the full column when all).
func denseAccumPart[K denseKey](keys []K, col colstore.Column, rows []int, all bool, start, end int, fn AggFunc, bank []float64) {
	if !all {
		denseAccumCol(keys, col, rows[start:end], false, fn, bank)
		return
	}
	switch c := col.(type) {
	case *colstore.F64Column:
		denseAccum(keys[start:end], c.Values()[start:end], nil, true, fn, bank)
	case *colstore.I64Column:
		denseAccum(keys[start:end], c.Values()[start:end], nil, true, fn, bank)
	case *colstore.I32Column:
		denseAccum(keys[start:end], c.Values()[start:end], nil, true, fn, bank)
	case *colstore.U16Column:
		denseAccum(keys[start:end], c.Values()[start:end], nil, true, fn, bank)
	case *colstore.U8Column:
		denseAccum(keys[start:end], c.Values()[start:end], nil, true, fn, bank)
	default:
		for i := start; i < end; i++ {
			accumOne(fn, bank, int(keys[i]), col.Value(i))
		}
	}
}

// denseGroupedMorsel is the parallel dense strategy: per-worker bank
// slabs over one run-tracked buffer, merged in ascending-partition order
// (counts sum exactly; min/max fold strictly), then the serial ascending
// domain emit. Output is bit-identical to denseGrouped. Exactly one of
// keys8/keys16 is non-nil; every spec is count/min/max (specsMergeExact).
func denseGroupedMorsel(run *Run, pc *PointCloud, keys8 []uint8, keys16 []uint16, dom int, rows []int, all bool, n int, specs []GroupedAggSpec, res *GroupedResult, deg int) error {
	stride := dom * (1 + len(specs))
	banks := run.trackF64(getF64Buf(deg * stride))[:deg*stride]
	dp := densePasses.get()
	dp.keys8, dp.keys16 = keys8, keys16
	dp.pc, dp.rows, dp.all = pc, rows, all
	dp.n, dp.deg, dp.dom, dp.stride = n, deg, dom, stride
	dp.specs, dp.banks = specs, banks
	dp.tok = run.Token()
	if p := dp.pass.Run(deg, dp); p != nil {
		dp.release()
		densePasses.put(dp)
		run.recycleF64(banks)
		panic(p)
	}
	dp.release()
	densePasses.put(dp)
	if err := faultpoint.Hit("engine.morsel.merge"); err != nil {
		run.recycleF64(banks)
		return err
	}
	if run.Cancelled() {
		run.recycleF64(banks)
		return cancel.ErrCancelled
	}
	base := banks[:stride]
	for w := 1; w < deg; w++ {
		wb := banks[w*stride : (w+1)*stride]
		for k := 0; k < dom; k++ {
			base[k] += wb[k]
		}
		for j, s := range specs {
			bb := base[(1+j)*dom : (2+j)*dom]
			sb := wb[(1+j)*dom : (2+j)*dom]
			switch s.Fn {
			case AggMin:
				for k := range bb {
					if sb[k] < bb[k] {
						bb[k] = sb[k]
					}
				}
			case AggMax:
				for k := range bb {
					if sb[k] > bb[k] {
						bb[k] = sb[k]
					}
				}
			}
		}
	}
	cnt := base[:dom]
	for k := 0; k < dom; k++ {
		c := cnt[k]
		if c == 0 {
			continue
		}
		res.Keys = append(res.Keys, float64(k))
		for j, s := range specs {
			v := base[(1+j)*dom+k]
			if s.Fn == AggCount {
				v = c
			}
			res.Cols[j] = append(res.Cols[j], v)
		}
	}
	run.recycleF64(banks)
	return nil
}

// hashPass is the pooled fan-out scaffolding of one parallel hash
// grouped pass. Each worker builds a local group table, slot vector and
// accumulator bank over its partition — the per-worker release list: the
// slot's deferred recover drains exactly what the partition acquired
// before a panic re-raises, and the driver drains every surviving slot.
type hashPass struct {
	pass   morsel.Pass
	keyCol colstore.Column
	specs  []GroupedAggSpec
	pc     *PointCloud
	rows   []int
	all    bool
	n, deg int
	nacc   int // min/max specs; count folds from the local group counts
	gs     []groupHash
	slotsv [][]int
	banks  [][]float64
	tok    *cancel.Token
}

var hashPasses passFree[hashPass]

// RunPartition builds this partition's local groups: pass 0 assigns local
// slots while counting, then one accumulate pass per min/max spec (the
// block boundary, polled like groupPassCheckpoint). Results park in the
// per-slot fields for the ascending merge.
func (hp *hashPass) RunPartition(slot int) {
	if err := faultpoint.Hit("engine.morsel.worker"); err != nil {
		panic(err)
	}
	start := slot * hp.n / hp.deg
	end := (slot + 1) * hp.n / hp.deg
	pn := end - start
	tabSize := 1 << 10
	for tabSize < 4*pn && tabSize < 1<<20 {
		tabSize <<= 1
	}
	g := groupHash{
		table: getRowBuf(tabSize)[:tabSize],
		keys:  getF64Buf(64),
		cnt:   getF64Buf(64),
	}
	var slots []int
	var bank []float64
	defer func() {
		if p := recover(); p != nil {
			rowPool.Put(g.table)
			f64Pool.Put(g.keys)
			f64Pool.Put(g.cnt)
			if slots != nil {
				rowPool.Put(slots)
			}
			if bank != nil {
				f64Pool.Put(bank)
			}
			hp.gs[slot] = groupHash{}
			hp.slotsv[slot] = nil
			hp.banks[slot] = nil
			panic(p)
		}
	}()
	for i := range g.table {
		g.table[i] = 0
	}
	slots = getRowBuf(pn)[:pn]
	hashKeysPart(hp.keyCol, hp.rows, hp.all, start, end, &g, slots)
	if hp.nacc > 0 {
		groups := len(g.keys)
		bank = getF64Buf(hp.nacc * groups)[:hp.nacc*groups]
		ai := 0
		var fusedDone uint64
		for j, s := range hp.specs {
			if s.Fn != AggMin && s.Fn != AggMax {
				continue
			}
			if j < 64 && fusedDone&(1<<uint(j)) != 0 {
				ai++ // segment filled by an earlier partner's fused pass
				continue
			}
			if hp.tok.Cancelled() {
				break
			}
			b := bank[ai*groups : (ai+1)*groups]
			if k := fusePartner(hp.specs, j); k >= 0 {
				// The partner's bank segment sits at its own min/max
				// ordinal; the layout is unchanged, so the driver's
				// ascending merge needs no fusion awareness.
				pai := ai + 1
				for m := j + 1; m < k; m++ {
					if hp.specs[m].Fn == AggMin || hp.specs[m].Fn == AggMax {
						pai++
					}
				}
				pb := bank[pai*groups : (pai+1)*groups]
				lo, hi := b, pb
				if s.Fn == AggMax {
					lo, hi = pb, b
				}
				for i := range lo {
					lo[i] = math.Inf(1)
					hi[i] = math.Inf(-1)
				}
				hashAccumMinMaxPart(hp.pc.Column(s.Column), hp.rows, hp.all, start, end, slots, lo, hi)
				fusedDone |= 1 << uint(k)
				ai++
				continue
			}
			seed := math.Inf(1)
			if s.Fn == AggMax {
				seed = math.Inf(-1)
			}
			for i := range b {
				b[i] = seed
			}
			hashAccumPart(hp.pc.Column(s.Column), hp.rows, hp.all, start, end, slots, s.Fn, b)
			ai++
		}
	}
	hp.gs[slot] = g
	hp.slotsv[slot] = slots
	hp.banks[slot] = bank
}

// drain recycles every surviving per-worker buffer (slots that panicked
// already drained their own and cleared their fields).
func (hp *hashPass) drain() {
	for w := range hp.gs {
		if hp.gs[w].table != nil {
			rowPool.Put(hp.gs[w].table)
			f64Pool.Put(hp.gs[w].keys)
			f64Pool.Put(hp.gs[w].cnt)
			hp.gs[w] = groupHash{}
		}
		if hp.slotsv[w] != nil {
			rowPool.Put(hp.slotsv[w])
			hp.slotsv[w] = nil
		}
		if hp.banks[w] != nil {
			f64Pool.Put(hp.banks[w])
			hp.banks[w] = nil
		}
	}
}

func (hp *hashPass) release() {
	hp.keyCol = nil
	hp.specs = nil
	hp.pc = nil
	hp.rows = nil
	hp.tok = nil
}

// hashKeysPart is hashKeyCol restricted to the partition span [start,
// end): local slot assignment only needs the key VALUES, so the all-rows
// arm subslices the column and the selection arm subslices rows.
func hashKeysPart(col colstore.Column, rows []int, all bool, start, end int, g *groupHash, slots []int) {
	if !all {
		hashKeyCol(col, rows[start:end], false, g, slots)
		return
	}
	switch c := col.(type) {
	case *colstore.F64Column:
		hashKeys(c.Values()[start:end], nil, true, g, slots)
	case *colstore.I64Column:
		hashKeys(c.Values()[start:end], nil, true, g, slots)
	case *colstore.I32Column:
		hashKeys(c.Values()[start:end], nil, true, g, slots)
	case *colstore.U16Column:
		hashKeys(c.Values()[start:end], nil, true, g, slots)
	case *colstore.U8Column:
		hashKeys(c.Values()[start:end], nil, true, g, slots)
	default:
		for i := range slots {
			s := g.slotOf(col.Value(start + i))
			g.cnt[s]++
			slots[i] = s
		}
	}
}

// hashAccumPart is hashAccumCol restricted to the partition span.
func hashAccumPart(col colstore.Column, rows []int, all bool, start, end int, slots []int, fn AggFunc, bank []float64) {
	if !all {
		hashAccumCol(col, rows[start:end], false, slots, fn, bank)
		return
	}
	switch c := col.(type) {
	case *colstore.F64Column:
		hashAccum(c.Values()[start:end], nil, true, slots, fn, bank)
	case *colstore.I64Column:
		hashAccum(c.Values()[start:end], nil, true, slots, fn, bank)
	case *colstore.I32Column:
		hashAccum(c.Values()[start:end], nil, true, slots, fn, bank)
	case *colstore.U16Column:
		hashAccum(c.Values()[start:end], nil, true, slots, fn, bank)
	case *colstore.U8Column:
		hashAccum(c.Values()[start:end], nil, true, slots, fn, bank)
	default:
		for i, s := range slots {
			accumOne(fn, bank, s, col.Value(start+i))
		}
	}
}

// hashAccumMinMaxPart is hashAccumMinMaxCol restricted to the partition
// span.
func hashAccumMinMaxPart(col colstore.Column, rows []int, all bool, start, end int, slots []int, lo, hi []float64) {
	if !all {
		hashAccumMinMaxCol(col, rows[start:end], false, slots, lo, hi)
		return
	}
	switch c := col.(type) {
	case *colstore.F64Column:
		hashAccumMinMax(c.Values()[start:end], nil, true, slots, lo, hi)
	case *colstore.I64Column:
		hashAccumMinMax(c.Values()[start:end], nil, true, slots, lo, hi)
	case *colstore.I32Column:
		hashAccumMinMax(c.Values()[start:end], nil, true, slots, lo, hi)
	case *colstore.U16Column:
		hashAccumMinMax(c.Values()[start:end], nil, true, slots, lo, hi)
	case *colstore.U8Column:
		hashAccumMinMax(c.Values()[start:end], nil, true, slots, lo, hi)
	default:
		for i, s := range slots {
			v := col.Value(start + i)
			if v < lo[s] {
				lo[s] = v
			}
			if v > hi[s] {
				hi[s] = v
			}
		}
	}
}

// hashGroupedMorsel is the parallel hash strategy: per-worker local group
// tables over disjoint partitions, merged in ascending-partition order
// into a global table. Ascending merge makes the global first-appearance
// order equal the serial one (partition w's rows all precede partition
// w+1's), so the stored key value of every group — NaN payload included —
// matches the serial path's first-seen value; counts sum exactly and
// min/max fold strictly, and the final FloatOrderKey sort makes the
// emitted record bit-identical to hashGrouped. Every spec is
// count/min/max (specsMergeExact).
func hashGroupedMorsel(run *Run, pc *PointCloud, keyCol colstore.Column, rows []int, all bool, n int, specs []GroupedAggSpec, res *GroupedResult, deg int) error {
	hp := hashPasses.get()
	hp.keyCol, hp.specs, hp.pc = keyCol, specs, pc
	hp.rows, hp.all, hp.n, hp.deg = rows, all, n, deg
	hp.nacc = 0
	for _, s := range specs {
		if s.Fn == AggMin || s.Fn == AggMax {
			hp.nacc++
		}
	}
	hp.tok = run.Token()
	if cap(hp.gs) < deg {
		hp.gs = make([]groupHash, deg)
		hp.slotsv = make([][]int, deg)
		hp.banks = make([][]float64, deg)
	}
	hp.gs = hp.gs[:deg]
	hp.slotsv = hp.slotsv[:deg]
	hp.banks = hp.banks[:deg]
	if p := hp.pass.Run(deg, hp); p != nil {
		hp.drain()
		hp.release()
		hashPasses.put(hp)
		panic(p)
	}
	if err := faultpoint.Hit("engine.morsel.merge"); err != nil {
		hp.drain()
		hp.release()
		hashPasses.put(hp)
		return err
	}
	if run.Cancelled() {
		hp.drain()
		hp.release()
		hashPasses.put(hp)
		return cancel.ErrCancelled
	}

	// Sweep 1, ascending partitions: assign global slots and sum counts.
	// The global table, key store and count store grow during the sweep,
	// so they register in the release list after it (track-after-
	// production, as in the serial hash path).
	total := 0
	for w := 0; w < deg; w++ {
		total += len(hp.gs[w].keys)
	}
	tabSize := 1 << 10
	for tabSize < 4*total && tabSize < 1<<20 {
		tabSize <<= 1
	}
	g := groupHash{
		table: getRowBuf(tabSize)[:tabSize],
		keys:  getF64Buf(64),
		cnt:   getF64Buf(64),
	}
	for i := range g.table {
		g.table[i] = 0
	}
	for w := 0; w < deg; w++ {
		lg := &hp.gs[w]
		for l, key := range lg.keys {
			s := g.slotOf(key)
			g.cnt[s] += lg.cnt[l]
		}
	}
	run.TrackRows(g.table)
	run.trackF64(g.keys)
	run.trackF64(g.cnt)
	groups := len(g.keys)

	// Sweep 2, per min/max spec: fold the worker banks in ascending-
	// partition order into the global bank.
	bank := run.trackF64(getF64Buf(hp.nacc * groups))[:hp.nacc*groups]
	ai := 0
	for _, s := range specs {
		if s.Fn != AggMin && s.Fn != AggMax {
			continue
		}
		gb := bank[ai*groups : (ai+1)*groups]
		seed := math.Inf(1)
		if s.Fn == AggMax {
			seed = math.Inf(-1)
		}
		for i := range gb {
			gb[i] = seed
		}
		for w := 0; w < deg; w++ {
			lg := &hp.gs[w]
			lgroups := len(lg.keys)
			wb := hp.banks[w][ai*lgroups : (ai+1)*lgroups]
			for l, key := range lg.keys {
				gs := g.slotOf(key)
				if s.Fn == AggMin {
					if wb[l] < gb[gs] {
						gb[gs] = wb[l]
					}
				} else if wb[l] > gb[gs] {
					gb[gs] = wb[l]
				}
			}
		}
		ai++
	}

	res.Keys = append(res.Keys, g.keys...)
	ai = 0
	for j, s := range specs {
		switch s.Fn {
		case AggCount:
			res.Cols[j] = append(res.Cols[j], g.cnt...)
		case AggMin, AggMax:
			res.Cols[j] = append(res.Cols[j], bank[ai*groups:(ai+1)*groups]...)
			ai++
		}
	}
	run.recycleF64(bank)
	run.recycleF64(g.keys)
	run.recycleF64(g.cnt)
	run.RecycleRows(g.table)
	hp.drain()
	hp.release()
	hashPasses.put(hp)
	sortGrouped(res)
	return nil
}

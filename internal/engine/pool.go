// Pooled query buffers. The engine's steady-state query path — the paper's
// repeated pan/zoom workload — must allocate nothing: selection vectors and
// imprint candidate-range lists come from striped free-list pools
// (colstore.Pool; the grid package pools its refinement scratch the same
// way) and return to them when the query finishes.
package engine

import (
	"gisnav/internal/colstore"
)

// rowPool recycles selection vectors; rangePool recycles imprint
// candidate-range lists; f64Pool recycles float64 scratch (grouped-aggregate
// accumulator banks, hash-table key stores). Budgets assume 8-byte row ids
// (256 MiB), 16-byte ranges (128 MiB) and 8-byte floats (128 MiB).
var (
	rowPool   = colstore.Pool[int]{MaxElts: 1 << 25}
	rangePool = colstore.Pool[colstore.Range]{MaxElts: 1 << 23}
	f64Pool   = colstore.Pool[float64]{MaxElts: 1 << 24}
)

// getRowBuf acquires a pooled selection vector sized for capHint rows.
func getRowBuf(capHint int) []int { return rowPool.Get(capHint) }

// AcquireRows draws an empty selection vector from the engine's pool — the
// exported counterpart of the internal buffer getter for layers above the
// engine (the SQL executor's vector-table row sets). Pair every acquire
// with RecycleRows.
func AcquireRows(capHint int) []int { return getRowBuf(capHint) }

// RecycleRows returns a selection vector previously produced by FilterRows,
// FilterRangeIndexed, FilterRangeScan, SelectRegionRows, or Selection.Rows
// to the engine's pool. The caller must not touch rows afterwards. Recycling
// is optional — vectors that are never returned are simply garbage
// collected.
func RecycleRows(rows []int) { rowPool.Put(rows) }

// getRangeBuf acquires a pooled candidate-range buffer.
func getRangeBuf(capHint int) []colstore.Range { return rangePool.Get(capHint) }

// getF64Buf acquires a pooled float64 scratch buffer (grouped-aggregate
// accumulator banks and hash key stores). Pooled buffers carry stale
// contents: callers must initialise every element they read.
func getF64Buf(capHint int) []float64 { return f64Pool.Get(capHint) }

// recycleF64 returns a float64 scratch buffer to its pool.
func recycleF64(b []float64) { f64Pool.Put(b) }

// AcquireF64 draws a float64 scratch buffer from the engine's pool — the
// exported counterpart of getF64Buf for layers above the engine (the
// pyramid's pre-aggregate banks). Pooled buffers carry stale contents:
// callers must initialise every element they read. Pair every acquire with
// RecycleF64; on a query path, register through Run.TrackF64 instead.
func AcquireF64(capHint int) []float64 { return getF64Buf(capHint) }

// RecycleF64 returns a float64 buffer drawn through AcquireF64 to the
// engine's pool. The caller must not touch b afterwards. Like RecycleRows,
// recycling is optional — buffers never returned are garbage collected —
// but owners of long-lived banks (the pyramid cache) recycle on drop so
// the pool's Outstanding counter stays balanced across build/invalidate
// cycles.
func RecycleF64(b []float64) { f64Pool.Put(b) }

// RecycleRanges returns a candidate-range buffer drawn from the engine's
// pool (imprint CandidateRangesInto / IntersectRangesInto output routed
// through the query path). The caller must not touch rs afterwards.
func RecycleRanges(rs []colstore.Range) { rangePool.Put(rs) }

// PoolStats is a snapshot of one buffer pool, for diagnostics and the
// pool-accounting regression tests.
type PoolStats struct {
	// Free is the number of buffers currently retained across all shards.
	Free int
	// FreeElts is their summed capacity in elements.
	FreeElts int
	// Outstanding is gets minus recycles since process start. Code that
	// recycles every buffer it draws keeps this balanced; a positive drift
	// across a closed workload indicates a leaked pooled buffer.
	Outstanding int64
}

// SelectionPoolStats snapshots the selection-vector pool.
func SelectionPoolStats() PoolStats {
	free, elts, outstanding := rowPool.Stats()
	return PoolStats{Free: free, FreeElts: int(elts), Outstanding: outstanding}
}

// RangePoolStats snapshots the candidate-range pool.
func RangePoolStats() PoolStats {
	free, elts, outstanding := rangePool.Stats()
	return PoolStats{Free: free, FreeElts: int(elts), Outstanding: outstanding}
}

// F64PoolStats snapshots the float64 scratch pool (grouped-aggregate
// accumulator banks).
func F64PoolStats() PoolStats {
	free, elts, outstanding := f64Pool.Stats()
	return PoolStats{Free: free, FreeElts: int(elts), Outstanding: outstanding}
}

package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gisnav/internal/geom"
	"gisnav/internal/grid"
)

// DB is the catalog of a spatially-enabled column store instance: named
// point-cloud tables and vector tables, plus the cross-dataset operators
// the demo's second scenario runs.
type DB struct {
	mu     sync.RWMutex
	clouds map[string]*PointCloud
	vector map[string]*VectorTable
}

// NewDB returns an empty catalog.
func NewDB() *DB {
	return &DB{
		clouds: map[string]*PointCloud{},
		vector: map[string]*VectorTable{},
	}
}

// RegisterPointCloud installs a point-cloud table under name.
func (db *DB) RegisterPointCloud(name string, pc *PointCloud) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.clouds[name] = pc
}

// RegisterVector installs a vector table under name.
func (db *DB) RegisterVector(name string, vt *VectorTable) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.vector[name] = vt
}

// PointCloud looks up a point-cloud table.
func (db *DB) PointCloud(name string) (*PointCloud, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	pc, ok := db.clouds[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown point cloud table %q", name)
	}
	return pc, nil
}

// Vector looks up a vector table.
func (db *DB) Vector(name string) (*VectorTable, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	vt, ok := db.vector[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown vector table %q", name)
	}
	return vt, nil
}

// Tables lists all table names, point clouds first, each group sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var pcs, vts []string
	for n := range db.clouds {
		pcs = append(pcs, n)
	}
	for n := range db.vector {
		vts = append(vts, n)
	}
	sort.Strings(pcs)
	sort.Strings(vts)
	return append(pcs, vts...)
}

// IsPointCloud reports whether name is a registered point-cloud table.
func (db *DB) IsPointCloud(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.clouds[name]
	return ok
}

// PointsNearFeatures is the scenario-2 spatial join: rows of the point
// cloud within distance d of any geometry in the vector row set ("LIDAR
// points near an area characterised as fast transit road", §4.2). The
// feature geometries fuse into one region so the imprint filter and the
// refinement grid run a single pass.
func (db *DB) PointsNearFeatures(pc *PointCloud, vt *VectorTable, featRows []int, d float64) Selection {
	return db.PointsNearFeaturesRun(nil, pc, vt, featRows, d)
}

// PointsNearFeaturesRun is PointsNearFeatures under a query lifecycle:
// the selection spatial pass registers its pooled buffers in run's
// release list and honours the run's cancellation token (see
// SelectRegionRun).
func (db *DB) PointsNearFeaturesRun(run *Run, pc *PointCloud, vt *VectorTable, featRows []int, d float64) Selection {
	ex := &Explain{}
	start := time.Now()
	coll := vt.CollectGeometries(featRows)
	region := grid.NewMultiBuffer(coll.Geometries, d)
	ex.Add("join.collect", fmt.Sprintf("%d feature geometries, buffer %g", len(featRows), d),
		len(featRows), len(coll.Geometries), time.Since(start))
	if len(coll.Geometries) == 0 {
		// Empty but non-nil: a nil Rows means "all rows" to FilterRows and
		// the SQL executor, which would turn a no-feature join into a
		// full-table match.
		return Selection{Rows: []int{}, Explain: ex}
	}
	sel := pc.SelectRegionRun(run, region)
	ex.Steps = append(ex.Steps, sel.Explain.Steps...)
	sel.Explain = ex
	return sel
}

// PointsInFeatures selects point-cloud rows inside any geometry of the
// vector row set (containment join).
func (db *DB) PointsInFeatures(pc *PointCloud, vt *VectorTable, featRows []int) Selection {
	return db.PointsInFeaturesRun(nil, pc, vt, featRows)
}

// PointsInFeaturesRun is PointsInFeatures under a query lifecycle (see
// PointsNearFeaturesRun).
func (db *DB) PointsInFeaturesRun(run *Run, pc *PointCloud, vt *VectorTable, featRows []int) Selection {
	ex := &Explain{}
	start := time.Now()
	coll := vt.CollectGeometries(featRows)
	region := grid.NewMultiRegion(coll.Geometries)
	ex.Add("join.collect", fmt.Sprintf("%d feature geometries", len(featRows)),
		len(featRows), len(coll.Geometries), time.Since(start))
	if len(coll.Geometries) == 0 {
		// Empty but non-nil: a nil Rows means "all rows" to FilterRows and
		// the SQL executor, which would turn a no-feature join into a
		// full-table match.
		return Selection{Rows: []int{}, Explain: ex}
	}
	sel := pc.SelectRegionRun(run, region)
	ex.Steps = append(ex.Steps, sel.Explain.Steps...)
	sel.Explain = ex
	return sel
}

// StorageReport summarises the footprint of everything in the catalog.
type StorageReport struct {
	CloudRows      int
	CloudBytes     int
	ImprintBytes   int
	VectorFeatures int
	VectorBytes    int
}

// Storage builds a storage report; imprints are built if missing so the
// report reflects a queried database.
func (db *DB) Storage() StorageReport {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var r StorageReport
	for _, pc := range db.clouds {
		pc.EnsureImprints()
		r.CloudRows += pc.Len()
		r.CloudBytes += pc.Bytes()
		r.ImprintBytes += pc.IndexBytes()
	}
	for _, vt := range db.vector {
		r.VectorFeatures += vt.Len()
		r.VectorBytes += vt.Bytes()
	}
	return r
}

// Extent returns the union of all registered extents.
func (db *DB) Extent() geom.Envelope {
	db.mu.RLock()
	defer db.mu.RUnlock()
	env := geom.EmptyEnvelope()
	for _, pc := range db.clouds {
		env.ExpandToEnvelope(pc.Extent())
	}
	for _, vt := range db.vector {
		for i := 0; i < vt.Len(); i++ {
			env.ExpandToEnvelope(vt.Envelope(i))
		}
	}
	return env
}

package engine

import (
	"fmt"
	"time"

	"gisnav/internal/colstore"
)

// CmpOp is a comparison operator for thematic column predicates.
type CmpOp uint8

// Supported comparison operators.
const (
	CmpEQ CmpOp = iota + 1
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	CmpBetween // inclusive [Value, Value2]
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpBetween:
		return "between"
	default:
		return "?"
	}
}

// ColumnPred is a thematic predicate over one flat-table column, e.g.
// classification = 6 or z BETWEEN 0 AND 10. Values are compared in the
// column's float64 widening.
type ColumnPred struct {
	Column string
	Op     CmpOp
	Value  float64
	Value2 float64 // upper bound for CmpBetween
}

// Matches evaluates the predicate against a single value.
func (p ColumnPred) Matches(v float64) bool {
	switch p.Op {
	case CmpEQ:
		return v == p.Value
	case CmpNE:
		return v != p.Value
	case CmpLT:
		return v < p.Value
	case CmpLE:
		return v <= p.Value
	case CmpGT:
		return v > p.Value
	case CmpGE:
		return v >= p.Value
	case CmpBetween:
		return v >= p.Value && v <= p.Value2
	default:
		return false
	}
}

// String renders the predicate.
func (p ColumnPred) String() string {
	if p.Op == CmpBetween {
		return fmt.Sprintf("%s between %g and %g", p.Column, p.Value, p.Value2)
	}
	return fmt.Sprintf("%s %s %g", p.Column, p.Op, p.Value)
}

// FilterRows narrows a selection vector with thematic predicates, one
// operator-at-a-time pass per predicate (the MonetDB execution style the
// paper leans on, §2.1.1). A nil rows input means "all rows".
func (pc *PointCloud) FilterRows(rows []int, preds []ColumnPred, ex *Explain) ([]int, error) {
	if rows == nil {
		rows = make([]int, pc.Len())
		for i := range rows {
			rows[i] = i
		}
	}
	for _, pred := range preds {
		col := pc.Column(pred.Column)
		if col == nil {
			return nil, fmt.Errorf("engine: unknown column %q", pred.Column)
		}
		start := time.Now()
		in := len(rows)
		rows = filterRowsOne(col, rows, pred)
		ex.Add("filter.column", pred.String(), in, len(rows), time.Since(start))
	}
	return rows, nil
}

// filterRowsOne applies one predicate with typed fast paths.
func filterRowsOne(col colstore.Column, rows []int, pred ColumnPred) []int {
	out := rows[:0]
	switch t := col.(type) {
	case *colstore.F64Column:
		vals := t.Values()
		for _, r := range rows {
			if pred.Matches(vals[r]) {
				out = append(out, r)
			}
		}
	case *colstore.U8Column:
		vals := t.Values()
		for _, r := range rows {
			if pred.Matches(float64(vals[r])) {
				out = append(out, r)
			}
		}
	case *colstore.U16Column:
		vals := t.Values()
		for _, r := range rows {
			if pred.Matches(float64(vals[r])) {
				out = append(out, r)
			}
		}
	case *colstore.I32Column:
		vals := t.Values()
		for _, r := range rows {
			if pred.Matches(float64(vals[r])) {
				out = append(out, r)
			}
		}
	default:
		for _, r := range rows {
			if pred.Matches(col.Value(r)) {
				out = append(out, r)
			}
		}
	}
	return out
}

package engine

import (
	"fmt"
	"math"
	"time"

	"gisnav/internal/cancel"
	"gisnav/internal/faultpoint"
)

// CmpOp is a comparison operator for thematic column predicates.
type CmpOp uint8

// Supported comparison operators.
const (
	CmpEQ CmpOp = iota + 1
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	CmpBetween // inclusive [Value, Value2]
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpBetween:
		return "between"
	default:
		return "?"
	}
}

// ColumnPred is a thematic predicate over one flat-table column, e.g.
// classification = 6 or z BETWEEN 0 AND 10. Values are compared in the
// column's float64 widening.
type ColumnPred struct {
	Column string
	Op     CmpOp
	Value  float64
	Value2 float64 // upper bound for CmpBetween
}

// Matches evaluates the predicate against a single value.
func (p ColumnPred) Matches(v float64) bool {
	switch p.Op {
	case CmpEQ:
		return v == p.Value
	case CmpNE:
		return v != p.Value
	case CmpLT:
		return v < p.Value
	case CmpLE:
		return v <= p.Value
	case CmpGT:
		return v > p.Value
	case CmpGE:
		return v >= p.Value
	case CmpBetween:
		return v >= p.Value && v <= p.Value2
	default:
		return false
	}
}

// String renders the predicate.
func (p ColumnPred) String() string {
	if p.Op == CmpBetween {
		return fmt.Sprintf("%s between %g and %g", p.Column, p.Value, p.Value2)
	}
	return fmt.Sprintf("%s %s %g", p.Column, p.Op, p.Value)
}

// FilterRows narrows a selection vector with thematic predicates, one
// operator-at-a-time pass per predicate (the MonetDB execution style the
// paper leans on, §2.1.1). A nil rows input means "all rows".
//
// The input slice is never modified: when preds is non-empty the result is
// a fresh (pooled) selection vector, and when preds is empty the input is
// returned unchanged (or an all-rows vector when rows is nil). Callers that
// are done with a returned vector may hand it back via RecycleRows.
func (pc *PointCloud) FilterRows(rows []int, preds []ColumnPred, ex *Explain) ([]int, error) {
	return pc.FilterRowsRun(nil, rows, preds, ex)
}

// FilterRowsRun is FilterRows under a query lifecycle: owned buffers are
// registered in run's release list (so a panic anywhere below unwinds
// without leaking them), each predicate pass polls the run's cancellation
// token at block boundaries, and a fired token surfaces as
// cancel.ErrCancelled with the owned buffer already recycled. A nil run
// behaves exactly like FilterRows.
func (pc *PointCloud) FilterRowsRun(run *Run, rows []int, preds []ColumnPred, ex *Explain) ([]int, error) {
	owned := false
	for _, pred := range preds {
		if err := faultpoint.Hit("engine.filter.block"); err != nil {
			if owned {
				run.RecycleRows(rows)
			}
			return nil, err
		}
		if run.Cancelled() {
			if owned {
				run.RecycleRows(rows)
			}
			return nil, cancel.ErrCancelled
		}
		col := pc.Column(pred.Column)
		if col == nil {
			if owned {
				run.RecycleRows(rows)
			}
			return nil, fmt.Errorf("engine: unknown column %q", pred.Column)
		}
		k := pc.compileFilterCached(col, pred.Column, pred.Op)
		// Bind the run's constants into the per-run slot record; the cached
		// kernel itself is constant-free (see kernels.go). The cancellation
		// token rides in the args record so the chunk driver can poll it.
		a := k.Bind(pred.Value, pred.Value2)
		a.tok = run.Token()
		start := time.Now()
		switch {
		case rows == nil:
			// First predicate over the whole table: run the block kernel
			// directly instead of materialising an identity vector. The
			// buffer is tracked before the call (a panic mid-kernel must
			// not strand it) and swapped for the final slice after —
			// FilterBlock may grow (and so reallocate) what it was handed.
			// Large tables fan the kernel across the resident worker set
			// (morsel.go); the imprint estimate pre-sizes the vector so the
			// parallel merge appends without growth in the common case.
			buf := run.TrackRows(getRowBuf(pc.predHint(pred)))
			deg := pc.morselDegree(run, pc.Len())
			if deg > 1 {
				res, ferr := filterFullMorsel(k, a, pc.Len(), deg, buf)
				rows = run.SwapRows(buf, res)
				if ferr != nil {
					run.RecycleRows(rows)
					return nil, ferr
				}
			} else {
				rows = run.SwapRows(buf, k.FilterBlock(a, 0, pc.Len(), buf))
			}
			owned = true
			if ex != nil {
				detail := pred.String()
				if deg > 1 {
					detail = fmt.Sprintf("%s [par %d]", detail, deg)
				}
				ex.Add(opFilterColumn, detail, pc.Len(), len(rows), time.Since(start))
			}
		case !owned:
			// Copy-on-first-write: the caller keeps its slice untouched.
			// Same track-then-swap discipline as the block arm.
			in := len(rows)
			buf := run.TrackRows(getRowBuf(in))
			rows = run.SwapRows(buf, k.FilterSel(a, rows, buf))
			owned = true
			if ex != nil {
				ex.Add(opFilterColumn, pred.String(), in, len(rows), time.Since(start))
			}
		default:
			// We own the buffer now; compact in place (the write index
			// never overtakes the read index, and the backing array never
			// grows, so the release-list identity holds).
			in := len(rows)
			rows = k.FilterSel(a, rows, rows[:0])
			if ex != nil {
				ex.Add(opFilterColumn, pred.String(), in, len(rows), time.Since(start))
			}
		}
	}
	if run.Cancelled() {
		// The token may have fired inside the last kernel, leaving a
		// partial vector — never hand partial results to the caller.
		if owned {
			run.RecycleRows(rows)
		}
		return nil, cancel.ErrCancelled
	}
	if rows == nil {
		// No predicates over a nil selection: all rows, as before. The
		// capacity hint covers every append, so tracking at acquisition is
		// safe.
		rows = run.AcquireRows(pc.Len())
		for i, n := 0, pc.Len(); i < n; i++ {
			rows = append(rows, i)
		}
	}
	return rows, nil
}

// predHint estimates the result cardinality of pred for selection-vector
// sizing. When the column already carries an imprint, the bin histogram
// bounds how many values can fall inside the predicate's range; otherwise
// the full column length is the only safe bound.
func (pc *PointCloud) predHint(pred ColumnPred) int {
	n := pc.Len()
	im := pc.columnImprintIfBuilt(pred.Column)
	if im == nil {
		return n
	}
	var lo, hi float64
	switch pred.Op {
	case CmpEQ:
		lo, hi = pred.Value, pred.Value
	case CmpLT, CmpLE:
		lo, hi = math.Inf(-1), pred.Value
	case CmpGT, CmpGE:
		lo, hi = pred.Value, math.Inf(1)
	case CmpBetween:
		lo, hi = pred.Value, pred.Value2
	default:
		return n
	}
	if est := im.EstimateRows(lo, hi); est < n {
		return est
	}
	return n
}

package engine

import (
	"sync"
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/grid"
	"gisnav/internal/synth"
)

// TestConcurrentPoolAndPlanCacheStress hammers the striped buffer pools and
// the plan cache from many goroutines at once: repeated spatial selections
// (pooled ranges + vectors + grid states), indexed thematic filters (cached
// range kernels), predicate filters (cached compare kernels), and periodic
// plan-cache invalidations racing the readers. Run under -race in CI; the
// assertions here are correctness (row counts stay stable across
// iterations) and pool accounting (no drift once every goroutine returned
// its buffers).
func TestConcurrentPoolAndPlanCacheStress(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	pc.EnsureImprints()
	if _, err := pc.EnsureColumnImprint(ColZ); err != nil {
		t.Fatal(err)
	}

	var region grid.Region = grid.GeometryRegion{G: geom.NewEnvelope(120, 80, 740, 690).ToPolygon()}
	spatial := pc.SelectRegionRows(region)
	wantSpatial := len(spatial)
	RecycleRows(spatial)
	thematic, err := pc.FilterRangeIndexed(ColZ, 0, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantThematic := len(thematic)
	RecycleRows(thematic)
	preds := []ColumnPred{{Column: ColClassification, Op: CmpEQ, Value: float64(synth.ClassGround)}}
	predRows, err := pc.FilterRows(nil, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPred := len(predRows)
	RecycleRows(predRows)

	const goroutines = 16
	iters := 200
	if testing.Short() {
		iters = 40
	}

	rowDrift := SelectionPoolStats().Outstanding
	rangeDrift := RangePoolStats().Outstanding

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					rows := pc.SelectRegionRows(region)
					if len(rows) != wantSpatial {
						errs <- "spatial count drifted"
					}
					RecycleRows(rows)
				case 1:
					rows, err := pc.FilterRangeIndexed(ColZ, 0, 15, nil)
					if err != nil || len(rows) != wantThematic {
						errs <- "thematic count drifted"
					}
					RecycleRows(rows)
				case 2:
					rows, err := pc.FilterRows(nil, preds, nil)
					if err != nil || len(rows) != wantPred {
						errs <- "predicate count drifted"
					}
					RecycleRows(rows)
				default:
					// Invalidation racing the query paths: imprints and
					// kernels rebuild on the next query; results must not
					// change (the backing arrays are untouched).
					if i%8 == 0 {
						pc.InvalidateIndexes()
					}
					sel := pc.SelectRegion(region)
					if len(sel.Rows) != wantSpatial {
						errs <- "post-invalidate spatial count drifted"
					}
					sel.Release()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	if d := SelectionPoolStats().Outstanding - rowDrift; d != 0 {
		t.Fatalf("selection pool drifted by %d vectors", d)
	}
	if d := RangePoolStats().Outstanding - rangeDrift; d != 0 {
		t.Fatalf("range pool drifted by %d buffers", d)
	}
}

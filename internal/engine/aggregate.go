package engine

import (
	"fmt"
	"math"
	"time"

	"gisnav/internal/cancel"
	"gisnav/internal/colstore"
)

// AggFunc is an aggregate function over a column.
type AggFunc uint8

// Supported aggregates.
const (
	AggCount AggFunc = iota + 1
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String renders the function name.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "?"
	}
}

// Aggregate computes fn over the named column restricted to the selection
// vector rows (nil means all rows). Count ignores the column name.
//
// Sum, min and max are fused into one typed pass per column type — no
// per-value closure, no interface dispatch — for both the all-rows and the
// selection-vector path. Accumulation stays in float64 in ascending row
// order, so results are bit-identical to the naive widening loop.
func (pc *PointCloud) Aggregate(rows []int, fn AggFunc, column string, ex *Explain) (float64, error) {
	return pc.AggregateRun(nil, rows, fn, column, ex)
}

// AggregateRun is Aggregate under a query lifecycle. Min and max over
// large inputs fan across the resident worker set (morsel.go): strict
// folds merged in ascending-partition order are bit-identical to the
// serial ascending fold. Sum and avg always run serial — float addition
// is not associative, and sums are pinned bit-identical to the
// row-at-a-time loop — and so does count, which reads no values at all.
// A nil run behaves exactly like Aggregate.
func (pc *PointCloud) AggregateRun(run *Run, rows []int, fn AggFunc, column string, ex *Explain) (float64, error) {
	start := time.Now()
	n := len(rows)
	all := rows == nil
	if all {
		n = pc.Len()
	}
	if fn == AggCount {
		if ex != nil {
			ex.Add(opAggregate, "count(*)", n, 1, time.Since(start))
		}
		return float64(n), nil
	}
	col := pc.Column(column)
	if col == nil {
		return 0, fmt.Errorf("engine: unknown column %q", column)
	}
	deg := 1
	if fn == AggMin || fn == AggMax {
		deg = pc.morselDegree(run, n)
	}
	var sum, lo, hi float64
	if deg > 1 {
		var err error
		lo, hi, err = aggMorsel(run, col, rows, all, n, deg)
		if err != nil {
			return 0, err
		}
		if run.Cancelled() {
			return 0, cancel.ErrCancelled
		}
	} else {
		sum, lo, hi = aggColumn(col, rows, all)
	}
	var res float64
	switch fn {
	case AggSum:
		res = sum
	case AggAvg:
		if n == 0 {
			return 0, fmt.Errorf("engine: avg over empty selection")
		}
		res = sum / float64(n)
	case AggMin:
		if n == 0 {
			return 0, fmt.Errorf("engine: min over empty selection")
		}
		res = lo
	case AggMax:
		if n == 0 {
			return 0, fmt.Errorf("engine: max over empty selection")
		}
		res = hi
	default:
		return 0, fmt.Errorf("engine: unknown aggregate %d", fn)
	}
	if ex != nil {
		detail := fmt.Sprintf("%s(%s)", fn, column)
		if deg > 1 {
			detail = fmt.Sprintf("%s [par %d]", detail, deg)
		}
		ex.Add(opAggregate, detail, n, 1, time.Since(start))
	}
	return res, nil
}

// aggColumn dispatches to the typed fused sum/min/max kernel for col's
// concrete type. all selects the full-column path; otherwise rows drives a
// selection-vector gather.
func aggColumn(col colstore.Column, rows []int, all bool) (sum, lo, hi float64) {
	switch t := col.(type) {
	case *colstore.F64Column:
		return aggVals(t.Values(), rows, all)
	case *colstore.I64Column:
		return aggVals(t.Values(), rows, all)
	case *colstore.I32Column:
		return aggVals(t.Values(), rows, all)
	case *colstore.U16Column:
		return aggVals(t.Values(), rows, all)
	case *colstore.U8Column:
		return aggVals(t.Values(), rows, all)
	default:
		lo, hi = math.Inf(1), math.Inf(-1)
		if all {
			for i, n := 0, col.Len(); i < n; i++ {
				v := col.Value(i)
				sum += v
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			return sum, lo, hi
		}
		for _, r := range rows {
			v := col.Value(r)
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return sum, lo, hi
	}
}

// aggVals is the monomorphic fused sum/min/max loop. Values widen to
// float64 exactly as the generic Value() path does; for an empty input the
// min/max stay at ±Inf (callers gate on n == 0 before using them).
func aggVals[T number](vals []T, rows []int, all bool) (sum, lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	if all {
		for _, t := range vals {
			v := float64(t)
			sum += v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return sum, lo, hi
	}
	for _, r := range rows {
		v := float64(vals[r])
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return sum, lo, hi
}

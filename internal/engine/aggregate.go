package engine

import (
	"fmt"
	"math"
	"time"

	"gisnav/internal/colstore"
)

// AggFunc is an aggregate function over a column.
type AggFunc uint8

// Supported aggregates.
const (
	AggCount AggFunc = iota + 1
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String renders the function name.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "?"
	}
}

// Aggregate computes fn over the named column restricted to the selection
// vector rows (nil means all rows). Count ignores the column name.
func (pc *PointCloud) Aggregate(rows []int, fn AggFunc, column string, ex *Explain) (float64, error) {
	start := time.Now()
	n := len(rows)
	all := rows == nil
	if all {
		n = pc.Len()
	}
	if fn == AggCount {
		ex.Add("aggregate", "count(*)", n, 1, time.Since(start))
		return float64(n), nil
	}
	col := pc.Column(column)
	if col == nil {
		return 0, fmt.Errorf("engine: unknown column %q", column)
	}
	var sum float64
	lo, hi := math.Inf(1), math.Inf(-1)
	acc := func(v float64) {
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if all {
		for i := 0; i < pc.Len(); i++ {
			acc(col.Value(i))
		}
	} else {
		switch t := col.(type) {
		case *colstore.F64Column:
			vals := t.Values()
			for _, r := range rows {
				acc(vals[r])
			}
		default:
			for _, r := range rows {
				acc(col.Value(r))
			}
		}
	}
	var res float64
	switch fn {
	case AggSum:
		res = sum
	case AggAvg:
		if n == 0 {
			return 0, fmt.Errorf("engine: avg over empty selection")
		}
		res = sum / float64(n)
	case AggMin:
		if n == 0 {
			return 0, fmt.Errorf("engine: min over empty selection")
		}
		res = lo
	case AggMax:
		if n == 0 {
			return 0, fmt.Errorf("engine: max over empty selection")
		}
		res = hi
	default:
		return 0, fmt.Errorf("engine: unknown aggregate %d", fn)
	}
	ex.Add("aggregate", fmt.Sprintf("%s(%s)", fn, column), n, 1, time.Since(start))
	return res, nil
}

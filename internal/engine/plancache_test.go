package engine

import (
	"math"
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/grid"
	"gisnav/internal/synth"
)

// TestPlanCacheHitsOnRepeat verifies that the second identical query is
// served from the plan cache rather than recompiled.
func TestPlanCacheHitsOnRepeat(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	preds := []ColumnPred{{Column: ColClassification, Op: CmpEQ, Value: float64(synth.ClassBuilding)}}

	rows, err := pc.FilterRows(nil, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	RecycleRows(rows)
	st := pc.PlanCacheStats()
	if st.Entries != 1 || st.Misses != 1 {
		t.Fatalf("after first query: %+v, want 1 entry / 1 miss", st)
	}

	rows, err = pc.FilterRows(nil, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	RecycleRows(rows)
	st = pc.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after repeat query: %+v, want 1 hit / 1 miss", st)
	}
}

// TestPlanCacheInvalidationOnAppend proves appends never serve stale
// kernels: a cached kernel is bound to the pre-append backing array, so the
// append must drop it, and the re-issued query must see the new rows.
func TestPlanCacheInvalidationOnAppend(t *testing.T) {
	pc, pts := buildCloud(t, 0.05)
	pred := []ColumnPred{{Column: ColZ, Op: CmpGE, Value: -1e12}} // matches every row

	rows, err := pc.FilterRows(nil, pred, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := len(rows)
	RecycleRows(rows)
	if before != len(pts) {
		t.Fatalf("first query matched %d rows, want %d", before, len(pts))
	}
	if st := pc.PlanCacheStats(); st.Entries == 0 {
		t.Fatalf("expected a cached plan after the first query, got %+v", st)
	}

	// Append enough rows to force the backing arrays to reallocate.
	pc.AppendLAS(pts)
	if st := pc.PlanCacheStats(); st.Entries != 0 {
		t.Fatalf("append left %d cached plans alive", st.Entries)
	}

	rows, err = pc.FilterRows(nil, pred, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := len(rows)
	RecycleRows(rows)
	if after != 2*len(pts) {
		t.Fatalf("post-append query matched %d rows, want %d (stale kernel?)", after, 2*len(pts))
	}
}

// TestPlanCacheNaNConstants: with constants out of the cache key they are
// per-run bind state, so NaN predicates cache and hit like any other —
// the old NaN map-key bypass is gone — while still matching no rows.
func TestPlanCacheNaNConstants(t *testing.T) {
	pc, _ := buildCloud(t, 0.02)
	pred := []ColumnPred{{Column: ColZ, Op: CmpGT, Value: math.NaN()}}
	for i := 0; i < 3; i++ {
		rows, err := pc.FilterRows(nil, pred, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 0 {
			t.Fatalf("z > NaN matched %d rows, want 0", len(rows))
		}
		RecycleRows(rows)
	}
	st := pc.PlanCacheStats()
	if st.Entries != 1 || st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("NaN predicates should share one cached kernel: %+v", st)
	}
}

// TestPlanCacheConstantSweepSharesKernel is the pan/zoom contract at the
// engine layer: a sweep of distinct constants over one (column, op) pair
// compiles exactly one kernel — the key carries no constants, so every step
// after the first is a cache hit and Misses stays flat.
func TestPlanCacheConstantSweepSharesKernel(t *testing.T) {
	pc, _ := buildCloud(t, 0.02)
	const sweep = maxCachedPlans + 100
	for i := 0; i < sweep; i++ {
		rows, err := pc.FilterRows(nil, []ColumnPred{{Column: ColZ, Op: CmpGT, Value: float64(i) * 1e6}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		RecycleRows(rows)
	}
	st := pc.PlanCacheStats()
	if st.Entries != 1 || st.Misses != 1 {
		t.Fatalf("constant sweep should share one kernel: %+v", st)
	}
	if st.Hits != sweep-1 {
		t.Fatalf("constant sweep hits = %d, want %d: %+v", st.Hits, sweep-1, st)
	}
}

// TestSelectRegionRowsMatchesSelectRegion pins the explain-free navigation
// path to the traced one.
func TestSelectRegionRowsMatchesSelectRegion(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	region := grid.GeometryRegion{G: geom.NewEnvelope(200, 200, 600, 650).ToPolygon()}
	want := pc.SelectRegion(region)
	got := pc.SelectRegionRows(region)
	if len(got) != len(want.Rows) {
		t.Fatalf("SelectRegionRows found %d rows, SelectRegion %d", len(got), len(want.Rows))
	}
	for i := range got {
		if got[i] != want.Rows[i] {
			t.Fatalf("row %d: %d vs %d", i, got[i], want.Rows[i])
		}
	}
	RecycleRows(got)
	want.Release()

	// Empty region: non-nil empty, not "all rows".
	empty := pc.SelectRegionRows(grid.GeometryRegion{G: geom.MultiPolygon{}})
	if empty == nil || len(empty) != 0 {
		t.Fatalf("empty region returned %v, want empty non-nil", empty)
	}
}

package engine

import (
	"math"
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/grid"
	"gisnav/internal/las"
	"gisnav/internal/synth"
)

// buildCloud generates a deterministic test cloud and loads it row-wise.
func buildCloud(t *testing.T, density float64) (*PointCloud, []las.Point) {
	t.Helper()
	region := geom.NewEnvelope(0, 0, 1000, 1000)
	terrain := synth.NewTerrain(51, region)
	pts := synth.GenerateTile(terrain, synth.TileSpec{Env: region, Density: density, Seed: 3, SourceID: 42})
	pc := NewPointCloud()
	pc.AppendLAS(pts)
	return pc, pts
}

func TestSchemaShape(t *testing.T) {
	s := PointCloudSchema()
	if len(s.Fields) != 26 {
		t.Fatalf("schema has %d fields, want 26 (x,y,z + 23 properties)", len(s.Fields))
	}
	seen := map[string]bool{}
	for _, f := range s.Fields {
		if seen[f.Name] {
			t.Fatalf("duplicate field %q", f.Name)
		}
		seen[f.Name] = true
	}
	if s.FieldIndex(ColX) != 0 || s.FieldIndex(ColY) != 1 || s.FieldIndex(ColZ) != 2 {
		t.Fatal("coordinates must lead the schema")
	}
}

func TestAppendAndColumns(t *testing.T) {
	pc, pts := buildCloud(t, 0.02)
	if pc.Len() != len(pts) {
		t.Fatalf("len = %d, want %d", pc.Len(), len(pts))
	}
	if pc.Column("nope") != nil {
		t.Fatal("unknown column should be nil")
	}
	cls := pc.Column(ColClassification)
	if cls.Len() != len(pts) {
		t.Fatal("classification column length mismatch")
	}
	for i := 0; i < 50; i++ {
		if cls.Value(i) != float64(pts[i].Classification) {
			t.Fatalf("row %d classification mismatch", i)
		}
		if pc.X()[i] != pts[i].X || pc.Y()[i] != pts[i].Y || pc.Z()[i] != pts[i].Z {
			t.Fatalf("row %d coordinates mismatch", i)
		}
	}
	ext := pc.Extent()
	if !ext.ContainsPoint(pts[0].X, pts[0].Y) {
		t.Fatal("extent must cover points")
	}
	if pc.Bytes() <= 0 {
		t.Fatal("payload bytes should be positive")
	}
}

func TestImprintsLazyBuild(t *testing.T) {
	pc, _ := buildCloud(t, 0.02)
	if pc.HasImprints() {
		t.Fatal("imprints must not exist before first query")
	}
	sel := pc.SelectBox(geom.NewEnvelope(100, 100, 200, 200))
	if !pc.HasImprints() {
		t.Fatal("first query must build imprints")
	}
	// The explain trace of the first query includes the build step.
	foundBuild := false
	for _, s := range sel.Explain.Steps {
		if s.Op == "imprints.build" {
			foundBuild = true
		}
	}
	if !foundBuild {
		t.Fatal("explain should record the index build")
	}
	// Second query must not rebuild.
	sel2 := pc.SelectBox(geom.NewEnvelope(100, 100, 200, 200))
	for _, s := range sel2.Explain.Steps {
		if s.Op == "imprints.build" {
			t.Fatal("second query must reuse imprints")
		}
	}
	// Appends invalidate.
	pc.AppendLAS([]las.Point{{X: 1, Y: 1, Z: 0}})
	if pc.HasImprints() {
		t.Fatal("append must invalidate imprints")
	}
}

func TestSelectBoxMatchesScan(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	boxes := []geom.Envelope{
		geom.NewEnvelope(100, 100, 300, 250),
		geom.NewEnvelope(0, 0, 1000, 1000),
		geom.NewEnvelope(900, 900, 1200, 1200),
		geom.NewEnvelope(-50, -50, -10, -10), // fully outside
		geom.NewEnvelope(500, 500, 500.5, 500.5),
	}
	for _, box := range boxes {
		region := grid.GeometryRegion{G: box.ToPolygon()}
		fast := pc.SelectRegion(region)
		slow := pc.SelectRegionScan(region)
		if len(fast.Rows) != len(slow.Rows) {
			t.Fatalf("box %v: filter-refine %d rows, scan %d rows", box, len(fast.Rows), len(slow.Rows))
		}
		for i := range fast.Rows {
			if fast.Rows[i] != slow.Rows[i] {
				t.Fatalf("box %v: row %d differs", box, i)
			}
		}
	}
}

func TestSelectGeometryAndDWithinMatchScan(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	poly := geom.Polygon{Shell: geom.Ring{Points: []geom.Point{
		{X: 100, Y: 150}, {X: 700, Y: 100}, {X: 850, Y: 700}, {X: 300, Y: 880},
	}}}
	fast := pc.SelectGeometry(poly)
	slow := pc.SelectRegionScan(grid.GeometryRegion{G: poly})
	if len(fast.Rows) != len(slow.Rows) {
		t.Fatalf("polygon: %d vs %d", len(fast.Rows), len(slow.Rows))
	}

	road := geom.LineString{Points: []geom.Point{{X: 0, Y: 480}, {X: 1000, Y: 520}}}
	fastD := pc.SelectDWithin(road, 40)
	slowD := pc.SelectRegionScan(grid.BufferRegion{G: road, D: 40})
	if len(fastD.Rows) != len(slowD.Rows) {
		t.Fatalf("dwithin: %d vs %d", len(fastD.Rows), len(slowD.Rows))
	}
	if len(fastD.Rows) == 0 {
		t.Fatal("dwithin should match points near the road")
	}

	imprOnly := pc.SelectRegionImprintsOnly(grid.GeometryRegion{G: poly})
	if len(imprOnly.Rows) != len(fast.Rows) {
		t.Fatalf("imprints-only ablation differs: %d vs %d", len(imprOnly.Rows), len(fast.Rows))
	}
}

func TestSelectionOnEmptyTable(t *testing.T) {
	pc := NewPointCloud()
	sel := pc.SelectBox(geom.NewEnvelope(0, 0, 1, 1))
	if len(sel.Rows) != 0 {
		t.Fatal("empty table should match nothing")
	}
	if ext := pc.Extent(); !ext.IsEmpty() {
		t.Fatal("empty table extent should be empty")
	}
}

func TestImprintFilterIsSelective(t *testing.T) {
	pc, pts := buildCloud(t, 0.1)
	box := geom.NewEnvelope(100, 100, 160, 160)
	sel := pc.SelectBox(box)
	// The filter step must pass far fewer candidates than the table size:
	// this is the memory-traffic reduction claim (§2.1.1).
	var filterOut int
	for _, s := range sel.Explain.Steps {
		if s.Op == "imprints.filter" {
			filterOut = s.OutRows
		}
	}
	if filterOut == 0 {
		t.Fatal("filter step missing from trace")
	}
	if float64(filterOut) > 0.5*float64(len(pts)) {
		t.Fatalf("filter passed %d of %d rows; imprints ineffective", filterOut, len(pts))
	}
}

func TestFilterRows(t *testing.T) {
	pc, pts := buildCloud(t, 0.05)
	ex := &Explain{}
	rows, err := pc.FilterRows(nil, []ColumnPred{
		{Column: ColClassification, Op: CmpEQ, Value: float64(synth.ClassBuilding)},
	}, ex)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range pts {
		if p.Classification == synth.ClassBuilding {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("buildings = %d, want %d", len(rows), want)
	}
	// Chained predicates narrow monotonically.
	rows2, err := pc.FilterRows(nil, []ColumnPred{
		{Column: ColClassification, Op: CmpEQ, Value: float64(synth.ClassBuilding)},
		{Column: ColZ, Op: CmpGT, Value: 15},
	}, ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) > len(rows) {
		t.Fatal("second predicate must narrow")
	}
	// Between.
	rows3, err := pc.FilterRows(nil, []ColumnPred{
		{Column: ColZ, Op: CmpBetween, Value: 0, Value2: 5},
	}, ex)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows3 {
		if pc.Z()[r] < 0 || pc.Z()[r] > 5 {
			t.Fatal("between predicate violated")
		}
	}
	// Unknown column errors.
	if _, err := pc.FilterRows(nil, []ColumnPred{{Column: "bogus", Op: CmpEQ}}, ex); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		v    float64
		want bool
	}{
		{CmpEQ, 5, true}, {CmpEQ, 4, false},
		{CmpNE, 4, true}, {CmpNE, 5, false},
		{CmpLT, 4, true}, {CmpLT, 5, false},
		{CmpLE, 5, true}, {CmpLE, 6, false},
		{CmpGT, 6, true}, {CmpGT, 5, false},
		{CmpGE, 5, true}, {CmpGE, 4, false},
	}
	for _, c := range cases {
		p := ColumnPred{Op: c.op, Value: 5}
		if p.Matches(c.v) != c.want {
			t.Errorf("%v %v: got %v", c.op, c.v, !c.want)
		}
	}
	b := ColumnPred{Op: CmpBetween, Value: 2, Value2: 4}
	if !b.Matches(2) || !b.Matches(4) || b.Matches(4.5) {
		t.Fatal("between semantics wrong")
	}
	if CmpEQ.String() != "=" || CmpBetween.String() != "between" {
		t.Fatal("op strings wrong")
	}
}

func TestAggregates(t *testing.T) {
	pc, pts := buildCloud(t, 0.05)
	ex := &Explain{}
	n, err := pc.Aggregate(nil, AggCount, "", ex)
	if err != nil || int(n) != len(pts) {
		t.Fatalf("count = %v, %v", n, err)
	}
	var zsum, zmin, zmax float64
	zmin, zmax = math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		zsum += p.Z
		zmin = math.Min(zmin, p.Z)
		zmax = math.Max(zmax, p.Z)
	}
	avg, err := pc.Aggregate(nil, AggAvg, ColZ, ex)
	if err != nil || math.Abs(avg-zsum/float64(len(pts))) > 1e-9 {
		t.Fatalf("avg = %v", avg)
	}
	lo, err := pc.Aggregate(nil, AggMin, ColZ, ex)
	if err != nil || lo != zmin {
		t.Fatalf("min = %v, want %v", lo, zmin)
	}
	hi, err := pc.Aggregate(nil, AggMax, ColZ, ex)
	if err != nil || hi != zmax {
		t.Fatalf("max = %v, want %v", hi, zmax)
	}
	sum, err := pc.Aggregate([]int{0, 1, 2}, AggSum, ColZ, ex)
	if err != nil || math.Abs(sum-(pts[0].Z+pts[1].Z+pts[2].Z)) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
	if _, err := pc.Aggregate(nil, AggAvg, "bogus", ex); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := pc.Aggregate([]int{}, AggAvg, ColZ, ex); err == nil {
		t.Fatal("avg of empty should error")
	}
	if AggAvg.String() != "avg" || AggCount.String() != "count" {
		t.Fatal("agg names wrong")
	}
}

func TestStorageAndImprintOverhead(t *testing.T) {
	pc, _ := buildCloud(t, 0.1)
	sx, sy := pc.ImprintStats()
	if sx.N != pc.Len() || sy.N != pc.Len() {
		t.Fatal("imprint stats N mismatch")
	}
	// Overhead must be within the paper's reported band order of magnitude.
	if sx.OverheadPercent > 15 || sy.OverheadPercent > 15 {
		t.Fatalf("imprint overhead x=%.2f%% y=%.2f%%, want < 15%%", sx.OverheadPercent, sy.OverheadPercent)
	}
	if pc.IndexBytes() != sx.Bytes+sy.Bytes {
		t.Fatal("index bytes mismatch")
	}
}

func TestExplainString(t *testing.T) {
	pc, _ := buildCloud(t, 0.02)
	sel := pc.SelectBox(geom.NewEnvelope(0, 0, 500, 500))
	s := sel.Explain.String()
	if s == "" || s == "(empty plan)" {
		t.Fatal("explain should render")
	}
	if sel.Explain.Total() <= 0 {
		t.Fatal("total time should be positive")
	}
	var empty *Explain
	if empty.String() != "(empty plan)" || empty.Total() != 0 {
		t.Fatal("nil explain should be inert")
	}
	empty.Add("x", "y", 0, 0, 0) // must not panic
}

package engine

import (
	"math"
	"math/rand"
	"testing"

	"gisnav/internal/las"
)

// groupTestCloud builds a point cloud with adversarial grouped-aggregation
// inputs: a small-domain u8 key (classification), a >256-value u16 key
// (intensity), float keys with NaN and ±0 (gps_time), and value columns
// containing NaN (z) — the cases the vectorized paths must keep
// bit-identical to a row-at-a-time reference.
func groupTestCloud(t *testing.T, n int) *PointCloud {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	gpsPalette := []float64{math.NaN(), math.Copysign(0, -1), 0, -12.5, 3.25, 1e9, math.Inf(1)}
	pts := make([]las.Point, n)
	for i := range pts {
		z := rng.Float64()*200 - 50
		if rng.Intn(37) == 0 {
			z = math.NaN()
		}
		pts[i] = las.Point{
			X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Z: z,
			Intensity:      uint16(rng.Intn(1000)),
			Classification: uint8(rng.Intn(9)),
			GPSTime:        gpsPalette[rng.Intn(len(gpsPalette))],
			Red:            uint16(rng.Intn(1 << 16)),
		}
	}
	pc := NewPointCloud()
	pc.AppendLAS(pts)
	return pc
}

// refGrouped is the row-at-a-time reference: same widening, same ascending
// accumulation order, same ±Inf min/max seeds, same canonical-NaN key
// identity, same FloatOrderKey output order.
func refGrouped(pc *PointCloud, rows []int, key string, specs []GroupedAggSpec) (keys []float64, cols [][]float64) {
	type acc struct {
		key  float64
		n    float64
		vals []struct{ sum, lo, hi float64 }
	}
	keyCol := pc.Column(key)
	groups := map[uint64]*acc{}
	var order []uint64
	n := len(rows)
	if rows == nil {
		n = pc.Len()
	}
	for i := 0; i < n; i++ {
		r := i
		if rows != nil {
			r = rows[i]
		}
		kv := keyCol.Value(r)
		kb := canonicalBits(kv)
		g, ok := groups[kb]
		if !ok {
			g = &acc{key: kv, vals: make([]struct{ sum, lo, hi float64 }, len(specs))}
			for j := range g.vals {
				g.vals[j].lo, g.vals[j].hi = math.Inf(1), math.Inf(-1)
			}
			groups[kb] = g
			order = append(order, kb)
		}
		g.n++
		for j, s := range specs {
			if s.Fn == AggCount {
				continue
			}
			v := pc.Column(s.Column).Value(r)
			g.vals[j].sum += v
			if v < g.vals[j].lo {
				g.vals[j].lo = v
			}
			if v > g.vals[j].hi {
				g.vals[j].hi = v
			}
		}
	}
	// Emit in FloatOrderKey order (insertion-sorted; group counts are small).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && FloatOrderKey(groups[order[j]].key) < FloatOrderKey(groups[order[j-1]].key); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	cols = make([][]float64, len(specs))
	for _, kb := range order {
		g := groups[kb]
		keys = append(keys, g.key)
		for j, s := range specs {
			var v float64
			switch s.Fn {
			case AggCount:
				v = g.n
			case AggSum:
				v = g.vals[j].sum
			case AggAvg:
				v = g.vals[j].sum / g.n
			case AggMin:
				v = g.vals[j].lo
			case AggMax:
				v = g.vals[j].hi
			}
			cols[j] = append(cols[j], v)
		}
	}
	return keys, cols
}

// eqF compares floats treating every NaN as equal (sum/avg over NaN inputs).
func eqF(a, b float64) bool { return a == b || (a != a && b != b) }

func checkGrouped(t *testing.T, pc *PointCloud, rows []int, key string, specs []GroupedAggSpec, wantStrategy string) {
	t.Helper()
	var res GroupedResult
	if err := pc.GroupedAggregate(rows, key, specs, &res, nil); err != nil {
		t.Fatalf("GroupedAggregate(%s): %v", key, err)
	}
	if wantStrategy != "" && res.Strategy != wantStrategy {
		t.Fatalf("key %s: strategy %s, want %s", key, res.Strategy, wantStrategy)
	}
	wantKeys, wantCols := refGrouped(pc, rows, key, specs)
	if len(res.Keys) != len(wantKeys) {
		t.Fatalf("key %s (%s): %d groups, want %d", key, res.Strategy, len(res.Keys), len(wantKeys))
	}
	for i := range wantKeys {
		if !eqF(res.Keys[i], wantKeys[i]) || math.Signbit(res.Keys[i]) != math.Signbit(wantKeys[i]) {
			t.Fatalf("key %s (%s): group %d key %v, want %v", key, res.Strategy, i, res.Keys[i], wantKeys[i])
		}
		for j := range specs {
			if !eqF(res.Cols[j][i], wantCols[j][i]) {
				t.Fatalf("key %s (%s): group %d agg %d = %v, want %v",
					key, res.Strategy, i, j, res.Cols[j][i], wantCols[j][i])
			}
		}
	}
}

// randomSelection draws a sorted subset of rows (the shape real selections
// have), possibly empty.
func randomSelection(rng *rand.Rand, n int, keep float64) []int {
	rows := []int{}
	for i := 0; i < n; i++ {
		if rng.Float64() < keep {
			rows = append(rows, i)
		}
	}
	return rows
}

// TestGroupedAggregateMatchesReference pins both strategies to the
// row-at-a-time reference over random key domains (u8 dense, u16
// dense-and-hash, f64/i64/i32 hash including NaN and ±0 keys), NaN values,
// empty groups via narrowed selections, and the empty selection.
func TestGroupedAggregateMatchesReference(t *testing.T) {
	pc := groupTestCloud(t, 70000)
	rng := rand.New(rand.NewSource(7))
	specs := []GroupedAggSpec{
		{Fn: AggCount},
		{Fn: AggSum, Column: ColZ},
		{Fn: AggAvg, Column: ColZ},
		{Fn: AggMin, Column: ColZ},
		{Fn: AggMax, Column: ColIntensity},
	}
	sels := [][]int{
		nil, // all rows
		{},  // empty selection: zero groups
		{0}, // single row
		randomSelection(rng, pc.Len(), 0.5),
		randomSelection(rng, pc.Len(), 0.01),
	}
	for _, rows := range sels {
		checkGrouped(t, pc, rows, ColClassification, specs, GroupDense)
		checkGrouped(t, pc, rows, ColGPSTime, specs, GroupHash) // float keys incl NaN, -0, +Inf
		checkGrouped(t, pc, rows, ColScanAngle, specs, GroupHash)
		checkGrouped(t, pc, rows, ColWaveOffset, specs, GroupHash)
	}
	// u16 key: a large selection takes the dense 64K bank, a small one the
	// hash table; both must agree with the reference (>256 distinct keys).
	checkGrouped(t, pc, nil, ColIntensity, specs, GroupDense)
	small := randomSelection(rng, pc.Len(), 0.1)
	if len(small) >= (1<<16)/denseMinRowsPerSlot {
		t.Fatalf("selection of %d rows does not exercise the u16 hash arm", len(small))
	}
	checkGrouped(t, pc, small, ColIntensity, specs, GroupHash)
}

// TestGroupedAggregateFusedMinMax pins the fused min+max gather pass
// (PR 10: a min/max pair over one value column shares a single pass) to
// the row-at-a-time reference AND to the unfused single-spec runs,
// bit-for-bit, on the hash path — serial and morsel-parallel, NaN values,
// NaN/±0/+Inf keys, empty groups and the empty selection included.
func TestGroupedAggregateFusedMinMax(t *testing.T) {
	pc := groupTestCloud(t, 4<<16)
	rng := rand.New(rand.NewSource(11))
	specs := []GroupedAggSpec{
		{Fn: AggCount},
		{Fn: AggMin, Column: ColZ},
		{Fn: AggMax, Column: ColZ},
		{Fn: AggMax, Column: ColIntensity},
		{Fn: AggMin, Column: ColIntensity},
		{Fn: AggMin, Column: ColZ}, // duplicate: its partner is already paired
	}
	sels := [][]int{nil, {}, randomSelection(rng, pc.Len(), 0.6)}
	for _, rows := range sels {
		// Against the reference, on the fused hash arm and the (unfused)
		// dense arm.
		checkGrouped(t, pc, rows, ColGPSTime, specs, GroupHash)
		checkGrouped(t, pc, rows, ColClassification, specs, GroupDense)
		// Fused ≡ unfused: every spec alone must reproduce its column of
		// the combined run exactly, at serial and fan-out degrees.
		for _, deg := range []int{1, 4} {
			var combined GroupedResult
			if err := pc.GroupedAggregateRun(parRun(deg), rows, ColGPSTime, specs, &combined, nil); err != nil {
				t.Fatal(err)
			}
			for j, s := range specs {
				var solo GroupedResult
				if err := pc.GroupedAggregateRun(parRun(deg), rows, ColGPSTime, []GroupedAggSpec{s}, &solo, nil); err != nil {
					t.Fatal(err)
				}
				if len(solo.Keys) != len(combined.Keys) {
					t.Fatalf("deg %d spec %d: %d groups solo, %d combined", deg, j, len(solo.Keys), len(combined.Keys))
				}
				for i := range solo.Keys {
					if math.Float64bits(solo.Keys[i]) != math.Float64bits(combined.Keys[i]) {
						t.Fatalf("deg %d spec %d group %d: key %v solo, %v combined", deg, j, i, solo.Keys[i], combined.Keys[i])
					}
					if math.Float64bits(solo.Cols[0][i]) != math.Float64bits(combined.Cols[j][i]) {
						t.Fatalf("deg %d spec %d group %d: fused %v, unfused %v",
							deg, j, i, combined.Cols[j][i], solo.Cols[0][i])
					}
				}
			}
		}
	}
}

// TestGroupedAggregateErrors covers the validation paths.
func TestGroupedAggregateErrors(t *testing.T) {
	pc := groupTestCloud(t, 100)
	var res GroupedResult
	if err := pc.GroupedAggregate(nil, "nope", nil, &res, nil); err == nil {
		t.Fatal("unknown key column should fail")
	}
	if err := pc.GroupedAggregate(nil, ColClassification,
		[]GroupedAggSpec{{Fn: AggSum, Column: "nope"}}, &res, nil); err == nil {
		t.Fatal("unknown value column should fail")
	}
	if err := pc.GroupedAggregate(nil, ColClassification,
		[]GroupedAggSpec{{Fn: AggFunc(99), Column: ColZ}}, &res, nil); err == nil {
		t.Fatal("unknown aggregate should fail")
	}
}

// TestGroupedAggregateExplain checks the strategy lands in the trace.
func TestGroupedAggregateExplain(t *testing.T) {
	pc := groupTestCloud(t, 1000)
	var res GroupedResult
	ex := &Explain{}
	if err := pc.GroupedAggregate(nil, ColClassification,
		[]GroupedAggSpec{{Fn: AggCount}}, &res, ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Steps) != 1 || ex.Steps[0].Op != opGroupAgg {
		t.Fatalf("explain steps = %+v", ex.Steps)
	}
}

// TestGroupedAggregateDenseZeroAlloc enforces the dense-path steady-state
// contract: with the result record reused and the scratch pools warm, a
// grouped run performs zero heap allocations.
func TestGroupedAggregateDenseZeroAlloc(t *testing.T) {
	pc := groupTestCloud(t, 50000)
	rows := randomSelection(rand.New(rand.NewSource(3)), pc.Len(), 0.4)
	specs := []GroupedAggSpec{{Fn: AggCount}, {Fn: AggAvg, Column: ColZ}, {Fn: AggMax, Column: ColZ}}
	var res GroupedResult
	if err := pc.GroupedAggregate(rows, ColClassification, specs, &res, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := pc.GroupedAggregate(rows, ColClassification, specs, &res, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("dense grouped steady state allocates %.1f objects/op, want 0", allocs)
	}
}

// TestGroupedAggregatePoolBalance checks both strategies return every pooled
// buffer they draw.
func TestGroupedAggregatePoolBalance(t *testing.T) {
	pc := groupTestCloud(t, 30000)
	var res GroupedResult
	specs := []GroupedAggSpec{{Fn: AggCount}, {Fn: AggSum, Column: ColZ}}
	rowsBefore := SelectionPoolStats().Outstanding
	f64Before := F64PoolStats().Outstanding
	for i := 0; i < 5; i++ {
		if err := pc.GroupedAggregate(nil, ColClassification, specs, &res, nil); err != nil {
			t.Fatal(err)
		}
		if err := pc.GroupedAggregate(nil, ColGPSTime, specs, &res, nil); err != nil {
			t.Fatal(err)
		}
	}
	if d := SelectionPoolStats().Outstanding - rowsBefore; d != 0 {
		t.Fatalf("selection pool drifted by %d buffers", d)
	}
	if d := F64PoolStats().Outstanding - f64Before; d != 0 {
		t.Fatalf("f64 pool drifted by %d buffers", d)
	}
}

// Plan cache: compiled filter kernels memoised per table. The paper's
// GIS-navigation workload is repeated queries — every pan/zoom step
// re-issues near-identical bbox + thematic selections — so the steady-state
// query path should compile nothing. A kernel is pure once built: it closes
// over the column's backing array only, and reads its predicate constants
// from the per-run KernelArgs record the caller binds (kernels.go). That
// makes (column, op) a complete cache key: a pan/zoom sweep whose bbox (and
// therefore whose x/y range constants) changes on every step still hits the
// same two compiled range kernels, paying only the per-run bind — a few
// float normalisations, never a compile. NaN constants need no cache bypass
// anymore: they live in the args record, never in a map key.
//
// Invalidation contract: appends may grow or MOVE a column's backing array,
// so a cached kernel bound to the old array would silently serve stale (or
// truncated) data. Every append path therefore ends in InvalidateIndexes,
// which drops the kernel cache together with the imprints. As with imprints,
// appends require external exclusion from queries; invalidation itself is
// safe against concurrent readers (they finish on the kernel they already
// fetched, which still sees the pre-append array).
package engine

import (
	"sync"
	"sync/atomic"

	"gisnav/internal/colstore"
)

// planKey identifies one compiled filter kernel: the (column, operator)
// pair. Constants are per-run bind state, not identity.
type planKey struct {
	column string
	op     CmpOp
}

// maxCachedPlans bounds the cache. With constants out of the key the live
// key space is small (columns × operators), but the bound stays as a
// backstop: past it the whole cache is dropped and rebuilt from the live
// working set.
const maxCachedPlans = 512

// planCache memoises CompileFilterKernel results until the next
// invalidation.
type planCache struct {
	mu      sync.RWMutex
	kernels map[planKey]*Kernel
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// lookup returns the cached kernel for key, or nil.
func (c *planCache) lookup(key planKey) *Kernel {
	c.mu.RLock()
	k := c.kernels[key]
	c.mu.RUnlock()
	if k != nil {
		c.hits.Add(1)
	}
	return k
}

// insert stores k under key, resetting the cache when it outgrew its bound.
func (c *planCache) insert(key planKey, k *Kernel) {
	c.misses.Add(1)
	c.mu.Lock()
	if c.kernels == nil || len(c.kernels) >= maxCachedPlans {
		c.kernels = make(map[planKey]*Kernel, 16)
	}
	c.kernels[key] = k
	c.mu.Unlock()
}

// invalidate drops every cached kernel; pc.mu ordering is the caller's
// concern (the cache has its own lock and never calls back into PointCloud).
func (c *planCache) invalidate() {
	c.mu.Lock()
	c.kernels = nil
	c.mu.Unlock()
}

// stats reports cache effectiveness counters.
func (c *planCache) stats() (entries int, hits, misses uint64) {
	c.mu.RLock()
	entries = len(c.kernels)
	c.mu.RUnlock()
	return entries, c.hits.Load(), c.misses.Load()
}

// compileFilterCached returns the compiled (unbound) kernel for (col, op),
// served from the table's plan cache when the same pair was compiled since
// the last invalidation. The caller binds the run's constants via
// Kernel.Bind — constants (including NaN) never touch the cache key.
func (pc *PointCloud) compileFilterCached(col colstore.Column, name string, op CmpOp) *Kernel {
	key := planKey{column: name, op: op}
	if k := pc.plans.lookup(key); k != nil {
		return k
	}
	k := CompileFilterKernel(col, op)
	pc.plans.insert(key, k)
	return k
}

// compileRangeCached is compileFilterCached for the inclusive range shape
// the imprint filter path produces.
func (pc *PointCloud) compileRangeCached(col colstore.Column, name string) *Kernel {
	return pc.compileFilterCached(col, name, CmpBetween)
}

// PlanCacheStats reports the number of cached kernels and the hit/miss
// counters since the last invalidation — the observability hook for the
// repeated-query experiments and the invalidation tests. With the
// (column, op) key, a pan/zoom sweep must keep Misses flat after warmup.
type PlanCacheStats struct {
	Entries int
	Hits    uint64
	Misses  uint64
}

// PlanCacheStats snapshots the table's plan cache.
func (pc *PointCloud) PlanCacheStats() PlanCacheStats {
	entries, hits, misses := pc.plans.stats()
	return PlanCacheStats{Entries: entries, Hits: hits, Misses: misses}
}

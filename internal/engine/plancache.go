// Plan cache: compiled filter kernels memoised per table. The paper's
// GIS-navigation workload is repeated queries — every pan/zoom step
// re-issues near-identical bbox + thematic selections — so the steady-state
// query path should compile nothing. A kernel is pure once built (it closes
// over the column's backing array and the predicate constants), which makes
// (column, op, constants) a complete cache key.
//
// Invalidation contract: appends may grow or MOVE a column's backing array,
// so a cached kernel bound to the old array would silently serve stale (or
// truncated) data. Every append path therefore ends in InvalidateIndexes,
// which drops the kernel cache together with the imprints. As with imprints,
// appends require external exclusion from queries; invalidation itself is
// safe against concurrent readers (they finish on the kernel they already
// fetched, which still sees the pre-append array).
package engine

import (
	"math"
	"sync"
	"sync/atomic"

	"gisnav/internal/colstore"
)

// planKey identifies one compiled filter kernel: the predicate normal form
// the executor produces.
type planKey struct {
	column string
	op     CmpOp
	v1, v2 float64
}

// maxCachedPlans bounds the cache. A navigation session re-uses a handful
// of predicate shapes; an ad-hoc workload that generates unbounded distinct
// constants (e.g. a sweep) must not grow the map forever, so past the bound
// the whole cache is dropped and rebuilt from the live working set.
const maxCachedPlans = 512

// planCache memoises CompileFilter results until the next invalidation.
type planCache struct {
	mu      sync.RWMutex
	kernels map[planKey]*Kernel
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// lookup returns the cached kernel for key, or nil.
func (c *planCache) lookup(key planKey) *Kernel {
	c.mu.RLock()
	k := c.kernels[key]
	c.mu.RUnlock()
	if k != nil {
		c.hits.Add(1)
	}
	return k
}

// insert stores k under key, resetting the cache when it outgrew its bound.
func (c *planCache) insert(key planKey, k *Kernel) {
	c.misses.Add(1)
	c.mu.Lock()
	if c.kernels == nil || len(c.kernels) >= maxCachedPlans {
		c.kernels = make(map[planKey]*Kernel, 16)
	}
	c.kernels[key] = k
	c.mu.Unlock()
}

// invalidate drops every cached kernel; pc.mu ordering is the caller's
// concern (the cache has its own lock and never calls back into PointCloud).
func (c *planCache) invalidate() {
	c.mu.Lock()
	c.kernels = nil
	c.mu.Unlock()
}

// stats reports cache effectiveness counters.
func (c *planCache) stats() (entries int, hits, misses uint64) {
	c.mu.RLock()
	entries = len(c.kernels)
	c.mu.RUnlock()
	return entries, c.hits.Load(), c.misses.Load()
}

// compileFilterCached returns the compiled kernel for pred over col, served
// from the table's plan cache when the same (column, op, constants) shape
// was compiled since the last invalidation. NaN constants bypass the cache:
// NaN keys never compare equal, so they could only insert unreachable
// entries.
func (pc *PointCloud) compileFilterCached(col colstore.Column, pred ColumnPred) *Kernel {
	if math.IsNaN(pred.Value) || math.IsNaN(pred.Value2) {
		return CompileFilter(col, pred)
	}
	key := planKey{column: pred.Column, op: pred.Op, v1: pred.Value, v2: pred.Value2}
	if k := pc.plans.lookup(key); k != nil {
		return k
	}
	k := CompileFilter(col, pred)
	pc.plans.insert(key, k)
	return k
}

// compileRangeCached is compileFilterCached for the inclusive range shape
// the imprint filter path produces.
func (pc *PointCloud) compileRangeCached(col colstore.Column, name string, lo, hi float64) *Kernel {
	return pc.compileFilterCached(col, ColumnPred{Column: name, Op: CmpBetween, Value: lo, Value2: hi})
}

// PlanCacheStats reports the number of cached kernels and the hit/miss
// counters since the last invalidation — the observability hook for the
// repeated-query experiments and the invalidation tests.
type PlanCacheStats struct {
	Entries int
	Hits    uint64
	Misses  uint64
}

// PlanCacheStats snapshots the table's plan cache.
func (pc *PointCloud) PlanCacheStats() PlanCacheStats {
	entries, hits, misses := pc.plans.stats()
	return PlanCacheStats{Entries: entries, Hits: hits, Misses: misses}
}

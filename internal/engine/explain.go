package engine

import (
	"fmt"
	"strings"
	"time"
)

// Canonical operator names used in EXPLAIN traces. The filter and refine
// operators all run through the compiled kernel layer (kernels.go); the
// names identify the plan stage, not the implementation strategy.
const (
	opFilterColumn     = "filter.column"     // thematic predicate kernel over a selection
	opImprintsFilter   = "imprints.filter"   // imprint candidate-range generation
	opRefineRange      = "refine.range"      // exact range kernel over candidate blocks
	opScanRange        = "scan.range"        // full-column range kernel (no index)
	opAggregate        = "aggregate"         // typed aggregate kernel
	opGroupAgg         = "group.agg"         // grouped-aggregate kernel (dense/hash)
	opTileAgg          = "tile.agg"          // pyramid tile pre-aggregation build
	opGridRefine       = "grid.refine"       // spatial refinement over candidates
	opSelectRegion     = "select.region"     // spatial selection driver
	opImprintsBuild    = "imprints.build"    // one-time index construction
	opScanExhaustive   = "scan.exhaustive"   // no-index spatial baseline
	opRefineExhaustive = "refine.exhaustive" // per-point refinement baseline
)

// Step is one operator's entry in an EXPLAIN trace.
type Step struct {
	Op       string
	Detail   string
	InRows   int
	OutRows  int
	Duration time.Duration
}

// Explain accumulates the per-operator execution trace the demo exposes to
// users in its second scenario ("the execution time spent in each
// operator", §4.2).
type Explain struct {
	Steps []Step
}

// Add appends a completed step.
func (e *Explain) Add(op, detail string, inRows, outRows int, d time.Duration) {
	if e == nil {
		return
	}
	e.Steps = append(e.Steps, Step{Op: op, Detail: detail, InRows: inRows, OutRows: outRows, Duration: d})
}

// Timed runs fn and records it as a step; fn returns the output row count.
func (e *Explain) Timed(op, detail string, inRows int, fn func() int) {
	start := time.Now()
	out := fn()
	e.Add(op, detail, inRows, out, time.Since(start))
}

// Total returns the summed operator time.
func (e *Explain) Total() time.Duration {
	if e == nil {
		return 0
	}
	var t time.Duration
	for _, s := range e.Steps {
		t += s.Duration
	}
	return t
}

// String renders the trace as an aligned table.
func (e *Explain) String() string {
	if e == nil || len(e.Steps) == 0 {
		return "(empty plan)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-34s %12s %12s %12s\n", "operator", "detail", "rows in", "rows out", "time")
	for _, s := range e.Steps {
		fmt.Fprintf(&sb, "%-22s %-34s %12d %12d %12s\n",
			s.Op, truncateDetail(s.Detail, 34), s.InRows, s.OutRows, s.Duration.Round(time.Microsecond))
	}
	fmt.Fprintf(&sb, "%-22s %-34s %12s %12s %12s\n", "total", "", "", "", e.Total().Round(time.Microsecond))
	return sb.String()
}

func truncateDetail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

package engine

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"gisnav/internal/cancel"
)

// morselCloudRows is sized so morselDegree yields up to 4 partitions
// (rows / morselMinRows = 4) — large enough that every parallel arm
// actually fans out, small enough to build per test.
const morselCloudRows = 4 << 16

// parRun returns a Run forcing the given fan-out cap.
func parRun(deg int) *Run {
	run := new(Run)
	run.SetMaxParallel(deg)
	return run
}

// TestMorselFilterMatchesSerial pins FilterRowsRun's parallel block arm to
// the serial path over random predicate chains — including predicates over
// the NaN-bearing z column — at several degrees (degrees past the
// partition bound clamp; excess over the resident set queues).
func TestMorselFilterMatchesSerial(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	rng := rand.New(rand.NewSource(8))
	ops := []CmpOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, CmpBetween}
	cols := []string{ColZ, ColIntensity, ColClassification, ColGPSTime}
	for trial := 0; trial < 40; trial++ {
		var preds []ColumnPred
		for np := 1 + rng.Intn(2); np > 0; np-- {
			p := ColumnPred{
				Column: cols[rng.Intn(len(cols))],
				Op:     ops[rng.Intn(len(ops))],
				Value:  rng.Float64()*300 - 60,
			}
			p.Value2 = p.Value + rng.Float64()*100
			preds = append(preds, p)
		}
		want, err := pc.FilterRows(nil, preds, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, deg := range []int{2, 3, 5} {
			run := parRun(deg)
			got, err := pc.FilterRowsRun(run, nil, preds, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d deg %d preds %v: %d rows, serial %d", trial, deg, preds, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d deg %d: row[%d] = %d, serial %d", trial, deg, i, got[i], want[i])
				}
			}
			run.RecycleRows(got)
			if run.Live() != 0 {
				t.Fatalf("run still owns %d buffers after recycle", run.Live())
			}
		}
		RecycleRows(want)
	}
}

// TestMorselFilterBlocksMatchesSerial drives the range-kernel morsel
// driver directly against the serial block loop over imprint candidates.
func TestMorselFilterBlocksMatchesSerial(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	if _, err := pc.EnsureColumnImprint(ColZ); err != nil {
		t.Fatal(err)
	}
	im := pc.columnImprintIfBuilt(ColZ)
	k := pc.compileRangeCached(pc.Column(ColZ), ColZ)
	for _, bounds := range [][2]float64{{0, 10}, {-60, 160}, {40, 41}, {-1e9, 1e9}} {
		a := k.Bind(bounds[0], bounds[1])
		cand := im.CandidateRangesInto(bounds[0], bounds[1], getRangeBuf(0))
		want := getRowBuf(0)
		for _, r := range cand {
			want = k.FilterBlock(a, r.Start, r.End, want)
		}
		for _, deg := range []int{2, 4, 7} {
			got, err := filterBlocksMorsel(k, a, cand, deg, getRowBuf(0))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("bounds %v deg %d: %d rows, serial %d", bounds, deg, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bounds %v deg %d: row[%d] = %d, serial %d", bounds, deg, i, got[i], want[i])
				}
			}
			RecycleRows(got)
		}
		RecycleRows(want)
		RecycleRanges(cand)
	}
}

// TestWideSelectivitySkipsCandidates pins the satellite fix: a predicate
// matching most of the table must produce the same rows as the narrow
// path and as a plain scan, and the wide threshold itself must hold.
func TestWideSelectivitySkipsCandidates(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	if !wideSelectivity(1, 2) || wideSelectivity(0, 2) || wideSelectivity(0, 0) {
		t.Fatal("wideSelectivity threshold is off")
	}
	for _, bounds := range [][2]float64{{-60, 160}, {0, 10}} {
		indexed, err := pc.FilterRangeIndexed(ColZ, bounds[0], bounds[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		scanned, err := pc.FilterRangeScan(ColZ, bounds[0], bounds[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(indexed) != len(scanned) {
			t.Fatalf("bounds %v: indexed %d rows, scan %d", bounds, len(indexed), len(scanned))
		}
		for i := range scanned {
			if indexed[i] != scanned[i] {
				t.Fatalf("bounds %v: row[%d] = %d, scan %d", bounds, i, indexed[i], scanned[i])
			}
		}
		RecycleRows(indexed)
		RecycleRows(scanned)
	}
}

// TestMorselAggregateMatchesSerial pins AggregateRun's parallel min/max to
// the serial fold bit-for-bit — NaN values and all-rows vs selection paths
// included — and checks sum/avg (always serial) are undisturbed.
func TestMorselAggregateMatchesSerial(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	rng := rand.New(rand.NewSource(17))
	sel := randomSelection(rng, pc.Len(), 0.8)
	for _, col := range []string{ColZ, ColIntensity, ColGPSTime} {
		for _, rows := range [][]int{nil, sel} {
			for _, fn := range []AggFunc{AggMin, AggMax, AggSum, AggAvg, AggCount} {
				want, err := pc.Aggregate(rows, fn, col, nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, deg := range []int{2, 4, 5} {
					got, err := pc.AggregateRun(parRun(deg), rows, fn, col, nil)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("%s(%s) deg %d over %v rows = %x, serial %x",
							fn, col, deg, len(rows), math.Float64bits(got), math.Float64bits(want))
					}
				}
			}
		}
	}
}

// sameGrouped asserts two grouped results are bit-identical.
func sameGrouped(t *testing.T, label string, got, want *GroupedResult) {
	t.Helper()
	if got.Strategy != want.Strategy {
		t.Fatalf("%s: strategy %s, serial %s", label, got.Strategy, want.Strategy)
	}
	if len(got.Keys) != len(want.Keys) {
		t.Fatalf("%s: %d groups, serial %d", label, len(got.Keys), len(want.Keys))
	}
	for i := range want.Keys {
		if math.Float64bits(got.Keys[i]) != math.Float64bits(want.Keys[i]) {
			t.Fatalf("%s: key[%d] = %x, serial %x", label, i, math.Float64bits(got.Keys[i]), math.Float64bits(want.Keys[i]))
		}
	}
	for j := range want.Cols {
		for i := range want.Cols[j] {
			if math.Float64bits(got.Cols[j][i]) != math.Float64bits(want.Cols[j][i]) {
				t.Fatalf("%s: col %d group %d = %x, serial %x",
					label, j, i, math.Float64bits(got.Cols[j][i]), math.Float64bits(want.Cols[j][i]))
			}
		}
	}
}

// TestMorselGroupedMatchesSerial pins the parallel dense (u8, u16) and
// hash (f64 keys with NaN/±0/±Inf) grouped strategies to the serial paths
// bit-for-bit, over all-rows and selection inputs. Plans containing sum
// or avg must stay serial-identical too (they route around the fan-out).
func TestMorselGroupedMatchesSerial(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	rng := rand.New(rand.NewSource(23))
	sel := randomSelection(rng, pc.Len(), 0.85)
	exact := []GroupedAggSpec{
		{Fn: AggCount},
		{Fn: AggMin, Column: ColZ},
		{Fn: AggMax, Column: ColGPSTime},
	}
	withSum := []GroupedAggSpec{
		{Fn: AggSum, Column: ColZ},
		{Fn: AggCount},
		{Fn: AggAvg, Column: ColIntensity},
	}
	var want, got GroupedResult
	for _, key := range []string{ColClassification, ColIntensity, ColGPSTime} {
		for _, rows := range [][]int{nil, sel} {
			for _, specs := range [][]GroupedAggSpec{exact, withSum} {
				if err := pc.GroupedAggregate(rows, key, specs, &want, nil); err != nil {
					t.Fatal(err)
				}
				for _, deg := range []int{2, 3, 4} {
					run := parRun(deg)
					if err := pc.GroupedAggregateRun(run, rows, key, specs, &got, nil); err != nil {
						t.Fatal(err)
					}
					if run.Live() != 0 {
						t.Fatalf("grouped run still owns %d buffers", run.Live())
					}
					sameGrouped(t, key, &got, &want)
				}
			}
		}
	}
}

// TestMorselCancelledMidPass proves a token firing during a parallel pass
// surfaces as ErrCancelled with zero pool drift: workers bail at their
// next block boundary and the driver discards every partial.
func TestMorselCancelledMidPass(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	done := make(chan struct{})
	close(done)
	run := new(Run)
	run.Bind(done)
	run.SetMaxParallel(4)
	rowsBefore := SelectionPoolStats().Outstanding
	f64Before := F64PoolStats().Outstanding

	if _, err := pc.FilterRowsRun(run, nil, []ColumnPred{{Column: ColZ, Op: CmpGT, Value: 0}}, nil); err != cancel.ErrCancelled {
		t.Fatalf("filter err = %v, want ErrCancelled", err)
	}
	run.Drain()
	var res GroupedResult
	for _, key := range []string{ColClassification, ColGPSTime} {
		err := pc.GroupedAggregateRun(run, nil, key, []GroupedAggSpec{{Fn: AggCount}, {Fn: AggMin, Column: ColZ}}, &res, nil)
		if err != cancel.ErrCancelled {
			t.Fatalf("grouped key %s err = %v, want ErrCancelled", key, err)
		}
		run.Drain()
	}
	if _, err := pc.AggregateRun(run, nil, AggMin, ColZ, nil); err != cancel.ErrCancelled {
		t.Fatalf("aggregate err = %v, want ErrCancelled", err)
	}
	run.Drain()

	if d := SelectionPoolStats().Outstanding - rowsBefore; d != 0 {
		t.Fatalf("cancelled parallel passes drifted selection pool by %d", d)
	}
	if d := F64PoolStats().Outstanding - f64Before; d != 0 {
		t.Fatalf("cancelled parallel passes drifted f64 pool by %d", d)
	}
}

// TestMorselConcurrentParallelQueries is the engine-level -race stress:
// many goroutines run parallel filters, aggregates and grouped passes at
// mixed degrees over one table, against serially-computed references.
func TestMorselConcurrentParallelQueries(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	preds := []ColumnPred{{Column: ColZ, Op: CmpBetween, Value: 0, Value2: 80}}
	wantRows, err := pc.FilterRows(nil, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantMin, err := pc.Aggregate(nil, AggMin, ColGPSTime, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wantGrouped GroupedResult
	specs := []GroupedAggSpec{{Fn: AggCount}, {Fn: AggMax, Column: ColZ}}
	if err := pc.GroupedAggregate(nil, ColClassification, specs, &wantGrouped, nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			run := parRun(2 + g%3)
			var res GroupedResult
			for i := 0; i < 12; i++ {
				rows, err := pc.FilterRowsRun(run, nil, preds, nil)
				if err != nil {
					errs <- err.Error()
					return
				}
				if len(rows) != len(wantRows) {
					errs <- "filter row count diverged under concurrency"
				}
				run.RecycleRows(rows)
				lo, err := pc.AggregateRun(run, nil, AggMin, ColGPSTime, nil)
				if err != nil {
					errs <- err.Error()
					return
				}
				if math.Float64bits(lo) != math.Float64bits(wantMin) {
					errs <- "parallel min diverged under concurrency"
				}
				if err := pc.GroupedAggregateRun(run, nil, ColClassification, specs, &res, nil); err != nil {
					errs <- err.Error()
					return
				}
				if len(res.Keys) != len(wantGrouped.Keys) {
					errs <- "grouped key count diverged under concurrency"
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	RecycleRows(wantRows)
}

// TestMorselSteadyStateZeroAllocs pins the warm parallel paths to zero
// allocations per query: pooled pass scaffolding, pooled per-worker
// scratch, run-tracked slabs, reused result records.
func TestMorselSteadyStateZeroAllocs(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	run := parRun(4)
	preds := []ColumnPred{{Column: ColZ, Op: CmpBetween, Value: 0, Value2: 80}}

	var got int
	allocs := testing.AllocsPerRun(50, func() {
		rows, err := pc.FilterRowsRun(run, nil, preds, nil)
		if err != nil {
			t.Fatal(err)
		}
		got = len(rows)
		run.RecycleRows(rows)
	})
	if got == 0 {
		t.Fatal("parallel filter matched no rows; the measurement is vacuous")
	}
	if allocs != 0 {
		t.Fatalf("steady-state parallel FilterRowsRun allocates %.1f objects/op, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(50, func() {
		if _, err := pc.AggregateRun(run, nil, AggMax, ColZ, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state parallel AggregateRun allocates %.1f objects/op, want 0", allocs)
	}

	var res GroupedResult
	for _, key := range []string{ColClassification, ColGPSTime} {
		specs := []GroupedAggSpec{{Fn: AggCount}, {Fn: AggMin, Column: ColZ}, {Fn: AggMax, Column: ColZ}}
		allocs = testing.AllocsPerRun(50, func() {
			if err := pc.GroupedAggregateRun(run, nil, key, specs, &res, nil); err != nil {
				t.Fatal(err)
			}
		})
		if len(res.Keys) == 0 {
			t.Fatal("grouped pass emitted no groups; the measurement is vacuous")
		}
		if allocs != 0 {
			t.Fatalf("steady-state parallel grouped (%s key) allocates %.1f objects/op, want 0", key, allocs)
		}
	}
}

// TestMorselDegreeHeuristic pins the degree rule: explicit caps are
// honoured, small inputs stay serial, 1 forces serial, and the unset
// default defers to the table's auto-parallel flag.
func TestMorselDegreeHeuristic(t *testing.T) {
	pc := NewPointCloud()
	if d := pc.morselDegree(parRun(8), 4*morselMinRows); d != 4 {
		t.Fatalf("degree(cap 8, 4 partitions of rows) = %d, want 4", d)
	}
	if d := pc.morselDegree(parRun(3), 16*morselMinRows); d != 3 {
		t.Fatalf("degree(cap 3, large) = %d, want 3", d)
	}
	if d := pc.morselDegree(parRun(8), 2*morselMinRows-1); d != 1 {
		t.Fatalf("degree just under two partitions = %d, want 1", d)
	}
	if d := pc.morselDegree(parRun(1), 64*morselMinRows); d != 1 {
		t.Fatalf("degree(cap 1) = %d, want 1", d)
	}
	if d := pc.morselDegree(nil, 64*morselMinRows); d != 1 {
		t.Fatalf("degree(no run, Parallel off) = %d, want 1", d)
	}
	pc.Parallel = true
	if d := pc.morselDegree(nil, 64*morselMinRows); d < 1 {
		t.Fatalf("degree(no run, Parallel on) = %d, want >= 1", d)
	}
}

// TestMorselExplainRecordsDegree checks the EXPLAIN plumbing: parallel
// operators tag their step detail with the effective degree.
func TestMorselExplainRecordsDegree(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	run := parRun(4)
	ex := &Explain{}
	rows, err := pc.FilterRowsRun(run, nil, []ColumnPred{{Column: ColZ, Op: CmpGT, Value: 0}}, ex)
	if err != nil {
		t.Fatal(err)
	}
	run.RecycleRows(rows)
	found := false
	for _, s := range ex.Steps {
		if s.Op == opFilterColumn {
			found = true
			if want := "z > 0 [par 4]"; s.Detail != want {
				t.Fatalf("filter detail = %q, want %q", s.Detail, want)
			}
		}
	}
	if !found {
		t.Fatal("no filter step in trace")
	}
}

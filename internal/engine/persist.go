package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// On-disk layout of a persisted point-cloud table: one raw little-endian
// dump per column (the same representation COPY BINARY consumes, so a
// persisted database re-opens by appending its own dumps) plus a JSON
// manifest carrying the schema and row count.
//
//	<dir>/manifest.json
//	<dir>/col_<name>.bin

// manifestName is the metadata file inside a table directory.
const manifestName = "manifest.json"

// manifest describes a persisted table.
type manifest struct {
	FormatVersion int             `json:"format_version"`
	Rows          int             `json:"rows"`
	Columns       []manifestField `json:"columns"`
}

type manifestField struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// manifestVersion is bumped on incompatible layout changes.
const manifestVersion = 1

// Save writes the point cloud to dir (created if needed). Existing column
// files are overwritten; the manifest is written last so a partially
// written directory never validates.
func (pc *PointCloud) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	m := manifest{FormatVersion: manifestVersion, Rows: pc.Len()}
	for i, f := range pc.schema.Fields {
		path := filepath.Join(dir, "col_"+f.Name+".bin")
		file, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("engine: save %s: %w", f.Name, err)
		}
		if _, err := pc.cols[i].WriteBinary(file); err != nil {
			file.Close()
			return fmt.Errorf("engine: save %s: %w", f.Name, err)
		}
		if err := file.Close(); err != nil {
			return err
		}
		m.Columns = append(m.Columns, manifestField{Name: f.Name, Type: f.Type.String()})
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), blob, 0o644)
}

// OpenPointCloud loads a table persisted by Save. The manifest schema must
// match the current 26-attribute schema exactly; the format is a storage
// layout, not a migration boundary.
func OpenPointCloud(dir string) (*PointCloud, error) {
	blob, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("engine: open: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("engine: open: bad manifest: %w", err)
	}
	if m.FormatVersion != manifestVersion {
		return nil, fmt.Errorf("engine: open: format version %d, want %d", m.FormatVersion, manifestVersion)
	}
	if m.Rows < 0 {
		return nil, fmt.Errorf("engine: open: negative row count")
	}
	pc := NewPointCloud()
	if len(m.Columns) != len(pc.schema.Fields) {
		return nil, fmt.Errorf("engine: open: manifest has %d columns, schema wants %d",
			len(m.Columns), len(pc.schema.Fields))
	}
	for i, f := range pc.schema.Fields {
		mf := m.Columns[i]
		if mf.Name != f.Name || mf.Type != f.Type.String() {
			return nil, fmt.Errorf("engine: open: column %d is %s/%s, schema wants %s/%s",
				i, mf.Name, mf.Type, f.Name, f.Type)
		}
		path := filepath.Join(dir, "col_"+f.Name+".bin")
		file, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("engine: open %s: %w", f.Name, err)
		}
		if err := pc.cols[i].AppendBinary(file, m.Rows); err != nil {
			file.Close()
			return nil, fmt.Errorf("engine: open %s: %w", f.Name, err)
		}
		file.Close()
	}
	if err := validateSameLength(pc.cols); err != nil {
		return nil, err
	}
	return pc, nil
}

// ColumnFileBytes reports the on-disk size of each persisted column, for
// storage accounting.
func ColumnFileBytes(dir string) (map[string]int64, error) {
	sizes := map[string]int64{}
	for _, f := range PointCloudSchema().Fields {
		fi, err := os.Stat(filepath.Join(dir, "col_"+f.Name+".bin"))
		if err != nil {
			return nil, err
		}
		sizes[f.Name] = fi.Size()
	}
	return sizes, nil
}

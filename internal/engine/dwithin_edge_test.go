package engine

import (
	"math"
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/grid"
)

// Edge-case hardening for ST_DWithin-style selections: distances that are
// negative, NaN or ±Inf, and empty geometry (collections), must all yield an
// empty but non-nil selection — nil means "all rows" downstream, and a
// non-finite distance must never reach grid sizing via Envelope.Buffer.

func assertEmptySelection(t *testing.T, name string, sel Selection) {
	t.Helper()
	if sel.Rows == nil {
		t.Fatalf("%s: Rows is nil (reads as \"all rows\" downstream)", name)
	}
	if len(sel.Rows) != 0 {
		t.Fatalf("%s: got %d rows, want 0", name, len(sel.Rows))
	}
}

func TestSelectDWithinBadDistances(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	road := geom.LineString{Points: []geom.Point{{X: 100, Y: 100}, {X: 900, Y: 900}}}

	for _, tc := range []struct {
		name string
		d    float64
	}{
		{"negative", -5},
		{"nan", math.NaN()},
		{"plus-inf", math.Inf(1)},
		{"minus-inf", math.Inf(-1)},
	} {
		assertEmptySelection(t, "SelectDWithin "+tc.name, pc.SelectDWithin(road, tc.d))
	}

	// Sanity: a valid distance over the same geometry does select rows.
	ok := pc.SelectDWithin(road, 50)
	if len(ok.Rows) == 0 {
		t.Fatal("valid DWithin selected nothing; edge-case tests are vacuous")
	}
	ok.Release()

	// Zero distance is valid: only points exactly on the geometry match
	// (possibly none), and it must not be rejected as "negative".
	zero := pc.SelectDWithin(road, 0)
	if zero.Rows == nil {
		t.Fatal("d=0 returned nil rows")
	}
	zero.Release()
}

func TestSelectDWithinEmptyGeometries(t *testing.T) {
	pc, _ := buildCloud(t, 0.02)
	for _, tc := range []struct {
		name string
		g    geom.Geometry
	}{
		{"empty multipolygon", geom.MultiPolygon{}},
		{"empty collection", geom.Collection{}},
		{"empty linestring", geom.LineString{}},
	} {
		assertEmptySelection(t, "SelectDWithin "+tc.name, pc.SelectDWithin(tc.g, 100))
		assertEmptySelection(t, "SelectGeometry "+tc.name, pc.SelectGeometry(tc.g))
	}
}

func TestPointsNearFeaturesBadDistance(t *testing.T) {
	pc, _ := buildCloud(t, 0.02)
	vt := NewVectorTable()
	vt.Append(1, "road", "r1", geom.LineString{Points: []geom.Point{{X: 0, Y: 0}, {X: 500, Y: 500}}}, nil)
	db := NewDB()
	db.RegisterPointCloud("pc", pc)
	db.RegisterVector("vt", vt)

	for _, d := range []float64{-1, math.NaN(), math.Inf(1)} {
		assertEmptySelection(t, "PointsNearFeatures bad distance", db.PointsNearFeatures(pc, vt, []int{0}, d))
	}
	// Empty feature row set stays empty non-nil regardless of distance.
	assertEmptySelection(t, "PointsNearFeatures no features", db.PointsNearFeatures(pc, vt, nil, 25))
}

// TestBufferRegionGuards exercises the region interface directly, the layer
// the grid refinement sees.
func TestBufferRegionGuards(t *testing.T) {
	line := geom.LineString{Points: []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}}
	for _, d := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		r := grid.BufferRegion{G: line, D: d}
		if !r.Envelope().IsEmpty() {
			t.Fatalf("BufferRegion d=%v: envelope %v not empty", d, r.Envelope())
		}
		if r.Contains(5, 0) {
			t.Fatalf("BufferRegion d=%v: Contains accepted a point", d)
		}
		if rel := r.Classify(geom.NewEnvelope(0, 0, 1, 1)); rel != geom.BoxOutside {
			t.Fatalf("BufferRegion d=%v: Classify = %v, want outside", d, rel)
		}

		m := grid.NewMultiBuffer([]geom.Geometry{line}, d)
		if !m.Envelope().IsEmpty() {
			t.Fatalf("MultiBuffer d=%v: envelope %v not empty", d, m.Envelope())
		}
		if m.Contains(5, 0) {
			t.Fatalf("MultiBuffer d=%v: Contains accepted a point", d)
		}
		if rel := m.Classify(geom.NewEnvelope(0, 0, 1, 1)); rel != geom.BoxOutside {
			t.Fatalf("MultiBuffer d=%v: Classify = %v, want outside", d, rel)
		}
	}
}

package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gisnav/internal/colstore"
	"gisnav/internal/faultpoint"
	"gisnav/internal/geom"
	"gisnav/internal/grid"
	"gisnav/internal/imprints"
	"gisnav/internal/las"
)

// PointCloud is the flat-table point-cloud store: 26 parallel columns plus
// lazily built column imprints on the X and Y coordinates. It is safe for
// concurrent readers; appends require external exclusion (the bulk loader is
// single-writer, as in the paper's pipeline).
type PointCloud struct {
	schema colstore.Schema
	cols   []colstore.Column

	// Typed fast paths into the coordinate columns.
	xs, ys, zs *colstore.F64Column

	// Imprint configuration and the lazily built indexes. The paper builds
	// imprints when the first range query arrives (§3.2).
	ImprintOpts imprints.Options
	GridOpts    grid.Options
	// Parallel enables multi-core refinement for large candidate sets
	// (MonetDB executes operators in parallel; results are identical).
	Parallel bool

	mu          sync.Mutex
	imprintX    *imprints.Imprints
	imprintY    *imprints.Imprints
	colImprints map[string]*imprints.Imprints

	// plans memoises compiled filter kernels per (column, op, constants);
	// dropped together with the imprints on InvalidateIndexes, because both
	// bind to column backing arrays that appends may move.
	plans planCache

	// epoch counts index invalidations. Everything that binds to a column's
	// backing array across calls — compiled kernels, the SQL layer's
	// prepared plans — captures the epoch before binding and revalidates it
	// before reuse, so an append (which may move backing arrays) can never
	// serve state bound to the old arrays.
	epoch atomic.Uint64
}

// NewPointCloud returns an empty flat table with the 26-attribute schema.
func NewPointCloud() *PointCloud {
	schema := PointCloudSchema()
	cols := schema.NewColumns()
	return &PointCloud{
		schema: schema,
		cols:   cols,
		xs:     cols[0].(*colstore.F64Column),
		ys:     cols[1].(*colstore.F64Column),
		zs:     cols[2].(*colstore.F64Column),
	}
}

// Len reports the row count.
func (pc *PointCloud) Len() int { return pc.xs.Len() }

// Schema returns the table schema.
func (pc *PointCloud) Schema() colstore.Schema { return pc.schema }

// Column returns the column with the given name, or nil.
func (pc *PointCloud) Column(name string) colstore.Column {
	i := pc.schema.FieldIndex(name)
	if i < 0 {
		return nil
	}
	return pc.cols[i]
}

// Columns returns all columns in schema order.
func (pc *PointCloud) Columns() []colstore.Column { return pc.cols }

// X, Y, Z expose the coordinate columns' backing slices.
func (pc *PointCloud) X() []float64 { return pc.xs.Values() }

// Y returns the Y coordinate slice.
func (pc *PointCloud) Y() []float64 { return pc.ys.Values() }

// Z returns the Z coordinate slice.
func (pc *PointCloud) Z() []float64 { return pc.zs.Values() }

// Extent returns the 2-D bounding box of the cloud.
func (pc *PointCloud) Extent() geom.Envelope {
	env := geom.EmptyEnvelope()
	xlo, xhi, ok := pc.xs.MinMax()
	if !ok {
		return env
	}
	ylo, yhi, _ := pc.ys.MinMax()
	return geom.NewEnvelope(xlo, ylo, xhi, yhi)
}

// AppendLAS bulk-appends LAS points row-wise (the slow reference path; the
// binary loader in loader.go is the paper's fast path).
func (pc *PointCloud) AppendLAS(pts []las.Point) {
	for _, p := range pts {
		appendLASPoint(pc.cols, p)
	}
	pc.InvalidateIndexes()
}

// InvalidateIndexes drops the imprints and the compiled-kernel plan cache;
// both rebuild on the next query. Appends must call this (and do, on every
// load path): they can move column backing arrays, so cached kernels and
// imprints bound to the old arrays must not serve another query.
func (pc *PointCloud) InvalidateIndexes() {
	// Bump first: a plan prepared concurrently that read the old epoch will
	// observe the mismatch and replan, the safe direction (appends still
	// require external exclusion from in-flight queries, as below).
	pc.epoch.Add(1)
	pc.mu.Lock()
	pc.imprintX, pc.imprintY = nil, nil
	pc.colImprints = nil
	pc.mu.Unlock()
	pc.plans.invalidate()
}

// Epoch returns the table's invalidation epoch: a monotonic counter bumped
// by every InvalidateIndexes call (and therefore by every append path).
// Capture it before binding to column backing arrays; a later mismatch
// means the arrays may have moved and the binding must be rebuilt.
func (pc *PointCloud) Epoch() uint64 { return pc.epoch.Load() }

// HasImprints reports whether the coordinate imprints are currently built.
func (pc *PointCloud) HasImprints() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.imprintX != nil && pc.imprintY != nil
}

// EnsureImprints builds the X and Y imprints if absent, returning the build
// time (zero when already present). Mirrors MonetDB's create-on-first-query
// behaviour (§3.2).
func (pc *PointCloud) EnsureImprints() time.Duration {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.ensureImprintsLocked()
}

// ensureImprintsLocked builds the coordinate imprints; pc.mu must be held.
func (pc *PointCloud) ensureImprintsLocked() time.Duration {
	if pc.imprintX != nil && pc.imprintY != nil {
		return 0
	}
	start := time.Now()
	ix, err := imprints.Build(pc.xs.Values(), pc.ImprintOpts)
	if err != nil {
		// Options are programmer-controlled; invalid ones are a bug.
		panic(fmt.Sprintf("engine: building x imprints: %v", err))
	}
	iy, err := imprints.Build(pc.ys.Values(), pc.ImprintOpts)
	if err != nil {
		panic(fmt.Sprintf("engine: building y imprints: %v", err))
	}
	pc.imprintX, pc.imprintY = ix, iy
	return time.Since(start)
}

// imprintsXY returns stable references to the coordinate imprints, building
// them if a concurrent invalidation raced the caller's EnsureImprints. The
// returned values stay valid even if the table's indexes are invalidated
// afterwards (imprints are immutable once built).
func (pc *PointCloud) imprintsXY() (*imprints.Imprints, *imprints.Imprints) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.ensureImprintsLocked()
	return pc.imprintX, pc.imprintY
}

// ImprintStats returns the index statistics of both coordinate imprints
// (building them if needed).
func (pc *PointCloud) ImprintStats() (x, y imprints.Stats) {
	pc.EnsureImprints()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.imprintX.Stats(), pc.imprintY.Stats()
}

// Bytes reports the flat table payload size (columns only).
func (pc *PointCloud) Bytes() int {
	n := 0
	for _, c := range pc.cols {
		n += c.Bytes()
	}
	return n
}

// IndexBytes reports the imprint storage (0 when not built).
func (pc *PointCloud) IndexBytes() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	n := 0
	if pc.imprintX != nil {
		n += pc.imprintX.Bytes()
	}
	if pc.imprintY != nil {
		n += pc.imprintY.Bytes()
	}
	return n
}

// Selection is the result of a spatial selection: matching row ids in
// ascending order plus the operator trace that produced them.
type Selection struct {
	Rows    []int
	Explain *Explain
	Refine  grid.Stats
}

// Release hands the selection vector back to the engine's pool. The caller
// must not touch s.Rows afterwards. Releasing is optional — unreleased
// vectors are garbage collected normally.
func (s Selection) Release() { RecycleRows(s.Rows) }

// SelectBox returns the rows inside env using filter–refine.
func (pc *PointCloud) SelectBox(env geom.Envelope) Selection {
	return pc.SelectRegion(grid.GeometryRegion{G: env.ToPolygon()})
}

// SelectGeometry returns the rows inside geometry g using filter–refine.
func (pc *PointCloud) SelectGeometry(g geom.Geometry) Selection {
	return pc.SelectRegion(grid.GeometryRegion{G: g})
}

// SelectDWithin returns the rows within distance d of geometry g — the
// "LIDAR points near ..." predicate of scenario 2.
func (pc *PointCloud) SelectDWithin(g geom.Geometry, d float64) Selection {
	return pc.SelectRegion(grid.BufferRegion{G: g, D: d})
}

// SelectRegion runs the two-step query model over an arbitrary region:
//  1. filter — imprints on X and Y flag candidate cache lines for the
//     region's bounding box; the candidate sets intersect.
//  2. refine — the regular grid classifies cells against the region and
//     only boundary cells fall back to exact point tests.
func (pc *PointCloud) SelectRegion(region grid.Region) Selection {
	return pc.SelectRegionRun(nil, region)
}

// SelectRegionRun is SelectRegion under a query lifecycle: the selection
// vector and candidate-range scratch register in run's release list, and
// refinement polls the run's cancellation token per candidate block. A
// fired token returns a partial selection — callers that passed a live
// run must check run.Cancelled() and discard it.
func (pc *PointCloud) SelectRegionRun(run *Run, region grid.Region) Selection {
	ex := &Explain{}
	rows, st := pc.selectRegionRows(run, region, ex)
	return Selection{Rows: rows, Explain: ex, Refine: st}
}

// SelectRegionRows is the steady-state navigation entry point: SelectRegion
// without the operator trace. With imprints built and the candidate-range,
// selection-vector and grid-state buffers all pooled, a repeated query
// through this path performs zero heap allocations on the serial
// refinement arm. (With Parallel set and a large candidate set, the
// fan-out still pays O(workers) bookkeeping per query — partial match
// vectors are pooled, goroutine scaffolding is not.) The returned vector
// is pooled; hand it back with RecycleRows when done.
func (pc *PointCloud) SelectRegionRows(region grid.Region) []int {
	rows, _ := pc.selectRegionRows(nil, region, nil)
	return rows
}

// SelectRegionRowsRun is SelectRegionRows under a query lifecycle (see
// SelectRegionRun): pooled buffers register in run's release list and the
// refinement loop honours the run's cancellation token. On cancellation
// the returned vector is partial; check run.Cancelled().
func (pc *PointCloud) SelectRegionRowsRun(run *Run, region grid.Region) []int {
	rows, _ := pc.selectRegionRows(run, region, nil)
	return rows
}

// selectRegionRows is the shared filter–refine core; ex may be nil, in
// which case no trace (and none of its formatting allocations) is produced.
func (pc *PointCloud) selectRegionRows(run *Run, region grid.Region, ex *Explain) ([]int, grid.Stats) {
	env := region.Envelope()
	if env.IsEmpty() || pc.Len() == 0 {
		if ex != nil {
			ex.Add(opSelectRegion, "empty region or table", pc.Len(), 0, 0)
		}
		// Empty but non-nil: downstream consumers (FilterRows, the SQL
		// executor) read nil as "all rows", so an empty selection must
		// stay distinguishable.
		return []int{}, grid.Stats{}
	}
	if d := pc.EnsureImprints(); d > 0 && ex != nil {
		ex.Add(opImprintsBuild, "x+y coordinate imprints", pc.Len(), pc.Len(), d)
	}
	imX, imY := pc.imprintsXY()

	start := time.Now()
	cand := candidateRangesXY(run, imX, imY, env)
	if ex != nil {
		ex.Add(opImprintsFilter,
			fmt.Sprintf("bbox %s", env.String()),
			pc.Len(), colstore.RangesLen(cand), time.Since(start))
	}

	_ = faultpoint.Hit("engine.select.refine")
	start = time.Now()
	// The refinement result lands in a pooled selection vector sized by the
	// imprint filter's candidate count (an upper bound on matches, so the
	// appends below never grow it — tracking at acquisition is safe).
	rows := run.AcquireRows(colstore.RangesLen(cand))
	// The per-run cancellation token rides into the refinement loops via a
	// copy of the grid options; pc.GridOpts itself stays run-independent.
	opts := pc.GridOpts
	opts.Cancel = run.Token()
	var st grid.Stats
	if pc.Parallel {
		rows, st = grid.RefineAutoInto(pc.xs.Values(), pc.ys.Values(), cand, region, opts, rows)
	} else {
		rows, st = grid.RefineInto(pc.xs.Values(), pc.ys.Values(), cand, region, opts, rows)
	}
	run.recycleRanges(cand)
	if ex != nil {
		ex.Add(opGridRefine,
			fmt.Sprintf("%dx%d cells, %d boundary", st.GridCellsX, st.GridCellsY, st.BoundaryCells),
			st.CandidateRows, len(rows), time.Since(start))
	}
	return rows, st
}

// candidateRangesXY runs the imprint filter step for env's bounding box:
// the X and Y candidate cacheline lists intersect into one pooled range
// list (~170KB/query at small scale if it were allocated instead). The
// intermediate lists go straight back to the pool; the caller owns the
// returned list and must hand it back with run.recycleRanges (or
// RecycleRanges when run is nil). Each list registers in the release list
// only after the call that grows it returns (track-after-production).
func candidateRangesXY(run *Run, imX, imY *imprints.Imprints, env geom.Envelope) []colstore.Range {
	candX := run.trackRanges(imX.CandidateRangesInto(env.MinX, env.MaxX, getRangeBuf(0)))
	candY := run.trackRanges(imY.CandidateRangesInto(env.MinY, env.MaxY, getRangeBuf(0)))
	cand := run.trackRanges(colstore.IntersectRangesInto(candX, candY, getRangeBuf(0)))
	run.recycleRanges(candX)
	run.recycleRanges(candY)
	return cand
}

// SelectRegionScan is the no-index baseline: every row refines exhaustively.
// Rows are pool-drawn like every other Selection producer, so Release keeps
// the pool accounting balanced.
func (pc *PointCloud) SelectRegionScan(region grid.Region) Selection {
	ex := &Explain{}
	start := time.Now()
	rows, st := grid.RefineExhaustiveInto(pc.xs.Values(), pc.ys.Values(),
		colstore.FullRange(pc.Len()), region, getRowBuf(pc.Len()))
	ex.Add(opScanExhaustive, "full table scan + exact test", pc.Len(), len(rows), time.Since(start))
	return Selection{Rows: rows, Explain: ex, Refine: st}
}

// SelectRegionImprintsOnly filters with imprints but refines exhaustively
// (no grid) — the E10 ablation arm isolating the grid's contribution.
func (pc *PointCloud) SelectRegionImprintsOnly(region grid.Region) Selection {
	ex := &Explain{}
	env := region.Envelope()
	if env.IsEmpty() || pc.Len() == 0 {
		return Selection{Rows: []int{}, Explain: ex}
	}
	pc.EnsureImprints()
	imX, imY := pc.imprintsXY()
	start := time.Now()
	cand := candidateRangesXY(nil, imX, imY, env)
	ex.Add(opImprintsFilter, env.String(), pc.Len(), colstore.RangesLen(cand), time.Since(start))
	start = time.Now()
	rows, st := grid.RefineExhaustiveInto(pc.xs.Values(), pc.ys.Values(), cand, region,
		getRowBuf(colstore.RangesLen(cand)))
	RecycleRanges(cand)
	ex.Add(opRefineExhaustive, "exact test per candidate", st.CandidateRows, len(rows), time.Since(start))
	return Selection{Rows: rows, Explain: ex, Refine: st}
}

package engine

import (
	"bytes"
	"fmt"
	"time"

	"gisnav/internal/colstore"
	"gisnav/internal/las"
	"gisnav/internal/lastools"
)

// The paper's binary bulk loader (§3.2): each LAS/LAZ tile is decoded once
// into per-attribute binary C-array dumps, which are then appended to the
// flat table columns through the COPY BINARY path — no text rendering, no
// text parsing. The CSV loader below is the conventional route the paper
// measures against (LAZ → CSV → parse), which it reports as roughly an
// order of magnitude slower end-to-end (one day vs. almost a week for
// AHN2).

// LoadStats reports what a bulk load did, split into the conversion stage
// (decode + dump/render) and the append stage (COPY into the table).
type LoadStats struct {
	Files       int
	Points      int
	ConvertTime time.Duration
	AppendTime  time.Duration
	StageBytes  int64 // bytes of intermediate representation produced
}

// Total returns the end-to-end load time.
func (s LoadStats) Total() time.Duration { return s.ConvertTime + s.AppendTime }

// PointsPerSecond reports load throughput.
func (s LoadStats) PointsPerSecond() float64 {
	t := s.Total().Seconds()
	if t == 0 {
		return 0
	}
	return float64(s.Points) / t
}

// binaryDumps renders pts into one binary C-array dump per column.
func binaryDumps(pts []las.Point) ([]bytes.Buffer, int64, error) {
	staging := PointCloudSchema().NewColumns()
	for _, p := range pts {
		appendLASPoint(staging, p)
	}
	dumps := make([]bytes.Buffer, len(staging))
	var total int64
	for i, c := range staging {
		n, err := c.WriteBinary(&dumps[i])
		if err != nil {
			return nil, 0, fmt.Errorf("engine: dumping column %d: %w", i, err)
		}
		total += n
	}
	return dumps, total, nil
}

// LoadBinary loads every tile of a repository through the binary path.
func LoadBinary(pc *PointCloud, repo *lastools.Repository) (LoadStats, error) {
	var st LoadStats
	for _, path := range repo.Files() {
		start := time.Now()
		_, pts, err := las.ReadAnyFile(path)
		if err != nil {
			return st, fmt.Errorf("engine: %s: %w", path, err)
		}
		dumps, bytesOut, err := binaryDumps(pts)
		if err != nil {
			return st, err
		}
		st.ConvertTime += time.Since(start)
		st.StageBytes += bytesOut

		start = time.Now()
		for i, c := range pc.cols {
			if err := c.AppendBinary(&dumps[i], len(pts)); err != nil {
				return st, fmt.Errorf("engine: copy binary %s col %d: %w", path, i, err)
			}
		}
		st.AppendTime += time.Since(start)
		st.Files++
		st.Points += len(pts)
	}
	pc.InvalidateIndexes()
	if err := validateSameLength(pc.cols); err != nil {
		return st, err
	}
	return st, nil
}

// LoadCSV loads every tile through the conventional route: decode the tile,
// render all attributes to CSV text, then tokenise and parse the text back
// into the columns. This is the baseline the binary loader replaces.
func LoadCSV(pc *PointCloud, repo *lastools.Repository) (LoadStats, error) {
	var st LoadStats
	for _, path := range repo.Files() {
		start := time.Now()
		_, pts, err := las.ReadAnyFile(path)
		if err != nil {
			return st, fmt.Errorf("engine: %s: %w", path, err)
		}
		staging := PointCloudSchema().NewColumns()
		for _, p := range pts {
			appendLASPoint(staging, p)
		}
		var csv bytes.Buffer
		if err := colstore.WriteCSV(&csv, staging); err != nil {
			return st, err
		}
		st.ConvertTime += time.Since(start)
		st.StageBytes += int64(csv.Len())

		start = time.Now()
		rows, err := colstore.AppendCSV(&csv, pc.cols)
		if err != nil {
			return st, fmt.Errorf("engine: csv parse %s: %w", path, err)
		}
		if rows != len(pts) {
			return st, fmt.Errorf("engine: csv row count %d != %d", rows, len(pts))
		}
		st.AppendTime += time.Since(start)
		st.Files++
		st.Points += len(pts)
	}
	pc.InvalidateIndexes()
	if err := validateSameLength(pc.cols); err != nil {
		return st, err
	}
	return st, nil
}

// LoadPoints appends decoded points directly (used by tests and generators
// that bypass the file formats).
func LoadPoints(pc *PointCloud, pts []las.Point) {
	pc.AppendLAS(pts)
}

package engine

import (
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/synth"
)

// buildDemoDB assembles the three demo datasets at small scale.
func buildDemoDB(t *testing.T) (*DB, *PointCloud, *VectorTable, *VectorTable) {
	t.Helper()
	region := geom.NewEnvelope(0, 0, 2000, 2000)
	terrain := synth.NewTerrain(61, region)
	pts := synth.GenerateTile(terrain, synth.TileSpec{Env: region, Density: 0.02, Seed: 4})
	pc := NewPointCloud()
	pc.AppendLAS(pts)

	osm := NewVectorTable()
	for _, f := range synth.GenerateOSM(terrain, 9) {
		osm.Append(f.ID, f.Class, f.Name, f.Geom, nil)
	}
	ua := NewVectorTable()
	for _, z := range synth.GenerateUrbanAtlas(terrain, synth.Motorways(synth.GenerateOSM(terrain, 9)), 16, 16, 7) {
		ua.Append(int64(z.ID), z.Code, z.Label, z.Geom, map[string]float64{"pop_density": z.PopDensity})
	}

	db := NewDB()
	db.RegisterPointCloud("ahn2", pc)
	db.RegisterVector("osm", osm)
	db.RegisterVector("ua", ua)
	return db, pc, osm, ua
}

func TestCatalog(t *testing.T) {
	db, pc, osm, _ := buildDemoDB(t)
	got, err := db.PointCloud("ahn2")
	if err != nil || got != pc {
		t.Fatal("point cloud lookup failed")
	}
	gotV, err := db.Vector("osm")
	if err != nil || gotV != osm {
		t.Fatal("vector lookup failed")
	}
	if _, err := db.PointCloud("missing"); err == nil {
		t.Fatal("missing cloud should error")
	}
	if _, err := db.Vector("missing"); err == nil {
		t.Fatal("missing vector should error")
	}
	tables := db.Tables()
	if len(tables) != 3 || tables[0] != "ahn2" {
		t.Fatalf("tables = %v", tables)
	}
	if !db.IsPointCloud("ahn2") || db.IsPointCloud("osm") {
		t.Fatal("IsPointCloud wrong")
	}
}

func TestVectorTableBasics(t *testing.T) {
	vt := NewVectorTable()
	vt.Append(1, "motorway", "A1", geom.MustParseWKT("LINESTRING (0 0, 100 0)"), nil)
	vt.Append(2, "river", "Rhine", geom.MustParseWKT("LINESTRING (0 50, 100 50)"),
		map[string]float64{"flow": 2.5})
	if vt.Len() != 2 || vt.ID(0) != 1 || vt.Class(1) != "river" || vt.Name(1) != "Rhine" {
		t.Fatal("basic accessors wrong")
	}
	if vt.Numeric("flow", 1) != 2.5 {
		t.Fatal("numeric attribute lost")
	}
	// Row 0 predates the flow column; it must read as 0.
	if vt.Numeric("flow", 0) != 0 {
		t.Fatal("zero-fill for late columns broken")
	}
	if vt.Numeric("missing", 0) != 0 {
		t.Fatal("missing attribute should read 0")
	}
	if len(vt.NumericAttrs()) != 1 {
		t.Fatal("attr listing wrong")
	}
	if vt.Bytes() <= 0 {
		t.Fatal("bytes should be positive")
	}

	ex := &Explain{}
	rows := vt.SelectClass("motorway", ex)
	if len(rows) != 1 || rows[0] != 0 {
		t.Fatalf("class select = %v", rows)
	}
	if rows := vt.SelectClass("park", ex); rows != nil {
		t.Fatal("absent class should be empty")
	}
	hits := vt.SelectIntersects(geom.NewEnvelope(10, -5, 20, 5).ToPolygon(), ex)
	if len(hits) != 1 || hits[0] != 0 {
		t.Fatalf("intersects = %v", hits)
	}
	// Numeric filter.
	filtered, err := vt.FilterNumeric([]int{0, 1}, "flow", ColumnPred{Op: CmpGT, Value: 1}, ex)
	if err != nil || len(filtered) != 1 || filtered[0] != 1 {
		t.Fatalf("numeric filter = %v, %v", filtered, err)
	}
	if _, err := vt.FilterNumeric([]int{0}, "none", ColumnPred{}, ex); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestScenario2Queries(t *testing.T) {
	db, pc, _, ua := buildDemoDB(t)
	ex := &Explain{}
	fast := ua.SelectClass(synth.UAFastTransit, ex)
	if len(fast) == 0 {
		t.Fatal("no fast transit zones in demo data")
	}
	// Query A: points near fast transit roads.
	sel := db.PointsNearFeatures(pc, ua, fast, 25)
	if len(sel.Rows) == 0 {
		t.Fatal("no points near fast transit zones")
	}
	// Cross-check against the naive evaluator.
	region := ua.CollectGeometries(fast)
	want := 0
	for i := 0; i < pc.Len(); i++ {
		if geom.DWithin(pc.X()[i], pc.Y()[i], region, 25) {
			want++
		}
	}
	if len(sel.Rows) != want {
		t.Fatalf("join rows = %d, want %d", len(sel.Rows), want)
	}
	// Query B: average elevation of those points.
	avg, err := pc.Aggregate(sel.Rows, AggAvg, ColZ, sel.Explain)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range sel.Rows {
		sum += pc.Z()[r]
	}
	if wantAvg := sum / float64(len(sel.Rows)); avg != wantAvg {
		t.Fatalf("avg = %v, want %v", avg, wantAvg)
	}
	// The explain trace must show the operator pipeline.
	if len(sel.Explain.Steps) < 3 {
		t.Fatalf("expected multi-operator trace, got %d steps", len(sel.Explain.Steps))
	}
	// Containment join variant.
	selIn := db.PointsInFeatures(pc, ua, fast)
	wantIn := 0
	for i := 0; i < pc.Len(); i++ {
		if geom.ContainsPoint(region, pc.X()[i], pc.Y()[i]) {
			wantIn++
		}
	}
	if len(selIn.Rows) != wantIn {
		t.Fatalf("containment join = %d, want %d", len(selIn.Rows), wantIn)
	}
	// Empty feature set short-circuits.
	if got := db.PointsNearFeatures(pc, ua, nil, 25); len(got.Rows) != 0 {
		t.Fatal("empty feature set should match nothing")
	}
}

func TestStorageReport(t *testing.T) {
	db, pc, _, _ := buildDemoDB(t)
	r := db.Storage()
	if r.CloudRows != pc.Len() || r.CloudBytes != pc.Bytes() {
		t.Fatalf("report = %+v", r)
	}
	if r.ImprintBytes <= 0 {
		t.Fatal("storage report must build imprints")
	}
	if r.VectorFeatures == 0 || r.VectorBytes == 0 {
		t.Fatal("vector stats missing")
	}
	ext := db.Extent()
	if ext.IsEmpty() || !ext.ContainsPoint(1000, 1000) {
		t.Fatalf("extent = %v", ext)
	}
}

package engine

import (
	"fmt"
	"testing"

	"gisnav/internal/geom"
)

// buildClassTable returns a table with a known class layout: rows i with
// i%3 == 0 are "road", i%3 == 1 are "park", the rest "water".
func buildClassTable(n int) *VectorTable {
	vt := NewVectorTable()
	classes := []string{"road", "park", "water"}
	for i := 0; i < n; i++ {
		vt.Append(int64(i), classes[i%3], fmt.Sprintf("f%d", i),
			geom.NewEnvelope(float64(i), 0, float64(i)+1, 1).ToPolygon(), nil)
	}
	return vt
}

// TestClassPostingsMatchScan pins the posting-list fast path to the code
// column layout: the first selection builds the postings, later selections
// serve from them, and both agree with the raw code-column scan.
func TestClassPostingsMatchScan(t *testing.T) {
	vt := buildClassTable(300)
	if vt.HasClassPostings() {
		t.Fatal("postings should be lazy, not built by Append")
	}
	for _, class := range []string{"road", "park", "water", "absent"} {
		got := vt.SelectClass(class, nil)
		// Reference: scan the code column directly.
		var want []int
		if code, ok := vt.classes.Code(class); ok {
			for i, c := range vt.classes.Codes() {
				if c == code {
					want = append(want, i)
				}
			}
		}
		if !equalRows(got, want) {
			t.Fatalf("class %q: postings %v, scan %v", class, got, want)
		}
	}
	if !vt.HasClassPostings() {
		t.Fatal("first class selection should build the postings")
	}
}

// TestClassPostingsDroppedOnAppend: an append (epoch bump) must drop the
// postings so the next selection sees the new row — the same invalidation
// direction as the R-tree and the point cloud's imprints.
func TestClassPostingsDroppedOnAppend(t *testing.T) {
	vt := buildClassTable(30)
	before := vt.SelectClass("road", nil)
	epoch := vt.Epoch()

	vt.Append(999, "road", "late road", geom.NewEnvelope(50, 0, 51, 1).ToPolygon(), nil)
	if vt.HasClassPostings() {
		t.Fatal("append left stale postings alive")
	}
	if vt.Epoch() == epoch {
		t.Fatal("append did not bump the epoch")
	}

	after := vt.SelectClass("road", nil)
	if len(after) != len(before)+1 || after[len(after)-1] != vt.Len()-1 {
		t.Fatalf("post-append selection = %v, want %v + appended row %d", after, before, vt.Len()-1)
	}
}

package engine

import (
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/lastools"
	"gisnav/internal/synth"
)

// writeRepo generates a small tile repository on disk.
func writeRepo(t *testing.T, compressed bool) *lastools.Repository {
	t.Helper()
	dir := t.TempDir()
	region := geom.NewEnvelope(0, 0, 600, 600)
	terrain := synth.NewTerrain(71, region)
	if _, err := synth.WriteTiles(terrain, region, 2, 2, 0.05, 3, compressed, 11, dir); err != nil {
		t.Fatal(err)
	}
	repo, err := lastools.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestLoadBinary(t *testing.T) {
	repo := writeRepo(t, false)
	pc := NewPointCloud()
	st, err := LoadBinary(pc, repo)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 4 || st.Points == 0 || pc.Len() != st.Points {
		t.Fatalf("stats = %+v, len = %d", st, pc.Len())
	}
	if st.StageBytes == 0 {
		t.Fatal("binary dumps should have bytes")
	}
	if st.PointsPerSecond() <= 0 {
		t.Fatal("throughput should be positive")
	}
	// The loaded table answers queries identically to direct row appends.
	sel := pc.SelectBox(geom.NewEnvelope(50, 50, 300, 300))
	if len(sel.Rows) == 0 {
		t.Fatal("loaded table should answer queries")
	}
}

func TestLoadCSVMatchesBinary(t *testing.T) {
	repo := writeRepo(t, false)
	bin := NewPointCloud()
	if _, err := LoadBinary(bin, repo); err != nil {
		t.Fatal(err)
	}
	csv := NewPointCloud()
	stCSV, err := LoadCSV(csv, repo)
	if err != nil {
		t.Fatal(err)
	}
	if csv.Len() != bin.Len() {
		t.Fatalf("csv rows %d != binary rows %d", csv.Len(), bin.Len())
	}
	// Row-for-row equality across all columns.
	for i, col := range bin.Columns() {
		other := csv.Columns()[i]
		for r := 0; r < bin.Len(); r += 97 { // stride to keep the test fast
			if col.Value(r) != other.Value(r) {
				t.Fatalf("column %d row %d: %v vs %v", i, r, col.Value(r), other.Value(r))
			}
		}
	}
	// The binary stage representation is far denser than the text one.
	stBin := LoadStats{}
	pc2 := NewPointCloud()
	stBin, err = LoadBinary(pc2, repo)
	if err != nil {
		t.Fatal(err)
	}
	if stBin.StageBytes >= stCSV.StageBytes {
		t.Fatalf("binary staging (%d B) should be smaller than CSV staging (%d B)",
			stBin.StageBytes, stCSV.StageBytes)
	}
}

func TestLoadCompressedTiles(t *testing.T) {
	repo := writeRepo(t, true)
	pc := NewPointCloud()
	st, err := LoadBinary(pc, repo)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Len() != st.Points || st.Points == 0 {
		t.Fatalf("laz load failed: %+v", st)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	repo, err := lastools.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPointCloud()
	st, err := LoadBinary(pc, repo)
	if err != nil || st.Files != 0 {
		t.Fatal("empty repo should load nothing")
	}
}

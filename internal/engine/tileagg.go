// Tile-grouped pre-aggregation (PR 10): the engine entry points the
// pyramid builds on. TileGroupedAggregateRun scatters the whole table
// into per-(tile, class) banks — a grouped-aggregate pass whose composite
// slot is the row's quantised tile times the 256-class domain — fanned
// across the morsel worker set exactly like the dense grouped strategy:
// per-worker bank slabs merged in ascending-partition order, which is
// exact for count/min/max. Sum banks force the serial arm: per-tile sums
// are pinned to the ascending row-order fold by the float-determinism
// invariant, and partition merging would reassociate them.
// GroupedAccumulateRows is the query-time counterpart: it folds the same
// compiled kernels over an explicit row list into 256-slot class banks —
// the boundary-tile refinement of a pyramid lookup.
package engine

import (
	"fmt"
	"math"
	"time"

	"gisnav/internal/cancel"
	"gisnav/internal/colstore"
	"gisnav/internal/faultpoint"
	"gisnav/internal/morsel"
	"gisnav/internal/sfc"
)

// tileDom is the class domain of one tile's bank: the pyramid keys on u8
// columns only (the dense grouped strategy's u8 arm), so every tile owns
// 256 slots regardless of how many classes actually occur.
const tileDom = 256

// validateTileSpecs rejects aggregate shapes the tile banks cannot hold:
// avg derives from sum and count at emit time and is never materialised
// per tile.
func validateTileSpecs(specs []GroupedAggSpec) error {
	for _, s := range specs {
		switch s.Fn {
		case AggCount, AggMin, AggMax, AggSum:
		default:
			return fmt.Errorf("engine: tile aggregation does not materialise %v banks", s.Fn)
		}
	}
	return nil
}

// TileGroupedAggregateRun scatters every row of the table into
// per-(tile, class) pre-aggregate banks. tiler assigns each row exactly
// one tile (Cell clamps, so rows on the extent boundary land in the edge
// tiles); keyCol must be a u8 column. Slot (t, k) of a bank lives at
// index t*256+k with t = cy<<order | cx. cnt receives the group sizes;
// banks[j] receives spec j's fold and may be nil for AggCount specs,
// which are served from cnt. All banks are (re)seeded here: callers pass
// pooled buffers with stale contents.
//
// Parallelism follows the grouped kernels' merge contract: count/min/max
// shapes fan across the morsel worker set at the run's degree, sum shapes
// run serial so each tile's sum folds rows in ascending row order.
func (pc *PointCloud) TileGroupedAggregateRun(run *Run, tiler sfc.Grid, keyCol string, specs []GroupedAggSpec, cnt []float64, banks [][]float64, ex *Explain) error {
	start := time.Now()
	if err := validateTileSpecs(specs); err != nil {
		return err
	}
	u8, ok := pc.Column(keyCol).(*colstore.U8Column)
	if !ok {
		return fmt.Errorf("engine: tile aggregation requires a u8 key column, got %q", keyCol)
	}
	nslots := (1 << (2 * tiler.Order)) * tileDom
	if len(cnt) < nslots || len(banks) != len(specs) {
		return fmt.Errorf("engine: tile bank shape mismatch: %d slots, %d banks for %d specs",
			len(cnt), len(banks), len(specs))
	}
	for i := range cnt[:nslots] {
		cnt[i] = 0
	}
	for j, s := range specs {
		if s.Fn == AggCount {
			continue
		}
		if pc.Column(s.Column) == nil {
			return fmt.Errorf("engine: unknown column %q", s.Column)
		}
		if len(banks[j]) < nslots {
			return fmt.Errorf("engine: tile bank %d holds %d slots, need %d", j, len(banks[j]), nslots)
		}
		seedBank(banks[j][:nslots], s.Fn)
	}

	n := pc.Len()
	if n == 0 {
		return nil
	}
	deg := 1
	if specsMergeExact(specs) {
		deg = pc.morselDegree(run, n)
	}
	var err error
	if deg > 1 {
		err = pc.tileGroupedMorsel(run, tiler, u8.Values(), specs, cnt, banks, nslots, n, deg)
	} else {
		err = pc.tileGroupedSerial(run, tiler, u8.Values(), specs, cnt, banks)
	}
	if err != nil {
		return err
	}
	if ex != nil {
		ex.Add(opTileAgg, fmt.Sprintf("order %d, %d aggs [par %d]", tiler.Order, len(specs), deg),
			n, nslots, time.Since(start))
	}
	return nil
}

// seedBank initialises a fold bank to fn's identity.
func seedBank(bank []float64, fn AggFunc) {
	seed := 0.0
	switch fn {
	case AggMin:
		seed = math.Inf(1)
	case AggMax:
		seed = math.Inf(-1)
	}
	for i := range bank {
		bank[i] = seed
	}
}

// tileSlots quantises rows [start, end) into composite (tile, class)
// slots: slots[i] belongs to global row start+i.
func tileSlots(xs, ys []float64, keys []uint8, tiler sfc.Grid, start, end int, slots []int) {
	order := tiler.Order
	for i := range slots {
		r := start + i
		cx, cy := tiler.Cell(xs[r], ys[r])
		slots[i] = (int(cy)<<order|int(cx))*tileDom + int(keys[r])
	}
}

// tileAccumCol dispatches one scatter-accumulate pass over global rows
// [start, end) with their partition-local slot vector to the value
// column's concrete type — the same monomorphic loops as the grouped hash
// strategy, driven by the composite tile slot.
func tileAccumCol(col colstore.Column, start, end int, slots []int, fn AggFunc, bank []float64) {
	switch c := col.(type) {
	case *colstore.F64Column:
		hashAccum(c.Values()[start:end], nil, true, slots, fn, bank)
	case *colstore.I64Column:
		hashAccum(c.Values()[start:end], nil, true, slots, fn, bank)
	case *colstore.I32Column:
		hashAccum(c.Values()[start:end], nil, true, slots, fn, bank)
	case *colstore.U16Column:
		hashAccum(c.Values()[start:end], nil, true, slots, fn, bank)
	case *colstore.U8Column:
		hashAccum(c.Values()[start:end], nil, true, slots, fn, bank)
	default:
		for i, s := range slots {
			accumOne(fn, bank, s, col.Value(start+i))
		}
	}
}

// tileGroupedSerial is the single-core scatter: one slot pass, one count
// pass, one accumulate pass per non-count spec, polling the cancel token
// between passes like the serial grouped strategies.
func (pc *PointCloud) tileGroupedSerial(run *Run, tiler sfc.Grid, keys []uint8, specs []GroupedAggSpec, cnt []float64, banks [][]float64) error {
	n := len(keys)
	slots := run.TrackRows(getRowBuf(n))[:n]
	tileSlots(pc.xs.Values(), pc.ys.Values(), keys, tiler, 0, n, slots)
	for _, s := range slots {
		cnt[s]++
	}
	for j, s := range specs {
		if err := groupPassCheckpoint(run); err != nil {
			run.RecycleRows(slots)
			return err
		}
		if s.Fn == AggCount {
			continue
		}
		tileAccumCol(pc.Column(s.Column), 0, n, slots, s.Fn, banks[j])
	}
	run.RecycleRows(slots)
	return nil
}

// tilePass is the pooled fan-out scaffolding of one parallel tile scatter.
// Per-worker banks are disjoint slabs of one run-tracked buffer (the dense
// grouped layout); the per-worker slot vector is this slot's pooled
// buffer, recycled on every exit path including panic.
type tilePass struct {
	pass   morsel.Pass
	xs, ys []float64
	keys   []uint8
	tiler  sfc.Grid
	pc     *PointCloud
	specs  []GroupedAggSpec
	n, deg int
	nslots int
	stride int
	accIdx []int // per spec: 1-based slab bank index; 0 for count
	banks  []float64
	tok    *cancel.Token
}

var tilePasses passFree[tilePass]

func (tp *tilePass) release() {
	tp.xs, tp.ys, tp.keys = nil, nil, nil
	tp.pc, tp.specs, tp.banks = nil, nil, nil
	tp.tok = nil
}

// RunPartition quantises and scatters one partition into its bank slab.
// One accumulate pass is this layer's block (as in groupPassCheckpoint),
// so the token is polled between passes.
func (tp *tilePass) RunPartition(slot int) {
	start := slot * tp.n / tp.deg
	end := (slot + 1) * tp.n / tp.deg
	slots := getRowBuf(end - start)[:end-start]
	defer rowPool.Put(slots)
	if err := faultpoint.Hit("engine.morsel.worker"); err != nil {
		panic(err)
	}
	tileSlots(tp.xs, tp.ys, tp.keys, tp.tiler, start, end, slots)
	bank := tp.banks[slot*tp.stride : (slot+1)*tp.stride]
	cnt := bank[:tp.nslots]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, s := range slots {
		cnt[s]++
	}
	for j, sp := range tp.specs {
		if tp.tok.Cancelled() {
			return
		}
		if sp.Fn == AggCount {
			continue
		}
		b := bank[tp.accIdx[j]*tp.nslots : (tp.accIdx[j]+1)*tp.nslots]
		seedBank(b, sp.Fn)
		tileAccumCol(tp.pc.Column(sp.Column), start, end, slots, sp.Fn, b)
	}
}

// tileGroupedMorsel fans the tile scatter over deg partitions and merges
// the per-worker slabs in ascending-partition order — exact for
// count/min/max (specsMergeExact holds on this path), so the merged banks
// are bit-identical to the serial scatter.
func (pc *PointCloud) tileGroupedMorsel(run *Run, tiler sfc.Grid, keys []uint8, specs []GroupedAggSpec, cnt []float64, banks [][]float64, nslots, n, deg int) error {
	nacc := 0
	for _, s := range specs {
		if s.Fn != AggCount {
			nacc++
		}
	}
	stride := nslots * (1 + nacc)
	wb := run.trackF64(getF64Buf(deg * stride))[:deg*stride]
	tp := tilePasses.get()
	tp.xs, tp.ys, tp.keys = pc.xs.Values(), pc.ys.Values(), keys
	tp.tiler, tp.pc, tp.specs = tiler, pc, specs
	tp.n, tp.deg, tp.nslots, tp.stride = n, deg, nslots, stride
	tp.banks = wb
	tp.tok = run.Token()
	if cap(tp.accIdx) < len(specs) {
		tp.accIdx = make([]int, len(specs))
	}
	tp.accIdx = tp.accIdx[:len(specs)]
	ai := 0
	for j, s := range specs {
		tp.accIdx[j] = 0
		if s.Fn != AggCount {
			ai++
			tp.accIdx[j] = ai
		}
	}
	if p := tp.pass.Run(deg, tp); p != nil {
		tp.release()
		tilePasses.put(tp)
		run.recycleF64(wb)
		panic(p)
	}
	accIdx := tp.accIdx
	tp.release()
	tilePasses.put(tp)
	if err := faultpoint.Hit("engine.morsel.merge"); err != nil {
		run.recycleF64(wb)
		return err
	}
	if run.Cancelled() {
		run.recycleF64(wb)
		return cancel.ErrCancelled
	}
	for w := 0; w < deg; w++ {
		slab := wb[w*stride : (w+1)*stride]
		for s, c := range slab[:nslots] {
			cnt[s] += c
		}
		for j, sp := range specs {
			if sp.Fn == AggCount {
				continue
			}
			sb := slab[accIdx[j]*nslots : (accIdx[j]+1)*nslots]
			b := banks[j]
			switch sp.Fn {
			case AggMin:
				for s, v := range sb {
					if v < b[s] {
						b[s] = v
					}
				}
			case AggMax:
				for s, v := range sb {
					if v > b[s] {
						b[s] = v
					}
				}
			}
		}
	}
	run.recycleF64(wb)
	return nil
}

// GroupedAccumulateRows folds specs over an explicit row list into
// 256-slot class-indexed banks, running the same compiled dense kernels
// as the exact grouped arm — the pyramid's boundary-tile refinement entry
// point. bank is one flat slab laid out [count | spec 0 | spec 1 | ...]:
// 256 count slots followed by one 256-slot segment per spec (count specs'
// segments are unused — the shared count slots serve them). The flat
// layout keeps the warm query path free of per-call slice-header
// allocation. All slots accumulate ON TOP of their existing contents (the
// caller seeds them once per fold sequence: zero for count/sum, ±Inf for
// min/max — or folds interior pre-aggregates in first). Rows are folded
// in slice order, so a deterministic rows order yields deterministic
// sums.
func (pc *PointCloud) GroupedAccumulateRows(rows []int, keyCol string, specs []GroupedAggSpec, bank []float64) error {
	if err := validateTileSpecs(specs); err != nil {
		return err
	}
	u8, ok := pc.Column(keyCol).(*colstore.U8Column)
	if !ok {
		return fmt.Errorf("engine: tile aggregation requires a u8 key column, got %q", keyCol)
	}
	if len(bank) < (1+len(specs))*tileDom {
		return fmt.Errorf("engine: class bank slab too small: %d slots for %d specs",
			len(bank), len(specs))
	}
	keys := u8.Values()
	denseCount(keys, rows, false, bank[:tileDom])
	for j, s := range specs {
		if s.Fn == AggCount {
			continue
		}
		col := pc.Column(s.Column)
		if col == nil {
			return fmt.Errorf("engine: unknown column %q", s.Column)
		}
		denseAccumCol(keys, col, rows, false, s.Fn, bank[(1+j)*tileDom:(2+j)*tileDom])
	}
	return nil
}

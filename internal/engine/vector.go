package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gisnav/internal/colstore"
	"gisnav/internal/geom"
	"gisnav/internal/rtree"
)

// VectorTable stores classed vector features (the OSM and Urban Atlas
// datasets of the demo): a geometry column plus dictionary-encoded thematic
// attributes, with cached envelopes for cheap spatial prefiltering and a
// lazily built STR R-tree over them (created on the first spatial query,
// like the point cloud's imprints).
type VectorTable struct {
	ids     *colstore.I64Column
	classes *colstore.StrColumn
	names   *colstore.StrColumn
	geoms   []geom.Geometry
	envs    []geom.Envelope
	numeric map[string]*colstore.F64Column

	mu    sync.Mutex
	index *rtree.Tree
	// classPost is the lazily built per-class posting list: for each
	// dictionary code, the ascending row ids carrying it. Built on the first
	// SelectClassInto (one O(n) scan), it turns every later class selection
	// into an O(|result|) copy instead of a full code-column scan. Dropped
	// together with the R-tree on Append (the epoch bump), like the point
	// cloud's imprints.
	classPost map[uint32][]int

	// epoch counts appends, mirroring PointCloud.Epoch: prepared SQL plans
	// capture it (their star expansion and conjunct classification read the
	// attribute schema) and replan when it moves.
	epoch atomic.Uint64
}

// NewVectorTable returns an empty vector table.
func NewVectorTable() *VectorTable {
	return &VectorTable{
		ids:     &colstore.I64Column{},
		classes: colstore.NewStrColumn(),
		names:   colstore.NewStrColumn(),
		numeric: map[string]*colstore.F64Column{},
	}
}

// Append adds one feature. attrs supplies optional numeric attributes
// (e.g. pop_density); all rows of an attribute column stay aligned by
// zero-filling columns introduced late.
func (vt *VectorTable) Append(id int64, class, name string, g geom.Geometry, attrs map[string]float64) {
	row := vt.Len()
	vt.ids.Append(id)
	vt.classes.AppendString(class)
	vt.names.AppendString(name)
	vt.geoms = append(vt.geoms, g)
	vt.envs = append(vt.envs, g.Envelope())
	for k, v := range attrs {
		col, ok := vt.numeric[k]
		if !ok {
			col = &colstore.F64Column{}
			vt.numeric[k] = col
		}
		for col.Len() < row {
			col.Append(0)
		}
		col.Append(v)
	}
	for _, col := range vt.numeric {
		for col.Len() < row+1 {
			col.Append(0)
		}
	}
	vt.epoch.Add(1) // bump first; see PointCloud.InvalidateIndexes
	vt.mu.Lock()
	vt.index = nil     // appended features invalidate the spatial index
	vt.classPost = nil // and the class posting lists
	vt.mu.Unlock()
}

// Epoch returns the table's append epoch (see PointCloud.Epoch).
func (vt *VectorTable) Epoch() uint64 { return vt.epoch.Load() }

// ensureIndex builds the envelope R-tree if absent, returning it.
func (vt *VectorTable) ensureIndex() *rtree.Tree {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	if vt.index == nil {
		items := make([]rtree.Item, len(vt.envs))
		for i, env := range vt.envs {
			items[i] = rtree.Item{Env: env, ID: i}
		}
		vt.index = rtree.BuildSTR(items, 0)
	}
	return vt.index
}

// HasSpatialIndex reports whether the R-tree is currently built.
func (vt *VectorTable) HasSpatialIndex() bool {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	return vt.index != nil
}

// Len reports the feature count.
func (vt *VectorTable) Len() int { return len(vt.geoms) }

// ID returns the feature id at row i.
func (vt *VectorTable) ID(i int) int64 { return vt.ids.Values()[i] }

// Class returns the thematic class at row i.
func (vt *VectorTable) Class(i int) string { return vt.classes.String(i) }

// Name returns the feature name at row i.
func (vt *VectorTable) Name(i int) string { return vt.names.String(i) }

// Geometry returns the geometry at row i.
func (vt *VectorTable) Geometry(i int) geom.Geometry { return vt.geoms[i] }

// Envelope returns the cached envelope at row i.
func (vt *VectorTable) Envelope(i int) geom.Envelope { return vt.envs[i] }

// Numeric returns the value of a numeric attribute at row i (0 if absent).
func (vt *VectorTable) Numeric(attr string, i int) float64 {
	col, ok := vt.numeric[attr]
	if !ok || i >= col.Len() {
		return 0
	}
	return col.Values()[i]
}

// NumericAttrs lists the numeric attribute names.
func (vt *VectorTable) NumericAttrs() []string {
	out := make([]string, 0, len(vt.numeric))
	for k := range vt.numeric {
		out = append(out, k)
	}
	return out
}

// SelectClass returns the rows whose class equals class, resolving the
// constant through the dictionary once (no string compares per row).
func (vt *VectorTable) SelectClass(class string, ex *Explain) []int {
	return vt.SelectClassInto(class, nil, ex)
}

// SelectClassInto is SelectClass appending into rows — callers on the
// repeated-query path pass a pooled buffer (AcquireRows) so the class scan
// allocates nothing steady-state. The first call builds the per-class
// posting lists (one scan over the code column); every later call copies
// the class's posting list, O(|result|) instead of O(n). ex may be nil to
// skip the trace (and its formatting allocations).
func (vt *VectorTable) SelectClassInto(class string, rows []int, ex *Explain) []int {
	start := time.Now()
	in := len(rows)
	if code, ok := vt.classes.Code(class); ok {
		rows = append(rows, vt.ensurePostings()[code]...)
	}
	if ex != nil {
		ex.Add("filter.class", fmt.Sprintf("class = %q (postings)", class), vt.Len(), len(rows)-in, time.Since(start))
	}
	return rows
}

// ensurePostings builds the per-class posting lists if absent, returning
// them. The returned map is immutable once built (Append drops and rebuilds
// rather than mutating), so callers may read it without holding vt.mu.
func (vt *VectorTable) ensurePostings() map[uint32][]int {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	if vt.classPost == nil {
		post := make(map[uint32][]int, vt.classes.DictSize())
		for i, c := range vt.classes.Codes() {
			post[c] = append(post[c], i)
		}
		vt.classPost = post
	}
	return vt.classPost
}

// HasClassPostings reports whether the posting lists are currently built.
func (vt *VectorTable) HasClassPostings() bool {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	return vt.classPost != nil
}

// SelectIntersects returns the rows whose geometry intersects g. The STR
// R-tree over feature envelopes prefilters; survivors get the exact test.
func (vt *VectorTable) SelectIntersects(g geom.Geometry, ex *Explain) []int {
	return vt.SelectIntersectsInto(g, nil, ex)
}

// SelectIntersectsInto is SelectIntersects appending into rows (see
// SelectClassInto). Appended row ids ascend: the R-tree reports candidates
// in ascending id order, so the result composes with sorted-intersection
// consumers.
func (vt *VectorTable) SelectIntersectsInto(g geom.Geometry, rows []int, ex *Explain) []int {
	start := time.Now()
	idx := vt.ensureIndex()
	env := g.Envelope()
	candidates := idx.SearchIDs(env)
	in := len(rows)
	for _, i := range candidates {
		if geom.Intersects(vt.geoms[i], g) {
			rows = append(rows, i)
		}
	}
	if ex != nil {
		ex.Add("vector.intersects",
			fmt.Sprintf("rtree pass %d/%d", len(candidates), vt.Len()),
			vt.Len(), len(rows)-in, time.Since(start))
	}
	return rows
}

// FilterNumeric narrows rows by a numeric attribute predicate.
func (vt *VectorTable) FilterNumeric(rows []int, attr string, pred ColumnPred, ex *Explain) ([]int, error) {
	col, ok := vt.numeric[attr]
	if !ok {
		return nil, fmt.Errorf("engine: unknown vector attribute %q", attr)
	}
	start := time.Now()
	in := len(rows)
	out := rows[:0]
	vals := col.Values()
	for _, r := range rows {
		if pred.Matches(vals[r]) {
			out = append(out, r)
		}
	}
	ex.Add("filter.numeric", pred.String(), in, len(out), time.Since(start))
	return out, nil
}

// CollectGeometries assembles the geometries of a row set into a collection,
// the shape the spatial-join region constructors consume.
func (vt *VectorTable) CollectGeometries(rows []int) geom.Collection {
	c := geom.Collection{Geometries: make([]geom.Geometry, 0, len(rows))}
	for _, r := range rows {
		c.Geometries = append(c.Geometries, vt.geoms[r])
	}
	return c
}

// Bytes reports the in-memory footprint of the thematic columns (geometry
// payloads excluded; they are shared structures).
func (vt *VectorTable) Bytes() int {
	n := vt.ids.Bytes() + vt.classes.Bytes() + vt.names.Bytes()
	for _, col := range vt.numeric {
		n += col.Bytes()
	}
	return n
}

// Grouped-aggregation kernels: GROUP BY over one key column with typed
// accumulate passes over the value columns, executed column-at-a-time in the
// MonetDB style the paper's performance case rests on (§2.1.1). The paper's
// navigation workload re-aggregates the viewport on every pan/zoom step
// (class histograms, per-class elevation stats), so this layer is built for
// the repeated case: accumulator scratch comes from the striped pools and
// the result lands in a caller-owned reusable record, leaving a steady-state
// dense-path run with zero heap allocations.
//
// Two strategies, chosen per run from the key column type and the selection
// size:
//
//   - dense: small-domain integer keys (u8/u16 class-style columns). The
//     accumulator is an array bank indexed directly by key value — the same
//     insight as the vector table's per-class posting lists: a class-coded
//     column IS its own perfect hash. One gather-free pass per aggregate.
//   - hash: general keys (f64/i64/i32, or u16 selections too small to repay
//     clearing a 64K bank). Open-addressed table over the float64-widened
//     key bits, group slots assigned on first appearance; a slot vector
//     aligned with the selection lets every aggregate pass run without
//     re-hashing.
//
// Semantics contract (shared with Aggregate and the SQL layer's interpreter
// fallback): values widen to float64 exactly as Column.Value does;
// accumulation runs in ascending row order per group, so sums are
// bit-identical to a row-at-a-time loop; min/max seed at ±Inf with strict
// compares, so NaN values never win them; sum/avg propagate NaN. Key
// identity is float64-bit identity with every NaN collapsed to one group
// (matching the SQL layer, where all NaNs render as one key) and -0/+0 kept
// distinct. Groups are emitted in the total order of FloatOrderKey —
// ascending numeric, -0 before +0, NaN last — on both strategies.
package engine

import (
	"fmt"
	"math"
	"time"

	"gisnav/internal/cancel"
	"gisnav/internal/colstore"
	"gisnav/internal/faultpoint"
)

// GroupedAggSpec is one requested aggregate of a grouped run. Column names
// the value column; AggCount ignores it (count(*) and count(col) over the
// NULL-free flat table are both the group size).
type GroupedAggSpec struct {
	Fn     AggFunc
	Column string
}

// Grouped-aggregation strategy labels, surfaced through EXPLAIN.
const (
	GroupDense = "dense"
	GroupHash  = "hash"
)

// GroupedResult is the reusable output record of GroupedAggregate: Keys[i]
// is the float64-widened key of group i, Cols[j][i] the j-th requested
// aggregate over it. Buffers are retained across calls — a caller that keeps
// one GroupedResult per repeated statement reaches a zero-allocation steady
// state. Contents are valid until the next GroupedAggregate call on the
// same record.
type GroupedResult struct {
	Keys     []float64
	Cols     [][]float64
	Strategy string
}

// reset prepares the record for nspecs aggregates, retaining capacity.
func (r *GroupedResult) reset(nspecs int) {
	r.Keys = r.Keys[:0]
	if cap(r.Cols) < nspecs {
		r.Cols = make([][]float64, nspecs)
	}
	r.Cols = r.Cols[:nspecs]
	for j := range r.Cols {
		r.Cols[j] = r.Cols[j][:0]
	}
}

// Groups reports the number of groups in the result.
func (r *GroupedResult) Groups() int { return len(r.Keys) }

// FloatOrderKey maps a float64 to a uint64 whose unsigned order is a total
// order over all float values: ascending numerically, -0 before +0, and
// every NaN (canonicalised) after +Inf. Grouped results are emitted in this
// order on every strategy, and the SQL layer sorts its interpreter-fallback
// groups with the same key so the two paths are order-identical.
func FloatOrderKey(v float64) uint64 {
	b := canonicalBits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// canonicalBits is the group-identity bit pattern of a key value: the IEEE
// bits with every NaN payload collapsed to one representative, so NaN keys
// form a single group instead of one per payload.
func canonicalBits(v float64) uint64 {
	if v != v {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(v)
}

// denseMinRowsPerSlot gates the dense strategy for the u16 domain: clearing
// and scanning a 64K-slot bank per aggregate only repays when the selection
// carries enough rows. Below dom/denseMinRowsPerSlot rows the hash path wins.
const denseMinRowsPerSlot = 4

// GroupedAggregate computes the specs over the rows selection (nil means all
// rows) grouped by the key column, into res. The strategy — dense
// array-indexed banks for u8/u16 keys, the hash table otherwise — is
// recorded in res.Strategy and the EXPLAIN step. Scratch comes from the
// engine's striped pools; with res reused across calls, a steady-state run
// allocates nothing.
func (pc *PointCloud) GroupedAggregate(rows []int, key string, specs []GroupedAggSpec, res *GroupedResult, ex *Explain) error {
	return pc.GroupedAggregateRun(nil, rows, key, specs, res, ex)
}

// groupPassCheckpoint is the block boundary between grouped-aggregation
// passes (this layer executes operator-at-a-time, so "block" here is one
// full accumulate pass): a fault-injection point plus one cancellation
// poll. Pooled scratch is recycled by the caller before the error
// propagates.
func groupPassCheckpoint(run *Run) error {
	if err := faultpoint.Hit("engine.groupagg.pass"); err != nil {
		return err
	}
	if run.Cancelled() {
		return cancel.ErrCancelled
	}
	return nil
}

// GroupedAggregateRun is GroupedAggregate under a query lifecycle: the
// pooled accumulator banks and hash scratch register in run's release
// list, and the pass boundaries poll the run's cancellation token — a
// fired context stops the aggregation between passes with every buffer
// back in its pool and res in an unspecified (but safe to reuse) state.
func (pc *PointCloud) GroupedAggregateRun(run *Run, rows []int, key string, specs []GroupedAggSpec, res *GroupedResult, ex *Explain) error {
	start := time.Now()
	keyCol := pc.Column(key)
	if keyCol == nil {
		return fmt.Errorf("engine: unknown group key column %q", key)
	}
	n := len(rows)
	all := rows == nil
	if all {
		n = pc.Len()
	}
	// Validate specs before touching any scratch: value columns must exist
	// and the function must be known (count ignores its column).
	for _, s := range specs {
		switch s.Fn {
		case AggCount:
		case AggSum, AggAvg, AggMin, AggMax:
			if pc.Column(s.Column) == nil {
				return fmt.Errorf("engine: unknown aggregate column %q", s.Column)
			}
		default:
			return fmt.Errorf("engine: unknown aggregate %d", s.Fn)
		}
	}
	res.reset(len(specs))

	// Strategy choice is independent of parallelism (so the recorded
	// strategy and the output match the serial path exactly); within a
	// strategy, large inputs fan across the resident worker set when every
	// spec merges exactly across partitions (specsMergeExact — sum/avg
	// plans stay serial to keep sums bit-identical to the ascending fold).
	par := 1
	if specsMergeExact(specs) {
		par = pc.morselDegree(run, n)
	}

	switch k := keyCol.(type) {
	case *colstore.U8Column:
		if err := groupDense8(run, pc, k.Values(), rows, all, n, specs, res, par); err != nil {
			return err
		}
		res.Strategy = GroupDense
	case *colstore.U16Column:
		if n >= (1<<16)/denseMinRowsPerSlot {
			if err := groupDense16(run, pc, k.Values(), rows, all, n, specs, res, par); err != nil {
				return err
			}
			res.Strategy = GroupDense
			break
		}
		if err := groupHashed(run, pc, keyCol, rows, all, n, specs, res, par); err != nil {
			return err
		}
		res.Strategy = GroupHash
	default:
		if err := groupHashed(run, pc, keyCol, rows, all, n, specs, res, par); err != nil {
			return err
		}
		res.Strategy = GroupHash
	}
	if ex != nil {
		detail := fmt.Sprintf("%s key %s, %d aggs", res.Strategy, key, len(specs))
		if par > 1 {
			detail = fmt.Sprintf("%s [par %d]", detail, par)
		}
		ex.Add(opGroupAgg, detail, n, len(res.Keys), time.Since(start))
	}
	return nil
}

// groupDense8 / groupDense16 / groupHashed pick the parallel or serial
// arm of their strategy by degree.
func groupDense8(run *Run, pc *PointCloud, keys []uint8, rows []int, all bool, n int, specs []GroupedAggSpec, res *GroupedResult, par int) error {
	if par > 1 {
		return denseGroupedMorsel(run, pc, keys, nil, 1<<8, rows, all, n, specs, res, par)
	}
	return denseGrouped(run, pc, keys, 1<<8, rows, all, n, specs, res)
}

func groupDense16(run *Run, pc *PointCloud, keys []uint16, rows []int, all bool, n int, specs []GroupedAggSpec, res *GroupedResult, par int) error {
	if par > 1 {
		return denseGroupedMorsel(run, pc, nil, keys, 1<<16, rows, all, n, specs, res, par)
	}
	return denseGrouped(run, pc, keys, 1<<16, rows, all, n, specs, res)
}

func groupHashed(run *Run, pc *PointCloud, keyCol colstore.Column, rows []int, all bool, n int, specs []GroupedAggSpec, res *GroupedResult, par int) error {
	if par > 1 {
		return hashGroupedMorsel(run, pc, keyCol, rows, all, n, specs, res, par)
	}
	return hashGrouped(run, pc, keyCol, rows, all, n, specs, res)
}

// --- dense path ----------------------------------------------------------------

// denseKey covers the key column element types with array-indexable domains.
type denseKey interface {
	~uint8 | ~uint16
}

// denseGrouped is the array-indexed strategy: one pooled bank of dom slots
// per aggregate (plus the shared count bank), one column-at-a-time pass per
// aggregate, then an ascending domain scan emits the non-empty groups — the
// keys therefore come out already in FloatOrderKey order.
func denseGrouped[K denseKey](run *Run, pc *PointCloud, keys []K, dom int, rows []int, all bool, n int, specs []GroupedAggSpec, res *GroupedResult) error {
	banks := run.trackF64(getF64Buf(dom * (1 + len(specs))))[:dom*(1+len(specs))]
	if err := groupPassCheckpoint(run); err != nil {
		run.recycleF64(banks)
		return err
	}
	cnt := banks[:dom]
	for i := range cnt {
		cnt[i] = 0
	}
	denseCount(keys, rows, all, cnt)
	for j, s := range specs {
		if err := groupPassCheckpoint(run); err != nil {
			run.recycleF64(banks)
			return err
		}
		bank := banks[(1+j)*dom : (2+j)*dom]
		switch s.Fn {
		case AggCount:
			// Served from the shared count bank at emit time.
		case AggMin:
			for i := range bank {
				bank[i] = math.Inf(1)
			}
			denseAccumCol(keys, pc.Column(s.Column), rows, all, AggMin, bank)
		case AggMax:
			for i := range bank {
				bank[i] = math.Inf(-1)
			}
			denseAccumCol(keys, pc.Column(s.Column), rows, all, AggMax, bank)
		default: // AggSum, AggAvg
			for i := range bank {
				bank[i] = 0
			}
			denseAccumCol(keys, pc.Column(s.Column), rows, all, AggSum, bank)
		}
	}
	for k := 0; k < dom; k++ {
		c := cnt[k]
		if c == 0 {
			continue
		}
		res.Keys = append(res.Keys, float64(k))
		for j, s := range specs {
			v := banks[(1+j)*dom+k]
			switch s.Fn {
			case AggCount:
				v = c
			case AggAvg:
				v /= c
			}
			res.Cols[j] = append(res.Cols[j], v)
		}
	}
	run.recycleF64(banks)
	return nil
}

// denseCount is the group-size pass: one increment per selected row into the
// key-indexed count bank.
func denseCount[K denseKey](keys []K, rows []int, all bool, cnt []float64) {
	if all {
		for _, k := range keys {
			cnt[k]++
		}
		return
	}
	for _, r := range rows {
		cnt[keys[r]]++
	}
}

// denseAccumCol dispatches one accumulate pass to the value column's
// concrete type; the default arm preserves Column.Value semantics for types
// without a typed fast path.
func denseAccumCol[K denseKey](keys []K, col colstore.Column, rows []int, all bool, fn AggFunc, bank []float64) {
	switch c := col.(type) {
	case *colstore.F64Column:
		denseAccum(keys, c.Values(), rows, all, fn, bank)
	case *colstore.I64Column:
		denseAccum(keys, c.Values(), rows, all, fn, bank)
	case *colstore.I32Column:
		denseAccum(keys, c.Values(), rows, all, fn, bank)
	case *colstore.U16Column:
		denseAccum(keys, c.Values(), rows, all, fn, bank)
	case *colstore.U8Column:
		denseAccum(keys, c.Values(), rows, all, fn, bank)
	default:
		if all {
			for i := range keys {
				accumOne(fn, bank, int(keys[i]), col.Value(i))
			}
			return
		}
		for _, r := range rows {
			accumOne(fn, bank, int(keys[r]), col.Value(r))
		}
	}
}

// denseAccum is the monomorphic scatter-accumulate loop: for each selected
// row, fold the float64-widened value into the key-indexed slot. The fn
// switch is hoisted above the loops so each shape scans branch-predictably.
func denseAccum[K denseKey, V number](keys []K, vals []V, rows []int, all bool, fn AggFunc, bank []float64) {
	switch fn {
	case AggMin:
		if all {
			for i, v := range vals {
				f := float64(v)
				if f < bank[keys[i]] {
					bank[keys[i]] = f
				}
			}
			return
		}
		for _, r := range rows {
			f := float64(vals[r])
			if f < bank[keys[r]] {
				bank[keys[r]] = f
			}
		}
	case AggMax:
		if all {
			for i, v := range vals {
				f := float64(v)
				if f > bank[keys[i]] {
					bank[keys[i]] = f
				}
			}
			return
		}
		for _, r := range rows {
			f := float64(vals[r])
			if f > bank[keys[r]] {
				bank[keys[r]] = f
			}
		}
	default: // AggSum (AggAvg divides at emit)
		if all {
			for i, v := range vals {
				bank[keys[i]] += float64(v)
			}
			return
		}
		for _, r := range rows {
			bank[keys[r]] += float64(vals[r])
		}
	}
}

// accumOne is the generic-column fallback of one accumulate step.
func accumOne(fn AggFunc, bank []float64, k int, v float64) {
	switch fn {
	case AggMin:
		if v < bank[k] {
			bank[k] = v
		}
	case AggMax:
		if v > bank[k] {
			bank[k] = v
		}
	default:
		bank[k] += v
	}
}

// --- hash path -----------------------------------------------------------------

// groupHash is the open-addressed group table of the hash strategy. All
// three buffers are pooled; the struct itself lives on the caller's stack.
// table holds slot+1 (0 = empty) indexed by the canonical key bits' hash;
// keys and cnt are indexed by slot in first-appearance order.
type groupHash struct {
	table []int
	keys  []float64
	cnt   []float64
}

// hashSeed is the multiplicative mixer of the canonical key bits
// (Fibonacci hashing); the table-sized mask is applied by the probe loops.
const hashSeed = 0x9E3779B97F4A7C15

// slotOf returns the group slot of key value v, inserting a new slot (and
// growing the table at 50% load) on first appearance.
func (g *groupHash) slotOf(v float64) int {
	b := canonicalBits(v)
	mask := len(g.table) - 1
	i := int((b*hashSeed)>>33) & mask
	for {
		s := g.table[i]
		if s == 0 {
			if 2*(len(g.keys)+1) > len(g.table) {
				g.grow()
				mask = len(g.table) - 1
				i = int((b*hashSeed)>>33) & mask
				for g.table[i] != 0 {
					i = (i + 1) & mask
				}
			}
			g.keys = append(g.keys, v)
			g.cnt = append(g.cnt, 0)
			g.table[i] = len(g.keys)
			return len(g.keys) - 1
		}
		if canonicalBits(g.keys[s-1]) == b {
			return s - 1
		}
		i = (i + 1) & mask
	}
}

// grow rehashes into a table four times the size.
func (g *groupHash) grow() {
	old := g.table
	next := getRowBuf(4 * len(old))[:4*len(old)]
	for i := range next {
		next[i] = 0
	}
	mask := len(next) - 1
	for s, k := range g.keys {
		i := int((canonicalBits(k)*hashSeed)>>33) & mask
		for next[i] != 0 {
			i = (i + 1) & mask
		}
		next[i] = s + 1
	}
	g.table = next
	RecycleRows(old)
}

// hashGrouped is the general-key strategy: pass 0 assigns a group slot to
// every selected row (recorded in a selection-aligned slot vector) while
// counting group sizes; each aggregate then runs one re-hash-free
// scatter-accumulate pass over the slot vector. Groups are emitted in
// first-appearance order and sorted into FloatOrderKey order at the end.
func hashGrouped(run *Run, pc *PointCloud, keyCol colstore.Column, rows []int, all bool, n int, specs []GroupedAggSpec, res *GroupedResult) error {
	tabSize := 1 << 10
	for tabSize < 4*n && tabSize < 1<<20 {
		tabSize <<= 1
	}
	// table, keys and cnt all grow during pass 0 (table through grow(),
	// keys/cnt through slotOf's appends), which reallocates their backing
	// arrays — so they register in the release list only after the pass
	// (track-after-production). slots has a fixed bound and tracks at
	// acquisition.
	g := groupHash{
		table: getRowBuf(tabSize)[:tabSize],
		keys:  getF64Buf(64),
		cnt:   getF64Buf(64),
	}
	for i := range g.table {
		g.table[i] = 0
	}
	slots := run.TrackRows(getRowBuf(n))[:n]
	hashKeyCol(keyCol, rows, all, &g, slots)
	run.TrackRows(g.table)
	run.trackF64(g.keys)
	run.trackF64(g.cnt)

	groups := len(g.keys)
	// 2× groups: a fused min/max pair accumulates its lo and hi banks in
	// one gather pass over the shared value column.
	bank := run.trackF64(getF64Buf(2 * groups))
	var fusedDone uint64
	for j, s := range specs {
		if j < 64 && fusedDone&(1<<uint(j)) != 0 {
			continue // emitted by an earlier partner's fused pass
		}
		if err := groupPassCheckpoint(run); err != nil {
			run.recycleF64(bank)
			run.recycleF64(g.keys)
			run.recycleF64(g.cnt)
			run.RecycleRows(g.table)
			run.RecycleRows(slots)
			return err
		}
		if s.Fn == AggCount {
			res.Cols[j] = append(res.Cols[j], g.cnt...)
			continue
		}
		if s.Fn == AggMin || s.Fn == AggMax {
			if k := fusePartner(specs, j); k >= 0 {
				lo := bank[:groups]
				hi := bank[groups : 2*groups]
				for i := range lo {
					lo[i] = math.Inf(1)
					hi[i] = math.Inf(-1)
				}
				hashAccumMinMaxCol(pc.Column(s.Column), rows, all, slots, lo, hi)
				jMin, jMax := j, k
				if s.Fn == AggMax {
					jMin, jMax = k, j
				}
				res.Cols[jMin] = append(res.Cols[jMin], lo...)
				res.Cols[jMax] = append(res.Cols[jMax], hi...)
				fusedDone |= 1 << uint(k)
				continue
			}
		}
		b := bank[:groups]
		switch s.Fn {
		case AggMin:
			for i := range b {
				b[i] = math.Inf(1)
			}
		case AggMax:
			for i := range b {
				b[i] = math.Inf(-1)
			}
		default:
			for i := range b {
				b[i] = 0
			}
		}
		hashAccumCol(pc.Column(s.Column), rows, all, slots, s.Fn, b)
		if s.Fn == AggAvg {
			for i := range b {
				b[i] /= g.cnt[i]
			}
		}
		res.Cols[j] = append(res.Cols[j], b...)
	}
	res.Keys = append(res.Keys, g.keys...)
	run.recycleF64(bank)
	run.recycleF64(g.keys)
	run.recycleF64(g.cnt)
	run.RecycleRows(g.table)
	run.RecycleRows(slots)
	sortGrouped(res)
	return nil
}

// hashKeyCol dispatches pass 0 to the key column's concrete type.
func hashKeyCol(col colstore.Column, rows []int, all bool, g *groupHash, slots []int) {
	switch c := col.(type) {
	case *colstore.F64Column:
		hashKeys(c.Values(), rows, all, g, slots)
	case *colstore.I64Column:
		hashKeys(c.Values(), rows, all, g, slots)
	case *colstore.I32Column:
		hashKeys(c.Values(), rows, all, g, slots)
	case *colstore.U16Column:
		hashKeys(c.Values(), rows, all, g, slots)
	case *colstore.U8Column:
		hashKeys(c.Values(), rows, all, g, slots)
	default:
		for i := range slots {
			r := i
			if !all {
				r = rows[i]
			}
			s := g.slotOf(col.Value(r))
			g.cnt[s]++
			slots[i] = s
		}
	}
}

// hashKeys assigns slots for one key column: the float64 widening matches
// Column.Value, so an i64 key groups exactly as the row-at-a-time path does
// (lossy widening included).
func hashKeys[K number](vals []K, rows []int, all bool, g *groupHash, slots []int) {
	for i := range slots {
		r := i
		if !all {
			r = rows[i]
		}
		s := g.slotOf(float64(vals[r]))
		g.cnt[s]++
		slots[i] = s
	}
}

// fusePartner returns the index k > j of the first spec forming a fused
// min/max pair with specs[j] — the opposite extreme over the same value
// column — or -1. A fused pair shares one gather pass over the column
// (hashAccumMinMax) instead of two. Sum/avg never fuse (their pass shape
// differs and sums stay pinned to the ascending fold); indices cap at 64
// so the caller's done-bitmask covers every fusable spec.
func fusePartner(specs []GroupedAggSpec, j int) int {
	if j >= 64 {
		return -1
	}
	want := AggMin
	if specs[j].Fn == AggMin {
		want = AggMax
	}
	for k := j + 1; k < len(specs) && k < 64; k++ {
		if specs[k].Fn == want && specs[k].Column == specs[j].Column {
			return k
		}
	}
	return -1
}

// hashAccumCol dispatches one accumulate pass to the value column type.
func hashAccumCol(col colstore.Column, rows []int, all bool, slots []int, fn AggFunc, bank []float64) {
	switch c := col.(type) {
	case *colstore.F64Column:
		hashAccum(c.Values(), rows, all, slots, fn, bank)
	case *colstore.I64Column:
		hashAccum(c.Values(), rows, all, slots, fn, bank)
	case *colstore.I32Column:
		hashAccum(c.Values(), rows, all, slots, fn, bank)
	case *colstore.U16Column:
		hashAccum(c.Values(), rows, all, slots, fn, bank)
	case *colstore.U8Column:
		hashAccum(c.Values(), rows, all, slots, fn, bank)
	default:
		for i, s := range slots {
			r := i
			if !all {
				r = rows[i]
			}
			accumOne(fn, bank, s, col.Value(r))
		}
	}
}

// hashAccum is the slot-vector scatter-accumulate loop of the hash path.
func hashAccum[V number](vals []V, rows []int, all bool, slots []int, fn AggFunc, bank []float64) {
	switch fn {
	case AggMin:
		for i, s := range slots {
			r := i
			if !all {
				r = rows[i]
			}
			f := float64(vals[r])
			if f < bank[s] {
				bank[s] = f
			}
		}
	case AggMax:
		for i, s := range slots {
			r := i
			if !all {
				r = rows[i]
			}
			f := float64(vals[r])
			if f > bank[s] {
				bank[s] = f
			}
		}
	default: // AggSum / AggAvg
		for i, s := range slots {
			r := i
			if !all {
				r = rows[i]
			}
			bank[s] += float64(vals[r])
		}
	}
}

// hashAccumMinMaxCol dispatches one fused min+max gather pass to the
// value column type.
func hashAccumMinMaxCol(col colstore.Column, rows []int, all bool, slots []int, lo, hi []float64) {
	switch c := col.(type) {
	case *colstore.F64Column:
		hashAccumMinMax(c.Values(), rows, all, slots, lo, hi)
	case *colstore.I64Column:
		hashAccumMinMax(c.Values(), rows, all, slots, lo, hi)
	case *colstore.I32Column:
		hashAccumMinMax(c.Values(), rows, all, slots, lo, hi)
	case *colstore.U16Column:
		hashAccumMinMax(c.Values(), rows, all, slots, lo, hi)
	case *colstore.U8Column:
		hashAccumMinMax(c.Values(), rows, all, slots, lo, hi)
	default:
		for i, s := range slots {
			r := i
			if !all {
				r = rows[i]
			}
			v := col.Value(r)
			if v < lo[s] {
				lo[s] = v
			}
			if v > hi[s] {
				hi[s] = v
			}
		}
	}
}

// hashAccumMinMax is the fused gather loop of a min/max pair: one read of
// the value column feeds two independent strict compares, so each bank is
// bit-identical to its own single-spec hashAccum pass — NaN loses both
// compares, ±Inf seeds survive empty groups, and the fold order over rows
// is unchanged.
func hashAccumMinMax[V number](vals []V, rows []int, all bool, slots []int, lo, hi []float64) {
	for i, s := range slots {
		r := i
		if !all {
			r = rows[i]
		}
		f := float64(vals[r])
		if f < lo[s] {
			lo[s] = f
		}
		if f > hi[s] {
			hi[s] = f
		}
	}
}

// sortGrouped orders the result groups by FloatOrderKey, permuting the key
// and every aggregate column together. Heapsort keeps it allocation-free
// (sort.Interface would box the sorter); grouped results are small relative
// to the scan that produced them, so the non-stable order is irrelevant —
// keys are unique, making the sort a permutation with a single fixed point.
func sortGrouped(r *GroupedResult) {
	n := len(r.Keys)
	for start := n/2 - 1; start >= 0; start-- {
		siftGrouped(r, start, n)
	}
	for end := n - 1; end > 0; end-- {
		swapGrouped(r, 0, end)
		siftGrouped(r, 0, end)
	}
}

func siftGrouped(r *GroupedResult, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && FloatOrderKey(r.Keys[child]) < FloatOrderKey(r.Keys[child+1]) {
			child++
		}
		if FloatOrderKey(r.Keys[root]) >= FloatOrderKey(r.Keys[child]) {
			return
		}
		swapGrouped(r, root, child)
		root = child
	}
}

func swapGrouped(r *GroupedResult, i, j int) {
	r.Keys[i], r.Keys[j] = r.Keys[j], r.Keys[i]
	for _, c := range r.Cols {
		c[i], c[j] = c[j], c[i]
	}
}

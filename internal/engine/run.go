// Per-run query lifecycle state: the cancellation token and the release
// list that makes pool accounting panic-safe. Every pooled buffer an
// execution path acquires is registered here (track-after-production: a
// buffer is tracked only once the call that could still grow it has
// returned, because append growth reallocates the backing array and
// tracking is by backing-array identity). Recycling through the Run
// untracks; whatever is still tracked when a run unwinds — error or
// panic — is drained back to its pool in one sweep, so the striped
// pools' Outstanding counters return to their pre-query values on every
// exit path. This is the generalisation of the PR 2 error-path recycling
// audit: instead of auditing each return, the invariant is structural.
//
// A nil *Run degrades every method to the untracked behaviour (plain
// pool put / no-op track / never cancelled), so engine entry points keep
// working for callers outside the SQL lifecycle (benchmarks, tests,
// ad-hoc tools) without a second code path.
package engine

import (
	"unsafe"

	"gisnav/internal/cancel"
	"gisnav/internal/colstore"
)

// Run is one query execution's lifecycle record: the cooperative
// cancellation token kernel loops poll at block boundaries, plus the
// release list of pooled buffers currently owned by the run. It is
// reusable: Drain + Bind between runs, so a pooled Run record adds no
// steady-state allocations.
type Run struct {
	tok    cancel.Token
	rows   [][]int
	ranges [][]colstore.Range
	f64    [][]float64
	par    int
}

// Bind points the run's cancellation token at done (nil = never
// cancelled) and clears any previous verdict.
func (r *Run) Bind(done <-chan struct{}) { r.tok.Reset(done) }

// Token exposes the run's cancellation token for kernel-level plumbing
// (KernelArgs, grid.Options). Nil-safe: a nil run yields a nil token,
// which never reports cancelled.
func (r *Run) Token() *cancel.Token {
	if r == nil {
		return nil
	}
	return &r.tok
}

// Cancelled reports whether the run's context fired. Nil-safe.
func (r *Run) Cancelled() bool {
	if r == nil {
		return false
	}
	return r.tok.Cancelled()
}

// SetMaxParallel caps the morsel fan-out degree of this run's operators:
// n partitions at most, 1 forcing the serial path, 0 (the default)
// deferring to the table's auto-parallel setting. The engine clamps the
// effective degree per operator from the row count (small selections stay
// serial; see morselDegree). Nil-safe no-op, so callers can thread an
// optional run unconditionally.
func (r *Run) SetMaxParallel(n int) {
	if r != nil {
		r.par = n
	}
}

// MaxParallel reports the run's degree cap (0 = unset). Nil-safe.
func (r *Run) MaxParallel() int {
	if r == nil {
		return 0
	}
	return r.par
}

// sameBase reports whether two slices share a backing array. Tracking
// identity is the base pointer: in-place narrowing (rows[:0] compaction)
// preserves it, growth does not — hence track-after-production.
func sameBase[T any](a, b []T) bool {
	return unsafe.SliceData(a) == unsafe.SliceData(b)
}

// track appends b to list unless it cannot be recycled anyway (cap 0 —
// the pool ignores such buffers, and their base pointer is unspecified).
func track[T any](list [][]T, b []T) [][]T {
	if cap(b) == 0 {
		return list
	}
	return append(list, b)
}

// untrack removes the entry sharing b's backing array, scanning from the
// end (LIFO: the buffer being recycled is usually the last acquired).
func untrack[T any](list [][]T, b []T) [][]T {
	for i := len(list) - 1; i >= 0; i-- {
		if sameBase(list[i], b) {
			copy(list[i:], list[i+1:])
			list[len(list)-1] = nil
			return list[:len(list)-1]
		}
	}
	return list
}

// TrackRows registers a selection vector in the release list and returns
// it, so producer calls wrap directly. Nil-safe (no-op on a nil run).
func (r *Run) TrackRows(b []int) []int {
	if r != nil {
		r.rows = track(r.rows, b)
	}
	return b
}

// AcquireRows draws a tracked selection vector from the engine's pool.
// The capacity hint must cover everything the caller appends: growth
// past it would reallocate the backing array out from under the release
// list. Producers that cannot bound their output acquire untracked and
// TrackRows the final slice instead.
func (r *Run) AcquireRows(capHint int) []int { return r.TrackRows(getRowBuf(capHint)) }

// SwapRows re-points old's release-list entry at new. Producers that hand
// a pooled buffer to a call that may grow it track the buffer BEFORE the
// call (so a panic inside the call cannot strand it between acquisition
// and tracking) and swap in the call's final slice afterwards, whose
// backing array may have moved. When growth abandoned the original, its
// pool Get stays balanced by the eventual put of the final slice — the
// striped pools account by count, not identity. Nil-safe.
func (r *Run) SwapRows(old, new []int) []int {
	if r == nil || sameBase(old, new) {
		return new
	}
	r.rows = untrack(r.rows, old)
	r.rows = track(r.rows, new)
	return new
}

// RecycleRows returns a selection vector to the pool and removes it from
// the release list. On a nil run this is plain RecycleRows.
func (r *Run) RecycleRows(b []int) {
	if r != nil {
		r.rows = untrack(r.rows, b)
	}
	rowPool.Put(b)
}

// trackRanges / recycleRanges are the candidate-range counterparts.
func (r *Run) trackRanges(b []colstore.Range) []colstore.Range {
	if r != nil {
		r.ranges = track(r.ranges, b)
	}
	return b
}

func (r *Run) recycleRanges(b []colstore.Range) {
	if r != nil {
		r.ranges = untrack(r.ranges, b)
	}
	rangePool.Put(b)
}

// trackF64 / recycleF64Run are the float64-scratch counterparts
// (grouped-aggregate banks, hash key stores).
func (r *Run) trackF64(b []float64) []float64 {
	if r != nil {
		r.f64 = track(r.f64, b)
	}
	return b
}

func (r *Run) recycleF64(b []float64) {
	if r != nil {
		r.f64 = untrack(r.f64, b)
	}
	f64Pool.Put(b)
}

// TrackF64 registers a float64 scratch buffer in the release list and
// returns it — the exported form for layers above the engine (the
// pyramid's per-query fold banks). Nil-safe.
func (r *Run) TrackF64(b []float64) []float64 { return r.trackF64(b) }

// AcquireF64 draws a tracked float64 scratch buffer from the engine's
// pool. As with AcquireRows, the capacity hint must cover everything the
// caller appends. Buffer contents are stale: initialise every element
// before reading.
func (r *Run) AcquireF64(capHint int) []float64 { return r.trackF64(getF64Buf(capHint)) }

// RecycleF64 returns a float64 buffer to the pool and removes it from the
// release list. On a nil run this is plain RecycleF64.
func (r *Run) RecycleF64(b []float64) { r.recycleF64(b) }

// Live reports how many pooled buffers the run currently owns — zero
// after a clean run, and the quantity Drain returns to the pools after
// an unwind. Nil-safe.
func (r *Run) Live() int {
	if r == nil {
		return 0
	}
	return len(r.rows) + len(r.ranges) + len(r.f64)
}

// Drain returns every still-tracked buffer to its pool — the unwind
// sweep run on error and panic paths. Idempotent; nil-safe.
func (r *Run) Drain() {
	if r == nil {
		return
	}
	for i := len(r.rows) - 1; i >= 0; i-- {
		rowPool.Put(r.rows[i])
		r.rows[i] = nil
	}
	r.rows = r.rows[:0]
	for i := len(r.ranges) - 1; i >= 0; i-- {
		rangePool.Put(r.ranges[i])
		r.ranges[i] = nil
	}
	r.ranges = r.ranges[:0]
	for i := len(r.f64) - 1; i >= 0; i-- {
		f64Pool.Put(r.f64[i])
		r.f64[i] = nil
	}
	r.f64 = r.f64[:0]
}

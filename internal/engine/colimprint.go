package engine

import (
	"fmt"
	"sync"
	"time"

	"gisnav/internal/colstore"
	"gisnav/internal/grid"
	"gisnav/internal/imprints"
)

// Column imprints are not specific to coordinates: any numeric column of
// the flat table can carry one (the SIGMOD'13 index is a general secondary
// index; the paper deploys it on X and Y for the spatial filter). The
// engine builds thematic imprints lazily per column, giving range
// predicates like "z BETWEEN 0 AND 5" or "intensity > 900" the same
// cacheline-pruning treatment as the spatial filter.

// EnsureColumnImprint returns the imprint of the named column, building it
// on first use. Imprints built here are dropped by InvalidateIndexes.
func (pc *PointCloud) EnsureColumnImprint(name string) (*imprints.Imprints, error) {
	col := pc.Column(name)
	if col == nil {
		return nil, fmt.Errorf("engine: unknown column %q", name)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.colImprints == nil {
		pc.colImprints = map[string]*imprints.Imprints{}
	}
	if im, ok := pc.colImprints[name]; ok {
		return im, nil
	}
	im, err := imprints.BuildColumn(col, pc.ImprintOpts)
	if err != nil {
		return nil, err
	}
	pc.colImprints[name] = im
	return im, nil
}

// columnImprintIfBuilt returns the named column's imprint only when it has
// already been built — a cheap lookup used for selectivity hints, never
// triggering an index build.
func (pc *PointCloud) columnImprintIfBuilt(name string) *imprints.Imprints {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.colImprints[name]
}

// kernelParallelRows is the candidate-row count above which the indexed
// range filter fans out across cores when pc.Parallel is set. It mirrors
// grid.RefineAuto's crossover: below it, goroutine fan-out costs more than
// it saves.
const kernelParallelRows = 1 << 17

// FilterRangeIndexed returns the rows whose column value lies in [lo, hi],
// using the column's imprint for cacheline pruning followed by an exact
// range kernel over the candidate blocks. The result equals a full-column
// scan. The returned vector is pooled; RecycleRows hands it back.
func (pc *PointCloud) FilterRangeIndexed(name string, lo, hi float64, ex *Explain) ([]int, error) {
	im, err := pc.EnsureColumnImprint(name)
	if err != nil {
		return nil, err
	}
	col := pc.Column(name)
	start := time.Now()
	cand := im.CandidateRangesInto(lo, hi, getRangeBuf(0))
	defer RecycleRanges(cand)
	if ex != nil {
		ex.Add(opImprintsFilter, fmt.Sprintf("%s in [%g, %g]", name, lo, hi),
			pc.Len(), colstore.RangesLen(cand), time.Since(start))
	}

	start = time.Now()
	k := pc.compileRangeCached(col, name)
	a := k.Bind(lo, hi)
	rows := getRowBuf(im.EstimateRows(lo, hi))
	if pc.Parallel && colstore.RangesLen(cand) >= kernelParallelRows {
		rows = filterBlocksParallel(k, a, cand, rows)
	} else {
		for _, r := range cand {
			rows = k.FilterBlock(a, r.Start, r.End, rows)
		}
	}
	if ex != nil {
		ex.Add(opRefineRange, fmt.Sprintf("exact tests on %s", name),
			colstore.RangesLen(cand), len(rows), time.Since(start))
	}
	return rows, nil
}

// filterBlocksParallel partitions the candidate ranges across workers, runs
// the block kernel on each partition into its own pooled vector, and
// concatenates the partial results in partition order. Partitions cover
// disjoint, ascending row ranges, so the result is bit-identical to the
// sequential pass.
func filterBlocksParallel(k *Kernel, a KernelArgs, cand []colstore.Range, out []int) []int {
	parts := grid.SplitRanges(cand, 0)
	if len(parts) == 1 {
		for _, r := range parts[0] {
			out = k.FilterBlock(a, r.Start, r.End, out)
		}
		return out
	}
	results := make([][]int, len(parts))
	var wg sync.WaitGroup
	for w := range parts {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := getRowBuf(colstore.RangesLen(parts[w]))
			for _, r := range parts[w] {
				buf = k.FilterBlock(a, r.Start, r.End, buf)
			}
			results[w] = buf
		}(w)
	}
	wg.Wait()
	for _, res := range results {
		out = append(out, res...)
		RecycleRows(res)
	}
	return out
}

// FilterRangeScan is the unindexed comparison arm: a full-column scan
// through the same compiled range kernel, with no imprint pruning. The
// returned vector is pooled; RecycleRows hands it back.
func (pc *PointCloud) FilterRangeScan(name string, lo, hi float64, ex *Explain) ([]int, error) {
	col := pc.Column(name)
	if col == nil {
		return nil, fmt.Errorf("engine: unknown column %q", name)
	}
	start := time.Now()
	k := pc.compileRangeCached(col, name)
	rows := k.FilterBlock(k.Bind(lo, hi), 0, col.Len(), getRowBuf(col.Len()))
	if ex != nil {
		ex.Add(opScanRange, fmt.Sprintf("%s in [%g, %g]", name, lo, hi),
			pc.Len(), len(rows), time.Since(start))
	}
	return rows, nil
}

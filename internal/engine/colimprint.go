package engine

import (
	"fmt"
	"time"

	"gisnav/internal/colstore"
	"gisnav/internal/imprints"
)

// Column imprints are not specific to coordinates: any numeric column of
// the flat table can carry one (the SIGMOD'13 index is a general secondary
// index; the paper deploys it on X and Y for the spatial filter). The
// engine builds thematic imprints lazily per column, giving range
// predicates like "z BETWEEN 0 AND 5" or "intensity > 900" the same
// cacheline-pruning treatment as the spatial filter.

// EnsureColumnImprint returns the imprint of the named column, building it
// on first use. Imprints built here are dropped by InvalidateIndexes.
func (pc *PointCloud) EnsureColumnImprint(name string) (*imprints.Imprints, error) {
	col := pc.Column(name)
	if col == nil {
		return nil, fmt.Errorf("engine: unknown column %q", name)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.colImprints == nil {
		pc.colImprints = map[string]*imprints.Imprints{}
	}
	if im, ok := pc.colImprints[name]; ok {
		return im, nil
	}
	im, err := imprints.BuildColumn(col, pc.ImprintOpts)
	if err != nil {
		return nil, err
	}
	pc.colImprints[name] = im
	return im, nil
}

// columnImprintIfBuilt returns the named column's imprint only when it has
// already been built — a cheap lookup used for selectivity hints, never
// triggering an index build.
func (pc *PointCloud) columnImprintIfBuilt(name string) *imprints.Imprints {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.colImprints[name]
}

// wideSelectivity reports whether an estimated match count is so large a
// fraction of the table that imprint candidate pruning cannot pay for its
// own dispatch: at half the rows or more, nearly every cacheline survives
// pruning anyway, and per-range dispatch plus selection-vector growth made
// the wide-BETWEEN arm of BENCH_filter slower than a plain interface scan.
// Such predicates drive the block kernel over the full column instead.
func wideSelectivity(est, n int) bool { return n > 0 && 2*est >= n }

// FilterRangeIndexed returns the rows whose column value lies in [lo, hi],
// using the column's imprint for cacheline pruning followed by an exact
// range kernel over the candidate blocks. Wide predicates (imprint
// estimate at least half the table) skip candidate-range generation and
// drive the kernel over the full column; large candidate sets fan across
// the resident worker set (morsel.go). The result equals a full-column
// scan. The returned vector is pooled; RecycleRows hands it back.
func (pc *PointCloud) FilterRangeIndexed(name string, lo, hi float64, ex *Explain) ([]int, error) {
	im, err := pc.EnsureColumnImprint(name)
	if err != nil {
		return nil, err
	}
	col := pc.Column(name)
	start := time.Now()
	n := pc.Len()
	est := im.EstimateRows(lo, hi)
	if est > n {
		est = n
	}
	var cand []colstore.Range
	if wideSelectivity(est, n) {
		cand = append(getRangeBuf(1), colstore.Range{End: n})
	} else {
		cand = im.CandidateRangesInto(lo, hi, getRangeBuf(0))
	}
	defer RecycleRanges(cand)
	if ex != nil {
		ex.Add(opImprintsFilter, fmt.Sprintf("%s in [%g, %g]", name, lo, hi),
			n, colstore.RangesLen(cand), time.Since(start))
	}

	start = time.Now()
	k := pc.compileRangeCached(col, name)
	a := k.Bind(lo, hi)
	// The imprint estimate bounds the match count, so the vector is sized
	// once and the block drive (serial or merged) appends without growth.
	rows := getRowBuf(est)
	deg := pc.morselDegree(nil, colstore.RangesLen(cand))
	if deg > 1 {
		rows, err = filterBlocksMorsel(k, a, cand, deg, rows)
		if err != nil {
			RecycleRows(rows)
			return nil, err
		}
	} else {
		for _, r := range cand {
			rows = k.FilterBlock(a, r.Start, r.End, rows)
		}
	}
	if ex != nil {
		detail := fmt.Sprintf("exact tests on %s", name)
		if deg > 1 {
			detail = fmt.Sprintf("%s [par %d]", detail, deg)
		}
		ex.Add(opRefineRange, detail, colstore.RangesLen(cand), len(rows), time.Since(start))
	}
	return rows, nil
}

// FilterRangeScan is the unindexed comparison arm: a full-column scan
// through the same compiled range kernel, with no imprint pruning. The
// returned vector is pooled; RecycleRows hands it back.
func (pc *PointCloud) FilterRangeScan(name string, lo, hi float64, ex *Explain) ([]int, error) {
	col := pc.Column(name)
	if col == nil {
		return nil, fmt.Errorf("engine: unknown column %q", name)
	}
	start := time.Now()
	k := pc.compileRangeCached(col, name)
	rows := k.FilterBlock(k.Bind(lo, hi), 0, col.Len(), getRowBuf(col.Len()))
	if ex != nil {
		ex.Add(opScanRange, fmt.Sprintf("%s in [%g, %g]", name, lo, hi),
			pc.Len(), len(rows), time.Since(start))
	}
	return rows, nil
}

package engine

import (
	"fmt"
	"time"

	"gisnav/internal/colstore"
	"gisnav/internal/imprints"
)

// Column imprints are not specific to coordinates: any numeric column of
// the flat table can carry one (the SIGMOD'13 index is a general secondary
// index; the paper deploys it on X and Y for the spatial filter). The
// engine builds thematic imprints lazily per column, giving range
// predicates like "z BETWEEN 0 AND 5" or "intensity > 900" the same
// cacheline-pruning treatment as the spatial filter.

// EnsureColumnImprint returns the imprint of the named column, building it
// on first use. Imprints built here are dropped by InvalidateIndexes.
func (pc *PointCloud) EnsureColumnImprint(name string) (*imprints.Imprints, error) {
	col := pc.Column(name)
	if col == nil {
		return nil, fmt.Errorf("engine: unknown column %q", name)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.colImprints == nil {
		pc.colImprints = map[string]*imprints.Imprints{}
	}
	if im, ok := pc.colImprints[name]; ok {
		return im, nil
	}
	im, err := imprints.BuildColumn(col, pc.ImprintOpts)
	if err != nil {
		return nil, err
	}
	pc.colImprints[name] = im
	return im, nil
}

// FilterRangeIndexed returns the rows whose column value lies in [lo, hi],
// using the column's imprint for cacheline pruning followed by exact tests
// within candidate ranges. The result equals a full-column scan.
func (pc *PointCloud) FilterRangeIndexed(name string, lo, hi float64, ex *Explain) ([]int, error) {
	im, err := pc.EnsureColumnImprint(name)
	if err != nil {
		return nil, err
	}
	col := pc.Column(name)
	start := time.Now()
	cand := im.CandidateRanges(lo, hi)
	ex.Add("imprints.filter", fmt.Sprintf("%s in [%g, %g]", name, lo, hi),
		pc.Len(), colstore.RangesLen(cand), time.Since(start))

	start = time.Now()
	var rows []int
	switch t := col.(type) {
	case *colstore.F64Column:
		vals := t.Values()
		for _, r := range cand {
			for i := r.Start; i < r.End; i++ {
				if vals[i] >= lo && vals[i] <= hi {
					rows = append(rows, i)
				}
			}
		}
	case *colstore.U16Column:
		vals := t.Values()
		for _, r := range cand {
			for i := r.Start; i < r.End; i++ {
				if v := float64(vals[i]); v >= lo && v <= hi {
					rows = append(rows, i)
				}
			}
		}
	case *colstore.U8Column:
		vals := t.Values()
		for _, r := range cand {
			for i := r.Start; i < r.End; i++ {
				if v := float64(vals[i]); v >= lo && v <= hi {
					rows = append(rows, i)
				}
			}
		}
	default:
		for _, r := range cand {
			for i := r.Start; i < r.End; i++ {
				if v := col.Value(i); v >= lo && v <= hi {
					rows = append(rows, i)
				}
			}
		}
	}
	ex.Add("refine.range", fmt.Sprintf("exact tests on %s", name),
		colstore.RangesLen(cand), len(rows), time.Since(start))
	return rows, nil
}

// FilterRangeScan is the unindexed comparison arm: a full-column scan.
func (pc *PointCloud) FilterRangeScan(name string, lo, hi float64, ex *Explain) ([]int, error) {
	col := pc.Column(name)
	if col == nil {
		return nil, fmt.Errorf("engine: unknown column %q", name)
	}
	start := time.Now()
	var rows []int
	switch t := col.(type) {
	case *colstore.F64Column:
		for i, v := range t.Values() {
			if v >= lo && v <= hi {
				rows = append(rows, i)
			}
		}
	default:
		for i := 0; i < col.Len(); i++ {
			if v := col.Value(i); v >= lo && v <= hi {
				rows = append(rows, i)
			}
		}
	}
	ex.Add("scan.range", fmt.Sprintf("%s in [%g, %g]", name, lo, hi),
		pc.Len(), len(rows), time.Since(start))
	return rows, nil
}

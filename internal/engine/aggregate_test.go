package engine

import (
	"math"
	"math/rand"
	"testing"

	"gisnav/internal/colstore"
)

// naiveAggregate is the pre-kernel reference: a per-value closure over
// float64-widened values, accumulation in ascending row order.
func naiveAggregate(col colstore.Column, rows []int, all bool, fn AggFunc, n int) (float64, bool) {
	var sum float64
	lo, hi := math.Inf(1), math.Inf(-1)
	acc := func(v float64) {
		sum += v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if all {
		for i := 0; i < col.Len(); i++ {
			acc(col.Value(i))
		}
	} else {
		for _, r := range rows {
			acc(col.Value(r))
		}
	}
	switch fn {
	case AggSum:
		return sum, true
	case AggAvg:
		if n == 0 {
			return 0, false
		}
		return sum / float64(n), true
	case AggMin:
		if n == 0 {
			return 0, false
		}
		return lo, true
	case AggMax:
		if n == 0 {
			return 0, false
		}
		return hi, true
	default:
		return 0, false
	}
}

// TestAggregateEmptySelection pins the empty-selection contract per
// function: count and sum are defined, avg/min/max error.
func TestAggregateEmptySelection(t *testing.T) {
	pc := randomTestCloud(100, 20)
	ex := &Explain{}
	empty := []int{}
	if n, err := pc.Aggregate(empty, AggCount, "", ex); err != nil || n != 0 {
		t.Fatalf("count over empty = %v, %v", n, err)
	}
	if s, err := pc.Aggregate(empty, AggSum, ColZ, ex); err != nil || s != 0 {
		t.Fatalf("sum over empty = %v, %v (want 0, nil)", s, err)
	}
	for _, fn := range []AggFunc{AggAvg, AggMin, AggMax} {
		if _, err := pc.Aggregate(empty, fn, ColZ, ex); err == nil {
			t.Fatalf("%s over empty selection must error", fn)
		}
	}
}

// TestAggregateAllRowsNonF64 exercises the all-rows kernel on every
// non-float column type against the naive closure.
func TestAggregateAllRowsNonF64(t *testing.T) {
	pc := randomTestCloud(1500, 21)
	ex := &Explain{}
	for _, name := range []string{ColIntensity, ColClassification, ColScanAngle, ColWaveOffset, ColRed} {
		col := pc.Column(name)
		for _, fn := range []AggFunc{AggSum, AggAvg, AggMin, AggMax} {
			got, err := pc.Aggregate(nil, fn, name, ex)
			if err != nil {
				t.Fatalf("%s(%s): %v", fn, name, err)
			}
			want, ok := naiveAggregate(col, nil, true, fn, pc.Len())
			if !ok {
				t.Fatalf("naive %s(%s) unexpectedly undefined", fn, name)
			}
			if got != want {
				t.Fatalf("%s(%s) = %v, naive %v", fn, name, got, want)
			}
		}
	}
}

// TestAggregateRandomizedEquivalence drives random selection vectors over
// random columns and asserts bit-identical results between the typed
// kernels and the naive closure arm.
func TestAggregateRandomizedEquivalence(t *testing.T) {
	pc := randomTestCloud(2500, 22)
	rng := rand.New(rand.NewSource(23))
	columns := []string{ColZ, ColGPSTime, ColIntensity, ColClassification, ColScanAngle, ColWaveOffset}
	for trial := 0; trial < 100; trial++ {
		name := columns[rng.Intn(len(columns))]
		col := pc.Column(name)
		var rows []int
		all := rng.Intn(4) == 0
		if !all {
			for i := 0; i < pc.Len(); i++ {
				if rng.Intn(3) == 0 {
					rows = append(rows, i)
				}
			}
			if rows == nil {
				rows = []int{} // non-nil empty: the empty-selection path
			}
		}
		n := len(rows)
		if all {
			n = pc.Len()
		}
		for _, fn := range []AggFunc{AggSum, AggAvg, AggMin, AggMax} {
			var arg []int
			if !all {
				arg = rows
			}
			got, err := pc.Aggregate(arg, fn, name, ex0())
			want, ok := naiveAggregate(col, rows, all, fn, n)
			if !ok {
				if err == nil {
					t.Fatalf("%s(%s) over empty: kernel returned %v, naive errors", fn, name, got)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s(%s): %v", fn, name, err)
			}
			// Bit-identical, including NaN results from NaN-polluted float
			// columns (sum propagates NaN in both arms).
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%s(%s) = %v, naive %v", fn, name, got, want)
			}
		}
	}
}

func ex0() *Explain { return &Explain{} }

// TestAggregateNilExplain covers the nil-trace path used by the SQL
// executor's kernel fast path.
func TestAggregateNilExplain(t *testing.T) {
	pc := randomTestCloud(50, 24)
	if _, err := pc.Aggregate(nil, AggSum, ColIntensity, nil); err != nil {
		t.Fatalf("nil explain: %v", err)
	}
}

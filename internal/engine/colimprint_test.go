package engine

import (
	"testing"
)

func TestFilterRangeIndexedMatchesScan(t *testing.T) {
	pc, _ := buildCloud(t, 0.05)
	cases := []struct {
		col    string
		lo, hi float64
	}{
		{ColZ, 0, 5},
		{ColZ, -10, 0},
		{ColIntensity, 800, 1100},
		{ColClassification, 6, 6},
		{ColGPSTime, 0, 1e12},
		{ColZ, 1e6, 2e6}, // empty result
	}
	for _, c := range cases {
		ex := &Explain{}
		indexed, err := pc.FilterRangeIndexed(c.col, c.lo, c.hi, ex)
		if err != nil {
			t.Fatalf("%s: %v", c.col, err)
		}
		scanned, err := pc.FilterRangeScan(c.col, c.lo, c.hi, ex)
		if err != nil {
			t.Fatal(err)
		}
		if len(indexed) != len(scanned) {
			t.Fatalf("%s [%g,%g]: indexed %d rows, scan %d rows",
				c.col, c.lo, c.hi, len(indexed), len(scanned))
		}
		for i := range indexed {
			if indexed[i] != scanned[i] {
				t.Fatalf("%s: row %d differs", c.col, i)
			}
		}
	}
}

func TestColumnImprintCachedAndInvalidated(t *testing.T) {
	pc, _ := buildCloud(t, 0.02)
	im1, err := pc.EnsureColumnImprint(ColZ)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := pc.EnsureColumnImprint(ColZ)
	if err != nil {
		t.Fatal(err)
	}
	if im1 != im2 {
		t.Fatal("imprint should be cached")
	}
	pc.InvalidateIndexes()
	im3, err := pc.EnsureColumnImprint(ColZ)
	if err != nil {
		t.Fatal(err)
	}
	if im3 == im1 {
		t.Fatal("invalidate should drop cached imprints")
	}
}

func TestColumnImprintUnknownColumn(t *testing.T) {
	pc, _ := buildCloud(t, 0.01)
	if _, err := pc.EnsureColumnImprint("bogus"); err == nil {
		t.Fatal("unknown column should error")
	}
	ex := &Explain{}
	if _, err := pc.FilterRangeIndexed("bogus", 0, 1, ex); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := pc.FilterRangeScan("bogus", 0, 1, ex); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestFilterRangeIndexedPrunes(t *testing.T) {
	pc, _ := buildCloud(t, 0.1)
	ex := &Explain{}
	// A narrow GPS-time window: monotone column, so imprints should prune
	// aggressively.
	col := pc.Column(ColGPSTime)
	lo, hi, _ := col.MinMax()
	window := lo + (hi-lo)*0.01
	if _, err := pc.FilterRangeIndexed(ColGPSTime, lo, window, ex); err != nil {
		t.Fatal(err)
	}
	var candidates int
	for _, s := range ex.Steps {
		if s.Op == "imprints.filter" {
			candidates = s.OutRows
		}
	}
	if candidates == 0 || candidates > pc.Len()/2 {
		t.Fatalf("imprint passed %d of %d rows — no pruning on a monotone column",
			candidates, pc.Len())
	}
}

//go:build faultinject

package engine

import (
	"errors"
	"math"
	"testing"

	"gisnav/internal/faultpoint"
)

// Armed-build tests for the morsel drivers: a panic in any worker
// partition must re-raise exactly once in the caller with every partial
// buffer recycled (zero pool drift after the run drains), an injected
// merge error must surface as a plain error with the same accounting, and
// the resident worker set must serve the next pass correctly.

var errMorselInjected = errors.New("injected morsel fault")

// morselPoolSnapshot sums the Outstanding counters of every pool the
// parallel paths draw from.
func morselPoolSnapshot() int64 {
	return SelectionPoolStats().Outstanding + RangePoolStats().Outstanding + F64PoolStats().Outstanding
}

func TestFaultMorselWorkerPanicZeroDrift(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	preds := []ColumnPred{{Column: ColZ, Op: CmpGT, Value: 0}}
	specs := []GroupedAggSpec{{Fn: AggCount}, {Fn: AggMin, Column: ColZ}}
	want, err := pc.FilterRows(nil, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantMax, err := pc.Aggregate(nil, AggMax, ColZ, nil)
	if err != nil {
		t.Fatal(err)
	}

	paths := map[string]func(run *Run) error{
		"filter": func(run *Run) error {
			rows, err := pc.FilterRowsRun(run, nil, preds, nil)
			if err == nil {
				run.RecycleRows(rows)
			}
			return err
		},
		"aggregate": func(run *Run) error {
			_, err := pc.AggregateRun(run, nil, AggMax, ColZ, nil)
			return err
		},
		"grouped-dense": func(run *Run) error {
			var res GroupedResult
			return pc.GroupedAggregateRun(run, nil, ColClassification, specs, &res, nil)
		},
		"grouped-hash": func(run *Run) error {
			var res GroupedResult
			return pc.GroupedAggregateRun(run, nil, ColGPSTime, specs, &res, nil)
		},
	}
	for name, query := range paths {
		t.Run(name, func(t *testing.T) {
			t.Cleanup(faultpoint.Reset)
			run := parRun(4)
			if err := query(run); err != nil { // warm: kernels cached, pools primed
				t.Fatal(err)
			}

			// After: 1 lets one partition through, so later partitions —
			// usually on resident workers — panic while siblings still hold
			// partial buffers that must come home.
			faultpoint.Arm("engine.morsel.worker", faultpoint.Action{Panic: "morsel worker poisoned", After: 1})
			before := morselPoolSnapshot()
			func() {
				defer func() {
					p := recover()
					if p == nil {
						t.Fatal("armed worker partition did not re-raise in the caller")
					}
					if s, ok := p.(string); !ok || s != "morsel worker poisoned" {
						t.Fatalf("re-raised %v, want the armed panic value", p)
					}
					run.Drain()
				}()
				_ = query(run)
			}()
			if d := morselPoolSnapshot() - before; d != 0 {
				t.Fatalf("worker panic in %s drifted pools by %d", name, d)
			}
			if faultpoint.HitCount("engine.morsel.worker") == 0 {
				t.Fatal("worker point never hit — the path does not fan out")
			}

			// The worker set survives: disarmed, the next pass is correct.
			faultpoint.Disarm("engine.morsel.worker")
			if err := query(run); err != nil {
				t.Fatalf("pass after recovery: %v", err)
			}
		})
	}

	// Spot-check post-recovery output against the serial truth.
	run := parRun(4)
	rows, err := pc.FilterRowsRun(run, nil, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("recovered filter: %d rows, serial %d", len(rows), len(want))
	}
	run.RecycleRows(rows)
	got, err := pc.AggregateRun(run, nil, AggMax, ColZ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(wantMax) {
		t.Fatal("recovered aggregate differs from serial")
	}
	RecycleRows(want)
}

func TestFaultMorselMergeErrorZeroDrift(t *testing.T) {
	pc := groupTestCloud(t, morselCloudRows)
	preds := []ColumnPred{{Column: ColZ, Op: CmpGT, Value: 0}}
	specs := []GroupedAggSpec{{Fn: AggCount}, {Fn: AggMin, Column: ColZ}}

	paths := map[string]func(run *Run) error{
		"filter": func(run *Run) error {
			rows, err := pc.FilterRowsRun(run, nil, preds, nil)
			if err == nil {
				run.RecycleRows(rows)
			}
			return err
		},
		"aggregate": func(run *Run) error {
			_, err := pc.AggregateRun(run, nil, AggMin, ColZ, nil)
			return err
		},
		"grouped-dense": func(run *Run) error {
			var res GroupedResult
			return pc.GroupedAggregateRun(run, nil, ColClassification, specs, &res, nil)
		},
		"grouped-hash": func(run *Run) error {
			var res GroupedResult
			return pc.GroupedAggregateRun(run, nil, ColGPSTime, specs, &res, nil)
		},
	}
	for name, query := range paths {
		t.Run(name, func(t *testing.T) {
			t.Cleanup(faultpoint.Reset)
			run := parRun(4)
			if err := query(run); err != nil {
				t.Fatal(err)
			}
			faultpoint.Arm("engine.morsel.merge", faultpoint.Action{Err: errMorselInjected})
			before := morselPoolSnapshot()
			if err := query(run); !errors.Is(err, errMorselInjected) {
				t.Fatalf("err = %v, want the injected merge fault", err)
			}
			run.Drain()
			if d := morselPoolSnapshot() - before; d != 0 {
				t.Fatalf("merge error in %s drifted pools by %d", name, d)
			}
			if faultpoint.HitCount("engine.morsel.merge") == 0 {
				t.Fatal("merge point never hit — the path does not fan out")
			}
			faultpoint.Disarm("engine.morsel.merge")
			if err := query(run); err != nil {
				t.Fatalf("pass after recovery: %v", err)
			}
		})
	}
}

package engine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gisnav/internal/geom"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	pc, pts := buildCloud(t, 0.05)
	dir := filepath.Join(t.TempDir(), "db")
	if err := pc.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := OpenPointCloud(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(pts) {
		t.Fatalf("rows = %d, want %d", got.Len(), len(pts))
	}
	// Every column round-trips value-exact.
	for i, col := range pc.Columns() {
		other := got.Columns()[i]
		for r := 0; r < pc.Len(); r += 101 {
			if col.Value(r) != other.Value(r) {
				t.Fatalf("column %d row %d: %v vs %v", i, r, col.Value(r), other.Value(r))
			}
		}
	}
	// The reopened table answers queries identically.
	box := geom.NewEnvelope(100, 100, 400, 400)
	if len(got.SelectBox(box).Rows) != len(pc.SelectBox(box).Rows) {
		t.Fatal("reopened table disagrees on a query")
	}
	// Column file accounting works.
	sizes, err := ColumnFileBytes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sizes[ColX] != int64(8*pc.Len()) {
		t.Fatalf("x column file = %d bytes", sizes[ColX])
	}
	if sizes[ColClassification] != int64(pc.Len()) {
		t.Fatalf("classification file = %d bytes", sizes[ColClassification])
	}
}

func TestSaveEmptyTable(t *testing.T) {
	pc := NewPointCloud()
	dir := filepath.Join(t.TempDir(), "empty")
	if err := pc.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := OpenPointCloud(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty table should reopen empty")
	}
}

func TestOpenErrors(t *testing.T) {
	base := t.TempDir()
	// Missing directory.
	if _, err := OpenPointCloud(filepath.Join(base, "missing")); err == nil {
		t.Fatal("missing dir should error")
	}
	// Corrupt manifest.
	dir1 := filepath.Join(base, "badjson")
	os.MkdirAll(dir1, 0o755)
	os.WriteFile(filepath.Join(dir1, manifestName), []byte("{"), 0o644)
	if _, err := OpenPointCloud(dir1); err == nil {
		t.Fatal("bad manifest should error")
	}
	// Wrong version.
	dir2 := filepath.Join(base, "badver")
	os.MkdirAll(dir2, 0o755)
	blob, _ := json.Marshal(manifest{FormatVersion: 99})
	os.WriteFile(filepath.Join(dir2, manifestName), blob, 0o644)
	if _, err := OpenPointCloud(dir2); err == nil {
		t.Fatal("bad version should error")
	}
	// Truncated column file.
	pc, _ := buildCloud(t, 0.01)
	dir3 := filepath.Join(base, "trunc")
	if err := pc.Save(dir3); err != nil {
		t.Fatal(err)
	}
	zpath := filepath.Join(dir3, "col_z.bin")
	data, err := os.ReadFile(zpath)
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(zpath, data[:len(data)/2], 0o644)
	if _, err := OpenPointCloud(dir3); err == nil {
		t.Fatal("truncated column should error")
	}
	// Schema mismatch.
	dir4 := filepath.Join(base, "schema")
	if err := pc.Save(dir4); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir4, manifestName)
	mb, _ := os.ReadFile(mpath)
	var m manifest
	json.Unmarshal(mb, &m)
	m.Columns[0].Name = "renamed"
	mb2, _ := json.Marshal(m)
	os.WriteFile(mpath, mb2, 0o644)
	if _, err := OpenPointCloud(dir4); err == nil {
		t.Fatal("schema mismatch should error")
	}
	// Negative row count.
	dir5 := filepath.Join(base, "negrows")
	os.MkdirAll(dir5, 0o755)
	blob5, _ := json.Marshal(manifest{FormatVersion: manifestVersion, Rows: -1})
	os.WriteFile(filepath.Join(dir5, manifestName), blob5, 0o644)
	if _, err := OpenPointCloud(dir5); err == nil {
		t.Fatal("negative rows should error")
	}
}

func TestColumnFileBytesMissing(t *testing.T) {
	if _, err := ColumnFileBytes(t.TempDir()); err == nil {
		t.Fatal("missing files should error")
	}
}

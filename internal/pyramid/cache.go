package pyramid

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gisnav/internal/colstore"
	"gisnav/internal/engine"
)

// maxPyramids bounds the resident pyramid set: one pyramid per
// (table, shape) up to this many, the same bounded-cache discipline the
// imprint and refiner caches follow.
const maxPyramids = 8

// refCount is the pyramid lifetime: the cache holds one reference while
// the entry is resident, every pinned caller holds one. The holder that
// drops the count to zero recycles the pooled banks — so an epoch drop or
// eviction racing a concurrent query never frees banks out from under it.
type refCount struct{ n atomic.Int64 }

func (r *refCount) init(n int64) { r.n.Store(n) }
func (r *refCount) inc()         { r.n.Add(1) }
func (r *refCount) dec() bool    { return r.n.Add(-1) == 0 }

// cacheKey identifies a pyramid: the table identity plus the shape
// signature (key column + canonical bank set).
type cacheKey struct {
	pc  *engine.PointCloud
	sig string
}

// pyramidCache is the bounded resident set. Stale entries (epoch moved
// past atEpoch) are dropped lazily at lookup — the epoch contract's lazy
// invalidation arm: InvalidateIndexes/Append bump the table epoch, and
// the next pyramid lookup for that table discards the stale banks.
type pyramidCache struct {
	mu        sync.Mutex
	pyramids  map[cacheKey]*Pyramid
	hits      uint64
	misses    uint64
	builds    uint64
	drops     uint64
	evictions uint64
}

var shared = pyramidCache{pyramids: map[cacheKey]*Pyramid{}}

// Query-side counters, separate from the cache mutex so the warm query
// path never contends on it.
var (
	disabled      atomic.Bool
	queries       atomic.Uint64
	interiorTiles atomic.Uint64
	boundaryTiles atomic.Uint64
	boundaryRows  atomic.Uint64
)

func countQuery(qs *QueryStats) {
	queries.Add(1)
	interiorTiles.Add(uint64(qs.Interior))
	boundaryTiles.Add(uint64(qs.Boundary))
	boundaryRows.Add(uint64(qs.BoundaryRows))
}

// Enabled reports whether pyramid routing is on (default true).
func Enabled() bool { return !disabled.Load() }

// SetEnabled toggles pyramid routing globally — the bench harness uses it
// to time the exact arm over identical plans.
func SetEnabled(on bool) { disabled.Store(!on) }

// lookup returns the resident pyramid for (pc, sig) pinned for the
// caller, or nil on miss. A resident entry whose epoch is stale is
// dropped here: the cache reference is released (recycling the banks
// unless a concurrent query still holds a pin) and the lookup misses.
func (c *pyramidCache) lookup(pc *engine.PointCloud, sig string, epoch uint64) *Pyramid {
	k := cacheKey{pc: pc, sig: sig}
	c.mu.Lock()
	p, ok := c.pyramids[k]
	if ok && p.atEpoch != epoch {
		delete(c.pyramids, k)
		c.drops++
		ok = false
		defer p.Release()
	}
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil
	}
	c.hits++
	p.refs.inc()
	c.mu.Unlock()
	return p
}

// insert publishes a freshly built pyramid and returns the entry the
// caller should use, pinned. Builds run outside the cache mutex, so two
// queries can race to build the same pyramid: the loser's copy is
// discarded here and the resident one returned. At the bound an
// arbitrary resident entry is evicted (its banks recycle once unpinned).
func (c *pyramidCache) insert(k cacheKey, p *Pyramid) *Pyramid {
	var released []*Pyramid
	c.mu.Lock()
	if old, ok := c.pyramids[k]; ok {
		if old.atEpoch == p.atEpoch {
			// Lost the build race; adopt the resident pyramid.
			old.refs.inc()
			c.mu.Unlock()
			p.Release()
			return old
		}
		delete(c.pyramids, k)
		c.drops++
		released = append(released, old)
	}
	if len(c.pyramids) >= maxPyramids {
		for ek, ep := range c.pyramids {
			delete(c.pyramids, ek)
			c.evictions++
			released = append(released, ep)
			break
		}
	}
	c.pyramids[k] = p
	c.builds++
	p.refs.inc() // the cache's reference
	c.mu.Unlock()
	for _, ep := range released {
		ep.Release()
	}
	return p
}

// stats snapshots the cache counters under the mutex.
func (c *pyramidCache) stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Pyramids:  len(c.pyramids),
		Hits:      c.hits,
		Misses:    c.misses,
		Builds:    c.builds,
		Drops:     c.drops,
		Evictions: c.evictions,
	}
}

// Stats is the pyramid subsystem's observability surface, exposed by the
// server's /stats endpoint and the bench harness.
type Stats struct {
	Pyramids      int    `json:"pyramids"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Builds        uint64 `json:"builds"`
	Drops         uint64 `json:"drops"`
	Evictions     uint64 `json:"evictions"`
	Queries       uint64 `json:"queries"`
	InteriorTiles uint64 `json:"interior_tiles"`
	BoundaryTiles uint64 `json:"boundary_tiles"`
	BoundaryRows  uint64 `json:"boundary_rows"`
}

// Snapshot returns current pyramid cache and query counters.
func Snapshot() Stats {
	s := shared.stats()
	s.Queries = queries.Load()
	s.InteriorTiles = interiorTiles.Load()
	s.BoundaryTiles = boundaryTiles.Load()
	s.BoundaryRows = boundaryRows.Load()
	return s
}

// Shape reports whether a grouped plan's (key, specs) shape is pyramid-
// eligible and returns its cache signature. Eligible shapes group by a
// bare u8 column and aggregate with count/min/max only — the merge-exact
// set (specsMergeExact's argument): those folds are bit-identical in any
// order, so pyramid answers match the serial exact arm exactly. sum/avg
// fold tile-order, not row-order, and stay on the exact arm. The
// signature is shape-derived only — plan rebinds keep it without
// re-deriving state.
func Shape(pc *engine.PointCloud, key string, specs []engine.GroupedAggSpec) (string, bool) {
	if pc == nil || key == "" || len(specs) == 0 || len(specs) > maxQuerySpecs {
		return "", false
	}
	if _, ok := pc.Column(key).(*colstore.U8Column); !ok {
		return "", false
	}
	for _, s := range specs {
		switch s.Fn {
		case engine.AggCount:
		case engine.AggMin, engine.AggMax:
			if s.Column == "" || pc.Column(s.Column) == nil {
				return "", false
			}
		default:
			return "", false
		}
	}
	return sigFor(key, specs), true
}

// canonicalBanks reduces a spec list to the distinct non-count bank
// specs in a canonical (column, fn) order — the bank layout a signature
// names.
func canonicalBanks(specs []engine.GroupedAggSpec) []engine.GroupedAggSpec {
	out := make([]engine.GroupedAggSpec, 0, len(specs))
	for _, s := range specs {
		if s.Fn == engine.AggCount {
			continue
		}
		dup := false
		for _, o := range out {
			if o.Fn == s.Fn && o.Column == s.Column {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Column != out[j].Column {
			return out[i].Column < out[j].Column
		}
		return out[i].Fn < out[j].Fn
	})
	return out
}

func sigFor(key string, specs []engine.GroupedAggSpec) string {
	banks := canonicalBanks(specs)
	parts := make([]string, 0, len(banks))
	for _, s := range banks {
		parts = append(parts, s.Fn.String()+":"+s.Column)
	}
	return key + "|" + strings.Join(parts, ",")
}

// For returns the pyramid for (pc, sig) pinned for the caller — the
// caller must Release it when done — building and publishing one when
// none is resident. A nil pyramid with nil error means the table declined
// (empty, degenerate extent, or routing disabled); callers fall back to
// the exact arm. The table epoch is captured before any other table state
// is read, per the epoch contract.
func For(run *engine.Run, pc *engine.PointCloud, key string, specs []engine.GroupedAggSpec, sig string, ex *engine.Explain) (*Pyramid, error) {
	if pc == nil || sig == "" || !Enabled() {
		return nil, nil
	}
	epoch := pc.Epoch()
	if p := shared.lookup(pc, sig, epoch); p != nil {
		return p, nil
	}
	p := newPyramid(pc, epoch, key, specs)
	if p == nil {
		return nil, nil
	}
	if err := p.build(run, ex); err != nil {
		p.Release()
		return nil, err
	}
	return shared.insert(cacheKey{pc: pc, sig: sig}, p), nil
}

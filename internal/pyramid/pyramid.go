// Package pyramid implements the pre-aggregation tile pyramid (PR 10): a
// multi-resolution stack of per-tile, per-class aggregate banks over the
// sfc.Grid tiling, so zoomed-out viewport histograms answer from
// O(visible tiles) of pre-aggregates instead of O(points in region).
//
// Structure. Level o quantises the table extent into 2^o × 2^o tiles;
// levels run from the base order (sized so base tiles hold a few thousand
// rows) down to a single root tile. Every level stores, per (tile, class)
// slot, the class count plus one bank per requested min/max/sum column —
// built by the engine's grouped kernels fanned over the morsel worker set
// (engine.TileGroupedAggregateRun) at the base and folded child-into-
// parent above it — plus per-tile metadata: the row count and the tight
// bounding box of the rows that actually quantised into the tile. The
// base level keeps per-tile row postings (rows ascending within a tile)
// for boundary refinement. All banks are pooled column-shaped buffers
// (engine.AcquireF64 / AcquireRows) owned by the cache entry, recycled
// when the entry drops.
//
// Query. A viewport-histogram lookup picks the coarsest level whose tiles
// are still small against the viewport, walks the tile span of the
// region's envelope, and classifies each tile's DATA bounding box against
// the region: tiles fully inside fold their pre-aggregates (count adds
// and min/max strict folds merge exactly, so the fold is bit-identical to
// the serial scan); tiles fully outside are skipped; boundary tiles fall
// back to the exact compiled kernels over just their rows
// (engine.GroupedAccumulateRows after the same envelope check + per-point
// Contains test the grid refiner applies). Classifying the data bbox
// rather than the geometric tile box keeps the interior/outside decisions
// exact by construction — every row lies inside its tile's closed data
// bbox — independent of quantisation rounding at tile edges.
//
// Determinism. Count/min/max merge exactly in any fold order, so those
// pyramid answers are bit-identical to the serial exact arm — the same
// argument as specsMergeExact for the morsel merge. Per-tile sums are
// built in ascending row order (the engine forces the serial scatter for
// sum banks) and folded in ascending tile order at query time: that is
// deterministic, but it is NOT the global ascending row-order fold the
// SQL float-determinism invariant pins, so Shape excludes sum/avg from
// SQL routing; sum banks exist for direct API users who accept tile-order
// folding.
package pyramid

import (
	"math"

	"gisnav/internal/cancel"
	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/grid"
	"gisnav/internal/sfc"
)

const (
	// tileDom is the per-tile class domain: pyramids key on u8 columns
	// only (the dense grouped strategy's u8 arm).
	tileDom = 256
	// baseOrderMin/Max bound the base tiling; targetRowsPerTile sizes it.
	baseOrderMin      = 2
	baseOrderMax      = 5
	targetRowsPerTile = 1024
	// tilesAcross is the level-selection rule: choose the coarsest level
	// whose tile edge is at most 1/tilesAcross of the viewport edge, so
	// the boundary ring stays thin relative to the interior.
	tilesAcross = 4
	// maxQuerySpecs bounds the per-query stack scratch (spec → bank map).
	maxQuerySpecs = 16
)

// level is one resolution of the pyramid: per-(tile, class) banks plus
// per-tile metadata. Slot (t, k) of a bank lives at t*256+k with
// t = cy<<order | cx.
type level struct {
	grid  sfc.Grid
	cnt   []float64   // per-slot class counts
	banks [][]float64 // per canonical spec (p.specs), per-slot folds
	tot   []float64   // per-tile row counts
	bminx []float64   // per-tile data bounding boxes (±Inf when empty)
	bminy []float64
	bmaxx []float64
	bmaxy []float64
}

// Pyramid is the pre-aggregate stack for one (table, epoch, shape). It is
// immutable after build; concurrent queries share it read-only. Lifetime
// is reference-counted: the cache holds one reference while the entry is
// resident, every For caller holds one until Release — the last release
// returns the pooled banks.
type Pyramid struct {
	pc      *engine.PointCloud
	atEpoch uint64 // epoch the banks describe; a bump invalidates
	key     string
	specs   []engine.GroupedAggSpec // canonical non-count bank specs
	ext     geom.Envelope
	base    uint
	levels  []level // indexed by order, 0..base
	offs    []int   // base-tile postings: rows[offs[t]:offs[t+1]]
	rows    []int   // row ids, ascending within each base tile
	refs    refCount
}

// QueryStats describes one pyramid lookup, for EXPLAIN and the bench
// harness: the level served, how many tiles folded from pre-aggregates,
// how many fell back to exact refinement and over how many rows.
type QueryStats struct {
	Level        int
	Interior     int
	Boundary     int
	BoundaryRows int
}

// baseOrderFor sizes the base tiling from the row count: the finest order
// (within bounds) whose tiles still average targetRowsPerTile rows.
func baseOrderFor(n int) uint {
	o := uint(baseOrderMin)
	for o < baseOrderMax && (1<<(2*(o+1)))*targetRowsPerTile <= n {
		o++
	}
	return o
}

// newPyramid allocates the pooled bank storage for (pc, epoch, shape).
// Owner-scoped: these buffers belong to the cache entry, not to the query
// run that triggers the build — recycle (via the reference count) returns
// them. Returns nil when the table cannot host a pyramid: no rows, or a
// degenerate/non-finite extent the quantiser cannot split.
func newPyramid(pc *engine.PointCloud, epoch uint64, key string, specs []engine.GroupedAggSpec) *Pyramid {
	n := pc.Len()
	ext := pc.Extent()
	if n == 0 || ext.IsEmpty() || ext.Width() <= 0 || ext.Height() <= 0 ||
		math.IsInf(ext.Width(), 0) || math.IsInf(ext.Height(), 0) {
		return nil
	}
	p := &Pyramid{
		pc:      pc,
		atEpoch: epoch,
		key:     key,
		specs:   canonicalBanks(specs),
		ext:     ext,
		base:    baseOrderFor(n),
	}
	p.refs.init(1)
	p.levels = make([]level, p.base+1)
	for o := uint(0); o <= p.base; o++ {
		ntiles := 1 << (2 * o)
		nslots := ntiles * tileDom
		l := &p.levels[o]
		l.grid = sfc.Grid{Extent: ext, Order: o}
		l.cnt = engine.AcquireF64(nslots)[:nslots]
		l.banks = make([][]float64, len(p.specs))
		for j := range p.specs {
			l.banks[j] = engine.AcquireF64(nslots)[:nslots]
		}
		l.tot = engine.AcquireF64(ntiles)[:ntiles]
		l.bminx = engine.AcquireF64(ntiles)[:ntiles]
		l.bminy = engine.AcquireF64(ntiles)[:ntiles]
		l.bmaxx = engine.AcquireF64(ntiles)[:ntiles]
		l.bmaxy = engine.AcquireF64(ntiles)[:ntiles]
	}
	baseTiles := 1 << (2 * p.base)
	p.offs = engine.AcquireRows(baseTiles + 1)[:baseTiles+1]
	p.rows = engine.AcquireRows(n)[:n]
	return p
}

// recycle returns every pooled buffer. Called only by the reference count
// when the last holder releases; no run is in scope — the buffers belong
// to the pyramid, not to any query lifecycle.
func (p *Pyramid) recycle() {
	for i := range p.levels {
		l := &p.levels[i]
		engine.RecycleF64(l.cnt)
		for _, b := range l.banks {
			engine.RecycleF64(b)
		}
		engine.RecycleF64(l.tot)
		engine.RecycleF64(l.bminx)
		engine.RecycleF64(l.bminy)
		engine.RecycleF64(l.bmaxx)
		engine.RecycleF64(l.bmaxy)
	}
	engine.RecycleRows(p.offs)
	engine.RecycleRows(p.rows)
}

// Release drops one reference (paired with the pin For returned). The
// last release recycles the pooled banks. Nil-safe.
func (p *Pyramid) Release() {
	if p == nil {
		return
	}
	if p.refs.dec() {
		p.recycle()
	}
}

// build fills the banks: the engine's parallel tile scatter at the base,
// per-tile metadata and postings in one extra pass, then child-into-
// parent folds up to the root. Runs under the triggering query's
// lifecycle for cancellation; the banks themselves are owner-scoped.
func (p *Pyramid) build(run *engine.Run, ex *engine.Explain) error {
	bl := &p.levels[p.base]
	if err := p.pc.TileGroupedAggregateRun(run, bl.grid, p.key, p.specs, bl.cnt, bl.banks, ex); err != nil {
		return err
	}
	if err := p.buildMeta(run); err != nil {
		return err
	}
	for o := int(p.base) - 1; o >= 0; o-- {
		if run.Cancelled() {
			return cancel.ErrCancelled
		}
		foldLevel(&p.levels[o], &p.levels[o+1], p.specs)
	}
	return nil
}

// buildMeta computes, in one quantisation pass plus a counting-sort
// scatter, the base level's per-tile row counts, tight data bounding
// boxes, and row postings (ascending row order within each tile — the
// order boundary refinement folds in).
func (p *Pyramid) buildMeta(run *engine.Run) error {
	bl := &p.levels[p.base]
	order := bl.grid.Order
	ntiles := 1 << (2 * order)
	xs, ys := p.pc.X(), p.pc.Y()
	n := len(xs)
	for t := 0; t < ntiles; t++ {
		bl.tot[t] = 0
		bl.bminx[t] = math.Inf(1)
		bl.bminy[t] = math.Inf(1)
		bl.bmaxx[t] = math.Inf(-1)
		bl.bmaxy[t] = math.Inf(-1)
		p.offs[t+1] = 0
	}
	p.offs[0] = 0
	tiles := run.AcquireRows(n)[:n]
	for r := 0; r < n; r++ {
		if r%(1<<16) == 0 && run.Cancelled() {
			run.RecycleRows(tiles)
			return cancel.ErrCancelled
		}
		x, y := xs[r], ys[r]
		cx, cy := bl.grid.Cell(x, y)
		t := int(cy)<<order | int(cx)
		tiles[r] = t
		bl.tot[t]++
		if x < bl.bminx[t] {
			bl.bminx[t] = x
		}
		if x > bl.bmaxx[t] {
			bl.bmaxx[t] = x
		}
		if y < bl.bminy[t] {
			bl.bminy[t] = y
		}
		if y > bl.bmaxy[t] {
			bl.bmaxy[t] = y
		}
		p.offs[t+1]++
	}
	for t := 0; t < ntiles; t++ {
		p.offs[t+1] += p.offs[t]
	}
	cur := run.AcquireRows(ntiles)[:ntiles]
	copy(cur, p.offs[:ntiles])
	for r := 0; r < n; r++ {
		t := tiles[r]
		p.rows[cur[t]] = r
		cur[t]++
	}
	run.RecycleRows(cur)
	run.RecycleRows(tiles)
	return nil
}

// foldLevel folds the four children of every dst tile in fixed ascending
// (dy, dx) order: counts and sums add, min/max fold strictly, bounding
// boxes and totals union. The fixed order keeps sum folds deterministic;
// count/min/max are order-exact regardless.
func foldLevel(dst, src *level, specs []engine.GroupedAggSpec) {
	order := dst.grid.Order
	nx := 1 << order
	for j, s := range specs {
		seed := 0.0
		switch s.Fn {
		case engine.AggMin:
			seed = math.Inf(1)
		case engine.AggMax:
			seed = math.Inf(-1)
		}
		b := dst.banks[j]
		for i := range b {
			b[i] = seed
		}
	}
	for i := range dst.cnt {
		dst.cnt[i] = 0
	}
	for cy := 0; cy < nx; cy++ {
		for cx := 0; cx < nx; cx++ {
			t := cy<<order | cx
			dst.tot[t] = 0
			dst.bminx[t] = math.Inf(1)
			dst.bminy[t] = math.Inf(1)
			dst.bmaxx[t] = math.Inf(-1)
			dst.bmaxy[t] = math.Inf(-1)
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					st := (2*cy+dy)<<(order+1) | (2*cx + dx)
					dst.tot[t] += src.tot[st]
					if src.bminx[st] < dst.bminx[t] {
						dst.bminx[t] = src.bminx[st]
					}
					if src.bminy[st] < dst.bminy[t] {
						dst.bminy[t] = src.bminy[st]
					}
					if src.bmaxx[st] > dst.bmaxx[t] {
						dst.bmaxx[t] = src.bmaxx[st]
					}
					if src.bmaxy[st] > dst.bmaxy[t] {
						dst.bmaxy[t] = src.bmaxy[st]
					}
					db := dst.cnt[t*tileDom : (t+1)*tileDom]
					sb := src.cnt[st*tileDom : (st+1)*tileDom]
					for k := range db {
						db[k] += sb[k]
					}
					for j, s := range specs {
						dj := dst.banks[j][t*tileDom : (t+1)*tileDom]
						sj := src.banks[j][st*tileDom : (st+1)*tileDom]
						switch s.Fn {
						case engine.AggMin:
							for k := range dj {
								if sj[k] < dj[k] {
									dj[k] = sj[k]
								}
							}
						case engine.AggMax:
							for k := range dj {
								if sj[k] > dj[k] {
									dj[k] = sj[k]
								}
							}
						default: // AggSum: children fold in fixed ascending order
							for k := range dj {
								dj[k] += sj[k]
							}
						}
					}
				}
			}
		}
	}
}

// levelFor picks the coarsest level whose tiles are still fine against
// the viewport: descend while a tile edge exceeds 1/tilesAcross of the
// clipped viewport edge. Degenerate viewports get the base level.
func (p *Pyramid) levelFor(env geom.Envelope) uint {
	clip := env.Intersection(p.ext)
	vw, vh := clip.Width(), clip.Height()
	if !(vw > 0) || !(vh > 0) {
		return p.base
	}
	o := uint(0)
	for o < p.base {
		scale := float64(uint64(1) << o)
		if p.ext.Width()/scale <= vw/tilesAcross && p.ext.Height()/scale <= vh/tilesAcross {
			break
		}
		o++
	}
	return o
}

// QueryRegionRun answers a grouped viewport histogram from the pyramid:
// res receives one group per class present in the region, in ascending
// class order (the engine's FloatOrderKey order for u8 keys), each with
// one value per spec — bit-identical to the exact serial grouped arm for
// count/min/max shapes. ok reports whether the pyramid could serve the
// query; on false the caller falls back to the exact arm (unknown spec
// shape, or a region whose envelope the tiling cannot span). All query
// scratch is pooled and registered in the run's release list; warm
// lookups allocate nothing.
func (p *Pyramid) QueryRegionRun(run *engine.Run, region grid.Region, specs []engine.GroupedAggSpec, res *engine.GroupedResult) (QueryStats, bool, error) {
	qs := QueryStats{Level: -1}
	if region == nil || len(specs) > maxQuerySpecs {
		return qs, false, nil
	}
	var bmapArr [maxQuerySpecs]int
	bmap := bmapArr[:len(specs)]
	for j, s := range specs {
		bmap[j] = -1
		if s.Fn == engine.AggCount {
			continue
		}
		found := false
		for i, b := range p.specs {
			if b.Fn == s.Fn && b.Column == s.Column {
				bmap[j] = i
				found = true
				break
			}
		}
		if !found {
			return qs, false, nil
		}
	}

	res.Keys = res.Keys[:0]
	for len(res.Cols) < len(specs) {
		res.Cols = append(res.Cols, nil)
	}
	res.Cols = res.Cols[:len(specs)]
	for j := range res.Cols {
		res.Cols[j] = res.Cols[j][:0]
	}
	res.Strategy = "pyramid"

	env := region.Envelope()
	if env.IsEmpty() || env.Intersection(p.ext).IsEmpty() {
		// The region cannot reach any row: zero groups, exactly what the
		// exact arm produces over an empty selection.
		qs.Level = int(p.base)
		countQuery(&qs)
		return qs, true, nil
	}
	lo := p.levelFor(env)
	l := &p.levels[lo]
	order := l.grid.Order
	qs.Level = int(order)
	x0, y0, x1, y1, ok := grid.TileSpan(l.grid, region)
	if !ok {
		// Non-finite envelope bounds: the exact arm's scan semantics
		// apply, not the tiling's.
		return qs, false, nil
	}
	// One tile of margin: data bounding boxes, not geometric tile boxes,
	// decide membership, and rounding at a tile edge can push a row's box
	// one tile past the envelope span.
	last := uint32(1)<<order - 1
	if x0 > 0 {
		x0--
	}
	if y0 > 0 {
		y0--
	}
	if x1 < last {
		x1++
	}
	if y1 < last {
		y1++
	}

	// The query accumulator is one flat pooled slab in GroupedAccumulateRows
	// layout — [count | spec 0 | spec 1 | ...], 256 slots each — so the warm
	// path builds no per-call slice headers.
	nspecs := len(specs)
	slab := run.AcquireF64((1 + nspecs) * tileDom)[:(1+nspecs)*tileDom]
	qcnt := slab[:tileDom]
	for i := range qcnt {
		qcnt[i] = 0
	}
	for j, s := range specs {
		qb := slab[(1+j)*tileDom : (2+j)*tileDom]
		seed := 0.0
		switch s.Fn {
		case engine.AggMin:
			seed = math.Inf(1)
		case engine.AggMax:
			seed = math.Inf(-1)
		}
		for i := range qb {
			qb[i] = seed
		}
	}

	// Walk the span in ascending (cy, cx) order: interior tiles fold
	// their pre-aggregates immediately (the deterministic tile order);
	// boundary tiles queue for exact refinement.
	span := int(x1-x0+1) * int(y1-y0+1)
	btiles := run.AcquireRows(span)[:0]
	boundRows := 0
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			t := int(cy)<<order | int(cx)
			if l.tot[t] == 0 {
				continue
			}
			box := geom.Envelope{MinX: l.bminx[t], MinY: l.bminy[t], MaxX: l.bmaxx[t], MaxY: l.bmaxy[t]}
			switch region.Classify(box) {
			case geom.BoxInside:
				qs.Interior++
				base := t * tileDom
				cb := l.cnt[base : base+tileDom]
				for k, c := range cb {
					qcnt[k] += c
				}
				for j := range specs {
					bi := bmap[j]
					if bi < 0 {
						continue
					}
					src := l.banks[bi][base : base+tileDom]
					dst := slab[(1+j)*tileDom : (2+j)*tileDom]
					switch specs[j].Fn {
					case engine.AggMin:
						for k, v := range src {
							if v < dst[k] {
								dst[k] = v
							}
						}
					case engine.AggMax:
						for k, v := range src {
							if v > dst[k] {
								dst[k] = v
							}
						}
					default: // AggSum: ascending tile order
						for k, v := range src {
							dst[k] += v
						}
					}
				}
			case geom.BoxBoundary:
				qs.Boundary++
				boundRows += int(l.tot[t])
				btiles = append(btiles, t)
			}
		}
	}

	// Boundary refinement: gather the partial tiles' rows that pass the
	// same envelope check + Contains test the grid refiner applies, in
	// (tile, row) ascending order, then fold them through the exact dense
	// kernels.
	if len(btiles) > 0 {
		xs, ys := p.pc.X(), p.pc.Y()
		d := p.base - order
		rbuf := run.AcquireRows(boundRows)[:0]
		for bi, t := range btiles {
			if bi%8 == 0 && run.Cancelled() {
				run.RecycleRows(rbuf)
				run.RecycleRows(btiles)
				run.RecycleF64(slab)
				return qs, false, cancel.ErrCancelled
			}
			cx := uint32(t) & last
			cy := uint32(t) >> order
			for sy := int(cy) << d; sy < int(cy+1)<<d; sy++ {
				for sx := int(cx) << d; sx < int(cx+1)<<d; sx++ {
					st := sy<<p.base | sx
					for _, r := range p.rows[p.offs[st]:p.offs[st+1]] {
						x, y := xs[r], ys[r]
						if x < env.MinX || x > env.MaxX || y < env.MinY || y > env.MaxY {
							continue
						}
						if region.Contains(x, y) {
							rbuf = append(rbuf, r)
						}
					}
				}
			}
		}
		qs.BoundaryRows = len(rbuf)
		if len(rbuf) > 0 {
			if err := p.pc.GroupedAccumulateRows(rbuf, p.key, specs, slab); err != nil {
				run.RecycleRows(rbuf)
				run.RecycleRows(btiles)
				run.RecycleF64(slab)
				return qs, false, err
			}
		}
		run.RecycleRows(rbuf)
	}
	run.RecycleRows(btiles)

	// Emit groups in ascending class order — FloatOrderKey order for u8
	// keys, the same order the engine's dense strategy produces.
	for k := 0; k < tileDom; k++ {
		c := qcnt[k]
		if c == 0 {
			continue
		}
		res.Keys = append(res.Keys, float64(k))
		for j := range specs {
			v := c
			if specs[j].Fn != engine.AggCount {
				v = slab[(1+j)*tileDom+k]
			}
			res.Cols[j] = append(res.Cols[j], v)
		}
	}
	run.RecycleF64(slab)
	countQuery(&qs)
	return qs, true, nil
}

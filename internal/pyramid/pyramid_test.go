package pyramid

import (
	"math"
	"math/rand"
	"testing"

	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/grid"
	"gisnav/internal/las"
)

// testCloud builds a point cloud with adversarial pyramid inputs: a u8
// class key, a z column salted with NaN, and a gps_time column drawn from
// a palette of ±Inf, -0 and ordinary values — the cases the pre-aggregate
// fold must keep bit-identical to the exact serial arm.
func testCloud(n int, seed int64) *engine.PointCloud {
	rng := rand.New(rand.NewSource(seed))
	palette := []float64{math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, -12.5, 3.25, 1e9}
	pts := make([]las.Point, n)
	for i := range pts {
		z := rng.Float64()*200 - 50
		if rng.Intn(37) == 0 {
			z = math.NaN()
		}
		pts[i] = las.Point{
			X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Z: z,
			Intensity:      uint16(rng.Intn(1000)),
			Classification: uint8(rng.Intn(9)),
			GPSTime:        palette[rng.Intn(len(palette))],
		}
	}
	pc := engine.NewPointCloud()
	pc.AppendLAS(pts)
	return pc
}

func testSpecs() []engine.GroupedAggSpec {
	return []engine.GroupedAggSpec{
		{Fn: engine.AggCount},
		{Fn: engine.AggMin, Column: engine.ColZ},
		{Fn: engine.AggMax, Column: engine.ColZ},
		{Fn: engine.AggMin, Column: engine.ColGPSTime},
		{Fn: engine.AggMax, Column: engine.ColGPSTime},
		{Fn: engine.AggMax, Column: engine.ColIntensity},
	}
}

// exactGrouped is the reference arm: exact region selection followed by
// the serial grouped kernels — the path the SQL layer takes when the
// pyramid declines.
func exactGrouped(t *testing.T, pc *engine.PointCloud, region grid.Region, specs []engine.GroupedAggSpec) *engine.GroupedResult {
	t.Helper()
	rows := pc.SelectRegionRows(region)
	var res engine.GroupedResult
	if err := pc.GroupedAggregate(rows, engine.ColClassification, specs, &res, nil); err != nil {
		t.Fatalf("exact grouped: %v", err)
	}
	engine.RecycleRows(rows)
	return &res
}

// sameGrouped requires bit-identical keys and aggregate values.
func sameGrouped(t *testing.T, label string, got, want *engine.GroupedResult) {
	t.Helper()
	if len(got.Keys) != len(want.Keys) {
		t.Fatalf("%s: %d groups, exact has %d", label, len(got.Keys), len(want.Keys))
	}
	for i := range want.Keys {
		if math.Float64bits(got.Keys[i]) != math.Float64bits(want.Keys[i]) {
			t.Fatalf("%s: group %d key %v, exact %v", label, i, got.Keys[i], want.Keys[i])
		}
		for j := range want.Cols {
			if math.Float64bits(got.Cols[j][i]) != math.Float64bits(want.Cols[j][i]) {
				t.Fatalf("%s: group %d agg %d = %x, exact %x",
					label, i, j, math.Float64bits(got.Cols[j][i]), math.Float64bits(want.Cols[j][i]))
			}
		}
	}
}

func buildPyramid(t *testing.T, pc *engine.PointCloud, specs []engine.GroupedAggSpec) (*Pyramid, *engine.Run) {
	t.Helper()
	sig, ok := Shape(pc, engine.ColClassification, specs)
	if !ok {
		t.Fatal("test specs should be pyramid-eligible")
	}
	run := new(engine.Run)
	p, err := For(run, pc, engine.ColClassification, specs, sig, nil)
	if err != nil {
		t.Fatalf("For: %v", err)
	}
	if p == nil {
		t.Fatal("pyramid declined an eligible table")
	}
	return p, run
}

// TestPyramidMatchesExact pins pyramid answers to the exact serial arm,
// bit-for-bit, over random viewports (including viewports snapped to tile
// edges, viewports larger than the extent, degenerate slivers and
// viewports outside the data) with NaN values and ±Inf/-0 value columns.
func TestPyramidMatchesExact(t *testing.T) {
	pc := testCloud(200_000, 42)
	specs := testSpecs()
	p, run := buildPyramid(t, pc, specs)
	defer p.Release()
	defer run.Drain()

	ext := pc.Extent()
	bg := p.levels[p.base].grid
	ntiles := float64(uint64(1) << bg.Order)
	tw, th := ext.Width()/ntiles, ext.Height()/ntiles
	rng := rand.New(rand.NewSource(7))

	var res engine.GroupedResult
	for trial := 0; trial < 80; trial++ {
		var env geom.Envelope
		switch trial % 5 {
		case 0: // random viewport, arbitrary alignment
			x := ext.MinX + rng.Float64()*ext.Width()
			y := ext.MinY + rng.Float64()*ext.Height()
			env = geom.NewEnvelope(x, y, x+rng.Float64()*ext.Width(), y+rng.Float64()*ext.Height())
		case 1: // snapped exactly onto base-tile edges
			cx0, cy0 := rng.Intn(int(ntiles)), rng.Intn(int(ntiles))
			cx1, cy1 := cx0+rng.Intn(int(ntiles)-cx0), cy0+rng.Intn(int(ntiles)-cy0)
			env = geom.NewEnvelope(
				ext.MinX+float64(cx0)*tw, ext.MinY+float64(cy0)*th,
				ext.MinX+float64(cx1+1)*tw, ext.MinY+float64(cy1+1)*th)
		case 2: // strictly containing the whole extent
			env = geom.NewEnvelope(ext.MinX-50, ext.MinY-50, ext.MaxX+50, ext.MaxY+50)
		case 3: // sliver around a tile edge
			x := ext.MinX + float64(rng.Intn(int(ntiles)))*tw
			env = geom.NewEnvelope(x-tw/64, ext.MinY, x+tw/64, ext.MaxY)
		default: // entirely outside the data
			env = geom.NewEnvelope(ext.MaxX+10, ext.MaxY+10, ext.MaxX+100, ext.MaxY+100)
		}
		region := grid.GeometryRegion{G: env.ToPolygon()}
		qs, ok, err := p.QueryRegionRun(run, region, specs, &res)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !ok {
			t.Fatalf("trial %d: pyramid declined envelope %+v", trial, env)
		}
		want := exactGrouped(t, pc, region, specs)
		sameGrouped(t, "trial", &res, want)
		if trial%5 == 2 && qs.Boundary != 0 {
			// A viewport strictly containing every data bbox must be all
			// interior — the O(visible tiles) case E18 measures.
			t.Fatalf("containing viewport refined %d boundary tiles", qs.Boundary)
		}
	}
}

// TestPyramidPolygonRegion pins the pyramid against a non-rectangular
// region: boundary classification falls back to the same per-point
// Contains test the grid refiner uses, so concave shapes stay exact.
func TestPyramidPolygonRegion(t *testing.T) {
	pc := testCloud(100_000, 5)
	specs := testSpecs()
	p, run := buildPyramid(t, pc, specs)
	defer p.Release()
	defer run.Drain()
	// An L-shaped polygon covering the lower-left of the extent.
	poly := geom.Polygon{Shell: geom.Ring{Points: []geom.Point{
		{X: 50, Y: 50}, {X: 900, Y: 50}, {X: 900, Y: 300},
		{X: 400, Y: 300}, {X: 400, Y: 800}, {X: 50, Y: 800},
	}}}
	region := grid.GeometryRegion{G: poly}
	var res engine.GroupedResult
	if _, ok, err := p.QueryRegionRun(run, region, specs, &res); err != nil || !ok {
		t.Fatalf("polygon query: ok=%v err=%v", ok, err)
	}
	sameGrouped(t, "polygon", &res, exactGrouped(t, pc, region, specs))
}

// TestPyramidDropsOnEpochBump exercises the epoch contract: an Append (or
// InvalidateIndexes) bumps the table epoch, and the next For drops the
// stale pyramid, rebuilds against the new rows, and answers match the
// exact arm over the post-append state.
func TestPyramidDropsOnEpochBump(t *testing.T) {
	pc := testCloud(60_000, 9)
	specs := testSpecs()
	p1, run := buildPyramid(t, pc, specs)
	defer run.Drain()
	before := Snapshot()
	p1.Release()

	// Same epoch: the cache must serve the same pyramid.
	sig, _ := Shape(pc, engine.ColClassification, specs)
	p2, err := For(run, pc, engine.ColClassification, specs, sig, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Fatal("same-epoch lookup rebuilt the pyramid")
	}
	if s := Snapshot(); s.Hits != before.Hits+1 {
		t.Fatalf("hits = %d, want %d", s.Hits, before.Hits+1)
	}
	p2.Release()

	// Epoch bump: the stale pyramid drops and a fresh one builds.
	rng := rand.New(rand.NewSource(77))
	extra := make([]las.Point, 10_000)
	for i := range extra {
		extra[i] = las.Point{
			X: rng.Float64() * 1200, Y: rng.Float64() * 1200, Z: rng.Float64() * 500,
			Classification: uint8(rng.Intn(12)),
		}
	}
	pc.AppendLAS(extra)
	p3, err := For(run, pc, engine.ColClassification, specs, sig, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == nil {
		t.Fatal("pyramid declined after append")
	}
	defer p3.Release()
	if p3 == p1 {
		t.Fatal("stale pyramid survived the epoch bump")
	}
	if s := Snapshot(); s.Drops != before.Drops+1 || s.Builds != before.Builds+1 {
		t.Fatalf("drops/builds = %d/%d, want %d/%d", s.Drops, s.Builds, before.Drops+1, before.Builds+1)
	}

	region := grid.GeometryRegion{G: geom.NewEnvelope(100, 100, 1100, 1100).ToPolygon()}
	var res engine.GroupedResult
	if _, ok, err := p3.QueryRegionRun(run, region, specs, &res); err != nil || !ok {
		t.Fatalf("post-append query: ok=%v err=%v", ok, err)
	}
	sameGrouped(t, "post-append", &res, exactGrouped(t, pc, region, specs))
}

// TestPyramidDeclines covers the decline paths: empty tables, unknown
// bank shapes, sum/avg specs (excluded from SQL routing by the
// determinism contract) and disabled routing.
func TestPyramidDeclines(t *testing.T) {
	pc := testCloud(10_000, 3)
	if _, ok := Shape(pc, engine.ColClassification, []engine.GroupedAggSpec{
		{Fn: engine.AggSum, Column: engine.ColZ}}); ok {
		t.Fatal("sum specs must not be SQL-eligible")
	}
	if _, ok := Shape(pc, engine.ColZ, []engine.GroupedAggSpec{{Fn: engine.AggCount}}); ok {
		t.Fatal("non-u8 keys must not be eligible")
	}
	if _, ok := Shape(pc, engine.ColClassification, []engine.GroupedAggSpec{
		{Fn: engine.AggMin, Column: "nope"}}); ok {
		t.Fatal("unknown value columns must not be eligible")
	}

	empty := engine.NewPointCloud()
	run := new(engine.Run)
	defer run.Drain()
	specs := []engine.GroupedAggSpec{{Fn: engine.AggCount}}
	if p := newPyramid(empty, 0, engine.ColClassification, specs); p != nil {
		t.Fatal("empty table should decline")
	}

	sig, _ := Shape(pc, engine.ColClassification, specs)
	SetEnabled(false)
	p, err := For(run, pc, engine.ColClassification, specs, sig, nil)
	SetEnabled(true)
	if p != nil || err != nil {
		t.Fatalf("disabled routing returned %v, %v", p, err)
	}

	// A pyramid-side decline: specs naming a bank the pyramid lacks.
	p, run2 := buildPyramid(t, pc, specs)
	defer p.Release()
	defer run2.Drain()
	var res engine.GroupedResult
	region := grid.GeometryRegion{G: geom.NewEnvelope(0, 0, 500, 500).ToPolygon()}
	other := []engine.GroupedAggSpec{{Fn: engine.AggMin, Column: engine.ColZ}}
	if _, ok, err := p.QueryRegionRun(run2, region, other, &res); ok || err != nil {
		t.Fatalf("unknown bank should decline, got ok=%v err=%v", ok, err)
	}
}

// TestPyramidQueryZeroAllocWarm enforces the steady-state contract: with
// the pyramid resident and the result record reused, a viewport query
// performs zero heap allocations — the pan/zoom property the tentpole is
// built around.
func TestPyramidQueryZeroAllocWarm(t *testing.T) {
	pc := testCloud(150_000, 21)
	specs := testSpecs()
	p, run := buildPyramid(t, pc, specs)
	defer p.Release()
	defer run.Drain()
	// Box the region into the interface once: the SQL layer holds the plan's
	// region as an interface value, so per-call conversion is not part of
	// the steady-state contract.
	var region grid.Region = grid.GeometryRegion{G: geom.NewEnvelope(137, 201, 863, 740).ToPolygon()}
	var res engine.GroupedResult
	if _, ok, err := p.QueryRegionRun(run, region, specs, &res); err != nil || !ok {
		t.Fatalf("warm-up query: ok=%v err=%v", ok, err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok, err := p.QueryRegionRun(run, region, specs, &res); err != nil || !ok {
			t.Fatalf("query: ok=%v err=%v", ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm pyramid query allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPyramidPoolBalance checks build + queries + release return every
// pooled buffer: the cache entry's banks recycle on the final Release.
func TestPyramidPoolBalance(t *testing.T) {
	pc := testCloud(80_000, 13)
	specs := testSpecs()
	rowsBefore := engine.SelectionPoolStats().Outstanding
	f64Before := engine.F64PoolStats().Outstanding

	p, run := buildPyramid(t, pc, specs)
	region := grid.GeometryRegion{G: geom.NewEnvelope(100, 100, 900, 900).ToPolygon()}
	var res engine.GroupedResult
	for i := 0; i < 5; i++ {
		if _, ok, err := p.QueryRegionRun(run, region, specs, &res); err != nil || !ok {
			t.Fatalf("query: ok=%v err=%v", ok, err)
		}
	}
	p.Release()
	run.Drain()
	// Drop the cache's own reference by bumping the epoch and looking up.
	pc.InvalidateIndexes()
	sig, _ := Shape(pc, engine.ColClassification, specs)
	if got := shared.lookup(pc, sig, pc.Epoch()); got != nil {
		t.Fatal("stale pyramid served after InvalidateIndexes")
	}

	if d := engine.SelectionPoolStats().Outstanding - rowsBefore; d != 0 {
		t.Fatalf("selection pool drifted by %d buffers", d)
	}
	if d := engine.F64PoolStats().Outstanding - f64Before; d != 0 {
		t.Fatalf("f64 pool drifted by %d buffers", d)
	}
}

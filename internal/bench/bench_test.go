package bench

import (
	"strings"
	"testing"
	"time"
)

func TestMeasure(t *testing.T) {
	d := Measure(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("measured %v, want >= 1ms", d)
	}
	n := 0
	d = MeasureN(5, func() { n++ })
	if n != 5 || d < 0 {
		t.Fatalf("MeasureN ran %d times", n)
	}
	MeasureN(0, func() { n++ }) // clamps to 1
	if n != 6 {
		t.Fatal("MeasureN(0) should run once")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(2_000_000, time.Second); got != "2.00 M/s" {
		t.Fatalf("throughput = %q", got)
	}
	if got := Throughput(5000, time.Second); got != "5.0 K/s" {
		t.Fatalf("throughput = %q", got)
	}
	if got := Throughput(5, time.Second); got != "5 /s" {
		t.Fatalf("throughput = %q", got)
	}
	if got := Throughput(5, 0); got != "inf" {
		t.Fatalf("throughput = %q", got)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		100:     "100 B",
		2048:    "2.0 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for n, want := range cases {
		if got := HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("a-much-longer-name", time.Millisecond*1500)
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	s := tb.String()
	if !strings.Contains(s, "== demo ==") {
		t.Fatal("title missing")
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "1.500") {
		t.Fatalf("rows missing:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	// Columns align: header and separator have same width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatal("separator width mismatch")
	}
}

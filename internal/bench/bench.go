// Package bench provides the small experiment-harness utilities shared by
// cmd/pcbench and the testing.B benchmarks: wall-clock measurement and
// aligned result tables matching the rows reported in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Measure runs fn and returns its wall-clock duration.
func Measure(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// MeasureN runs fn n times and returns the mean duration.
func MeasureN(n int, fn func()) time.Duration {
	if n < 1 {
		n = 1
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(n)
}

// Throughput formats an items/second figure.
func Throughput(items int, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	rate := float64(items) / d.Seconds()
	switch {
	case rate >= 1e6:
		return fmt.Sprintf("%.2f M/s", rate/1e6)
	case rate >= 1e3:
		return fmt.Sprintf("%.1f K/s", rate/1e3)
	default:
		return fmt.Sprintf("%.0f /s", rate)
	}
}

// HumanBytes formats a byte count.
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.WriteTo(&sb) //nolint:errcheck // strings.Builder cannot fail
	return sb.String()
}

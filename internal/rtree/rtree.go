// Package rtree implements a static, bulk-loaded R-tree over 2-D envelopes
// using Sort-Tile-Recursive (STR) packing. Vector tables use it to
// accelerate spatial selections over feature envelopes — the role a spatial
// index plays for auxiliary GIS data in a traditional spatially-enabled
// DBMS (§2.2), complementing the imprints that serve the point cloud.
package rtree

import (
	"math"
	"sort"

	"gisnav/internal/geom"
)

// DefaultMaxEntries is the default node fan-out.
const DefaultMaxEntries = 16

// Item is one indexed envelope with its caller-assigned id.
type Item struct {
	Env geom.Envelope
	ID  int
}

// node is an R-tree node: either a leaf holding items or an inner node
// holding children.
type node struct {
	env      geom.Envelope
	items    []Item  // leaves only
	children []*node // inner nodes only
}

// Tree is an immutable STR-packed R-tree.
type Tree struct {
	root       *node
	count      int
	height     int
	maxEntries int
}

// BuildSTR bulk-loads the items. maxEntries ≤ 1 selects the default
// fan-out. The input slice is not retained but items are copied.
func BuildSTR(items []Item, maxEntries int) *Tree {
	if maxEntries <= 1 {
		maxEntries = DefaultMaxEntries
	}
	t := &Tree{count: len(items), maxEntries: maxEntries}
	if len(items) == 0 {
		return t
	}
	leaves := packLeaves(append([]Item(nil), items...), maxEntries)
	t.height = 1
	level := leaves
	for len(level) > 1 {
		level = packNodes(level, maxEntries)
		t.height++
	}
	t.root = level[0]
	return t
}

// packLeaves tiles items into leaf nodes with the STR recipe: sort by
// centre X, cut into vertical slabs of ~sqrt(nSlices) leaves each, sort
// each slab by centre Y, emit runs of maxEntries.
func packLeaves(items []Item, maxEntries int) []*node {
	nLeaves := (len(items) + maxEntries - 1) / maxEntries
	nSlabs := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	slabSize := nSlabs * maxEntries

	sort.Slice(items, func(i, j int) bool {
		return items[i].Env.Center().X < items[j].Env.Center().X
	})
	var leaves []*node
	for start := 0; start < len(items); start += slabSize {
		end := start + slabSize
		if end > len(items) {
			end = len(items)
		}
		slab := items[start:end]
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].Env.Center().Y < slab[j].Env.Center().Y
		})
		for ls := 0; ls < len(slab); ls += maxEntries {
			le := ls + maxEntries
			if le > len(slab) {
				le = len(slab)
			}
			leaf := &node{items: append([]Item(nil), slab[ls:le]...), env: geom.EmptyEnvelope()}
			for _, it := range leaf.items {
				leaf.env.ExpandToEnvelope(it.Env)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes packs one tree level into the next using the same STR tiling.
func packNodes(level []*node, maxEntries int) []*node {
	nParents := (len(level) + maxEntries - 1) / maxEntries
	nSlabs := int(math.Ceil(math.Sqrt(float64(nParents))))
	slabSize := nSlabs * maxEntries

	sort.Slice(level, func(i, j int) bool {
		return level[i].env.Center().X < level[j].env.Center().X
	})
	var parents []*node
	for start := 0; start < len(level); start += slabSize {
		end := start + slabSize
		if end > len(level) {
			end = len(level)
		}
		slab := level[start:end]
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].env.Center().Y < slab[j].env.Center().Y
		})
		for ls := 0; ls < len(slab); ls += maxEntries {
			le := ls + maxEntries
			if le > len(slab) {
				le = len(slab)
			}
			parent := &node{children: append([]*node(nil), slab[ls:le]...), env: geom.EmptyEnvelope()}
			for _, ch := range parent.children {
				parent.env.ExpandToEnvelope(ch.env)
			}
			parents = append(parents, parent)
		}
	}
	return parents
}

// Len reports the number of indexed items.
func (t *Tree) Len() int { return t.count }

// Height reports the tree height in levels (0 for an empty tree).
func (t *Tree) Height() int { return t.height }

// Bounds returns the root envelope.
func (t *Tree) Bounds() geom.Envelope {
	if t.root == nil {
		return geom.EmptyEnvelope()
	}
	return t.root.env
}

// Search visits every item whose envelope intersects q; fn returning false
// stops the search early. Visit order is unspecified.
func (t *Tree) Search(q geom.Envelope, fn func(Item) bool) {
	if t.root == nil || q.IsEmpty() {
		return
	}
	searchNode(t.root, q, fn)
}

func searchNode(n *node, q geom.Envelope, fn func(Item) bool) bool {
	if !n.env.Intersects(q) {
		return true
	}
	if n.items != nil {
		for _, it := range n.items {
			if it.Env.Intersects(q) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for _, ch := range n.children {
		if !searchNode(ch, q, fn) {
			return false
		}
	}
	return true
}

// SearchIDs collects the ids of intersecting items in ascending order.
func (t *Tree) SearchIDs(q geom.Envelope) []int {
	var ids []int
	t.Search(q, func(it Item) bool {
		ids = append(ids, it.ID)
		return true
	})
	sort.Ints(ids)
	return ids
}

// NodesTouched counts the nodes a query visits (for index diagnostics).
func (t *Tree) NodesTouched(q geom.Envelope) int {
	if t.root == nil {
		return 0
	}
	return countTouched(t.root, q)
}

func countTouched(n *node, q geom.Envelope) int {
	if !n.env.Intersects(q) {
		return 0
	}
	total := 1
	for _, ch := range n.children {
		total += countTouched(ch, q)
	}
	return total
}

package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gisnav/internal/geom"
)

// randomItems scatters n small boxes over a 1000×1000 field.
func randomItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		items[i] = Item{
			ID:  i,
			Env: geom.NewEnvelope(x, y, x+rng.Float64()*20, y+rng.Float64()*20),
		}
	}
	return items
}

// naiveSearch is the reference evaluator.
func naiveSearch(items []Item, q geom.Envelope) []int {
	var ids []int
	for _, it := range items {
		if it.Env.Intersects(q) {
			ids = append(ids, it.ID)
		}
	}
	return ids
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := BuildSTR(nil, 0)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree should be empty")
	}
	if !tr.Bounds().IsEmpty() {
		t.Fatal("empty tree bounds should be empty")
	}
	if ids := tr.SearchIDs(geom.NewEnvelope(0, 0, 1, 1)); ids != nil {
		t.Fatal("empty tree search should be empty")
	}
	if tr.NodesTouched(geom.NewEnvelope(0, 0, 1, 1)) != 0 {
		t.Fatal("empty tree touches no nodes")
	}
}

func TestSingleItem(t *testing.T) {
	tr := BuildSTR([]Item{{ID: 7, Env: geom.NewEnvelope(1, 1, 2, 2)}}, 0)
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
	if ids := tr.SearchIDs(geom.NewEnvelope(0, 0, 3, 3)); len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("search = %v", ids)
	}
	if ids := tr.SearchIDs(geom.NewEnvelope(5, 5, 6, 6)); ids != nil {
		t.Fatalf("miss should be empty, got %v", ids)
	}
}

func TestSearchMatchesNaive(t *testing.T) {
	items := randomItems(5000, 1)
	tr := BuildSTR(items, 0)
	if tr.Len() != 5000 {
		t.Fatal("count wrong")
	}
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 200; iter++ {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		q := geom.NewEnvelope(x, y, x+rng.Float64()*150, y+rng.Float64()*150)
		got := tr.SearchIDs(q)
		want := naiveSearch(items, q)
		if !equalIDs(got, want) {
			t.Fatalf("query %v: got %d ids, want %d", q, len(got), len(want))
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	items := randomItems(1000, 3)
	tr := BuildSTR(items, 0)
	visits := 0
	tr.Search(geom.NewEnvelope(0, 0, 1000, 1000), func(Item) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("early stop visited %d", visits)
	}
}

func TestEmptyQuery(t *testing.T) {
	tr := BuildSTR(randomItems(100, 4), 0)
	if ids := tr.SearchIDs(geom.EmptyEnvelope()); ids != nil {
		t.Fatal("empty query should match nothing")
	}
}

func TestFanoutAndHeight(t *testing.T) {
	items := randomItems(1000, 5)
	small := BuildSTR(items, 4)
	big := BuildSTR(items, 64)
	if small.Height() <= big.Height() {
		t.Fatalf("fanout 4 height %d should exceed fanout 64 height %d",
			small.Height(), big.Height())
	}
	// Both stay correct.
	q := geom.NewEnvelope(200, 200, 400, 400)
	if !equalIDs(small.SearchIDs(q), big.SearchIDs(q)) {
		t.Fatal("fanout changed results")
	}
}

func TestPruningEffectiveness(t *testing.T) {
	items := randomItems(10000, 6)
	tr := BuildSTR(items, 0)
	// A tiny query must touch a small fraction of the nodes.
	q := geom.NewEnvelope(500, 500, 510, 510)
	full := tr.NodesTouched(geom.NewEnvelope(0, 0, 1000, 1000))
	tiny := tr.NodesTouched(q)
	if tiny*10 > full {
		t.Fatalf("tiny query touched %d of %d nodes — no pruning", tiny, full)
	}
}

func TestBoundsCoverAllItems(t *testing.T) {
	items := randomItems(500, 7)
	tr := BuildSTR(items, 0)
	b := tr.Bounds()
	for _, it := range items {
		if !b.ContainsEnvelope(it.Env) {
			t.Fatalf("bounds %v does not cover %v", b, it.Env)
		}
	}
}

// Property: STR search equals naive search for arbitrary item sets.
func TestQuickSearchEquivalence(t *testing.T) {
	f := func(seeds []uint16, qx, qy, qw, qh uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		items := make([]Item, len(seeds))
		for i, s := range seeds {
			x := float64(s % 500)
			y := float64((s / 7) % 500)
			items[i] = Item{ID: i, Env: geom.NewEnvelope(x, y, x+float64(s%30), y+float64(s%17))}
		}
		tr := BuildSTR(items, 8)
		q := geom.NewEnvelope(float64(qx%500), float64(qy%500),
			float64(qx%500)+float64(qw%200), float64(qy%500)+float64(qh%200))
		return equalIDs(tr.SearchIDs(q), naiveSearch(items, q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEnvelopes(t *testing.T) {
	// Many items sharing one envelope (multiple features on the same spot).
	env := geom.NewEnvelope(10, 10, 20, 20)
	items := make([]Item, 100)
	for i := range items {
		items[i] = Item{ID: i, Env: env}
	}
	tr := BuildSTR(items, 8)
	ids := tr.SearchIDs(geom.NewEnvelope(15, 15, 16, 16))
	if len(ids) != 100 {
		t.Fatalf("duplicates lost: %d", len(ids))
	}
}

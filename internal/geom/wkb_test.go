package geom

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

// wkbRoundTrip encodes and decodes g, failing on mismatch of WKT forms
// (which canonicalises ring closure).
func wkbRoundTrip(t *testing.T, g Geometry) Geometry {
	t.Helper()
	buf := MarshalWKB(g)
	got, err := UnmarshalWKB(buf)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", g.WKT(), err)
	}
	if got.WKT() != g.WKT() && !(g.IsEmpty() && got.IsEmpty()) {
		// Polygons canonicalise to closed rings in both codecs, so WKT
		// equality is the right comparison.
		t.Fatalf("roundtrip %s != %s", got.WKT(), g.WKT())
	}
	return got
}

func TestWKBAllTypes(t *testing.T) {
	poly := Polygon{
		Shell: Ring{Points: []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}}},
		Holes: []Ring{{Points: []Point{{2, 2}, {4, 2}, {4, 4}, {2, 4}, {2, 2}}}},
	}
	cases := []Geometry{
		Point{1.5, -2.5},
		LineString{Points: []Point{{0, 0}, {3, 4}, {5, -1}}},
		poly,
		MultiPoint{Points: []Point{{1, 2}, {3, 4}}},
		MultiLineString{Lines: []LineString{
			{Points: []Point{{0, 0}, {1, 1}}},
			{Points: []Point{{2, 2}, {3, 3}, {4, 4}}},
		}},
		MultiPolygon{Polygons: []Polygon{poly, {Shell: Ring{Points: []Point{{20, 20}, {30, 20}, {25, 30}, {20, 20}}}}}},
		Collection{Geometries: []Geometry{Point{9, 9}, LineString{Points: []Point{{0, 0}, {1, 0}}}}},
	}
	for _, g := range cases {
		wkbRoundTrip(t, g)
	}
}

func TestWKBEmptyGeometries(t *testing.T) {
	for _, g := range []Geometry{
		LineString{}, Polygon{}, MultiPoint{}, MultiLineString{}, MultiPolygon{}, Collection{},
	} {
		got := wkbRoundTrip(t, g)
		if !got.IsEmpty() {
			t.Fatalf("%T should round-trip empty", g)
		}
	}
}

func TestWKBBigEndianDecode(t *testing.T) {
	// Hand-build a big-endian point.
	var buf bytes.Buffer
	buf.WriteByte(0) // XDR
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], wkbPoint)
	buf.Write(b4[:])
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], math.Float64bits(3.5))
	buf.Write(b8[:])
	binary.BigEndian.PutUint64(b8[:], math.Float64bits(-7.25))
	buf.Write(b8[:])
	g, err := UnmarshalWKB(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if g.(Point) != (Point{3.5, -7.25}) {
		t.Fatalf("decoded %v", g)
	}
}

func TestWKBErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{5},                                   // bad byte order
		{1},                                   // truncated type
		{1, 1, 0, 0, 0},                       // point with no coords
		{1, 99, 0, 0, 0},                      // unknown type
		append(MarshalWKB(Point{1, 2}), 0xFF), // trailing byte
	}
	for i, b := range bad {
		if _, err := UnmarshalWKB(b); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Absurd declared point count must be rejected before allocation.
	var buf bytes.Buffer
	buf.WriteByte(1)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], wkbLineString)
	buf.Write(b4[:])
	binary.LittleEndian.PutUint32(b4[:], 0xFFFFFFFF)
	buf.Write(b4[:])
	if _, err := UnmarshalWKB(buf.Bytes()); err == nil {
		t.Fatal("huge count should fail")
	}
	// Wrong member type inside a multi-geometry.
	var mp bytes.Buffer
	mp.WriteByte(1)
	binary.LittleEndian.PutUint32(b4[:], wkbMultiPoint)
	mp.Write(b4[:])
	binary.LittleEndian.PutUint32(b4[:], 1)
	mp.Write(b4[:])
	mp.Write(MarshalWKB(LineString{Points: []Point{{0, 0}, {1, 1}}}))
	if _, err := UnmarshalWKB(mp.Bytes()); err == nil {
		t.Fatal("line inside multipoint should fail")
	}
}

// Property: WKB round-trips arbitrary finite line strings exactly.
func TestQuickWKBLineRoundTrip(t *testing.T) {
	f := func(coords []float64) bool {
		var pts []Point
		for i := 0; i+1 < len(coords); i += 2 {
			x, y := coords[i], coords[i+1]
			if x != x || y != y {
				return true
			}
			pts = append(pts, Point{x, y})
		}
		l := LineString{Points: pts}
		got, err := UnmarshalWKB(MarshalWKB(l))
		if err != nil {
			return false
		}
		l2, ok := got.(LineString)
		if !ok || len(l2.Points) != len(pts) {
			return false
		}
		for i := range pts {
			if math.Float64bits(pts[i].X) != math.Float64bits(l2.Points[i].X) ||
				math.Float64bits(pts[i].Y) != math.Float64bits(l2.Points[i].Y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: WKB and WKT agree — parsing the WKT of a geometry and decoding
// its WKB produce the same WKT rendering.
func TestQuickWKBWKTAgreement(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n < 3 {
			return true
		}
		var pts []Point
		for i := 0; i < n; i++ {
			pts = append(pts, Point{float64(xs[i]), float64(ys[i])})
		}
		p := Polygon{Shell: Ring{Points: pts}}
		viaWKB, err := UnmarshalWKB(MarshalWKB(p))
		if err != nil {
			return false
		}
		viaWKT, err := ParseWKT(p.WKT())
		if err != nil {
			return false
		}
		return viaWKB.WKT() == viaWKT.WKT()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

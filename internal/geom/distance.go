package geom

import "math"

// pointSegmentDistance returns the distance from point p to closed segment ab.
func pointSegmentDistance(p, a, b Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	apx, apy := p.X-a.X, p.Y-a.Y
	den := abx*abx + aby*aby
	if den == 0 {
		return p.DistanceTo(a)
	}
	t := (apx*abx + apy*aby) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := Point{X: a.X + t*abx, Y: a.Y + t*aby}
	return p.DistanceTo(proj)
}

// DistancePointToGeometry returns the minimum Euclidean distance from (x, y)
// to geometry g; zero when the point lies inside an areal geometry.
func DistancePointToGeometry(x, y float64, g Geometry) float64 {
	p := Point{x, y}
	switch t := g.(type) {
	case Point:
		return p.DistanceTo(t)
	case MultiPoint:
		d := math.Inf(1)
		for _, q := range t.Points {
			d = math.Min(d, p.DistanceTo(q))
		}
		return d
	case LineString:
		d := math.Inf(1)
		if len(t.Points) == 1 {
			return p.DistanceTo(t.Points[0])
		}
		for i := 1; i < len(t.Points); i++ {
			d = math.Min(d, pointSegmentDistance(p, t.Points[i-1], t.Points[i]))
		}
		return d
	case MultiLineString:
		d := math.Inf(1)
		for _, l := range t.Lines {
			d = math.Min(d, DistancePointToGeometry(x, y, l))
		}
		return d
	case Polygon:
		if PolygonContainsPoint(t, x, y) {
			return 0
		}
		d := ringDistance(p, t.Shell)
		for _, h := range t.Holes {
			d = math.Min(d, ringDistance(p, h))
		}
		return d
	case MultiPolygon:
		d := math.Inf(1)
		for _, poly := range t.Polygons {
			d = math.Min(d, DistancePointToGeometry(x, y, poly))
			if d == 0 {
				return 0
			}
		}
		return d
	case Collection:
		d := math.Inf(1)
		for _, sub := range t.Geometries {
			d = math.Min(d, DistancePointToGeometry(x, y, sub))
			if d == 0 {
				return 0
			}
		}
		return d
	default:
		return math.Inf(1)
	}
}

func ringDistance(p Point, r Ring) float64 {
	pts := r.closedPoints()
	d := math.Inf(1)
	for i := 1; i < len(pts); i++ {
		d = math.Min(d, pointSegmentDistance(p, pts[i-1], pts[i]))
	}
	return d
}

// DWithin reports whether (x, y) lies within distance d of geometry g.
// This is the predicate behind the paper's scenario-2 query "LIDAR points
// near a fast transit road" (ST_DWithin).
func DWithin(x, y float64, g Geometry, d float64) bool {
	// Envelope quick reject: the point must be inside the buffered bbox.
	if !g.Envelope().Buffer(d).ContainsPoint(x, y) {
		return false
	}
	return DistancePointToGeometry(x, y, g) <= d
}

// GeometryDistance returns the minimum distance between two geometries for
// the supported pairs. It is exact for point/line/polygon combinations built
// from segments; for intersecting geometries it returns 0.
func GeometryDistance(a, b Geometry) float64 {
	if Intersects(a, b) {
		return 0
	}
	av := vertices(a)
	bv := vertices(b)
	d := math.Inf(1)
	// Vertex-to-geometry in both directions covers the segment-pair minimum
	// for non-intersecting inputs (min distance is attained at a vertex of
	// one operand for straight-segment geometries... except for the
	// segment–segment parallel case, attained at endpoints too).
	for _, p := range av {
		d = math.Min(d, DistancePointToGeometry(p.X, p.Y, b))
	}
	for _, p := range bv {
		d = math.Min(d, DistancePointToGeometry(p.X, p.Y, a))
	}
	return d
}

// vertices collects the coordinate points of g.
func vertices(g Geometry) []Point {
	switch t := g.(type) {
	case Point:
		return []Point{t}
	case MultiPoint:
		return t.Points
	case LineString:
		return t.Points
	case MultiLineString:
		var out []Point
		for _, l := range t.Lines {
			out = append(out, l.Points...)
		}
		return out
	case Polygon:
		out := append([]Point(nil), t.Shell.Points...)
		for _, h := range t.Holes {
			out = append(out, h.Points...)
		}
		return out
	case MultiPolygon:
		var out []Point
		for _, p := range t.Polygons {
			out = append(out, vertices(p)...)
		}
		return out
	case Collection:
		var out []Point
		for _, sub := range t.Geometries {
			out = append(out, vertices(sub)...)
		}
		return out
	default:
		return nil
	}
}

package geom

import "math"

// orientation classifies the turn p→q→r: +1 counter-clockwise, -1 clockwise,
// 0 collinear. It is the sign of the cross product (q-p)×(r-p).
func orientation(p, q, r Point) int {
	v := (q.X-p.X)*(r.Y-p.Y) - (q.Y-p.Y)*(r.X-p.X)
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// onSegment reports whether collinear point r lies on segment pq.
func onSegment(p, q, r Point) bool {
	return math.Min(p.X, q.X) <= r.X && r.X <= math.Max(p.X, q.X) &&
		math.Min(p.Y, q.Y) <= r.Y && r.Y <= math.Max(p.Y, q.Y)
}

// SegmentsIntersect reports whether closed segments ab and cd share a point.
func SegmentsIntersect(a, b, c, d Point) bool {
	o1 := orientation(a, b, c)
	o2 := orientation(a, b, d)
	o3 := orientation(c, d, a)
	o4 := orientation(c, d, b)
	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear touching cases.
	if o1 == 0 && onSegment(a, b, c) {
		return true
	}
	if o2 == 0 && onSegment(a, b, d) {
		return true
	}
	if o3 == 0 && onSegment(c, d, a) {
		return true
	}
	if o4 == 0 && onSegment(c, d, b) {
		return true
	}
	return false
}

// ringContains reports whether (x, y) is inside the ring using the even–odd
// (ray casting) rule. Points exactly on the boundary are reported as inside,
// which matches the closed-region semantics the refinement step needs.
func ringContains(r Ring, x, y float64) bool {
	pts := r.closedPoints()
	if len(pts) < 4 {
		return false
	}
	inside := false
	for i := 1; i < len(pts); i++ {
		p1, p2 := pts[i-1], pts[i]
		// Boundary check: point on segment p1p2.
		if orientation(p1, p2, Point{x, y}) == 0 && onSegment(p1, p2, Point{x, y}) {
			return true
		}
		// Cast a ray towards +X: count edges crossing the horizontal line at y.
		if (p1.Y > y) != (p2.Y > y) {
			xCross := p1.X + (y-p1.Y)*(p2.X-p1.X)/(p2.Y-p1.Y)
			if x < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// PolygonContainsPoint reports whether (x, y) lies inside the polygon
// (boundary inclusive), honouring holes.
func PolygonContainsPoint(p Polygon, x, y float64) bool {
	if !ringContains(p.Shell, x, y) {
		return false
	}
	for _, h := range p.Holes {
		if ringContainsExclusive(h, x, y) {
			return false
		}
	}
	return true
}

// ringContainsExclusive is ringContains with boundary points treated as
// outside. Hole boundaries belong to the polygon, so a point on a hole's rim
// is still contained in the polygon.
func ringContainsExclusive(r Ring, x, y float64) bool {
	pts := r.closedPoints()
	if len(pts) < 4 {
		return false
	}
	inside := false
	for i := 1; i < len(pts); i++ {
		p1, p2 := pts[i-1], pts[i]
		if orientation(p1, p2, Point{x, y}) == 0 && onSegment(p1, p2, Point{x, y}) {
			return false // on the hole rim: not strictly inside the hole
		}
		if (p1.Y > y) != (p2.Y > y) {
			xCross := p1.X + (y-p1.Y)*(p2.X-p1.X)/(p2.Y-p1.Y)
			if x < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// MultiPolygonContainsPoint reports whether any member polygon contains (x, y).
func MultiPolygonContainsPoint(m MultiPolygon, x, y float64) bool {
	for _, p := range m.Polygons {
		if PolygonContainsPoint(p, x, y) {
			return true
		}
	}
	return false
}

// ContainsPoint evaluates point containment for any geometry type. Lines and
// points use exact coordinate matching, areal types use interior+boundary.
func ContainsPoint(g Geometry, x, y float64) bool {
	switch t := g.(type) {
	case Point:
		return t.X == x && t.Y == y
	case MultiPoint:
		for _, p := range t.Points {
			if p.X == x && p.Y == y {
				return true
			}
		}
		return false
	case LineString:
		q := Point{x, y}
		for i := 1; i < len(t.Points); i++ {
			if orientation(t.Points[i-1], t.Points[i], q) == 0 && onSegment(t.Points[i-1], t.Points[i], q) {
				return true
			}
		}
		return false
	case MultiLineString:
		for _, l := range t.Lines {
			if ContainsPoint(l, x, y) {
				return true
			}
		}
		return false
	case Polygon:
		return PolygonContainsPoint(t, x, y)
	case MultiPolygon:
		return MultiPolygonContainsPoint(t, x, y)
	case Collection:
		for _, sub := range t.Geometries {
			if ContainsPoint(sub, x, y) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// BoxRelation classifies a box against an areal geometry, the primitive the
// regular-grid refinement step relies on (paper §3.3): a cell fully inside
// accepts all its points in one step, a cell fully outside rejects them, and
// only boundary cells require exhaustive per-point tests.
type BoxRelation uint8

// Box–geometry relations.
const (
	BoxOutside  BoxRelation = iota // box and geometry are disjoint
	BoxInside                      // box lies entirely within the geometry
	BoxBoundary                    // box straddles the geometry boundary
)

// String names the relation for diagnostics.
func (r BoxRelation) String() string {
	switch r {
	case BoxOutside:
		return "outside"
	case BoxInside:
		return "inside"
	default:
		return "boundary"
	}
}

// ringIntersectsBox reports whether any ring edge touches the box.
func ringIntersectsBox(r Ring, e Envelope) bool {
	pts := r.closedPoints()
	corners := [4]Point{
		{e.MinX, e.MinY}, {e.MaxX, e.MinY}, {e.MaxX, e.MaxY}, {e.MinX, e.MaxY},
	}
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		// Quick reject on the segment's own bbox.
		if math.Max(a.X, b.X) < e.MinX || math.Min(a.X, b.X) > e.MaxX ||
			math.Max(a.Y, b.Y) < e.MinY || math.Min(a.Y, b.Y) > e.MaxY {
			continue
		}
		// Endpoint inside the box.
		if e.ContainsPoint(a.X, a.Y) || e.ContainsPoint(b.X, b.Y) {
			return true
		}
		for j := 0; j < 4; j++ {
			if SegmentsIntersect(a, b, corners[j], corners[(j+1)%4]) {
				return true
			}
		}
	}
	return false
}

// ClassifyBoxPolygon classifies box e against polygon p.
func ClassifyBoxPolygon(p Polygon, e Envelope) BoxRelation {
	if e.IsEmpty() || p.IsEmpty() {
		return BoxOutside
	}
	if !e.Intersects(p.Envelope()) {
		return BoxOutside
	}
	// Any boundary edge (shell or hole) crossing the box makes it a
	// boundary cell.
	if ringIntersectsBox(p.Shell, e) {
		return BoxBoundary
	}
	for _, h := range p.Holes {
		if ringIntersectsBox(h, e) {
			return BoxBoundary
		}
	}
	// No edges cross: the box is wholly inside or wholly outside, decided by
	// any single interior point — the centre.
	c := e.Center()
	if PolygonContainsPoint(p, c.X, c.Y) {
		return BoxInside
	}
	return BoxOutside
}

// ClassifyBoxMultiPolygon classifies e against a multipolygon. The box is
// inside when it is inside any member; boundary when it touches any member
// boundary without being inside another member.
func ClassifyBoxMultiPolygon(m MultiPolygon, e Envelope) BoxRelation {
	rel := BoxOutside
	for _, p := range m.Polygons {
		switch ClassifyBoxPolygon(p, e) {
		case BoxInside:
			return BoxInside
		case BoxBoundary:
			rel = BoxBoundary
		}
	}
	return rel
}

// ClassifyBox classifies a box against any geometry. For non-areal types the
// result is never BoxInside: boxes touching a line/point are boundary cells.
func ClassifyBox(g Geometry, e Envelope) BoxRelation {
	switch t := g.(type) {
	case Polygon:
		return ClassifyBoxPolygon(t, e)
	case MultiPolygon:
		return ClassifyBoxMultiPolygon(t, e)
	case Point:
		if e.ContainsPoint(t.X, t.Y) {
			return BoxBoundary
		}
		return BoxOutside
	case MultiPoint:
		for _, p := range t.Points {
			if e.ContainsPoint(p.X, p.Y) {
				return BoxBoundary
			}
		}
		return BoxOutside
	case LineString:
		if lineIntersectsBox(t, e) {
			return BoxBoundary
		}
		return BoxOutside
	case MultiLineString:
		for _, l := range t.Lines {
			if lineIntersectsBox(l, e) {
				return BoxBoundary
			}
		}
		return BoxOutside
	case Collection:
		rel := BoxOutside
		for _, sub := range t.Geometries {
			switch ClassifyBox(sub, e) {
			case BoxInside:
				return BoxInside
			case BoxBoundary:
				rel = BoxBoundary
			}
		}
		return rel
	default:
		return BoxOutside
	}
}

// lineIntersectsBox reports whether any segment of l touches the box.
func lineIntersectsBox(l LineString, e Envelope) bool {
	if len(l.Points) == 1 {
		return e.ContainsPoint(l.Points[0].X, l.Points[0].Y)
	}
	corners := [4]Point{
		{e.MinX, e.MinY}, {e.MaxX, e.MinY}, {e.MaxX, e.MaxY}, {e.MinX, e.MaxY},
	}
	for i := 1; i < len(l.Points); i++ {
		a, b := l.Points[i-1], l.Points[i]
		if e.ContainsPoint(a.X, a.Y) || e.ContainsPoint(b.X, b.Y) {
			return true
		}
		for j := 0; j < 4; j++ {
			if SegmentsIntersect(a, b, corners[j], corners[(j+1)%4]) {
				return true
			}
		}
	}
	return false
}

// Intersects reports whether geometries a and b share at least one point.
// It covers the type pairs used by the demo queries (point, line, polygon and
// their Multi* forms). Envelope pre-filtering is applied throughout.
func Intersects(a, b Geometry) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if !a.Envelope().Intersects(b.Envelope()) {
		return false
	}
	// Normalise: handle by the "simpler" operand where possible.
	switch t := a.(type) {
	case Point:
		return ContainsPoint(b, t.X, t.Y)
	case MultiPoint:
		for _, p := range t.Points {
			if ContainsPoint(b, p.X, p.Y) {
				return true
			}
		}
		return false
	case LineString:
		return lineIntersectsGeometry(t, b)
	case MultiLineString:
		for _, l := range t.Lines {
			if lineIntersectsGeometry(l, b) {
				return true
			}
		}
		return false
	case Polygon:
		return polygonIntersectsGeometry(t, b)
	case MultiPolygon:
		for _, p := range t.Polygons {
			if polygonIntersectsGeometry(p, b) {
				return true
			}
		}
		return false
	case Collection:
		for _, sub := range t.Geometries {
			if Intersects(sub, b) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func lineIntersectsGeometry(l LineString, g Geometry) bool {
	switch t := g.(type) {
	case Point:
		return ContainsPoint(l, t.X, t.Y)
	case MultiPoint:
		for _, p := range t.Points {
			if ContainsPoint(l, p.X, p.Y) {
				return true
			}
		}
		return false
	case LineString:
		for i := 1; i < len(l.Points); i++ {
			for j := 1; j < len(t.Points); j++ {
				if SegmentsIntersect(l.Points[i-1], l.Points[i], t.Points[j-1], t.Points[j]) {
					return true
				}
			}
		}
		return false
	case MultiLineString:
		for _, o := range t.Lines {
			if lineIntersectsGeometry(l, o) {
				return true
			}
		}
		return false
	case Polygon:
		return linePolygonIntersect(l, t)
	case MultiPolygon:
		for _, p := range t.Polygons {
			if linePolygonIntersect(l, p) {
				return true
			}
		}
		return false
	case Collection:
		for _, sub := range t.Geometries {
			if lineIntersectsGeometry(l, sub) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func linePolygonIntersect(l LineString, p Polygon) bool {
	// Any vertex inside the polygon.
	for _, pt := range l.Points {
		if PolygonContainsPoint(p, pt.X, pt.Y) {
			return true
		}
	}
	// Any segment crossing the shell or a hole boundary.
	rings := append([]Ring{p.Shell}, p.Holes...)
	for _, r := range rings {
		pts := r.closedPoints()
		for i := 1; i < len(l.Points); i++ {
			for j := 1; j < len(pts); j++ {
				if SegmentsIntersect(l.Points[i-1], l.Points[i], pts[j-1], pts[j]) {
					return true
				}
			}
		}
	}
	return false
}

func polygonIntersectsGeometry(p Polygon, g Geometry) bool {
	switch t := g.(type) {
	case Point:
		return PolygonContainsPoint(p, t.X, t.Y)
	case MultiPoint:
		for _, q := range t.Points {
			if PolygonContainsPoint(p, q.X, q.Y) {
				return true
			}
		}
		return false
	case LineString:
		return linePolygonIntersect(t, p)
	case MultiLineString:
		for _, l := range t.Lines {
			if linePolygonIntersect(l, p) {
				return true
			}
		}
		return false
	case Polygon:
		return polygonsIntersect(p, t)
	case MultiPolygon:
		for _, q := range t.Polygons {
			if polygonsIntersect(p, q) {
				return true
			}
		}
		return false
	case Collection:
		for _, sub := range t.Geometries {
			if polygonIntersectsGeometry(p, sub) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func polygonsIntersect(a, b Polygon) bool {
	// A vertex of one inside the other.
	for _, pt := range a.Shell.Points {
		if PolygonContainsPoint(b, pt.X, pt.Y) {
			return true
		}
	}
	for _, pt := range b.Shell.Points {
		if PolygonContainsPoint(a, pt.X, pt.Y) {
			return true
		}
	}
	// Shell edges crossing.
	ap := a.Shell.closedPoints()
	bp := b.Shell.closedPoints()
	for i := 1; i < len(ap); i++ {
		for j := 1; j < len(bp); j++ {
			if SegmentsIntersect(ap[i-1], ap[i], bp[j-1], bp[j]) {
				return true
			}
		}
	}
	return false
}

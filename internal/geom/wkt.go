package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// WKT rendering. Coordinates print with strconv.FormatFloat 'g' which
// round-trips float64 exactly at precision -1.

func fmtCoord(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writePoints(sb *strings.Builder, pts []Point) {
	sb.WriteByte('(')
	for i, p := range pts {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(fmtCoord(p.X))
		sb.WriteByte(' ')
		sb.WriteString(fmtCoord(p.Y))
	}
	sb.WriteByte(')')
}

// WKT implements Geometry.
func (p Point) WKT() string {
	if p.IsEmpty() {
		return "POINT EMPTY"
	}
	return fmt.Sprintf("POINT (%s %s)", fmtCoord(p.X), fmtCoord(p.Y))
}

// WKT implements Geometry.
func (m MultiPoint) WKT() string {
	if m.IsEmpty() {
		return "MULTIPOINT EMPTY"
	}
	var sb strings.Builder
	sb.WriteString("MULTIPOINT ")
	writePoints(&sb, m.Points)
	return sb.String()
}

// WKT implements Geometry.
func (l LineString) WKT() string {
	if l.IsEmpty() {
		return "LINESTRING EMPTY"
	}
	var sb strings.Builder
	sb.WriteString("LINESTRING ")
	writePoints(&sb, l.Points)
	return sb.String()
}

// WKT implements Geometry.
func (m MultiLineString) WKT() string {
	if m.IsEmpty() {
		return "MULTILINESTRING EMPTY"
	}
	var sb strings.Builder
	sb.WriteString("MULTILINESTRING (")
	for i, l := range m.Lines {
		if i > 0 {
			sb.WriteString(", ")
		}
		writePoints(&sb, l.Points)
	}
	sb.WriteByte(')')
	return sb.String()
}

func writePolygonBody(sb *strings.Builder, p Polygon) {
	sb.WriteByte('(')
	writePoints(sb, p.Shell.closedPoints())
	for _, h := range p.Holes {
		sb.WriteString(", ")
		writePoints(sb, Ring{Points: h.Points}.closedPoints())
	}
	sb.WriteByte(')')
}

// WKT implements Geometry.
func (p Polygon) WKT() string {
	if p.IsEmpty() {
		return "POLYGON EMPTY"
	}
	var sb strings.Builder
	sb.WriteString("POLYGON ")
	writePolygonBody(&sb, p)
	return sb.String()
}

// WKT implements Geometry.
func (m MultiPolygon) WKT() string {
	if m.IsEmpty() {
		return "MULTIPOLYGON EMPTY"
	}
	var sb strings.Builder
	sb.WriteString("MULTIPOLYGON (")
	for i, p := range m.Polygons {
		if i > 0 {
			sb.WriteString(", ")
		}
		writePolygonBody(&sb, p)
	}
	sb.WriteByte(')')
	return sb.String()
}

// WKT implements Geometry.
func (c Collection) WKT() string {
	if c.IsEmpty() {
		return "GEOMETRYCOLLECTION EMPTY"
	}
	var sb strings.Builder
	sb.WriteString("GEOMETRYCOLLECTION (")
	for i, g := range c.Geometries {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(g.WKT())
	}
	sb.WriteByte(')')
	return sb.String()
}

// ---------------------------------------------------------------------------
// WKT parsing: a hand-written recursive-descent parser over a byte scanner.

type wktScanner struct {
	src string
	pos int
}

func (s *wktScanner) skipSpace() {
	for s.pos < len(s.src) {
		switch s.src[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func (s *wktScanner) errf(format string, args ...any) error {
	return fmt.Errorf("wkt: %s at offset %d in %q", fmt.Sprintf(format, args...), s.pos, truncate(s.src, 60))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// word reads an identifier (letters only), upper-cased.
func (s *wktScanner) word() string {
	s.skipSpace()
	start := s.pos
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			s.pos++
		} else {
			break
		}
	}
	return strings.ToUpper(s.src[start:s.pos])
}

func (s *wktScanner) expect(c byte) error {
	s.skipSpace()
	if s.pos >= len(s.src) || s.src[s.pos] != c {
		return s.errf("expected %q", string(c))
	}
	s.pos++
	return nil
}

func (s *wktScanner) peek() byte {
	s.skipSpace()
	if s.pos >= len(s.src) {
		return 0
	}
	return s.src[s.pos]
}

func (s *wktScanner) number() (float64, error) {
	s.skipSpace()
	start := s.pos
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			s.pos++
		} else {
			break
		}
	}
	if start == s.pos {
		return 0, s.errf("expected number")
	}
	v, err := strconv.ParseFloat(s.src[start:s.pos], 64)
	if err != nil {
		return 0, s.errf("bad number %q: %v", s.src[start:s.pos], err)
	}
	return v, nil
}

// coordSeq parses "(x y, x y, ...)". Extra per-point dimensions (Z, M) are
// consumed and discarded so that 3-D WKT from external tools still loads.
func (s *wktScanner) coordSeq() ([]Point, error) {
	if err := s.expect('('); err != nil {
		return nil, err
	}
	var pts []Point
	for {
		x, err := s.number()
		if err != nil {
			return nil, err
		}
		y, err := s.number()
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{x, y})
		// Swallow optional Z/M ordinates.
		for {
			c := s.peek()
			if c == ',' || c == ')' || c == 0 {
				break
			}
			if _, err := s.number(); err != nil {
				return nil, err
			}
		}
		switch s.peek() {
		case ',':
			s.pos++
		case ')':
			s.pos++
			return pts, nil
		default:
			return nil, s.errf("expected ',' or ')'")
		}
	}
}

// maybeEmpty consumes the EMPTY keyword if present.
func (s *wktScanner) maybeEmpty() bool {
	save := s.pos
	if s.word() == "EMPTY" {
		return true
	}
	s.pos = save
	return false
}

// maybeDimension consumes an optional Z / M / ZM dimension tag.
func (s *wktScanner) maybeDimension() {
	save := s.pos
	switch s.word() {
	case "Z", "M", "ZM":
		return
	}
	s.pos = save
}

// ParseWKT parses a Well-Known Text geometry. Z/M ordinates are accepted and
// dropped; only the 2-D footprint is retained.
func ParseWKT(src string) (Geometry, error) {
	s := &wktScanner{src: src}
	g, err := s.geometry()
	if err != nil {
		return nil, err
	}
	s.skipSpace()
	if s.pos != len(s.src) {
		return nil, s.errf("trailing input")
	}
	return g, nil
}

func (s *wktScanner) geometry() (Geometry, error) {
	tag := s.word()
	s.maybeDimension()
	switch tag {
	case "POINT":
		if s.maybeEmpty() {
			return EmptyPoint(), nil
		}
		pts, err := s.coordSeq()
		if err != nil {
			return nil, err
		}
		if len(pts) != 1 {
			return nil, s.errf("POINT must have exactly one coordinate")
		}
		return pts[0], nil
	case "MULTIPOINT":
		if s.maybeEmpty() {
			return MultiPoint{}, nil
		}
		return s.multiPoint()
	case "LINESTRING":
		if s.maybeEmpty() {
			return LineString{}, nil
		}
		pts, err := s.coordSeq()
		if err != nil {
			return nil, err
		}
		return LineString{Points: pts}, nil
	case "MULTILINESTRING":
		if s.maybeEmpty() {
			return MultiLineString{}, nil
		}
		if err := s.expect('('); err != nil {
			return nil, err
		}
		var ml MultiLineString
		for {
			pts, err := s.coordSeq()
			if err != nil {
				return nil, err
			}
			ml.Lines = append(ml.Lines, LineString{Points: pts})
			if s.peek() == ',' {
				s.pos++
				continue
			}
			break
		}
		if err := s.expect(')'); err != nil {
			return nil, err
		}
		return ml, nil
	case "POLYGON":
		if s.maybeEmpty() {
			return Polygon{}, nil
		}
		return s.polygon()
	case "MULTIPOLYGON":
		if s.maybeEmpty() {
			return MultiPolygon{}, nil
		}
		if err := s.expect('('); err != nil {
			return nil, err
		}
		var mp MultiPolygon
		for {
			p, err := s.polygon()
			if err != nil {
				return nil, err
			}
			mp.Polygons = append(mp.Polygons, p)
			if s.peek() == ',' {
				s.pos++
				continue
			}
			break
		}
		if err := s.expect(')'); err != nil {
			return nil, err
		}
		return mp, nil
	case "GEOMETRYCOLLECTION":
		if s.maybeEmpty() {
			return Collection{}, nil
		}
		if err := s.expect('('); err != nil {
			return nil, err
		}
		var c Collection
		for {
			g, err := s.geometry()
			if err != nil {
				return nil, err
			}
			c.Geometries = append(c.Geometries, g)
			if s.peek() == ',' {
				s.pos++
				continue
			}
			break
		}
		if err := s.expect(')'); err != nil {
			return nil, err
		}
		return c, nil
	case "":
		return nil, s.errf("empty input")
	default:
		return nil, s.errf("unknown geometry type %q", tag)
	}
}

// multiPoint accepts both "MULTIPOINT (1 2, 3 4)" and the nested form
// "MULTIPOINT ((1 2), (3 4))".
func (s *wktScanner) multiPoint() (Geometry, error) {
	if err := s.expect('('); err != nil {
		return nil, err
	}
	var mp MultiPoint
	for {
		if s.peek() == '(' {
			pts, err := s.coordSeq()
			if err != nil {
				return nil, err
			}
			if len(pts) != 1 {
				return nil, s.errf("nested MULTIPOINT member must have one coordinate")
			}
			mp.Points = append(mp.Points, pts[0])
		} else {
			x, err := s.number()
			if err != nil {
				return nil, err
			}
			y, err := s.number()
			if err != nil {
				return nil, err
			}
			mp.Points = append(mp.Points, Point{x, y})
		}
		if s.peek() == ',' {
			s.pos++
			continue
		}
		break
	}
	if err := s.expect(')'); err != nil {
		return nil, err
	}
	return mp, nil
}

func (s *wktScanner) polygon() (Polygon, error) {
	var p Polygon
	if err := s.expect('('); err != nil {
		return p, err
	}
	first := true
	for {
		pts, err := s.coordSeq()
		if err != nil {
			return p, err
		}
		if first {
			p.Shell = Ring{Points: pts}
			first = false
		} else {
			p.Holes = append(p.Holes, Ring{Points: pts})
		}
		if s.peek() == ',' {
			s.pos++
			continue
		}
		break
	}
	if err := s.expect(')'); err != nil {
		return p, err
	}
	return p, nil
}

// MustParseWKT parses src or panics; for use in tests and constant data.
func MustParseWKT(src string) Geometry {
	g, err := ParseWKT(src)
	if err != nil {
		panic(err)
	}
	return g
}

package geom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Well-Known Binary codec (OGC Simple Features Part 2, the standard the
// paper's SQL interface implements — reference [9]). Encoding always emits
// little-endian (NDR); decoding accepts both byte orders, including mixed
// orders inside nested geometries.

// WKB geometry type codes.
const (
	wkbPoint              = 1
	wkbLineString         = 2
	wkbPolygon            = 3
	wkbMultiPoint         = 4
	wkbMultiLineString    = 5
	wkbMultiPolygon       = 6
	wkbGeometryCollection = 7
)

// MarshalWKB encodes g as little-endian WKB.
func MarshalWKB(g Geometry) []byte {
	var buf []byte
	return appendWKB(buf, g)
}

func appendWKB(buf []byte, g Geometry) []byte {
	buf = append(buf, 1) // NDR
	switch t := g.(type) {
	case Point:
		buf = appendU32(buf, wkbPoint)
		buf = appendPointCoords(buf, t)
	case LineString:
		buf = appendU32(buf, wkbLineString)
		buf = appendPointSeq(buf, t.Points)
	case Polygon:
		buf = appendU32(buf, wkbPolygon)
		buf = appendPolygonBody(buf, t)
	case MultiPoint:
		buf = appendU32(buf, wkbMultiPoint)
		buf = appendU32(buf, uint32(len(t.Points)))
		for _, p := range t.Points {
			buf = appendWKB(buf, p)
		}
	case MultiLineString:
		buf = appendU32(buf, wkbMultiLineString)
		buf = appendU32(buf, uint32(len(t.Lines)))
		for _, l := range t.Lines {
			buf = appendWKB(buf, l)
		}
	case MultiPolygon:
		buf = appendU32(buf, wkbMultiPolygon)
		buf = appendU32(buf, uint32(len(t.Polygons)))
		for _, p := range t.Polygons {
			buf = appendWKB(buf, p)
		}
	case Collection:
		buf = appendU32(buf, wkbGeometryCollection)
		buf = appendU32(buf, uint32(len(t.Geometries)))
		for _, sub := range t.Geometries {
			buf = appendWKB(buf, sub)
		}
	default:
		// The Geometry interface is sealed within this package in practice;
		// encode unknown implementations as empty collections.
		buf = appendU32(buf, wkbGeometryCollection)
		buf = appendU32(buf, 0)
	}
	return buf
}

func appendU32(buf []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(buf, b[:]...)
}

func appendF64(buf []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(buf, b[:]...)
}

func appendPointCoords(buf []byte, p Point) []byte {
	buf = appendF64(buf, p.X)
	return appendF64(buf, p.Y)
}

func appendPointSeq(buf []byte, pts []Point) []byte {
	buf = appendU32(buf, uint32(len(pts)))
	for _, p := range pts {
		buf = appendPointCoords(buf, p)
	}
	return buf
}

func appendPolygonBody(buf []byte, p Polygon) []byte {
	rings := make([]Ring, 0, 1+len(p.Holes))
	if len(p.Shell.Points) > 0 {
		rings = append(rings, p.Shell)
	}
	rings = append(rings, p.Holes...)
	buf = appendU32(buf, uint32(len(rings)))
	for _, r := range rings {
		buf = appendPointSeq(buf, r.closedPoints())
	}
	return buf
}

// wkbReader walks a WKB byte stream.
type wkbReader struct {
	buf []byte
	pos int
}

func (r *wkbReader) errf(format string, args ...any) error {
	return fmt.Errorf("wkb: %s at offset %d", fmt.Sprintf(format, args...), r.pos)
}

func (r *wkbReader) byteOrder() (binary.ByteOrder, error) {
	if r.pos >= len(r.buf) {
		return nil, r.errf("truncated byte order")
	}
	b := r.buf[r.pos]
	r.pos++
	switch b {
	case 0:
		return binary.BigEndian, nil
	case 1:
		return binary.LittleEndian, nil
	default:
		return nil, r.errf("bad byte order %d", b)
	}
}

func (r *wkbReader) u32(bo binary.ByteOrder) (uint32, error) {
	if r.pos+4 > len(r.buf) {
		return 0, r.errf("truncated uint32")
	}
	v := bo.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *wkbReader) f64(bo binary.ByteOrder) (float64, error) {
	if r.pos+8 > len(r.buf) {
		return 0, r.errf("truncated float64")
	}
	v := math.Float64frombits(bo.Uint64(r.buf[r.pos:]))
	r.pos += 8
	return v, nil
}

func (r *wkbReader) pointSeq(bo binary.ByteOrder) ([]Point, error) {
	n, err := r.u32(bo)
	if err != nil {
		return nil, err
	}
	if int(n) > (len(r.buf)-r.pos)/16 {
		return nil, r.errf("point count %d exceeds remaining payload", n)
	}
	pts := make([]Point, n)
	for i := range pts {
		if pts[i].X, err = r.f64(bo); err != nil {
			return nil, err
		}
		if pts[i].Y, err = r.f64(bo); err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// UnmarshalWKB decodes one WKB geometry.
func UnmarshalWKB(buf []byte) (Geometry, error) {
	r := &wkbReader{buf: buf}
	g, err := r.geometry()
	if err != nil {
		return nil, err
	}
	if r.pos != len(buf) {
		return nil, r.errf("trailing %d bytes", len(buf)-r.pos)
	}
	return g, nil
}

func (r *wkbReader) geometry() (Geometry, error) {
	bo, err := r.byteOrder()
	if err != nil {
		return nil, err
	}
	typ, err := r.u32(bo)
	if err != nil {
		return nil, err
	}
	switch typ {
	case wkbPoint:
		x, err := r.f64(bo)
		if err != nil {
			return nil, err
		}
		y, err := r.f64(bo)
		if err != nil {
			return nil, err
		}
		return Point{X: x, Y: y}, nil
	case wkbLineString:
		pts, err := r.pointSeq(bo)
		if err != nil {
			return nil, err
		}
		return LineString{Points: pts}, nil
	case wkbPolygon:
		nRings, err := r.u32(bo)
		if err != nil {
			return nil, err
		}
		var p Polygon
		for i := uint32(0); i < nRings; i++ {
			pts, err := r.pointSeq(bo)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				p.Shell = Ring{Points: pts}
			} else {
				p.Holes = append(p.Holes, Ring{Points: pts})
			}
		}
		return p, nil
	case wkbMultiPoint:
		n, err := r.u32(bo)
		if err != nil {
			return nil, err
		}
		mp := MultiPoint{}
		for i := uint32(0); i < n; i++ {
			sub, err := r.geometry()
			if err != nil {
				return nil, err
			}
			p, ok := sub.(Point)
			if !ok {
				return nil, r.errf("multipoint member %d is %T", i, sub)
			}
			mp.Points = append(mp.Points, p)
		}
		return mp, nil
	case wkbMultiLineString:
		n, err := r.u32(bo)
		if err != nil {
			return nil, err
		}
		ml := MultiLineString{}
		for i := uint32(0); i < n; i++ {
			sub, err := r.geometry()
			if err != nil {
				return nil, err
			}
			l, ok := sub.(LineString)
			if !ok {
				return nil, r.errf("multilinestring member %d is %T", i, sub)
			}
			ml.Lines = append(ml.Lines, l)
		}
		return ml, nil
	case wkbMultiPolygon:
		n, err := r.u32(bo)
		if err != nil {
			return nil, err
		}
		mp := MultiPolygon{}
		for i := uint32(0); i < n; i++ {
			sub, err := r.geometry()
			if err != nil {
				return nil, err
			}
			p, ok := sub.(Polygon)
			if !ok {
				return nil, r.errf("multipolygon member %d is %T", i, sub)
			}
			mp.Polygons = append(mp.Polygons, p)
		}
		return mp, nil
	case wkbGeometryCollection:
		n, err := r.u32(bo)
		if err != nil {
			return nil, err
		}
		c := Collection{}
		for i := uint32(0); i < n; i++ {
			sub, err := r.geometry()
			if err != nil {
				return nil, err
			}
			c.Geometries = append(c.Geometries, sub)
		}
		return c, nil
	default:
		return nil, r.errf("unknown geometry type %d", typ)
	}
}

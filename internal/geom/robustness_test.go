package geom

import (
	"math/rand"
	"testing"
)

// Robustness: parsers must reject malformed input with an error, never
// panic, whatever bytes arrive. These tests drive random and structured
// garbage through WKT and WKB.

func TestWKTParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	alphabet := []byte("POINTLIESRGMUC()0123456789.,- EMPTYZ")
	for iter := 0; iter < 5000; iter++ {
		n := rng.Intn(40)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		// Must not panic; error or success are both acceptable.
		g, err := ParseWKT(string(buf))
		if err == nil && g == nil {
			t.Fatalf("nil geometry without error for %q", buf)
		}
	}
}

func TestWKTParserTruncations(t *testing.T) {
	full := "MULTIPOLYGON (((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2)))"
	for i := 0; i < len(full); i++ {
		if _, err := ParseWKT(full[:i]); err == nil && i < len(full) {
			// Some prefixes are valid (e.g. shorter numbers swallowed), but
			// prefixes that cut structure must error. Only structural cuts
			// are asserted here: anything ending mid-parenthesis.
			open := 0
			for _, c := range full[:i] {
				switch c {
				case '(':
					open++
				case ')':
					open--
				}
			}
			if open != 0 {
				t.Fatalf("unbalanced prefix %q parsed", full[:i])
			}
		}
	}
}

func TestWKBDecoderNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for iter := 0; iter < 5000; iter++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		// Bias the first bytes towards plausible headers so the walk gets
		// deeper than the byte-order check.
		if n > 5 && iter%2 == 0 {
			buf[0] = 1
			buf[1] = byte(rng.Intn(9))
			buf[2], buf[3], buf[4] = 0, 0, 0
		}
		_, _ = UnmarshalWKB(buf) // must not panic
	}
}

func TestWKBMutatedValidPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	valid := MarshalWKB(MustParseWKT(
		"GEOMETRYCOLLECTION (POINT (1 2), POLYGON ((0 0, 5 0, 5 5, 0 5, 0 0)), LINESTRING (0 0, 9 9))"))
	for iter := 0; iter < 3000; iter++ {
		mut := append([]byte(nil), valid...)
		// Flip a few random bytes.
		for k := 0; k < 1+rng.Intn(4); k++ {
			mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
		}
		if g, err := UnmarshalWKB(mut); err == nil {
			// A surviving mutation must still yield a well-formed geometry.
			_ = g.WKT()
			_ = g.Envelope()
		}
	}
}

func TestPredicatesWithExtremeCoordinates(t *testing.T) {
	// Predicates should behave (no panic, boolean result) at float extremes.
	big := 1e308
	poly := Polygon{Shell: Ring{Points: []Point{{-big, -big}, {big, -big}, {big, big}, {-big, big}}}}
	_ = PolygonContainsPoint(poly, 0, 0)
	_ = ClassifyBoxPolygon(poly, NewEnvelope(-1, -1, 1, 1))
	_ = DistancePointToGeometry(big, big, poly)
	line := LineString{Points: []Point{{-big, 0}, {big, 0}}}
	_ = DWithin(0, 1, line, 5)
	_ = Intersects(poly, line)
}

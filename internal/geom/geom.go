// Package geom implements the subset of the OGC Simple Features Access
// geometry model needed by a spatially-enabled column store: points, line
// strings, polygons (with holes), their Multi* collections, 2-D envelopes,
// WKT encoding, and the spatial predicates used by the filter–refine query
// pipeline (containment, intersection, within-distance).
//
// All coordinates are planar (projected) float64 values; the package has no
// notion of geodesy. This mirrors the paper's setting, where AHN2 points are
// stored in the Dutch national projection (RD New / EPSG:28992).
package geom

import (
	"fmt"
	"math"
)

// Type identifies the concrete type of a Geometry value.
type Type uint8

// Geometry type tags, matching OGC Simple Features type names.
const (
	TypePoint Type = iota + 1
	TypeLineString
	TypePolygon
	TypeMultiPoint
	TypeMultiLineString
	TypeMultiPolygon
	TypeGeometryCollection
)

// String returns the OGC name of the type, as it appears in WKT.
func (t Type) String() string {
	switch t {
	case TypePoint:
		return "POINT"
	case TypeLineString:
		return "LINESTRING"
	case TypePolygon:
		return "POLYGON"
	case TypeMultiPoint:
		return "MULTIPOINT"
	case TypeMultiLineString:
		return "MULTILINESTRING"
	case TypeMultiPolygon:
		return "MULTIPOLYGON"
	case TypeGeometryCollection:
		return "GEOMETRYCOLLECTION"
	default:
		return fmt.Sprintf("GEOMETRY(%d)", uint8(t))
	}
}

// Geometry is the common interface of all geometry values.
type Geometry interface {
	// GeometryType reports the concrete type tag.
	GeometryType() Type
	// Envelope returns the minimal axis-aligned bounding box.
	Envelope() Envelope
	// IsEmpty reports whether the geometry has no coordinates.
	IsEmpty() bool
	// WKT renders the geometry in Well-Known Text.
	WKT() string
}

// Point is a single 2-D position. Point implements Geometry.
type Point struct {
	X, Y float64
}

// GeometryType implements Geometry.
func (p Point) GeometryType() Type { return TypePoint }

// Envelope implements Geometry; a point's envelope is degenerate.
func (p Point) Envelope() Envelope { return Envelope{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y} }

// IsEmpty implements Geometry. A Point with NaN coordinates is empty
// (the WKT form "POINT EMPTY" parses to it).
func (p Point) IsEmpty() bool { return math.IsNaN(p.X) || math.IsNaN(p.Y) }

// EmptyPoint returns the canonical empty point.
func EmptyPoint() Point { return Point{X: math.NaN(), Y: math.NaN()} }

// Equals reports exact coordinate equality with q.
func (p Point) Equals(q Point) bool { return p.X == q.X && p.Y == q.Y }

// DistanceTo returns the Euclidean distance between p and q.
func (p Point) DistanceTo(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// MultiPoint is an unordered collection of points.
type MultiPoint struct {
	Points []Point
}

// GeometryType implements Geometry.
func (m MultiPoint) GeometryType() Type { return TypeMultiPoint }

// Envelope implements Geometry.
func (m MultiPoint) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range m.Points {
		e.ExpandToPoint(p.X, p.Y)
	}
	return e
}

// IsEmpty implements Geometry.
func (m MultiPoint) IsEmpty() bool { return len(m.Points) == 0 }

// LineString is an ordered sequence of at least two positions joined by
// straight segments.
type LineString struct {
	Points []Point
}

// GeometryType implements Geometry.
func (l LineString) GeometryType() Type { return TypeLineString }

// Envelope implements Geometry.
func (l LineString) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range l.Points {
		e.ExpandToPoint(p.X, p.Y)
	}
	return e
}

// IsEmpty implements Geometry.
func (l LineString) IsEmpty() bool { return len(l.Points) == 0 }

// Length returns the sum of segment lengths.
func (l LineString) Length() float64 {
	var sum float64
	for i := 1; i < len(l.Points); i++ {
		sum += l.Points[i-1].DistanceTo(l.Points[i])
	}
	return sum
}

// IsClosed reports whether the first and last points coincide.
func (l LineString) IsClosed() bool {
	n := len(l.Points)
	return n >= 4 && l.Points[0].Equals(l.Points[n-1])
}

// MultiLineString is a collection of line strings.
type MultiLineString struct {
	Lines []LineString
}

// GeometryType implements Geometry.
func (m MultiLineString) GeometryType() Type { return TypeMultiLineString }

// Envelope implements Geometry.
func (m MultiLineString) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, l := range m.Lines {
		e.ExpandToEnvelope(l.Envelope())
	}
	return e
}

// IsEmpty implements Geometry.
func (m MultiLineString) IsEmpty() bool { return len(m.Lines) == 0 }

// Length returns the total length of all member line strings.
func (m MultiLineString) Length() float64 {
	var sum float64
	for _, l := range m.Lines {
		sum += l.Length()
	}
	return sum
}

// Ring is a closed LineString used as a polygon boundary. The closing
// segment from the last to the first point is implicit if absent.
type Ring struct {
	Points []Point
}

// closedPoints returns the ring vertices with an explicit closing vertex.
func (r Ring) closedPoints() []Point {
	n := len(r.Points)
	if n == 0 {
		return nil
	}
	if r.Points[0].Equals(r.Points[n-1]) {
		return r.Points
	}
	out := make([]Point, n+1)
	copy(out, r.Points)
	out[n] = r.Points[0]
	return out
}

// SignedArea returns the signed area of the ring: positive for
// counter-clockwise orientation, negative for clockwise.
func (r Ring) SignedArea() float64 {
	pts := r.closedPoints()
	var sum float64
	for i := 1; i < len(pts); i++ {
		sum += pts[i-1].X*pts[i].Y - pts[i].X*pts[i-1].Y
	}
	return sum / 2
}

// Envelope returns the bounding box of the ring.
func (r Ring) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range r.Points {
		e.ExpandToPoint(p.X, p.Y)
	}
	return e
}

// Polygon is a shell ring with zero or more hole rings.
type Polygon struct {
	Shell Ring
	Holes []Ring
}

// GeometryType implements Geometry.
func (p Polygon) GeometryType() Type { return TypePolygon }

// Envelope implements Geometry. Holes cannot extend the shell.
func (p Polygon) Envelope() Envelope { return p.Shell.Envelope() }

// IsEmpty implements Geometry.
func (p Polygon) IsEmpty() bool { return len(p.Shell.Points) == 0 }

// Area returns the area of the polygon: |shell| minus the hole areas.
func (p Polygon) Area() float64 {
	a := math.Abs(p.Shell.SignedArea())
	for _, h := range p.Holes {
		a -= math.Abs(h.SignedArea())
	}
	return a
}

// MultiPolygon is a collection of polygons.
type MultiPolygon struct {
	Polygons []Polygon
}

// GeometryType implements Geometry.
func (m MultiPolygon) GeometryType() Type { return TypeMultiPolygon }

// Envelope implements Geometry.
func (m MultiPolygon) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, p := range m.Polygons {
		e.ExpandToEnvelope(p.Envelope())
	}
	return e
}

// IsEmpty implements Geometry.
func (m MultiPolygon) IsEmpty() bool { return len(m.Polygons) == 0 }

// Area returns the total area of all member polygons.
func (m MultiPolygon) Area() float64 {
	var sum float64
	for _, p := range m.Polygons {
		sum += p.Area()
	}
	return sum
}

// Collection is a heterogeneous geometry collection.
type Collection struct {
	Geometries []Geometry
}

// GeometryType implements Geometry.
func (c Collection) GeometryType() Type { return TypeGeometryCollection }

// Envelope implements Geometry.
func (c Collection) Envelope() Envelope {
	e := EmptyEnvelope()
	for _, g := range c.Geometries {
		e.ExpandToEnvelope(g.Envelope())
	}
	return e
}

// IsEmpty implements Geometry.
func (c Collection) IsEmpty() bool { return len(c.Geometries) == 0 }

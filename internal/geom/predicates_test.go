package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare() Polygon {
	return Polygon{Shell: Ring{Points: []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}}}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		a, b, c, d Point
		want       bool
	}{
		{Point{0, 0}, Point{10, 10}, Point{0, 10}, Point{10, 0}, true}, // X crossing
		{Point{0, 0}, Point{1, 1}, Point{2, 2}, Point{3, 3}, false},    // collinear disjoint
		{Point{0, 0}, Point{2, 2}, Point{1, 1}, Point{3, 3}, true},     // collinear overlap
		{Point{0, 0}, Point{1, 0}, Point{1, 0}, Point{2, 5}, true},     // shared endpoint
		{Point{0, 0}, Point{1, 0}, Point{0, 1}, Point{1, 1}, false},    // parallel
		{Point{0, 0}, Point{4, 0}, Point{2, 0}, Point{2, 3}, true},     // T junction
		{Point{0, 0}, Point{4, 0}, Point{2, 0.1}, Point{2, 3}, false},  // near miss
		{Point{0, 0}, Point{0, 0}, Point{0, 0}, Point{0, 0}, true},     // degenerate same point
		{Point{0, 0}, Point{0, 0}, Point{1, 1}, Point{2, 2}, false},    // degenerate apart
		{Point{-1, -1}, Point{1, 1}, Point{0, 0}, Point{0, 0}, true},   // point on segment
		{Point{5, 5}, Point{5, 9}, Point{5, 9}, Point{5, 12}, true},    // vertical chain
		{Point{5, 5}, Point{5, 8}, Point{5, 8.1}, Point{5, 12}, false}, // vertical gap
	}
	for i, c := range cases {
		if got := SegmentsIntersect(c.a, c.b, c.c, c.d); got != c.want {
			t.Errorf("case %d: SegmentsIntersect = %v, want %v", i, got, c.want)
		}
		// Symmetry.
		if got := SegmentsIntersect(c.c, c.d, c.a, c.b); got != c.want {
			t.Errorf("case %d: symmetric SegmentsIntersect = %v, want %v", i, got, c.want)
		}
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	sq := unitSquare()
	cases := []struct {
		x, y float64
		want bool
	}{
		{5, 5, true},
		{0, 0, true},  // corner: boundary inclusive
		{10, 5, true}, // edge
		{10.1, 5, false},
		{-1, -1, false},
		{5, 10, true},
		{5, 10.0001, false},
	}
	for i, c := range cases {
		if got := PolygonContainsPoint(sq, c.x, c.y); got != c.want {
			t.Errorf("case %d (%v,%v): got %v, want %v", i, c.x, c.y, got, c.want)
		}
	}
}

func TestPolygonWithHoleContains(t *testing.T) {
	p := Polygon{
		Shell: Ring{Points: []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}},
		Holes: []Ring{{Points: []Point{{3, 3}, {7, 3}, {7, 7}, {3, 7}}}},
	}
	if PolygonContainsPoint(p, 5, 5) {
		t.Fatal("point in hole should be excluded")
	}
	if !PolygonContainsPoint(p, 1, 1) {
		t.Fatal("point in solid part should be included")
	}
	// Hole boundary belongs to the polygon.
	if !PolygonContainsPoint(p, 3, 5) {
		t.Fatal("hole rim belongs to polygon")
	}
}

func TestConcavePolygonContains(t *testing.T) {
	// A "U" shape.
	u := Polygon{Shell: Ring{Points: []Point{
		{0, 0}, {9, 0}, {9, 9}, {6, 9}, {6, 3}, {3, 3}, {3, 9}, {0, 9},
	}}}
	if PolygonContainsPoint(u, 4.5, 6) {
		t.Fatal("notch interior should be outside")
	}
	if !PolygonContainsPoint(u, 1, 8) || !PolygonContainsPoint(u, 8, 8) {
		t.Fatal("arms should be inside")
	}
	if !PolygonContainsPoint(u, 4.5, 1) {
		t.Fatal("base should be inside")
	}
}

func TestContainsPointDispatch(t *testing.T) {
	if !ContainsPoint(Point{1, 2}, 1, 2) || ContainsPoint(Point{1, 2}, 1, 3) {
		t.Fatal("point self-containment wrong")
	}
	mp := MultiPoint{Points: []Point{{1, 1}, {2, 2}}}
	if !ContainsPoint(mp, 2, 2) || ContainsPoint(mp, 3, 3) {
		t.Fatal("multipoint containment wrong")
	}
	l := LineString{Points: []Point{{0, 0}, {10, 0}}}
	if !ContainsPoint(l, 5, 0) || ContainsPoint(l, 5, 0.01) {
		t.Fatal("line containment wrong")
	}
	ml := MultiLineString{Lines: []LineString{l}}
	if !ContainsPoint(ml, 5, 0) {
		t.Fatal("multiline containment wrong")
	}
	mpoly := MultiPolygon{Polygons: []Polygon{unitSquare()}}
	if !ContainsPoint(mpoly, 5, 5) || ContainsPoint(mpoly, 50, 50) {
		t.Fatal("multipolygon containment wrong")
	}
	col := Collection{Geometries: []Geometry{Point{7, 7}, unitSquare()}}
	if !ContainsPoint(col, 7, 7) || !ContainsPoint(col, 1, 1) || ContainsPoint(col, 99, 99) {
		t.Fatal("collection containment wrong")
	}
}

func TestClassifyBoxPolygon(t *testing.T) {
	sq := unitSquare()
	cases := []struct {
		e    Envelope
		want BoxRelation
	}{
		{NewEnvelope(2, 2, 4, 4), BoxInside},
		{NewEnvelope(20, 20, 30, 30), BoxOutside},
		{NewEnvelope(-2, -2, 2, 2), BoxBoundary},   // straddles a corner
		{NewEnvelope(8, 2, 12, 4), BoxBoundary},    // straddles an edge
		{NewEnvelope(-5, -5, 15, 15), BoxBoundary}, // box swallows polygon
		{EmptyEnvelope(), BoxOutside},
	}
	for i, c := range cases {
		if got := ClassifyBoxPolygon(sq, c.e); got != c.want {
			t.Errorf("case %d: ClassifyBoxPolygon(%v) = %v, want %v", i, c.e, got, c.want)
		}
	}
}

func TestClassifyBoxPolygonWithHole(t *testing.T) {
	p := Polygon{
		Shell: Ring{Points: []Point{{0, 0}, {20, 0}, {20, 20}, {0, 20}}},
		Holes: []Ring{{Points: []Point{{8, 8}, {12, 8}, {12, 12}, {8, 12}}}},
	}
	// Box entirely within the hole: outside the polygon.
	if got := ClassifyBoxPolygon(p, NewEnvelope(9, 9, 11, 11)); got != BoxOutside {
		t.Fatalf("box in hole = %v, want outside", got)
	}
	// Box crossing the hole rim: boundary.
	if got := ClassifyBoxPolygon(p, NewEnvelope(7, 9, 9, 11)); got != BoxBoundary {
		t.Fatalf("box on hole rim = %v, want boundary", got)
	}
	// Box in solid area: inside.
	if got := ClassifyBoxPolygon(p, NewEnvelope(1, 1, 3, 3)); got != BoxInside {
		t.Fatalf("solid box = %v, want inside", got)
	}
}

func TestClassifyBoxOtherGeometries(t *testing.T) {
	e := NewEnvelope(0, 0, 10, 10)
	if got := ClassifyBox(Point{5, 5}, e); got != BoxBoundary {
		t.Fatalf("point in box = %v", got)
	}
	if got := ClassifyBox(Point{50, 5}, e); got != BoxOutside {
		t.Fatalf("far point = %v", got)
	}
	l := LineString{Points: []Point{{-5, 5}, {15, 5}}}
	if got := ClassifyBox(l, e); got != BoxBoundary {
		t.Fatalf("crossing line = %v", got)
	}
	if got := ClassifyBox(MultiPoint{Points: []Point{{1, 1}}}, e); got != BoxBoundary {
		t.Fatalf("multipoint = %v", got)
	}
	if got := ClassifyBox(MultiLineString{Lines: []LineString{l}}, e); got != BoxBoundary {
		t.Fatalf("multiline = %v", got)
	}
	col := Collection{Geometries: []Geometry{unitSquare()}}
	if got := ClassifyBox(col, NewEnvelope(2, 2, 3, 3)); got != BoxInside {
		t.Fatalf("collection inside = %v", got)
	}
}

func TestBoxRelationString(t *testing.T) {
	if BoxOutside.String() != "outside" || BoxInside.String() != "inside" || BoxBoundary.String() != "boundary" {
		t.Fatal("BoxRelation.String wrong")
	}
}

func TestIntersectsPairs(t *testing.T) {
	sq := unitSquare()
	shifted := Polygon{Shell: Ring{Points: []Point{{5, 5}, {15, 5}, {15, 15}, {5, 15}}}}
	far := Polygon{Shell: Ring{Points: []Point{{100, 100}, {110, 100}, {110, 110}, {100, 110}}}}
	line := LineString{Points: []Point{{-5, 5}, {15, 5}}}
	cases := []struct {
		a, b Geometry
		want bool
	}{
		{sq, shifted, true},
		{sq, far, false},
		{sq, Point{5, 5}, true},
		{Point{5, 5}, sq, true},
		{sq, line, true},
		{line, sq, true},
		{line, LineString{Points: []Point{{0, -5}, {0, 15}}}, true},
		{line, LineString{Points: []Point{{0, 50}, {1, 50}}}, false},
		{MultiPoint{Points: []Point{{5, 5}}}, sq, true},
		{MultiPolygon{Polygons: []Polygon{far, sq}}, shifted, true},
		{MultiLineString{Lines: []LineString{line}}, sq, true},
		{Collection{Geometries: []Geometry{Point{5, 5}}}, sq, true},
		{sq, Collection{Geometries: []Geometry{Point{5, 5}}}, true},
		// Polygon containing another without boundary crossing.
		{sq, Polygon{Shell: Ring{Points: []Point{{4, 4}, {6, 4}, {6, 6}, {4, 6}}}}, true},
	}
	for i, c := range cases {
		if got := Intersects(c.a, c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := Intersects(c.b, c.a); got != c.want {
			t.Errorf("case %d: symmetric Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestDistances(t *testing.T) {
	sq := unitSquare()
	if d := DistancePointToGeometry(5, 5, sq); d != 0 {
		t.Fatalf("inside distance = %v", d)
	}
	if d := DistancePointToGeometry(13, 14, sq); d != 5 {
		t.Fatalf("corner distance = %v, want 5", d)
	}
	l := LineString{Points: []Point{{0, 0}, {10, 0}}}
	if d := DistancePointToGeometry(5, 3, l); d != 3 {
		t.Fatalf("line distance = %v, want 3", d)
	}
	if d := DistancePointToGeometry(-3, -4, l); d != 5 {
		t.Fatalf("endpoint distance = %v, want 5", d)
	}
	if d := DistancePointToGeometry(1, 1, Point{4, 5}); d != 5 {
		t.Fatalf("point distance = %v, want 5", d)
	}
	mp := MultiPoint{Points: []Point{{100, 0}, {4, 5}}}
	if d := DistancePointToGeometry(1, 1, mp); d != 5 {
		t.Fatalf("multipoint distance = %v, want 5", d)
	}
}

func TestDWithin(t *testing.T) {
	road := LineString{Points: []Point{{0, 0}, {100, 0}}}
	if !DWithin(50, 10, road, 10) {
		t.Fatal("point at exactly d should match")
	}
	if DWithin(50, 10.5, road, 10) {
		t.Fatal("point beyond d should not match")
	}
	if DWithin(500, 0, road, 10) {
		t.Fatal("far point should fail envelope prefilter")
	}
}

func TestGeometryDistance(t *testing.T) {
	a := unitSquare()
	b := Polygon{Shell: Ring{Points: []Point{{20, 0}, {30, 0}, {30, 10}, {20, 10}}}}
	if d := GeometryDistance(a, b); d != 10 {
		t.Fatalf("polygon gap = %v, want 10", d)
	}
	if d := GeometryDistance(a, a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	l1 := LineString{Points: []Point{{0, 0}, {0, 10}}}
	l2 := LineString{Points: []Point{{3, 0}, {3, 10}}}
	if d := GeometryDistance(l1, l2); d != 3 {
		t.Fatalf("parallel lines = %v, want 3", d)
	}
}

// --- property-based tests -------------------------------------------------

// Property: a point reported inside a convex polygon must be inside the
// polygon's envelope, and ClassifyBoxPolygon must agree with per-point tests.
func TestQuickContainmentConsistentWithEnvelope(t *testing.T) {
	sq := unitSquare()
	f := func(x, y float64) bool {
		x = math.Mod(math.Abs(x), 30) - 10
		y = math.Mod(math.Abs(y), 30) - 10
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		in := PolygonContainsPoint(sq, x, y)
		if in && !sq.Envelope().ContainsPoint(x, y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: box classification is sound — for a randomly placed box, if the
// box is classified BoxInside every random point in it is contained in the
// polygon; if BoxOutside, no point in it is contained.
func TestQuickClassifyBoxSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	poly := Polygon{Shell: Ring{Points: []Point{
		{0, 0}, {20, 5}, {25, 20}, {10, 28}, {-5, 15},
	}}}
	for iter := 0; iter < 500; iter++ {
		cx := rng.Float64()*50 - 15
		cy := rng.Float64()*50 - 15
		w := rng.Float64() * 8
		h := rng.Float64() * 8
		box := NewEnvelope(cx, cy, cx+w, cy+h)
		rel := ClassifyBoxPolygon(poly, box)
		for k := 0; k < 20; k++ {
			px := box.MinX + rng.Float64()*box.Width()
			py := box.MinY + rng.Float64()*box.Height()
			in := PolygonContainsPoint(poly, px, py)
			switch rel {
			case BoxInside:
				if !in {
					t.Fatalf("iter %d: box %v classified inside but point (%v,%v) outside", iter, box, px, py)
				}
			case BoxOutside:
				if in {
					t.Fatalf("iter %d: box %v classified outside but point (%v,%v) inside", iter, box, px, py)
				}
			}
		}
	}
}

// Property: DWithin(x,y,g,d) == (DistancePointToGeometry(x,y,g) <= d).
func TestQuickDWithinMatchesDistance(t *testing.T) {
	road := LineString{Points: []Point{{0, 0}, {40, 10}, {80, -5}, {120, 30}}}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		x := rng.Float64()*200 - 40
		y := rng.Float64()*120 - 60
		d := rng.Float64() * 30
		want := DistancePointToGeometry(x, y, road) <= d
		if got := DWithin(x, y, road, d); got != want {
			t.Fatalf("DWithin(%v,%v,%v) = %v, distance says %v", x, y, d, got, want)
		}
	}
}

// Property: ring containment is invariant under vertex rotation of the ring.
func TestQuickRingRotationInvariance(t *testing.T) {
	pts := []Point{{0, 0}, {10, 2}, {14, 9}, {6, 14}, {-2, 8}}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 300; i++ {
		x := rng.Float64()*24 - 5
		y := rng.Float64()*20 - 3
		base := PolygonContainsPoint(Polygon{Shell: Ring{Points: pts}}, x, y)
		for rot := 1; rot < len(pts); rot++ {
			rotated := append(append([]Point(nil), pts[rot:]...), pts[:rot]...)
			got := PolygonContainsPoint(Polygon{Shell: Ring{Points: rotated}}, x, y)
			if got != base {
				t.Fatalf("rotation %d changed containment of (%v,%v): %v vs %v", rot, x, y, got, base)
			}
		}
	}
}

package geom

import (
	"math"
	"testing"
)

func TestPointBasics(t *testing.T) {
	p := Point{3, 4}
	if p.GeometryType() != TypePoint {
		t.Fatalf("type = %v", p.GeometryType())
	}
	if p.IsEmpty() {
		t.Fatal("point should not be empty")
	}
	if got := p.DistanceTo(Point{0, 0}); got != 5 {
		t.Fatalf("distance = %v, want 5", got)
	}
	e := p.Envelope()
	if e.MinX != 3 || e.MaxX != 3 || e.MinY != 4 || e.MaxY != 4 {
		t.Fatalf("envelope = %v", e)
	}
	if !EmptyPoint().IsEmpty() {
		t.Fatal("EmptyPoint should be empty")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypePoint:              "POINT",
		TypeLineString:         "LINESTRING",
		TypePolygon:            "POLYGON",
		TypeMultiPoint:         "MULTIPOINT",
		TypeMultiLineString:    "MULTILINESTRING",
		TypeMultiPolygon:       "MULTIPOLYGON",
		TypeGeometryCollection: "GEOMETRYCOLLECTION",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
	if got := Type(99).String(); got != "GEOMETRY(99)" {
		t.Errorf("unknown type string = %q", got)
	}
}

func TestLineStringLength(t *testing.T) {
	l := LineString{Points: []Point{{0, 0}, {3, 0}, {3, 4}}}
	if got := l.Length(); got != 7 {
		t.Fatalf("length = %v, want 7", got)
	}
	if l.IsClosed() {
		t.Fatal("open line reported closed")
	}
	closed := LineString{Points: []Point{{0, 0}, {1, 0}, {1, 1}, {0, 0}}}
	if !closed.IsClosed() {
		t.Fatal("closed line reported open")
	}
}

func TestRingSignedArea(t *testing.T) {
	ccw := Ring{Points: []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}}
	if got := ccw.SignedArea(); got != 4 {
		t.Fatalf("ccw area = %v, want 4", got)
	}
	cw := Ring{Points: []Point{{0, 0}, {0, 2}, {2, 2}, {2, 0}}}
	if got := cw.SignedArea(); got != -4 {
		t.Fatalf("cw area = %v, want -4", got)
	}
}

func TestPolygonAreaWithHole(t *testing.T) {
	p := Polygon{
		Shell: Ring{Points: []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}},
		Holes: []Ring{{Points: []Point{{2, 2}, {4, 2}, {4, 4}, {2, 4}}}},
	}
	if got := p.Area(); got != 96 {
		t.Fatalf("area = %v, want 96", got)
	}
}

func TestMultiPolygonArea(t *testing.T) {
	m := MultiPolygon{Polygons: []Polygon{
		{Shell: Ring{Points: []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}}},
		{Shell: Ring{Points: []Point{{5, 5}, {7, 5}, {7, 7}, {5, 7}}}},
	}}
	if got := m.Area(); got != 5 {
		t.Fatalf("area = %v, want 5", got)
	}
	e := m.Envelope()
	if e.MinX != 0 || e.MaxX != 7 {
		t.Fatalf("envelope = %v", e)
	}
}

func TestMultiLineStringLength(t *testing.T) {
	m := MultiLineString{Lines: []LineString{
		{Points: []Point{{0, 0}, {1, 0}}},
		{Points: []Point{{0, 0}, {0, 2}}},
	}}
	if got := m.Length(); got != 3 {
		t.Fatalf("length = %v, want 3", got)
	}
}

func TestCollectionEnvelope(t *testing.T) {
	c := Collection{Geometries: []Geometry{
		Point{1, 1},
		LineString{Points: []Point{{-5, 0}, {0, 9}}},
	}}
	e := c.Envelope()
	if e.MinX != -5 || e.MaxY != 9 || e.MaxX != 1 {
		t.Fatalf("envelope = %v", e)
	}
	if c.IsEmpty() {
		t.Fatal("collection not empty")
	}
	if (Collection{}).IsEmpty() != true {
		t.Fatal("empty collection should be empty")
	}
}

func TestEnvelopeBasics(t *testing.T) {
	e := NewEnvelope(5, 7, 1, 2)
	if e.MinX != 1 || e.MinY != 2 || e.MaxX != 5 || e.MaxY != 7 {
		t.Fatalf("normalised envelope = %v", e)
	}
	if e.Width() != 4 || e.Height() != 5 || e.Area() != 20 {
		t.Fatalf("dims: w=%v h=%v a=%v", e.Width(), e.Height(), e.Area())
	}
	c := e.Center()
	if c.X != 3 || c.Y != 4.5 {
		t.Fatalf("center = %v", c)
	}
	if !e.ContainsPoint(1, 2) || !e.ContainsPoint(5, 7) || e.ContainsPoint(0, 0) {
		t.Fatal("ContainsPoint boundary semantics wrong")
	}
}

func TestEmptyEnvelope(t *testing.T) {
	e := EmptyEnvelope()
	if !e.IsEmpty() {
		t.Fatal("EmptyEnvelope not empty")
	}
	if e.Width() != 0 || e.Height() != 0 || e.Area() != 0 {
		t.Fatal("empty envelope should have zero dims")
	}
	if e.ContainsEnvelope(NewEnvelope(0, 0, 1, 1)) {
		t.Fatal("empty contains nothing")
	}
	e.ExpandToPoint(3, 4)
	if e.IsEmpty() || e.MinX != 3 || e.MaxY != 4 {
		t.Fatalf("expand from empty = %v", e)
	}
}

func TestEnvelopeSetOps(t *testing.T) {
	a := NewEnvelope(0, 0, 10, 10)
	b := NewEnvelope(5, 5, 15, 15)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlap not detected")
	}
	i := a.Intersection(b)
	if i.MinX != 5 || i.MinY != 5 || i.MaxX != 10 || i.MaxY != 10 {
		t.Fatalf("intersection = %v", i)
	}
	u := a.Union(b)
	if u.MinX != 0 || u.MaxX != 15 {
		t.Fatalf("union = %v", u)
	}
	far := NewEnvelope(100, 100, 101, 101)
	if a.Intersects(far) {
		t.Fatal("disjoint boxes intersect")
	}
	if !a.Intersection(far).IsEmpty() {
		t.Fatal("disjoint intersection should be empty")
	}
	// Touching edges count as intersecting (closed boxes).
	touch := NewEnvelope(10, 0, 20, 10)
	if !a.Intersects(touch) {
		t.Fatal("touching boxes should intersect")
	}
	if !a.ContainsEnvelope(NewEnvelope(2, 2, 8, 8)) {
		t.Fatal("containment failed")
	}
	if a.ContainsEnvelope(b) {
		t.Fatal("partial overlap is not containment")
	}
	if !a.ContainsEnvelope(EmptyEnvelope()) {
		t.Fatal("non-empty should contain empty")
	}
}

func TestEnvelopeUnionWithEmpty(t *testing.T) {
	a := NewEnvelope(0, 0, 1, 1)
	if got := a.Union(EmptyEnvelope()); got != a {
		t.Fatalf("union with empty = %v", got)
	}
	if got := EmptyEnvelope().Union(a); got != a {
		t.Fatalf("empty union a = %v", got)
	}
}

func TestEnvelopeBuffer(t *testing.T) {
	e := NewEnvelope(0, 0, 2, 2).Buffer(1)
	if e.MinX != -1 || e.MaxY != 3 {
		t.Fatalf("buffered = %v", e)
	}
	if !EmptyEnvelope().Buffer(5).IsEmpty() {
		t.Fatal("buffering empty stays empty")
	}
	shrunk := NewEnvelope(0, 0, 2, 2).Buffer(-2)
	if !shrunk.IsEmpty() {
		t.Fatalf("over-shrunk box should be empty: %v", shrunk)
	}
}

func TestEnvelopeDistanceToPoint(t *testing.T) {
	e := NewEnvelope(0, 0, 10, 10)
	if d := e.DistanceToPoint(5, 5); d != 0 {
		t.Fatalf("inside distance = %v", d)
	}
	if d := e.DistanceToPoint(13, 14); d != 5 {
		t.Fatalf("corner distance = %v, want 5", d)
	}
	if d := e.DistanceToPoint(-3, 5); d != 3 {
		t.Fatalf("edge distance = %v, want 3", d)
	}
}

func TestEnvelopeToPolygon(t *testing.T) {
	e := NewEnvelope(0, 0, 4, 2)
	p := e.ToPolygon()
	if got := p.Area(); got != 8 {
		t.Fatalf("area = %v, want 8", got)
	}
	if !PolygonContainsPoint(p, 2, 1) {
		t.Fatal("polygonised box should contain its center")
	}
}

func TestEnvelopeString(t *testing.T) {
	got := NewEnvelope(1, 2, 3, 4).String()
	if got != "BOX(1 2, 3 4)" {
		t.Fatalf("String = %q", got)
	}
}

func TestMultiPointEnvelope(t *testing.T) {
	m := MultiPoint{Points: []Point{{1, 5}, {-2, 3}}}
	e := m.Envelope()
	if e.MinX != -2 || e.MaxY != 5 {
		t.Fatalf("envelope = %v", e)
	}
	if m.IsEmpty() || !(MultiPoint{}).IsEmpty() {
		t.Fatal("IsEmpty wrong")
	}
}

func TestRingEnvelopeAndClosure(t *testing.T) {
	r := Ring{Points: []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}}
	pts := r.closedPoints()
	if len(pts) != 5 || !pts[0].Equals(pts[4]) {
		t.Fatalf("closedPoints = %v", pts)
	}
	// Already closed input is returned as-is.
	r2 := Ring{Points: []Point{{0, 0}, {4, 0}, {4, 4}, {0, 0}}}
	if len(r2.closedPoints()) != 4 {
		t.Fatal("already-closed ring should not grow")
	}
	if (Ring{}).closedPoints() != nil {
		t.Fatal("empty ring closedPoints should be nil")
	}
	if !math.IsInf((Ring{}).Envelope().MinX, 1) {
		t.Fatal("empty ring envelope should be empty")
	}
}

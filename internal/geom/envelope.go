package geom

import (
	"fmt"
	"math"
)

// Envelope is a closed axis-aligned 2-D bounding box. The zero Envelope is
// NOT empty (it is the degenerate box at the origin); use EmptyEnvelope to
// start an accumulation.
type Envelope struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyEnvelope returns an envelope that contains nothing; expanding it with
// any point yields that point's degenerate box.
func EmptyEnvelope() Envelope {
	return Envelope{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// NewEnvelope builds an envelope from two corner points in any order.
func NewEnvelope(x1, y1, x2, y2 float64) Envelope {
	return Envelope{
		MinX: math.Min(x1, x2), MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2), MaxY: math.Max(y1, y2),
	}
}

// IsEmpty reports whether the envelope contains no points.
func (e Envelope) IsEmpty() bool { return e.MinX > e.MaxX || e.MinY > e.MaxY }

// Width returns the X extent (0 for empty envelopes).
func (e Envelope) Width() float64 {
	if e.IsEmpty() {
		return 0
	}
	return e.MaxX - e.MinX
}

// Height returns the Y extent (0 for empty envelopes).
func (e Envelope) Height() float64 {
	if e.IsEmpty() {
		return 0
	}
	return e.MaxY - e.MinY
}

// Area returns the area of the envelope.
func (e Envelope) Area() float64 { return e.Width() * e.Height() }

// Center returns the midpoint of the envelope.
func (e Envelope) Center() Point { return Point{X: (e.MinX + e.MaxX) / 2, Y: (e.MinY + e.MaxY) / 2} }

// ContainsPoint reports whether (x, y) lies inside or on the boundary.
func (e Envelope) ContainsPoint(x, y float64) bool {
	return x >= e.MinX && x <= e.MaxX && y >= e.MinY && y <= e.MaxY
}

// ContainsEnvelope reports whether o lies fully within e (boundaries touch
// counts as contained). An empty o is contained in everything non-empty.
func (e Envelope) ContainsEnvelope(o Envelope) bool {
	if e.IsEmpty() {
		return false
	}
	if o.IsEmpty() {
		return true
	}
	return o.MinX >= e.MinX && o.MaxX <= e.MaxX && o.MinY >= e.MinY && o.MaxY <= e.MaxY
}

// Intersects reports whether the closed boxes share at least one point.
func (e Envelope) Intersects(o Envelope) bool {
	if e.IsEmpty() || o.IsEmpty() {
		return false
	}
	return e.MinX <= o.MaxX && o.MinX <= e.MaxX && e.MinY <= o.MaxY && o.MinY <= e.MaxY
}

// Intersection returns the overlapping box of e and o (empty if disjoint).
func (e Envelope) Intersection(o Envelope) Envelope {
	if !e.Intersects(o) {
		return EmptyEnvelope()
	}
	return Envelope{
		MinX: math.Max(e.MinX, o.MinX), MinY: math.Max(e.MinY, o.MinY),
		MaxX: math.Min(e.MaxX, o.MaxX), MaxY: math.Min(e.MaxY, o.MaxY),
	}
}

// Union returns the smallest envelope covering both e and o.
func (e Envelope) Union(o Envelope) Envelope {
	if e.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return e
	}
	return Envelope{
		MinX: math.Min(e.MinX, o.MinX), MinY: math.Min(e.MinY, o.MinY),
		MaxX: math.Max(e.MaxX, o.MaxX), MaxY: math.Max(e.MaxY, o.MaxY),
	}
}

// ExpandToPoint grows the envelope in place to cover (x, y).
func (e *Envelope) ExpandToPoint(x, y float64) {
	if x < e.MinX {
		e.MinX = x
	}
	if x > e.MaxX {
		e.MaxX = x
	}
	if y < e.MinY {
		e.MinY = y
	}
	if y > e.MaxY {
		e.MaxY = y
	}
}

// ExpandToEnvelope grows the envelope in place to cover o.
func (e *Envelope) ExpandToEnvelope(o Envelope) {
	if o.IsEmpty() {
		return
	}
	e.ExpandToPoint(o.MinX, o.MinY)
	e.ExpandToPoint(o.MaxX, o.MaxY)
}

// Buffer returns the envelope grown by d on every side. A negative d shrinks
// the box and may empty it.
func (e Envelope) Buffer(d float64) Envelope {
	if e.IsEmpty() {
		return e
	}
	return Envelope{MinX: e.MinX - d, MinY: e.MinY - d, MaxX: e.MaxX + d, MaxY: e.MaxY + d}
}

// DistanceToPoint returns the minimum distance from the box to (x, y); zero
// when the point lies inside.
func (e Envelope) DistanceToPoint(x, y float64) float64 {
	dx := math.Max(0, math.Max(e.MinX-x, x-e.MaxX))
	dy := math.Max(0, math.Max(e.MinY-y, y-e.MaxY))
	return math.Hypot(dx, dy)
}

// ToPolygon converts the envelope to an equivalent polygon (CCW shell).
func (e Envelope) ToPolygon() Polygon {
	return Polygon{Shell: Ring{Points: []Point{
		{e.MinX, e.MinY}, {e.MaxX, e.MinY}, {e.MaxX, e.MaxY}, {e.MinX, e.MaxY}, {e.MinX, e.MinY},
	}}}
}

// String renders the envelope as "BOX(minx miny, maxx maxy)".
func (e Envelope) String() string {
	return fmt.Sprintf("BOX(%g %g, %g %g)", e.MinX, e.MinY, e.MaxX, e.MaxY)
}

package geom

import (
	"math/rand"
	"testing"
)

func TestConvexHullSquarePlusInterior(t *testing.T) {
	mp := MultiPoint{Points: []Point{
		{0, 0}, {10, 0}, {10, 10}, {0, 10}, // corners
		{5, 5}, {3, 7}, {8, 2}, // interior noise
	}}
	h := ConvexHull(mp)
	if len(h.Shell.Points) != 4 {
		t.Fatalf("hull has %d vertices, want 4", len(h.Shell.Points))
	}
	if h.Area() != 100 {
		t.Fatalf("hull area = %v", h.Area())
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if !ConvexHull(MultiPoint{}).IsEmpty() {
		t.Fatal("empty input should yield empty hull")
	}
	if !ConvexHull(Point{1, 1}).IsEmpty() {
		t.Fatal("single point should yield empty hull")
	}
	two := MultiPoint{Points: []Point{{0, 0}, {1, 1}}}
	if !ConvexHull(two).IsEmpty() {
		t.Fatal("two points should yield empty hull")
	}
	collinear := MultiPoint{Points: []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}}
	if !ConvexHull(collinear).IsEmpty() {
		t.Fatal("collinear points should yield empty hull")
	}
	// Duplicates collapse.
	dup := MultiPoint{Points: []Point{{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}}}
	h := ConvexHull(dup)
	if len(h.Shell.Points) != 3 {
		t.Fatalf("dup hull vertices = %d", len(h.Shell.Points))
	}
}

func TestConvexHullContainsAllInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(200) + 3
		mp := MultiPoint{Points: make([]Point, n)}
		for i := range mp.Points {
			mp.Points[i] = Point{rng.NormFloat64() * 100, rng.NormFloat64() * 100}
		}
		h := ConvexHull(mp)
		if h.IsEmpty() {
			continue // all collinear (vanishingly unlikely but legal)
		}
		for _, p := range mp.Points {
			if !PolygonContainsPoint(h, p.X, p.Y) {
				t.Fatalf("iter %d: hull excludes input point %v", iter, p)
			}
		}
		// Hull vertices are a subset of the inputs.
		for _, v := range h.Shell.Points {
			found := false
			for _, p := range mp.Points {
				if v.Equals(p) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("hull vertex %v not an input", v)
			}
		}
	}
}

func TestConvexHullOfLineAndPolygon(t *testing.T) {
	l := LineString{Points: []Point{{0, 0}, {5, 8}, {10, 0}}}
	h := ConvexHull(l)
	if h.IsEmpty() || len(h.Shell.Points) != 3 {
		t.Fatalf("line hull = %v", h.Shell.Points)
	}
	// Hull of a convex polygon is itself (same vertex set).
	sq := NewEnvelope(0, 0, 4, 4).ToPolygon()
	h2 := ConvexHull(sq)
	if h2.Area() != 16 {
		t.Fatalf("square hull area = %v", h2.Area())
	}
}

package geom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWKTPointRoundTrip(t *testing.T) {
	p := Point{1.5, -2.25}
	got := p.WKT()
	if got != "POINT (1.5 -2.25)" {
		t.Fatalf("WKT = %q", got)
	}
	g, err := ParseWKT(got)
	if err != nil {
		t.Fatal(err)
	}
	if q, ok := g.(Point); !ok || !q.Equals(p) {
		t.Fatalf("roundtrip = %#v", g)
	}
}

func TestWKTEmptyForms(t *testing.T) {
	for _, src := range []string{
		"POINT EMPTY", "LINESTRING EMPTY", "POLYGON EMPTY",
		"MULTIPOINT EMPTY", "MULTILINESTRING EMPTY", "MULTIPOLYGON EMPTY",
		"GEOMETRYCOLLECTION EMPTY",
	} {
		g, err := ParseWKT(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !g.IsEmpty() {
			t.Fatalf("%s parsed non-empty: %#v", src, g)
		}
		// Empty geometries print back as their EMPTY form.
		if !strings.HasSuffix(g.WKT(), "EMPTY") {
			t.Fatalf("%s reprints as %q", src, g.WKT())
		}
	}
}

func TestWKTLineString(t *testing.T) {
	g, err := ParseWKT("LINESTRING(0 0, 10 0, 10 10)")
	if err != nil {
		t.Fatal(err)
	}
	l, ok := g.(LineString)
	if !ok || len(l.Points) != 3 {
		t.Fatalf("parsed %#v", g)
	}
	if l.Points[2] != (Point{10, 10}) {
		t.Fatalf("points = %v", l.Points)
	}
}

func TestWKTPolygonWithHole(t *testing.T) {
	src := "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))"
	g, err := ParseWKT(src)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := g.(Polygon)
	if !ok || len(p.Holes) != 1 {
		t.Fatalf("parsed %#v", g)
	}
	if got := p.Area(); got != 96 {
		t.Fatalf("area = %v", got)
	}
	// Round trip.
	g2, err := ParseWKT(p.WKT())
	if err != nil {
		t.Fatal(err)
	}
	if g2.(Polygon).Area() != 96 {
		t.Fatal("roundtrip lost area")
	}
}

func TestWKTMultiPointBothForms(t *testing.T) {
	flat, err := ParseWKT("MULTIPOINT (1 2, 3 4)")
	if err != nil {
		t.Fatal(err)
	}
	nested, err := ParseWKT("MULTIPOINT ((1 2), (3 4))")
	if err != nil {
		t.Fatal(err)
	}
	f := flat.(MultiPoint)
	n := nested.(MultiPoint)
	if len(f.Points) != 2 || len(n.Points) != 2 || f.Points[1] != n.Points[1] {
		t.Fatalf("flat=%v nested=%v", f, n)
	}
}

func TestWKTMultiLineString(t *testing.T) {
	g, err := ParseWKT("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))")
	if err != nil {
		t.Fatal(err)
	}
	ml := g.(MultiLineString)
	if len(ml.Lines) != 2 || len(ml.Lines[1].Points) != 3 {
		t.Fatalf("parsed %#v", ml)
	}
}

func TestWKTMultiPolygon(t *testing.T) {
	src := "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 7 5, 7 7, 5 7, 5 5), (5.5 5.5, 6 5.5, 6 6, 5.5 6, 5.5 5.5)))"
	g, err := ParseWKT(src)
	if err != nil {
		t.Fatal(err)
	}
	mp := g.(MultiPolygon)
	if len(mp.Polygons) != 2 || len(mp.Polygons[1].Holes) != 1 {
		t.Fatalf("parsed %#v", mp)
	}
	g2, err := ParseWKT(mp.WKT())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(g2.(MultiPolygon).Polygons) != 2 {
		t.Fatal("roundtrip lost polygons")
	}
}

func TestWKTGeometryCollection(t *testing.T) {
	src := "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))"
	g, err := ParseWKT(src)
	if err != nil {
		t.Fatal(err)
	}
	c := g.(Collection)
	if len(c.Geometries) != 2 {
		t.Fatalf("parsed %#v", c)
	}
	if _, err := ParseWKT(c.WKT()); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestWKTZMOrdinatesDropped(t *testing.T) {
	g, err := ParseWKT("POINT Z (1 2 3)")
	if err != nil {
		t.Fatal(err)
	}
	if g.(Point) != (Point{1, 2}) {
		t.Fatalf("parsed %#v", g)
	}
	g, err = ParseWKT("LINESTRING ZM (0 0 5 6, 1 1 7 8)")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.(LineString).Points) != 2 {
		t.Fatalf("parsed %#v", g)
	}
}

func TestWKTCaseAndWhitespaceInsensitive(t *testing.T) {
	g, err := ParseWKT("  point( 3   4 )  ")
	if err != nil {
		t.Fatal(err)
	}
	if g.(Point) != (Point{3, 4}) {
		t.Fatalf("parsed %#v", g)
	}
}

func TestWKTScientificNotation(t *testing.T) {
	g, err := ParseWKT("POINT (1e3 -2.5E-2)")
	if err != nil {
		t.Fatal(err)
	}
	p := g.(Point)
	if p.X != 1000 || p.Y != -0.025 {
		t.Fatalf("parsed %#v", p)
	}
}

func TestWKTErrors(t *testing.T) {
	bad := []string{
		"",
		"CIRCLE (0 0, 5)",
		"POINT (1)",
		"POINT (1 2",
		"POINT (1 2) trailing",
		"POLYGON ((0 0, 1 1)",
		"LINESTRING (a b)",
		"MULTIPOINT ((1 2 3 4 5",
	}
	for _, src := range bad {
		if _, err := ParseWKT(src); err == nil {
			t.Errorf("ParseWKT(%q) should fail", src)
		}
	}
}

func TestMustParseWKTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseWKT should panic on bad input")
		}
	}()
	MustParseWKT("NOT A GEOMETRY")
}

// Property: WKT round-trips points exactly for finite coordinates.
func TestQuickWKTPointRoundTrip(t *testing.T) {
	f := func(x, y float64) bool {
		if x != x || y != y { // skip NaN inputs
			return true
		}
		p := Point{x, y}
		g, err := ParseWKT(p.WKT())
		if err != nil {
			return false
		}
		q, ok := g.(Point)
		return ok && q.Equals(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: WKT round-trips line strings exactly.
func TestQuickWKTLineRoundTrip(t *testing.T) {
	f := func(coords []float64) bool {
		if len(coords) < 4 {
			return true
		}
		var pts []Point
		for i := 0; i+1 < len(coords); i += 2 {
			x, y := coords[i], coords[i+1]
			if x != x || y != y {
				return true
			}
			pts = append(pts, Point{x, y})
		}
		l := LineString{Points: pts}
		g, err := ParseWKT(l.WKT())
		if err != nil {
			return false
		}
		l2, ok := g.(LineString)
		if !ok || len(l2.Points) != len(pts) {
			return false
		}
		for i := range pts {
			if !pts[i].Equals(l2.Points[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

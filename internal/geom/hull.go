package geom

import "sort"

// ConvexHull returns the convex hull of g's vertices as a polygon (Andrew's
// monotone chain). Degenerate inputs return lower-dimension results wrapped
// in a polygon-compatible form: fewer than 3 distinct points yield an empty
// polygon.
func ConvexHull(g Geometry) Polygon {
	pts := vertices(g)
	if len(pts) == 0 {
		return Polygon{}
	}
	// Sort by (x, y) and deduplicate.
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.Equals(uniq[len(uniq)-1]) {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		return Polygon{}
	}

	cross := func(o, a, b Point) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	// Lower hull.
	var lower []Point
	for _, p := range uniq {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	// Upper hull.
	var upper []Point
	for i := len(uniq) - 1; i >= 0; i-- {
		p := uniq[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	// Concatenate, dropping the duplicated endpoints.
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 3 {
		return Polygon{} // collinear input
	}
	return Polygon{Shell: Ring{Points: hull}}
}

package geom

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestCentroidPointForms(t *testing.T) {
	if c := Centroid(Point{3, 4}); c != (Point{3, 4}) {
		t.Fatalf("point centroid = %v", c)
	}
	mp := MultiPoint{Points: []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}}
	if c := Centroid(mp); c != (Point{1, 1}) {
		t.Fatalf("multipoint centroid = %v", c)
	}
	if !Centroid(MultiPoint{}).IsEmpty() {
		t.Fatal("empty multipoint centroid should be empty")
	}
}

func TestCentroidLine(t *testing.T) {
	// A straight segment's centroid is its midpoint.
	l := LineString{Points: []Point{{0, 0}, {10, 0}}}
	if c := Centroid(l); c != (Point{5, 0}) {
		t.Fatalf("line centroid = %v", c)
	}
	// Length weighting: a long leg pulls the centroid.
	bent := LineString{Points: []Point{{0, 0}, {10, 0}, {10, 1}}}
	c := Centroid(bent)
	if !(c.X > 4.5 && c.Y < 0.2) {
		t.Fatalf("bent centroid = %v", c)
	}
	// Degenerate line (all same point).
	deg := LineString{Points: []Point{{5, 5}, {5, 5}}}
	if c := Centroid(deg); c != (Point{5, 5}) {
		t.Fatalf("degenerate line centroid = %v", c)
	}
}

func TestCentroidPolygon(t *testing.T) {
	sq := NewEnvelope(0, 0, 10, 10).ToPolygon()
	if c := Centroid(sq); !almostEq(c.X, 5, 1e-9) || !almostEq(c.Y, 5, 1e-9) {
		t.Fatalf("square centroid = %v", c)
	}
	// Orientation independence.
	cw := Polygon{Shell: Ring{Points: []Point{{0, 0}, {0, 10}, {10, 10}, {10, 0}}}}
	if c := Centroid(cw); !almostEq(c.X, 5, 1e-9) || !almostEq(c.Y, 5, 1e-9) {
		t.Fatalf("cw square centroid = %v", c)
	}
	// A hole shifts the centroid away from it.
	holed := Polygon{
		Shell: Ring{Points: []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}},
		Holes: []Ring{{Points: []Point{{6, 4}, {9, 4}, {9, 7}, {6, 7}}}},
	}
	c := Centroid(holed)
	if c.X >= 5 {
		t.Fatalf("hole on the right should pull centroid left: %v", c)
	}
	// Degenerate polygon falls back to vertex mean.
	flat := Polygon{Shell: Ring{Points: []Point{{0, 0}, {10, 0}, {5, 0}}}}
	if c := Centroid(flat); c.IsEmpty() {
		t.Fatal("degenerate polygon centroid should fall back, not be empty")
	}
}

func TestCentroidMultiPolygonWeighted(t *testing.T) {
	// A big square and a tiny one: centroid lands near the big square.
	m := MultiPolygon{Polygons: []Polygon{
		NewEnvelope(0, 0, 10, 10).ToPolygon(),
		NewEnvelope(100, 100, 101, 101).ToPolygon(),
	}}
	c := Centroid(m)
	if c.X > 10 {
		t.Fatalf("small polygon dominated: %v", c)
	}
}

func TestCentroidCollectionDimensionPriority(t *testing.T) {
	col := Collection{Geometries: []Geometry{
		Point{100, 100},
		LineString{Points: []Point{{50, 50}, {60, 50}}},
		NewEnvelope(0, 0, 10, 10).ToPolygon(),
	}}
	c := Centroid(col)
	// The polygon (highest dimension) decides.
	if !almostEq(c.X, 5, 1e-9) || !almostEq(c.Y, 5, 1e-9) {
		t.Fatalf("collection centroid = %v", c)
	}
	linesOnly := Collection{Geometries: []Geometry{
		LineString{Points: []Point{{0, 0}, {10, 0}}},
	}}
	if c := Centroid(linesOnly); c != (Point{5, 0}) {
		t.Fatalf("line collection centroid = %v", c)
	}
	if !Centroid(Collection{}).IsEmpty() {
		t.Fatal("empty collection centroid should be empty")
	}
}

func TestLengthAndArea(t *testing.T) {
	l := LineString{Points: []Point{{0, 0}, {3, 4}}}
	if Length(l) != 5 {
		t.Fatal("line length wrong")
	}
	sq := NewEnvelope(0, 0, 10, 10).ToPolygon()
	if Length(sq) != 40 {
		t.Fatalf("perimeter = %v", Length(sq))
	}
	if Area(sq) != 100 {
		t.Fatalf("area = %v", Area(sq))
	}
	if Length(Point{1, 1}) != 0 || Area(Point{1, 1}) != 0 {
		t.Fatal("point measures should be zero")
	}
	col := Collection{Geometries: []Geometry{l, sq}}
	if Length(col) != 45 || Area(col) != 100 {
		t.Fatal("collection measures wrong")
	}
	holed := Polygon{
		Shell: Ring{Points: []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}},
		Holes: []Ring{{Points: []Point{{2, 2}, {4, 2}, {4, 4}, {2, 4}}}},
	}
	if Length(holed) != 48 {
		t.Fatalf("holed perimeter = %v", Length(holed))
	}
	mp := MultiPolygon{Polygons: []Polygon{sq, sq}}
	if Area(mp) != 200 || Length(mp) != 80 {
		t.Fatal("multipolygon measures wrong")
	}
}

func TestSimplify(t *testing.T) {
	// Points on a line with tiny zigzag collapse to the endpoints.
	var pts []Point
	for i := 0; i <= 100; i++ {
		y := 0.0
		if i%2 == 1 {
			y = 0.01
		}
		pts = append(pts, Point{float64(i), y})
	}
	l := LineString{Points: pts}
	s := Simplify(l, 0.1)
	if len(s.Points) != 2 {
		t.Fatalf("zigzag should collapse to 2 points, got %d", len(s.Points))
	}
	// A sharp corner survives.
	corner := LineString{Points: []Point{{0, 0}, {50, 0}, {50, 50}}}
	s2 := Simplify(corner, 1)
	if len(s2.Points) != 3 {
		t.Fatalf("corner lost: %d points", len(s2.Points))
	}
	// Tolerance 0 and short lines are returned unchanged.
	if got := Simplify(l, 0); len(got.Points) != len(l.Points) {
		t.Fatal("tol=0 should be identity")
	}
	short := LineString{Points: []Point{{0, 0}, {1, 1}}}
	if got := Simplify(short, 5); len(got.Points) != 2 {
		t.Fatal("short line should be identity")
	}
	// Simplified line deviates at most tol from the original vertices.
	rng := rand.New(rand.NewSource(3))
	var wpts []Point
	x := 0.0
	y := 0.0
	for i := 0; i < 200; i++ {
		x += rng.Float64() * 5
		y += rng.NormFloat64() * 3
		wpts = append(wpts, Point{x, y})
	}
	walk := LineString{Points: wpts}
	const tol = 10.0
	sw := Simplify(walk, tol)
	if len(sw.Points) >= len(walk.Points) {
		t.Fatal("random walk should simplify")
	}
	for _, p := range walk.Points {
		if d := DistancePointToGeometry(p.X, p.Y, sw); d > tol+1e-9 {
			t.Fatalf("vertex deviates %v > tol", d)
		}
	}
}

func TestInterpolate(t *testing.T) {
	l := LineString{Points: []Point{{0, 0}, {10, 0}, {10, 10}}}
	if p := Interpolate(l, 0); p != (Point{0, 0}) {
		t.Fatalf("t=0: %v", p)
	}
	if p := Interpolate(l, 1); p != (Point{10, 10}) {
		t.Fatalf("t=1: %v", p)
	}
	if p := Interpolate(l, 0.5); p != (Point{10, 0}) {
		t.Fatalf("t=0.5: %v", p)
	}
	if p := Interpolate(l, 0.25); p != (Point{5, 0}) {
		t.Fatalf("t=0.25: %v", p)
	}
	if !Interpolate(LineString{}, 0.5).IsEmpty() {
		t.Fatal("empty line interpolation should be empty")
	}
	single := LineString{Points: []Point{{7, 7}}}
	if p := Interpolate(single, 0.9); p != (Point{7, 7}) {
		t.Fatal("single point line")
	}
}

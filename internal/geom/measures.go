package geom

// Centroid returns the centroid of g following the OGC semantics for the
// highest-dimension component: area centroid for polygons, length-weighted
// midpoint for lines, arithmetic mean for points. Empty geometries yield
// the empty point.
func Centroid(g Geometry) Point {
	switch t := g.(type) {
	case Point:
		return t
	case MultiPoint:
		if len(t.Points) == 0 {
			return EmptyPoint()
		}
		var sx, sy float64
		for _, p := range t.Points {
			sx += p.X
			sy += p.Y
		}
		n := float64(len(t.Points))
		return Point{X: sx / n, Y: sy / n}
	case LineString:
		return lineCentroid(t)
	case MultiLineString:
		var sx, sy, sw float64
		for _, l := range t.Lines {
			c := lineCentroid(l)
			w := l.Length()
			if c.IsEmpty() {
				continue
			}
			sx += c.X * w
			sy += c.Y * w
			sw += w
		}
		if sw == 0 {
			return EmptyPoint()
		}
		return Point{X: sx / sw, Y: sy / sw}
	case Polygon:
		return polygonCentroid(t)
	case MultiPolygon:
		var sx, sy, sw float64
		for _, p := range t.Polygons {
			c := polygonCentroid(p)
			w := p.Area()
			if c.IsEmpty() {
				continue
			}
			sx += c.X * w
			sy += c.Y * w
			sw += w
		}
		if sw == 0 {
			return EmptyPoint()
		}
		return Point{X: sx / sw, Y: sy / sw}
	case Collection:
		// Highest dimension wins: polygons, then lines, then points.
		var polys MultiPolygon
		var lines MultiLineString
		var pts MultiPoint
		for _, sub := range t.Geometries {
			switch s := sub.(type) {
			case Polygon:
				polys.Polygons = append(polys.Polygons, s)
			case MultiPolygon:
				polys.Polygons = append(polys.Polygons, s.Polygons...)
			case LineString:
				lines.Lines = append(lines.Lines, s)
			case MultiLineString:
				lines.Lines = append(lines.Lines, s.Lines...)
			case Point:
				pts.Points = append(pts.Points, s)
			case MultiPoint:
				pts.Points = append(pts.Points, s.Points...)
			}
		}
		if len(polys.Polygons) > 0 {
			return Centroid(polys)
		}
		if len(lines.Lines) > 0 {
			return Centroid(lines)
		}
		return Centroid(pts)
	default:
		return EmptyPoint()
	}
}

func lineCentroid(l LineString) Point {
	if len(l.Points) == 0 {
		return EmptyPoint()
	}
	if len(l.Points) == 1 {
		return l.Points[0]
	}
	var sx, sy, sw float64
	for i := 1; i < len(l.Points); i++ {
		a, b := l.Points[i-1], l.Points[i]
		w := a.DistanceTo(b)
		sx += (a.X + b.X) / 2 * w
		sy += (a.Y + b.Y) / 2 * w
		sw += w
	}
	if sw == 0 {
		return l.Points[0] // degenerate: all points coincide
	}
	return Point{X: sx / sw, Y: sy / sw}
}

// polygonCentroid uses the shoelace-weighted formula over the shell and
// subtracts hole contributions.
func polygonCentroid(p Polygon) Point {
	if p.IsEmpty() {
		return EmptyPoint()
	}
	cx, cy, area := ringCentroidArea(p.Shell)
	for _, h := range p.Holes {
		hx, hy, ha := ringCentroidArea(h)
		cx -= hx
		cy -= hy
		area -= ha
	}
	if area == 0 {
		// Degenerate polygon: fall back to its vertex mean.
		return Centroid(MultiPoint{Points: p.Shell.Points})
	}
	// Standard shoelace centroid: C = Σ(v_i + v_{i+1})·cross_i / (6A),
	// with area = Σcross/2 the divisor is 6·area.
	return Point{X: cx / (6 * area), Y: cy / (6 * area)}
}

// ringCentroidArea returns the unnormalised centroid sums and the signed
// area magnitude of a ring.
func ringCentroidArea(r Ring) (cx, cy, area float64) {
	pts := r.closedPoints()
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		cross := a.X*b.Y - b.X*a.Y
		cx += (a.X + b.X) * cross
		cy += (a.Y + b.Y) * cross
		area += cross
	}
	area /= 2
	if area < 0 {
		return -cx, -cy, -area
	}
	return cx, cy, area
}

// Length returns the 1-D measure of g: total segment length for lines,
// perimeter for polygons, 0 for points.
func Length(g Geometry) float64 {
	switch t := g.(type) {
	case LineString:
		return t.Length()
	case MultiLineString:
		return t.Length()
	case Polygon:
		total := ringLength(t.Shell)
		for _, h := range t.Holes {
			total += ringLength(h)
		}
		return total
	case MultiPolygon:
		var total float64
		for _, p := range t.Polygons {
			total += Length(p)
		}
		return total
	case Collection:
		var total float64
		for _, sub := range t.Geometries {
			total += Length(sub)
		}
		return total
	default:
		return 0
	}
}

func ringLength(r Ring) float64 {
	pts := r.closedPoints()
	var sum float64
	for i := 1; i < len(pts); i++ {
		sum += pts[i-1].DistanceTo(pts[i])
	}
	return sum
}

// Area returns the 2-D measure of g: polygon area (holes subtracted),
// 0 for lower-dimension geometries.
func Area(g Geometry) float64 {
	switch t := g.(type) {
	case Polygon:
		return t.Area()
	case MultiPolygon:
		return t.Area()
	case Collection:
		var total float64
		for _, sub := range t.Geometries {
			total += Area(sub)
		}
		return total
	default:
		return 0
	}
}

// Simplify reduces the vertex count of a line string with the
// Douglas–Peucker algorithm under tolerance tol, keeping endpoints. Useful
// when rendering dense vector layers at low zoom (the QGIS substitute does
// exactly this for large networks).
func Simplify(l LineString, tol float64) LineString {
	if len(l.Points) <= 2 || tol <= 0 {
		return l
	}
	keep := make([]bool, len(l.Points))
	keep[0] = true
	keep[len(l.Points)-1] = true
	simplifyRange(l.Points, 0, len(l.Points)-1, tol, keep)
	out := make([]Point, 0, len(l.Points))
	for i, k := range keep {
		if k {
			out = append(out, l.Points[i])
		}
	}
	return LineString{Points: out}
}

func simplifyRange(pts []Point, first, last int, tol float64, keep []bool) {
	if last <= first+1 {
		return
	}
	maxDist := -1.0
	maxIdx := -1
	for i := first + 1; i < last; i++ {
		d := pointSegmentDistance(pts[i], pts[first], pts[last])
		if d > maxDist {
			maxDist = d
			maxIdx = i
		}
	}
	if maxDist > tol {
		keep[maxIdx] = true
		simplifyRange(pts, first, maxIdx, tol, keep)
		simplifyRange(pts, maxIdx, last, tol, keep)
	}
}

// Interpolate returns the point at fraction t ∈ [0,1] along the line.
func Interpolate(l LineString, t float64) Point {
	if len(l.Points) == 0 {
		return EmptyPoint()
	}
	if len(l.Points) == 1 || t <= 0 {
		return l.Points[0]
	}
	if t >= 1 {
		return l.Points[len(l.Points)-1]
	}
	target := l.Length() * t
	var walked float64
	for i := 1; i < len(l.Points); i++ {
		a, b := l.Points[i-1], l.Points[i]
		seg := a.DistanceTo(b)
		if walked+seg >= target && seg > 0 {
			f := (target - walked) / seg
			return Point{X: a.X + f*(b.X-a.X), Y: a.Y + f*(b.Y-a.Y)}
		}
		walked += seg
	}
	return l.Points[len(l.Points)-1]
}

package imprints

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gisnav/internal/colstore"
)

func mustBuild(t *testing.T, vals []float64, opts Options) *Imprints {
	t.Helper()
	im, err := Build(vals, opts)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// naiveLines returns the set of cache lines that truly contain a value in
// [lo, hi].
func naiveLines(vals []float64, vpl int, lo, hi float64) map[int]bool {
	out := map[int]bool{}
	for i, v := range vals {
		if v >= lo && v <= hi {
			out[i/vpl] = true
		}
	}
	return out
}

func TestEmptyColumn(t *testing.T) {
	im := mustBuild(t, nil, Options{})
	if im.N() != 0 || im.Lines() != 0 {
		t.Fatal("empty imprints should be empty")
	}
	if im.CandidateLines(0, 1) != nil {
		t.Fatal("empty imprints should return no candidates")
	}
	if im.CandidateRanges(0, 1) != nil {
		t.Fatal("empty imprints should return no ranges")
	}
	if im.OverheadPercent() != 0 || im.CompressionRatio() != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Build([]float64{1}, Options{Bits: 12}); err == nil {
		t.Fatal("bits=12 should be rejected")
	}
	if _, err := Build([]float64{1}, Options{ValuesPerLine: -1}); err == nil {
		t.Fatal("negative vpl should be rejected")
	}
	if _, err := Build([]float64{1}, Options{SampleSize: 1}); err == nil {
		t.Fatal("sample size 1 should be rejected")
	}
	for _, bits := range []int{8, 16, 32, 64} {
		if _, err := Build([]float64{1, 2, 3}, Options{Bits: bits}); err != nil {
			t.Fatalf("bits=%d rejected: %v", bits, err)
		}
	}
}

func TestCandidateSupersetExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 10_000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	im := mustBuild(t, vals, Options{})
	for iter := 0; iter < 200; iter++ {
		lo := rng.Float64()*400 - 200
		hi := lo + rng.Float64()*100
		truth := naiveLines(vals, im.ValuesPerLine(), lo, hi)
		cand := map[int]bool{}
		for _, l := range im.CandidateLines(lo, hi) {
			cand[l] = true
		}
		for l := range truth {
			if !cand[l] {
				t.Fatalf("query [%v,%v]: line %d holds a match but was not flagged", lo, hi, l)
			}
		}
	}
}

func TestCandidateRangesMatchLines(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	im := mustBuild(t, vals, Options{ValuesPerLine: 16})
	for iter := 0; iter < 100; iter++ {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*200
		lines := im.CandidateLines(lo, hi)
		ranges := im.CandidateRanges(lo, hi)
		// Every line's rows must be covered by the ranges and vice versa.
		rows := 0
		for _, l := range lines {
			start := l * 16
			end := start + 16
			if end > len(vals) {
				end = len(vals)
			}
			rows += end - start
			for r := start; r < end; r++ {
				if !colstore.RangesContain(ranges, r) {
					t.Fatalf("row %d of line %d missing from ranges", r, l)
				}
			}
		}
		if got := colstore.RangesLen(ranges); got != rows {
			t.Fatalf("ranges cover %d rows, lines cover %d", got, rows)
		}
		// Ranges must be sorted and disjoint.
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Start < ranges[i-1].End {
				t.Fatalf("ranges overlap: %v", ranges)
			}
		}
	}
}

func TestFinalPartialLineClipped(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // vpl 8 → 2 lines, 2nd partial
	im := mustBuild(t, vals, Options{})
	rs := im.CandidateRanges(9, 10)
	if len(rs) == 0 {
		t.Fatal("no candidates for tail values")
	}
	last := rs[len(rs)-1]
	if last.End != 10 {
		t.Fatalf("tail range end = %d, want 10", last.End)
	}
}

func TestConstantColumnCompressesToOneVector(t *testing.T) {
	vals := make([]float64, 8000)
	for i := range vals {
		vals[i] = 42
	}
	im := mustBuild(t, vals, Options{})
	if im.VectorCount() != 1 {
		t.Fatalf("constant column stored %d vectors, want 1", im.VectorCount())
	}
	if im.DictEntries() != 1 {
		t.Fatalf("dict entries = %d, want 1", im.DictEntries())
	}
	if got := im.CompressionRatio(); got != 1000 {
		t.Fatalf("compression ratio = %v, want 1000", got)
	}
	// All lines are candidates for 42, none for 43+.
	if len(im.CandidateLines(42, 42)) != 1000 {
		t.Fatal("value query should flag all lines")
	}
	if len(im.CandidateLines(43.5, 44)) != 0 {
		t.Fatal("out-of-range query must flag nothing")
	}
}

func TestClusteredBeatsShuffledCompression(t *testing.T) {
	// Clustered data (sorted) compresses far better than shuffled, while
	// candidate filtering stays correct for both — the robustness claim of
	// §2.1.1.
	rng := rand.New(rand.NewSource(7))
	clustered := make([]float64, 50_000)
	for i := range clustered {
		clustered[i] = float64(i) / 50 // gently increasing
	}
	shuffled := append([]float64(nil), clustered...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	imC := mustBuild(t, clustered, Options{})
	imS := mustBuild(t, shuffled, Options{})
	if imC.CompressionRatio() <= imS.CompressionRatio() {
		t.Fatalf("clustered ratio %v should beat shuffled %v", imC.CompressionRatio(), imS.CompressionRatio())
	}
	// Shuffled imprints are still exact (superset invariant).
	truth := naiveLines(shuffled, imS.ValuesPerLine(), 100, 120)
	cand := map[int]bool{}
	for _, l := range imS.CandidateLines(100, 120) {
		cand[l] = true
	}
	for l := range truth {
		if !cand[l] {
			t.Fatal("shuffled imprints lost a matching line")
		}
	}
	// Clustered candidates are selective: a narrow range flags few lines.
	frac := imC.CandidateFraction(100, 120)
	if frac > 0.05 {
		t.Fatalf("clustered candidate fraction = %v, want < 0.05", frac)
	}
}

func TestOverheadWithinPaperBand(t *testing.T) {
	// On clustered data at 64 bins / 8 values per line the overhead must be
	// in the single-digit percent band the paper reports (5–12%).
	vals := make([]float64, 200_000)
	for i := range vals {
		vals[i] = float64(i%1000) + float64(i)/1e4
	}
	im := mustBuild(t, vals, Options{})
	if ov := im.OverheadPercent(); ov > 15 {
		t.Fatalf("overhead = %.2f%%, want within ~paper band (<15%%)", ov)
	}
}

func TestNaNValuesNeverLost(t *testing.T) {
	vals := []float64{1, 2, math.NaN(), 4, 5, 6, 7, 8}
	im := mustBuild(t, vals, Options{})
	// NaN sits in the last bin; a query touching that bin flags the line.
	// More importantly: building must not panic and all real values remain
	// findable.
	truth := naiveLines(vals, im.ValuesPerLine(), 4, 6)
	cand := im.CandidateLines(4, 6)
	if len(truth) > 0 && len(cand) == 0 {
		t.Fatal("NaN in line hid real matches")
	}
}

func TestInvertedRangeIsEmpty(t *testing.T) {
	im := mustBuild(t, []float64{1, 2, 3}, Options{})
	if im.CandidateLines(5, 1) != nil {
		t.Fatal("inverted range should have no candidates")
	}
}

func TestFewDistinctValues(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i % 3) // only 0,1,2
	}
	im := mustBuild(t, vals, Options{})
	for q := 0.0; q <= 2; q++ {
		truth := naiveLines(vals, im.ValuesPerLine(), q, q)
		cand := map[int]bool{}
		for _, l := range im.CandidateLines(q, q) {
			cand[l] = true
		}
		for l := range truth {
			if !cand[l] {
				t.Fatalf("value %v: line %d lost", q, l)
			}
		}
	}
}

func TestBuildColumnTypedPaths(t *testing.T) {
	f := colstore.NewF64Column([]float64{5, 6, 7, 8})
	imF, err := BuildColumn(f, Options{})
	if err != nil || imF.N() != 4 {
		t.Fatalf("f64 path: %v", err)
	}
	u := colstore.NewU16Column([]uint16{5, 6, 7, 8})
	imU, err := BuildColumn(u, Options{})
	if err != nil || imU.N() != 4 {
		t.Fatalf("u16 path: %v", err)
	}
	// Both should flag the single line for a covering query.
	if len(imF.CandidateLines(5, 8)) != 1 || len(imU.CandidateLines(5, 8)) != 1 {
		t.Fatal("single line should be flagged")
	}
}

func TestStatsSnapshot(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	im := mustBuild(t, vals, Options{ValuesPerLine: 10, Bits: 16})
	s := im.Stats()
	if s.N != 100 || s.Lines != 10 || s.Bits != 16 || s.ValuesPerLine != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Bytes != im.Bytes() || s.Bytes <= 0 {
		t.Fatalf("bytes = %d", s.Bytes)
	}
	if s.Vectors != im.VectorCount() || s.DictEntries != im.DictEntries() {
		t.Fatal("stats counters inconsistent")
	}
}

func TestBitsVariantsStaySound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.Float64() * 1e6
	}
	for _, bits := range []int{8, 16, 32, 64} {
		im := mustBuild(t, vals, Options{Bits: bits})
		for iter := 0; iter < 50; iter++ {
			lo := rng.Float64() * 1e6
			hi := lo + rng.Float64()*1e5
			truth := naiveLines(vals, im.ValuesPerLine(), lo, hi)
			cand := map[int]bool{}
			for _, l := range im.CandidateLines(lo, hi) {
				cand[l] = true
			}
			for l := range truth {
				if !cand[l] {
					t.Fatalf("bits=%d: line %d lost", bits, l)
				}
			}
		}
		// Fewer bins must never flag fewer lines than more bins would need.
		if im.Bits() != bits {
			t.Fatalf("bits = %d, want %d", im.Bits(), bits)
		}
	}
}

func TestMoreBitsMoreSelective(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vals := make([]float64, 100_000)
	for i := range vals {
		vals[i] = rng.Float64() * 1e6
	}
	im8 := mustBuild(t, vals, Options{Bits: 8})
	im64 := mustBuild(t, vals, Options{Bits: 64})
	var f8, f64sum float64
	for iter := 0; iter < 30; iter++ {
		lo := rng.Float64() * 9e5
		hi := lo + 1e4
		f8 += im8.CandidateFraction(lo, hi)
		f64sum += im64.CandidateFraction(lo, hi)
	}
	if f64sum >= f8 {
		t.Fatalf("64-bin fraction (%v) should be below 8-bin fraction (%v)", f64sum, f8)
	}
}

func TestRepeatRunCarving(t *testing.T) {
	// Data designed to produce: distinct, run of identical, distinct.
	vpl := 4
	vals := []float64{
		1, 2, 3, 4, // line 0: low values
		100, 100, 100, 100, // line 1: same vector as lines 2,3
		100, 100, 100, 100,
		100, 100, 100, 100,
		1, 2, 3, 4, // line 4: back to low
	}
	im := mustBuild(t, vals, Options{ValuesPerLine: vpl, SampleSize: 16})
	if im.Lines() != 5 {
		t.Fatalf("lines = %d", im.Lines())
	}
	// Lines 1-3 collapse into one repeat entry → at most 3 stored vectors.
	if im.VectorCount() > 3 {
		t.Fatalf("stored vectors = %d, want <= 3", im.VectorCount())
	}
	// Candidates for the 100s are exactly lines 1..3.
	lines := im.CandidateLines(99, 101)
	want := []int{1, 2, 3}
	if len(lines) != 3 {
		t.Fatalf("candidate lines = %v", lines)
	}
	for i, l := range lines {
		if l != want[i] {
			t.Fatalf("candidate lines = %v, want %v", lines, want)
		}
	}
}

// Property: for random data and random queries, every matching row lies in a
// candidate range (the imprint superset invariant the filter step relies on).
func TestQuickSupersetInvariant(t *testing.T) {
	f := func(raw []float64, loSeed, widthSeed uint8) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		im, err := Build(vals, Options{ValuesPerLine: 4, SampleSize: 64})
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		lo := sorted[int(loSeed)%len(sorted)]
		hi := lo + math.Abs(sorted[int(widthSeed)%len(sorted)])/2
		ranges := im.CandidateRanges(lo, hi)
		for i, v := range vals {
			if v >= lo && v <= hi && !colstore.RangesContain(ranges, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectRangesWithImprints(t *testing.T) {
	// Simulates combining X and Y imprint candidates.
	a := []colstore.Range{{Start: 0, End: 64}, {Start: 128, End: 192}, {Start: 256, End: 320}}
	b := []colstore.Range{{Start: 32, End: 160}, {Start: 300, End: 400}}
	got := colstore.IntersectRanges(a, b)
	want := []colstore.Range{{Start: 32, End: 64}, {Start: 128, End: 160}, {Start: 300, End: 320}}
	if len(got) != len(want) {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intersection = %v, want %v", got, want)
		}
	}
	if colstore.IntersectRanges(a, nil) != nil {
		t.Fatal("intersection with empty should be empty")
	}
}

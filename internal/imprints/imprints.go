// Package imprints implements column imprints (Sidirourgos & Kersten,
// SIGMOD 2013), the lightweight cache-conscious secondary index MonetDB uses
// for the coarse filtering step of spatial selections (paper §2.1.1, §3.3).
//
// An imprint is a collection of small bit vectors, one per cache line of
// column data. Each bit corresponds to one of up to 64 value ranges (bins)
// whose boundaries are chosen from a sample of the column so that values
// spread evenly across bins. A bit is set when the cache line holds at least
// one value in that bin. A range predicate is answered by building the bit
// mask of bins overlapping the queried interval and flagging every cache
// line whose imprint intersects the mask — a superset of the cache lines
// holding matches, touched in a single sequential pass over the (compressed)
// imprint array.
//
// Consecutive identical imprint vectors — the common case on data with
// local clustering, such as tiled LIDAR scans — are collapsed through a
// cacheline dictionary: a list of (count, repeat) entries where a repeat
// entry says "the next count cache lines all share the following single
// imprint vector". Storage is typically a few percent of the indexed column.
package imprints

import (
	"fmt"
	"math"
	"sort"

	"gisnav/internal/colstore"
)

// DefaultBits is the default number of bins (one 64-bit vector per line).
const DefaultBits = 64

// DefaultValuesPerLine mirrors a 64-byte cache line of float64 values.
const DefaultValuesPerLine = 8

// DefaultSampleSize is the number of values sampled to place bin boundaries.
const DefaultSampleSize = 2048

// Options configures imprint construction.
type Options struct {
	// Bits is the number of bins; one of 8, 16, 32, 64. Defaults to 64.
	Bits int
	// ValuesPerLine is the number of consecutive values indexed by one
	// imprint vector. The natural choice is cacheline bytes / element size
	// (8 for float64 on 64-byte lines). Defaults to 8.
	ValuesPerLine int
	// SampleSize bounds the number of values sampled for bin boundaries.
	// Defaults to 2048.
	SampleSize int
}

func (o Options) withDefaults() Options {
	if o.Bits == 0 {
		o.Bits = DefaultBits
	}
	if o.ValuesPerLine == 0 {
		o.ValuesPerLine = DefaultValuesPerLine
	}
	if o.SampleSize == 0 {
		o.SampleSize = DefaultSampleSize
	}
	return o
}

func (o Options) validate() error {
	switch o.Bits {
	case 8, 16, 32, 64:
	default:
		return fmt.Errorf("imprints: bits must be 8, 16, 32 or 64, got %d", o.Bits)
	}
	if o.ValuesPerLine < 1 {
		return fmt.Errorf("imprints: values per line must be positive, got %d", o.ValuesPerLine)
	}
	if o.SampleSize < 2 {
		return fmt.Errorf("imprints: sample size must be at least 2, got %d", o.SampleSize)
	}
	return nil
}

// Imprints is an immutable secondary index over one column.
type Imprints struct {
	bounds []float64 // ascending bin upper boundaries; len = bits-1
	bits   int
	vpl    int // values per line
	n      int // number of indexed values

	// Cacheline dictionary: entry i covers counts[i] cache lines. When
	// repeats[i] is true those lines share one imprint vector; otherwise
	// each line has its own vector. vectors holds the stored vectors in
	// entry order.
	vectors []uint64
	counts  []uint32
	repeats []bool
	lines   int // total cache lines covered

	// binCounts is the value histogram over bins, filled during
	// construction. Query operators use it as a selectivity estimate to
	// size result vectors before scanning (every value matching a range
	// predicate lies in a bin overlapping the range).
	binCounts []uint32
}

// Build constructs imprints over vals. The input is not retained.
func Build(vals []float64, opts Options) (*Imprints, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	im := &Imprints{
		bits: opts.Bits,
		vpl:  opts.ValuesPerLine,
		n:    len(vals),
	}
	if len(vals) == 0 {
		return im, nil
	}
	im.bounds = sampleBounds(vals, opts.Bits, opts.SampleSize)
	im.buildVectors(vals)
	return im, nil
}

// BuildColumn constructs imprints over a colstore column, using the fast
// typed path where available.
func BuildColumn(col colstore.Column, opts Options) (*Imprints, error) {
	switch t := col.(type) {
	case *colstore.F64Column:
		return Build(t.Values(), opts)
	default:
		vals := make([]float64, col.Len())
		for i := range vals {
			vals[i] = col.Value(i)
		}
		return Build(vals, opts)
	}
}

// sampleBounds picks bits-1 ascending boundaries from a uniform sample so
// that sampled values spread roughly evenly over bins.
func sampleBounds(vals []float64, bits, sampleSize int) []float64 {
	step := len(vals) / sampleSize
	if step < 1 {
		step = 1
	}
	sample := make([]float64, 0, len(vals)/step+1)
	for i := 0; i < len(vals); i += step {
		v := vals[i]
		if math.IsNaN(v) {
			continue
		}
		sample = append(sample, v)
	}
	if len(sample) == 0 {
		sample = append(sample, 0)
	}
	sort.Float64s(sample)
	// Deduplicate to avoid zero-width bins.
	distinct := sample[:1]
	for _, v := range sample[1:] {
		if v != distinct[len(distinct)-1] {
			distinct = append(distinct, v)
		}
	}
	nb := bits - 1
	if len(distinct) <= nb {
		// Few distinct values: one boundary per distinct value.
		return append([]float64(nil), distinct...)
	}
	bounds := make([]float64, 0, nb)
	for i := 1; i <= nb; i++ {
		idx := i * len(distinct) / (nb + 1)
		b := distinct[idx]
		if len(bounds) == 0 || b != bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	return bounds
}

// binOf returns the bin index of v: the number of boundaries below v, i.e.
// bin i covers (bounds[i-1], bounds[i]] with virtual -inf/+inf edges. NaN
// values are assigned to the last bin so they never silently disappear
// from candidate sets.
func (im *Imprints) binOf(v float64) int {
	if math.IsNaN(v) {
		return im.lastBin()
	}
	// sort.SearchFloat64s returns the first index with bounds[i] >= v.
	return sort.SearchFloat64s(im.bounds, v)
}

// lastBin returns the highest usable bin index.
func (im *Imprints) lastBin() int { return len(im.bounds) }

// buildVectors computes the per-cacheline vectors and compresses runs,
// accumulating the per-bin value histogram along the way.
func (im *Imprints) buildVectors(vals []float64) {
	im.binCounts = make([]uint32, im.bits)
	for start := 0; start < len(vals); start += im.vpl {
		end := start + im.vpl
		if end > len(vals) {
			end = len(vals)
		}
		var vec uint64
		for _, v := range vals[start:end] {
			b := im.binOf(v)
			im.binCounts[b]++
			vec |= 1 << uint(b)
		}
		im.appendLine(vec)
	}
}

// appendLine adds one cacheline vector, extending the dictionary.
func (im *Imprints) appendLine(vec uint64) {
	im.lines++
	last := len(im.vectors) - 1
	if last >= 0 && im.vectors[last] == vec {
		e := len(im.counts) - 1
		if im.repeats[e] {
			im.counts[e]++
			return
		}
		// The previous vector was part of a non-repeat entry; carve it out
		// into a fresh repeat entry of length 2.
		im.counts[e]--
		if im.counts[e] == 0 {
			im.counts = im.counts[:e]
			im.repeats = im.repeats[:e]
		}
		im.counts = append(im.counts, 2)
		im.repeats = append(im.repeats, true)
		return
	}
	im.vectors = append(im.vectors, vec)
	e := len(im.counts) - 1
	if e >= 0 && !im.repeats[e] {
		im.counts[e]++
		return
	}
	im.counts = append(im.counts, 1)
	im.repeats = append(im.repeats, false)
}

// N reports the number of indexed values.
func (im *Imprints) N() int { return im.n }

// Lines reports the number of cache lines covered.
func (im *Imprints) Lines() int { return im.lines }

// Bits reports the configured number of bins.
func (im *Imprints) Bits() int { return im.bits }

// ValuesPerLine reports the cacheline width in values.
func (im *Imprints) ValuesPerLine() int { return im.vpl }

// VectorCount reports the number of stored (compressed) imprint vectors.
func (im *Imprints) VectorCount() int { return len(im.vectors) }

// DictEntries reports the number of cacheline dictionary entries.
func (im *Imprints) DictEntries() int { return len(im.counts) }

// Bytes reports the index storage footprint: stored vectors at the bin
// width plus dictionary entries (count + repeat bit packed in 4 bytes), plus
// the boundary array.
func (im *Imprints) Bytes() int {
	vecBytes := len(im.vectors) * im.bits / 8
	dictBytes := len(im.counts) * 4
	boundBytes := len(im.bounds) * 8
	histBytes := len(im.binCounts) * 4
	return vecBytes + dictBytes + boundBytes + histBytes
}

// EstimateRows bounds from above (up to histogram resolution) the number of
// values in [lo, hi]: every matching value lies in a bin overlapping the
// interval, so the summed bin counts are a cardinality estimate that query
// operators use to size selection vectors before the scan.
func (im *Imprints) EstimateRows(lo, hi float64) int {
	if hi < lo || im.n == 0 || len(im.binCounts) == 0 {
		return 0
	}
	bLo, bHi := im.binOf(lo), im.binOf(hi)
	var est int
	for b := bLo; b <= bHi && b < len(im.binCounts); b++ {
		est += int(im.binCounts[b])
	}
	if est > im.n {
		est = im.n
	}
	return est
}

// queryMask returns the bin mask for interval [lo, hi].
func (im *Imprints) queryMask(lo, hi float64) uint64 {
	if hi < lo {
		return 0
	}
	bLo := im.binOf(lo)
	bHi := im.binOf(hi)
	var mask uint64
	for b := bLo; b <= bHi; b++ {
		mask |= 1 << uint(b)
	}
	return mask
}

// CandidateLines returns the indices of cache lines that may contain values
// in [lo, hi], in ascending order, by scanning the compressed dictionary.
// Repeat entries are tested once regardless of run length.
func (im *Imprints) CandidateLines(lo, hi float64) []int {
	mask := im.queryMask(lo, hi)
	if mask == 0 || im.lines == 0 {
		return nil
	}
	var out []int
	line := 0
	vec := 0
	for e := range im.counts {
		cnt := int(im.counts[e])
		if im.repeats[e] {
			if im.vectors[vec]&mask != 0 {
				for i := 0; i < cnt; i++ {
					out = append(out, line+i)
				}
			}
			vec++
			line += cnt
			continue
		}
		for i := 0; i < cnt; i++ {
			if im.vectors[vec]&mask != 0 {
				out = append(out, line)
			}
			vec++
			line++
		}
	}
	return out
}

// CandidateRanges returns the candidate rows for [lo, hi] as merged,
// cacheline-aligned half-open row ranges (the final range is clipped to the
// column length). This is the form the filter step hands to refinement.
func (im *Imprints) CandidateRanges(lo, hi float64) []colstore.Range {
	return im.CandidateRangesInto(lo, hi, nil)
}

// CandidateRangesInto is CandidateRanges appending into a caller-provided
// buffer, so the repeated-query path can draw the candidate list from a
// pool instead of re-allocating it (~tens-to-hundreds of KB per query on
// fragmented candidate sets). out's existing elements are preserved and
// assumed to end before the first candidate row.
func (im *Imprints) CandidateRangesInto(lo, hi float64, out []colstore.Range) []colstore.Range {
	mask := im.queryMask(lo, hi)
	if mask == 0 || im.lines == 0 {
		return out
	}
	emit := func(firstLine, numLines int) {
		start := firstLine * im.vpl
		end := (firstLine + numLines) * im.vpl
		if end > im.n {
			end = im.n
		}
		if len(out) > 0 && out[len(out)-1].End == start {
			out[len(out)-1].End = end
			return
		}
		out = append(out, colstore.Range{Start: start, End: end})
	}
	line := 0
	vec := 0
	for e := range im.counts {
		cnt := int(im.counts[e])
		if im.repeats[e] {
			if im.vectors[vec]&mask != 0 {
				emit(line, cnt)
			}
			vec++
			line += cnt
			continue
		}
		for i := 0; i < cnt; i++ {
			if im.vectors[vec]&mask != 0 {
				emit(line, 1)
			}
			vec++
			line++
		}
	}
	return out
}

// CandidateFraction returns the fraction of cache lines flagged for
// [lo, hi]; a quality measure used by the imprint-anatomy experiment (E9).
func (im *Imprints) CandidateFraction(lo, hi float64) float64 {
	if im.lines == 0 {
		return 0
	}
	mask := im.queryMask(lo, hi)
	if mask == 0 {
		return 0
	}
	flagged := 0
	vec := 0
	for e := range im.counts {
		cnt := int(im.counts[e])
		if im.repeats[e] {
			if im.vectors[vec]&mask != 0 {
				flagged += cnt
			}
			vec++
			continue
		}
		for i := 0; i < cnt; i++ {
			if im.vectors[vec]&mask != 0 {
				flagged++
			}
			vec++
		}
	}
	return float64(flagged) / float64(im.lines)
}

// CompressionRatio reports lines / stored vectors: how many cache lines each
// stored vector covers on average (1.0 means no compression).
func (im *Imprints) CompressionRatio() float64 {
	if len(im.vectors) == 0 {
		return 0
	}
	return float64(im.lines) / float64(len(im.vectors))
}

// OverheadPercent reports the index size as a percentage of the indexed
// column payload (assuming 8-byte elements, the width of coordinate
// columns). The paper reports 5–12% for real data (§3.2).
func (im *Imprints) OverheadPercent() float64 {
	if im.n == 0 {
		return 0
	}
	return 100 * float64(im.Bytes()) / float64(im.n*8)
}

// Stats summarises the index for reporting.
type Stats struct {
	N, Lines, Vectors, DictEntries int
	Bits, ValuesPerLine            int
	Bytes                          int
	CompressionRatio               float64
	OverheadPercent                float64
}

// Stats returns a snapshot of index statistics.
func (im *Imprints) Stats() Stats {
	return Stats{
		N: im.n, Lines: im.lines, Vectors: len(im.vectors), DictEntries: len(im.counts),
		Bits: im.bits, ValuesPerLine: im.vpl,
		Bytes:            im.Bytes(),
		CompressionRatio: im.CompressionRatio(),
		OverheadPercent:  im.OverheadPercent(),
	}
}

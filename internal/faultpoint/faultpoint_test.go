package faultpoint

import (
	"errors"
	"testing"
	"time"
)

// The untagged half of the suite: in normal builds Hit must be a free
// no-op regardless of Arm calls; in faultinject builds the armed
// behaviours fire. Both halves run under `go test -tags faultinject`.

func TestDisarmedHitIsFree(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Hit("test.point"); err != nil {
		t.Fatalf("unarmed Hit returned %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if Hit("test.point") != nil {
			t.Fatal("unarmed Hit returned an error")
		}
	})
	// Armed builds count hits in a map; only the production build must be
	// allocation-free.
	if !Enabled && allocs != 0 {
		t.Fatalf("unarmed Hit allocates %.1f/op in a production build", allocs)
	}
}

func TestArmedActions(t *testing.T) {
	if !Enabled {
		t.Skip("needs -tags faultinject")
	}
	Reset()
	t.Cleanup(Reset)

	sentinel := errors.New("injected")
	Arm("test.err", Action{Err: sentinel})
	if err := Hit("test.err"); !errors.Is(err, sentinel) {
		t.Fatalf("armed error point returned %v", err)
	}
	if got := HitCount("test.err"); got != 1 {
		t.Fatalf("HitCount = %d, want 1", got)
	}
	Disarm("test.err")
	if err := Hit("test.err"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}

	Arm("test.after", Action{Err: sentinel, After: 2})
	for i := 0; i < 2; i++ {
		if err := Hit("test.after"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := Hit("test.after"); !errors.Is(err, sentinel) {
		t.Fatalf("After-gated point never fired: %v", err)
	}

	Arm("test.panic", Action{Panic: "boom"})
	func() {
		defer func() {
			if p := recover(); p != "boom" {
				t.Fatalf("armed panic point recovered %v", p)
			}
		}()
		Hit("test.panic")
		t.Fatal("armed panic point returned")
	}()

	Arm("test.delay", Action{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Hit("test.delay"); err != nil {
		t.Fatalf("delay point returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay point returned after %v, want >= 20ms", d)
	}
}

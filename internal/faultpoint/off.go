//go:build !faultinject

package faultpoint

// Enabled reports whether the fault-injection build tag is active. Tests
// that only make sense with armed points skip when it is false.
const Enabled = false

// Hit is the production no-op: it inlines to `return nil` and the name
// argument is a dead constant, so marked loops cost nothing.
func Hit(name string) error { return nil }

// Arm is a no-op without the faultinject tag.
func Arm(name string, a Action) {}

// Disarm is a no-op without the faultinject tag.
func Disarm(name string) {}

// Reset is a no-op without the faultinject tag.
func Reset() {}

// HitCount always reports zero without the faultinject tag.
func HitCount(name string) int { return 0 }

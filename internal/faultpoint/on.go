//go:build faultinject

package faultpoint

import (
	"sync"
	"time"
)

// Enabled reports whether the fault-injection build tag is active.
const Enabled = true

// The armed registry. A plain mutex (not RWMutex) keeps the hit path
// simple; armed builds run tests, not benchmarks.
var (
	mu     sync.Mutex
	armed  map[string]*Action
	counts map[string]int
)

// Arm installs a on the named point, replacing any previous action and
// resetting its hit counter.
func Arm(name string, a Action) {
	mu.Lock()
	defer mu.Unlock()
	if armed == nil {
		armed = map[string]*Action{}
		counts = map[string]int{}
	}
	armed[name] = &a
	counts[name] = 0
}

// Disarm removes the action on the named point (hit counting continues).
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(armed, name)
}

// Reset disarms every point and clears all hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	counts = nil
}

// HitCount reports how many times the named point was hit since it was
// last armed (or since Reset).
func HitCount(name string) int {
	mu.Lock()
	defer mu.Unlock()
	return counts[name]
}

// Hit executes the point's armed action, if any. The mutex is released
// before sleeping or panicking so a delayed point never blocks Arm/Disarm
// from another goroutine (the cancellation tests disarm while a delayed
// kernel loop is mid-flight).
func Hit(name string) error {
	mu.Lock()
	if counts != nil {
		counts[name]++
	}
	a := armed[name]
	var fire bool
	if a != nil {
		if a.After > 0 {
			a.After--
		} else {
			fire = true
		}
	}
	var act Action
	if fire {
		act = *a
	}
	mu.Unlock()
	if !fire {
		return nil
	}
	if act.Delay > 0 {
		time.Sleep(act.Delay)
	}
	if act.Panic != nil {
		panic(act.Panic)
	}
	return act.Err
}

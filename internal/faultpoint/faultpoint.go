// Package faultpoint is the build-tag-gated fault-injection harness of
// the query lifecycle tests. Production code marks block boundaries with
// named points — faultpoint.Hit("engine.filter.block") — and tests built
// with `-tags faultinject` arm those points to panic, delay, or return an
// error there, proving the cancellation latency bounds, the pool-release
// unwinding and the replan-after-panic contract against real kernel
// loops instead of mocks.
//
// In normal builds (no tag) Hit compiles to an inlinable `return nil`
// with an unused constant argument: the hot loops keep their shape and
// the zero-allocation steady state is untouched. The registered point
// names live in the files that hit them; the current set is
//
//	engine.filter.block    — FilterRows, before each predicate kernel
//	engine.kernel.chunk    — chunkKernel, once per scanChunk block
//	engine.groupagg.pass   — GroupedAggregate, before each accumulate pass
//	engine.morsel.worker   — morsel drivers, at the top of each partition
//	engine.morsel.merge    — morsel drivers, before the ascending merge
//	engine.select.refine   — selectRegionRows, before grid refinement
//	grid.refine.partition  — parallel refinement, per worker partition
//	sql.run.filter         — finishPointCloud, before the filter phases
//	sql.run.output         — output, before projection/aggregation
//	server.handler         — query handler entry, before request parsing
//	server.response.write  — between status and body of every response
package faultpoint

import "time"

// Action is what an armed point does when hit. Fields combine: After
// skips the first After hits, Delay sleeps, then Panic panics, else Err
// is returned (a nil-everything Action counts hits and does nothing).
type Action struct {
	// Err is returned by Hit at error-capable points. Points in loops
	// that cannot propagate errors ignore it.
	Err error
	// Panic is panicked with when non-nil, after Delay.
	Panic any
	// Delay is slept before the panic/error — the knob the cancellation
	// latency tests use to stretch one block of work.
	Delay time.Duration
	// After skips the first After hits, so a fault can land mid-query
	// rather than on the first block.
	After int
}

package sfc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gisnav/internal/geom"
)

func TestMortonKnownValues(t *testing.T) {
	cases := []struct {
		x, y uint32
		z    uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
		{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFFFFFFFFFF},
	}
	for _, c := range cases {
		if got := MortonEncode(c.x, c.y); got != c.z {
			t.Errorf("MortonEncode(%d,%d) = %d, want %d", c.x, c.y, got, c.z)
		}
		x, y := MortonDecode(c.z)
		if x != c.x || y != c.y {
			t.Errorf("MortonDecode(%d) = (%d,%d), want (%d,%d)", c.z, x, y, c.x, c.y)
		}
	}
}

func TestQuickMortonRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := MortonDecode(MortonEncode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertOrder1(t *testing.T) {
	// The order-1 Hilbert curve visits (0,0) (0,1) (1,1) (1,0).
	want := [][2]uint32{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for d, w := range want {
		x, y := HilbertDecode(1, uint64(d))
		if x != w[0] || y != w[1] {
			t.Errorf("d=%d: got (%d,%d), want (%d,%d)", d, x, y, w[0], w[1])
		}
		if got := HilbertEncode(1, w[0], w[1]); got != uint64(d) {
			t.Errorf("encode(%d,%d) = %d, want %d", w[0], w[1], got, d)
		}
	}
}

func TestHilbertVisitsAllCellsOnce(t *testing.T) {
	const order = 4
	const n = 1 << order
	seen := make(map[[2]uint32]bool)
	var prevX, prevY uint32
	for d := uint64(0); d < n*n; d++ {
		x, y := HilbertDecode(order, d)
		if x >= n || y >= n {
			t.Fatalf("d=%d out of range: (%d,%d)", d, x, y)
		}
		key := [2]uint32{x, y}
		if seen[key] {
			t.Fatalf("cell (%d,%d) visited twice", x, y)
		}
		seen[key] = true
		// Adjacent curve positions are adjacent cells (Manhattan distance 1).
		if d > 0 {
			dx := int64(x) - int64(prevX)
			dy := int64(y) - int64(prevY)
			if dx*dx+dy*dy != 1 {
				t.Fatalf("d=%d: step (%d,%d)→(%d,%d) not unit", d, prevX, prevY, x, y)
			}
		}
		prevX, prevY = x, y
	}
	if len(seen) != n*n {
		t.Fatalf("visited %d cells, want %d", len(seen), n*n)
	}
}

func TestQuickHilbertRoundTrip(t *testing.T) {
	f := func(x, y uint32, orderSeed uint8) bool {
		order := uint(orderSeed%16) + 16 // 16..31
		mask := uint32(1)<<order - 1
		x &= mask
		y &= mask
		d := HilbertEncode(order, x, y)
		gx, gy := HilbertDecode(order, d)
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Hilbert clustering should beat Morton clustering: covering a random query
// rectangle requires fewer contiguous key runs (Moon et al.). This is the
// property block stores exploit when sorting patches (paper §2.3).
func TestHilbertClusteringBeatsMorton(t *testing.T) {
	const order = 6
	const n = 1 << order
	rng := rand.New(rand.NewSource(1))
	var mortonRuns, hilbertRuns int
	for iter := 0; iter < 300; iter++ {
		x0 := uint32(rng.Intn(n - 8))
		y0 := uint32(rng.Intn(n - 8))
		w := uint32(rng.Intn(7)) + 2
		h := uint32(rng.Intn(7)) + 2
		var mkeys, hkeys []uint64
		for x := x0; x < x0+w; x++ {
			for y := y0; y < y0+h; y++ {
				mkeys = append(mkeys, MortonEncode(x, y))
				hkeys = append(hkeys, HilbertEncode(order, x, y))
			}
		}
		mortonRuns += countRuns(mkeys)
		hilbertRuns += countRuns(hkeys)
	}
	if hilbertRuns >= mortonRuns {
		t.Fatalf("hilbert runs (%d) should be fewer than morton runs (%d)", hilbertRuns, mortonRuns)
	}
}

// countRuns counts maximal runs of consecutive integers in keys.
func countRuns(keys []uint64) int {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	runs := 0
	for i, k := range keys {
		if i == 0 || k != keys[i-1]+1 {
			runs++
		}
	}
	return runs
}

func TestGridCellQuantisation(t *testing.T) {
	g := NewGrid(geom.NewEnvelope(0, 0, 100, 100), 4) // 16x16 cells
	cx, cy := g.Cell(0, 0)
	if cx != 0 || cy != 0 {
		t.Fatalf("origin cell = (%d,%d)", cx, cy)
	}
	cx, cy = g.Cell(100, 100) // max corner clamps into the last cell
	if cx != 15 || cy != 15 {
		t.Fatalf("max cell = (%d,%d)", cx, cy)
	}
	cx, cy = g.Cell(50, 25)
	if cx != 8 || cy != 4 {
		t.Fatalf("mid cell = (%d,%d)", cx, cy)
	}
	// Out-of-extent coordinates clamp.
	cx, cy = g.Cell(-50, 500)
	if cx != 0 || cy != 15 {
		t.Fatalf("clamped cell = (%d,%d)", cx, cy)
	}
}

func TestGridOrderClamping(t *testing.T) {
	g := NewGrid(geom.NewEnvelope(0, 0, 1, 1), 0)
	if g.Order != 1 {
		t.Fatalf("order clamped to %d, want 1", g.Order)
	}
	g = NewGrid(geom.NewEnvelope(0, 0, 1, 1), 40)
	if g.Order != 32 {
		t.Fatalf("order clamped to %d, want 32", g.Order)
	}
}

func TestGridKeyCurves(t *testing.T) {
	g := NewGrid(geom.NewEnvelope(0, 0, 8, 8), 3)
	if k := g.Key(Morton, 0, 0); k != 0 {
		t.Fatalf("morton origin = %d", k)
	}
	if k := g.Key(Hilbert, 0, 0); k != 0 {
		t.Fatalf("hilbert origin = %d", k)
	}
	// Keys differ somewhere on the grid.
	diff := false
	for x := 0.5; x < 8; x++ {
		for y := 0.5; y < 8; y++ {
			if g.Key(Morton, x, y) != g.Key(Hilbert, x, y) {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("morton and hilbert keys should differ on a 8x8 grid")
	}
}

func TestCurveString(t *testing.T) {
	if Morton.String() != "morton" || Hilbert.String() != "hilbert" {
		t.Fatal("Curve.String wrong")
	}
}

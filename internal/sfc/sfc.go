// Package sfc implements the 2-D space-filling curves used as spatial
// location codes by file-based point-cloud tools and block-based stores
// (paper §2.3): the Morton (Z-order) curve and the Hilbert curve. Both map a
// pair of 32-bit cell coordinates to a 64-bit key whose ordering clusters
// spatially nearby cells.
//
// The package also provides a Grid quantiser that maps floating-point
// coordinates in an envelope onto curve cells, the form in which the curves
// are consumed by lassort-style re-ordering and Hilbert-blocked patch stores.
package sfc

import "gisnav/internal/geom"

// MortonEncode interleaves the bits of x and y (x in the even positions) to
// produce the Z-order key of cell (x, y).
func MortonEncode(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// MortonDecode is the inverse of MortonEncode.
func MortonDecode(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// spread distributes the 32 bits of v into the even bit positions of a
// 64-bit word using the classic parallel-prefix bit tricks.
func spread(v uint32) uint64 {
	w := uint64(v)
	w = (w | w<<16) & 0x0000FFFF0000FFFF
	w = (w | w<<8) & 0x00FF00FF00FF00FF
	w = (w | w<<4) & 0x0F0F0F0F0F0F0F0F
	w = (w | w<<2) & 0x3333333333333333
	w = (w | w<<1) & 0x5555555555555555
	return w
}

// compact gathers the even bits of w into a 32-bit word; inverse of spread.
func compact(w uint64) uint32 {
	w &= 0x5555555555555555
	w = (w | w>>1) & 0x3333333333333333
	w = (w | w>>2) & 0x0F0F0F0F0F0F0F0F
	w = (w | w>>4) & 0x00FF00FF00FF00FF
	w = (w | w>>8) & 0x0000FFFF0000FFFF
	w = (w | w>>16) & 0x00000000FFFFFFFF
	return uint32(w)
}

// HilbertEncode maps cell (x, y) on a 2^order × 2^order grid to its distance
// along the Hilbert curve. order must be in [1, 32]; x and y must be below
// 2^order. The implementation is the classic xy2d rotation walk (Sagan;
// paper reference [15]).
func HilbertEncode(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = hilbertRotate(s, x, y, rx, ry)
	}
	return d
}

// HilbertDecode is the inverse of HilbertEncode (d2xy).
func HilbertDecode(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = hilbertRotate(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// hilbertRotate rotates/flips a quadrant appropriately.
func hilbertRotate(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// Curve selects one of the supported space-filling curves.
type Curve uint8

// Supported curves.
const (
	Morton Curve = iota
	Hilbert
)

// String names the curve.
func (c Curve) String() string {
	if c == Hilbert {
		return "hilbert"
	}
	return "morton"
}

// Grid quantises floating-point coordinates within an envelope onto a
// 2^Order × 2^Order cell raster so they can be fed to a curve.
type Grid struct {
	Extent geom.Envelope
	Order  uint // bits per dimension, 1..32
}

// NewGrid builds a quantiser over extent with 2^order cells per side.
func NewGrid(extent geom.Envelope, order uint) Grid {
	if order < 1 {
		order = 1
	}
	if order > 32 {
		order = 32
	}
	return Grid{Extent: extent, Order: order}
}

// Cell returns the raster cell of (x, y), clamped to the extent.
func (g Grid) Cell(x, y float64) (cx, cy uint32) {
	n := float64(uint64(1) << g.Order)
	fx := (x - g.Extent.MinX) / g.Extent.Width() * n
	fy := (y - g.Extent.MinY) / g.Extent.Height() * n
	cx = clampCell(fx, g.Order)
	cy = clampCell(fy, g.Order)
	return cx, cy
}

func clampCell(f float64, order uint) uint32 {
	max := uint32(1)<<order - 1
	if f < 0 {
		return 0
	}
	if v := uint64(f); v <= uint64(max) {
		return uint32(v)
	}
	return max
}

// CellBox returns the closed envelope of raster cell (cx, cy) — the
// spatial inverse of Cell. Interior edges are derived from the same extent
// arithmetic Cell quantises with, so a coordinate maps into a cell whose
// closed box contains it (up to float rounding at shared interior edges,
// the same tolerance the grid refiner's cell classification accepts);
// cells on the extent boundary snap their outer edge to the extent
// exactly, so coordinates that Cell clamps — points on the extent maximum
// — stay inside the last cell's box.
func (g Grid) CellBox(cx, cy uint32) geom.Envelope {
	n := float64(uint64(1) << g.Order)
	last := uint32(1)<<g.Order - 1
	w := g.Extent.Width() / n
	h := g.Extent.Height() / n
	box := geom.Envelope{
		MinX: g.Extent.MinX + float64(cx)*w,
		MinY: g.Extent.MinY + float64(cy)*h,
		MaxX: g.Extent.MinX + float64(cx+1)*w,
		MaxY: g.Extent.MinY + float64(cy+1)*h,
	}
	if cx == 0 {
		box.MinX = g.Extent.MinX
	}
	if cy == 0 {
		box.MinY = g.Extent.MinY
	}
	if cx >= last {
		box.MaxX = g.Extent.MaxX
	}
	if cy >= last {
		box.MaxY = g.Extent.MaxY
	}
	return box
}

// Key returns the curve key of coordinate (x, y) under curve c.
func (g Grid) Key(c Curve, x, y float64) uint64 {
	cx, cy := g.Cell(x, y)
	if c == Hilbert {
		return HilbertEncode(g.Order, cx, cy)
	}
	return MortonEncode(cx, cy)
}

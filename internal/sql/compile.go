// Expression compiler for generic point-cloud WHERE conjuncts. Conjuncts
// the planner cannot hand to the engine's predicate kernels — arithmetic
// comparisons like `z - 2*intensity > 10` or `x + y BETWEEN 100 AND 900` —
// used to fall back to the row-at-a-time expression interpreter (evalExpr:
// one Value box, one tree walk and one interface dispatch per operator per
// row). This file compiles those shapes into chunked vector kernels: each
// numeric subexpression evaluates operator-at-a-time into a float64 block
// buffer, then a monomorphic compare loop writes the surviving rows — the
// same execution style the engine's ColumnPred kernels use (§2.1.1).
//
// Semantics contract: a compiled conjunct must be indistinguishable from
// the interpreter, including its quirks —
//   - comparisons go through the same three-way compare (compareValues),
//     under which NaN is *equal* to everything (neither < nor > holds);
//   - BETWEEN uses plain float comparisons (NaN fails);
//   - truthiness of a bare numeric conjunct is v != 0 (NaN is truthy);
//   - `/` and `%` by zero abort the query with the interpreter's error. To
//     preserve the interpreter's AND/OR short-circuiting, which can skip an
//     erroring operand entirely, subexpressions that can fail are only
//     compiled where the interpreter would evaluate them unconditionally
//     (comparison operands, BETWEEN operands, NOT) — fallible operands
//     under a compiled AND/OR send the whole conjunct back to the
//     interpreter.
//
// The interpreter remains the fallback for truly dynamic shapes: string or
// geometry operands, function calls other than abs(), vector-table columns.
//
// Constant-slot contract (the SQL-layer mirror of the engine kernels'
// KernelArgs): a compiled filter does not bake ParamRef constants into its
// closures — it reads them from the plan's paramStore, so a shape-cache
// rebind updates the store in place and the compiled kernel serves the new
// literal vector without recompiling. Literal AST nodes (NumberLit) read
// through the store's literal slots too — rebinds never rewrite those, but
// the kernel closures stay uniformly constant-free (the constslot invariant).
// One deliberate exception: a ParamRef is never "provably non-zero", so a
// parameterised division/modulo denominator always takes the runtime-checked
// arm — a rebind could make it zero.
package sql

import (
	"fmt"
	"math"

	"gisnav/internal/cancel"
	"gisnav/internal/colstore"
)

// paramStore is the mutable constant-slot array a plan's compiled filters
// read their ParamRef constants from. Rebinds overwrite nums in place under
// the statement lock; the slice header never changes, so the compiled
// closures (which capture the store pointer) always see the current vector.
// Non-numeric parameters mirror as NaN — a compiled filter never reads them
// (compileNum rejects non-numeric ParamRefs at compile time).
//
// lits holds literal (NumberLit) constants appended at compile time: a
// rebind never touches them, but the compiled kernels still read every
// constant through the store, so no closure embeds a value the plan cache
// cannot see (the constslot invariant).
type paramStore struct {
	nums []float64
	lits []float64
}

// lit appends a literal constant and returns its slot index.
func (s *paramStore) lit(v float64) int {
	s.lits = append(s.lits, v)
	return len(s.lits) - 1
}

// newParamStore mirrors params into a fresh slot array.
func newParamStore(params []Value) *paramStore {
	s := &paramStore{nums: make([]float64, len(params))}
	s.refresh(params)
	return s
}

// refresh re-mirrors params into the existing slots (rebind path).
func (s *paramStore) refresh(params []Value) {
	for i, v := range params {
		if v.Kind == KindNum {
			s.nums[i] = v.Num
		} else {
			s.nums[i] = math.NaN()
		}
	}
}

// exprChunk is the block size of the vectorized expression loops — the same
// cache-resident block the engine's scan kernels use.
const exprChunk = 1024

// numEval evaluates a compiled numeric expression for up to exprChunk rows,
// writing the per-row values into dst[:len(rows)].
type numEval func(rows []int, dst []float64) error

// chunkPred evaluates a compiled boolean conjunct for up to exprChunk rows,
// writing per-row verdicts into keep[:len(rows)].
type chunkPred func(rows []int, keep []bool) error

// compiledFilter is one compiled WHERE conjunct ready to narrow a selection
// vector in place.
type compiledFilter struct {
	pred chunkPred
	keep []bool
}

// apply narrows rows to the conjunct's survivors, compacting in place (the
// write index never overtakes the read index). On error the selection's
// backing array is untouched beyond already-surviving prefixes; callers
// recycle their original slice. tok is polled once per chunk; a fired
// token aborts with cancel.ErrCancelled (nil tok never fires).
func (f *compiledFilter) apply(tok *cancel.Token, rows []int) ([]int, error) {
	out := rows[:0]
	for base := 0; base < len(rows); base += exprChunk {
		if tok.Cancelled() {
			return nil, cancel.ErrCancelled
		}
		end := min(base+exprChunk, len(rows))
		chunk := rows[base:end]
		keep := f.keep[:len(chunk)]
		if err := f.pred(chunk, keep); err != nil {
			return nil, err
		}
		for i, row := range chunk {
			if keep[i] {
				out = append(out, row)
			}
		}
	}
	return out, nil
}

// compilePCFilter compiles conjunct e into a vector kernel over the bound
// point cloud, reporting ok=false for shapes the interpreter must keep.
func compilePCFilter(b *binding, slots *paramStore, e Expr) (*compiledFilter, bool) {
	if slots == nil {
		// Plans without parameters still need a store for literal slots.
		slots = &paramStore{}
	}
	pred, _, ok := compileChunkPred(b, slots, e)
	if !ok {
		return nil, false
	}
	return &compiledFilter{pred: pred, keep: make([]bool, exprChunk)}, true
}

// compileChunkPred compiles a boolean expression; mayErr reports whether
// evaluation can fail (division or modulo whose denominator is not a
// provably non-zero constant), which gates compilation under AND/OR.
func compileChunkPred(b *binding, slots *paramStore, e Expr) (pred chunkPred, mayErr bool, ok bool) {
	switch t := e.(type) {
	case BinaryExpr:
		switch t.Op {
		case "=", "<>", "<", "<=", ">", ">=":
			l, lerr, lok := compileNum(b, slots, t.L)
			r, rerr, rok := compileNum(b, slots, t.R)
			if !lok || !rok {
				return nil, false, false
			}
			return cmpChunkPred(l, r, t.Op), lerr || rerr, true
		case "AND", "OR":
			l, lerr, lok := compileChunkPred(b, slots, t.L)
			r, rerr, rok := compileChunkPred(b, slots, t.R)
			// Short-circuiting may skip a fallible operand row-by-row; the
			// vector kernel cannot, so such conjuncts stay interpreted.
			if !lok || !rok || lerr || rerr {
				return nil, false, false
			}
			isAnd := t.Op == "AND"
			rkeep := make([]bool, exprChunk)
			return func(rows []int, keep []bool) error {
				if err := l(rows, keep); err != nil {
					return err
				}
				rk := rkeep[:len(rows)]
				if err := r(rows, rk); err != nil {
					return err
				}
				if isAnd {
					for i := range keep {
						keep[i] = keep[i] && rk[i]
					}
				} else {
					for i := range keep {
						keep[i] = keep[i] || rk[i]
					}
				}
				return nil
			}, false, true
		default:
			// Arithmetic result used as a bare boolean conjunct.
			return truthyChunkPred(b, slots, e)
		}
	case BetweenExpr:
		s, serr, sok := compileNum(b, slots, t.Subject)
		lo, loerr, look := compileNum(b, slots, t.Lo)
		hi, hierr, hiok := compileNum(b, slots, t.Hi)
		if !sok || !look || !hiok {
			return nil, false, false
		}
		sbuf := make([]float64, exprChunk)
		lobuf := make([]float64, exprChunk)
		hibuf := make([]float64, exprChunk)
		return func(rows []int, keep []bool) error {
			n := len(rows)
			sv, lov, hiv := sbuf[:n], lobuf[:n], hibuf[:n]
			if err := s(rows, sv); err != nil {
				return err
			}
			if err := lo(rows, lov); err != nil {
				return err
			}
			if err := hi(rows, hiv); err != nil {
				return err
			}
			for i := range keep[:n] {
				// Interpreter BETWEEN: plain float comparisons (NaN fails).
				keep[i] = sv[i] >= lov[i] && sv[i] <= hiv[i]
			}
			return nil
		}, serr || loerr || hierr, true
	case NotExpr:
		inner, ierr, iok := compileChunkPred(b, slots, t.E)
		if !iok {
			return nil, false, false
		}
		return func(rows []int, keep []bool) error {
			if err := inner(rows, keep); err != nil {
				return err
			}
			for i := range keep[:len(rows)] {
				keep[i] = !keep[i]
			}
			return nil
		}, ierr, true
	case BoolLit:
		v := t.Value
		return func(rows []int, keep []bool) error {
			for i := range keep[:len(rows)] {
				keep[i] = v
			}
			return nil
		}, false, true
	default:
		return truthyChunkPred(b, slots, e)
	}
}

// truthyChunkPred compiles a numeric expression used as a predicate: the
// interpreter keeps rows where the value is non-zero (NaN included).
func truthyChunkPred(b *binding, slots *paramStore, e Expr) (chunkPred, bool, bool) {
	v, verr, ok := compileNum(b, slots, e)
	if !ok {
		return nil, false, false
	}
	buf := make([]float64, exprChunk)
	return func(rows []int, keep []bool) error {
		vals := buf[:len(rows)]
		if err := v(rows, vals); err != nil {
			return err
		}
		for i := range keep[:len(rows)] {
			keep[i] = vals[i] != 0
		}
		return nil
	}, verr, true
}

// cmpChunkPred builds the comparison kernel. It mirrors compareValues'
// three-way compare exactly: the relation is decided by (<, >) probes, so
// any NaN operand yields "equal" — `z = 0/0-style NaN` matches — and the
// operator then tests the relation sign.
func cmpChunkPred(l, r numEval, op string) chunkPred {
	var allowNeg, allowZero, allowPos bool
	switch op {
	case "=":
		allowZero = true
	case "<>":
		allowNeg, allowPos = true, true
	case "<":
		allowNeg = true
	case "<=":
		allowNeg, allowZero = true, true
	case ">":
		allowPos = true
	case ">=":
		allowPos, allowZero = true, true
	}
	lbuf := make([]float64, exprChunk)
	rbuf := make([]float64, exprChunk)
	return func(rows []int, keep []bool) error {
		n := len(rows)
		lv, rv := lbuf[:n], rbuf[:n]
		if err := l(rows, lv); err != nil {
			return err
		}
		if err := r(rows, rv); err != nil {
			return err
		}
		for i := range keep[:n] {
			switch {
			case lv[i] < rv[i]:
				keep[i] = allowNeg
			case lv[i] > rv[i]:
				keep[i] = allowPos
			default:
				keep[i] = allowZero
			}
		}
		return nil
	}
}

// compileNum compiles a numeric expression; mayErr reports whether
// evaluation can fail at runtime (see compileChunkPred).
func compileNum(b *binding, slots *paramStore, e Expr) (ev numEval, mayErr bool, ok bool) {
	switch t := e.(type) {
	case NumberLit:
		// Literal-slot read: the constant lives in the plan's store like a
		// ParamRef (rebinds never rewrite it, but the kernel closure stays
		// constant-free either way).
		idx := slots.lit(t.Value)
		return func(rows []int, dst []float64) error {
			c := slots.lits[idx]
			for i := range dst[:len(rows)] {
				dst[i] = c
			}
			return nil
		}, false, true
	case ParamRef:
		// Constant-slot read: the value is fetched from the plan's store per
		// chunk, so a rebound literal vector flows into the compiled kernel
		// without recompilation.
		if t.Kind != KindNum || slots == nil || t.Index < 0 || t.Index >= len(slots.nums) {
			return nil, false, false
		}
		idx := t.Index
		return func(rows []int, dst []float64) error {
			c := slots.nums[idx]
			for i := range dst[:len(rows)] {
				dst[i] = c
			}
			return nil
		}, false, true
	case ColumnRef:
		name, nok := pcColumnName(b, t)
		if !nok {
			return nil, false, false
		}
		return compileColumnGather(b.pc.Column(name)), false, true
	case FuncCall:
		// abs is the one scalar function the interpreter defines over
		// numbers; everything else stays interpreted.
		if t.Name != "abs" || len(t.Args) != 1 {
			return nil, false, false
		}
		inner, ierr, iok := compileNum(b, slots, t.Args[0])
		if !iok {
			return nil, false, false
		}
		return func(rows []int, dst []float64) error {
			if err := inner(rows, dst); err != nil {
				return err
			}
			for i := range dst[:len(rows)] {
				// Interpreter abs: negate only strictly negative values, so
				// -0.0 and NaN pass through unchanged.
				if dst[i] < 0 {
					dst[i] = -dst[i]
				}
			}
			return nil
		}, ierr, true
	case BinaryExpr:
		switch t.Op {
		case "+", "-", "*", "/", "%":
		default:
			return nil, false, false
		}
		l, lerr, lok := compileNum(b, slots, t.L)
		r, rerr, rok := compileNum(b, slots, t.R)
		if !lok || !rok {
			return nil, false, false
		}
		mayErr = lerr || rerr
		rbuf := make([]float64, exprChunk)
		combine := func(fn func(rows []int, lv, rv []float64) error) numEval {
			return func(rows []int, dst []float64) error {
				n := len(rows)
				if err := l(rows, dst[:n]); err != nil {
					return err
				}
				rv := rbuf[:n]
				if err := r(rows, rv); err != nil {
					return err
				}
				return fn(rows, dst[:n], rv)
			}
		}
		switch t.Op {
		case "+":
			return combine(func(_ []int, lv, rv []float64) error {
				for i := range lv {
					lv[i] += rv[i]
				}
				return nil
			}), mayErr, true
		case "-":
			return combine(func(_ []int, lv, rv []float64) error {
				for i := range lv {
					lv[i] -= rv[i]
				}
				return nil
			}), mayErr, true
		case "*":
			return combine(func(_ []int, lv, rv []float64) error {
				for i := range lv {
					lv[i] *= rv[i]
				}
				return nil
			}), mayErr, true
		case "/":
			if c, isConst := constNonZero(t.R); isConst {
				return combine(func(_ []int, lv, _ []float64) error {
					for i := range lv {
						lv[i] /= c
					}
					return nil
				}), mayErr, true
			}
			return combine(func(_ []int, lv, rv []float64) error {
				for i := range lv {
					if rv[i] == 0 {
						return fmt.Errorf("sql: division by zero")
					}
					lv[i] /= rv[i]
				}
				return nil
			}), true, true
		default: // "%"
			// Modulo runs in the int64 domain, so "provably non-zero" must
			// hold after truncation: a constant like 0.5 truncates to 0 and
			// takes the runtime-checked arm, which raises the interpreter's
			// modulo-by-zero error instead of a divide panic.
			if c, isConst := constNonZero(t.R); isConst && int64(c) != 0 {
				ci := int64(c)
				return combine(func(_ []int, lv, _ []float64) error {
					for i := range lv {
						lv[i] = float64(int64(lv[i]) % ci)
					}
					return nil
				}), mayErr, true
			}
			return combine(func(_ []int, lv, rv []float64) error {
				for i := range lv {
					if int64(rv[i]) == 0 {
						return fmt.Errorf("sql: modulo by zero")
					}
					lv[i] = float64(int64(lv[i]) % int64(rv[i]))
				}
				return nil
			}), true, true
		}
	default:
		return nil, false, false
	}
}

// constNonZero reports whether e is a numeric literal other than zero —
// the denominators whose division can be compiled error-free. ParamRef
// denominators deliberately do NOT qualify: a shape-cache rebind can bind
// them to zero, so they keep the runtime-checked arm.
func constNonZero(e Expr) (float64, bool) {
	n, ok := e.(NumberLit)
	if !ok || n.Value == 0 {
		return 0, false
	}
	return n.Value, true
}

// compileColumnGather builds the typed gather loop for one point-cloud
// column: dst[i] = float64(col[rows[i]]), monomorphic per column type. The
// generic Value() fallback covers dictionary string columns, which the
// interpreter also reads as their numeric code.
func compileColumnGather(col colstore.Column) numEval {
	switch c := col.(type) {
	case *colstore.F64Column:
		vals := c.Values()
		return func(rows []int, dst []float64) error {
			for i, r := range rows {
				dst[i] = vals[r]
			}
			return nil
		}
	case *colstore.I64Column:
		vals := c.Values()
		return func(rows []int, dst []float64) error {
			for i, r := range rows {
				dst[i] = float64(vals[r])
			}
			return nil
		}
	case *colstore.I32Column:
		vals := c.Values()
		return func(rows []int, dst []float64) error {
			for i, r := range rows {
				dst[i] = float64(vals[r])
			}
			return nil
		}
	case *colstore.U16Column:
		vals := c.Values()
		return func(rows []int, dst []float64) error {
			for i, r := range rows {
				dst[i] = float64(vals[r])
			}
			return nil
		}
	case *colstore.U8Column:
		vals := c.Values()
		return func(rows []int, dst []float64) error {
			for i, r := range rows {
				dst[i] = float64(vals[r])
			}
			return nil
		}
	default:
		return func(rows []int, dst []float64) error {
			for i, r := range rows {
				dst[i] = col.Value(r)
			}
			return nil
		}
	}
}

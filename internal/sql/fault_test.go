//go:build faultinject

package sql

import (
	"context"
	"errors"
	"testing"
	"time"

	"gisnav/internal/faultpoint"
)

// Armed-build tests for the query lifecycle: injected errors and panics at
// real kernel boundaries must surface as typed errors with the pool
// accounting at pre-query values, and a panicked statement must replan
// from the AST on its next run.

// faultQueries routes a query shape through each error-capable fault
// point. The filter query needs a thematic predicate (engine.filter.block
// fires per predicate kernel); the grouped query drives the
// grouped-aggregate passes; the plain aggregate covers the sql-layer
// points on every shape.
var faultQueries = map[string]string{
	"engine.filter.block":  "SELECT count(*) FROM ahn2 WHERE classification = 2 AND z > 5",
	"engine.groupagg.pass": "SELECT classification, count(*), avg(z) FROM ahn2 GROUP BY classification",
	"sql.run.filter":       lcQuery,
	"sql.run.output":       lcQuery,
}

var errInjected = errors.New("injected fault")

func TestFaultInjectedErrors(t *testing.T) {
	e, _, _, _ := testDB(t)
	for point, q := range faultQueries {
		t.Run(point, func(t *testing.T) {
			t.Cleanup(faultpoint.Reset)
			mustQuery(t, e, q) // warm: plan cached, pools primed
			faultpoint.Arm(point, faultpoint.Action{Err: errInjected})
			delta := outstandingDelta(t, func() {
				_, err := e.Query(q)
				if !errors.Is(err, errInjected) {
					t.Fatalf("err = %v, want the injected fault", err)
				}
			})
			if delta != 0 {
				t.Fatalf("injected error at %s drifted pool by %d", point, delta)
			}
			if faultpoint.HitCount(point) == 0 {
				t.Fatalf("point %s never hit — the query does not route through it", point)
			}
			faultpoint.Disarm(point)
			mustQuery(t, e, q) // the executor recovers without replumbing
		})
	}
}

// panicPoints adds the loop-embedded points that cannot return errors but
// can still panic: the typed-kernel chunk loop (hit by thematic predicate
// kernels under FilterRows) and the spatial refinement entry.
var panicPoints = map[string]string{
	"engine.filter.block":  faultQueries["engine.filter.block"],
	"engine.groupagg.pass": faultQueries["engine.groupagg.pass"],
	"engine.kernel.chunk":  faultQueries["engine.filter.block"],
	"engine.select.refine": lcQuery,
	"sql.run.filter":       lcQuery,
	"sql.run.output":       lcQuery,
}

func TestFaultPanicIsolation(t *testing.T) {
	e, _, _, _ := testDB(t)
	for point, q := range panicPoints {
		t.Run(point, func(t *testing.T) {
			t.Cleanup(faultpoint.Reset)
			want := mustQuery(t, e, q).Rows // pre-panic truth
			before := e.ExecStats().Panicked

			faultpoint.Arm(point, faultpoint.Action{Panic: "kernel fault at " + point})
			delta := outstandingDelta(t, func() {
				res, err := e.Query(q)
				if res != nil {
					t.Fatal("panicked query returned a result")
				}
				var qe *QueryError
				if !errors.As(err, &qe) {
					t.Fatalf("err = %v (%T), want *QueryError", err, err)
				}
				if qe.Panic != "kernel fault at "+point {
					t.Fatalf("recovered %v, want the armed panic value", qe.Panic)
				}
				if len(qe.Stack) == 0 {
					t.Fatal("no stack captured at recovery")
				}
			})
			if delta != 0 {
				t.Fatalf("mid-kernel panic at %s drifted pool by %d", point, delta)
			}
			if got := e.ExecStats().Panicked; got != before+1 {
				t.Fatalf("Panicked = %d, want %d", got, before+1)
			}

			// The process survived; disarmed, the poisoned statement
			// replans and the result matches the pre-panic run exactly.
			faultpoint.Disarm(point)
			res, err := e.Query(q)
			if err != nil {
				t.Fatalf("post-panic run: %v", err)
			}
			if len(res.Rows) != len(want) {
				t.Fatalf("post-panic run: %d rows, want %d", len(res.Rows), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if res.Rows[i][j].Num != want[i][j].Num {
						t.Fatalf("post-panic row %d col %d = %v, want %v", i, j, res.Rows[i][j].Num, want[i][j].Num)
					}
				}
			}
			var origin string
			for _, s := range res.Explain.Steps {
				if s.Op == "plan" {
					origin = s.Detail
				}
			}
			if origin != originPoisoned {
				t.Fatalf("post-panic plan origin = %q, want %q", origin, originPoisoned)
			}
		})
	}
}

// TestFaultPostPanicEqualsFreshPrepare pins the replan-after-panic
// contract at the PreparedQuery level: after a recovered panic, the next
// Run must behave exactly like a freshly prepared statement.
func TestFaultPostPanicEqualsFreshPrepare(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	e, _, _, _ := testDB(t)
	pq, err := e.Prepare(lcQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Run(); err != nil {
		t.Fatal(err)
	}

	faultpoint.Arm("sql.run.filter", faultpoint.Action{Panic: errInjected})
	_, perr := pq.Run()
	var qe *QueryError
	if !errors.As(perr, &qe) {
		t.Fatalf("err = %v, want *QueryError", perr)
	}
	// A panic value that is itself an error unwraps through QueryError.
	if !errors.Is(perr, errInjected) {
		t.Fatal("QueryError does not unwrap the panicked error value")
	}
	faultpoint.Disarm("sql.run.filter")

	poisonedRes, err := pq.RunTraced()
	if err != nil {
		t.Fatalf("post-panic run: %v", err)
	}
	fresh, err := e.Prepare(lcQuery)
	if err != nil {
		t.Fatal(err)
	}
	freshRes, err := fresh.RunTraced()
	if err != nil {
		t.Fatal(err)
	}
	if poisonedRes.Rows[0][0].Num != freshRes.Rows[0][0].Num {
		t.Fatalf("post-panic run = %v, fresh prepare = %v", poisonedRes.Rows[0][0].Num, freshRes.Rows[0][0].Num)
	}
	// Poison is consumed by the successful replan: the run after it is a
	// plain cached run again.
	again, err := pq.RunTraced()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range again.Explain.Steps {
		if s.Op == "plan" && s.Detail == originPoisoned {
			t.Fatal("poison flag survived a successful replan")
		}
	}
}

// TestFaultCancellationLatency bounds how long a cancelled query keeps
// running: with every compiled-kernel chunk stretched to 20ms, a ~40-chunk
// scan would take ~800ms uncancelled, but a 10ms deadline must stop it at
// the next chunk boundary — well under the full-scan time.
func TestFaultCancellationLatency(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	e, _, _, _ := testDB(t)
	q := panicPoints["engine.kernel.chunk"]
	mustQuery(t, e, q)

	const perChunk = 20 * time.Millisecond
	faultpoint.Arm("engine.kernel.chunk", faultpoint.Action{Delay: perChunk})
	// Clear the latency estimate so the gate admits the short deadline
	// instead of pre-shedding it (this test measures in-flight latency).
	e.gate.ewmaNs.Store(0)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancelCtx()
	start := time.Now()
	_, err := e.QueryContext(ctx, q)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// One block past the deadline plus generous scheduling slack, still an
	// order of magnitude under the uncancelled scan.
	if elapsed > 200*time.Millisecond {
		t.Fatalf("cancelled scan ran %v; cancellation is not stopping within a block", elapsed)
	}
	hits := faultpoint.HitCount("engine.kernel.chunk")
	if hits == 0 {
		t.Fatal("kernel chunk point never hit")
	}
	if hits > 4 {
		t.Fatalf("cancelled scan still processed %d chunks, want <= 4", hits)
	}
}

//go:build faultinject

package sql

import (
	"errors"
	"testing"

	"gisnav/internal/engine"
	"gisnav/internal/faultpoint"
	"gisnav/internal/geom"
	"gisnav/internal/synth"
)

// Armed-build tests for the morsel fan-out behind the SQL layer: with a
// table past the parallel crossover and an executor degree cap set, a
// worker panic must surface as a *QueryError with the statement poisoned
// (next run replans), and a merge error as a plain error — both with the
// pool accounting at pre-query values. The small testDB cloud stays under
// the crossover, so these tests build their own.

// morselTestDB registers a cloud big enough that a degree-4 cap actually
// fans out (~280k points; the crossover is 2×65536 rows).
func morselTestDB(t *testing.T) *Executor {
	t.Helper()
	region := geom.NewEnvelope(0, 0, 2000, 2000)
	terrain := synth.NewTerrain(81, region)
	pts := synth.GenerateTile(terrain, synth.TileSpec{Env: region, Density: 0.07, Seed: 11})
	pc := engine.NewPointCloud()
	pc.AppendLAS(pts)
	db := engine.NewDB()
	db.RegisterPointCloud("big", pc)
	e := New(db)
	e.SetParallelism(4)
	return e
}

// morselDrift runs fn and returns the summed drift of every pool the
// parallel paths draw from (selection vectors, candidate ranges, f64
// scratch — the grouped merge uses all three).
func morselDrift(t *testing.T, fn func()) int64 {
	t.Helper()
	before := engine.SelectionPoolStats().Outstanding +
		engine.RangePoolStats().Outstanding +
		engine.F64PoolStats().Outstanding
	fn()
	return engine.SelectionPoolStats().Outstanding +
		engine.RangePoolStats().Outstanding +
		engine.F64PoolStats().Outstanding - before
}

// morselQueries routes each parallel driver through a real statement: the
// filter fan-out behind a thematic predicate, the min/max fused-aggregate
// fan-out, and the grouped fan-out (count/min/max specs only — a sum in
// the list keeps grouping serial by design).
var morselQueries = map[string]string{
	"filter":  "SELECT count(*) FROM big WHERE z > 5",
	"agg":     "SELECT max(z) FROM big",
	"grouped": "SELECT classification, count(*), min(z) FROM big GROUP BY classification",
}

func TestFaultMorselWorkerPanicPoisonsStatement(t *testing.T) {
	e := morselTestDB(t)
	for name, q := range morselQueries {
		t.Run(name, func(t *testing.T) {
			t.Cleanup(faultpoint.Reset)
			want := mustQuery(t, e, q).Rows // pre-panic truth
			before := e.ExecStats().Panicked

			// After: 1 lets one partition through so siblings hold partial
			// buffers when the panic fires.
			faultpoint.Arm("engine.morsel.worker", faultpoint.Action{Panic: "morsel fault", After: 1})
			delta := morselDrift(t, func() {
				res, err := e.Query(q)
				if res != nil {
					t.Fatal("panicked query returned a result")
				}
				var qe *QueryError
				if !errors.As(err, &qe) {
					t.Fatalf("err = %v (%T), want *QueryError", err, err)
				}
				if qe.Panic != "morsel fault" {
					t.Fatalf("recovered %v, want the armed panic value", qe.Panic)
				}
			})
			if delta != 0 {
				t.Fatalf("morsel worker panic drifted pools by %d", delta)
			}
			if faultpoint.HitCount("engine.morsel.worker") == 0 {
				t.Fatalf("query %q never fanned out — worker point not hit", q)
			}
			if got := e.ExecStats().Panicked; got != before+1 {
				t.Fatalf("Panicked = %d, want %d", got, before+1)
			}

			// Poisoned statement: the next run replans and matches the
			// pre-panic truth exactly.
			faultpoint.Disarm("engine.morsel.worker")
			res, err := e.Query(q)
			if err != nil {
				t.Fatalf("post-panic run: %v", err)
			}
			if len(res.Rows) != len(want) {
				t.Fatalf("post-panic run: %d rows, want %d", len(res.Rows), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if res.Rows[i][j].String() != want[i][j].String() {
						t.Fatalf("post-panic row %d col %d = %s, want %s",
							i, j, res.Rows[i][j].String(), want[i][j].String())
					}
				}
			}
			var origin string
			for _, s := range res.Explain.Steps {
				if s.Op == "plan" {
					origin = s.Detail
				}
			}
			if origin != originPoisoned {
				t.Fatalf("post-panic plan origin = %q, want %q", origin, originPoisoned)
			}
		})
	}
}

func TestFaultMorselMergeErrorSurfaces(t *testing.T) {
	e := morselTestDB(t)
	for name, q := range morselQueries {
		t.Run(name, func(t *testing.T) {
			t.Cleanup(faultpoint.Reset)
			mustQuery(t, e, q) // warm: plan cached, pools primed
			faultpoint.Arm("engine.morsel.merge", faultpoint.Action{Err: errInjected})
			delta := morselDrift(t, func() {
				_, err := e.Query(q)
				if !errors.Is(err, errInjected) {
					t.Fatalf("err = %v, want the injected merge fault", err)
				}
			})
			if delta != 0 {
				t.Fatalf("morsel merge error drifted pools by %d", delta)
			}
			if faultpoint.HitCount("engine.morsel.merge") == 0 {
				t.Fatalf("query %q never fanned out — merge point not hit", q)
			}
			faultpoint.Disarm("engine.morsel.merge")
			mustQuery(t, e, q) // the executor recovers without replumbing
		})
	}
}

// TestFaultMorselSerialUnderCap pins the degree plumbing itself: with the
// executor capped at 1 the same statements must never reach the morsel
// points, so a panic armed there cannot fire.
func TestFaultMorselSerialUnderCap(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	e := morselTestDB(t)
	e.SetParallelism(1)
	faultpoint.Arm("engine.morsel.worker", faultpoint.Action{Panic: "should not fan out"})
	faultpoint.Arm("engine.morsel.merge", faultpoint.Action{Err: errInjected})
	for _, q := range morselQueries {
		mustQuery(t, e, q)
	}
	if n := faultpoint.HitCount("engine.morsel.worker"); n != 0 {
		t.Fatalf("serial cap still hit the worker point %d times", n)
	}
}

// Query execution: the execute half of the prepare/execute split. Run
// walks the queryPlan's phases — spatial selection, kernel predicates,
// compiled/interpreted generic filters, output — against the tables'
// current state. Planning work (binding, classification, compilation)
// never happens here except through the epoch-replan path, and every
// engine-owned selection vector returns to its pool on every exit path.
package sql

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"gisnav/internal/cancel"
	"gisnav/internal/engine"
	"gisnav/internal/faultpoint"
)

// Plan origins surfaced in the EXPLAIN trace's leading "plan" step, so the
// skeleton fast path is observable per query: a shape-cache hit reports
// rebound (new literals bound into the existing skeleton) or cached
// (identical literals, nothing to do), a cache miss reports planned, and an
// epoch- or classification-forced replan says so.
const (
	originPrepared  = "prepared"                    // standalone PreparedQuery run
	originPlanned   = "planned (cold prepare)"      // statement-cache miss
	originCached    = "cached (same literals)"      // shape hit, identical vector
	originRebound   = "rebound (shape-cache hit)"   // shape hit, new vector bound
	originReplanned = "replanned (epoch moved)"     // table epoch invalidated the plan
	originDiverged  = "replanned (literal reclass)" // new literals changed classification
	originPoisoned  = "replanned (post-panic)"      // a recovered panic poisoned the plan
)

// Run executes the prepared statement against the current table state,
// without an operator trace: the steady-state path. Result.Explain is nil;
// use RunTraced when the per-operator EXPLAIN view matters. If a bound
// table's epoch moved since planning, Run replans first, so an append
// between two runs is always observed by the second.
func (pq *PreparedQuery) Run() (*Result, error) {
	return pq.lifecycleRun(context.Background(), nil, pq.init, originPrepared)
}

// RunContext is Run under a context: the run passes the executor's
// admission gate, kernel loops poll ctx's done channel at block
// boundaries, and a fired context surfaces as ctx.Err() with every
// pooled buffer already recycled (see lifecycle.go).
func (pq *PreparedQuery) RunContext(ctx context.Context) (*Result, error) {
	return pq.lifecycleRun(ctx, nil, pq.init, originPrepared)
}

// RunTraced is Run with the per-operator EXPLAIN trace Executor.Query
// exposes. Tracing formats operator details per step and therefore
// allocates; keep the plain Run on latency-critical paths.
func (pq *PreparedQuery) RunTraced() (*Result, error) {
	return pq.lifecycleRun(context.Background(), &engine.Explain{}, pq.init, originPrepared)
}

// run executes the statement with the literal vector params, re-binding or
// re-planning the cached skeleton as needed. origin labels how the caller
// reached this plan; the epoch/rebind decisions below refine it before it
// lands in the trace. rs is the lifecycle record every pooled acquisition
// below must route through (see lifecycle.go); callers own its drain.
func (pq *PreparedQuery) run(rs *engine.Run, ex *engine.Explain, params []Value, origin string) (*Result, error) {
	if !pq.mu.TryLock() {
		// Another run of this statement is in flight. The plan's compiled
		// kernels carry per-statement chunk scratch, so sharing it would
		// mean serialising — instead concurrent callers pay one transient
		// planning pass (a small fraction of a navigation query) and run
		// fully parallel on their own plan, bound to their own literals.
		plan, err := pq.ex.buildPlan(pq.stmt, params)
		if err != nil {
			return nil, err
		}
		tmp := &PreparedQuery{ex: pq.ex, stmt: pq.stmt, init: params, plan: plan}
		return tmp.run(rs, ex, params, origin)
	}
	defer pq.mu.Unlock()
	// A shape hit carrying a new literal vector counts as a ShapeHit even
	// when an epoch replan below supersedes the rebind — it is still a
	// query the exact-text cache would have missed.
	newLits := !equalParams(pq.plan.params, params)
	if origin == originCached && newLits {
		pq.ex.stmts.shapeHits.Add(1)
		origin = originRebound
	}
	switch {
	case pq.poisoned.Load() || pq.plan.stale():
		// Epoch mismatch always replans — rebinding cannot help, the plan
		// is bound to moved arrays. A post-panic poison mark replans for a
		// different reason: the old plan's scratch state is torn to an
		// unknown degree. The mark clears only after the fresh plan is
		// committed, so a failed replan keeps the statement poisoned.
		stale := pq.plan.stale()
		plan, err := pq.ex.buildPlan(pq.stmt, params)
		if err != nil {
			return nil, err
		}
		pq.plan = plan
		if stale {
			pq.ex.stmts.invalidations.Add(1)
			origin = originReplanned
		} else {
			origin = originPoisoned
		}
		pq.poisoned.Store(false)
	case newLits:
		// Same shape, new literal vector: the shape-cache fast path. Bind
		// the constants into the existing skeleton; fall back to a full
		// replan only if the new values change conjunct classification.
		// rebind stages before committing, so a failure here leaves the
		// plan consistently bound to its previous vector even if the
		// replan below errors too.
		if pq.plan.rebind(pq.stmt, params) {
			pq.ex.stmts.rebinds.Add(1)
		} else {
			plan, err := pq.ex.buildPlan(pq.stmt, params)
			if err != nil {
				return nil, err
			}
			pq.plan = plan
			origin = originDiverged
		}
	}
	if ex != nil {
		ex.Add("plan", origin, 0, 0, 0)
	}
	p := pq.plan
	switch p.mode {
	case planVector:
		return pq.runVector(rs, p, ex)
	case planJoin:
		return pq.runJoin(rs, p, ex)
	default:
		return pq.runPointCloud(rs, p, ex)
	}
}

// --- point cloud execution ---------------------------------------------------

func (pq *PreparedQuery) runPointCloud(rs *engine.Run, p *queryPlan, ex *engine.Explain) (*Result, error) {
	// Viewport-histogram shapes route through the pre-aggregation pyramid
	// before any row selection happens: the pyramid answers from O(visible
	// tiles) of pre-aggregates plus exact boundary refinement, bypassing
	// the O(selected rows) scan below. A decline (ok=false, err=nil) falls
	// through to the exact arm untouched.
	if res, ok, err := pq.tryPyramid(rs, p, ex); ok || err != nil {
		return res, err
	}
	var rows []int
	if p.region != nil {
		if ex != nil {
			sel := p.b.pc.SelectRegionRun(rs, p.region)
			ex.Steps = append(ex.Steps, sel.Explain.Steps...)
			rows = sel.Rows
		} else {
			rows = p.b.pc.SelectRegionRowsRun(rs, p.region)
		}
		if rs.Cancelled() {
			// The refinement loop returns a partial selection when the
			// token fires mid-pass; the release-list drain recycles it.
			return nil, cancel.ErrCancelled
		}
	}
	return pq.finishPointCloud(rs, p, rows, ex)
}

// finishPointCloud runs the shared tail of point-cloud and join execution:
// thematic predicate kernels, generic filters (compiled at prepare time
// where possible), projection, and the pooled-vector bookkeeping. rows may
// be nil ("all rows"); when non-nil it is an rs-tracked pooled vector and
// is recycled through rs on every exit path — including errors, where the
// lifecycle drain would catch it anyway but eager recycling keeps the
// pool's working set tight.
func (pq *PreparedQuery) finishPointCloud(rs *engine.Run, p *queryPlan, rows []int, ex *engine.Explain) (*Result, error) {
	if err := faultpoint.Hit("sql.run.filter"); err != nil {
		if rows != nil {
			rs.RecycleRows(rows)
		}
		return nil, err
	}
	filtered, err := p.b.pc.FilterRowsRun(rs, rows, p.preds, ex)
	if err != nil {
		if rows != nil {
			rs.RecycleRows(rows)
		}
		return nil, err
	}
	// FilterRows copies on first write, so the incoming pooled vector can
	// go back to the pool as soon as a predicate replaced it.
	if rows != nil && len(p.preds) > 0 {
		rs.RecycleRows(rows)
	}
	rows = filtered
	// Generic filters compact rows in place (the backing array never moves
	// or grows), so on error the pre-call slice is still the one to recycle.
	narrowed, err := genericFilterPC(rs, p, rows, ex)
	if err != nil {
		rs.RecycleRows(rows)
		return nil, err
	}
	rows = narrowed
	res, err := pq.output(rs, p, rows, ex)
	rs.RecycleRows(rows)
	return res, err
}

// genericFilterPC applies the planned generic conjuncts in statement
// order. Steps with a compiled kernel run chunk-at-a-time; the rest fall
// back to the row-at-a-time interpreter. Both paths compact rows in place
// without moving its backing array, and both poll the run's cancellation
// token once per expression chunk.
func genericFilterPC(rs *engine.Run, p *queryPlan, rows []int, ex *engine.Explain) ([]int, error) {
	for i := range p.generic {
		g := &p.generic[i]
		start := time.Now()
		in := len(rows)
		if g.cf != nil {
			narrowed, err := g.cf.apply(rs.Token(), rows)
			if err != nil {
				return nil, err
			}
			rows = narrowed
			if ex != nil {
				ex.Add("filter.compiled", g.expr.exprString(), in, len(rows), time.Since(start))
			}
			continue
		}
		out := rows[:0]
		ctx := &evalCtx{b: p.b, ps: p.params, vtRow: -1}
		for n, r := range rows {
			if n%exprChunk == 0 && rs.Cancelled() {
				return nil, cancel.ErrCancelled
			}
			ctx.pcRow = r
			v, err := evalExpr(ctx, g.expr)
			if err != nil {
				return nil, err
			}
			if v.truthy() {
				out = append(out, r)
			}
		}
		rows = out
		if ex != nil {
			ex.Add("filter.generic", g.expr.exprString(), in, len(rows), time.Since(start))
		}
	}
	return rows, nil
}

// --- vector execution ---------------------------------------------------------

func (pq *PreparedQuery) runVector(rs *engine.Run, p *queryPlan, ex *engine.Explain) (*Result, error) {
	rows := allRows(rs, p.b.vt.Len())
	rows, err := runVTSteps(rs, p, rows, ex)
	if err != nil {
		rs.RecycleRows(rows)
		return nil, err
	}
	res, err := pq.output(rs, p, rows, ex)
	rs.RecycleRows(rows)
	return res, err
}

// runVTSteps narrows a pooled vector-table row set through the planned
// steps: class equality through the dictionary, ST_Intersects with a
// constant geometry through the STR R-tree, everything else through the
// row-wise interpreter. All narrowing is in place over the incoming pooled
// vector; the returned slice shares its backing array, so the caller
// recycles exactly one buffer on every path (the error return carries the
// live slice for that reason). The index-backed side vectors are tracked
// after production — Select*Into grow the buffer they are handed.
func runVTSteps(rs *engine.Run, p *queryPlan, rows []int, ex *engine.Explain) ([]int, error) {
	for i := range p.vtSteps {
		st := &p.vtSteps[i]
		switch st.kind {
		case vtStepClass:
			fast := rs.TrackRows(p.b.vt.SelectClassInto(st.class, engine.AcquireRows(0), ex))
			rows = intersectSorted(rows, fast)
			rs.RecycleRows(fast)
		case vtStepIntersects:
			fast := rs.TrackRows(p.b.vt.SelectIntersectsInto(st.g, engine.AcquireRows(0), ex))
			rows = intersectSorted(rows, fast)
			rs.RecycleRows(fast)
		default:
			start := time.Now()
			in := len(rows)
			out := rows[:0]
			ctx := &evalCtx{b: p.b, ps: p.params, pcRow: -1}
			for n, r := range rows {
				if n%exprChunk == 0 && rs.Cancelled() {
					return rows, cancel.ErrCancelled
				}
				ctx.vtRow = r
				v, err := evalExpr(ctx, st.expr)
				if err != nil {
					return rows, err
				}
				if v.truthy() {
					out = append(out, r)
				}
			}
			rows = out
			if ex != nil {
				ex.Add("filter.generic", st.expr.exprString(), in, len(rows), time.Since(start))
			}
		}
	}
	return rows, nil
}

// --- join execution -----------------------------------------------------------

func (pq *PreparedQuery) runJoin(rs *engine.Run, p *queryPlan, ex *engine.Explain) (*Result, error) {
	// Phase 1: vector side, through the same steps as pure vector queries
	// so spatial conjuncts (ST_Intersects with a constant geometry) hit the
	// R-tree here too instead of falling to the row-wise interpreter.
	vtRows := allRows(rs, p.b.vt.Len())
	vtRows, err := runVTSteps(rs, p, vtRows, ex)
	if err != nil {
		rs.RecycleRows(vtRows)
		return nil, err
	}

	// Phase 2: the spatial join operator resolved at prepare time.
	var sel engine.Selection
	if p.join == joinDWithin {
		sel = pq.ex.db.PointsNearFeaturesRun(rs, p.b.pc, p.b.vt, vtRows, p.joinDist)
	} else {
		sel = pq.ex.db.PointsInFeaturesRun(rs, p.b.pc, p.b.vt, vtRows)
	}
	rs.RecycleRows(vtRows)
	if rs.Cancelled() {
		// A token firing inside the join's refinement pass leaves a
		// partial selection; the release-list drain recycles it.
		return nil, cancel.ErrCancelled
	}
	if ex != nil {
		ex.Steps = append(ex.Steps, sel.Explain.Steps...)
	}

	// Phase 3: point-side predicates.
	return pq.finishPointCloud(rs, p, sel.Rows, ex)
}

// --- output phase ---------------------------------------------------------------

// output materialises the SELECT list over the selected rows. Result
// columns are the plan's (shared across runs); rows index the point cloud
// or the vector table according to the plan mode. The materialisation
// loops poll the run's cancellation token once per expression chunk, so a
// query cancelled during a large projection stops without building the
// whole result.
func (pq *PreparedQuery) output(rs *engine.Run, p *queryPlan, rows []int, ex *engine.Explain) (*Result, error) {
	if err := faultpoint.Hit("sql.run.output"); err != nil {
		return nil, err
	}
	isVector := p.mode == planVector
	stmt := pq.stmt
	switch p.out {
	case outGrouped:
		return execGrouped(rs, p, stmt, rows, isVector, ex)
	case outAggregate:
		return outputAggregates(rs, p, stmt, rows, isVector, ex)
	}

	// ORDER BY.
	if stmt.Order != nil {
		keys := make([]Value, len(rows))
		ctx := &evalCtx{b: p.b, ps: p.params, pcRow: -1, vtRow: -1}
		for i, r := range rows {
			if i%exprChunk == 0 && rs.Cancelled() {
				return nil, cancel.ErrCancelled
			}
			setRow(ctx, isVector, r)
			v, err := evalExpr(ctx, stmt.Order.Expr)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		desc := stmt.Order.Desc
		sort.SliceStable(idx, func(a, c int) bool {
			less := valueLess(keys[idx[a]], keys[idx[c]])
			if desc {
				return valueLess(keys[idx[c]], keys[idx[a]])
			}
			return less
		})
		sorted := make([]int, len(rows))
		for i, j := range idx {
			sorted[i] = rows[j]
		}
		rows = sorted
	}
	if p.limit >= 0 && len(rows) > p.limit {
		rows = rows[:p.limit]
	}

	start := time.Now()
	res := &Result{Columns: p.cols, Explain: ex}
	ctx := &evalCtx{b: p.b, ps: p.params, pcRow: -1, vtRow: -1}
	for n, r := range rows {
		if n%exprChunk == 0 && rs.Cancelled() {
			return nil, cancel.ErrCancelled
		}
		setRow(ctx, isVector, r)
		out := make([]Value, len(p.exprs))
		for i, ee := range p.exprs {
			v, err := evalExpr(ctx, ee)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	if ex != nil {
		ex.Add("project", strings.Join(p.cols, ","), len(rows), len(res.Rows), time.Since(start))
	}
	return res, nil
}

func setRow(ctx *evalCtx, isVector bool, r int) {
	if isVector {
		ctx.vtRow = r
		ctx.pcRow = -1
	} else {
		ctx.pcRow = r
		ctx.vtRow = -1
	}
}

func valueLess(a, b Value) bool {
	if a.Kind == KindNum && b.Kind == KindNum {
		return a.Num < b.Num
	}
	if a.Kind == KindStr && b.Kind == KindStr {
		return a.Str < b.Str
	}
	return false
}

// outputAggregates computes one result row of aggregates.
func outputAggregates(rs *engine.Run, p *queryPlan, stmt *SelectStmt, rows []int, isVector bool, ex *engine.Explain) (*Result, error) {
	start := time.Now()
	res := &Result{Columns: p.cols, Explain: ex}
	out := make([]Value, len(stmt.Items))
	for i, item := range stmt.Items {
		f, _ := isAggregate(item.Expr)
		v, err := computeAggregate(rs, p.b, p.params, f, rows, isVector)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	res.Rows = append(res.Rows, out)
	if ex != nil {
		ex.Add("aggregate", "select list", len(rows), 1, time.Since(start))
	}
	return res, nil
}

func computeAggregate(rs *engine.Run, b *binding, ps []Value, f FuncCall, rows []int, isVector bool) (Value, error) {
	if f.Name == "count" {
		if len(f.Args) == 0 {
			return Value{}, fmt.Errorf("sql: count requires an argument (use count(*))")
		}
		if _, ok := f.Args[0].(Star); ok {
			return numVal(float64(len(rows))), nil
		}
	}
	if len(f.Args) != 1 {
		return Value{}, fmt.Errorf("sql: %s expects one argument", f.Name)
	}
	if v, ok, err := kernelAggregate(rs, b, f, rows, isVector); ok {
		return v, err
	}
	ctx := &evalCtx{b: b, ps: ps, pcRow: -1, vtRow: -1}
	// Accumulation matches the engine's aggregate kernels exactly (±Inf
	// seeds, strict compares), so the same aggregate gives the same answer
	// whether it routes through kernelAggregate or this fallback: sum/avg
	// propagate NaN, min/max skip NaN values (they fail every ordered
	// comparison), and an all-NaN selection reports the ±Inf identities.
	var sum float64
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for i, r := range rows {
		if i%exprChunk == 0 && rs.Cancelled() {
			return Value{}, cancel.ErrCancelled
		}
		setRow(ctx, isVector, r)
		v, err := evalExpr(ctx, f.Args[0])
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindNum {
			return Value{}, fmt.Errorf("sql: %s needs numeric input", f.Name)
		}
		if v.Num < lo {
			lo = v.Num
		}
		if v.Num > hi {
			hi = v.Num
		}
		sum += v.Num
		n++
	}
	switch f.Name {
	case "count":
		return numVal(float64(n)), nil
	case "sum":
		return numVal(sum), nil
	case "avg":
		if n == 0 {
			return Value{Kind: KindNull}, nil
		}
		return numVal(sum / float64(n)), nil
	case "min":
		if n == 0 {
			return Value{Kind: KindNull}, nil
		}
		return numVal(lo), nil
	case "max":
		if n == 0 {
			return Value{Kind: KindNull}, nil
		}
		return numVal(hi), nil
	default:
		return Value{}, fmt.Errorf("sql: unknown aggregate %q", f.Name)
	}
}

// kernelAggregate routes aggregates over a bare point-cloud column through
// the engine's typed aggregate kernels instead of per-row expression
// evaluation. ok reports whether the shape was recognised; when false, the
// caller falls back to the generic path. Results are identical: column
// references evaluate to the same float64 widening the kernels use, and
// accumulation order is unchanged (ascending rows) — min/max over large
// selections may fan across the worker set, whose ascending-partition
// merge is bit-identical to the serial fold.
func kernelAggregate(rs *engine.Run, b *binding, f FuncCall, rows []int, isVector bool) (Value, bool, error) {
	if isVector || b.pc == nil {
		return Value{}, false, nil
	}
	col, ok := pcColumnName(b, f.Args[0])
	if !ok {
		return Value{}, false, nil
	}
	var fn engine.AggFunc
	switch f.Name {
	case "count":
		// count(col) over non-null numeric columns is the row count.
		return numVal(float64(len(rows))), true, nil
	case "sum":
		fn = engine.AggSum
	case "avg":
		fn = engine.AggAvg
	case "min":
		fn = engine.AggMin
	case "max":
		fn = engine.AggMax
	default:
		return Value{}, false, nil
	}
	if len(rows) == 0 {
		// SQL semantics over empty input: sum() is 0, the rest are NULL.
		if fn == engine.AggSum {
			return numVal(0), true, nil
		}
		return Value{Kind: KindNull}, true, nil
	}
	v, err := b.pc.AggregateRun(rs, rows, fn, col, nil)
	if err != nil {
		return Value{}, true, err
	}
	return numVal(v), true, nil
}

// --- helpers --------------------------------------------------------------------

// allRows materialises the identity selection [0, n) in an rs-tracked
// pooled vector (the capacity hint covers every append, so tracking at
// acquisition is safe); hand it back with rs.RecycleRows.
func allRows(rs *engine.Run, n int) []int {
	rows := rs.AcquireRows(n)
	for i := 0; i < n; i++ {
		rows = append(rows, i)
	}
	return rows
}

// intersectSorted intersects two ascending row-id lists, compacting into
// a's prefix (the write index never overtakes the read index) so the
// pooled identity vector narrows without allocating.
func intersectSorted(a, b []int) []int {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

package sql

import (
	"fmt"
	"strings"
)

// Expr is a parsed expression node.
type Expr interface {
	exprString() string
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
}

func (e NumberLit) exprString() string { return fmt.Sprintf("%g", e.Value) }

// StringLit is a string literal.
type StringLit struct {
	Value string
}

func (e StringLit) exprString() string { return "'" + e.Value + "'" }

// ParamRef is a parameter slot produced by auto-parameterisation: the
// statement's WHERE/LIMIT literals are normalised out of the text into an
// ordered literal vector, and the AST references them by slot so one parsed
// statement (and its compiled plan skeleton) serves every literal vector of
// the same shape. Kind is the extracted literal's type — part of the shape,
// because conjunct classification dispatches on it.
type ParamRef struct {
	Index int
	Kind  ValueKind
}

func (e ParamRef) exprString() string { return fmt.Sprintf("$%d", e.Index+1) }

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	Value bool
}

func (e BoolLit) exprString() string { return strings.ToUpper(fmt.Sprintf("%t", e.Value)) }

// ColumnRef references a (optionally qualified) column.
type ColumnRef struct {
	Table string // empty when unqualified
	Name  string
}

func (e ColumnRef) exprString() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

// Star is the * select item (and count(*) argument).
type Star struct{}

func (Star) exprString() string { return "*" }

// FuncCall is a function invocation.
type FuncCall struct {
	Name string // lower-cased
	Args []Expr
}

func (e FuncCall) exprString() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.exprString()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// BinaryExpr is an infix operation; Op is one of AND OR = <> < <= > >= + - * / %.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (e BinaryExpr) exprString() string {
	return "(" + e.L.exprString() + " " + e.Op + " " + e.R.exprString() + ")"
}

// NotExpr negates a boolean expression.
type NotExpr struct {
	E Expr
}

func (e NotExpr) exprString() string { return "NOT " + e.E.exprString() }

// BetweenExpr is `subject BETWEEN lo AND hi`.
type BetweenExpr struct {
	Subject, Lo, Hi Expr
}

func (e BetweenExpr) exprString() string {
	return e.Subject.exprString() + " BETWEEN " + e.Lo.exprString() + " AND " + e.Hi.exprString()
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef names a FROM table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// OrderBy is the sort clause.
type OrderBy struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   Expr // nil when absent
	GroupBy []Expr
	Order   *OrderBy
	Limit   int // -1 when absent or parameterised
	// LimitParam is the parameter slot holding the LIMIT count when the
	// statement was auto-parameterised; -1 when LIMIT is absent or literal.
	LimitParam int
}

// String reassembles a canonical form of the statement (diagnostics only).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Expr.exprString())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Name)
		if t.Alias != "" {
			sb.WriteString(" " + t.Alias)
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.exprString())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.exprString())
		}
	}
	if s.Order != nil {
		sb.WriteString(" ORDER BY " + s.Order.Expr.exprString())
		if s.Order.Desc {
			sb.WriteString(" DESC")
		}
	}
	if s.LimitParam >= 0 {
		fmt.Fprintf(&sb, " LIMIT $%d", s.LimitParam+1)
	} else if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}

// splitConjuncts flattens a WHERE tree into AND-connected conjuncts.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

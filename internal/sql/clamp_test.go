package sql

import (
	"runtime"
	"testing"

	"gisnav/internal/engine"
)

// The executor-wide clamping rule for nonsensical tuning arguments: any
// n <= 0 passed to SetMaxInFlight or SetParallelism selects the default,
// never a degenerate mode (a zero-slot gate, a stuck serial cap). Pinned
// here so config plumbing that forwards unvalidated values stays safe.

func TestSetMaxInFlightClamp(t *testing.T) {
	e := New(engine.NewDB())
	def := 2 * runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		e.SetMaxInFlight(n)
		if got := e.ExecStats().MaxInFlight; got != def {
			t.Fatalf("SetMaxInFlight(%d): MaxInFlight = %d, want default %d", n, got, def)
		}
		if got := cap(e.gate.slotsChan()); got != def {
			t.Fatalf("SetMaxInFlight(%d): slot capacity = %d, want default %d", n, got, def)
		}
	}
	e.SetMaxInFlight(3)
	if got := e.ExecStats().MaxInFlight; got != 3 {
		t.Fatalf("SetMaxInFlight(3): MaxInFlight = %d", got)
	}
	if got := cap(e.gate.slotsChan()); got != 3 {
		t.Fatalf("SetMaxInFlight(3): slot capacity = %d", got)
	}
	// A later nonsensical value restores the default rather than keeping
	// the previous explicit bound — the rule is "select the default", not
	// "ignore the call".
	e.SetMaxInFlight(-1)
	if got := e.ExecStats().MaxInFlight; got != def {
		t.Fatalf("SetMaxInFlight(-1) after 3: MaxInFlight = %d, want default %d", got, def)
	}
}

func TestSetParallelismClamp(t *testing.T) {
	e := New(engine.NewDB())
	for _, n := range []int{0, -1, -7} {
		e.SetParallelism(n)
		if got := e.parallel.Load(); got != 0 {
			t.Fatalf("SetParallelism(%d): stored %d, want 0 (default)", n, got)
		}
	}
	e.SetParallelism(4)
	if got := e.parallel.Load(); got != 4 {
		t.Fatalf("SetParallelism(4): stored %d", got)
	}
	e.SetParallelism(-2)
	if got := e.parallel.Load(); got != 0 {
		t.Fatalf("SetParallelism(-2) after 4: stored %d, want 0 (default)", got)
	}
}

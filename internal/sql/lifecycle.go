// Query lifecycle: the layer between the public entry points and the
// plan/execute machinery. Every external run — Query, QueryContext,
// PreparedQuery.Run/RunContext — funnels through lifecycleRun, which
//
//  1. passes the executor's admission gate (bounded in-flight queries,
//     deadline-aware shedding against an EWMA of recent run latency),
//  2. binds a pooled engine.Run record to the context's done channel so
//     every kernel loop below can poll cancellation at block boundaries
//     and every pooled buffer acquisition lands in one release list,
//  3. recovers panics from anywhere in the execution stack into a typed
//     *QueryError, drains the release list so the engine pools' accounting
//     returns to its pre-query values, and poisons the prepared statement
//     so its next run replans from the AST instead of trusting a plan
//     whose scratch state a panic may have left torn.
//
// The gate and run record are allocation-free on the steady path: the
// slot semaphore is a buffered channel, the latency estimate an atomic,
// and the run records recycle through a mutex-backed free list.
package sql

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gisnav/internal/cancel"
	"gisnav/internal/engine"
)

// ErrOverloaded reports an admission-gate rejection: either every
// in-flight slot was taken (the executor is saturated and queueing would
// only grow latency), or the context's deadline was closer than the
// executor's current run-latency estimate, so the query would have burnt
// a slot only to time out. Callers are expected to back off or re-issue
// with a longer deadline.
var ErrOverloaded = errors.New("sql: executor overloaded")

// QueryError wraps a panic recovered during query execution. The process
// survives: the panicking run's pooled buffers are drained back to their
// pools, the statement is marked for replan, and the panic surfaces as
// this error instead of unwinding the caller.
type QueryError struct {
	Panic any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine at recovery
}

// Error renders the panic value.
func (e *QueryError) Error() string { return fmt.Sprintf("sql: query panicked: %v", e.Panic) }

// Unwrap exposes a panic value that was itself an error (e.g. a
// fault-injected error re-raised as a panic) to errors.Is/As chains.
func (e *QueryError) Unwrap() error {
	if err, ok := e.Panic.(error); ok {
		return err
	}
	return nil
}

// --- admission gate ---------------------------------------------------------

// gate is the executor's admission control: a slot semaphore bounding
// in-flight queries, an EWMA of run latency for deadline-aware shedding,
// and the lifecycle outcome counters ExecStats reports. Acquisition never
// queues — a full gate sheds immediately with ErrOverloaded, keeping the
// failure mode crisp under saturation (callers see backpressure, not
// silently growing latency).
type gate struct {
	mu    sync.Mutex
	slots chan struct{}
	max   int

	// EWMA of run wall time in nanoseconds (α = 1/8), updated lock-free
	// on release. Zero means "no estimate yet" and disables deadline
	// shedding.
	ewmaNs atomic.Int64

	admitted         atomic.Uint64
	shed             atomic.Uint64
	cancelled        atomic.Uint64
	deadlineExceeded atomic.Uint64
	panicked         atomic.Uint64
}

// slotsChan returns the live slot channel, creating it on first use.
// The default bound is 2×GOMAXPROCS: enough concurrency to keep every
// core busy through cache misses, small enough that a stampede degrades
// into visible shedding instead of memory growth.
func (g *gate) slotsChan() chan struct{} {
	g.mu.Lock()
	if g.slots == nil {
		if g.max <= 0 {
			g.max = 2 * runtime.GOMAXPROCS(0)
		}
		g.slots = make(chan struct{}, g.max)
	}
	s := g.slots
	g.mu.Unlock()
	return s
}

// acquire admits the query or sheds it. On admission it returns the slot
// channel the matching release must drain (SetMaxInFlight may swap the
// channel while runs are in flight, so the slot's home rides with the
// admission).
func (g *gate) acquire(ctx context.Context) (chan struct{}, error) {
	if err := ctx.Err(); err != nil {
		return nil, g.countCtx(err)
	}
	if dl, ok := ctx.Deadline(); ok {
		if est := g.ewmaNs.Load(); est > 0 && time.Until(dl) < time.Duration(est) {
			// The deadline is closer than a typical run: admitting would
			// spend a slot on a query that cancels mid-scan anyway.
			g.shed.Add(1)
			return nil, ErrOverloaded
		}
	}
	slots := g.slotsChan()
	select {
	case slots <- struct{}{}:
		g.admitted.Add(1)
		return slots, nil
	default:
		g.shed.Add(1)
		return nil, ErrOverloaded
	}
}

// release frees the slot and folds the run's wall time into the latency
// estimate (CAS loop; contention is bounded by the slot count).
func (g *gate) release(slots chan struct{}, elapsed time.Duration) {
	<-slots
	ns := int64(elapsed)
	for {
		old := g.ewmaNs.Load()
		next := ns
		if old > 0 {
			next = old + (ns-old)/8
		}
		if g.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// countCtx attributes a context failure to the right counter and passes
// the error through.
func (g *gate) countCtx(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		g.deadlineExceeded.Add(1)
	} else {
		g.cancelled.Add(1)
	}
	return err
}

// SetMaxInFlight rebounds the admission gate. Any n <= 0 selects the
// default (2×GOMAXPROCS) — the executor-wide clamping rule shared with
// SetParallelism: nonsensical arguments degrade to the default, never to
// a zero-slot gate that would shed every query. Queries already in flight
// drain against the channel they were admitted on; new admissions see the
// new bound.
func (e *Executor) SetMaxInFlight(n int) {
	g := &e.gate
	g.mu.Lock()
	if n < 0 {
		n = 0 // slotsChan treats 0 as "apply the default bound"
	}
	g.max = n
	g.slots = nil
	g.mu.Unlock()
}

// ExecStats reports the executor's query-lifecycle counters: admissions,
// gate sheds, context cancellations, deadline expiries, recovered panics,
// and the current run-latency estimate the deadline shedding compares
// against.
type ExecStats struct {
	MaxInFlight      int
	Admitted         uint64
	Shed             uint64
	Cancelled        uint64
	DeadlineExceeded uint64
	Panicked         uint64
	EWMARunNanos     int64
}

// ExecStats snapshots the lifecycle counters.
func (e *Executor) ExecStats() ExecStats {
	g := &e.gate
	g.mu.Lock()
	maxInFlight := g.max
	if maxInFlight <= 0 {
		maxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	g.mu.Unlock()
	return ExecStats{
		MaxInFlight:      maxInFlight,
		Admitted:         g.admitted.Load(),
		Shed:             g.shed.Load(),
		Cancelled:        g.cancelled.Load(),
		DeadlineExceeded: g.deadlineExceeded.Load(),
		Panicked:         g.panicked.Load(),
		EWMARunNanos:     g.ewmaNs.Load(),
	}
}

// --- the lifecycle wrapper --------------------------------------------------

// runStatePool recycles engine.Run records (release list + cancellation
// token) across queries, keeping the lifecycle wrapper allocation-free in
// steady state. A mutex-backed free list rather than a sync.Pool: the race
// detector deliberately drops a fraction of sync.Pool puts, which would
// fail the zero-alloc steady-state tests exactly in the -race CI job.
// Contention is bounded by the admission gate's slot count.
var runStatePool = struct {
	mu   sync.Mutex
	free []*engine.Run
}{}

// maxFreeRunStates bounds the free list; records past the bound are left
// to the garbage collector (a run record is small — the bound only
// matters after a transient spike in SetMaxInFlight).
const maxFreeRunStates = 64

func getRunState() *engine.Run {
	p := &runStatePool
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		rs := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return rs
	}
	p.mu.Unlock()
	return new(engine.Run)
}

func putRunState(rs *engine.Run) {
	p := &runStatePool
	p.mu.Lock()
	if len(p.free) < maxFreeRunStates {
		p.free = append(p.free, rs)
	}
	p.mu.Unlock()
}

// lifecycleRun is the single execution funnel: admission, run-state
// binding, panic isolation, pool drain, cancellation mapping, slot
// release. All public entry points delegate here.
func (pq *PreparedQuery) lifecycleRun(ctx context.Context, ex *engine.Explain, params []Value, origin string) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &pq.ex.gate
	slots, aerr := g.acquire(ctx)
	if aerr != nil {
		return nil, aerr
	}
	start := time.Now()
	rs := getRunState()
	rs.Bind(ctx.Done())
	// Run records recycle across queries (and executors), so the degree
	// cap is stamped on every run, never inherited from the previous one.
	rs.SetMaxParallel(int(pq.ex.parallel.Load()))
	defer func() {
		if p := recover(); p != nil {
			// A panic anywhere below — kernel, interpreter, refinement
			// worker (re-raised by the grid layer) — lands here. The
			// release list returns every pooled buffer the run still
			// owned, and the statement is poisoned so its next run
			// replans instead of reusing scratch state of unknown
			// integrity.
			pq.poisoned.Store(true)
			g.panicked.Add(1)
			res, err = nil, &QueryError{Panic: p, Stack: debug.Stack()}
		}
		rs.Drain()
		rs.Bind(nil)
		putRunState(rs)
		g.release(slots, time.Since(start))
	}()
	res, err = pq.run(rs, ex, params, origin)
	if err != nil && errors.Is(err, cancel.ErrCancelled) {
		// Kernels report the token firing; callers asked with a context,
		// so hand back the context's own verdict.
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
		g.countCtx(err)
	}
	return res, err
}

package sql

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// Auto-parameterisation tests: shape extraction, the shape-keyed statement
// cache with skeleton rebinding, and the rebind ≡ fresh-Prepare equivalence
// property (including NaN/±Inf literal vectors, which previously bypassed
// the engine plan cache entirely).

func TestParameterizeShapes(t *testing.T) {
	shapeOf := func(src string) string {
		t.Helper()
		key, _, _, err := parameterize(src)
		if err != nil {
			t.Fatalf("parameterize %q: %v", src, err)
		}
		return key
	}

	// Literals in WHERE and LIMIT normalise away: a pan/zoom step shares its
	// predecessor's shape, whitespace included.
	a := shapeOf("SELECT count(*) FROM ahn2 WHERE z BETWEEN 1 AND 5 LIMIT 10")
	b := shapeOf("SELECT count(*)  FROM ahn2\n WHERE z BETWEEN 2.5 AND 99 LIMIT 3")
	if a != b {
		t.Fatalf("same shape produced different keys:\n%s\n%s", a, b)
	}

	// Literal TYPE is part of the shape: a string constant routes conjunct
	// classification differently from a numeric one.
	s1 := shapeOf("SELECT count(*) FROM osm WHERE class = 'motorway'")
	s2 := shapeOf("SELECT count(*) FROM osm WHERE class = 5")
	if s1 == s2 {
		t.Fatalf("string and numeric literals must not share a shape: %s", s1)
	}

	// SELECT-list literals stay inline — they name output columns.
	p1 := shapeOf("SELECT z + 10 FROM ahn2")
	p2 := shapeOf("SELECT z + 20 FROM ahn2")
	if p1 == p2 {
		t.Fatal("SELECT-list literals must stay part of the shape")
	}

	// The extracted vector is ordered and typed.
	_, _, params, err := parameterize("SELECT x FROM ahn2 WHERE z > 4 AND name = 'a' LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != 3 || params[0].Num != 4 || params[1].Str != "a" || params[2].Num != 7 {
		t.Fatalf("literal vector = %+v", params)
	}
}

// TestShapeCacheRebinds drives the tentpole end to end: a pan/zoom sweep of
// distinct bbox literals over one statement shape must hit the cache,
// rebind instead of replanning, keep the engine kernel-compile count flat,
// and agree with a cold executor on every step.
func TestShapeCacheRebinds(t *testing.T) {
	e, pc, _, _ := testDB(t)
	q := func(x0, y0 float64) string {
		return fmt.Sprintf(`SELECT count(*) FROM ahn2
			WHERE ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y))
			  AND classification >= 0 AND z - z < 1`, x0, y0, x0+700, y0+700)
	}

	// Warm the shape: first query plans, fills the engine plan cache.
	mustQuery(t, e, q(0, 0))
	s0 := e.StmtCacheStats()
	missesBefore := pc.PlanCacheStats().Misses

	const steps = 12
	for i := 1; i <= steps; i++ {
		res := mustQuery(t, e, q(float64(i)*90, float64(i)*60))
		fresh, _, _ := testDBQuery(t, q(float64(i)*90, float64(i)*60))
		if res.Rows[0][0].Num != fresh {
			t.Fatalf("step %d: rebound count %v, cold count %v", i, res.Rows[0][0].Num, fresh)
		}
	}

	s1 := e.StmtCacheStats()
	if s1.Entries != 1 {
		t.Fatalf("a literal sweep must occupy one shape entry, got %d", s1.Entries)
	}
	if s1.Hits != s0.Hits+steps {
		t.Fatalf("every sweep step should hit the shape cache: %+v -> %+v", s0, s1)
	}
	if s1.ShapeHits != s0.ShapeHits+steps || s1.Rebinds != s0.Rebinds+steps {
		t.Fatalf("every sweep step should rebind: %+v -> %+v", s0, s1)
	}
	if got := pc.PlanCacheStats().Misses; got != missesBefore {
		t.Fatalf("sweep recompiled kernels: engine plan-cache misses %d -> %d", missesBefore, got)
	}
}

// testDBQuery runs q on a fresh database replica (same seed) and returns the
// single numeric result — the cold-planner reference arm.
func testDBQuery(t *testing.T, q string) (float64, *Executor, *Result) {
	t.Helper()
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, q)
	return res.Rows[0][0].Num, e, res
}

// TestExplainMarksPlanOrigin: the trace's leading "plan" step must say
// planned on a cold shape, rebound when new literals bind into the cached
// skeleton, and cached when the text repeats verbatim.
func TestExplainMarksPlanOrigin(t *testing.T) {
	e, _, _, _ := testDB(t)
	origin := func(res *Result) string {
		t.Helper()
		for _, s := range res.Explain.Steps {
			if s.Op == "plan" {
				return s.Detail
			}
		}
		t.Fatalf("no plan step in trace: %+v", res.Explain.Steps)
		return ""
	}
	r1 := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE z > 10")
	if got := origin(r1); !strings.HasPrefix(got, "planned") {
		t.Fatalf("cold query origin = %q, want planned", got)
	}
	r2 := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE z > 20")
	if got := origin(r2); !strings.HasPrefix(got, "rebound") {
		t.Fatalf("new-literal query origin = %q, want rebound", got)
	}
	r3 := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE z > 20")
	if got := origin(r3); !strings.HasPrefix(got, "cached") {
		t.Fatalf("same-text query origin = %q, want cached", got)
	}
}

// TestLimitRebind: LIMIT is a parameter slot — the same shape serves
// different counts, and invalid parameterised counts still error.
func TestLimitRebind(t *testing.T) {
	e, _, _, _ := testDB(t)
	r2 := mustQuery(t, e, "SELECT x FROM ahn2 WHERE z > -1e18 LIMIT 2")
	r5 := mustQuery(t, e, "SELECT x FROM ahn2 WHERE z > -1e18 LIMIT 5")
	if len(r2.Rows) != 2 || len(r5.Rows) != 5 {
		t.Fatalf("limits = %d, %d; want 2, 5", len(r2.Rows), len(r5.Rows))
	}
	if e.StmtCacheStats().Entries != 1 {
		t.Fatal("LIMIT variants should share one shape")
	}
	if _, err := e.Query("SELECT x FROM ahn2 LIMIT 3.5"); err == nil || !strings.Contains(err.Error(), "LIMIT") {
		t.Fatalf("fractional LIMIT should error, got %v", err)
	}
}

// TestStringParamReroute: class constants rebind through the dictionary
// route, and a numeric literal in the same position is a different shape.
func TestStringParamReroute(t *testing.T) {
	e, _, _, _ := testDB(t)
	m := mustQuery(t, e, "SELECT count(*) FROM osm WHERE class = 'motorway'")
	r := mustQuery(t, e, "SELECT count(*) FROM osm WHERE class = 'residential'")
	if m.Rows[0][0].Num == 0 {
		t.Fatal("no motorways in demo data; test is vacuous")
	}
	if m.Rows[0][0].Num == r.Rows[0][0].Num {
		t.Fatal("rebinding the class constant did not change the result")
	}
	st := e.StmtCacheStats()
	if st.Entries != 1 || st.Rebinds == 0 {
		t.Fatalf("class sweep should rebind one shape: %+v", st)
	}
	// Numeric literal in the class slot: separate shape, interpreter route —
	// which rejects the string/number comparison exactly as it always did.
	if _, err := e.Query("SELECT count(*) FROM osm WHERE class = 5"); err == nil ||
		!strings.Contains(err.Error(), "cannot compare") {
		t.Fatalf("class = 5 should keep the interpreter's type error, got %v", err)
	}
}

// TestShapeKeyQuoteEscaping: an inline string literal containing escaped
// quotes must not collide with a differently-structured statement whose
// rendered key would otherwise read the same (the doubled-single-quote
// escape is re-applied
// when the key is built).
func TestShapeKeyQuoteEscaping(t *testing.T) {
	k1, _, _, err := parameterize("SELECT 'x' AS a , 'y' FROM t")
	if err != nil {
		t.Fatal(err)
	}
	// One literal whose CONTENT is "x' AS a , 'y" via '' escapes.
	k2, _, _, err := parameterize("SELECT 'x'' AS a , ''y' FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatalf("distinct statements collided on shape key %q", k1)
	}
}

// TestRebindFailureLeavesPlanConsistent: a rebind that fails (here the join
// distance stops being a constant: 40/0 errors at classification) must not
// half-mutate the cached plan. Both the failing query and its repeat must
// error — a repeat silently serving the PREVIOUS distance would mean the
// plan committed the new params without the new constants.
func TestRebindFailureLeavesPlanConsistent(t *testing.T) {
	e, _, _, _ := testDB(t)
	good := `SELECT count(*) FROM ahn2, ua
		WHERE ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 40/2)`
	bad := `SELECT count(*) FROM ahn2, ua
		WHERE ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 40/0)`

	want := mustQuery(t, e, good).Rows[0][0].Num
	for i := 0; i < 2; i++ {
		if _, err := e.Query(bad); err == nil {
			t.Fatalf("attempt %d: 40/0 join distance should error, got success", i+1)
		}
	}
	// The cached skeleton still serves the good vector correctly.
	if got := mustQuery(t, e, good).Rows[0][0].Num; got != want {
		t.Fatalf("plan corrupted after failed rebind: count %v, want %v", got, want)
	}
}

// --- rebind ≡ fresh-Prepare property -----------------------------------------

// valueEq compares result values with NaN treated as equal to itself.
func valueEq(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindNum:
		return a.Num == b.Num || (math.IsNaN(a.Num) && math.IsNaN(b.Num))
	case KindStr:
		return a.Str == b.Str
	case KindBool:
		return a.Bool == b.Bool
	default:
		return true
	}
}

func resultsEqual(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if !valueEq(a.Rows[i][j], b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestRebindMatchesFreshPrepare is the satellite property test: for random
// WHERE shapes and random literal vectors — including NaN and ±Inf, which
// the old engine plan cache refused to key — running a REBOUND plan
// skeleton must be indistinguishable from a fresh Prepare of the same shape
// with the same vector: same rows, same errors.
func TestRebindMatchesFreshPrepare(t *testing.T) {
	e, _, _, _ := testDB(t)
	rng := rand.New(rand.NewSource(42))

	// Conjunct templates: verbs is the %g count, slots the number of
	// literals parameterize extracts (inline constants like the 1 in
	// "z / c > 1" extract too).
	templates := []struct {
		text         string
		verbs, slots int
	}{
		{"z < %g", 1, 1},
		{"intensity BETWEEN %g AND %g", 2, 2},
		{"classification = %g", 1, 1},
		{"ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y))", 4, 4},
		{"z - 2*intensity > %g", 1, 2}, // the inline 2 extracts too
		{"z / %g > 1", 1, 2},           // parameterised denominator: runtime-checked
		{"abs(z - %g) <= %g", 2, 2},
		{"NOT (scan_angle >= %g)", 1, 1},
	}
	randLit := func() float64 {
		switch rng.Intn(10) {
		case 0:
			return math.NaN()
		case 1:
			return math.Inf(1)
		case 2:
			return math.Inf(-1)
		case 3:
			return 0
		case 4:
			return float64(rng.Intn(2000)) + 0.5
		default:
			return (rng.Float64() - 0.5) * 4000
		}
	}

	for trial := 0; trial < 60; trial++ {
		// Assemble a random conjunction with finite seed literals.
		n := 1 + rng.Intn(3)
		var conjs []string
		slots := 0
		for i := 0; i < n; i++ {
			tpl := templates[rng.Intn(len(templates))]
			args := make([]any, tpl.verbs)
			for j := range args {
				args[j] = rng.Float64() * 100
			}
			conjs = append(conjs, fmt.Sprintf(tpl.text, args...))
			slots += tpl.slots
		}
		src := "SELECT count(*), min(z), max(intensity) FROM ahn2 WHERE " + strings.Join(conjs, " AND ")

		_, toks, seed, err := parameterize(src)
		if err != nil {
			t.Fatalf("parameterize %q: %v", src, err)
		}
		if len(seed) != slots {
			t.Fatalf("%q extracted %d literals, want %d", src, len(seed), slots)
		}
		stmt, err := parseTokens(toks)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		pq, err := e.prepareBound(stmt, seed)
		if err != nil {
			t.Fatalf("prepare %q: %v", src, err)
		}

		// Drive the SAME skeleton through a sweep of adversarial vectors and
		// pin each rebound run to a fresh prepare of the same vector.
		for round := 0; round < 6; round++ {
			params := make([]Value, len(seed))
			for i := range params {
				params[i] = numVal(randLit())
			}
			rebound, rerr := pq.run(nil, nil, params, originCached)
			fresh, ferr := e.prepareBound(stmt, params)
			var want *Result
			var werr error
			if ferr != nil {
				werr = ferr
			} else {
				want, werr = fresh.Run()
			}
			if (rerr != nil) != (werr != nil) {
				t.Fatalf("%q params %v: rebound err %v, fresh err %v", src, params, rerr, werr)
			}
			if rerr != nil {
				if rerr.Error() != werr.Error() {
					t.Fatalf("%q params %v: error %q vs %q", src, params, rerr, werr)
				}
				continue
			}
			if !resultsEqual(rebound, want) {
				t.Fatalf("%q params %v:\nrebound %v\nfresh   %v", src, params, rebound.Rows, want.Rows)
			}
		}
	}
}

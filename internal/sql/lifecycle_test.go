package sql

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gisnav/internal/geom"
	"gisnav/internal/synth"
)

// Lifecycle tests: context plumbing, admission control, ExecStats, and the
// concurrent cancel/invalidate stress the -race runs lean on. The panic
// isolation and cancellation-latency properties need armed fault points and
// live in fault_test.go (-tags faultinject).

const lcQuery = `SELECT count(*) FROM ahn2
	WHERE ST_Contains(ST_MakeEnvelope(150, 150, 1700, 1620), ST_Point(x, y))
	  AND classification = 2`

func TestQueryContextPreCancelled(t *testing.T) {
	e, _, _, _ := testDB(t)
	mustQuery(t, e, lcQuery) // warm the caches so the delta below is pure
	ctx, cancelCtx := context.WithCancel(context.Background())
	cancelCtx()
	before := e.ExecStats()
	delta := outstandingDelta(t, func() {
		res, err := e.QueryContext(ctx, lcQuery)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res != nil {
			t.Fatal("cancelled query returned a result")
		}
	})
	if delta != 0 {
		t.Fatalf("pre-cancelled query drifted pool by %d", delta)
	}
	after := e.ExecStats()
	if after.Cancelled != before.Cancelled+1 {
		t.Fatalf("Cancelled = %d, want %d", after.Cancelled, before.Cancelled+1)
	}
	if after.Admitted != before.Admitted {
		t.Fatalf("pre-cancelled query was admitted (%d -> %d)", before.Admitted, after.Admitted)
	}
}

func TestQueryContextExpiredDeadline(t *testing.T) {
	e, _, _, _ := testDB(t)
	ctx, cancelCtx := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelCtx()
	before := e.ExecStats()
	_, err := e.QueryContext(ctx, lcQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := e.ExecStats().DeadlineExceeded; got != before.DeadlineExceeded+1 {
		t.Fatalf("DeadlineExceeded = %d, want %d", got, before.DeadlineExceeded+1)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	e, _, _, _ := testDB(t)
	pq, err := e.Prepare(lcQuery)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := pq.Run()
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := pq.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rows[0][0].Num != ctxed.Rows[0][0].Num {
		t.Fatalf("RunContext = %v, Run = %v", ctxed.Rows[0][0].Num, plain.Rows[0][0].Num)
	}
	// nil context degrades to Background instead of panicking.
	if _, err := pq.RunContext(nil); err != nil { //nolint:staticcheck
		t.Fatalf("RunContext(nil): %v", err)
	}
}

func TestAdmissionGateSheds(t *testing.T) {
	e, _, _, _ := testDB(t)
	e.SetMaxInFlight(1)
	// Occupy the only slot (white-box), then every query must shed.
	slots, err := e.gate.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	before := e.ExecStats()
	if _, qerr := e.QueryContext(context.Background(), lcQuery); !errors.Is(qerr, ErrOverloaded) {
		t.Fatalf("saturated gate returned %v, want ErrOverloaded", qerr)
	}
	if got := e.ExecStats().Shed; got != before.Shed+1 {
		t.Fatalf("Shed = %d, want %d", got, before.Shed+1)
	}
	e.gate.release(slots, time.Millisecond)
	// With the slot free the same query runs.
	mustQuery(t, e, lcQuery)
	if got := e.ExecStats().MaxInFlight; got != 1 {
		t.Fatalf("MaxInFlight = %d, want 1", got)
	}
}

func TestDeadlineAwareShedding(t *testing.T) {
	e, _, _, _ := testDB(t)
	// Pretend recent runs took an hour; a 50ms deadline can never fit.
	e.gate.ewmaNs.Store(int64(time.Hour))
	ctx, cancelCtx := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancelCtx()
	before := e.ExecStats()
	if _, err := e.QueryContext(ctx, lcQuery); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("doomed-deadline query returned %v, want ErrOverloaded", err)
	}
	if got := e.ExecStats().Shed; got != before.Shed+1 {
		t.Fatalf("Shed = %d, want %d", got, before.Shed+1)
	}
	// A deadline-free context is admitted regardless of the estimate.
	mustQuery(t, e, lcQuery)
}

func TestExecStatsCounters(t *testing.T) {
	e, _, _, _ := testDB(t)
	st := e.ExecStats()
	if st.MaxInFlight <= 0 {
		t.Fatalf("default MaxInFlight = %d, want > 0", st.MaxInFlight)
	}
	mustQuery(t, e, lcQuery)
	mustQuery(t, e, lcQuery)
	st = e.ExecStats()
	if st.Admitted < 2 {
		t.Fatalf("Admitted = %d, want >= 2", st.Admitted)
	}
	if st.EWMARunNanos <= 0 {
		t.Fatalf("EWMARunNanos = %d, want > 0 after runs", st.EWMARunNanos)
	}
}

func TestQueryErrorUnwrap(t *testing.T) {
	qe := &QueryError{Panic: io.ErrUnexpectedEOF}
	if !errors.Is(qe, io.ErrUnexpectedEOF) {
		t.Fatal("QueryError does not unwrap an error panic value")
	}
	plain := &QueryError{Panic: "boom"}
	if plain.Unwrap() != nil {
		t.Fatal("non-error panic value unwrapped to an error")
	}
	if plain.Error() == "" {
		t.Fatal("empty rendering")
	}
}

// TestConcurrentCancelInvalidateStress is the -race workhorse: concurrent
// runners issue the same statement shape under randomly-cancelled contexts
// while another goroutine bumps the table epoch (the append signal), so
// cancellation, admission, shape-cache rebinds and epoch replans all
// interleave. Afterwards the pool must be level, the invalidation counter
// must have moved, and a real append must be visible to the next query —
// no stale plan.
func TestConcurrentCancelInvalidateStress(t *testing.T) {
	e, pc, _, _ := testDB(t)
	mustQuery(t, e, lcQuery)
	invBefore := e.StmtCacheStats().Invalidations

	delta := outstandingDelta(t, func() {
		var wg, bumper sync.WaitGroup
		stop := make(chan struct{})
		// Epoch bumper: InvalidateIndexes is the append-path signal and is
		// safe against concurrent readers (arrays do not move). It joins
		// separately because it only exits once the runners are done.
		bumper.Add(1)
		go func() {
			defer bumper.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pc.InvalidateIndexes()
				time.Sleep(200 * time.Microsecond)
			}
		}()
		const runners = 4
		for r := 0; r < runners; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 60; i++ {
					ctx, cancelCtx := context.WithCancel(context.Background())
					if rng.Intn(3) == 0 {
						cancelCtx()
					} else if rng.Intn(2) == 0 {
						go func(d time.Duration) {
							time.Sleep(d)
							cancelCtx()
						}(time.Duration(rng.Intn(300)) * time.Microsecond)
					}
					_, err := e.QueryUntracedContext(ctx, lcQuery)
					switch {
					case err == nil,
						errors.Is(err, context.Canceled),
						errors.Is(err, ErrOverloaded):
					default:
						t.Errorf("unexpected error: %v", err)
					}
					cancelCtx()
				}
			}(int64(r + 1))
		}
		wg.Wait()
		close(stop)
		bumper.Wait()
	})
	if delta != 0 {
		t.Fatalf("stress drifted selection pool by %d", delta)
	}
	if inv := e.StmtCacheStats().Invalidations; inv == invBefore {
		t.Fatal("epoch bumps never forced a replan")
	}

	// A real append (single-writer, queries quiesced) must be observed by
	// the very next run: the replanned statement sees the new rows.
	rows := pc.Len()
	region := geom.NewEnvelope(0, 0, 2000, 2000)
	terrain := synth.NewTerrain(81, region)
	pc.AppendLAS(synth.GenerateTile(terrain, synth.TileSpec{Env: region, Density: 0.001, Seed: 12}))
	if pc.Len() == rows {
		t.Fatal("append added no rows; the staleness check is vacuous")
	}
	afterCount := mustQuery(t, e, `SELECT count(*) FROM ahn2`).Rows[0][0].Num
	if int(afterCount) != pc.Len() {
		t.Fatalf("post-append count(*) = %v, table has %d rows (stale plan?)", afterCount, pc.Len())
	}
}

// TestRunContextSteadyStateAllocs pins the context-threaded steady path to
// the same budget as the plain prepared run: the gate, run-state binding
// and cancellation polling must add zero allocations per query.
func TestRunContextSteadyStateAllocs(t *testing.T) {
	e, _, _, _ := testDB(t)
	pq, err := e.Prepare(lcQuery)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithCancel(context.Background())
	defer cancelCtx()
	_ = ctx.Done() // materialise the done channel outside the measurement
	if _, err := pq.RunContext(ctx); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := pq.RunContext(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Fatalf("RunContext steady state allocates %.1f objects/op, want <= 3 (result only)", allocs)
	}
}

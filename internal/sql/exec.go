package sql

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/grid"
)

// Executor runs SQL statements against an engine catalog.
type Executor struct {
	db *engine.DB
}

// New returns an executor over db.
func New(db *engine.DB) *Executor { return &Executor{db: db} }

// Result is a completed query: column names, value rows, and the operator
// trace (the demo's per-operator EXPLAIN view).
type Result struct {
	Columns []string
	Rows    [][]Value
	Explain *engine.Explain
}

// Query parses, plans and executes one SELECT statement.
func (e *Executor) Query(src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Exec(stmt)
}

// Exec executes a parsed statement.
func (e *Executor) Exec(stmt *SelectStmt) (*Result, error) {
	b, err := e.bind(stmt.From)
	if err != nil {
		return nil, err
	}
	switch {
	case b.pc != nil && b.vt != nil:
		return e.execJoin(stmt, b)
	case b.pc != nil:
		return e.execPointCloud(stmt, b)
	case b.vt != nil:
		return e.execVector(stmt, b)
	default:
		return nil, fmt.Errorf("sql: no tables bound")
	}
}

// bind resolves FROM references against the catalog.
func (e *Executor) bind(from []TableRef) (*binding, error) {
	if len(from) == 0 {
		return nil, fmt.Errorf("sql: FROM clause required")
	}
	if len(from) > 2 {
		return nil, fmt.Errorf("sql: at most two tables supported (point cloud × vector join)")
	}
	b := &binding{}
	for _, ref := range from {
		names := []string{ref.Name}
		if ref.Alias != "" {
			names = append(names, ref.Alias)
		}
		if e.db.IsPointCloud(ref.Name) {
			if b.pc != nil {
				return nil, fmt.Errorf("sql: only one point cloud table per query")
			}
			pc, err := e.db.PointCloud(ref.Name)
			if err != nil {
				return nil, err
			}
			b.pc = pc
			b.pcNames = names
			continue
		}
		vt, err := e.db.Vector(ref.Name)
		if err != nil {
			return nil, fmt.Errorf("sql: unknown table %q", ref.Name)
		}
		if b.vt != nil {
			return nil, fmt.Errorf("sql: only one vector table per query")
		}
		b.vt = vt
		b.vtNames = names
	}
	return b, nil
}

// --- conjunct classification ------------------------------------------------

// refUse records which tables an expression touches.
type refUse struct {
	pc, vt bool
}

// usage walks e and classifies its column references under b.
func usage(b *binding, e Expr) refUse {
	var u refUse
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case ColumnRef:
			name := strings.ToLower(t.Name)
			if t.Table != "" {
				if b.isPCName(t.Table) && !b.isVTName(t.Table) {
					u.pc = true
					return
				}
				if b.isVTName(t.Table) && !b.isPCName(t.Table) {
					u.vt = true
					return
				}
			}
			// Unqualified: resolve by column name.
			if b.pc != nil && b.pc.Column(name) != nil {
				u.pc = true
				return
			}
			if b.vt != nil {
				if name == vcID || name == vcClass || name == vcName || name == vcGeom {
					u.vt = true
					return
				}
				for _, attr := range b.vt.NumericAttrs() {
					if strings.EqualFold(attr, name) {
						u.vt = true
						return
					}
				}
			}
		case FuncCall:
			for _, a := range t.Args {
				walk(a)
			}
		case BinaryExpr:
			walk(t.L)
			walk(t.R)
		case NotExpr:
			walk(t.E)
		case BetweenExpr:
			walk(t.Subject)
			walk(t.Lo)
			walk(t.Hi)
		}
	}
	walk(e)
	return u
}

// constGeom evaluates e without row context, expecting a geometry.
func constGeom(b *binding, e Expr) (geom.Geometry, bool) {
	v, err := evalExpr(&evalCtx{b: b, pcRow: -1, vtRow: -1}, e)
	if err != nil || v.Kind != KindGeom {
		return nil, false
	}
	return v.Geom, true
}

// constNum evaluates e without row context, expecting a number.
func constNum(b *binding, e Expr) (float64, bool) {
	v, err := evalExpr(&evalCtx{b: b, pcRow: -1, vtRow: -1}, e)
	if err != nil || v.Kind != KindNum {
		return 0, false
	}
	return v.Num, true
}

// isPCPoint recognises ST_Point(x, y) over the point cloud's coordinate
// columns — the shape the imprint filter accelerates.
func isPCPoint(b *binding, e Expr) bool {
	f, ok := e.(FuncCall)
	if !ok || f.Name != "st_point" || len(f.Args) != 2 {
		return false
	}
	cx, okx := f.Args[0].(ColumnRef)
	cy, oky := f.Args[1].(ColumnRef)
	if !okx || !oky {
		return false
	}
	return b.isPCName(cx.Table) && b.isPCName(cy.Table) &&
		strings.EqualFold(cx.Name, engine.ColX) && strings.EqualFold(cy.Name, engine.ColY)
}

// isVTGeom recognises a reference to the vector table's geometry column.
func isVTGeom(b *binding, e Expr) bool {
	c, ok := e.(ColumnRef)
	return ok && strings.EqualFold(c.Name, vcGeom) && b.isVTName(c.Table)
}

// pcRegionFromConjunct extracts an accelerable spatial region predicate over
// the point cloud, if e has one of the recognised shapes.
func pcRegionFromConjunct(b *binding, e Expr) (grid.Region, bool) {
	f, ok := e.(FuncCall)
	if !ok {
		return nil, false
	}
	switch f.Name {
	case "st_contains", "st_covers", "st_intersects":
		if len(f.Args) != 2 {
			return nil, false
		}
		for i := 0; i < 2; i++ {
			g, gok := constGeom(b, f.Args[i])
			if gok && isPCPoint(b, f.Args[1-i]) {
				return grid.GeometryRegion{G: g}, true
			}
			// st_contains is asymmetric: the geometry must be first.
			if f.Name != "st_intersects" {
				break
			}
		}
	case "st_within":
		if len(f.Args) != 2 {
			return nil, false
		}
		if g, gok := constGeom(b, f.Args[1]); gok && isPCPoint(b, f.Args[0]) {
			return grid.GeometryRegion{G: g}, true
		}
	case "st_dwithin":
		if len(f.Args) != 3 {
			return nil, false
		}
		d, dok := constNum(b, f.Args[2])
		if !dok {
			return nil, false
		}
		for i := 0; i < 2; i++ {
			g, gok := constGeom(b, f.Args[i])
			if gok && isPCPoint(b, f.Args[1-i]) {
				return grid.BufferRegion{G: g, D: d}, true
			}
		}
	}
	return nil, false
}

// pcPredFromConjunct extracts a thematic column predicate.
func pcPredFromConjunct(b *binding, e Expr) (engine.ColumnPred, bool) {
	switch t := e.(type) {
	case BinaryExpr:
		ops := map[string]engine.CmpOp{
			"=": engine.CmpEQ, "<>": engine.CmpNE, "<": engine.CmpLT,
			"<=": engine.CmpLE, ">": engine.CmpGT, ">=": engine.CmpGE,
		}
		op, ok := ops[t.Op]
		if !ok {
			return engine.ColumnPred{}, false
		}
		if col, v, ok := colAndConst(b, t.L, t.R); ok {
			return engine.ColumnPred{Column: col, Op: op, Value: v}, true
		}
		if col, v, ok := colAndConst(b, t.R, t.L); ok {
			return engine.ColumnPred{Column: col, Op: flipOp(op), Value: v}, true
		}
	case BetweenExpr:
		col, okc := pcColumnName(b, t.Subject)
		lo, okl := constNum(b, t.Lo)
		hi, okh := constNum(b, t.Hi)
		if okc && okl && okh {
			return engine.ColumnPred{Column: col, Op: engine.CmpBetween, Value: lo, Value2: hi}, true
		}
	}
	return engine.ColumnPred{}, false
}

func colAndConst(b *binding, colSide, constSide Expr) (string, float64, bool) {
	col, ok := pcColumnName(b, colSide)
	if !ok {
		return "", 0, false
	}
	v, ok := constNum(b, constSide)
	if !ok {
		return "", 0, false
	}
	return col, v, true
}

func pcColumnName(b *binding, e Expr) (string, bool) {
	c, ok := e.(ColumnRef)
	if !ok || !b.isPCName(c.Table) || b.pc == nil {
		return "", false
	}
	name := strings.ToLower(c.Name)
	if b.pc.Column(name) == nil {
		return "", false
	}
	return name, true
}

func flipOp(op engine.CmpOp) engine.CmpOp {
	switch op {
	case engine.CmpLT:
		return engine.CmpGT
	case engine.CmpLE:
		return engine.CmpGE
	case engine.CmpGT:
		return engine.CmpLT
	case engine.CmpGE:
		return engine.CmpLE
	default:
		return op
	}
}

// --- point cloud execution ---------------------------------------------------

func (e *Executor) execPointCloud(stmt *SelectStmt, b *binding) (*Result, error) {
	ex := &engine.Explain{}
	conjs := splitConjuncts(stmt.Where)

	var region grid.Region
	var preds []engine.ColumnPred
	var generic []Expr
	for _, c := range conjs {
		if region == nil {
			if r, ok := pcRegionFromConjunct(b, c); ok {
				region = r
				continue
			}
		}
		if p, ok := pcPredFromConjunct(b, c); ok {
			preds = append(preds, p)
			continue
		}
		generic = append(generic, c)
	}

	var rows []int
	if region != nil {
		sel := b.pc.SelectRegion(region)
		ex.Steps = append(ex.Steps, sel.Explain.Steps...)
		rows = sel.Rows
	}
	return e.finishPointCloud(stmt, b, rows, preds, generic, ex)
}

// finishPointCloud runs the shared tail of point-cloud and join execution:
// thematic predicate kernels, generic filters (compiled where possible),
// projection, and the pooled-vector bookkeeping. rows may be nil ("all
// rows"); when non-nil it is treated as engine-owned and recycled on every
// exit path — including errors, which previously leaked it from the pool's
// accounting.
func (e *Executor) finishPointCloud(stmt *SelectStmt, b *binding, rows []int, preds []engine.ColumnPred, generic []Expr, ex *engine.Explain) (*Result, error) {
	filtered, err := b.pc.FilterRows(rows, preds, ex)
	if err != nil {
		if rows != nil {
			engine.RecycleRows(rows)
		}
		return nil, err
	}
	// FilterRows copies on first write, so the incoming pooled vector can
	// go back to the pool as soon as a predicate replaced it.
	if rows != nil && len(preds) > 0 {
		engine.RecycleRows(rows)
	}
	rows = filtered
	// Generic filters compact rows in place (the backing array never moves
	// or grows), so on error the pre-call slice is still the one to recycle.
	narrowed, err := e.genericFilterPC(b, rows, generic, ex)
	if err != nil {
		engine.RecycleRows(rows)
		return nil, err
	}
	rows = narrowed
	res, err := e.output(stmt, b, rows, -1, ex)
	engine.RecycleRows(rows)
	return res, err
}

// genericFilterPC applies conjuncts the planner didn't recognise. Shapes
// the expression compiler covers (arithmetic comparisons, BETWEEN, NOT,
// error-free AND/OR, bare numeric truthiness) run as chunked vector
// kernels; everything else falls back to the row-at-a-time interpreter.
// Both paths compact rows in place without moving its backing array.
func (e *Executor) genericFilterPC(b *binding, rows []int, generic []Expr, ex *engine.Explain) ([]int, error) {
	for _, g := range generic {
		start := time.Now()
		in := len(rows)
		if cf, ok := compilePCFilter(b, g); ok {
			narrowed, err := cf.apply(rows)
			if err != nil {
				return nil, err
			}
			rows = narrowed
			ex.Add("filter.compiled", g.exprString(), in, len(rows), time.Since(start))
			continue
		}
		out := rows[:0]
		ctx := &evalCtx{b: b, vtRow: -1}
		for _, r := range rows {
			ctx.pcRow = r
			v, err := evalExpr(ctx, g)
			if err != nil {
				return nil, err
			}
			if v.truthy() {
				out = append(out, r)
			}
		}
		rows = out
		ex.Add("filter.generic", g.exprString(), in, len(rows), time.Since(start))
	}
	return rows, nil
}

// --- vector execution ---------------------------------------------------------

func (e *Executor) execVector(stmt *SelectStmt, b *binding) (*Result, error) {
	ex := &engine.Explain{}
	conjs := splitConjuncts(stmt.Where)
	rows, err := e.filterVTRows(b, conjs, allRows(b.vt.Len()), ex)
	if err != nil {
		return nil, err
	}
	return e.output(stmt, b, nil, 0, ex, rows...)
}

// filterVTRows narrows a vector-table row set with the given conjuncts,
// routing the recognised shapes through the table's indexes — `class = 'x'`
// through the class dictionary, `ST_Intersects(geom, <const>)` through the
// STR R-tree — and everything else through the row-wise interpreter. It is
// shared by the pure-vector path and the vector phase of joins, so both see
// the same fast paths.
func (e *Executor) filterVTRows(b *binding, conjs []Expr, rows []int, ex *engine.Explain) ([]int, error) {
	for _, c := range conjs {
		// class = 'x' fast path.
		if cls, ok := vtClassEquality(b, c); ok {
			fast := b.vt.SelectClass(cls, ex)
			rows = intersectSorted(rows, fast)
			continue
		}
		// ST_Intersects(geom, const) fast path.
		if g, ok := vtIntersectsConst(b, c); ok {
			fast := b.vt.SelectIntersects(g, ex)
			rows = intersectSorted(rows, fast)
			continue
		}
		// Generic row-wise filter.
		start := time.Now()
		in := len(rows)
		out := rows[:0]
		ctx := &evalCtx{b: b, pcRow: -1}
		for _, r := range rows {
			ctx.vtRow = r
			v, err := evalExpr(ctx, c)
			if err != nil {
				return nil, err
			}
			if v.truthy() {
				out = append(out, r)
			}
		}
		rows = out
		ex.Add("filter.generic", c.exprString(), in, len(rows), time.Since(start))
	}
	return rows, nil
}

func vtClassEquality(b *binding, e Expr) (string, bool) {
	t, ok := e.(BinaryExpr)
	if !ok || t.Op != "=" {
		return "", false
	}
	if c, ok := t.L.(ColumnRef); ok && strings.EqualFold(c.Name, vcClass) && b.isVTName(c.Table) {
		if s, ok := t.R.(StringLit); ok {
			return s.Value, true
		}
	}
	if c, ok := t.R.(ColumnRef); ok && strings.EqualFold(c.Name, vcClass) && b.isVTName(c.Table) {
		if s, ok := t.L.(StringLit); ok {
			return s.Value, true
		}
	}
	return "", false
}

func vtIntersectsConst(b *binding, e Expr) (geom.Geometry, bool) {
	f, ok := e.(FuncCall)
	if !ok || f.Name != "st_intersects" || len(f.Args) != 2 {
		return nil, false
	}
	for i := 0; i < 2; i++ {
		if isVTGeom(b, f.Args[i]) {
			if g, ok := constGeom(b, f.Args[1-i]); ok {
				return g, true
			}
		}
	}
	return nil, false
}

// --- join execution -----------------------------------------------------------

func (e *Executor) execJoin(stmt *SelectStmt, b *binding) (*Result, error) {
	ex := &engine.Explain{}
	conjs := splitConjuncts(stmt.Where)

	var vtConjs, pcConjs []Expr
	var joinConj Expr
	for _, c := range conjs {
		u := usage(b, c)
		switch {
		case u.pc && u.vt:
			if joinConj != nil {
				return nil, fmt.Errorf("sql: at most one spatial join predicate supported")
			}
			joinConj = c
		case u.vt:
			vtConjs = append(vtConjs, c)
		default:
			pcConjs = append(pcConjs, c)
		}
	}
	if joinConj == nil {
		return nil, fmt.Errorf("sql: joins require a spatial predicate linking the tables (e.g. ST_DWithin)")
	}

	// Phase 1: vector side, through the same helper as pure vector queries
	// so spatial conjuncts (ST_Intersects with a constant geometry) hit the
	// R-tree here too instead of falling to the row-wise interpreter.
	vtRows, err := e.filterVTRows(b, vtConjs, allRows(b.vt.Len()), ex)
	if err != nil {
		return nil, err
	}

	// Phase 2: spatial join.
	sel, err := e.spatialJoin(b, joinConj, vtRows)
	if err != nil {
		return nil, err
	}
	ex.Steps = append(ex.Steps, sel.Explain.Steps...)
	rows := sel.Rows

	// Phase 3: point-side predicates.
	var preds []engine.ColumnPred
	var generic []Expr
	for _, c := range pcConjs {
		if p, ok := pcPredFromConjunct(b, c); ok {
			preds = append(preds, p)
			continue
		}
		generic = append(generic, c)
	}
	return e.finishPointCloud(stmt, b, rows, preds, generic, ex)
}

// spatialJoin recognises the join predicate shape and runs it.
func (e *Executor) spatialJoin(b *binding, conj Expr, vtRows []int) (engine.Selection, error) {
	f, ok := conj.(FuncCall)
	if !ok {
		return engine.Selection{}, fmt.Errorf("sql: unsupported join predicate %q", conj.exprString())
	}
	switch f.Name {
	case "st_dwithin":
		if len(f.Args) == 3 {
			d, dok := constNum(b, f.Args[2])
			if dok {
				for i := 0; i < 2; i++ {
					if isVTGeom(b, f.Args[i]) && isPCPoint(b, f.Args[1-i]) {
						return e.db.PointsNearFeatures(b.pc, b.vt, vtRows, d), nil
					}
				}
			}
		}
	case "st_contains", "st_covers", "st_intersects":
		if len(f.Args) == 2 {
			for i := 0; i < 2; i++ {
				if isVTGeom(b, f.Args[i]) && isPCPoint(b, f.Args[1-i]) {
					if f.Name != "st_intersects" && i != 0 {
						break // containment is asymmetric
					}
					return e.db.PointsInFeatures(b.pc, b.vt, vtRows), nil
				}
			}
		}
	case "st_within":
		if len(f.Args) == 2 && isPCPoint(b, f.Args[0]) && isVTGeom(b, f.Args[1]) {
			return e.db.PointsInFeatures(b.pc, b.vt, vtRows), nil
		}
	}
	return engine.Selection{}, fmt.Errorf("sql: unsupported join predicate %q", conj.exprString())
}

// --- output phase ---------------------------------------------------------------

// output materialises the SELECT list. For point-cloud and join queries,
// rows index the point cloud and vtRow is -1; for vector queries the rows
// come through vtRows (variadic to keep one signature).
func (e *Executor) output(stmt *SelectStmt, b *binding, rows []int, mode int, ex *engine.Explain, vtRows ...int) (*Result, error) {
	isVector := mode == 0
	if !isVector && rows == nil {
		rows = allRows(b.pc.Len())
	}
	if isVector {
		rows = vtRows
	}

	// Grouped, aggregate or plain projection?
	if len(stmt.GroupBy) > 0 {
		return e.outputGrouped(stmt, b, rows, isVector, ex)
	}
	aggCount := 0
	for _, item := range stmt.Items {
		if _, ok := isAggregate(item.Expr); ok {
			aggCount++
		}
	}
	if aggCount > 0 {
		if aggCount != len(stmt.Items) {
			return nil, fmt.Errorf("sql: cannot mix aggregates and plain columns without GROUP BY")
		}
		return e.outputAggregates(stmt, b, rows, isVector, ex)
	}

	// ORDER BY.
	if stmt.Order != nil {
		keys := make([]Value, len(rows))
		ctx := &evalCtx{b: b, pcRow: -1, vtRow: -1}
		for i, r := range rows {
			setRow(ctx, isVector, r)
			v, err := evalExpr(ctx, stmt.Order.Expr)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		desc := stmt.Order.Desc
		sort.SliceStable(idx, func(a, c int) bool {
			less := valueLess(keys[idx[a]], keys[idx[c]])
			if desc {
				return valueLess(keys[idx[c]], keys[idx[a]])
			}
			return less
		})
		sorted := make([]int, len(rows))
		for i, j := range idx {
			sorted[i] = rows[j]
		}
		rows = sorted
	}
	if stmt.Limit >= 0 && len(rows) > stmt.Limit {
		rows = rows[:stmt.Limit]
	}

	cols, exprs, err := e.expandItems(stmt.Items, b, isVector)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Columns: cols, Explain: ex}
	ctx := &evalCtx{b: b, pcRow: -1, vtRow: -1}
	for _, r := range rows {
		setRow(ctx, isVector, r)
		out := make([]Value, len(exprs))
		for i, ee := range exprs {
			v, err := evalExpr(ctx, ee)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	ex.Add("project", strings.Join(cols, ","), len(rows), len(res.Rows), time.Since(start))
	return res, nil
}

func setRow(ctx *evalCtx, isVector bool, r int) {
	if isVector {
		ctx.vtRow = r
		ctx.pcRow = -1
	} else {
		ctx.pcRow = r
		ctx.vtRow = -1
	}
}

func valueLess(a, b Value) bool {
	if a.Kind == KindNum && b.Kind == KindNum {
		return a.Num < b.Num
	}
	if a.Kind == KindStr && b.Kind == KindStr {
		return a.Str < b.Str
	}
	return false
}

// expandItems resolves * and aliases into output columns and expressions.
func (e *Executor) expandItems(items []SelectItem, b *binding, isVector bool) ([]string, []Expr, error) {
	var cols []string
	var exprs []Expr
	for _, item := range items {
		if _, ok := item.Expr.(Star); ok {
			if isVector {
				for _, name := range []string{vcID, vcClass, vcName, vcGeom} {
					cols = append(cols, name)
					exprs = append(exprs, ColumnRef{Name: name})
				}
				attrs := b.vt.NumericAttrs()
				sort.Strings(attrs)
				for _, a := range attrs {
					cols = append(cols, a)
					exprs = append(exprs, ColumnRef{Name: a})
				}
			} else {
				for _, f := range b.pc.Schema().Fields {
					cols = append(cols, f.Name)
					exprs = append(exprs, ColumnRef{Name: f.Name})
				}
			}
			continue
		}
		name := item.Alias
		if name == "" {
			name = item.Expr.exprString()
		}
		cols = append(cols, name)
		exprs = append(exprs, item.Expr)
	}
	return cols, exprs, nil
}

// outputAggregates computes one result row of aggregates.
func (e *Executor) outputAggregates(stmt *SelectStmt, b *binding, rows []int, isVector bool, ex *engine.Explain) (*Result, error) {
	start := time.Now()
	res := &Result{Explain: ex}
	out := make([]Value, len(stmt.Items))
	for i, item := range stmt.Items {
		f, _ := isAggregate(item.Expr)
		name := item.Alias
		if name == "" {
			name = item.Expr.exprString()
		}
		res.Columns = append(res.Columns, name)
		v, err := e.computeAggregate(b, f, rows, isVector)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	res.Rows = append(res.Rows, out)
	ex.Add("aggregate", "select list", len(rows), 1, time.Since(start))
	return res, nil
}

func (e *Executor) computeAggregate(b *binding, f FuncCall, rows []int, isVector bool) (Value, error) {
	if f.Name == "count" {
		if len(f.Args) == 0 {
			return Value{}, fmt.Errorf("sql: count requires an argument (use count(*))")
		}
		if _, ok := f.Args[0].(Star); ok {
			return numVal(float64(len(rows))), nil
		}
	}
	if len(f.Args) != 1 {
		return Value{}, fmt.Errorf("sql: %s expects one argument", f.Name)
	}
	if v, ok, err := e.kernelAggregate(b, f, rows, isVector); ok {
		return v, err
	}
	ctx := &evalCtx{b: b, pcRow: -1, vtRow: -1}
	// Accumulation matches the engine's aggregate kernels exactly (±Inf
	// seeds, strict compares), so the same aggregate gives the same answer
	// whether it routes through kernelAggregate or this fallback: sum/avg
	// propagate NaN, min/max skip NaN values (they fail every ordered
	// comparison), and an all-NaN selection reports the ±Inf identities.
	var sum float64
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for _, r := range rows {
		setRow(ctx, isVector, r)
		v, err := evalExpr(ctx, f.Args[0])
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindNum {
			return Value{}, fmt.Errorf("sql: %s needs numeric input", f.Name)
		}
		if v.Num < lo {
			lo = v.Num
		}
		if v.Num > hi {
			hi = v.Num
		}
		sum += v.Num
		n++
	}
	switch f.Name {
	case "count":
		return numVal(float64(n)), nil
	case "sum":
		return numVal(sum), nil
	case "avg":
		if n == 0 {
			return Value{Kind: KindNull}, nil
		}
		return numVal(sum / float64(n)), nil
	case "min":
		if n == 0 {
			return Value{Kind: KindNull}, nil
		}
		return numVal(lo), nil
	case "max":
		if n == 0 {
			return Value{Kind: KindNull}, nil
		}
		return numVal(hi), nil
	default:
		return Value{}, fmt.Errorf("sql: unknown aggregate %q", f.Name)
	}
}

// kernelAggregate routes aggregates over a bare point-cloud column through
// the engine's typed aggregate kernels instead of per-row expression
// evaluation. ok reports whether the shape was recognised; when false, the
// caller falls back to the generic path. Results are identical: column
// references evaluate to the same float64 widening the kernels use, and
// accumulation order is unchanged (ascending rows).
func (e *Executor) kernelAggregate(b *binding, f FuncCall, rows []int, isVector bool) (Value, bool, error) {
	if isVector || b.pc == nil {
		return Value{}, false, nil
	}
	col, ok := pcColumnName(b, f.Args[0])
	if !ok {
		return Value{}, false, nil
	}
	var fn engine.AggFunc
	switch f.Name {
	case "count":
		// count(col) over non-null numeric columns is the row count.
		return numVal(float64(len(rows))), true, nil
	case "sum":
		fn = engine.AggSum
	case "avg":
		fn = engine.AggAvg
	case "min":
		fn = engine.AggMin
	case "max":
		fn = engine.AggMax
	default:
		return Value{}, false, nil
	}
	if len(rows) == 0 {
		// SQL semantics over empty input: sum() is 0, the rest are NULL.
		if fn == engine.AggSum {
			return numVal(0), true, nil
		}
		return Value{Kind: KindNull}, true, nil
	}
	v, err := b.pc.Aggregate(rows, fn, col, nil)
	if err != nil {
		return Value{}, true, err
	}
	return numVal(v), true, nil
}

// --- helpers --------------------------------------------------------------------

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// intersectSorted intersects two ascending row-id lists.
func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

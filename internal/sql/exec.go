// The SQL front door. The heavy lifting lives in the prepare/execute
// split: plan.go builds an immutable queryPlan per statement, run.go
// executes it. This file holds the Executor itself and its bounded
// statement cache, which memoises PreparedQuery objects by exact statement
// text so the interactive workload's repeated statements skip parsing,
// binding, conjunct classification and kernel compilation entirely; table
// epochs (captured in the plan, revalidated per run) keep cached plans
// from ever serving state bound to moved arrays.
package sql

import (
	"sync"
	"sync/atomic"

	"gisnav/internal/engine"
)

// Executor runs SQL statements against an engine catalog.
type Executor struct {
	db    *engine.DB
	stmts stmtCache
}

// New returns an executor over db.
func New(db *engine.DB) *Executor { return &Executor{db: db} }

// Result is a completed query: column names, value rows, and the operator
// trace (the demo's per-operator EXPLAIN view; nil for untraced runs).
// Columns is shared with the statement's plan — treat it as read-only.
type Result struct {
	Columns []string
	Rows    [][]Value
	Explain *engine.Explain
}

// Query executes one SELECT statement, serving the plan from the
// executor's statement cache when the exact same text ran before. Cached
// statements skip parse/bind/classify/compile; epoch revalidation inside
// Run guarantees an append between two calls is observed by the second.
func (e *Executor) Query(src string) (*Result, error) {
	if pq := e.stmts.lookup(src); pq != nil {
		return pq.RunTraced()
	}
	pq, err := e.Prepare(src)
	if err != nil {
		return nil, err
	}
	e.stmts.insert(src, pq)
	return pq.RunTraced()
}

// Exec plans and executes a parsed statement, bypassing the statement
// cache (there is no reliable text key for an externally built AST).
func (e *Executor) Exec(stmt *SelectStmt) (*Result, error) {
	pq, err := e.PrepareStmt(stmt)
	if err != nil {
		return nil, err
	}
	return pq.RunTraced()
}

// --- statement cache --------------------------------------------------------

// maxCachedStmts bounds the statement cache. A navigation session re-uses
// a handful of statement texts; an ad-hoc workload generating unbounded
// distinct texts must not grow the map forever, so past the bound the
// whole cache is dropped and rebuilt from the live working set (the same
// policy as the engine's kernel plan cache).
const maxCachedStmts = 256

// stmtCache memoises PreparedQuery objects by exact statement text.
type stmtCache struct {
	mu    sync.Mutex
	stmts map[string]*PreparedQuery

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

// lookup returns the cached statement for src, counting hit/miss.
func (c *stmtCache) lookup(src string) *PreparedQuery {
	c.mu.Lock()
	pq := c.stmts[src]
	c.mu.Unlock()
	if pq != nil {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return pq
}

// insert stores pq under src, resetting the cache when it outgrew its
// bound. Parse and plan errors are never cached.
func (c *stmtCache) insert(src string, pq *PreparedQuery) {
	c.mu.Lock()
	if c.stmts == nil || len(c.stmts) >= maxCachedStmts {
		c.stmts = make(map[string]*PreparedQuery, 16)
	}
	c.stmts[src] = pq
	c.mu.Unlock()
}

// StmtCacheStats reports the statement cache's effectiveness counters.
// Invalidations counts epoch-forced replans of this executor's prepared
// statements (cached or standalone): each one is an append observed by the
// SQL layer, the signal the invalidation tests assert on.
type StmtCacheStats struct {
	Entries       int
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// StmtCacheStats snapshots the executor's statement cache.
func (e *Executor) StmtCacheStats() StmtCacheStats {
	c := &e.stmts
	c.mu.Lock()
	entries := len(c.stmts)
	c.mu.Unlock()
	return StmtCacheStats{
		Entries:       entries,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

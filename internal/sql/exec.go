// The SQL front door. The heavy lifting lives in the prepare/execute
// split: plan.go builds an immutable queryPlan per statement, run.go
// executes it. This file holds the Executor itself and its bounded
// statement cache, which memoises PreparedQuery objects by statement SHAPE —
// the auto-parameterised text plus literal type signature (params.go) — so
// the interactive workload's repeated statements skip parsing, binding,
// conjunct classification and kernel compilation even when every step
// changes the literal constants (the pan/zoom sweep). A shape hit re-binds
// the cached plan skeleton to the incoming literal vector; a miss prepares
// and inserts. Table epochs (captured in the plan, revalidated per run)
// keep cached plans from ever serving state bound to moved arrays.
package sql

import (
	"context"
	"sync"
	"sync/atomic"

	"gisnav/internal/engine"
)

// Executor runs SQL statements against an engine catalog.
type Executor struct {
	db       *engine.DB
	stmts    stmtCache
	gate     gate
	parallel atomic.Int32
}

// New returns an executor over db.
func New(db *engine.DB) *Executor { return &Executor{db: db} }

// SetParallelism caps the morsel fan-out degree of this executor's runs:
// n partitions at most per operator, 1 forcing every operator serial, and
// any n <= 0 selecting the default (defer to each table's auto-parallel
// setting) — the same clamping rule as SetMaxInFlight, so nonsensical
// arguments from config plumbing degrade to defaults instead of to an
// accidental serial-only or unbounded mode. The engine still clamps the
// effective degree per operator from the driving row count, so small
// selections stay serial whatever the cap (see engine.Run.SetMaxParallel).
// Safe to change while queries are in flight; in-flight runs keep the
// degree they started with.
func (e *Executor) SetParallelism(n int) {
	if n <= 0 {
		n = 0
	}
	e.parallel.Store(int32(n))
}

// Result is a completed query: column names, value rows, and the operator
// trace (the demo's per-operator EXPLAIN view; nil for untraced runs).
// Columns is shared with the statement's plan — treat it as read-only.
type Result struct {
	Columns []string
	Rows    [][]Value
	Explain *engine.Explain
}

// Query executes one SELECT statement through the two-level lookup: the
// statement text is normalised into (shape, literal vector); a shape hit
// re-binds the cached plan skeleton to the new literals and runs (no parse
// beyond the lexer, no classification, no kernel compile — the EXPLAIN
// trace's "plan" step says "rebound"); a miss parses, plans, inserts and
// runs ("planned"). Epoch revalidation inside run guarantees an append
// between two calls is observed by the second.
func (e *Executor) Query(src string) (*Result, error) {
	return e.query(context.Background(), src, &engine.Explain{})
}

// QueryContext is Query under a context: the run passes the admission
// gate (lifecycle.go), kernel loops poll ctx's done channel at block
// boundaries, and a fired context surfaces as ctx.Err() with every pooled
// buffer already recycled. A context without deadline or cancel behaves
// exactly like Query.
func (e *Executor) QueryContext(ctx context.Context, src string) (*Result, error) {
	return e.query(ctx, src, &engine.Explain{})
}

// QueryUntraced is Query without the per-operator EXPLAIN trace: the same
// two-level shape lookup and rebind fast path, but the run allocates
// nothing for tracing — the entry point for latency-critical callers (the
// pan/zoom benchmark measures this surface against the prepared Run path).
func (e *Executor) QueryUntraced(src string) (*Result, error) {
	return e.query(context.Background(), src, nil)
}

// QueryUntracedContext is QueryUntraced under a context (see QueryContext).
func (e *Executor) QueryUntracedContext(ctx context.Context, src string) (*Result, error) {
	return e.query(ctx, src, nil)
}

// query is the shared two-level lookup behind Query and QueryUntraced, with
// a front cache short-circuiting the lexer: parameterize is a pure function
// of the statement text, so an exact text seen before maps straight to its
// interned (shape key, literal vector) without re-lexing — the remaining
// per-step overhead for very small viewports where the scan no longer
// dominates. The interned vector is shared across calls and must therefore
// never be mutated downstream (rebind copies out of it; plans copy it).
func (e *Executor) query(ctx context.Context, src string, ex *engine.Explain) (*Result, error) {
	if key, params, ok := e.stmts.frontLookup(src); ok {
		if pq := e.stmts.lookup(key); pq != nil {
			return pq.lifecycleRun(ctx, ex, params, originCached)
		}
		// Interned text whose statement was evicted: fall through and
		// re-lex, the same path as a brand-new text.
	}
	key, toks, params, err := parameterize(src)
	if err != nil {
		return nil, err
	}
	if pq := e.stmts.lookup(key); pq != nil {
		e.stmts.frontInsert(src, key, params)
		return pq.lifecycleRun(ctx, ex, params, originCached)
	}
	stmt, err := parseTokens(toks)
	if err != nil {
		return nil, err
	}
	pq, err := e.prepareBound(stmt, params)
	if err != nil {
		return nil, err
	}
	e.stmts.insert(key, pq)
	e.stmts.frontInsert(src, key, params)
	return pq.lifecycleRun(ctx, ex, params, originPlanned)
}

// Exec plans and executes a parsed statement, bypassing the statement
// cache (there is no reliable shape key for an externally built AST).
func (e *Executor) Exec(stmt *SelectStmt) (*Result, error) {
	pq, err := e.PrepareStmt(stmt)
	if err != nil {
		return nil, err
	}
	return pq.RunTraced()
}

// --- statement cache --------------------------------------------------------

// maxCachedStmts bounds the statement cache. With literals normalised out
// of the key, a navigation session needs a handful of SHAPES no matter how
// many distinct texts it issues; an ad-hoc workload generating unbounded
// distinct shapes must still not grow the map forever, so past the bound
// the whole cache is dropped and rebuilt from the live working set (the
// same policy as the engine's kernel plan cache).
const maxCachedStmts = 256

// maxFrontEntries bounds the text→shape front cache. A navigation session
// revisits a bounded set of exact texts (zoom levels, bookmarked viewports);
// an unbounded ad-hoc stream must not grow the map, so past the bound it is
// dropped and rebuilt from the live working set, like the caches below it.
const maxFrontEntries = 512

// frontEntry is one interned parameterization: the shape key plus the
// literal vector extracted from exactly this text. The vector is shared
// with every lookup of the text — read-only by contract.
type frontEntry struct {
	key    string
	params []Value
}

// stmtCache memoises PreparedQuery objects by statement shape, fronted by
// the text→shape intern map (see Executor.query).
type stmtCache struct {
	mu    sync.Mutex
	stmts map[string]*PreparedQuery
	front map[string]frontEntry

	hits          atomic.Uint64
	misses        atomic.Uint64
	shapeHits     atomic.Uint64
	rebinds       atomic.Uint64
	invalidations atomic.Uint64
	frontHits     atomic.Uint64
}

// frontLookup returns the interned shape of an exact statement text.
func (c *stmtCache) frontLookup(src string) (key string, params []Value, ok bool) {
	c.mu.Lock()
	fe, ok := c.front[src]
	c.mu.Unlock()
	if ok {
		c.frontHits.Add(1)
	}
	return fe.key, fe.params, ok
}

// frontInsert interns one text's parameterization, resetting the map past
// its bound. Only successfully parameterized texts reach here, so errors
// are never interned.
func (c *stmtCache) frontInsert(src, key string, params []Value) {
	c.mu.Lock()
	if c.front == nil || len(c.front) >= maxFrontEntries {
		c.front = make(map[string]frontEntry, 16)
	}
	c.front[src] = frontEntry{key: key, params: params}
	c.mu.Unlock()
}

// lookup returns the cached statement for the shape key, counting hit/miss.
func (c *stmtCache) lookup(key string) *PreparedQuery {
	c.mu.Lock()
	pq := c.stmts[key]
	c.mu.Unlock()
	if pq != nil {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return pq
}

// insert stores pq under the shape key, resetting the cache when it outgrew
// its bound. Parse and plan errors are never cached. The front cache drops
// with the statement cache: its entries stay valid (parameterize is pure),
// but texts whose statements were evicted would otherwise pin dead interns.
func (c *stmtCache) insert(key string, pq *PreparedQuery) {
	c.mu.Lock()
	if c.stmts == nil || len(c.stmts) >= maxCachedStmts {
		c.stmts = make(map[string]*PreparedQuery, 16)
		c.front = nil
	}
	c.stmts[key] = pq
	c.mu.Unlock()
}

// StmtCacheStats reports the statement cache's effectiveness counters.
//
// Hits counts shape-cache hits of any kind; ShapeHits is the subset whose
// literal vector differed from the one currently bound — exactly the
// queries the PR 3 exact-text cache would have missed (every pan/zoom step
// lands here). Rebinds counts successful skeleton re-binds; ShapeHits
// minus Rebinds is the (rare) classification-divergence replans.
// Invalidations counts epoch-forced replans of this executor's prepared
// statements (cached or standalone): each one is an append observed by the
// SQL layer, the signal the invalidation tests assert on. FrontHits counts
// exact-text front-cache hits — queries that skipped the lexer entirely.
type StmtCacheStats struct {
	Entries       int
	FrontEntries  int
	Hits          uint64
	Misses        uint64
	ShapeHits     uint64
	Rebinds       uint64
	Invalidations uint64
	FrontHits     uint64
}

// StmtCacheStats snapshots the executor's statement cache.
func (e *Executor) StmtCacheStats() StmtCacheStats {
	c := &e.stmts
	c.mu.Lock()
	entries := len(c.stmts)
	frontEntries := len(c.front)
	c.mu.Unlock()
	return StmtCacheStats{
		Entries:       entries,
		FrontEntries:  frontEntries,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		ShapeHits:     c.shapeHits.Load(),
		Rebinds:       c.rebinds.Load(),
		Invalidations: c.invalidations.Load(),
		FrontHits:     c.frontHits.Load(),
	}
}

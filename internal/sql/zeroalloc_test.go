package sql

import (
	"testing"
)

// Steady-state allocation enforcement for the prepared-statement pipeline,
// the SQL-layer extension of internal/engine/zeroalloc_test.go: once a
// statement is prepared and the engine caches are warm, a repeated run may
// allocate only its result materialisation — the Result struct, its row
// list and one []Value per output row. Selection vectors, imprint
// candidate ranges, grid scratch, kernel compilation and the vector-table
// row sets are all pooled or hoisted into the plan. Treat a failure here
// as a fast-path regression, not a flaky test (AllocsPerRun runs the
// closure once as warm-up, which is exactly the cold query that fills the
// caches and pools).

// runSteady measures the steady-state allocations of one prepared query.
func runSteady(t *testing.T, e *Executor, q string) (allocs float64, rows int) {
	t.Helper()
	pq, err := e.Prepare(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	res, err := pq.Run()
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	rows = len(res.Rows)
	allocs = testing.AllocsPerRun(50, func() {
		if _, err := pq.Run(); err != nil {
			t.Fatal(err)
		}
	})
	return allocs, rows
}

// TestPreparedAggregateSteadyStateAllocs covers the navigation shape the
// paper's workload repeats: bbox region + thematic kernel predicates +
// one compiled generic conjunct, aggregated. The whole pipeline above the
// result row must be allocation-free: 1 Result + 1 row list + 1 row.
func TestPreparedAggregateSteadyStateAllocs(t *testing.T) {
	e, _, _, _ := testDB(t)
	q := `SELECT count(*) FROM ahn2
		WHERE ST_Contains(ST_MakeEnvelope(150, 150, 1700, 1620), ST_Point(x, y))
		  AND classification = 2 AND intensity BETWEEN 10 AND 60000
		  AND z - intensity < 100000`
	allocs, rows := runSteady(t, e, q)
	if rows != 1 {
		t.Fatalf("aggregate produced %d rows, want 1", rows)
	}
	if allocs > 3 {
		t.Fatalf("prepared bbox+attribute aggregate allocates %.1f objects/op, want <= 3 (result only)", allocs)
	}
}

// TestPreparedVectorSteadyStateAllocs covers the pooled vector-table path:
// the identity row set, the class-dictionary scan buffer and the sorted
// intersection all draw from the engine pool.
func TestPreparedVectorSteadyStateAllocs(t *testing.T) {
	e, _, _, _ := testDB(t)
	allocs, _ := runSteady(t, e, `SELECT count(*) FROM osm WHERE class = 'motorway'`)
	if allocs > 3 {
		t.Fatalf("prepared vector class count allocates %.1f objects/op, want <= 3 (result only)", allocs)
	}
}

// TestPreparedGroupedSteadyStateAllocs pins the vectorized dense-path
// grouped run (PR 5) to its result materialisation: the engine side —
// grouped kernels, pooled accumulator banks, the plan-held result record —
// allocates nothing, so a steady run may allocate only the Result, its row
// list, and one []Value per group.
func TestPreparedGroupedSteadyStateAllocs(t *testing.T) {
	e, _, _, _ := testDB(t)
	q := `SELECT classification, count(*) AS n, avg(z) AS mean_z, min(z), max(intensity) FROM ahn2
		WHERE ST_Contains(ST_MakeEnvelope(150, 150, 1700, 1620), ST_Point(x, y))
		GROUP BY classification`
	pq, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if pq.plan.grouped.keyCol == "" {
		t.Fatal("grouped statement did not vectorize; the guard is vacuous")
	}
	allocs, rows := runSteady(t, e, q)
	if rows == 0 {
		t.Fatal("grouped query matched no groups; the measurement is vacuous")
	}
	// Budget: Result + row-list + one []Value per group row.
	budget := float64(2 + rows)
	if allocs > budget {
		t.Fatalf("prepared dense grouped run allocates %.1f objects/op for %d groups, budget %.0f (result only)",
			allocs, rows, budget)
	}
}

// TestPreparedProjectionSteadyStateAllocs pins the projection path to its
// result materialisation: one Result, one []Value per emitted row, and the
// logarithmic growth appends of the row list.
func TestPreparedProjectionSteadyStateAllocs(t *testing.T) {
	e, _, _, _ := testDB(t)
	q := `SELECT x, y FROM ahn2
		WHERE ST_Contains(ST_MakeEnvelope(150, 150, 400, 400), ST_Point(x, y))
		  AND classification = 2 LIMIT 4`
	allocs, rows := runSteady(t, e, q)
	if rows == 0 {
		t.Fatal("projection matched no rows; the measurement is vacuous")
	}
	// Budget: Result + per-row []Value + row-list growth (≤ log2(rows)+1).
	budget := float64(1 + rows + rows)
	if allocs > budget {
		t.Fatalf("prepared projection allocates %.1f objects/op for %d rows, budget %.0f (result rows only)",
			allocs, rows, budget)
	}
}

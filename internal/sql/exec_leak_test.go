package sql

import (
	"math"
	"strings"
	"testing"

	"gisnav/internal/engine"
)

// Pool-accounting regression tests: every engine-owned selection vector a
// query draws must return to the pool on every exit path, including errors
// raised after the spatial step. Outstanding counts pool gets minus
// recycles, so a closed workload must leave it unchanged.

// outstandingDelta runs fn and returns the selection-pool drift it caused.
func outstandingDelta(t *testing.T, fn func()) int64 {
	t.Helper()
	before := engine.SelectionPoolStats().Outstanding
	fn()
	return engine.SelectionPoolStats().Outstanding - before
}

func TestNoVectorLeakOnGenericFilterError(t *testing.T) {
	e, _, _, _ := testDB(t)
	// The region selects rows (engine-owned pooled vector), then the
	// unknown column makes the generic conjunct fail row evaluation.
	q := `SELECT count(*) FROM ahn2
	      WHERE ST_Contains(ST_MakeEnvelope(0, 0, 1500, 1500), ST_Point(x, y))
	        AND nosuchcol > 1`
	delta := outstandingDelta(t, func() {
		if _, err := e.Query(q); err == nil || !strings.Contains(err.Error(), "unknown column") {
			t.Fatalf("want unknown-column error, got %v", err)
		}
	})
	if delta != 0 {
		t.Fatalf("generic-filter error leaked %d pooled vectors", delta)
	}
}

func TestNoVectorLeakOnCompiledFilterError(t *testing.T) {
	e, _, _, _ := testDB(t)
	// Compiled conjunct with a runtime division-by-zero.
	q := `SELECT count(*) FROM ahn2
	      WHERE ST_Contains(ST_MakeEnvelope(0, 0, 1500, 1500), ST_Point(x, y))
	        AND z / (classification - classification) > 1`
	delta := outstandingDelta(t, func() {
		if _, err := e.Query(q); err == nil || !strings.Contains(err.Error(), "division by zero") {
			t.Fatalf("want division-by-zero error, got %v", err)
		}
	})
	if delta != 0 {
		t.Fatalf("compiled-filter error leaked %d pooled vectors", delta)
	}
}

func TestNoVectorLeakOnJoinGenericError(t *testing.T) {
	e, _, _, _ := testDB(t)
	// The spatial join produces engine-owned rows; the point-side generic
	// conjunct then errors.
	q := `SELECT count(*) FROM ahn2, ua
	      WHERE ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 30)
	        AND st_x(ST_Point(ahn2.x, ahn2.y)) / (ahn2.classification - ahn2.classification) > 1`
	delta := outstandingDelta(t, func() {
		if _, err := e.Query(q); err == nil {
			t.Fatal("want an error from the point-side conjunct")
		}
	})
	if delta != 0 {
		t.Fatalf("join error path leaked %d pooled vectors", delta)
	}
}

func TestNoVectorLeakOnSuccess(t *testing.T) {
	e, _, _, _ := testDB(t)
	q := `SELECT count(*) FROM ahn2
	      WHERE ST_Contains(ST_MakeEnvelope(0, 0, 1500, 1500), ST_Point(x, y))
	        AND classification = 2 AND z - intensity < 1000`
	delta := outstandingDelta(t, func() {
		mustQuery(t, e, q)
	})
	if delta != 0 {
		t.Fatalf("successful query leaked %d pooled vectors", delta)
	}
}

// TestJoinVTIntersectsFastPath verifies the join's vector phase routes
// ST_Intersects(geom, <const>) through the R-tree (visible as a
// vector.intersects step) instead of the row-wise interpreter, and agrees
// with the interpreter on the result.
func TestJoinVTIntersectsFastPath(t *testing.T) {
	e, _, _, _ := testDB(t)
	q := `SELECT count(*) FROM ahn2, ua
	      WHERE ST_Intersects(ua.geom, ST_MakeEnvelope(0, 0, 900, 900))
	        AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 25)`
	res := mustQuery(t, e, q)
	var sawRtree bool
	for _, s := range res.Explain.Steps {
		if s.Op == "vector.intersects" {
			sawRtree = true
		}
		if s.Op == "filter.generic" && strings.Contains(s.Detail, "st_intersects") {
			t.Fatalf("vt-side ST_Intersects fell to the interpreter: %+v", s)
		}
	}
	if !sawRtree {
		t.Fatalf("no vector.intersects step in join trace: %+v", res.Explain.Steps)
	}

	// Same query with the geometry argument order flipped still hits it.
	flipped := mustQuery(t, e, `SELECT count(*) FROM ahn2, ua
	      WHERE ST_Intersects(ST_MakeEnvelope(0, 0, 900, 900), ua.geom)
	        AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 25)`)
	if res.Rows[0][0].Num != flipped.Rows[0][0].Num {
		t.Fatalf("flipped argument order changed the count: %v vs %v",
			res.Rows[0][0].Num, flipped.Rows[0][0].Num)
	}
}

// TestSQLDWithinBadDistances covers the SQL surface of the distance
// edge-case hardening: scalar form, accelerated region form, and join form
// must all yield zero rows (not errors, not full tables) for negative, NaN
// and infinite distances.
func TestSQLDWithinBadDistances(t *testing.T) {
	e, _, _, _ := testDB(t)
	// 1e308 * 10 overflows to +Inf in float64 arithmetic.
	for _, d := range []string{"-5", "(0 - 1) * 10", "1e308 * 10", "0 - 1e308 * 10"} {
		q := `SELECT count(*) FROM ahn2
		      WHERE ST_DWithin(ST_GeomFromText('LINESTRING (0 1000, 2000 1000)'), ST_Point(x, y), ` + d + `)`
		res := mustQuery(t, e, q)
		if got := res.Rows[0][0].Num; got != 0 {
			t.Fatalf("pc DWithin d=%s matched %g rows, want 0", d, got)
		}

		jq := `SELECT count(*) FROM ahn2, ua
		       WHERE ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), ` + d + `)`
		res = mustQuery(t, e, jq)
		if got := res.Rows[0][0].Num; got != 0 {
			t.Fatalf("join DWithin d=%s matched %g rows, want 0", d, got)
		}
	}

	// Double-check the overflow trick produced the infinity the loop above
	// claims to exercise.
	v := mustQuery(t, e, "SELECT 1e308 * 10 FROM ua LIMIT 1")
	if !math.IsInf(v.Rows[0][0].Num, 1) {
		t.Fatalf("1e308 * 10 evaluated to %v, want +Inf", v.Rows[0][0].Num)
	}

	// Empty geometry through WKT: zero matches, no error.
	res := mustQuery(t, e, `SELECT count(*) FROM ahn2
	      WHERE ST_DWithin(ST_GeomFromText('POLYGON EMPTY'), ST_Point(x, y), 100)`)
	if got := res.Rows[0][0].Num; got != 0 {
		t.Fatalf("empty geometry DWithin matched %g rows, want 0", got)
	}
}

package sql

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/synth"
)

// Prepared-statement pipeline tests: plan reuse, the statement cache, and
// the epoch invalidation contract (an append between two executions of the
// same prepared/cached statement must be observed by the second — no stale
// plans, ever).

// countQuery is a full-extent bbox count with a thematic kernel predicate
// and a compiled generic conjunct: its result equals the table's row count
// (every synthetic point lies inside the extent, classification is always
// >= 0 and z - z < 1 holds everywhere), so correctness after an append is
// exactly "count == new Len()".
const countQuery = `SELECT count(*) FROM ahn2
	WHERE ST_Contains(ST_MakeEnvelope(-1e9, -1e9, 1e9, 1e9), ST_Point(x, y))
	  AND classification >= 0 AND z - z < 1`

// appendMorePoints grows the test cloud by one more synthetic tile,
// exercising the append path (AppendLAS → InvalidateIndexes → epoch bump).
func appendMorePoints(t *testing.T, e *Executor) int {
	t.Helper()
	region := geom.NewEnvelope(0, 0, 2000, 2000)
	terrain := synth.NewTerrain(81, region)
	pts := synth.GenerateTile(terrain, synth.TileSpec{Env: region, Density: 0.002, Seed: 99})
	if len(pts) == 0 {
		t.Fatal("synthetic append tile is empty")
	}
	pc, err := e.db.PointCloud("ahn2")
	if err != nil {
		t.Fatal(err)
	}
	pc.AppendLAS(pts)
	return len(pts)
}

func TestPreparedQueryMatchesQuery(t *testing.T) {
	e, pc, _, _ := testDB(t)
	pq, err := e.Prepare(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := pq.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := int(res.Rows[0][0].Num); got != pc.Len() {
			t.Fatalf("run %d: count = %d, want %d", i, got, pc.Len())
		}
		if res.Explain != nil {
			t.Fatal("untraced Run should carry no explain")
		}
	}
	res, err := pq.RunTraced()
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain == nil || len(res.Explain.Steps) == 0 {
		t.Fatal("RunTraced should carry the operator trace")
	}
}

// TestPreparedQueryObservesAppend is the acceptance-criterion test: an
// append between two Run calls of the same prepared statement is observed
// by the second call.
func TestPreparedQueryObservesAppend(t *testing.T) {
	e, pc, _, _ := testDB(t)
	pq, err := e.Prepare(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Run()
	if err != nil {
		t.Fatal(err)
	}
	before := int(res.Rows[0][0].Num)
	if before != pc.Len() {
		t.Fatalf("pre-append count = %d, want %d", before, pc.Len())
	}

	added := appendMorePoints(t, e)

	res, err = pq.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := int(res.Rows[0][0].Num); got != before+added {
		t.Fatalf("post-append count = %d, want %d (stale plan served?)", got, before+added)
	}
}

// TestStmtCacheEpochInvalidation drives the same contract through
// Executor.Query's statement cache and checks the observability counters:
// the second identical query is a cache hit, and the append forces both an
// SQL-layer plan invalidation and an engine-layer kernel recompile
// (PlanCacheStats misses move, because InvalidateIndexes dropped the
// compiled kernels the cached plan's predicates route through).
func TestStmtCacheEpochInvalidation(t *testing.T) {
	e, pc, _, _ := testDB(t)

	res := mustQuery(t, e, countQuery)
	before := int(res.Rows[0][0].Num)
	s0 := e.StmtCacheStats()
	if s0.Entries == 0 || s0.Misses == 0 {
		t.Fatalf("first query should miss and populate the cache: %+v", s0)
	}

	res = mustQuery(t, e, countQuery)
	if int(res.Rows[0][0].Num) != before {
		t.Fatal("repeat of cached statement changed the count without an append")
	}
	s1 := e.StmtCacheStats()
	if s1.Hits != s0.Hits+1 {
		t.Fatalf("second identical query should hit the cache: %+v -> %+v", s0, s1)
	}
	if s1.Invalidations != s0.Invalidations {
		t.Fatalf("no append happened, yet invalidations moved: %+v -> %+v", s0, s1)
	}

	added := appendMorePoints(t, e)
	engineMisses := pc.PlanCacheStats().Misses

	res = mustQuery(t, e, countQuery)
	if got := int(res.Rows[0][0].Num); got != before+added {
		t.Fatalf("cached statement after append = %d, want %d", got, before+added)
	}
	s2 := e.StmtCacheStats()
	if s2.Invalidations != s1.Invalidations+1 {
		t.Fatalf("append should force exactly one epoch replan: %+v -> %+v", s1, s2)
	}
	if got := pc.PlanCacheStats().Misses; got <= engineMisses {
		t.Fatalf("append should force a kernel recompile (engine plan-cache miss): %d -> %d",
			engineMisses, got)
	}
}

// TestVectorEpochReplansStarExpansion: a vector-table append that
// introduces a new numeric attribute must be visible to a cached SELECT *
// — star expansion happens at plan time, so only the vt epoch replan can
// surface the new column.
func TestVectorEpochReplansStarExpansion(t *testing.T) {
	e, _, _, ua := testDB(t)
	q := "SELECT * FROM ua LIMIT 1"
	res := mustQuery(t, e, q)
	for _, c := range res.Columns {
		if c == "brand_new_attr" {
			t.Fatal("attribute exists before the append")
		}
	}
	ncols := len(res.Columns)

	ua.Append(999999, "99999", "epoch probe", geom.NewEnvelope(1, 1, 2, 2).ToPolygon(),
		map[string]float64{"brand_new_attr": 42})

	res = mustQuery(t, e, q)
	if len(res.Columns) != ncols+1 {
		t.Fatalf("columns after attribute append = %v, want %d", res.Columns, ncols+1)
	}
	found := false
	for _, c := range res.Columns {
		if c == "brand_new_attr" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cached star expansion missed the appended attribute: %v", res.Columns)
	}
}

// TestVectorEpochObservesAppend covers the vector row-count contract.
func TestVectorEpochObservesAppend(t *testing.T) {
	e, _, osm, _ := testDB(t)
	pq, err := e.Prepare("SELECT count(*) FROM osm")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Run()
	if err != nil {
		t.Fatal(err)
	}
	before := int(res.Rows[0][0].Num)
	osm.Append(424242, "motorway", "appended road",
		geom.MustParseWKT("LINESTRING (0 0, 10 10)"), nil)
	res, err = pq.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := int(res.Rows[0][0].Num); got != before+1 {
		t.Fatalf("post-append vector count = %d, want %d", got, before+1)
	}
}

// TestConcurrentSameStatement: concurrent Query calls with the identical
// text share one cache entry but must not corrupt each other's results
// (overlapping runs execute a transient plan instead of sharing the cached
// plan's kernel scratch). Meaningful under -race.
func TestConcurrentSameStatement(t *testing.T) {
	e, pc, _, _ := testDB(t)
	want := float64(pc.Len())
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := e.Query(countQuery)
				if errors.Is(err, ErrOverloaded) {
					// The admission gate (2×GOMAXPROCS slots) sheds the
					// burst on small machines; this test is about result
					// integrity, not admission, so back off and retry.
					runtime.Gosched()
					i--
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				if got := res.Rows[0][0].Num; got != want {
					errs <- fmt.Errorf("concurrent count = %g, want %g", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStmtCacheBound: unbounded distinct statement texts must not grow the
// cache past its bound (drop-and-rebuild policy, like the engine cache).
func TestStmtCacheBound(t *testing.T) {
	e, _, _, _ := testDB(t)
	for i := 0; i < maxCachedStmts+10; i++ {
		mustQuery(t, e, fmt.Sprintf("SELECT count(*) FROM osm WHERE id = %d", i))
	}
	if got := e.StmtCacheStats().Entries; got > maxCachedStmts {
		t.Fatalf("cache grew to %d entries, bound is %d", got, maxCachedStmts)
	}
}

// TestPreparedJoinAndVectorReuse: joins and vector scans run correctly
// through repeated prepared execution (pooled row sets narrow in place and
// recycle; a second run must see the same result).
func TestPreparedJoinAndVectorReuse(t *testing.T) {
	e, _, _, _ := testDB(t)
	queries := []string{
		`SELECT count(*) FROM ahn2, ua
		   WHERE ua.class = '12210' AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 30)`,
		`SELECT count(*) FROM osm WHERE class = 'motorway'`,
		`SELECT count(*) FROM osm
		   WHERE ST_Intersects(geom, ST_MakeEnvelope(0, 0, 900, 900)) AND id >= 0`,
	}
	for _, q := range queries {
		pq, err := e.Prepare(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		first, err := pq.Run()
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for i := 0; i < 3; i++ {
			res, err := pq.Run()
			if err != nil {
				t.Fatalf("%s run %d: %v", q, i, err)
			}
			if res.Rows[0][0].Num != first.Rows[0][0].Num {
				t.Fatalf("%s: run %d count %v, first run %v",
					q, i, res.Rows[0][0].Num, first.Rows[0][0].Num)
			}
		}
		// The reference interpreter-era answer via the traced path.
		traced := mustQuery(t, e, q)
		if traced.Rows[0][0].Num != first.Rows[0][0].Num {
			t.Fatalf("%s: traced %v, untraced %v", q, traced.Rows[0][0].Num, first.Rows[0][0].Num)
		}
	}
}

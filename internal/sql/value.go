package sql

import (
	"fmt"
	"strings"

	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/grid"
)

// ValueKind tags runtime values.
type ValueKind uint8

// Runtime value kinds.
const (
	KindNull ValueKind = iota
	KindNum
	KindStr
	KindBool
	KindGeom
)

// Value is one runtime SQL value.
type Value struct {
	Kind ValueKind
	Num  float64
	Str  string
	Bool bool
	Geom geom.Geometry
}

// Num returns a numeric value.
func numVal(v float64) Value { return Value{Kind: KindNum, Num: v} }

// strVal returns a string value.
func strVal(s string) Value { return Value{Kind: KindStr, Str: s} }

// boolVal returns a boolean value.
func boolVal(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// geomVal returns a geometry value.
func geomVal(g geom.Geometry) Value { return Value{Kind: KindGeom, Geom: g} }

// String renders the value for result display.
func (v Value) String() string {
	switch v.Kind {
	case KindNum:
		return trimFloat(v.Num)
	case KindStr:
		return v.Str
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case KindGeom:
		return v.Geom.WKT()
	default:
		return "NULL"
	}
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// truthy interprets a value as a predicate result.
func (v Value) truthy() bool {
	switch v.Kind {
	case KindBool:
		return v.Bool
	case KindNum:
		return v.Num != 0
	default:
		return false
	}
}

// binding maps FROM aliases onto engine tables. At most one point cloud and
// one vector table participate (the demo's join shape).
type binding struct {
	pc      *engine.PointCloud
	pcNames []string // alias and table name
	vt      *engine.VectorTable
	vtNames []string
}

// isPCName reports whether qualifier names the point cloud (empty matches).
func (b *binding) isPCName(q string) bool {
	if b.pc == nil {
		return false
	}
	if q == "" {
		return true
	}
	for _, n := range b.pcNames {
		if strings.EqualFold(n, q) {
			return true
		}
	}
	return false
}

func (b *binding) isVTName(q string) bool {
	if b.vt == nil {
		return false
	}
	if q == "" {
		return true
	}
	for _, n := range b.vtNames {
		if strings.EqualFold(n, q) {
			return true
		}
	}
	return false
}

// evalCtx is the row context of the generic evaluator. Row indices of -1
// mean "no current row" for that table. ps is the statement's bound literal
// vector; ParamRef nodes read it, so a rebound plan's interpreter steps see
// the new constants without any AST rewrite.
type evalCtx struct {
	b     *binding
	ps    []Value
	pcRow int
	vtRow int
}

// vector table pseudo-columns.
const (
	vcID    = "id"
	vcClass = "class"
	vcName  = "name"
	vcGeom  = "geom"
)

// evalExpr evaluates an expression in the row context.
func evalExpr(ctx *evalCtx, e Expr) (Value, error) {
	switch t := e.(type) {
	case NumberLit:
		return numVal(t.Value), nil
	case StringLit:
		return strVal(t.Value), nil
	case BoolLit:
		return boolVal(t.Value), nil
	case ParamRef:
		if t.Index >= 0 && t.Index < len(ctx.ps) {
			return ctx.ps[t.Index], nil
		}
		return Value{}, fmt.Errorf("sql: unbound parameter $%d", t.Index+1)
	case Star:
		return Value{}, fmt.Errorf("sql: '*' is only valid in SELECT list or count(*)")
	case ColumnRef:
		return evalColumn(ctx, t)
	case FuncCall:
		return evalFunc(ctx, t)
	case NotExpr:
		v, err := evalExpr(ctx, t.E)
		if err != nil {
			return Value{}, err
		}
		return boolVal(!v.truthy()), nil
	case BetweenExpr:
		s, err := evalExpr(ctx, t.Subject)
		if err != nil {
			return Value{}, err
		}
		lo, err := evalExpr(ctx, t.Lo)
		if err != nil {
			return Value{}, err
		}
		hi, err := evalExpr(ctx, t.Hi)
		if err != nil {
			return Value{}, err
		}
		if s.Kind != KindNum || lo.Kind != KindNum || hi.Kind != KindNum {
			return Value{}, fmt.Errorf("sql: BETWEEN needs numeric operands")
		}
		return boolVal(s.Num >= lo.Num && s.Num <= hi.Num), nil
	case BinaryExpr:
		return evalBinary(ctx, t)
	default:
		return Value{}, fmt.Errorf("sql: cannot evaluate %T", e)
	}
}

func evalColumn(ctx *evalCtx, c ColumnRef) (Value, error) {
	b := ctx.b
	name := strings.ToLower(c.Name)
	// Point cloud columns take precedence for unqualified refs.
	if b.isPCName(c.Table) && ctx.pcRow >= 0 {
		if col := b.pc.Column(name); col != nil {
			return numVal(col.Value(ctx.pcRow)), nil
		}
	}
	if b.isVTName(c.Table) && ctx.vtRow >= 0 {
		switch name {
		case vcID:
			return numVal(float64(b.vt.ID(ctx.vtRow))), nil
		case vcClass:
			return strVal(b.vt.Class(ctx.vtRow)), nil
		case vcName:
			return strVal(b.vt.Name(ctx.vtRow)), nil
		case vcGeom:
			return geomVal(b.vt.Geometry(ctx.vtRow)), nil
		default:
			for _, attr := range b.vt.NumericAttrs() {
				if strings.EqualFold(attr, name) {
					return numVal(b.vt.Numeric(attr, ctx.vtRow)), nil
				}
			}
		}
	}
	return Value{}, fmt.Errorf("sql: unknown column %q", c.exprString())
}

func evalBinary(ctx *evalCtx, e BinaryExpr) (Value, error) {
	switch e.Op {
	case "AND":
		l, err := evalExpr(ctx, e.L)
		if err != nil {
			return Value{}, err
		}
		if !l.truthy() {
			return boolVal(false), nil
		}
		r, err := evalExpr(ctx, e.R)
		if err != nil {
			return Value{}, err
		}
		return boolVal(r.truthy()), nil
	case "OR":
		l, err := evalExpr(ctx, e.L)
		if err != nil {
			return Value{}, err
		}
		if l.truthy() {
			return boolVal(true), nil
		}
		r, err := evalExpr(ctx, e.R)
		if err != nil {
			return Value{}, err
		}
		return boolVal(r.truthy()), nil
	}
	l, err := evalExpr(ctx, e.L)
	if err != nil {
		return Value{}, err
	}
	r, err := evalExpr(ctx, e.R)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case "+", "-", "*", "/", "%":
		if l.Kind != KindNum || r.Kind != KindNum {
			return Value{}, fmt.Errorf("sql: arithmetic needs numbers")
		}
		switch e.Op {
		case "+":
			return numVal(l.Num + r.Num), nil
		case "-":
			return numVal(l.Num - r.Num), nil
		case "*":
			return numVal(l.Num * r.Num), nil
		case "/":
			if r.Num == 0 {
				return Value{}, fmt.Errorf("sql: division by zero")
			}
			return numVal(l.Num / r.Num), nil
		default:
			// Modulo runs in the int64 domain, so the zero check must too:
			// a fractional denominator like 0.5 truncates to 0 and would
			// otherwise panic the process instead of erroring.
			if int64(r.Num) == 0 {
				return Value{}, fmt.Errorf("sql: modulo by zero")
			}
			return numVal(float64(int64(l.Num) % int64(r.Num))), nil
		}
	case "=", "<>", "<", "<=", ">", ">=":
		return compareValues(l, r, e.Op)
	default:
		return Value{}, fmt.Errorf("sql: unknown operator %q", e.Op)
	}
}

func compareValues(l, r Value, op string) (Value, error) {
	if l.Kind == KindStr && r.Kind == KindStr {
		c := strings.Compare(l.Str, r.Str)
		return boolVal(cmpHolds(c, op)), nil
	}
	if l.Kind == KindNum && r.Kind == KindNum {
		c := 0
		if l.Num < r.Num {
			c = -1
		} else if l.Num > r.Num {
			c = 1
		}
		return boolVal(cmpHolds(c, op)), nil
	}
	if l.Kind == KindBool && r.Kind == KindBool {
		if op == "=" {
			return boolVal(l.Bool == r.Bool), nil
		}
		if op == "<>" {
			return boolVal(l.Bool != r.Bool), nil
		}
	}
	return Value{}, fmt.Errorf("sql: cannot compare %v and %v with %s", l.Kind, r.Kind, op)
}

func cmpHolds(c int, op string) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	default:
		return false
	}
}

// evalFunc dispatches scalar and spatial functions. Aggregates are handled
// by the executor before evaluation reaches here.
func evalFunc(ctx *evalCtx, f FuncCall) (Value, error) {
	argv := make([]Value, len(f.Args))
	for i, a := range f.Args {
		v, err := evalExpr(ctx, a)
		if err != nil {
			return Value{}, err
		}
		argv[i] = v
	}
	switch f.Name {
	case "st_makeenvelope":
		if err := wantArgs(f, argv, KindNum, KindNum, KindNum, KindNum); err != nil {
			return Value{}, err
		}
		env := geom.NewEnvelope(argv[0].Num, argv[1].Num, argv[2].Num, argv[3].Num)
		return geomVal(env.ToPolygon()), nil
	case "st_geomfromtext":
		if err := wantArgs(f, argv, KindStr); err != nil {
			return Value{}, err
		}
		g, err := geom.ParseWKT(argv[0].Str)
		if err != nil {
			return Value{}, fmt.Errorf("sql: %s: %w", f.Name, err)
		}
		return geomVal(g), nil
	case "st_point":
		if err := wantArgs(f, argv, KindNum, KindNum); err != nil {
			return Value{}, err
		}
		return geomVal(geom.Point{X: argv[0].Num, Y: argv[1].Num}), nil
	case "st_x":
		if err := wantArgs(f, argv, KindGeom); err != nil {
			return Value{}, err
		}
		p, ok := argv[0].Geom.(geom.Point)
		if !ok {
			return Value{}, fmt.Errorf("sql: st_x needs a point")
		}
		return numVal(p.X), nil
	case "st_y":
		if err := wantArgs(f, argv, KindGeom); err != nil {
			return Value{}, err
		}
		p, ok := argv[0].Geom.(geom.Point)
		if !ok {
			return Value{}, fmt.Errorf("sql: st_y needs a point")
		}
		return numVal(p.Y), nil
	case "st_area":
		if err := wantArgs(f, argv, KindGeom); err != nil {
			return Value{}, err
		}
		return numVal(geom.Area(argv[0].Geom)), nil
	case "st_length":
		if err := wantArgs(f, argv, KindGeom); err != nil {
			return Value{}, err
		}
		return numVal(geom.Length(argv[0].Geom)), nil
	case "st_centroid":
		if err := wantArgs(f, argv, KindGeom); err != nil {
			return Value{}, err
		}
		return geomVal(geom.Centroid(argv[0].Geom)), nil
	case "st_envelope":
		if err := wantArgs(f, argv, KindGeom); err != nil {
			return Value{}, err
		}
		return geomVal(argv[0].Geom.Envelope().ToPolygon()), nil
	case "st_convexhull":
		if err := wantArgs(f, argv, KindGeom); err != nil {
			return Value{}, err
		}
		return geomVal(geom.ConvexHull(argv[0].Geom)), nil
	case "st_astext":
		if err := wantArgs(f, argv, KindGeom); err != nil {
			return Value{}, err
		}
		return strVal(argv[0].Geom.WKT()), nil
	case "st_contains", "st_covers":
		if err := wantArgs(f, argv, KindGeom, KindGeom); err != nil {
			return Value{}, err
		}
		p, ok := argv[1].Geom.(geom.Point)
		if !ok {
			return Value{}, fmt.Errorf("sql: %s supports point containment only", f.Name)
		}
		return boolVal(geom.ContainsPoint(argv[0].Geom, p.X, p.Y)), nil
	case "st_within":
		if err := wantArgs(f, argv, KindGeom, KindGeom); err != nil {
			return Value{}, err
		}
		p, ok := argv[0].Geom.(geom.Point)
		if !ok {
			return Value{}, fmt.Errorf("sql: st_within supports point subjects only")
		}
		return boolVal(geom.ContainsPoint(argv[1].Geom, p.X, p.Y)), nil
	case "st_intersects":
		if err := wantArgs(f, argv, KindGeom, KindGeom); err != nil {
			return Value{}, err
		}
		return boolVal(geom.Intersects(argv[0].Geom, argv[1].Geom)), nil
	case "st_dwithin":
		if err := wantArgs(f, argv, KindGeom, KindGeom, KindNum); err != nil {
			return Value{}, err
		}
		// grid.ValidDistance is the single validity rule for distance
		// thresholds, shared with the accelerated BufferRegion path so the
		// scalar and region forms of the same query cannot diverge.
		d := argv[2].Num
		if !grid.ValidDistance(d) {
			return boolVal(false), nil
		}
		return boolVal(geom.GeometryDistance(argv[0].Geom, argv[1].Geom) <= d), nil
	case "st_distance":
		if err := wantArgs(f, argv, KindGeom, KindGeom); err != nil {
			return Value{}, err
		}
		return numVal(geom.GeometryDistance(argv[0].Geom, argv[1].Geom)), nil
	case "abs":
		if err := wantArgs(f, argv, KindNum); err != nil {
			return Value{}, err
		}
		if argv[0].Num < 0 {
			return numVal(-argv[0].Num), nil
		}
		return argv[0], nil
	default:
		return Value{}, fmt.Errorf("sql: unknown function %q", f.Name)
	}
}

func wantArgs(f FuncCall, argv []Value, kinds ...ValueKind) error {
	if len(argv) != len(kinds) {
		return fmt.Errorf("sql: %s expects %d arguments, got %d", f.Name, len(kinds), len(argv))
	}
	for i, k := range kinds {
		if argv[i].Kind != k {
			return fmt.Errorf("sql: %s argument %d has wrong type", f.Name, i+1)
		}
	}
	return nil
}

// aggFuncs maps aggregate names to engine functions.
var aggFuncs = map[string]engine.AggFunc{
	"count": engine.AggCount,
	"sum":   engine.AggSum,
	"avg":   engine.AggAvg,
	"min":   engine.AggMin,
	"max":   engine.AggMax,
}

// isAggregate reports whether e is a top-level aggregate call.
func isAggregate(e Expr) (FuncCall, bool) {
	f, ok := e.(FuncCall)
	if !ok {
		return FuncCall{}, false
	}
	_, ok = aggFuncs[f.Name]
	return f, ok
}

package sql

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"gisnav/internal/engine"
	"gisnav/internal/las"
)

// nanDB builds a database whose point cloud holds the adversarial grouped
// inputs: NaN values in z, a float key column with NaN/-0/+Inf (gps_time),
// a >256-value u16 key (intensity), and a u8 class key.
func nanDB(t *testing.T, n int) (*Executor, *engine.PointCloud) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	gpsPalette := []float64{math.NaN(), math.Copysign(0, -1), 0, -7.25, 42.5, math.Inf(1)}
	pts := make([]las.Point, n)
	for i := range pts {
		z := rng.Float64()*120 - 30
		if rng.Intn(29) == 0 {
			z = math.NaN()
		}
		pts[i] = las.Point{
			X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Z: z,
			Intensity:      uint16(rng.Intn(900)),
			Classification: uint8(rng.Intn(11)),
			GPSTime:        gpsPalette[rng.Intn(len(gpsPalette))],
		}
	}
	pc := engine.NewPointCloud()
	pc.AppendLAS(pts)
	db := engine.NewDB()
	db.RegisterPointCloud("cloud", pc)
	return New(db), pc
}

// resultRowsEqual compares two results row-by-row through the display
// rendering, which distinguishes every group identity the engine does
// (NaN renders once, -0 renders as -0).
func resultRowsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if strings.Join(got.Columns, ",") != strings.Join(want.Columns, ",") {
		t.Fatalf("%s: columns %v vs %v", label, got.Columns, want.Columns)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if got.Rows[i][j].String() != want.Rows[i][j].String() {
				t.Fatalf("%s: row %d col %d: %s vs %s",
					label, i, j, got.Rows[i][j].String(), want.Rows[i][j].String())
			}
		}
	}
}

// TestGroupedVectorizedMatchesInterpreter is the equivalence property of the
// PR 5 tentpole: for every classifiable grouped statement, the engine's
// grouped kernels (dense and hash) must produce exactly the rows the
// row-at-a-time interpreter produces — including NaN keys and values, empty
// groups carved out by WHERE, >256-key domains, and random selection
// shapes. The interpreter arm runs on the same prepared plan with the
// vectorized route disabled, so the two arms share planning and filtering.
func TestGroupedVectorizedMatchesInterpreter(t *testing.T) {
	e, _ := nanDB(t, 50000)
	rng := rand.New(rand.NewSource(17))
	queries := []string{
		// Dense u8 key, full aggregate mix incl count(col).
		"SELECT classification, count(*) AS n, count(z), sum(z), avg(z), min(z), max(intensity) FROM cloud GROUP BY classification",
		// Dense u8 key under a narrowing WHERE (empty groups drop out).
		"SELECT classification, count(*) FROM cloud WHERE intensity < 40 GROUP BY classification",
		// u16 key with >256 distinct values; the full table takes the dense
		// 64K bank, the narrowed selection the hash table.
		"SELECT intensity, count(*), avg(z) FROM cloud GROUP BY intensity",
		"SELECT intensity, count(*), avg(z) FROM cloud WHERE z > 25 GROUP BY intensity",
		// Float key with NaN, -0 and +Inf groups; NaN values inside groups.
		"SELECT gps_time, count(*), sum(z), min(z), max(z) FROM cloud GROUP BY gps_time",
		"SELECT gps_time, avg(z) FROM cloud WHERE classification <> 3 GROUP BY gps_time",
		// Aliased key, ORDER BY + LIMIT tail shared by both arms.
		"SELECT classification AS cls, count(*) AS n FROM cloud GROUP BY cls ORDER BY n DESC LIMIT 4",
		// No aggregates at all: DISTINCT-style key emission on both paths.
		"SELECT classification FROM cloud GROUP BY classification",
		"SELECT gps_time FROM cloud GROUP BY gps_time",
	}
	// Random spatial selections drive random selection vectors through both
	// arms (grid region → pooled row sets).
	for i := 0; i < 4; i++ {
		x0, y0 := rng.Float64()*800, rng.Float64()*800
		queries = append(queries, fmt.Sprintf(
			"SELECT classification, count(*), avg(z) FROM cloud WHERE ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y)) GROUP BY classification",
			x0, y0, x0+rng.Float64()*200, y0+rng.Float64()*200))
	}
	for _, q := range queries {
		pq, err := e.Prepare(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if pq.plan.grouped.keyCol == "" {
			t.Fatalf("%s: did not vectorize; the equivalence check is vacuous", q)
		}
		vec, err := pq.Run()
		if err != nil {
			t.Fatalf("%s (vectorized): %v", q, err)
		}
		pq.plan.grouped.keyCol = "" // disable the engine route on the same plan
		interp, err := pq.Run()
		if err != nil {
			t.Fatalf("%s (interpreter): %v", q, err)
		}
		resultRowsEqual(t, q, vec, interp)
	}
}

// TestGroupedStrategyExplain pins the EXPLAIN "group" step to the strategy
// that actually ran: dense for the u8 class key, hash for a float key,
// interpreter for a vector-table key.
func TestGroupedStrategyExplain(t *testing.T) {
	e, _ := nanDB(t, 20000)
	groupDetail := func(q string) string {
		t.Helper()
		res, err := e.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for _, s := range res.Explain.Steps {
			if s.Op == "group" {
				return s.Detail
			}
		}
		t.Fatalf("%s: no group step in trace", q)
		return ""
	}
	if d := groupDetail("SELECT classification, count(*) FROM cloud GROUP BY classification"); !strings.HasPrefix(d, "dense:") {
		t.Fatalf("u8 key reported %q, want dense", d)
	}
	if d := groupDetail("SELECT gps_time, count(*) FROM cloud GROUP BY gps_time"); !strings.HasPrefix(d, "hash:") {
		t.Fatalf("float key reported %q, want hash", d)
	}

	es, _, _, _ := testDB(t)
	if d := func() string {
		res := mustQuery(t, es, "SELECT class, count(*) FROM ua GROUP BY class")
		for _, s := range res.Explain.Steps {
			if s.Op == "group" {
				return s.Detail
			}
		}
		return ""
	}(); !strings.HasPrefix(d, "interpreter:") {
		t.Fatalf("vector-table key reported %q, want interpreter", d)
	}
}

// TestGroupedReboundMatchesFreshPrepare extends the PR 4 rebind property to
// grouped plans: a shape hit whose literal vector changed re-binds the
// cached skeleton, and the rebound grouped run must equal a fresh Prepare
// of the new text exactly.
func TestGroupedReboundMatchesFreshPrepare(t *testing.T) {
	e, _ := nanDB(t, 30000)
	template := "SELECT classification, count(*) AS n, avg(z) FROM cloud WHERE ST_Contains(ST_MakeEnvelope(%g, %g, %g, %g), ST_Point(x, y)) AND intensity > %g GROUP BY classification"
	qA := fmt.Sprintf(template, 100.0, 100.0, 600.0, 700.0, 50.0)
	qB := fmt.Sprintf(template, 250.0, 180.0, 900.0, 860.0, 325.0)

	if _, err := e.Query(qA); err != nil {
		t.Fatal(err)
	}
	before := e.StmtCacheStats()
	rebound, err := e.Query(qB)
	if err != nil {
		t.Fatal(err)
	}
	after := e.StmtCacheStats()
	if after.ShapeHits != before.ShapeHits+1 || after.Rebinds != before.Rebinds+1 {
		t.Fatalf("literal-only change did not rebind: %+v -> %+v", before, after)
	}

	fresh, _ := nanDB(t, 30000) // identical dataset, cold executor
	pq, err := fresh.Prepare(qB)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pq.RunTraced()
	if err != nil {
		t.Fatal(err)
	}
	resultRowsEqual(t, "rebound vs fresh", rebound, want)
}

package sql

import (
	"math"
	"testing"
)

func TestMeasureFunctions(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, `
		SELECT ST_Length(ST_GeomFromText('LINESTRING (0 0, 3 4)')),
		       ST_Area(ST_MakeEnvelope(0, 0, 4, 5)),
		       ST_AsText(ST_Centroid(ST_MakeEnvelope(0, 0, 10, 10))),
		       ST_AsText(ST_Envelope(ST_GeomFromText('LINESTRING (1 2, 5 7)')))
		FROM osm LIMIT 1`)
	r := res.Rows[0]
	if r[0].Num != 5 {
		t.Fatalf("st_length = %v", r[0])
	}
	if r[1].Num != 20 {
		t.Fatalf("st_area = %v", r[1])
	}
	if r[2].Str != "POINT (5 5)" {
		t.Fatalf("st_centroid = %v", r[2])
	}
	if r[3].Str != "POLYGON ((1 2, 5 2, 5 7, 1 7, 1 2))" {
		t.Fatalf("st_envelope = %v", r[3])
	}
}

func TestTotalRoadLengthByClass(t *testing.T) {
	e, _, osm, _ := testDB(t)
	res := mustQuery(t, e,
		"SELECT class, sum(ST_Length(geom)) AS total FROM osm GROUP BY class ORDER BY total DESC")
	if len(res.Rows) < 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// Sanity: totals are positive for line classes and ordered.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].Num < res.Rows[i][1].Num {
			t.Fatal("order by total desc violated")
		}
	}
	_ = osm
}

func TestConvexHullFunction(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, `
		SELECT ST_Area(ST_ConvexHull(ST_GeomFromText('MULTIPOINT (0 0, 10 0, 10 10, 0 10, 5 5)')))
		FROM osm LIMIT 1`)
	if res.Rows[0][0].Num != 100 {
		t.Fatalf("hull area = %v", res.Rows[0][0])
	}
}

func TestFunctionArgValidation(t *testing.T) {
	e, _, _, _ := testDB(t)
	bad := []string{
		"SELECT ST_Length(5) FROM osm LIMIT 1",
		"SELECT ST_Centroid('not a geom') FROM osm LIMIT 1",
		"SELECT ST_Point(1) FROM osm LIMIT 1",
		"SELECT ST_DWithin(ST_Point(0,0), ST_Point(1,1)) FROM osm LIMIT 1",
		"SELECT ST_X(ST_MakeEnvelope(0,0,1,1)) FROM osm LIMIT 1",
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestAvgZNearRiverWithMeasures(t *testing.T) {
	e, _, _, _ := testDB(t)
	// End-to-end: combine measures, join, group by in one statement.
	res := mustQuery(t, e, `
		SELECT classification, count(*) AS n, avg(z) AS mz
		FROM ahn2, osm
		WHERE osm.class = 'river'
		  AND ST_DWithin(osm.geom, ST_Point(ahn2.x, ahn2.y), 60)
		GROUP BY classification
		ORDER BY n DESC`)
	total := 0.0
	for _, row := range res.Rows {
		total += row[1].Num
		if row[2].Kind == KindNum && math.IsNaN(row[2].Num) {
			t.Fatal("NaN average")
		}
	}
	resFlat := mustQuery(t, e, `
		SELECT count(*) FROM ahn2, osm
		WHERE osm.class = 'river'
		  AND ST_DWithin(osm.geom, ST_Point(ahn2.x, ahn2.y), 60)`)
	if total != resFlat.Rows[0][0].Num {
		t.Fatalf("grouped total %v != flat count %v", total, resFlat.Rows[0][0].Num)
	}
}

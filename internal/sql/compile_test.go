package sql

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"gisnav/internal/engine"
)

// whereExpr parses src as a WHERE clause over the ahn2 point cloud.
func whereExpr(t *testing.T, src string) Expr {
	t.Helper()
	stmt, err := Parse("SELECT count(*) FROM ahn2 WHERE " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmt.Where
}

// interpretFilter is the reference: the row-at-a-time interpreter loop
// genericFilterPC uses for non-compilable shapes.
func interpretFilter(b *binding, e Expr, rows []int) ([]int, error) {
	var out []int
	ctx := &evalCtx{b: b, vtRow: -1}
	for _, r := range rows {
		ctx.pcRow = r
		v, err := evalExpr(ctx, e)
		if err != nil {
			return nil, err
		}
		if v.truthy() {
			out = append(out, r)
		}
	}
	return out, nil
}

// runCompiled compiles e and applies it to a copy of rows.
func runCompiled(t *testing.T, b *binding, e Expr, rows []int) ([]int, error, bool) {
	t.Helper()
	cf, ok := compilePCFilter(b, nil, e)
	if !ok {
		return nil, nil, false
	}
	cp := append([]int(nil), rows...)
	got, err := cf.apply(nil, cp)
	return got, err, true
}

// assertSameFilter checks compiled and interpreted agree on rows and errors.
func assertSameFilter(t *testing.T, b *binding, src string, rows []int, wantCompiled bool) {
	t.Helper()
	e := whereExpr(t, src)
	got, cerr, ok := runCompiled(t, b, e, rows)
	if ok != wantCompiled {
		t.Fatalf("%q: compiled=%v, want %v", src, ok, wantCompiled)
	}
	if !ok {
		return
	}
	want, ierr := interpretFilter(b, e, rows)
	if (cerr != nil) != (ierr != nil) {
		t.Fatalf("%q: compiled err %v, interpreter err %v", src, cerr, ierr)
	}
	if cerr != nil {
		if cerr.Error() != ierr.Error() {
			t.Fatalf("%q: error text %q vs %q", src, cerr, ierr)
		}
		return
	}
	if len(got) != len(want) {
		t.Fatalf("%q: compiled kept %d rows, interpreter %d", src, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%q: row %d: compiled %d, interpreter %d", src, i, got[i], want[i])
		}
	}
}

func pcBinding(pc *engine.PointCloud) *binding {
	return &binding{pc: pc, pcNames: []string{"ahn2"}}
}

func allPCRows(pc *engine.PointCloud) []int {
	rows := make([]int, pc.Len())
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// TestCompiledFilterMatchesInterpreter runs the compiler over the conjunct
// shapes it claims to cover and pins them to the interpreter, on a row set
// large enough to exercise multiple chunks.
func TestCompiledFilterMatchesInterpreter(t *testing.T) {
	_, pc, _, _ := testDB(t)
	b := pcBinding(pc)
	rows := allPCRows(pc)
	if len(rows) <= exprChunk {
		t.Fatalf("test cloud has %d rows; need more than one chunk (%d)", len(rows), exprChunk)
	}

	compiled := []string{
		"z - 2*intensity > 10",
		"x + y BETWEEN 500 AND 2500",
		"z + 0.5 <= 25",
		"abs(scan_angle) < 5",
		"intensity % 7 = 3",
		"intensity / 100 >= 5",
		"NOT (classification = 2)",
		"classification = 2 OR classification = 6",
		"z > 10 AND intensity < 600",
		"x * x + y * y < 1000000",
		"classification - 2",  // bare numeric truthiness
		"z / intensity < 0.1", // runtime-checked division
		"2 > 1",               // constant conjunct
		"z = z",               // trivially true, NaN-sensitive shape
	}
	for _, src := range compiled {
		assertSameFilter(t, b, src, rows, true)
	}

	interpreted := []string{
		"st_x(st_point(x, y)) > 500",                        // function call
		"classification = 2 OR z / 0 > 1",                   // fallible operand under OR
		"z > 1 AND intensity % (intensity - intensity) = 0", // fallible under AND
		"nosuchcol + 1 > 0",                                 // unknown column
	}
	for _, src := range interpreted {
		assertSameFilter(t, b, src, rows, false)
	}
}

// TestCompiledFilterNaNSemantics pins the interpreter's three-way-compare
// quirk: NaN compares "equal" to everything, so `z = 0` keeps NaN rows and
// `z <> 0` drops them; BETWEEN uses plain float compares, so NaN fails.
func TestCompiledFilterNaNSemantics(t *testing.T) {
	_, pc, _, _ := testDB(t)
	zs := pc.Z()
	zs[0], zs[1], zs[2] = math.NaN(), math.NaN(), math.NaN()
	pc.InvalidateIndexes()
	b := pcBinding(pc)
	rows := allPCRows(pc)

	for _, src := range []string{
		"z = 123456", "z <> 123456", "z < 0", "z >= 0",
		"z BETWEEN -1000 AND 1000",
		"z - z = 0", // NaN - NaN = NaN, still "equal" to 0 under three-way
		"abs(z) > 1",
	} {
		assertSameFilter(t, b, src, rows, true)
	}

	// Explicit spot check so the quirk is pinned even if the interpreter
	// changes: row 0 (z = NaN) must survive `z = 123456`.
	got, _, ok := runCompiled(t, b, whereExpr(t, "z = 123456"), rows)
	if !ok {
		t.Fatal("z = 123456 should compile")
	}
	if len(got) == 0 || got[0] != 0 {
		t.Fatalf("NaN row should compare equal under =, got %v", got[:min(len(got), 5)])
	}
}

// TestCompiledFilterRandomized cross-checks randomly generated arithmetic
// comparisons against the interpreter.
func TestCompiledFilterRandomized(t *testing.T) {
	_, pc, _, _ := testDB(t)
	b := pcBinding(pc)
	rows := allPCRows(pc)[:3000] // a few chunks; keep the interpreter arm fast
	rng := rand.New(rand.NewSource(7))

	cols := []string{"x", "y", "z", "intensity", "classification", "scan_angle", "gps_time"}
	var genNum func(depth int) string
	genNum = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return cols[rng.Intn(len(cols))]
			}
			return fmt.Sprintf("%g", math.Round(rng.Float64()*200-100))
		}
		ops := []string{"+", "-", "*"}
		return "(" + genNum(depth-1) + " " + ops[rng.Intn(len(ops))] + " " + genNum(depth-1) + ")"
	}
	cmps := []string{"=", "<>", "<", "<=", ">", ">="}

	for i := 0; i < 200; i++ {
		var src string
		switch rng.Intn(3) {
		case 0:
			src = genNum(2) + " " + cmps[rng.Intn(len(cmps))] + " " + genNum(2)
		case 1:
			src = genNum(2) + " BETWEEN " + genNum(1) + " AND " + genNum(1)
		default:
			src = "NOT (" + genNum(2) + " " + cmps[rng.Intn(len(cmps))] + " " + genNum(1) + ")"
		}
		assertSameFilter(t, b, src, rows, true)
	}
}

// TestCompiledFilterInQueryExplain verifies end-to-end execution routes a
// compilable generic conjunct through the vector kernel (visible in the
// trace) and produces the same count as a forced-interpreter equivalent.
func TestCompiledFilterInQueryExplain(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE z - 2*intensity > -500")
	var sawCompiled bool
	for _, s := range res.Explain.Steps {
		if s.Op == "filter.compiled" {
			sawCompiled = true
		}
		if s.Op == "filter.generic" {
			t.Fatalf("compilable conjunct fell back to the interpreter: %+v", s)
		}
	}
	if !sawCompiled {
		t.Fatalf("no filter.compiled step in trace: %+v", res.Explain.Steps)
	}

	// st_x(st_point(x,y)) forces the interpreter on an equivalent predicate.
	slow := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE st_x(st_point(z - 2*intensity, 0)) > -500")
	if res.Rows[0][0].Num != slow.Rows[0][0].Num {
		t.Fatalf("compiled count %v != interpreter count %v", res.Rows[0][0].Num, slow.Rows[0][0].Num)
	}
}

// TestCompiledDivisionByZeroError pins the runtime error contract.
func TestCompiledDivisionByZeroError(t *testing.T) {
	e, _, _, _ := testDB(t)
	_, err := e.Query("SELECT count(*) FROM ahn2 WHERE z / (classification - classification) > 1")
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("want division-by-zero error, got %v", err)
	}
	_, err = e.Query("SELECT count(*) FROM ahn2 WHERE intensity % (classification - classification) = 1")
	if err == nil || !strings.Contains(err.Error(), "modulo by zero") {
		t.Fatalf("want modulo-by-zero error, got %v", err)
	}
}

// TestModuloFractionalDenominator: a denominator that is non-zero as a
// float but truncates to 0 in the int64 domain used by % must raise the
// modulo-by-zero error, not panic the process with an integer divide —
// in the compiled kernel, the interpreter, and a runtime-evaluated
// denominator alike.
func TestModuloFractionalDenominator(t *testing.T) {
	e, pc, _, _ := testDB(t)
	for _, q := range []string{
		// Constant fractional denominator (compiled path).
		"SELECT count(*) FROM ahn2 WHERE intensity % 0.5 = 0",
		// Interpreter path (function call blocks compilation).
		"SELECT count(*) FROM ahn2 WHERE st_x(st_point(intensity, 0)) % 0.5 = 0",
		// Runtime-evaluated fractional denominator.
		"SELECT count(*) FROM ahn2 WHERE intensity % (classification / 1000) = 0",
	} {
		_, err := e.Query(q)
		if err == nil || !strings.Contains(err.Error(), "modulo by zero") {
			t.Fatalf("%s: want modulo-by-zero error, got %v", q, err)
		}
	}

	// Compiled and interpreted still agree on a fractional denominator
	// that survives truncation.
	b := pcBinding(pc)
	assertSameFilter(t, b, "intensity % 2.5 = 0", allPCRows(pc), true)
}

// TestAggregateNaNParityAcrossRoutes pins min/max semantics over
// NaN-polluted data to be identical whether the aggregate routes through
// the engine's typed kernels (bare column) or the interpreter fallback
// (any other expression shape): NaN values are skipped by both.
func TestAggregateNaNParityAcrossRoutes(t *testing.T) {
	e, pc, _, _ := testDB(t)
	zs := pc.Z()
	zs[0], zs[1] = math.NaN(), math.NaN()
	pc.InvalidateIndexes()

	for _, fn := range []string{"min", "max"} {
		kernel := mustQuery(t, e, "SELECT "+fn+"(z) FROM ahn2")
		interp := mustQuery(t, e, "SELECT "+fn+"(z + 0) FROM ahn2")
		k, i := kernel.Rows[0][0].Num, interp.Rows[0][0].Num
		if k != i && !(math.IsNaN(k) && math.IsNaN(i)) {
			t.Fatalf("%s(z) = %v via kernel but %v via interpreter on NaN-polluted data", fn, k, i)
		}
		if math.IsNaN(k) || math.IsInf(k, 0) {
			t.Fatalf("%s(z) = %v; NaN rows should be skipped, not poison the result", fn, k)
		}
	}
}

package sql

import (
	"fmt"
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/synth"
)

// TestFrontCacheHitsOnRepeatedText checks the text→shape front cache: the
// second Query of an identical text skips the lexer (FrontHits moves) and
// returns identical results through the cached plan.
func TestFrontCacheHitsOnRepeatedText(t *testing.T) {
	e, _, _, _ := testDB(t)
	q := "SELECT count(*) FROM ahn2 WHERE z > 10 AND classification = 2"
	first := mustQuery(t, e, q)
	if hits := e.StmtCacheStats().FrontHits; hits != 0 {
		t.Fatalf("front hits after first query = %d, want 0", hits)
	}
	second := mustQuery(t, e, q)
	st := e.StmtCacheStats()
	if st.FrontHits != 1 {
		t.Fatalf("front hits after repeat = %d, want 1", st.FrontHits)
	}
	if st.FrontEntries == 0 {
		t.Fatal("no front entries interned")
	}
	if first.Rows[0][0].Num != second.Rows[0][0].Num {
		t.Fatalf("front-cache hit changed the result: %v vs %v", first.Rows[0][0], second.Rows[0][0])
	}
	// A different text of the same shape must not front-hit (the front cache
	// is exact-text), but still shape-hits the statement cache.
	before := st
	mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE z > 12 AND classification = 2")
	st = e.StmtCacheStats()
	if st.FrontHits != before.FrontHits {
		t.Fatal("distinct text produced a front hit")
	}
	if st.ShapeHits != before.ShapeHits+1 {
		t.Fatalf("distinct text of same shape did not shape-hit: %+v", st)
	}
}

// TestFrontCacheObservesAppends pins the epoch contract across the front
// cache: a front-hit text still replans when the table epoch moved, so the
// lexer shortcut can never serve stale state.
func TestFrontCacheObservesAppends(t *testing.T) {
	e, pc, _, _ := testDB(t)
	q := "SELECT count(*) FROM ahn2"
	before := mustQuery(t, e, q).Rows[0][0].Num
	mustQuery(t, e, q) // intern + warm

	region := geom.NewEnvelope(0, 0, 2000, 2000)
	terrain := synth.NewTerrain(82, region)
	extra := synth.GenerateTile(terrain, synth.TileSpec{Env: region, Density: 0.001, Seed: 12})
	pc.AppendLAS(extra)

	invBefore := e.StmtCacheStats().Invalidations
	after := mustQuery(t, e, q).Rows[0][0].Num
	if after != before+float64(len(extra)) {
		t.Fatalf("front-hit query missed the append: %v -> %v (+%d points)", before, after, len(extra))
	}
	if e.StmtCacheStats().Invalidations != invBefore+1 {
		t.Fatal("append did not register as an epoch invalidation")
	}
}

// TestFrontCacheBounded checks the intern map resets past its bound instead
// of growing with every distinct text.
func TestFrontCacheBounded(t *testing.T) {
	e, _, _, _ := testDB(t)
	for i := 0; i < maxFrontEntries+10; i++ {
		mustQuery(t, e, fmt.Sprintf("SELECT count(*) FROM ahn2 WHERE z > %d", i))
	}
	if n := e.StmtCacheStats().FrontEntries; n > maxFrontEntries {
		t.Fatalf("front cache grew to %d entries past its bound %d", n, maxFrontEntries)
	}
}

package sql

import (
	"strings"
	"testing"

	"gisnav/internal/geom"
)

func TestOrderByOnPointCloud(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e,
		"SELECT z FROM ahn2 WHERE ST_Contains(ST_MakeEnvelope(0, 0, 300, 300), ST_Point(x, y)) ORDER BY z DESC LIMIT 10")
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Num < res.Rows[i][0].Num {
			t.Fatal("descending order violated")
		}
	}
}

func TestStarOnPointCloud(t *testing.T) {
	e, pc, _, _ := testDB(t)
	res := mustQuery(t, e, "SELECT * FROM ahn2 LIMIT 2")
	if len(res.Columns) != len(pc.Schema().Fields) {
		t.Fatalf("star expanded to %d columns", len(res.Columns))
	}
	if len(res.Rows) != 2 {
		t.Fatalf("limit ignored: %d", len(res.Rows))
	}
}

func TestSpatialPredicateVariants(t *testing.T) {
	e, pc, _, _ := testDB(t)
	box := geom.NewEnvelope(100, 100, 600, 600)
	want := len(pc.SelectBox(box).Rows)
	variants := []string{
		"SELECT count(*) FROM ahn2 WHERE ST_Contains(ST_MakeEnvelope(100,100,600,600), ST_Point(x, y))",
		"SELECT count(*) FROM ahn2 WHERE ST_Within(ST_Point(x, y), ST_MakeEnvelope(100,100,600,600))",
		"SELECT count(*) FROM ahn2 WHERE ST_Intersects(ST_MakeEnvelope(100,100,600,600), ST_Point(x, y))",
		"SELECT count(*) FROM ahn2 WHERE ST_Intersects(ST_Point(x, y), ST_MakeEnvelope(100,100,600,600))",
		"SELECT count(*) FROM ahn2 WHERE ST_Covers(ST_MakeEnvelope(100,100,600,600), ST_Point(x, y))",
	}
	for _, q := range variants {
		res := mustQuery(t, e, q)
		if int(res.Rows[0][0].Num) != want {
			t.Fatalf("%s: %v, want %d", q, res.Rows[0][0].Num, want)
		}
	}
}

func TestJoinContainmentVariants(t *testing.T) {
	e, _, _, _ := testDB(t)
	a := mustQuery(t, e, `SELECT count(*) FROM ahn2, ua
		WHERE ua.class = '11100' AND ST_Contains(ua.geom, ST_Point(ahn2.x, ahn2.y))`)
	b := mustQuery(t, e, `SELECT count(*) FROM ahn2, ua
		WHERE ua.class = '11100' AND ST_Within(ST_Point(ahn2.x, ahn2.y), ua.geom)`)
	c := mustQuery(t, e, `SELECT count(*) FROM ahn2, ua
		WHERE ua.class = '11100' AND ST_Intersects(ua.geom, ST_Point(ahn2.x, ahn2.y))`)
	if a.Rows[0][0].Num != b.Rows[0][0].Num || a.Rows[0][0].Num != c.Rows[0][0].Num {
		t.Fatalf("containment variants disagree: %v %v %v",
			a.Rows[0][0].Num, b.Rows[0][0].Num, c.Rows[0][0].Num)
	}
}

func TestArithmeticErrors(t *testing.T) {
	e, _, _, _ := testDB(t)
	if _, err := e.Query("SELECT 1/0 FROM osm LIMIT 1"); err == nil {
		t.Fatal("division by zero should fail")
	}
	if _, err := e.Query("SELECT 1 % 0 FROM osm LIMIT 1"); err == nil {
		t.Fatal("modulo by zero should fail")
	}
	if _, err := e.Query("SELECT 'a' + 1 FROM osm LIMIT 1"); err == nil {
		t.Fatal("string arithmetic should fail")
	}
	if _, err := e.Query("SELECT name FROM osm WHERE name BETWEEN 1 AND 2"); err == nil {
		t.Fatal("string BETWEEN should fail")
	}
}

func TestStringComparisons(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, "SELECT count(*) FROM osm WHERE class >= 'r'")
	res2 := mustQuery(t, e, "SELECT count(*) FROM osm WHERE class < 'r'")
	all := mustQuery(t, e, "SELECT count(*) FROM osm")
	if res.Rows[0][0].Num+res2.Rows[0][0].Num != all.Rows[0][0].Num {
		t.Fatal("string comparison partition broken")
	}
}

func TestModuloAndUnaryMinus(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, "SELECT 7 % 3, -4 + 1 FROM osm LIMIT 1")
	if res.Rows[0][0].Num != 1 || res.Rows[0][1].Num != -3 {
		t.Fatalf("arithmetic = %v", res.Rows[0])
	}
}

func TestBooleanLiterals(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, "SELECT count(*) FROM osm WHERE TRUE")
	all := mustQuery(t, e, "SELECT count(*) FROM osm")
	if res.Rows[0][0].Num != all.Rows[0][0].Num {
		t.Fatal("WHERE TRUE should keep everything")
	}
	res2 := mustQuery(t, e, "SELECT count(*) FROM osm WHERE FALSE")
	if res2.Rows[0][0].Num != 0 {
		t.Fatal("WHERE FALSE should keep nothing")
	}
	res3 := mustQuery(t, e, "SELECT TRUE = TRUE, TRUE <> FALSE FROM osm LIMIT 1")
	if !res3.Rows[0][0].Bool || !res3.Rows[0][1].Bool {
		t.Fatal("boolean comparisons wrong")
	}
}

func TestQualifiedColumnsAndAliases(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, "SELECT a.z FROM ahn2 AS a WHERE a.z > 0 LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Num <= 0 {
		t.Fatalf("qualified select = %v", res.Rows)
	}
	// Bare alias (no AS).
	res2 := mustQuery(t, e, "SELECT b.class FROM osm b LIMIT 1")
	if len(res2.Rows) != 1 {
		t.Fatal("bare alias failed")
	}
	// Unknown qualifier.
	if _, err := e.Query("SELECT nosuch.z FROM ahn2 LIMIT 1"); err == nil {
		t.Fatal("unknown qualifier should fail")
	}
}

func TestCountRequiresArgument(t *testing.T) {
	e, _, _, _ := testDB(t)
	if _, err := e.Query("SELECT count() FROM ahn2"); err == nil {
		t.Fatal("count() should fail")
	}
	// count(column) counts rows with numeric values.
	res := mustQuery(t, e, "SELECT count(z) FROM ahn2")
	all := mustQuery(t, e, "SELECT count(*) FROM ahn2")
	if res.Rows[0][0].Num != all.Rows[0][0].Num {
		t.Fatal("count(z) should equal count(*) on a dense column")
	}
}

func TestExplainSurfacesAcceleratedJoin(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, `SELECT count(*) FROM ahn2, ua
		WHERE ua.class = '12210' AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 20)`)
	trace := res.Explain.String()
	for _, op := range []string{"filter.class", "join.collect", "imprints.filter", "grid.refine"} {
		if !strings.Contains(trace, op) {
			t.Fatalf("trace missing %s:\n%s", op, trace)
		}
	}
}

func TestVectorOrderByNumericAttr(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, "SELECT pop_density FROM ua ORDER BY pop_density LIMIT 5")
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Num > res.Rows[i][0].Num {
			t.Fatal("ascending order violated")
		}
	}
}

package sql

import (
	"math"
	"strings"
	"testing"

	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/synth"
)

// testDB builds a small demo database shared across SQL tests.
func testDB(t *testing.T) (*Executor, *engine.PointCloud, *engine.VectorTable, *engine.VectorTable) {
	t.Helper()
	region := geom.NewEnvelope(0, 0, 2000, 2000)
	terrain := synth.NewTerrain(81, region)
	pts := synth.GenerateTile(terrain, synth.TileSpec{Env: region, Density: 0.01, Seed: 6})
	pc := engine.NewPointCloud()
	pc.AppendLAS(pts)

	osmFeatures := synth.GenerateOSM(terrain, 2)
	osm := engine.NewVectorTable()
	for _, f := range osmFeatures {
		osm.Append(f.ID, f.Class, f.Name, f.Geom, nil)
	}
	ua := engine.NewVectorTable()
	for _, z := range synth.GenerateUrbanAtlas(terrain, synth.Motorways(osmFeatures), 10, 10, 3) {
		ua.Append(int64(z.ID), z.Code, z.Label, z.Geom, map[string]float64{"pop_density": z.PopDensity})
	}

	db := engine.NewDB()
	db.RegisterPointCloud("ahn2", pc)
	db.RegisterVector("osm", osm)
	db.RegisterVector("ua", ua)
	return New(db), pc, osm, ua
}

func mustQuery(t *testing.T, e *Executor, q string) *Result {
	t.Helper()
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT x, 'it''s' FROM t WHERE a >= 1.5e2 AND b <> 3")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	if texts[0] != "SELECT" || kinds[0] != tokKeyword {
		t.Fatalf("toks = %v", texts)
	}
	// The escaped string.
	found := false
	for i, k := range kinds {
		if k == tokString && texts[i] == "it's" {
			found = true
		}
	}
	if !found {
		t.Fatal("string escape failed")
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string should fail")
	}
	if _, err := lex("SELECT #"); err == nil {
		t.Fatal("bad char should fail")
	}
	if _, err := lex("a != b"); err != nil {
		t.Fatal("!= should lex as <>")
	}
	if _, err := lex("a ! b"); err == nil {
		t.Fatal("lone ! should fail")
	}
}

func TestParser(t *testing.T) {
	stmt, err := Parse("SELECT x AS ex, count(*) FROM ahn2 a WHERE (x > 1 OR y < 2) AND NOT z = 3 ORDER BY x DESC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 || stmt.Items[0].Alias != "ex" {
		t.Fatalf("items = %+v", stmt.Items)
	}
	if len(stmt.From) != 1 || stmt.From[0].Alias != "a" {
		t.Fatalf("from = %+v", stmt.From)
	}
	if stmt.Order == nil || !stmt.Order.Desc || stmt.Limit != 10 {
		t.Fatal("order/limit wrong")
	}
	// String round trip parses again.
	if _, err := Parse(stmt.String()); err != nil {
		t.Fatalf("canonical form reparse: %v", err)
	}
}

func TestParserBetweenPrecedence(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE z BETWEEN 1 AND 5 AND x = 2")
	if err != nil {
		t.Fatal(err)
	}
	conjs := splitConjuncts(stmt.Where)
	if len(conjs) != 2 {
		t.Fatalf("conjuncts = %d, want 2 (BETWEEN binds its own AND)", len(conjs))
	}
	if _, ok := conjs[0].(BetweenExpr); !ok {
		t.Fatalf("first conjunct = %T", conjs[0])
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET x = 1",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM t LIMIT x",
		"SELECT f( FROM t",
		"SELECT * FROM t trailing garbage here",
		"SELECT a. FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestSelectBoxSQLMatchesEngine(t *testing.T) {
	e, pc, _, _ := testDB(t)
	q := "SELECT x, y, z FROM ahn2 WHERE ST_Contains(ST_MakeEnvelope(200, 200, 700, 600), ST_Point(x, y))"
	res := mustQuery(t, e, q)
	sel := pc.SelectBox(geom.NewEnvelope(200, 200, 700, 600))
	if len(res.Rows) != len(sel.Rows) {
		t.Fatalf("sql %d rows, engine %d rows", len(res.Rows), len(sel.Rows))
	}
	if len(res.Columns) != 3 || res.Columns[0] != "x" {
		t.Fatalf("columns = %v", res.Columns)
	}
	// The plan must contain the imprint filter operator.
	trace := res.Explain.String()
	if !strings.Contains(trace, "imprints.filter") || !strings.Contains(trace, "grid.refine") {
		t.Fatalf("trace missing accelerated operators:\n%s", trace)
	}
}

func TestSelectDWithinSQL(t *testing.T) {
	e, pc, _, _ := testDB(t)
	q := "SELECT count(*) FROM ahn2 WHERE ST_DWithin(ST_GeomFromText('LINESTRING (0 1000, 2000 1000)'), ST_Point(x, y), 50)"
	res := mustQuery(t, e, q)
	road := geom.MustParseWKT("LINESTRING (0 1000, 2000 1000)")
	sel := pc.SelectDWithin(road, 50)
	if got := res.Rows[0][0].Num; int(got) != len(sel.Rows) {
		t.Fatalf("sql count %v, engine %d", got, len(sel.Rows))
	}
}

func TestThematicFilterSQL(t *testing.T) {
	e, pc, _, _ := testDB(t)
	res := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE classification = 9")
	want := 0
	cls := pc.Column(engine.ColClassification)
	for i := 0; i < pc.Len(); i++ {
		if cls.Value(i) == 9 {
			want++
		}
	}
	if int(res.Rows[0][0].Num) != want {
		t.Fatalf("water points = %v, want %d", res.Rows[0][0].Num, want)
	}
	// Reversed operand order and BETWEEN.
	res2 := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE 9 = classification")
	if res2.Rows[0][0].Num != res.Rows[0][0].Num {
		t.Fatal("reversed equality differs")
	}
	res3 := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE z BETWEEN 0 AND 5")
	want3 := 0
	for i := 0; i < pc.Len(); i++ {
		if z := pc.Z()[i]; z >= 0 && z <= 5 {
			want3++
		}
	}
	if int(res3.Rows[0][0].Num) != want3 {
		t.Fatalf("between = %v, want %d", res3.Rows[0][0].Num, want3)
	}
}

func TestAggregatesSQL(t *testing.T) {
	e, pc, _, _ := testDB(t)
	res := mustQuery(t, e, "SELECT count(*) AS n, avg(z) AS mean_z, min(z), max(z), sum(z) FROM ahn2")
	if res.Columns[0] != "n" || res.Columns[1] != "mean_z" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if int(res.Rows[0][0].Num) != pc.Len() {
		t.Fatal("count wrong")
	}
	var sum, lo, hi float64
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, z := range pc.Z() {
		sum += z
		lo = math.Min(lo, z)
		hi = math.Max(hi, z)
	}
	if math.Abs(res.Rows[0][1].Num-sum/float64(pc.Len())) > 1e-9 {
		t.Fatal("avg wrong")
	}
	if res.Rows[0][2].Num != lo || res.Rows[0][3].Num != hi {
		t.Fatal("min/max wrong")
	}
	if math.Abs(res.Rows[0][4].Num-sum) > 1e-6 {
		t.Fatal("sum wrong")
	}
	// Aggregates over empty selections are NULL (except count).
	res2 := mustQuery(t, e, "SELECT count(*), avg(z) FROM ahn2 WHERE z > 100000")
	if res2.Rows[0][0].Num != 0 || res2.Rows[0][1].Kind != KindNull {
		t.Fatalf("empty aggregates = %v", res2.Rows[0])
	}
	// Mixing aggregates and columns fails.
	if _, err := e.Query("SELECT z, count(*) FROM ahn2"); err == nil {
		t.Fatal("mixed select should fail")
	}
}

func TestVectorQueries(t *testing.T) {
	e, _, osm, _ := testDB(t)
	res := mustQuery(t, e, "SELECT name, class FROM osm WHERE class = 'motorway'")
	if len(res.Rows) != 5 {
		t.Fatalf("motorways = %d, want 5", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Str != "motorway" {
			t.Fatal("class filter leaked")
		}
	}
	// Spatial filter on vector geometry.
	res2 := mustQuery(t, e,
		"SELECT count(*) FROM osm WHERE ST_Intersects(geom, ST_MakeEnvelope(0, 0, 2000, 2000))")
	if int(res2.Rows[0][0].Num) != osm.Len() {
		t.Fatalf("everything intersects the region: %v vs %d", res2.Rows[0][0].Num, osm.Len())
	}
	// ORDER BY + LIMIT.
	res3 := mustQuery(t, e, "SELECT name FROM osm WHERE class = 'motorway' ORDER BY name LIMIT 3")
	if len(res3.Rows) != 3 {
		t.Fatalf("limit = %d rows", len(res3.Rows))
	}
	for i := 1; i < len(res3.Rows); i++ {
		if res3.Rows[i-1][0].Str > res3.Rows[i][0].Str {
			t.Fatal("order by name violated")
		}
	}
	// DESC.
	res4 := mustQuery(t, e, "SELECT name FROM osm WHERE class = 'motorway' ORDER BY name DESC LIMIT 1")
	res5 := mustQuery(t, e, "SELECT name FROM osm WHERE class = 'motorway' ORDER BY name ASC")
	if res4.Rows[0][0].Str != res5.Rows[len(res5.Rows)-1][0].Str {
		t.Fatal("desc should mirror asc")
	}
	// Star expansion for vector tables.
	res6 := mustQuery(t, e, "SELECT * FROM osm LIMIT 1")
	if len(res6.Columns) < 4 || res6.Columns[0] != "id" {
		t.Fatalf("star columns = %v", res6.Columns)
	}
}

func TestScenario2JoinSQL(t *testing.T) {
	e, pc, _, ua := testDB(t)
	q := `SELECT count(*) AS n, avg(z) AS mean_elevation
	      FROM ahn2, ua
	      WHERE ua.class = '12210'
	        AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 30)`
	res := mustQuery(t, e, q)

	// Reference: engine-level join.
	ex := &engine.Explain{}
	fast := ua.SelectClass(synth.UAFastTransit, ex)
	region := ua.CollectGeometries(fast)
	want := 0
	var sum float64
	for i := 0; i < pc.Len(); i++ {
		if geom.DWithin(pc.X()[i], pc.Y()[i], region, 30) {
			want++
			sum += pc.Z()[i]
		}
	}
	if int(res.Rows[0][0].Num) != want {
		t.Fatalf("join count = %v, want %d", res.Rows[0][0].Num, want)
	}
	if want > 0 && math.Abs(res.Rows[0][1].Num-sum/float64(want)) > 1e-9 {
		t.Fatalf("join avg = %v", res.Rows[0][1].Num)
	}
	// Trace shows the pipeline.
	if len(res.Explain.Steps) < 3 {
		t.Fatalf("trace too short: %s", res.Explain.String())
	}
	// Point-side thematic filter composes with the join.
	q2 := `SELECT count(*) FROM ahn2, ua
	       WHERE ua.class = '12210'
	         AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 30)
	         AND classification = 2`
	res2 := mustQuery(t, e, q2)
	if res2.Rows[0][0].Num > res.Rows[0][0].Num {
		t.Fatal("extra filter must narrow")
	}
}

func TestJoinErrors(t *testing.T) {
	e, _, _, _ := testDB(t)
	// Join without spatial predicate.
	if _, err := e.Query("SELECT count(*) FROM ahn2, ua WHERE ua.class = 'x'"); err == nil {
		t.Fatal("join without spatial predicate should fail")
	}
	// Three tables.
	if _, err := e.Query("SELECT count(*) FROM ahn2, ua, osm"); err == nil {
		t.Fatal("three tables should fail")
	}
	// Unknown table.
	if _, err := e.Query("SELECT * FROM nope"); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestGenericFallbackPredicates(t *testing.T) {
	e, pc, _, _ := testDB(t)
	// OR of thematic predicates is not an accelerable conjunct; the generic
	// evaluator must still produce correct results.
	res := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE classification = 9 OR classification = 2")
	want := 0
	cls := pc.Column(engine.ColClassification)
	for i := 0; i < pc.Len(); i++ {
		if v := cls.Value(i); v == 9 || v == 2 {
			want++
		}
	}
	if int(res.Rows[0][0].Num) != want {
		t.Fatalf("or filter = %v, want %d", res.Rows[0][0].Num, want)
	}
	// Arithmetic in predicates and projections.
	res2 := mustQuery(t, e, "SELECT z * 2 AS zz FROM ahn2 WHERE z + 1 > 100 LIMIT 5")
	for _, r := range res2.Rows {
		if r[0].Num <= 198 {
			t.Fatal("arithmetic predicate wrong")
		}
	}
	// NOT.
	res3 := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE NOT classification = 9")
	res4 := mustQuery(t, e, "SELECT count(*) FROM ahn2 WHERE classification <> 9")
	if res3.Rows[0][0].Num != res4.Rows[0][0].Num {
		t.Fatal("NOT and <> disagree")
	}
}

func TestScalarFunctions(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, "SELECT ST_X(ST_Point(3, 4)), ST_Y(ST_Point(3, 4)), ST_Area(ST_MakeEnvelope(0, 0, 2, 3)), abs(-5) FROM osm LIMIT 1")
	r := res.Rows[0]
	if r[0].Num != 3 || r[1].Num != 4 || r[2].Num != 6 || r[3].Num != 5 {
		t.Fatalf("scalar functions = %v", r)
	}
	res2 := mustQuery(t, e, "SELECT ST_AsText(ST_Point(1, 2)) FROM osm LIMIT 1")
	if res2.Rows[0][0].Str != "POINT (1 2)" {
		t.Fatalf("st_astext = %q", res2.Rows[0][0].Str)
	}
	res3 := mustQuery(t, e, "SELECT ST_Distance(ST_Point(0, 0), ST_Point(3, 4)) FROM osm LIMIT 1")
	if res3.Rows[0][0].Num != 5 {
		t.Fatal("st_distance wrong")
	}
	if _, err := e.Query("SELECT nosuchfunc(1) FROM osm"); err == nil {
		t.Fatal("unknown function should fail")
	}
}

func TestValueStringRendering(t *testing.T) {
	if numVal(1.5).String() != "1.5" || strVal("a").String() != "a" {
		t.Fatal("value strings wrong")
	}
	if boolVal(true).String() != "true" || (Value{}).String() != "NULL" {
		t.Fatal("bool/null strings wrong")
	}
	if geomVal(geom.Point{X: 1, Y: 2}).String() != "POINT (1 2)" {
		t.Fatal("geom string wrong")
	}
}

// TestJoinWithNoMatchingFeaturesIsEmpty is a regression test: a spatial
// join whose vector-side filter selects zero features must return zero
// points, not the whole cloud (a nil selection vector means "all rows" to
// FilterRows, so the engine's empty selections must stay non-nil).
func TestJoinWithNoMatchingFeaturesIsEmpty(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, `SELECT count(*) FROM ahn2, ua
		WHERE ua.class = 'no_such_class' AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 20)`)
	if n := res.Rows[0][0].Num; n != 0 {
		t.Fatalf("join over zero features matched %v points, want 0", n)
	}
	// Same shape through the containment join.
	res = mustQuery(t, e, `SELECT count(*) FROM ahn2, ua
		WHERE ua.class = 'no_such_class' AND ST_Contains(ua.geom, ST_Point(ahn2.x, ahn2.y))`)
	if n := res.Rows[0][0].Num; n != 0 {
		t.Fatalf("containment join over zero features matched %v points, want 0", n)
	}
}

package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return parseTokens(toks)
}

// parseTokens parses an already-lexed token stream — the entry point the
// auto-parameterisation pass uses after normalising literals into tokParam
// tokens (params.go).
func parseTokens(toks []token) (*SelectStmt, error) {
	p := &parser{toks: toks}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

// acceptKeyword consumes kw if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.cur().text)
	}
	return nil
}

// acceptPunct consumes the punctuation if present.
func (p *parser) acceptPunct(s string) bool {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1, LimitParam: -1}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, ref)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ob := &OrderBy{Expr: e}
		if p.acceptKeyword("DESC") {
			ob.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		stmt.Order = ob
	}
	if p.acceptKeyword("LIMIT") {
		switch {
		case p.cur().kind == tokNumber:
			n, err := strconv.Atoi(p.cur().text)
			if err != nil || n < 0 {
				return nil, p.errf("bad LIMIT %q", p.cur().text)
			}
			p.pos++
			stmt.Limit = n
		case p.cur().kind == tokParam && p.cur().vkind == KindNum:
			// Parameterised LIMIT: the count is validated at bind time
			// (resolveLimit), where the literal vector is in hand.
			stmt.LimitParam = p.cur().idx
			p.pos++
		default:
			return nil, p.errf("expected LIMIT count")
		}
	}
	return stmt, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.acceptPunct("*") {
		return SelectItem{Expr: Star{}}, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		if p.cur().kind != tokIdent {
			return item, p.errf("expected alias after AS")
		}
		item.Alias = p.cur().text
		p.pos++
	} else if p.cur().kind == tokIdent {
		// Bare alias.
		item.Alias = p.cur().text
		p.pos++
	}
	return item, nil
}

func (p *parser) tableRef() (TableRef, error) {
	if p.cur().kind != tokIdent {
		return TableRef{}, p.errf("expected table name, got %q", p.cur().text)
	}
	ref := TableRef{Name: p.cur().text}
	p.pos++
	if p.acceptKeyword("AS") {
		if p.cur().kind != tokIdent {
			return ref, p.errf("expected alias after AS")
		}
		ref.Alias = p.cur().text
		p.pos++
	} else if p.cur().kind == tokIdent {
		ref.Alias = p.cur().text
		p.pos++
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((= | <> | < | <= | > | >=) addExpr | BETWEEN addExpr AND addExpr)?
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := unary ((*|/|%) unary)*
//	unary   := - unary | primary
//	primary := number | string | TRUE | FALSE | func(args) | colref | ( expr )
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokOp {
		switch p.cur().text {
		case "=", "<>", "<", "<=", ">", ">=":
			op := p.cur().text
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return BetweenExpr{Subject: l, Lo: lo, Hi: hi}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.cur().text
		p.pos++
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for (p.cur().kind == tokOp && (p.cur().text == "/" || p.cur().text == "%")) ||
		(p.cur().kind == tokPunct && p.cur().text == "*") {
		op := p.cur().text
		p.pos++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.cur().kind == tokOp && p.cur().text == "-" {
		p.pos++
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return BinaryExpr{Op: "-", L: NumberLit{0}, R: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		p.pos++
		return NumberLit{Value: v}, nil
	case tokString:
		p.pos++
		return StringLit{Value: t.text}, nil
	case tokParam:
		p.pos++
		return ParamRef{Index: t.idx, Kind: t.vkind}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.pos++
			return BoolLit{Value: true}, nil
		case "FALSE":
			p.pos++
			return BoolLit{Value: false}, nil
		}
		return nil, p.errf("unexpected keyword %q", t.text)
	case tokIdent:
		name := t.text
		p.pos++
		// Function call?
		if p.acceptPunct("(") {
			call := FuncCall{Name: strings.ToLower(name)}
			if p.acceptPunct(")") {
				return call, nil
			}
			for {
				if p.acceptPunct("*") {
					call.Args = append(call.Args, Star{})
				} else {
					arg, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
				}
				if p.acceptPunct(",") {
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column?
		if p.acceptPunct(".") {
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected column after %q.", name)
			}
			col := p.cur().text
			p.pos++
			return ColumnRef{Table: name, Name: col}, nil
		}
		return ColumnRef{Name: name}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}

// Query planning: the prepare half of the prepare/execute split. Prepare
// parses a statement once, binds its table references against the catalog,
// classifies every WHERE conjunct into the engine shapes the executor can
// accelerate — one spatial region for the imprint+grid path, thematic
// column predicates for the kernel layer, compiled vector kernels for
// generic arithmetic conjuncts, interpreter expressions for the rest — and
// fixes the physical strategy (point-cloud scan / vector-table scan /
// spatial join). The product is an immutable queryPlan that
// PreparedQuery.Run executes with none of that per-call work; the paper's
// navigation workload re-issues near-identical statements on every pan and
// zoom, so everything above the scan layer is hoisted here.
//
// Invalidation contract (the SQL-layer extension of the engine plan cache
// contract in ROADMAP.md): compiled generic kernels close over column
// backing arrays, and star expansion and conjunct classification read the
// table schema, so a plan is valid only for the table epochs it was built
// against. buildPlan captures each bound table's epoch BEFORE reading any
// table state; Run revalidates the captured epochs and replans on
// mismatch. Appends bump the epoch (PointCloud.InvalidateIndexes,
// VectorTable.Append), so a cached statement can never serve a plan bound
// to moved arrays. Re-registering a different table under the same catalog
// name is NOT covered — plans bind table pointers, not names.
//
// Parameterisation contract (PR 4): plans are SKELETONS over a bound
// literal vector. Everything literal-derived — the spatial region, the
// ColumnPred constants, the compiled generic kernels' constant slots, the
// vt class/geometry constants, the join distance, LIMIT — can be re-bound
// to a new vector of the same shape (rebind) without re-planning: no parse,
// no classification, no kernel compile. Rebinding re-derives each
// value-dependent ingredient from its source conjunct; if a new literal
// vector would change a conjunct's CLASSIFICATION (e.g. a constant
// sub-expression that now errors), rebind reports failure and the caller
// replans from the AST — correctness never depends on the literals staying
// classification-equivalent. Epoch mismatches still replan, never rebind.
package sql

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/grid"
)

// planMode is the physical strategy fixed at prepare time.
type planMode uint8

const (
	planPointCloud planMode = iota
	planVector
	planJoin
)

// outMode classifies the SELECT list.
type outMode uint8

const (
	outProject outMode = iota
	outAggregate
	outGrouped
)

// genericStep is one WHERE conjunct the planner could not hand to the
// engine's predicate kernels, in original conjunct order (order matters
// for error semantics: an earlier conjunct may narrow away the rows on
// which a later one would fail). cf is the compiled vector kernel when the
// expression compiler covered the shape; nil means the row-at-a-time
// interpreter evaluates expr.
type genericStep struct {
	cf   *compiledFilter
	expr Expr
}

// vtStepKind tags one vector-table filter step.
type vtStepKind uint8

const (
	vtStepClass      vtStepKind = iota // class = 'x' through the dictionary
	vtStepIntersects                   // ST_Intersects(geom, const) through the R-tree
	vtStepGeneric                      // row-wise interpreter
)

// vtStep is one planned vector-table conjunct.
type vtStep struct {
	kind  vtStepKind
	class string
	g     geom.Geometry
	expr  Expr
}

// joinKind is the recognised spatial-join operator.
type joinKind uint8

const (
	joinNone    joinKind = iota
	joinDWithin          // ST_DWithin(vt.geom, pc point, d) → PointsNearFeatures
	joinWithin           // containment variants → PointsInFeatures
)

// queryPlan is the immutable product of one planning pass. Everything in
// it is either a constant (region geometries, predicate bounds, output
// columns) or bound to table state no older than the captured epochs.
type queryPlan struct {
	b    *binding
	mode planMode

	// Epochs of the bound tables when planning started; see the package
	// comment for the revalidation contract.
	pcEpoch uint64
	vtEpoch uint64

	// The bound literal vector and its numeric mirror for compiled kernels.
	// Both are rewritten IN PLACE by rebind (under the statement lock):
	// interpreter steps read params through evalCtx, compiled generic
	// kernels read slots through their captured store pointer.
	params []Value
	slots  *paramStore

	// Point-cloud phase (planPointCloud and the join tail). regionConj and
	// predConjs are the source conjuncts of the literal-derived region and
	// predicate constants — rebind re-derives from them.
	region     grid.Region
	regionConj Expr
	preds      []engine.ColumnPred
	predConjs  []Expr
	generic    []genericStep

	// Vector phase (planVector and the join head).
	vtSteps []vtStep

	// Join operator (joinConj is its source predicate, kept for rebind).
	join     joinKind
	joinDist float64
	joinConj Expr

	// Output phase. limit is the bound LIMIT (-1 when absent), resolved
	// from the literal vector when the statement parameterised it. grouped
	// is the prepare-time GROUP BY classification (groupby.go), present only
	// for outGrouped plans; it derives nothing from the literal vector
	// (GROUP BY/SELECT-list literals stay inline by policy), so rebind
	// leaves it untouched.
	out     outMode
	cols    []string
	exprs   []Expr
	limit   int
	grouped *groupedPlan
}

// PreparedQuery is a statement prepared for repeated execution: parse,
// binding, conjunct classification, kernel compilation and strategy choice
// all happened once, at Prepare time. Run executes the captured plan,
// replanning transparently when a bound table's epoch moved.
//
// A PreparedQuery is safe for concurrent use: one run at a time executes
// the cached plan (the compiled kernels carry per-statement chunk
// scratch), and overlapping runs fall back to a transient plan of their
// own, so concurrent identical statements scale instead of serialising.
type PreparedQuery struct {
	ex   *Executor
	stmt *SelectStmt

	// init is the literal vector captured at Prepare time; immutable. The
	// plan's bound vector may advance past it through shape-cache rebinds
	// (Executor.Query); Run/RunTraced always re-present init, which is a
	// no-op for a standalone prepared statement.
	init []Value

	mu   sync.Mutex
	plan *queryPlan

	// poisoned marks the plan untrustworthy after a recovered panic: a
	// panic can unwind out of the plan's per-statement scratch (compiled
	// kernel chunk buffers, grouped-aggregate result record) in a torn
	// state. The next run replans from the AST and clears the mark only
	// once the fresh plan is committed (lifecycle.go / run.go).
	poisoned atomic.Bool
}

// Prepare parses and plans src for repeated execution. The statement is
// auto-parameterised first, so the resulting plan is a rebindable skeleton
// with src's literals bound.
func (e *Executor) Prepare(src string) (*PreparedQuery, error) {
	_, toks, params, err := parameterize(src)
	if err != nil {
		return nil, err
	}
	stmt, err := parseTokens(toks)
	if err != nil {
		return nil, err
	}
	return e.prepareBound(stmt, params)
}

// PrepareStmt plans an already-parsed statement. The statement must not be
// mutated afterwards; the prepared query keeps it for epoch replans.
// Externally built ASTs carry their constants as literal nodes, so they
// plan with an empty literal vector.
func (e *Executor) PrepareStmt(stmt *SelectStmt) (*PreparedQuery, error) {
	return e.prepareBound(stmt, nil)
}

// prepareBound plans stmt against the literal vector params.
func (e *Executor) prepareBound(stmt *SelectStmt, params []Value) (*PreparedQuery, error) {
	plan, err := e.buildPlan(stmt, params)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{ex: e, stmt: stmt, init: append([]Value(nil), params...), plan: plan}, nil
}

// buildPlan runs one full planning pass over stmt with the literal vector
// params bound.
func (e *Executor) buildPlan(stmt *SelectStmt, params []Value) (*queryPlan, error) {
	b, err := e.bind(stmt.From)
	if err != nil {
		return nil, err
	}
	p := &queryPlan{
		b:      b,
		params: append([]Value(nil), params...),
		slots:  newParamStore(params),
		limit:  -1,
	}
	// Capture epochs before reading any table state: if an append slips in
	// between the epoch read and kernel compilation, the recorded epoch is
	// already stale and the next Run replans — the safe direction.
	if b.pc != nil {
		p.pcEpoch = b.pc.Epoch()
	}
	if b.vt != nil {
		p.vtEpoch = b.vt.Epoch()
	}
	switch {
	case b.pc != nil && b.vt != nil:
		p.mode = planJoin
		if err := p.planJoinWhere(stmt.Where); err != nil {
			return nil, err
		}
	case b.pc != nil:
		p.mode = planPointCloud
		for _, c := range splitConjuncts(stmt.Where) {
			p.addPCConjunct(c, true)
		}
	case b.vt != nil:
		p.mode = planVector
		for _, c := range splitConjuncts(stmt.Where) {
			p.addVTConjunct(c)
		}
	default:
		return nil, fmt.Errorf("sql: no tables bound")
	}
	if err := p.planOutput(stmt); err != nil {
		return nil, err
	}
	limit, err := resolveLimit(stmt, p.params)
	if err != nil {
		return nil, err
	}
	p.limit = limit
	return p, nil
}

// resolveLimit returns the statement's LIMIT bound against the literal
// vector (-1 when absent). A parameterised count is validated here — the
// parser accepted a typed placeholder, so the value check the literal form
// gets at parse time happens at bind time instead.
func resolveLimit(stmt *SelectStmt, params []Value) (int, error) {
	if stmt.LimitParam < 0 {
		return stmt.Limit, nil
	}
	if stmt.LimitParam >= len(params) {
		return 0, fmt.Errorf("sql: unbound LIMIT parameter $%d", stmt.LimitParam+1)
	}
	v := params[stmt.LimitParam]
	if v.Kind != KindNum || v.Num < 0 || v.Num != math.Trunc(v.Num) || v.Num > math.MaxInt32 {
		return 0, fmt.Errorf("sql: bad LIMIT %q", v.String())
	}
	return int(v.Num), nil
}

// rebind re-binds the plan skeleton to a new literal vector of the same
// shape: constants are re-derived from their source conjuncts, compiled
// kernels see the refreshed slot store, interpreter steps see the refreshed
// params — no parse, no classification, no kernel compile. It reports false
// when the new literals change a conjunct's classification (a constant
// sub-expression that stops evaluating, a region that stops being constant);
// the caller then replans from the AST. Must run under the statement lock.
//
// Stage-then-commit: every re-derivation runs against the incoming vector
// FIRST, and plan state is only written once all of them succeeded. A
// rebind that fails therefore leaves the plan exactly as it was — still
// consistently bound to its previous vector — which matters when the
// caller's fallback replan also errors: the cached plan must not be left
// half-mutated with the new params but the old constants.
func (p *queryPlan) rebind(stmt *SelectStmt, params []Value) bool {
	if len(params) != len(p.params) {
		return false
	}
	limit, err := resolveLimit(stmt, params)
	if err != nil {
		return false
	}
	var region grid.Region
	if p.regionConj != nil {
		var ok bool
		region, ok = pcRegionFromConjunct(p.b, params, p.regionConj)
		if !ok {
			return false
		}
	}
	preds := make([]engine.ColumnPred, len(p.predConjs))
	for i, conj := range p.predConjs {
		pred, ok := pcPredFromConjunct(p.b, params, conj)
		if !ok || pred.Column != p.preds[i].Column || pred.Op != p.preds[i].Op {
			return false
		}
		preds[i] = pred
	}
	classes := make([]string, len(p.vtSteps))
	geoms := make([]geom.Geometry, len(p.vtSteps))
	for i := range p.vtSteps {
		st := &p.vtSteps[i]
		switch st.kind {
		case vtStepClass:
			cls, ok := vtClassEquality(p.b, params, st.expr)
			if !ok {
				return false
			}
			classes[i] = cls
		case vtStepIntersects:
			g, ok := vtIntersectsConst(p.b, params, st.expr)
			if !ok {
				return false
			}
			geoms[i] = g
		}
	}
	join, joinDist := p.join, p.joinDist
	if p.joinConj != nil {
		var err error
		join, joinDist, err = classifyJoinPredicate(p.b, params, p.joinConj)
		if err != nil {
			return false
		}
	}

	// Commit: everything staged successfully; bind the new vector.
	copy(p.params, params)
	p.slots.refresh(params)
	p.limit = limit
	p.region = region
	copy(p.preds, preds)
	for i := range p.vtSteps {
		switch p.vtSteps[i].kind {
		case vtStepClass:
			p.vtSteps[i].class = classes[i]
		case vtStepIntersects:
			p.vtSteps[i].g = geoms[i]
		}
	}
	p.join, p.joinDist = join, joinDist
	return true
}

// stale reports whether a bound table's epoch moved since planning.
func (p *queryPlan) stale() bool {
	if p.b.pc != nil && p.b.pc.Epoch() != p.pcEpoch {
		return true
	}
	if p.b.vt != nil && p.b.vt.Epoch() != p.vtEpoch {
		return true
	}
	return false
}

// addPCConjunct classifies one point-cloud conjunct. allowRegion gates the
// single accelerable spatial region: plain point-cloud queries route their
// first recognised spatial conjunct through the imprint+grid path, while
// joins reach the point cloud through the join operator instead.
func (p *queryPlan) addPCConjunct(c Expr, allowRegion bool) {
	if allowRegion && p.region == nil {
		if r, ok := pcRegionFromConjunct(p.b, p.params, c); ok {
			p.region, p.regionConj = r, c
			return
		}
	}
	if pred, ok := pcPredFromConjunct(p.b, p.params, c); ok {
		p.preds = append(p.preds, pred)
		p.predConjs = append(p.predConjs, c)
		return
	}
	if cf, ok := compilePCFilter(p.b, p.slots, c); ok {
		p.generic = append(p.generic, genericStep{cf: cf, expr: c})
		return
	}
	p.generic = append(p.generic, genericStep{expr: c})
}

// addVTConjunct classifies one vector-table conjunct into its fast path.
func (p *queryPlan) addVTConjunct(c Expr) {
	if cls, ok := vtClassEquality(p.b, p.params, c); ok {
		p.vtSteps = append(p.vtSteps, vtStep{kind: vtStepClass, class: cls, expr: c})
		return
	}
	if g, ok := vtIntersectsConst(p.b, p.params, c); ok {
		p.vtSteps = append(p.vtSteps, vtStep{kind: vtStepIntersects, g: g, expr: c})
		return
	}
	p.vtSteps = append(p.vtSteps, vtStep{kind: vtStepGeneric, expr: c})
}

// planJoinWhere splits join conjuncts by table usage and recognises the
// single cross-table spatial predicate.
func (p *queryPlan) planJoinWhere(where Expr) error {
	var joinConj Expr
	for _, c := range splitConjuncts(where) {
		u := usage(p.b, c)
		switch {
		case u.pc && u.vt:
			if joinConj != nil {
				return fmt.Errorf("sql: at most one spatial join predicate supported")
			}
			joinConj = c
		case u.vt:
			p.addVTConjunct(c)
		default:
			p.addPCConjunct(c, false)
		}
	}
	if joinConj == nil {
		return fmt.Errorf("sql: joins require a spatial predicate linking the tables (e.g. ST_DWithin)")
	}
	p.joinConj = joinConj
	join, dist, err := classifyJoinPredicate(p.b, p.params, joinConj)
	if err != nil {
		return err
	}
	p.join, p.joinDist = join, dist
	return nil
}

// classifyJoinPredicate recognises the join predicate shape once, at
// prepare (or rebind) time, so Run only dispatches on the resolved kind.
// Pure: it never touches plan state, so rebind can stage its result.
func classifyJoinPredicate(b *binding, ps []Value, conj Expr) (joinKind, float64, error) {
	f, ok := conj.(FuncCall)
	if !ok {
		return joinNone, 0, fmt.Errorf("sql: unsupported join predicate %q", conj.exprString())
	}
	switch f.Name {
	case "st_dwithin":
		if len(f.Args) == 3 {
			d, dok := constNum(b, ps, f.Args[2])
			if dok {
				for i := 0; i < 2; i++ {
					if isVTGeom(b, f.Args[i]) && isPCPoint(b, f.Args[1-i]) {
						return joinDWithin, d, nil
					}
				}
			}
		}
	case "st_contains", "st_covers", "st_intersects":
		if len(f.Args) == 2 {
			for i := 0; i < 2; i++ {
				if isVTGeom(b, f.Args[i]) && isPCPoint(b, f.Args[1-i]) {
					if f.Name != "st_intersects" && i != 0 {
						break // containment is asymmetric
					}
					return joinWithin, 0, nil
				}
			}
		}
	case "st_within":
		if len(f.Args) == 2 && isPCPoint(b, f.Args[0]) && isVTGeom(b, f.Args[1]) {
			return joinWithin, 0, nil
		}
	}
	return joinNone, 0, fmt.Errorf("sql: unsupported join predicate %q", conj.exprString())
}

// planOutput classifies the SELECT list and hoists the output columns.
func (p *queryPlan) planOutput(stmt *SelectStmt) error {
	if len(stmt.GroupBy) > 0 {
		p.out = outGrouped
		gp, err := planGrouped(p.b, stmt, p.mode)
		if err != nil {
			return err
		}
		p.grouped = gp
		p.cols = gp.cols
		return nil
	}
	aggCount := 0
	for _, item := range stmt.Items {
		if _, ok := isAggregate(item.Expr); ok {
			aggCount++
		}
	}
	if aggCount > 0 {
		if aggCount != len(stmt.Items) {
			return fmt.Errorf("sql: cannot mix aggregates and plain columns without GROUP BY")
		}
		p.out = outAggregate
		for _, item := range stmt.Items {
			name := item.Alias
			if name == "" {
				name = item.Expr.exprString()
			}
			p.cols = append(p.cols, name)
		}
		return nil
	}
	p.out = outProject
	p.cols, p.exprs = expandItems(stmt.Items, p.b, p.mode == planVector)
	return nil
}

// --- binding ---------------------------------------------------------------

// bind resolves FROM references against the catalog.
func (e *Executor) bind(from []TableRef) (*binding, error) {
	if len(from) == 0 {
		return nil, fmt.Errorf("sql: FROM clause required")
	}
	if len(from) > 2 {
		return nil, fmt.Errorf("sql: at most two tables supported (point cloud × vector join)")
	}
	b := &binding{}
	for _, ref := range from {
		names := []string{ref.Name}
		if ref.Alias != "" {
			names = append(names, ref.Alias)
		}
		if e.db.IsPointCloud(ref.Name) {
			if b.pc != nil {
				return nil, fmt.Errorf("sql: only one point cloud table per query")
			}
			pc, err := e.db.PointCloud(ref.Name)
			if err != nil {
				return nil, err
			}
			b.pc = pc
			b.pcNames = names
			continue
		}
		vt, err := e.db.Vector(ref.Name)
		if err != nil {
			return nil, fmt.Errorf("sql: unknown table %q", ref.Name)
		}
		if b.vt != nil {
			return nil, fmt.Errorf("sql: only one vector table per query")
		}
		b.vt = vt
		b.vtNames = names
	}
	return b, nil
}

// --- conjunct classification ------------------------------------------------

// refUse records which tables an expression touches.
type refUse struct {
	pc, vt bool
}

// usage walks e and classifies its column references under b.
func usage(b *binding, e Expr) refUse {
	var u refUse
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case ColumnRef:
			name := strings.ToLower(t.Name)
			if t.Table != "" {
				if b.isPCName(t.Table) && !b.isVTName(t.Table) {
					u.pc = true
					return
				}
				if b.isVTName(t.Table) && !b.isPCName(t.Table) {
					u.vt = true
					return
				}
			}
			// Unqualified: resolve by column name.
			if b.pc != nil && b.pc.Column(name) != nil {
				u.pc = true
				return
			}
			if b.vt != nil {
				if name == vcID || name == vcClass || name == vcName || name == vcGeom {
					u.vt = true
					return
				}
				for _, attr := range b.vt.NumericAttrs() {
					if strings.EqualFold(attr, name) {
						u.vt = true
						return
					}
				}
			}
		case FuncCall:
			for _, a := range t.Args {
				walk(a)
			}
		case BinaryExpr:
			walk(t.L)
			walk(t.R)
		case NotExpr:
			walk(t.E)
		case BetweenExpr:
			walk(t.Subject)
			walk(t.Lo)
			walk(t.Hi)
		}
	}
	walk(e)
	return u
}

// constGeom evaluates e without row context against the literal vector,
// expecting a geometry.
func constGeom(b *binding, ps []Value, e Expr) (geom.Geometry, bool) {
	v, err := evalExpr(&evalCtx{b: b, ps: ps, pcRow: -1, vtRow: -1}, e)
	if err != nil || v.Kind != KindGeom {
		return nil, false
	}
	return v.Geom, true
}

// constNum evaluates e without row context against the literal vector,
// expecting a number.
func constNum(b *binding, ps []Value, e Expr) (float64, bool) {
	v, err := evalExpr(&evalCtx{b: b, ps: ps, pcRow: -1, vtRow: -1}, e)
	if err != nil || v.Kind != KindNum {
		return 0, false
	}
	return v.Num, true
}

// isPCPoint recognises ST_Point(x, y) over the point cloud's coordinate
// columns — the shape the imprint filter accelerates.
func isPCPoint(b *binding, e Expr) bool {
	f, ok := e.(FuncCall)
	if !ok || f.Name != "st_point" || len(f.Args) != 2 {
		return false
	}
	cx, okx := f.Args[0].(ColumnRef)
	cy, oky := f.Args[1].(ColumnRef)
	if !okx || !oky {
		return false
	}
	return b.isPCName(cx.Table) && b.isPCName(cy.Table) &&
		strings.EqualFold(cx.Name, engine.ColX) && strings.EqualFold(cy.Name, engine.ColY)
}

// isVTGeom recognises a reference to the vector table's geometry column.
func isVTGeom(b *binding, e Expr) bool {
	c, ok := e.(ColumnRef)
	return ok && strings.EqualFold(c.Name, vcGeom) && b.isVTName(c.Table)
}

// pcRegionFromConjunct extracts an accelerable spatial region predicate over
// the point cloud, if e has one of the recognised shapes.
func pcRegionFromConjunct(b *binding, ps []Value, e Expr) (grid.Region, bool) {
	f, ok := e.(FuncCall)
	if !ok {
		return nil, false
	}
	switch f.Name {
	case "st_contains", "st_covers", "st_intersects":
		if len(f.Args) != 2 {
			return nil, false
		}
		for i := 0; i < 2; i++ {
			g, gok := constGeom(b, ps, f.Args[i])
			if gok && isPCPoint(b, f.Args[1-i]) {
				return grid.GeometryRegion{G: g}, true
			}
			// st_contains is asymmetric: the geometry must be first.
			if f.Name != "st_intersects" {
				break
			}
		}
	case "st_within":
		if len(f.Args) != 2 {
			return nil, false
		}
		if g, gok := constGeom(b, ps, f.Args[1]); gok && isPCPoint(b, f.Args[0]) {
			return grid.GeometryRegion{G: g}, true
		}
	case "st_dwithin":
		if len(f.Args) != 3 {
			return nil, false
		}
		d, dok := constNum(b, ps, f.Args[2])
		if !dok {
			return nil, false
		}
		for i := 0; i < 2; i++ {
			g, gok := constGeom(b, ps, f.Args[i])
			if gok && isPCPoint(b, f.Args[1-i]) {
				return grid.BufferRegion{G: g, D: d}, true
			}
		}
	}
	return nil, false
}

// pcPredFromConjunct extracts a thematic column predicate.
func pcPredFromConjunct(b *binding, ps []Value, e Expr) (engine.ColumnPred, bool) {
	switch t := e.(type) {
	case BinaryExpr:
		ops := map[string]engine.CmpOp{
			"=": engine.CmpEQ, "<>": engine.CmpNE, "<": engine.CmpLT,
			"<=": engine.CmpLE, ">": engine.CmpGT, ">=": engine.CmpGE,
		}
		op, ok := ops[t.Op]
		if !ok {
			return engine.ColumnPred{}, false
		}
		if col, v, ok := colAndConst(b, ps, t.L, t.R); ok {
			return engine.ColumnPred{Column: col, Op: op, Value: v}, true
		}
		if col, v, ok := colAndConst(b, ps, t.R, t.L); ok {
			return engine.ColumnPred{Column: col, Op: flipOp(op), Value: v}, true
		}
	case BetweenExpr:
		col, okc := pcColumnName(b, t.Subject)
		lo, okl := constNum(b, ps, t.Lo)
		hi, okh := constNum(b, ps, t.Hi)
		if okc && okl && okh {
			return engine.ColumnPred{Column: col, Op: engine.CmpBetween, Value: lo, Value2: hi}, true
		}
	}
	return engine.ColumnPred{}, false
}

func colAndConst(b *binding, ps []Value, colSide, constSide Expr) (string, float64, bool) {
	col, ok := pcColumnName(b, colSide)
	if !ok {
		return "", 0, false
	}
	v, ok := constNum(b, ps, constSide)
	if !ok {
		return "", 0, false
	}
	return col, v, true
}

func pcColumnName(b *binding, e Expr) (string, bool) {
	c, ok := e.(ColumnRef)
	if !ok || !b.isPCName(c.Table) || b.pc == nil {
		return "", false
	}
	name := strings.ToLower(c.Name)
	if b.pc.Column(name) == nil {
		return "", false
	}
	return name, true
}

func flipOp(op engine.CmpOp) engine.CmpOp {
	switch op {
	case engine.CmpLT:
		return engine.CmpGT
	case engine.CmpLE:
		return engine.CmpGE
	case engine.CmpGT:
		return engine.CmpLT
	case engine.CmpGE:
		return engine.CmpLE
	default:
		return op
	}
}

func vtClassEquality(b *binding, ps []Value, e Expr) (string, bool) {
	t, ok := e.(BinaryExpr)
	if !ok || t.Op != "=" {
		return "", false
	}
	// The class constant may be an inline literal or a parameter slot of
	// string type — the slot's type is part of the statement shape, so a
	// rebind can change the value but never the route.
	constStr := func(e Expr) (string, bool) {
		switch s := e.(type) {
		case StringLit:
			return s.Value, true
		case ParamRef:
			if s.Kind == KindStr && s.Index >= 0 && s.Index < len(ps) {
				return ps[s.Index].Str, true
			}
		}
		return "", false
	}
	if c, ok := t.L.(ColumnRef); ok && strings.EqualFold(c.Name, vcClass) && b.isVTName(c.Table) {
		if s, ok := constStr(t.R); ok {
			return s, true
		}
	}
	if c, ok := t.R.(ColumnRef); ok && strings.EqualFold(c.Name, vcClass) && b.isVTName(c.Table) {
		if s, ok := constStr(t.L); ok {
			return s, true
		}
	}
	return "", false
}

func vtIntersectsConst(b *binding, ps []Value, e Expr) (geom.Geometry, bool) {
	f, ok := e.(FuncCall)
	if !ok || f.Name != "st_intersects" || len(f.Args) != 2 {
		return nil, false
	}
	for i := 0; i < 2; i++ {
		if isVTGeom(b, f.Args[i]) {
			if g, ok := constGeom(b, ps, f.Args[1-i]); ok {
				return g, true
			}
		}
	}
	return nil, false
}

// expandItems resolves * and aliases into output columns and expressions.
func expandItems(items []SelectItem, b *binding, isVector bool) ([]string, []Expr) {
	var cols []string
	var exprs []Expr
	for _, item := range items {
		if _, ok := item.Expr.(Star); ok {
			if isVector {
				for _, name := range []string{vcID, vcClass, vcName, vcGeom} {
					cols = append(cols, name)
					exprs = append(exprs, ColumnRef{Name: name})
				}
				attrs := b.vt.NumericAttrs()
				sort.Strings(attrs)
				for _, a := range attrs {
					cols = append(cols, a)
					exprs = append(exprs, ColumnRef{Name: a})
				}
			} else {
				for _, f := range b.pc.Schema().Fields {
					cols = append(cols, f.Name)
					exprs = append(exprs, ColumnRef{Name: f.Name})
				}
			}
			continue
		}
		name := item.Alias
		if name == "" {
			name = item.Expr.exprString()
		}
		cols = append(cols, name)
		exprs = append(exprs, item.Expr)
	}
	return cols, exprs
}

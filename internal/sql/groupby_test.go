package sql

import (
	"math"
	"testing"

	"gisnav/internal/engine"
)

func TestGroupByClassification(t *testing.T) {
	e, pc, _, _ := testDB(t)
	res := mustQuery(t, e,
		"SELECT classification, count(*) AS n, avg(z) AS mean_z FROM ahn2 GROUP BY classification")
	if len(res.Columns) != 3 || res.Columns[1] != "n" {
		t.Fatalf("columns = %v", res.Columns)
	}
	// Reference aggregation.
	cls := pc.Column(engine.ColClassification)
	counts := map[float64]int{}
	sums := map[float64]float64{}
	for i := 0; i < pc.Len(); i++ {
		c := cls.Value(i)
		counts[c]++
		sums[c] += pc.Z()[i]
	}
	if len(res.Rows) != len(counts) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(counts))
	}
	total := 0
	for _, row := range res.Rows {
		c := row[0].Num
		n := int(row[1].Num)
		if counts[c] != n {
			t.Fatalf("class %v: count %d, want %d", c, n, counts[c])
		}
		wantAvg := sums[c] / float64(counts[c])
		if math.Abs(row[2].Num-wantAvg) > 1e-9 {
			t.Fatalf("class %v: avg %v, want %v", c, row[2].Num, wantAvg)
		}
		total += n
	}
	if total != pc.Len() {
		t.Fatalf("group counts sum to %d, want %d", total, pc.Len())
	}
	// Output is ordered by key value (ascending numeric since PR 5; the
	// pre-vectorization tail sorted by key STRING, which put 10 before 2).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Num >= res.Rows[i][0].Num {
			t.Fatal("groups not key-ordered")
		}
	}
}

func TestGroupByWithWhereAndOrderLimit(t *testing.T) {
	e, _, _, _ := testDB(t)
	res := mustQuery(t, e, `
		SELECT classification, count(*) AS n
		FROM ahn2
		WHERE z > 0
		GROUP BY classification
		ORDER BY n DESC
		LIMIT 3`)
	if len(res.Rows) > 3 {
		t.Fatalf("limit ignored: %d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].Num < res.Rows[i][1].Num {
			t.Fatal("order by n desc violated")
		}
	}
}

func TestGroupByVectorTable(t *testing.T) {
	e, _, _, ua := testDB(t)
	res := mustQuery(t, e,
		"SELECT class, count(*) AS zones, avg(pop_density) AS density FROM ua GROUP BY class")
	// Reference.
	counts := map[string]int{}
	for i := 0; i < ua.Len(); i++ {
		counts[ua.Class(i)]++
	}
	if len(res.Rows) != len(counts) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(counts))
	}
	for _, row := range res.Rows {
		if counts[row[0].Str] != int(row[1].Num) {
			t.Fatalf("class %s: %v vs %d", row[0].Str, row[1].Num, counts[row[0].Str])
		}
	}
}

func TestGroupByExpressionsAndAliases(t *testing.T) {
	e, _, _, _ := testDB(t)
	// Group on a computed bucket (floor via integer-ish arithmetic is not
	// available; use z-range buckets through comparison-free arithmetic).
	res := mustQuery(t, e,
		"SELECT number_of_returns, max(z) FROM ahn2 GROUP BY number_of_returns")
	if len(res.Rows) < 1 {
		t.Fatal("no groups")
	}
	// Alias used in GROUP BY.
	res2 := mustQuery(t, e,
		"SELECT classification AS cls, count(*) FROM ahn2 GROUP BY cls")
	if len(res2.Rows) < 2 {
		t.Fatal("alias grouping failed")
	}
	// A bare item naming the underlying column of an aliased key must
	// classify as that key (select items match the RESOLVED key list).
	res3 := mustQuery(t, e,
		"SELECT classification AS cls, classification, count(*) FROM ahn2 GROUP BY cls")
	for _, row := range res3.Rows {
		if row[0].Num != row[1].Num {
			t.Fatalf("aliased and bare key diverge: %v vs %v", row[0], row[1])
		}
	}
}

func TestGroupByErrors(t *testing.T) {
	e, _, _, _ := testDB(t)
	// Non-grouped bare column.
	if _, err := e.Query("SELECT z, count(*) FROM ahn2 GROUP BY classification"); err == nil {
		t.Fatal("bare non-key column should fail")
	}
	// ORDER BY something that is not a select item.
	if _, err := e.Query("SELECT classification, count(*) FROM ahn2 GROUP BY classification ORDER BY z"); err == nil {
		t.Fatal("order by non-item should fail")
	}
	// Aggregate of a string.
	if _, err := e.Query("SELECT class, sum(name) FROM ua GROUP BY class"); err == nil {
		t.Fatal("sum of string should fail")
	}
	// Parser: GROUP without BY.
	if _, err := Parse("SELECT a FROM t GROUP a"); err == nil {
		t.Fatal("GROUP without BY should fail")
	}
}

func TestGroupByJoin(t *testing.T) {
	e, pc, _, ua := testDB(t)
	// Per-classification breakdown of points near fast transit zones.
	res := mustQuery(t, e, `
		SELECT classification, count(*) AS n
		FROM ahn2, ua
		WHERE ua.class = '12210'
		  AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 30)
		GROUP BY classification`)
	// Cross-check totals against the ungrouped join.
	resTotal := mustQuery(t, e, `
		SELECT count(*) FROM ahn2, ua
		WHERE ua.class = '12210'
		  AND ST_DWithin(ua.geom, ST_Point(ahn2.x, ahn2.y), 30)`)
	sum := 0.0
	for _, row := range res.Rows {
		sum += row[1].Num
	}
	if sum != resTotal.Rows[0][0].Num {
		t.Fatalf("grouped sum %v != total %v", sum, resTotal.Rows[0][0].Num)
	}
	_ = pc
	_ = ua
}

func TestGroupByStatementString(t *testing.T) {
	stmt, err := Parse("SELECT classification, count(*) FROM ahn2 GROUP BY classification ORDER BY classification LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(stmt.String()); err != nil {
		t.Fatalf("canonical grouped form reparse: %v", err)
	}
}

// Package sql implements the declarative front-end of the spatially-enabled
// column store: a SELECT subset with the OGC Simple Features functions the
// demo's predefined and ad-hoc queries use (§3.3, §4) — ST_MakeEnvelope,
// ST_GeomFromText, ST_Point, ST_Contains, ST_Intersects, ST_DWithin — over
// flat point-cloud tables, vector tables, and the one join shape scenario 2
// exercises (point cloud × vector table under a spatial predicate).
//
// The planner recognises accelerable predicate shapes and routes them to the
// engine's filter–refine operators; anything else falls back to a row-wise
// expression evaluator, so every well-formed query of the subset executes.
package sql

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // comparison and arithmetic operators
	tokPunct // ( ) , . *
	tokParam // a literal normalised into a parameter slot (params.go)
)

// token is one lexeme with its source offset for error messages. For
// tokParam tokens — produced by the auto-parameterisation pass, never by the
// lexer — idx is the parameter slot and vkind the extracted literal's type.
type token struct {
	kind  tokenKind
	text  string
	pos   int
	idx   int
	vkind ValueKind
}

// keywords recognised by the parser (upper-cased).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "AS": true, "ORDER": true, "BY": true, "ASC": true,
	"DESC": true, "LIMIT": true, "BETWEEN": true, "TRUE": true, "FALSE": true,
	"GROUP": true,
}

// lexer splits a query string into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises src.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.ident()
		case c >= '0' && c <= '9':
			if err := l.number(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		case c == '(', c == ')', c == ',', c == '.', c == '*':
			l.emit(tokPunct, string(c), l.pos)
			l.pos++
		case c == '=', c == '+', c == '-', c == '/', c == '%':
			l.emit(tokOp, string(c), l.pos)
			l.pos++
		case c == '<':
			if l.peekAt(1) == '=' {
				l.emit(tokOp, "<=", l.pos)
				l.pos += 2
			} else if l.peekAt(1) == '>' {
				l.emit(tokOp, "<>", l.pos)
				l.pos += 2
			} else {
				l.emit(tokOp, "<", l.pos)
				l.pos++
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.emit(tokOp, ">=", l.pos)
				l.pos += 2
			} else {
				l.emit(tokOp, ">", l.pos)
				l.pos++
			}
		case c == '!':
			if l.peekAt(1) == '=' {
				l.emit(tokOp, "<>", l.pos)
				l.pos += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at %d", l.pos)
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[strings.ToUpper(text)] {
		l.emit(tokKeyword, strings.ToUpper(text), start)
		return
	}
	l.emit(tokIdent, text, start)
}

func (l *lexer) number() error {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			l.emit(tokNumber, l.src[start:l.pos], start)
			return nil
		}
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
	return nil
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.peekAt(1) == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, sb.String(), start)
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

package sql

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"gisnav/internal/cancel"
	"gisnav/internal/engine"
	"gisnav/internal/pyramid"
)

// GROUP BY: planning and execution. Each select item must be either an
// aggregate or an expression appearing in the GROUP BY list; one output row
// emerges per distinct key, ordered by key value (or by ORDER BY over an
// output column).
//
// Classification happens ONCE, at Prepare (planGrouped): aliases in the
// GROUP BY list resolve to their select-item expressions, every select item
// is classified as key or aggregate, and the plan records whether the whole
// statement vectorizes — a single point-cloud key column with every
// aggregate a count(*) or a bare-column count/sum/avg/min/max. Vectorized
// statements execute through the engine's grouped-aggregate kernels
// (engine/groupagg.go: dense array banks for u8/u16 keys, the hash table
// otherwise), with the engine's reusable result record held in the plan as
// per-statement scratch — the same one-run-at-a-time ownership as the
// compiled kernels' chunk buffers. Everything else (vector tables, joins
// grouped on vector columns, computed keys, expression aggregate
// arguments) retains the row-at-a-time interpreter as the fallback arm.
// The EXPLAIN "group" step reports which strategy ran: dense, hash, or
// interpreter.
//
// Rebind contract (PR 4): GROUP BY and SELECT-list literals stay inline by
// policy, so a groupedPlan derives nothing from the literal vector — the
// key column, aggregate specs and item classification are shape-stable and
// survive every rebind untouched. WHERE-derived constants reach a grouped
// query only through the shared filter phases, which already route them
// through ColumnPred staging and the paramStore slots; no grouped kernel
// closes over a predicate constant. Epoch moves replan as usual
// (classification reads the table schema).
//
// Semantics note: both arms share the engine's aggregate accumulation
// contract (see computeAggregate): min/max seed at ±Inf with strict
// compares so NaN values never win them, sum/avg propagate NaN, and sums
// accumulate in ascending row order per group. Key identity collapses every
// NaN into one group; output order is the engine's FloatOrderKey total
// order per key (ascending numeric, -0 before +0, NaN last; strings sort
// lexically).

// aggAcc accumulates one aggregate over one group (interpreter arm).
type aggAcc struct {
	n        int
	sum      float64
	lo, hi   float64
	starArgs bool // count(*)
}

// add folds one value; lo/hi start at ±Inf (newGroup) and use strict
// compares, matching the engine kernels' NaN behaviour exactly.
func (a *aggAcc) add(v float64) {
	if v < a.lo {
		a.lo = v
	}
	if v > a.hi {
		a.hi = v
	}
	a.sum += v
	a.n++
}

func (a *aggAcc) result(name string) Value {
	switch name {
	case "count":
		return numVal(float64(a.n))
	case "sum":
		return numVal(a.sum)
	case "avg":
		if a.n == 0 {
			return Value{Kind: KindNull}
		}
		return numVal(a.sum / float64(a.n))
	case "min":
		if a.n == 0 {
			return Value{Kind: KindNull}
		}
		return numVal(a.lo)
	case "max":
		if a.n == 0 {
			return Value{Kind: KindNull}
		}
		return numVal(a.hi)
	default:
		return Value{Kind: KindNull}
	}
}

// itemPlan classifies one select item of a grouped query.
type itemPlan struct {
	name     string
	keyIndex int      // ≥ 0: the item is group key #keyIndex
	agg      FuncCall // valid when keyIndex < 0
}

// group holds the state of one distinct key (interpreter arm).
type group struct {
	keyVals []Value
	accs    []aggAcc
}

// groupedPlan is the prepare-time classification of a GROUP BY statement.
type groupedPlan struct {
	groupBy []Expr     // alias-resolved key expressions
	items   []itemPlan // classified select items, in select order
	cols    []string   // output column names
	aggs    []FuncCall // aggregate items, in select order

	// Vectorized strategy: non-empty keyCol routes execution through the
	// engine's grouped kernels with specs (parallel to aggs); empty keeps
	// the interpreter. scratch is the engine's reusable result record —
	// per-statement state guarded by the one-run-at-a-time plan ownership.
	keyCol  string
	specs   []engine.GroupedAggSpec
	scratch engine.GroupedResult

	// Pyramid eligibility (PR 10): a non-empty pyrSig names the
	// pre-aggregation pyramid shape (u8 key, count/min/max specs) this
	// statement can route through when its only filter is a spatial
	// region. Shape-derived only, like keyCol/specs — rebinds keep it.
	pyrSig string
}

// planGrouped classifies a GROUP BY statement once, at Prepare time.
func planGrouped(b *binding, stmt *SelectStmt, mode planMode) (*groupedPlan, error) {
	gp := &groupedPlan{}
	// Resolve select-item aliases used as GROUP BY keys to their underlying
	// expressions (e.g. GROUP BY cls for "classification AS cls").
	gp.groupBy = append([]Expr(nil), stmt.GroupBy...)
	for k, g := range gp.groupBy {
		c, ok := g.(ColumnRef)
		if !ok || c.Table != "" {
			continue
		}
		for _, item := range stmt.Items {
			if item.Alias != "" && strings.EqualFold(item.Alias, c.Name) {
				gp.groupBy[k] = item.Expr
				break
			}
		}
	}
	// Classify select items against the group-by list.
	gp.items = make([]itemPlan, len(stmt.Items))
	for i, item := range stmt.Items {
		name := item.Alias
		if name == "" {
			name = item.Expr.exprString()
		}
		gp.items[i] = itemPlan{name: name, keyIndex: -1}
		gp.cols = append(gp.cols, name)
		if f, ok := isAggregate(item.Expr); ok {
			gp.items[i].agg = f
			gp.aggs = append(gp.aggs, f)
			continue
		}
		matched := false
		// Match against the alias-RESOLVED key list: an item naming the
		// underlying column of an aliased key (GROUP BY cls for
		// "classification AS cls") is that key.
		for k, g := range gp.groupBy {
			if g.exprString() == item.Expr.exprString() ||
				(item.Alias != "" && g.exprString() == item.Alias) {
				gp.items[i].keyIndex = k
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("sql: %q must appear in GROUP BY or be an aggregate", name)
		}
	}
	gp.vectorize(b, mode)
	if gp.keyCol != "" {
		if sig, ok := pyramid.Shape(b.pc, gp.keyCol, gp.specs); ok {
			gp.pyrSig = sig
		}
	}
	return gp, nil
}

// vectorize marks the plan for the engine's grouped kernels when the whole
// statement fits their shape: point-cloud rows, exactly one key that is a
// bare point-cloud column, and every aggregate either count(*)/count(col)
// or sum/avg/min/max over a bare point-cloud column. Anything else — vector
// tables, computed keys, multi-key grouping, expression arguments — keeps
// the interpreter arm.
func (gp *groupedPlan) vectorize(b *binding, mode planMode) {
	if mode == planVector || b.pc == nil || len(gp.groupBy) != 1 {
		return
	}
	key, ok := pcColumnName(b, gp.groupBy[0])
	if !ok {
		return
	}
	specs := make([]engine.GroupedAggSpec, 0, len(gp.aggs))
	for _, f := range gp.aggs {
		if len(f.Args) != 1 {
			return
		}
		if _, star := f.Args[0].(Star); star {
			if f.Name != "count" {
				return // e.g. sum(*): the interpreter raises its error
			}
			specs = append(specs, engine.GroupedAggSpec{Fn: engine.AggCount})
			continue
		}
		col, ok := pcColumnName(b, f.Args[0])
		if !ok {
			return
		}
		fn := aggFuncs[f.Name]
		if fn == engine.AggCount {
			// count(col) over the NULL-free flat table is the group size.
			col = ""
		}
		specs = append(specs, engine.GroupedAggSpec{Fn: fn, Column: col})
	}
	gp.keyCol, gp.specs = key, specs
}

// execGrouped materialises a GROUP BY query over the selected rows through
// the strategy fixed at Prepare: engine grouped kernels when the plan
// vectorized, the row-at-a-time interpreter otherwise. Both arms emit
// groups in the same canonical key order and share the ORDER BY/LIMIT tail.
func execGrouped(rs *engine.Run, p *queryPlan, stmt *SelectStmt, rows []int, isVector bool, ex *engine.Explain) (*Result, error) {
	gp := p.grouped
	start := time.Now()
	res := &Result{Columns: gp.cols, Explain: ex}
	strategy := "interpreter"
	if gp.keyCol != "" && !isVector {
		// ex lands the engine's group.agg step (kernel strategy + timing)
		// ahead of the SQL-layer group step below; nil on untraced runs.
		if err := p.b.pc.GroupedAggregateRun(rs, rows, gp.keyCol, gp.specs, &gp.scratch, ex); err != nil {
			return nil, err
		}
		strategy = gp.scratch.Strategy
		materialiseGrouped(gp, res)
		// Engine results arrive already in FloatOrderKey order.
	} else {
		if err := interpretGrouped(rs, p, gp, rows, isVector, res); err != nil {
			return nil, err
		}
	}
	if ex != nil { // the Sprintf below must not run on untraced steady-state runs
		ex.Add("group", fmt.Sprintf("%s: %d groups over %d keys", strategy, len(res.Rows), len(gp.groupBy)),
			len(rows), len(res.Rows), time.Since(start))
	}
	if err := groupedTail(p, stmt, gp, res); err != nil {
		return nil, err
	}
	return res, nil
}

// materialiseGrouped expands the engine's column-shaped grouped result
// (gp.scratch) into Value rows in select-item order — shared by the exact
// vectorized arm and the pyramid arm, so both emit identical rows for
// identical scratch contents.
func materialiseGrouped(gp *groupedPlan, res *Result) {
	ks := gp.scratch.Keys
	res.Rows = make([][]Value, 0, len(ks))
	for i := range ks {
		row := make([]Value, len(gp.items))
		ai := 0
		for j, ip := range gp.items {
			if ip.keyIndex >= 0 {
				row[j] = numVal(ks[i])
			} else {
				row[j] = numVal(gp.scratch.Cols[ai][i])
				ai++
			}
		}
		res.Rows = append(res.Rows, row)
	}
}

// groupedTail applies ORDER BY over an output column (by alias or
// expression text) and LIMIT — the shared tail of every grouped arm.
func groupedTail(p *queryPlan, stmt *SelectStmt, gp *groupedPlan, res *Result) error {
	if stmt.Order != nil {
		col := -1
		want := stmt.Order.Expr.exprString()
		for i, ip := range gp.items {
			if ip.name == want || stmt.Items[i].Expr.exprString() == want {
				col = i
				break
			}
		}
		if col < 0 {
			return fmt.Errorf("sql: ORDER BY %q must name a select item in grouped queries", want)
		}
		desc := stmt.Order.Desc
		sort.SliceStable(res.Rows, func(a, c int) bool {
			if desc {
				return valueLess(res.Rows[c][col], res.Rows[a][col])
			}
			return valueLess(res.Rows[a][col], res.Rows[c][col])
		})
	}
	if p.limit >= 0 && len(res.Rows) > p.limit {
		res.Rows = res.Rows[:p.limit]
	}
	return nil
}

// tryPyramid routes an eligible viewport-histogram statement — grouped
// output, pyramid-eligible shape, a spatial region as the ONLY filter —
// through the pre-aggregation pyramid: interior tiles answer from
// O(visible tiles) of pre-aggregates, boundary tiles refine exactly, and
// the result is bit-identical to the exact arm (the shape gate admits
// only merge-exact count/min/max aggregates). ok=false falls back to the
// exact selection + grouped-kernel path with nothing consumed: the
// pyramid declines tables it cannot tile (empty, degenerate extent),
// regions whose envelopes it cannot span, and disabled routing. The
// pyramid itself is cached per (table, epoch, shape); an epoch bump
// (Append/InvalidateIndexes) drops it lazily on next lookup.
func (pq *PreparedQuery) tryPyramid(rs *engine.Run, p *queryPlan, ex *engine.Explain) (res *Result, ok bool, err error) {
	gp := p.grouped
	if p.out != outGrouped || gp == nil || gp.pyrSig == "" ||
		p.region == nil || len(p.preds) > 0 || len(p.generic) > 0 {
		return nil, false, nil
	}
	start := time.Now()
	pyr, err := pyramid.For(rs, p.b.pc, gp.keyCol, gp.specs, gp.pyrSig, ex)
	if err != nil || pyr == nil {
		return nil, false, err
	}
	defer pyr.Release()
	qs, served, err := pyr.QueryRegionRun(rs, p.region, gp.specs, &gp.scratch)
	if err != nil || !served {
		return nil, false, err
	}
	res = &Result{Columns: gp.cols, Explain: ex}
	materialiseGrouped(gp, res)
	if ex != nil { // Sprintf stays off the untraced steady-state path
		ex.Add("group", fmt.Sprintf("pyramid(level %d, interior %d, boundary %d): %d groups over %d keys",
			qs.Level, qs.Interior, qs.Boundary, len(res.Rows), len(gp.groupBy)),
			qs.BoundaryRows, len(res.Rows), time.Since(start))
	}
	if err := groupedTail(p, pq.stmt, gp, res); err != nil {
		return nil, true, err
	}
	return res, true, nil
}

// interpretGrouped is the row-at-a-time fallback arm: evaluate the key
// expressions and aggregate arguments per row, accumulate into a map keyed
// by the rendered key tuple, then emit groups sorted into the same
// canonical key order the engine kernels produce.
func interpretGrouped(rs *engine.Run, p *queryPlan, gp *groupedPlan, rows []int, isVector bool, res *Result) error {
	groups := map[string]*group{}
	ctx := &evalCtx{b: p.b, ps: p.params, pcRow: -1, vtRow: -1}
	var keyBuf strings.Builder
	// The key tuple is evaluated into a reused scratch slice and cloned only
	// when the row opens a new group — existing groups (the common case) cost
	// no per-row allocation.
	keyScratch := make([]Value, len(gp.groupBy))
	for n, r := range rows {
		if n%exprChunk == 0 && rs.Cancelled() {
			return cancel.ErrCancelled
		}
		setRow(ctx, isVector, r)
		keyBuf.Reset()
		for k, gexpr := range gp.groupBy {
			v, err := evalExpr(ctx, gexpr)
			if err != nil {
				return err
			}
			keyScratch[k] = v
			keyBuf.WriteString(v.String())
			keyBuf.WriteByte(0)
		}
		key := keyBuf.String()
		grp, ok := groups[key]
		if !ok {
			grp = newGroup(append([]Value(nil), keyScratch...), len(gp.aggs))
			groups[key] = grp
		}
		for ai, f := range gp.aggs {
			acc := &grp.accs[ai]
			if f.Name == "count" && len(f.Args) == 1 {
				if _, isStar := f.Args[0].(Star); isStar {
					acc.n++
					continue
				}
			}
			if len(f.Args) != 1 {
				return fmt.Errorf("sql: %s expects one argument", f.Name)
			}
			v, err := evalExpr(ctx, f.Args[0])
			if err != nil {
				return err
			}
			if v.Kind != KindNum {
				return fmt.Errorf("sql: %s needs numeric input", f.Name)
			}
			acc.add(v.Num)
		}
	}

	// Emit one row per group in canonical key order.
	ordered := make([]*group, 0, len(groups))
	for _, grp := range groups {
		ordered = append(ordered, grp)
	}
	sort.Slice(ordered, func(a, c int) bool {
		return groupKeyLess(ordered[a].keyVals, ordered[c].keyVals)
	})
	res.Rows = make([][]Value, 0, len(ordered))
	for _, grp := range ordered {
		row := make([]Value, len(gp.items))
		ai := 0
		for i, ip := range gp.items {
			if ip.keyIndex >= 0 {
				row[i] = grp.keyVals[ip.keyIndex]
			} else {
				row[i] = grp.accs[ai].result(ip.agg.Name)
				ai++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}

// newGroup seeds a group's accumulators (±Inf min/max, see aggAcc.add).
func newGroup(keyVals []Value, naggs int) *group {
	g := &group{keyVals: keyVals, accs: make([]aggAcc, naggs)}
	for i := range g.accs {
		g.accs[i].lo = math.Inf(1)
		g.accs[i].hi = math.Inf(-1)
	}
	return g
}

// groupKeyLess orders two key tuples in the canonical grouped-output order:
// element-wise, numbers by the engine's FloatOrderKey total order (so both
// execution arms agree on NaN and ±0 placement), strings lexically, other
// kinds by their rendering.
func groupKeyLess(a, b []Value) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		switch {
		case a[i].Kind == KindNum && b[i].Kind == KindNum:
			ka, kb := engine.FloatOrderKey(a[i].Num), engine.FloatOrderKey(b[i].Num)
			if ka != kb {
				return ka < kb
			}
		case a[i].Kind == KindStr && b[i].Kind == KindStr:
			if a[i].Str != b[i].Str {
				return a[i].Str < b[i].Str
			}
		default:
			sa, sb := a[i].String(), b[i].String()
			if sa != sb {
				return sa < sb
			}
		}
	}
	return false
}

package sql

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gisnav/internal/engine"
)

// GROUP BY execution. Each select item must be either an aggregate or an
// expression appearing in the GROUP BY list; one output row emerges per
// distinct key, ordered by key (or by ORDER BY over an output column).

// aggAcc accumulates one aggregate over one group.
type aggAcc struct {
	n        int
	sum      float64
	lo, hi   float64
	starArgs bool // count(*)
}

func (a *aggAcc) add(v float64) {
	if a.n == 0 {
		a.lo, a.hi = v, v
	} else {
		if v < a.lo {
			a.lo = v
		}
		if v > a.hi {
			a.hi = v
		}
	}
	a.sum += v
	a.n++
}

func (a *aggAcc) result(name string) Value {
	switch name {
	case "count":
		return numVal(float64(a.n))
	case "sum":
		return numVal(a.sum)
	case "avg":
		if a.n == 0 {
			return Value{Kind: KindNull}
		}
		return numVal(a.sum / float64(a.n))
	case "min":
		if a.n == 0 {
			return Value{Kind: KindNull}
		}
		return numVal(a.lo)
	case "max":
		if a.n == 0 {
			return Value{Kind: KindNull}
		}
		return numVal(a.hi)
	default:
		return Value{Kind: KindNull}
	}
}

// itemPlan classifies one select item of a grouped query.
type itemPlan struct {
	name     string
	keyIndex int      // ≥ 0: the item is group key #keyIndex
	agg      FuncCall // valid when keyIndex < 0
}

// group holds the state of one distinct key.
type group struct {
	keyVals []Value
	accs    []aggAcc
}

// outputGrouped materialises a GROUP BY query over the selected rows. p
// supplies the binding, the bound literal vector (WHERE parameters can leak
// into aggregate arguments through aliases) and the bound LIMIT.
func outputGrouped(p *queryPlan, stmt *SelectStmt, rows []int, isVector bool, ex *engine.Explain) (*Result, error) {
	b := p.b
	start := time.Now()
	// Resolve select-item aliases used as GROUP BY keys to their
	// underlying expressions (e.g. GROUP BY cls for "classification AS cls").
	groupBy := append([]Expr(nil), stmt.GroupBy...)
	for k, g := range groupBy {
		c, ok := g.(ColumnRef)
		if !ok || c.Table != "" {
			continue
		}
		for _, item := range stmt.Items {
			if item.Alias != "" && strings.EqualFold(item.Alias, c.Name) {
				groupBy[k] = item.Expr
				break
			}
		}
	}
	stmt = &SelectStmt{
		Items: stmt.Items, From: stmt.From, Where: stmt.Where,
		GroupBy: groupBy, Order: stmt.Order, Limit: stmt.Limit,
	}
	// Classify select items against the group-by list.
	plans := make([]itemPlan, len(stmt.Items))
	var aggItems []FuncCall
	for i, item := range stmt.Items {
		name := item.Alias
		if name == "" {
			name = item.Expr.exprString()
		}
		plans[i] = itemPlan{name: name, keyIndex: -1}
		if f, ok := isAggregate(item.Expr); ok {
			plans[i].agg = f
			aggItems = append(aggItems, f)
			continue
		}
		matched := false
		for k, g := range stmt.GroupBy {
			if g.exprString() == item.Expr.exprString() ||
				(item.Alias != "" && g.exprString() == item.Alias) {
				plans[i].keyIndex = k
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("sql: %q must appear in GROUP BY or be an aggregate", plans[i].name)
		}
	}

	// Accumulate.
	groups := map[string]*group{}
	ctx := &evalCtx{b: b, ps: p.params, pcRow: -1, vtRow: -1}
	var keyBuf strings.Builder
	for _, r := range rows {
		setRow(ctx, isVector, r)
		keyVals := make([]Value, len(stmt.GroupBy))
		keyBuf.Reset()
		for k, gexpr := range stmt.GroupBy {
			v, err := evalExpr(ctx, gexpr)
			if err != nil {
				return nil, err
			}
			keyVals[k] = v
			keyBuf.WriteString(v.String())
			keyBuf.WriteByte(0)
		}
		key := keyBuf.String()
		grp, ok := groups[key]
		if !ok {
			grp = &group{keyVals: keyVals, accs: make([]aggAcc, len(aggItems))}
			groups[key] = grp
		}
		for ai, f := range aggItems {
			acc := &grp.accs[ai]
			if f.Name == "count" && len(f.Args) == 1 {
				if _, isStar := f.Args[0].(Star); isStar {
					acc.n++
					continue
				}
			}
			if len(f.Args) != 1 {
				return nil, fmt.Errorf("sql: %s expects one argument", f.Name)
			}
			v, err := evalExpr(ctx, f.Args[0])
			if err != nil {
				return nil, err
			}
			if v.Kind != KindNum {
				return nil, fmt.Errorf("sql: %s needs numeric input", f.Name)
			}
			acc.add(v.Num)
		}
	}

	// Emit one row per group, deterministically ordered by key string.
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	res := &Result{Explain: ex}
	for _, p := range plans {
		res.Columns = append(res.Columns, p.name)
	}
	for _, k := range keys {
		grp := groups[k]
		row := make([]Value, len(plans))
		ai := 0
		for i, p := range plans {
			if p.keyIndex >= 0 {
				row[i] = grp.keyVals[p.keyIndex]
			} else {
				row[i] = grp.accs[ai].result(p.agg.Name)
				ai++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	ex.Add("group", fmt.Sprintf("%d groups over %d keys", len(groups), len(stmt.GroupBy)),
		len(rows), len(res.Rows), time.Since(start))

	// ORDER BY over an output column (by alias or expression text).
	if stmt.Order != nil {
		col := -1
		want := stmt.Order.Expr.exprString()
		for i, p := range plans {
			if p.name == want || stmt.Items[i].Expr.exprString() == want {
				col = i
				break
			}
		}
		if col < 0 {
			return nil, fmt.Errorf("sql: ORDER BY %q must name a select item in grouped queries", want)
		}
		desc := stmt.Order.Desc
		sort.SliceStable(res.Rows, func(a, c int) bool {
			if desc {
				return valueLess(res.Rows[c][col], res.Rows[a][col])
			}
			return valueLess(res.Rows[a][col], res.Rows[c][col])
		})
	}
	if p.limit >= 0 && len(res.Rows) > p.limit {
		res.Rows = res.Rows[:p.limit]
	}
	return res, nil
}

// Auto-parameterisation: the front half of the plan-skeleton fast path. The
// paper's navigation workload is a stream of near-identical statements whose
// only difference is the viewport constants — every pan/zoom step slides the
// bbox literals. parameterize normalises those literals out of the statement
// text into an ordered literal vector and produces the statement's SHAPE
// key: the token-normalised text with each extracted literal replaced by a
// typed placeholder. Executor.Query keys its statement cache on the shape,
// so a new bbox re-uses the compiled plan skeleton of every earlier step —
// it re-binds constants (plan.go rebind) instead of re-planning.
//
// Policy: literals are extracted from the WHERE clause and the LIMIT count
// only. SELECT-list, GROUP BY and ORDER BY literals stay inline — they feed
// output-column naming and grouping structure, so parameterising them would
// change user-visible results; statements differing there simply get their
// own shape. The literal TYPE is part of the shape ("?n" vs "?s"): conjunct
// classification dispatches on it (class = 'road' routes through the
// dictionary, class = 5 through the interpreter), so two texts whose
// literals differ in type must not share a skeleton.
package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// parameterize lexes src, extracts its WHERE/LIMIT literals into params, and
// returns the shape key plus the normalised token stream (literal tokens
// replaced by tokParam). The key is whitespace-insensitive: it is rebuilt
// from the token stream, so formatting differences between two texts of the
// same shape also coalesce.
func parameterize(src string) (key string, toks []token, params []Value, err error) {
	toks, err = lex(src)
	if err != nil {
		return "", nil, nil, err
	}
	inWhere := false
	limitNext := false
	for i := range toks {
		t := &toks[i]
		if t.kind == tokKeyword {
			switch t.text {
			case "WHERE":
				inWhere = true
			case "GROUP", "ORDER":
				inWhere = false
			case "LIMIT":
				inWhere = false
				limitNext = true
				continue
			}
		}
		takeNumber := t.kind == tokNumber && (inWhere || limitNext)
		takeString := t.kind == tokString && inWhere
		if takeNumber {
			v, perr := strconv.ParseFloat(t.text, 64)
			if perr != nil {
				// Mirror the parser's rejection so parameterisation never
				// accepts a literal Parse would have refused.
				return "", nil, nil, fmt.Errorf("sql: bad number %q (at offset %d)", t.text, t.pos)
			}
			params = append(params, numVal(v))
			*t = token{kind: tokParam, text: "?", pos: t.pos, idx: len(params) - 1, vkind: KindNum}
		} else if takeString {
			params = append(params, strVal(t.text))
			*t = token{kind: tokParam, text: "?", pos: t.pos, idx: len(params) - 1, vkind: KindStr}
		}
		limitNext = false
	}
	return shapeKey(toks), toks, params, nil
}

// shapeKey renders the normalised token stream as the statement-cache key.
// Placeholders carry their literal type; string literals that stay inline
// (outside WHERE) are quoted so they cannot collide with identifiers.
func shapeKey(toks []token) string {
	var sb strings.Builder
	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch t.kind {
		case tokParam:
			if t.vkind == KindStr {
				sb.WriteString("?s")
			} else {
				sb.WriteString("?n")
			}
		case tokString:
			// Re-escape embedded quotes: the lexer unescaped '' to ', and
			// rendering the raw text would let a literal containing
			// "' AS x , '" collide with a two-literal statement's key.
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			sb.WriteByte('\'')
		default:
			sb.WriteString(t.text)
		}
	}
	return sb.String()
}

// equalParams reports whether two literal vectors are identical — the
// same-text fast path: when a shape-cache hit carries the constants already
// bound into the plan, the rebind pass is skipped entirely. NaN constants
// compare unequal and therefore re-bind, the safe direction.
func equalParams(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind {
			return false
		}
		switch a[i].Kind {
		case KindNum:
			if a[i].Num != b[i].Num {
				return false
			}
		case KindStr:
			if a[i].Str != b[i].Str {
				return false
			}
		default:
			return false
		}
	}
	return true
}

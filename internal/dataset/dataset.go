// Package dataset ties the generators, the file formats and the engine
// together: it materialises the demo's three datasets on disk (LIDAR tiles,
// OSM-like vectors, Urban-Atlas-like zones) and loads them back into an
// engine catalog. The command-line tools and examples share it.
package dataset

import (
	"fmt"
	"os"
	"path/filepath"

	"gisnav/internal/engine"
	"gisnav/internal/geom"
	"gisnav/internal/lastools"
	"gisnav/internal/synth"
)

// Canonical file names inside a dataset directory.
const (
	TilesSubdir = "tiles"
	OSMFile     = "osm.tsv"
	UAFile      = "ua.tsv"
)

// Table names the datasets register under in the engine catalog.
const (
	TableCloud = "ahn2"
	TableOSM   = "osm"
	TableUA    = "ua"
)

// Params configures dataset generation.
type Params struct {
	// Region is the modelled extent in metres. Default 4000×4000.
	Region geom.Envelope
	// TilesX and TilesY shape the tile grid. Default 4×4.
	TilesX, TilesY int
	// Density is points per square metre. Default 0.05.
	Density float64
	// Format is the LAS point format. Default 3 (GPS time + RGB).
	Format uint8
	// Compressed selects LAZ-sim tiles.
	Compressed bool
	// UACells is the Urban-Atlas coverage resolution per side. Default 40.
	UACells int
	// Seed drives all generators.
	Seed uint64
}

func (p Params) withDefaults() Params {
	if p.Region.IsEmpty() || p.Region.Area() == 0 {
		p.Region = geom.NewEnvelope(0, 0, 4000, 4000)
	}
	if p.TilesX <= 0 {
		p.TilesX = 4
	}
	if p.TilesY <= 0 {
		p.TilesY = 4
	}
	if p.Density <= 0 {
		p.Density = 0.05
	}
	if p.Format == 0 {
		p.Format = 3
	}
	if p.UACells <= 0 {
		p.UACells = 40
	}
	if p.Seed == 0 {
		p.Seed = 2015
	}
	return p
}

// Info describes a generated dataset.
type Info struct {
	Dir    string
	Region geom.Envelope
	Points int
	Tiles  int
	OSM    int
	UA     int
}

// Generate materialises all three datasets under dir.
func Generate(dir string, p Params) (Info, error) {
	p = p.withDefaults()
	info := Info{Dir: dir, Region: p.Region}
	terrain := synth.NewTerrain(p.Seed, p.Region)

	ds, err := synth.WriteTiles(terrain, p.Region, p.TilesX, p.TilesY, p.Density,
		p.Format, p.Compressed, p.Seed, filepath.Join(dir, TilesSubdir))
	if err != nil {
		return info, fmt.Errorf("dataset: tiles: %w", err)
	}
	info.Points = ds.Points
	info.Tiles = len(ds.Files)

	osm := synth.GenerateOSM(terrain, p.Seed+1)
	if err := synth.WriteOSMFile(filepath.Join(dir, OSMFile), osm); err != nil {
		return info, fmt.Errorf("dataset: osm: %w", err)
	}
	info.OSM = len(osm)

	ua := synth.GenerateUrbanAtlas(terrain, synth.Motorways(osm), p.UACells, p.UACells, p.Seed+2)
	if err := synth.WriteUAFile(filepath.Join(dir, UAFile), ua); err != nil {
		return info, fmt.Errorf("dataset: ua: %w", err)
	}
	info.UA = len(ua)
	return info, nil
}

// Load reads a generated dataset directory into a fresh engine catalog via
// the binary bulk loader, returning the catalog and load statistics.
func Load(dir string) (*engine.DB, engine.LoadStats, error) {
	repo, err := lastools.Open(filepath.Join(dir, TilesSubdir))
	if err != nil {
		return nil, engine.LoadStats{}, fmt.Errorf("dataset: %w", err)
	}
	pc := engine.NewPointCloud()
	st, err := engine.LoadBinary(pc, repo)
	if err != nil {
		return nil, st, err
	}

	db := engine.NewDB()
	db.RegisterPointCloud(TableCloud, pc)

	if feats, err := loadOSM(dir); err == nil {
		vt := engine.NewVectorTable()
		for _, f := range feats {
			vt.Append(f.ID, f.Class, f.Name, f.Geom, nil)
		}
		db.RegisterVector(TableOSM, vt)
	} else if !os.IsNotExist(err) {
		return nil, st, err
	}

	if zones, err := loadUA(dir); err == nil {
		vt := engine.NewVectorTable()
		for _, z := range zones {
			vt.Append(int64(z.ID), z.Code, z.Label, z.Geom,
				map[string]float64{"pop_density": z.PopDensity})
		}
		db.RegisterVector(TableUA, vt)
	} else if !os.IsNotExist(err) {
		return nil, st, err
	}
	return db, st, nil
}

func loadOSM(dir string) ([]synth.Feature, error) {
	return synth.ReadOSMFile(filepath.Join(dir, OSMFile))
}

func loadUA(dir string) ([]synth.Zone, error) {
	return synth.ReadUAFile(filepath.Join(dir, UAFile))
}

// Repo opens the tile repository of a dataset directory (for the file-based
// baseline experiments).
func Repo(dir string) (*lastools.Repository, error) {
	return lastools.Open(filepath.Join(dir, TilesSubdir))
}

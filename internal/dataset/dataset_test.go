package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"gisnav/internal/geom"
)

func TestGenerateAndLoad(t *testing.T) {
	dir := t.TempDir()
	p := Params{
		Region: geom.NewEnvelope(0, 0, 500, 500),
		TilesX: 2, TilesY: 2,
		Density: 0.05,
		UACells: 8,
		Seed:    5,
	}
	info, err := Generate(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if info.Points == 0 || info.Tiles != 4 || info.OSM == 0 || info.UA != 64 {
		t.Fatalf("info = %+v", info)
	}
	db, st, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != info.Points {
		t.Fatalf("loaded %d points, generated %d", st.Points, info.Points)
	}
	pc, err := db.PointCloud(TableCloud)
	if err != nil || pc.Len() != info.Points {
		t.Fatal("cloud table missing")
	}
	if _, err := db.Vector(TableOSM); err != nil {
		t.Fatal("osm table missing")
	}
	if _, err := db.Vector(TableUA); err != nil {
		t.Fatal("ua table missing")
	}
	// A selection touches real data.
	sel := pc.SelectBox(geom.NewEnvelope(50, 50, 200, 200))
	if len(sel.Rows) == 0 {
		t.Fatal("selection found nothing")
	}
}

func TestLoadWithoutVectors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Generate(dir, Params{
		Region: geom.NewEnvelope(0, 0, 200, 200),
		TilesX: 1, TilesY: 1, Density: 0.05, UACells: 4, Seed: 6,
	}); err != nil {
		t.Fatal(err)
	}
	// Remove the vector files; loading must still succeed.
	os.Remove(filepath.Join(dir, OSMFile))
	os.Remove(filepath.Join(dir, UAFile))
	db, _, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Vector(TableOSM); err == nil {
		t.Fatal("osm should be absent")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dataset should error")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.TilesX != 4 || p.Density != 0.05 || p.Format != 3 || p.Seed != 2015 || p.UACells != 40 {
		t.Fatalf("defaults = %+v", p)
	}
	if p.Region.Width() != 4000 {
		t.Fatalf("default region = %v", p.Region)
	}
}

func TestCompressedDataset(t *testing.T) {
	dir := t.TempDir()
	info, err := Generate(dir, Params{
		Region: geom.NewEnvelope(0, 0, 300, 300),
		TilesX: 1, TilesY: 1, Density: 0.05, UACells: 4, Seed: 7,
		Compressed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := Repo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Files()) != 1 || filepath.Ext(repo.Files()[0]) != ".laz" {
		t.Fatalf("files = %v", repo.Files())
	}
	db, st, err := Load(dir)
	if err != nil || st.Points != info.Points {
		t.Fatalf("laz load: %v", err)
	}
	if _, err := db.PointCloud(TableCloud); err != nil {
		t.Fatal(err)
	}
}

package synth

import (
	"math"
	"path/filepath"
	"testing"

	"gisnav/internal/geom"
	"gisnav/internal/las"
)

func testRegion() geom.Envelope { return geom.NewEnvelope(0, 0, 4000, 4000) }

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGDistributions(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v", mean)
	}
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < n/10-400 || c > n/10+400 {
			t.Fatalf("Intn bucket %d = %d", d, c)
		}
	}
	var nsum, nsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		nsum += v
		nsq += v * v
	}
	if mean := nsum / n; math.Abs(mean) > 0.05 {
		t.Fatalf("Norm mean = %v", mean)
	}
	if variance := nsq / n; math.Abs(variance-1) > 0.1 {
		t.Fatalf("Norm variance = %v", variance)
	}
	lo, hi := 5.0, 9.0
	for i := 0; i < 100; i++ {
		v := r.Range(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestValueNoiseProperties(t *testing.T) {
	// Determinism and range.
	for i := 0; i < 500; i++ {
		x := float64(i) * 0.37
		y := float64(i) * 0.91
		v1 := ValueNoise(5, x, y)
		v2 := ValueNoise(5, x, y)
		if v1 != v2 {
			t.Fatal("noise must be deterministic")
		}
		if v1 < 0 || v1 >= 1 {
			t.Fatalf("noise out of range: %v", v1)
		}
	}
	// Continuity: close inputs give close outputs.
	for i := 0; i < 200; i++ {
		x := float64(i) * 0.13
		d := math.Abs(ValueNoise(5, x, 1.5) - ValueNoise(5, x+0.001, 1.5))
		if d > 0.01 {
			t.Fatalf("noise discontinuity: %v", d)
		}
	}
	// Different seeds differ.
	diff := false
	for i := 0; i < 20; i++ {
		if ValueNoise(1, float64(i)+0.5, 0.5) != ValueNoise(2, float64(i)+0.5, 0.5) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds should change the field")
	}
}

func TestFBMRangeAndOctaves(t *testing.T) {
	for i := 0; i < 200; i++ {
		v := FBM(9, float64(i)*0.21, float64(i)*0.17, 4)
		if v < 0 || v >= 1 {
			t.Fatalf("fbm out of range: %v", v)
		}
	}
	if FBM(9, 1, 1, 0) != 0 {
		t.Fatal("zero octaves should be zero")
	}
}

func TestTerrainFeatures(t *testing.T) {
	tr := NewTerrain(11, testRegion())
	// Canals are water below ground level.
	s := tr.At(5, 5) // on the canal grid origin
	if s.Class != ClassWater || s.Z != -1.8 {
		t.Fatalf("canal surface = %+v", s)
	}
	// Urban core contains buildings somewhere.
	core := tr.urbanCore()
	foundBuilding, foundStreet := false, false
	for i := 0; i < 2000 && !(foundBuilding && foundStreet); i++ {
		x := core.MinX + math.Mod(float64(i)*37.7, core.Width())
		y := core.MinY + math.Mod(float64(i)*53.3, core.Height())
		switch tr.At(x, y).Class {
		case ClassBuilding:
			foundBuilding = true
		case ClassRoadSurface:
			foundStreet = true
		}
	}
	if !foundBuilding || !foundStreet {
		t.Fatalf("urban core should have buildings (%v) and streets (%v)", foundBuilding, foundStreet)
	}
	// Buildings rise above the bare ground.
	for i := 0; i < 200; i++ {
		x := core.MinX + core.Width()*hashUnit(3, int64(i), 0)
		y := core.MinY + core.Height()*hashUnit(3, 0, int64(i))
		s := tr.At(x, y)
		if s.Class == ClassBuilding {
			if s.BuildingHeight <= 0 {
				t.Fatal("building without height")
			}
			if got := tr.GroundAt(x, y); got >= s.Z {
				t.Fatal("ground must be below roof")
			}
		}
	}
	// Dunes: western edge is higher on average than centre-east farmland.
	var west, east float64
	n := 0
	for i := 0; i < 50; i++ {
		y := 100 + float64(i)*70
		if tr.At(30, y).Class == ClassWater || tr.At(3000, y).Class == ClassWater {
			continue
		}
		west += tr.At(30, y).Z
		east += tr.At(3000, y).Z
		n++
	}
	if n > 10 && west/float64(n) <= east/float64(n) {
		t.Fatalf("dunes should raise the west: west=%v east=%v", west/float64(n), east/float64(n))
	}
	// Determinism.
	tr2 := NewTerrain(11, testRegion())
	for i := 0; i < 100; i++ {
		x, y := float64(i)*37.3, float64(i)*11.9
		if tr.At(x, y) != tr2.At(x, y) {
			t.Fatal("terrain must be deterministic")
		}
	}
}

func TestGenerateTileScanOrderAndAttributes(t *testing.T) {
	tr := NewTerrain(13, testRegion())
	env := geom.NewEnvelope(1000, 1000, 1200, 1200)
	pts := GenerateTile(tr, TileSpec{Env: env, Density: 0.05, Seed: 99, SourceID: 1234})
	if len(pts) == 0 {
		t.Fatal("tile should have points")
	}
	// Expected count ≈ density × area (plus canopy second returns).
	expected := 0.05 * env.Area()
	if float64(len(pts)) < expected*0.8 || float64(len(pts)) > expected*1.7 {
		t.Fatalf("point count %d far from expected %v", len(pts), expected)
	}
	prevGPS := 0.0
	for i, p := range pts {
		if !env.ContainsPoint(p.X, p.Y) {
			t.Fatalf("point %d outside tile: %v %v", i, p.X, p.Y)
		}
		if p.GPSTime < prevGPS {
			t.Fatalf("gps time must be non-decreasing at %d", i)
		}
		prevGPS = p.GPSTime
		if p.PointSourceID != 1234 {
			t.Fatalf("source id = %d", p.PointSourceID)
		}
		if p.ReturnNumber < 1 || p.ReturnNumber > p.NumReturns {
			t.Fatalf("return numbering broken: %d/%d", p.ReturnNumber, p.NumReturns)
		}
	}
	// Scan order: successive first returns should usually be near each other
	// (local clustering in file order).
	near := 0
	total := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].ReturnNumber != 1 {
			continue
		}
		total++
		if math.Abs(pts[i].X-pts[i-1].X) < 30 && math.Abs(pts[i].Y-pts[i-1].Y) < 30 {
			near++
		}
	}
	if float64(near)/float64(total) < 0.9 {
		t.Fatalf("scan order not clustered: %d/%d near", near, total)
	}
	// Multi-return pairs share a pulse.
	for i := 1; i < len(pts); i++ {
		if pts[i].ReturnNumber == 2 {
			if pts[i-1].ReturnNumber != 1 || pts[i-1].NumReturns != 2 {
				t.Fatal("second return must follow its first return")
			}
			if pts[i].Z >= pts[i-1].Z {
				t.Fatal("ground return must be below canopy return")
			}
		}
	}
	// Determinism.
	pts2 := GenerateTile(tr, TileSpec{Env: env, Density: 0.05, Seed: 99, SourceID: 1234})
	if len(pts2) != len(pts) || pts2[17] != pts[17] {
		t.Fatal("tile generation must be deterministic")
	}
	// Degenerate inputs.
	if GenerateTile(tr, TileSpec{Env: env, Density: 0}) != nil {
		t.Fatal("zero density should yield nil")
	}
	if GenerateTile(tr, TileSpec{Env: geom.EmptyEnvelope(), Density: 1}) != nil {
		t.Fatal("empty envelope should yield nil")
	}
}

func TestWriteTiles(t *testing.T) {
	tr := NewTerrain(17, testRegion())
	dir := t.TempDir()
	region := geom.NewEnvelope(0, 0, 400, 400)
	ds, err := WriteTiles(tr, region, 2, 2, 0.02, 3, false, 5, filepath.Join(dir, "las"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Files) != 4 || ds.Points == 0 {
		t.Fatalf("dataset = %+v", ds)
	}
	total := 0
	for _, f := range ds.Files {
		h, pts, err := las.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if int(h.PointCount) != len(pts) {
			t.Fatal("header count mismatch")
		}
		total += len(pts)
	}
	if total != ds.Points {
		t.Fatalf("file points %d != dataset points %d", total, ds.Points)
	}
	// Compressed variant round-trips and is smaller in aggregate.
	dsz, err := WriteTiles(tr, region, 2, 2, 0.02, 3, true, 5, filepath.Join(dir, "laz"))
	if err != nil {
		t.Fatal(err)
	}
	if dsz.Points != ds.Points {
		t.Fatal("laz tiles must have same points")
	}
	if sizeOf(t, dsz.Files) >= sizeOf(t, ds.Files) {
		t.Fatal("laz tiles should be smaller")
	}
	for _, f := range dsz.Files {
		if _, _, err := las.ReadAnyFile(f); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
}

func sizeOf(t *testing.T, files []string) int64 {
	t.Helper()
	var n int64
	for _, f := range files {
		fi, err := statFile(f)
		if err != nil {
			t.Fatal(err)
		}
		n += fi
	}
	return n
}

func TestGenerateOSM(t *testing.T) {
	tr := NewTerrain(19, testRegion())
	feats := GenerateOSM(tr, 3)
	if len(feats) < 50 {
		t.Fatalf("too few features: %d", len(feats))
	}
	classes := map[string]int{}
	for _, f := range feats {
		classes[f.Class]++
		if f.Name == "" || f.ID == 0 || f.Geom == nil {
			t.Fatalf("incomplete feature %+v", f)
		}
		if f.Geom.GeometryType() != geom.TypePoint && f.Geom.IsEmpty() {
			t.Fatalf("empty geometry on %s", f.Name)
		}
	}
	for _, c := range []string{ClassMotorway, ClassPrimary, ClassResidential, ClassRiver, ClassCanal, ClassPOI} {
		if classes[c] == 0 {
			t.Fatalf("class %s missing", c)
		}
	}
	if classes[ClassMotorway] != 5 {
		t.Fatalf("motorways = %d, want ring + 4 radials", classes[ClassMotorway])
	}
	m := Motorways(feats)
	if len(m) != 5 {
		t.Fatalf("Motorways() = %d", len(m))
	}
	// IDs are unique.
	seen := map[int64]bool{}
	for _, f := range feats {
		if seen[f.ID] {
			t.Fatalf("duplicate id %d", f.ID)
		}
		seen[f.ID] = true
	}
	// Determinism.
	feats2 := GenerateOSM(tr, 3)
	if len(feats2) != len(feats) || feats2[7].Name != feats[7].Name {
		t.Fatal("osm generation must be deterministic")
	}
}

func TestGenerateUrbanAtlas(t *testing.T) {
	tr := NewTerrain(23, testRegion())
	osm := GenerateOSM(tr, 3)
	zones := GenerateUrbanAtlas(tr, Motorways(osm), 20, 20, 5)
	if len(zones) != 400 {
		t.Fatalf("zones = %d", len(zones))
	}
	codes := map[string]int{}
	var area float64
	for _, z := range zones {
		codes[z.Code]++
		area += z.Geom.Area()
		if z.Label != UALabel(z.Code) {
			t.Fatalf("label mismatch on %d", z.ID)
		}
		if z.PopDensity < 0 {
			t.Fatal("negative population density")
		}
	}
	// Coverage tiles the region exactly.
	if math.Abs(area-testRegion().Area()) > 1 {
		t.Fatalf("coverage area %v != region %v", area, testRegion().Area())
	}
	// The important classes for the demo queries exist.
	for _, c := range []string{UAFastTransit, UAContinuousUrban, UAArable, UAWater} {
		if codes[c] == 0 {
			t.Fatalf("code %s missing from coverage (%v)", c, codes)
		}
	}
	// Fast-transit zones hug motorways.
	ms := Motorways(osm)
	for _, z := range zones {
		if z.Code != UAFastTransit {
			continue
		}
		c := z.Geom.Envelope().Center()
		nearAny := false
		for _, m := range ms {
			if geom.DistancePointToGeometry(c.X, c.Y, m) <= 130 {
				nearAny = true
				break
			}
		}
		if !nearAny {
			t.Fatalf("fast transit zone %d far from all motorways", z.ID)
		}
	}
	// Urban population densities dominate rural ones.
	if codes[UAContinuousUrban] > 0 && codes[UAArable] > 0 {
		var urb, rur float64
		var nu, nr int
		for _, z := range zones {
			switch z.Code {
			case UAContinuousUrban:
				urb += z.PopDensity
				nu++
			case UAArable:
				rur += z.PopDensity
				nr++
			}
		}
		if urb/float64(nu) <= rur/float64(nr) {
			t.Fatal("urban density should exceed rural")
		}
	}
	if UALabel("99999") != "Unknown" {
		t.Fatal("unknown code label")
	}
}

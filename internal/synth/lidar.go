package synth

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"gisnav/internal/geom"
	"gisnav/internal/las"
)

// Standard quantisation for generated tiles: centimetre grid anchored at the
// region origin, matching AHN2 practice.
const (
	TileScale = 0.01
)

// TileSpec describes one LIDAR tile to generate.
type TileSpec struct {
	Env      geom.Envelope
	Density  float64 // points per square metre
	Seed     uint64
	SourceID uint16 // flight line id recorded in PointSourceID
}

// GenerateTile samples the terrain over the tile extent in airborne scan
// order: the scanner sweeps X within successive Y swaths, alternating
// direction. File order therefore exhibits the local spatial clustering the
// paper's imprints exploit (§2.1.1).
func GenerateTile(t *Terrain, spec TileSpec) []las.Point {
	if spec.Density <= 0 || spec.Env.IsEmpty() {
		return nil
	}
	step := 1 / math.Sqrt(spec.Density)
	rng := NewRNG(spec.Seed)
	var pts []las.Point
	gps := float64(spec.Seed%100000) + 1e5
	swath := 0
	for y := spec.Env.MinY + step/2; y < spec.Env.MaxY; y += step {
		xs := scanXs(spec.Env, step, swath)
		swath++
		for _, x := range xs {
			jx := x + (rng.Float64()-0.5)*step*0.6
			jy := y + (rng.Float64()-0.5)*step*0.6
			if jx < spec.Env.MinX || jx >= spec.Env.MaxX || jy < spec.Env.MinY || jy >= spec.Env.MaxY {
				jx, jy = x, y
			}
			s := t.At(jx, jy)
			gps += 5e-5
			scanAngle := int8((jx - spec.Env.Center().X) / spec.Env.Width() * 40)
			base := las.Point{
				X: jx, Y: jy, Z: s.Z,
				Intensity:      intensityFor(s, rng),
				ReturnNumber:   1,
				NumReturns:     1,
				ScanDirection:  swath%2 == 0,
				EdgeOfFlight:   len(pts) == 0,
				Classification: s.Class,
				ScanAngleRank:  scanAngle,
				UserData:       uint8(swath % 256),
				PointSourceID:  spec.SourceID,
				GPSTime:        gps,
			}
			base.Red, base.Green, base.Blue = colourFor(s)
			// Vegetation yields a second (ground) return under the canopy.
			if s.CanopyHeight > 0 && rng.Float64() < 0.6 {
				base.NumReturns = 2
				pts = append(pts, base)
				groundRet := base
				groundRet.Z = s.Z - s.CanopyHeight
				groundRet.ReturnNumber = 2
				groundRet.Classification = ClassGround
				groundRet.Intensity /= 2
				groundRet.GPSTime = gps // same pulse
				pts = append(pts, groundRet)
				continue
			}
			pts = append(pts, base)
		}
	}
	return pts
}

// scanXs returns the X sample positions of one swath, direction alternating.
func scanXs(env geom.Envelope, step float64, swath int) []float64 {
	var xs []float64
	for x := env.MinX + step/2; x < env.MaxX; x += step {
		xs = append(xs, x)
	}
	if swath%2 == 1 {
		for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
			xs[i], xs[j] = xs[j], xs[i]
		}
	}
	return xs
}

// intensityFor models return intensity by surface type.
func intensityFor(s Surface, rng *RNG) uint16 {
	var base float64
	switch s.Class {
	case ClassWater:
		base = 80
	case ClassBuilding:
		base = 900
	case ClassRoadSurface:
		base = 400
	case ClassHighVeg, ClassMedVeg, ClassLowVeg:
		base = 300
	default:
		base = 600
	}
	v := base + rng.Float64()*120
	return uint16(v)
}

// colourFor assigns an orthophoto-like RGB per class.
func colourFor(s Surface) (r, g, b uint16) {
	switch s.Class {
	case ClassWater:
		return 15 << 8, 60 << 8, 120 << 8
	case ClassBuilding:
		return 150 << 8, 90 << 8, 70 << 8
	case ClassRoadSurface:
		return 90 << 8, 90 << 8, 95 << 8
	case ClassHighVeg:
		return 30 << 8, 110 << 8, 40 << 8
	case ClassMedVeg, ClassLowVeg:
		return 80 << 8, 150 << 8, 60 << 8
	default:
		return 120 << 8, 130 << 8, 90 << 8
	}
}

// Dataset describes a generated multi-tile LIDAR archive on disk — the stand-
// in for the 60,185-file AHN2 distribution (§2.2).
type Dataset struct {
	Dir   string
	Files []string
	// Points is the total generated point count.
	Points int
}

// WriteTiles generates tilesX × tilesY tiles covering region at the given
// density and writes one file per tile into dir. compressed selects LAZ-sim
// (".laz") over raw LAS (".las"). format is the LAS point format (0–3).
func WriteTiles(t *Terrain, region geom.Envelope, tilesX, tilesY int, density float64,
	format uint8, compressed bool, seed uint64, dir string) (Dataset, error) {
	ds := Dataset{Dir: dir}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ds, err
	}
	tw := region.Width() / float64(tilesX)
	th := region.Height() / float64(tilesY)
	offX, offY := region.MinX, region.MinY
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			env := geom.NewEnvelope(
				region.MinX+float64(tx)*tw, region.MinY+float64(ty)*th,
				region.MinX+float64(tx+1)*tw, region.MinY+float64(ty+1)*th,
			)
			spec := TileSpec{
				Env: env, Density: density,
				Seed:     splitmix64(seed ^ uint64(ty*tilesX+tx)),
				SourceID: uint16(1000 + ty*tilesX + tx),
			}
			pts := GenerateTile(t, spec)
			ds.Points += len(pts)
			ext := ".las"
			if compressed {
				ext = ".laz"
			}
			name := fmt.Sprintf("tile_%03d_%03d%s", tx, ty, ext)
			path := filepath.Join(dir, name)
			var err error
			if compressed {
				err = las.WriteLAZFile(path, format, TileScale, TileScale, TileScale, offX, offY, 0, pts)
			} else {
				err = las.WriteFile(path, format, TileScale, TileScale, TileScale, offX, offY, 0, pts)
			}
			if err != nil {
				return ds, fmt.Errorf("synth: writing %s: %w", name, err)
			}
			ds.Files = append(ds.Files, path)
		}
	}
	return ds, nil
}

package synth

import (
	"os"
	"path/filepath"
	"testing"

	"gisnav/internal/geom"
)

func TestOSMFileRoundTrip(t *testing.T) {
	tr := NewTerrain(91, testRegion())
	feats := GenerateOSM(tr, 5)
	path := filepath.Join(t.TempDir(), "osm.tsv")
	if err := WriteOSMFile(path, feats); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOSMFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(feats) {
		t.Fatalf("roundtrip %d features, want %d", len(got), len(feats))
	}
	for i := range feats {
		if got[i].ID != feats[i].ID || got[i].Class != feats[i].Class || got[i].Name != feats[i].Name {
			t.Fatalf("feature %d metadata mismatch", i)
		}
		if got[i].Geom.WKT() != feats[i].Geom.WKT() {
			t.Fatalf("feature %d geometry mismatch", i)
		}
	}
}

func TestUAFileRoundTrip(t *testing.T) {
	tr := NewTerrain(93, testRegion())
	zones := GenerateUrbanAtlas(tr, nil, 8, 8, 2)
	path := filepath.Join(t.TempDir(), "ua.tsv")
	if err := WriteUAFile(path, zones); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUAFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(zones) {
		t.Fatalf("roundtrip %d zones, want %d", len(got), len(zones))
	}
	for i := range zones {
		if got[i].ID != zones[i].ID || got[i].Code != zones[i].Code {
			t.Fatalf("zone %d metadata mismatch", i)
		}
		if got[i].Label != zones[i].Label {
			t.Fatalf("zone %d label not rederived", i)
		}
		if got[i].PopDensity != zones[i].PopDensity {
			t.Fatalf("zone %d density mismatch", i)
		}
		if got[i].Geom.Area() != zones[i].Geom.Area() {
			t.Fatalf("zone %d geometry mismatch", i)
		}
	}
}

func TestVectorFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadOSMFile(filepath.Join(dir, "missing.tsv")); err == nil {
		t.Fatal("missing file should error")
	}
	bad := filepath.Join(dir, "bad.tsv")
	if err := os.WriteFile(bad, []byte("header\nnot-enough-fields\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadOSMFile(bad); err == nil {
		t.Fatal("short row should error")
	}
	if _, err := ReadUAFile(bad); err == nil {
		t.Fatal("short UA row should error")
	}
	badWKT := filepath.Join(dir, "badwkt.tsv")
	if err := os.WriteFile(badWKT, []byte("h\n1\tmotorway\tA1\tNOTWKT (0 0)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadOSMFile(badWKT); err == nil {
		t.Fatal("bad wkt should error")
	}
	// UA zone with non-polygon geometry.
	badZone := filepath.Join(dir, "badzone.tsv")
	if err := os.WriteFile(badZone, []byte("h\n1\t11100\t5\tPOINT (1 2)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadUAFile(badZone); err == nil {
		t.Fatal("non-polygon zone should error")
	}
	_ = geom.Point{} // keep import if cases above change
}

// Package synth generates the deterministic synthetic datasets that stand in
// for the paper's three demo datasets (§4): a "mini Netherlands" LIDAR scan
// replacing AHN2, a classed road/river/POI network replacing OpenStreetMap,
// and a land-use polygon coverage with Urban Atlas nomenclature codes
// replacing the Urban Atlas.
//
// Everything derives from splitmix64 streams seeded explicitly, so datasets
// regenerate bit-for-bit across runs and machines — a requirement for the
// reproducibility of the experiment suite.
package synth

import "math"

// splitmix64 advances and mixes a 64-bit state (Steele et al.).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// RNG is a small deterministic generator over splitmix64.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 { return lo + r.Float64()*(hi-lo) }

// Norm returns a standard-normal sample (Box–Muller, one value per call).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// hash2 mixes a seed with 2-D lattice coordinates into 64 bits; the
// stateless primitive under value noise.
func hash2(seed uint64, ix, iy int64) uint64 {
	h := seed
	h = splitmix64(h ^ uint64(ix)*0x9E3779B97F4A7C15)
	h = splitmix64(h ^ uint64(iy)*0xC2B2AE3D27D4EB4F)
	return h
}

// hashUnit maps hash2 output to [0, 1).
func hashUnit(seed uint64, ix, iy int64) float64 {
	return float64(hash2(seed, ix, iy)>>11) / (1 << 53)
}

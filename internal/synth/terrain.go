package synth

import (
	"math"

	"gisnav/internal/geom"
)

// LAS classification codes (ASPRS standard) used by the terrain model.
const (
	ClassGround        = 2
	ClassLowVeg        = 3
	ClassMedVeg        = 4
	ClassHighVeg       = 5
	ClassBuilding      = 6
	ClassWater         = 9
	ClassRoadSurface   = 11
	ClassWireConductor = 14
)

// Terrain is the deterministic "mini Netherlands" surface model the LIDAR
// generator samples: gently rolling polder ground, a central urban core with
// block buildings, tree belts, a canal grid at negative elevation and dune
// ridges along the western edge. It is scale-free: the same seed yields the
// same surface at any extent.
type Terrain struct {
	seed uint64
	// Region is the nominal full extent of the model; urban core and dunes
	// are placed relative to it.
	Region geom.Envelope
}

// NewTerrain builds a terrain model over region.
func NewTerrain(seed uint64, region geom.Envelope) *Terrain {
	return &Terrain{seed: seed, Region: region}
}

// Surface is a sampled surface point: elevation plus land classification.
type Surface struct {
	Z     float64
	Class uint8
	// CanopyHeight is nonzero under vegetation: the height of the first
	// return above ground.
	CanopyHeight float64
	// BuildingHeight is nonzero on building footprints.
	BuildingHeight float64
}

// urbanCore returns the envelope of the dense city centre (middle ~30%).
func (t *Terrain) urbanCore() geom.Envelope {
	w, h := t.Region.Width(), t.Region.Height()
	c := t.Region.Center()
	return geom.NewEnvelope(c.X-w*0.15, c.Y-h*0.15, c.X+w*0.15, c.Y+h*0.15)
}

// canalSpacing returns the canal grid period in model units.
func (t *Terrain) canalSpacing() float64 {
	s := math.Min(t.Region.Width(), t.Region.Height()) / 8
	if s <= 0 {
		s = 1
	}
	return s
}

const canalWidth = 14.0 // metres

// nearCanal reports whether (x, y) falls on the canal grid.
func (t *Terrain) nearCanal(x, y float64) bool {
	s := t.canalSpacing()
	dx := math.Mod(x-t.Region.MinX, s)
	dy := math.Mod(y-t.Region.MinY, s)
	if dx < 0 {
		dx += s
	}
	if dy < 0 {
		dy += s
	}
	return dx < canalWidth || dy < canalWidth
}

// At samples the surface at (x, y).
func (t *Terrain) At(x, y float64) Surface {
	// Base ground: rolling fBm between -1 and +9 m NAP-ish.
	nx := (x - t.Region.MinX) / 900
	ny := (y - t.Region.MinY) / 900
	ground := FBM(t.seed, nx, ny, 4)*10 - 1

	// Dunes: a high-frequency ridge along the western 8% of the region.
	duneBand := t.Region.MinX + t.Region.Width()*0.08
	if x < duneBand && t.Region.Width() > 0 {
		f := (duneBand - x) / (t.Region.Width() * 0.08)
		ground += f * (8 + 10*ValueNoise(t.seed^0xD0E5, nx*6, ny*6))
	}

	// Canals override everything: water at constant level below ground.
	if t.nearCanal(x, y) {
		return Surface{Z: -1.8, Class: ClassWater}
	}

	// Urban core: block buildings on a 60 m street grid.
	if core := t.urbanCore(); core.ContainsPoint(x, y) {
		const block = 60.0
		bx := int64(math.Floor((x - core.MinX) / block))
		by := int64(math.Floor((y - core.MinY) / block))
		// Street margins: outer 8 m of each block.
		fx := math.Mod(x-core.MinX, block)
		fy := math.Mod(y-core.MinY, block)
		onStreet := fx < 8 || fy < 8
		if onStreet {
			return Surface{Z: ground, Class: ClassRoadSurface}
		}
		// ~70% of blocks carry a building.
		h := hashUnit(t.seed^0xB11D, bx, by)
		if h < 0.7 {
			height := 6 + h*30 // 6..27 m
			return Surface{Z: ground + height, Class: ClassBuilding, BuildingHeight: height}
		}
		// Courtyard / park block.
		return Surface{Z: ground, Class: ClassLowVeg}
	}

	// Vegetation belts from a second noise field.
	veg := FBM(t.seed^0x7E6E, nx*3, ny*3, 3)
	switch {
	case veg > 0.62:
		canopy := 4 + 14*ValueNoise(t.seed^0xCA11, nx*10, ny*10)
		return Surface{Z: ground + canopy, Class: ClassHighVeg, CanopyHeight: canopy}
	case veg > 0.55:
		canopy := 1 + 2*ValueNoise(t.seed^0xCA12, nx*10, ny*10)
		return Surface{Z: ground + canopy, Class: ClassMedVeg, CanopyHeight: canopy}
	default:
		return Surface{Z: ground, Class: ClassGround}
	}
}

// GroundAt returns the bare-earth elevation at (x, y) (no canopy or
// buildings), used for multi-return generation.
func (t *Terrain) GroundAt(x, y float64) float64 {
	s := t.At(x, y)
	return s.Z - s.CanopyHeight - s.BuildingHeight
}

package synth

import "math"

// smoothstep is the C1 fade curve used for lattice interpolation.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// ValueNoise returns deterministic lattice value noise in [0, 1) at (x, y)
// for the given seed. Frequency is controlled by pre-scaling x and y.
func ValueNoise(seed uint64, x, y float64) float64 {
	ix := int64(math.Floor(x))
	iy := int64(math.Floor(y))
	fx := x - math.Floor(x)
	fy := y - math.Floor(y)
	v00 := hashUnit(seed, ix, iy)
	v10 := hashUnit(seed, ix+1, iy)
	v01 := hashUnit(seed, ix, iy+1)
	v11 := hashUnit(seed, ix+1, iy+1)
	sx := smoothstep(fx)
	sy := smoothstep(fy)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

// FBM sums octaves of value noise (fractal Brownian motion), returning a
// value in [0, 1). Each octave doubles frequency and halves amplitude.
func FBM(seed uint64, x, y float64, octaves int) float64 {
	var sum, norm float64
	amp := 1.0
	freq := 1.0
	for o := 0; o < octaves; o++ {
		sum += amp * ValueNoise(seed+uint64(o)*0x9E37, x*freq, y*freq)
		norm += amp
		amp /= 2
		freq *= 2
	}
	if norm == 0 {
		return 0
	}
	return sum / norm
}

package synth

import (
	"math"

	"gisnav/internal/geom"
)

// Urban Atlas nomenclature codes used by the generator. Codes and labels
// follow the EEA Urban Atlas 2012 class list; 12210 is the "fast transit
// road" class the paper's scenario-2 queries filter on (§4.2).
const (
	UAContinuousUrban    = "11100"
	UADiscontinuousUrban = "11210"
	UAFastTransit        = "12210"
	UAGreenUrban         = "14100"
	UAArable             = "21000"
	UAForest             = "31000"
	UAWater              = "50000"
)

// UALabel maps a nomenclature code to its official label.
func UALabel(code string) string {
	switch code {
	case UAContinuousUrban:
		return "Continuous urban fabric (S.L. > 80%)"
	case UADiscontinuousUrban:
		return "Discontinuous dense urban fabric (S.L. 50% - 80%)"
	case UAFastTransit:
		return "Fast transit roads and associated land"
	case UAGreenUrban:
		return "Green urban areas"
	case UAArable:
		return "Arable land (annual crops)"
	case UAForest:
		return "Forests"
	case UAWater:
		return "Water"
	default:
		return "Unknown"
	}
}

// Zone is one Urban-Atlas-like land-use polygon.
type Zone struct {
	ID    int
	Code  string
	Label string
	Geom  geom.Polygon
	// PopDensity is a synthetic inhabitants/km² figure, a thematic
	// attribute for ad-hoc queries.
	PopDensity float64
}

// GenerateUrbanAtlas partitions the region into a cellsX × cellsY coverage
// and assigns each cell a UA class from the terrain and the motorway
// network: cells within corridorWidth of a motorway become fast-transit
// land, canal/water cells become water, the urban core splits into
// continuous/discontinuous fabric and green areas, and the countryside
// splits into arable land and forest by the vegetation noise field.
func GenerateUrbanAtlas(t *Terrain, motorways []geom.LineString, cellsX, cellsY int, seed uint64) []Zone {
	region := t.Region
	const corridorWidth = 120.0
	cw := region.Width() / float64(cellsX)
	ch := region.Height() / float64(cellsY)
	var zones []Zone
	id := 1
	for cy := 0; cy < cellsY; cy++ {
		for cx := 0; cx < cellsX; cx++ {
			env := geom.NewEnvelope(
				region.MinX+float64(cx)*cw, region.MinY+float64(cy)*ch,
				region.MinX+float64(cx+1)*cw, region.MinY+float64(cy+1)*ch,
			)
			centre := env.Center()
			code := t.classifyUACell(centre, motorways, corridorWidth, seed)
			pop := popDensityFor(code, seed, int64(cx), int64(cy))
			zones = append(zones, Zone{
				ID: id, Code: code, Label: UALabel(code),
				Geom: env.ToPolygon(), PopDensity: pop,
			})
			id++
		}
	}
	return zones
}

// classifyUACell picks the UA code of a cell by its centre point.
func (t *Terrain) classifyUACell(c geom.Point, motorways []geom.LineString, corridor float64, seed uint64) string {
	for _, m := range motorways {
		if geom.DWithin(c.X, c.Y, m, corridor) {
			return UAFastTransit
		}
	}
	if t.nearCanal(c.X, c.Y) {
		return UAWater
	}
	if core := t.urbanCore(); core.ContainsPoint(c.X, c.Y) {
		// Denser fabric towards the centre.
		cc := core.Center()
		d := math.Hypot(c.X-cc.X, c.Y-cc.Y)
		r := math.Hypot(core.Width()/2, core.Height()/2)
		switch {
		case d < r*0.4:
			return UAContinuousUrban
		case hashUnit(seed^0x9A4E, int64(c.X), int64(c.Y)) < 0.2:
			return UAGreenUrban
		default:
			return UADiscontinuousUrban
		}
	}
	s := t.At(c.X, c.Y)
	switch s.Class {
	case ClassHighVeg, ClassMedVeg:
		return UAForest
	case ClassWater:
		return UAWater
	default:
		return UAArable
	}
}

// popDensityFor synthesises a plausible population density per class.
func popDensityFor(code string, seed uint64, cx, cy int64) float64 {
	u := hashUnit(seed^0x90B0, cx, cy)
	switch code {
	case UAContinuousUrban:
		return 8000 + u*7000
	case UADiscontinuousUrban:
		return 2500 + u*3000
	case UAGreenUrban:
		return 100 + u*300
	case UAFastTransit:
		return u * 50
	case UAArable:
		return 20 + u*60
	case UAForest:
		return u * 15
	default:
		return 0
	}
}

package synth

import "os"

// statFile returns the size of a file; split out for test reuse.
func statFile(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

package synth

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gisnav/internal/geom"
)

// Tab-separated interchange files for the vector datasets, so the command
// line tools (lasgen, pcquery, pcviz, pcbench) can exchange generated OSM
// and Urban Atlas layers on disk alongside the LAS tiles. WKT carries the
// geometry; tabs never occur in the synthetic names.

// WriteOSMFile writes features as TSV: id, class, name, wkt.
func WriteOSMFile(path string, feats []Feature) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	fmt.Fprintln(bw, "id\tclass\tname\twkt")
	for _, ft := range feats {
		fmt.Fprintf(bw, "%d\t%s\t%s\t%s\n", ft.ID, ft.Class, ft.Name, ft.Geom.WKT())
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadOSMFile parses a TSV feature file.
func ReadOSMFile(path string) ([]Feature, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []Feature
	line := 0
	for sc.Scan() {
		line++
		if line == 1 {
			continue // header
		}
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("synth: %s line %d: want 4 fields, got %d", path, line, len(parts))
		}
		id, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("synth: %s line %d: %w", path, line, err)
		}
		g, err := geom.ParseWKT(parts[3])
		if err != nil {
			return nil, fmt.Errorf("synth: %s line %d: %w", path, line, err)
		}
		out = append(out, Feature{ID: id, Class: parts[1], Name: parts[2], Geom: g})
	}
	return out, sc.Err()
}

// WriteUAFile writes zones as TSV: id, code, pop_density, wkt.
func WriteUAFile(path string, zones []Zone) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	fmt.Fprintln(bw, "id\tcode\tpop_density\twkt")
	for _, z := range zones {
		fmt.Fprintf(bw, "%d\t%s\t%g\t%s\n", z.ID, z.Code, z.PopDensity, z.Geom.WKT())
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadUAFile parses a TSV zone file; labels are rederived from codes.
func ReadUAFile(path string) ([]Zone, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []Zone
	line := 0
	for sc.Scan() {
		line++
		if line == 1 {
			continue
		}
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("synth: %s line %d: want 4 fields, got %d", path, line, len(parts))
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("synth: %s line %d: %w", path, line, err)
		}
		pop, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("synth: %s line %d: %w", path, line, err)
		}
		g, err := geom.ParseWKT(parts[3])
		if err != nil {
			return nil, fmt.Errorf("synth: %s line %d: %w", path, line, err)
		}
		poly, ok := g.(geom.Polygon)
		if !ok {
			return nil, fmt.Errorf("synth: %s line %d: zone geometry must be a polygon", path, line)
		}
		out = append(out, Zone{
			ID: id, Code: parts[1], Label: UALabel(parts[1]),
			PopDensity: pop, Geom: poly,
		})
	}
	return out, sc.Err()
}

package synth

import (
	"fmt"
	"math"

	"gisnav/internal/geom"
)

// OSM-like feature classes emitted by the generator. Road classes follow the
// OSM highway tagging scheme; waterways and POIs get their own classes.
const (
	ClassMotorway    = "motorway"
	ClassPrimary     = "primary"
	ClassSecondary   = "secondary"
	ClassResidential = "residential"
	ClassRiver       = "river"
	ClassCanal       = "canal"
	ClassPOI         = "poi"
)

// Feature is one OSM-like vector feature: a classed, named geometry.
type Feature struct {
	ID    int64
	Class string
	Name  string
	Geom  geom.Geometry
}

// GenerateOSM builds a deterministic road/water/POI network over the region:
// a motorway ring around the urban core with four radial motorways, a
// primary grid, residential in-fill streets, one meandering river, canals
// matching the terrain's canal grid, and labelled POIs.
func GenerateOSM(t *Terrain, seed uint64) []Feature {
	region := t.Region
	rng := NewRNG(seed)
	var out []Feature
	id := int64(1)
	add := func(class, name string, g geom.Geometry) {
		out = append(out, Feature{ID: id, Class: class, Name: name, Geom: g})
		id++
	}

	c := region.Center()
	w, h := region.Width(), region.Height()

	// Motorway ring: an octagon around the urban core.
	ringR := math.Min(w, h) * 0.28
	var ring []geom.Point
	for i := 0; i <= 8; i++ {
		a := 2 * math.Pi * float64(i) / 8
		ring = append(ring, geom.Point{
			X: c.X + ringR*math.Cos(a),
			Y: c.Y + ringR*math.Sin(a),
		})
	}
	add(ClassMotorway, "A10 Ring", geom.LineString{Points: ring})

	// Radial motorways from the ring to the region edges.
	radials := []struct {
		name string
		to   geom.Point
	}{
		{"A1", geom.Point{X: region.MaxX, Y: c.Y}},
		{"A2", geom.Point{X: c.X, Y: region.MinY}},
		{"A4", geom.Point{X: region.MinX, Y: c.Y}},
		{"A8", geom.Point{X: c.X, Y: region.MaxY}},
	}
	for _, r := range radials {
		dir := math.Atan2(r.to.Y-c.Y, r.to.X-c.X)
		from := geom.Point{X: c.X + ringR*math.Cos(dir), Y: c.Y + ringR*math.Sin(dir)}
		add(ClassMotorway, r.name, geom.LineString{Points: []geom.Point{from, r.to}})
	}

	// Primary grid: lines every ~1/8 of the extent across the whole region.
	for i := 1; i < 8; i++ {
		x := region.MinX + w*float64(i)/8
		add(ClassPrimary, fmt.Sprintf("N%d", 200+i), geom.LineString{Points: []geom.Point{
			{X: x, Y: region.MinY}, {X: x, Y: region.MaxY},
		}})
		y := region.MinY + h*float64(i)/8
		add(ClassPrimary, fmt.Sprintf("N%d", 300+i), geom.LineString{Points: []geom.Point{
			{X: region.MinX, Y: y}, {X: region.MaxX, Y: y},
		}})
	}

	// Residential streets: short random segments inside the urban core.
	core := t.urbanCore()
	for i := 0; i < 40; i++ {
		x0 := rng.Range(core.MinX, core.MaxX)
		y0 := rng.Range(core.MinY, core.MaxY)
		length := rng.Range(60, 240)
		var x1, y1 float64
		if rng.Intn(2) == 0 {
			x1, y1 = x0+length, y0
		} else {
			x1, y1 = x0, y0+length
		}
		add(ClassResidential, fmt.Sprintf("Straat %d", i+1), geom.LineString{Points: []geom.Point{
			{X: x0, Y: y0}, {X: x1, Y: y1},
		}})
	}

	// River: meanders west→east, offset by noise.
	var river []geom.Point
	steps := 40
	for i := 0; i <= steps; i++ {
		x := region.MinX + w*float64(i)/float64(steps)
		off := (ValueNoise(seed^0x51BE7, float64(i)/6, 0) - 0.5) * h * 0.25
		river = append(river, geom.Point{X: x, Y: c.Y + off})
	}
	add(ClassRiver, "Oude Rijn", geom.LineString{Points: river})

	// Canals: one line per terrain canal axis.
	s := t.canalSpacing()
	n := 0
	for x := region.MinX; x+canalWidth/2 <= region.MaxX; x += s {
		add(ClassCanal, fmt.Sprintf("Kanaal %c", 'A'+n%26), geom.LineString{Points: []geom.Point{
			{X: x + canalWidth/2, Y: region.MinY}, {X: x + canalWidth/2, Y: region.MaxY},
		}})
		n++
	}
	for y := region.MinY; y+canalWidth/2 <= region.MaxY; y += s {
		add(ClassCanal, fmt.Sprintf("Kanaal %c", 'A'+n%26), geom.LineString{Points: []geom.Point{
			{X: region.MinX, Y: y + canalWidth/2}, {X: region.MaxX, Y: y + canalWidth/2},
		}})
		n++
	}

	// POIs: stations, schools, windmills scattered with urban bias.
	kinds := []string{"station", "school", "windmill", "hospital", "museum"}
	for i := 0; i < 60; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		var x, y float64
		if rng.Float64() < 0.6 {
			x = rng.Range(core.MinX, core.MaxX)
			y = rng.Range(core.MinY, core.MaxY)
		} else {
			x = rng.Range(region.MinX, region.MaxX)
			y = rng.Range(region.MinY, region.MaxY)
		}
		add(ClassPOI, fmt.Sprintf("%s %d", kind, i+1), geom.Point{X: x, Y: y})
	}
	return out
}

// Motorways filters the motorway features out of an OSM set; Urban Atlas
// generation and the scenario-2 queries both need them.
func Motorways(features []Feature) []geom.LineString {
	var out []geom.LineString
	for _, f := range features {
		if f.Class == ClassMotorway {
			if l, ok := f.Geom.(geom.LineString); ok {
				out = append(out, l)
			}
		}
	}
	return out
}

// cancelpoll: block-boundary cancellation polling (ROADMAP, PR 6).
//
// Kernel loops, interpreter arms and refinement must poll the run's
// cancellation token at block boundaries — once per scanChunk/exprChunk/
// refineBlock-sized slice of work — so a fired context stops a scan within
// one block without paying a per-row atomic load. Two failure shapes:
//
//   - missing poll: a block-iteration loop (one that advances by a chunk
//     constant, or carries a faultpoint.Hit block checkpoint) contains no
//     Cancelled() poll on any path through its body;
//   - per-row poll: a Cancelled() call sits unguarded inside a per-element
//     loop (a range over a numeric selection/values slice, or a unit-step
//     index loop) instead of behind a `i%chunk == 0`-style mask or up in
//     the enclosing block loop.
//
// A "poll" is a direct .Cancelled() call or a call to a same-package
// function that (transitively, within the package) polls — the
// groupPassCheckpoint pattern.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CancelPollAnalyzer enforces block-boundary cancellation polling.
var CancelPollAnalyzer = &Analyzer{
	Name: "cancelpoll",
	Doc:  "block loops must poll Run.Cancelled() at block boundaries — never missing, never per row",
	Run:  runCancelPoll,
}

func runCancelPoll(pass *Pass) {
	pollers := packagePollers(pass)
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch loop := n.(type) {
			case *ast.ForStmt:
				checkBlockLoop(pass, pollers, loop, loop.Body, forLoopRefs(loop))
			case *ast.RangeStmt:
				checkBlockLoop(pass, pollers, loop, loop.Body, loop.Body)
			case *ast.CallExpr:
				if isPollCall(pass, pollers, loop) {
					checkPerRowPoll(pass, loop, stack)
				}
			}
			return true
		})
	}
}

// packagePollers computes, to a fixpoint, the package functions that poll
// cancellation (contain a .Cancelled() call directly or call another
// package poller).
func packagePollers(pass *Pass) map[types.Object]bool {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	pollers := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for obj, fd := range decls {
			if pollers[obj] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && isPollCall(pass, pollers, call) {
					found = true
				}
				return !found
			})
			if found {
				pollers[obj] = true
				changed = true
			}
		}
	}
	return pollers
}

// isPollCall reports whether call polls cancellation: x.Cancelled() or a
// call to a known package poller.
func isPollCall(pass *Pass, pollers map[types.Object]bool, call *ast.CallExpr) bool {
	name, isSel := calleeName(call)
	if isSel && name == "Cancelled" {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil && pollers[obj] {
			return true
		}
	}
	return false
}

// forLoopRefs bundles the parts of a ForStmt scanned for chunk-constant
// references (cond, post and body — a loop that advances or bounds itself
// by a chunk constant is a block loop).
func forLoopRefs(loop *ast.ForStmt) ast.Node { return loop }

// checkBlockLoop reports a block loop whose body never polls cancellation.
func checkBlockLoop(pass *Pass, pollers map[types.Object]bool, loop ast.Node, body *ast.BlockStmt, refScope ast.Node) {
	if !isBlockLoop(pass, refScope) {
		return
	}
	polled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if polled {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested closure's poll is not this loop's poll
		}
		if call, ok := n.(*ast.CallExpr); ok && isPollCall(pass, pollers, call) {
			polled = true
		}
		return !polled
	})
	if !polled {
		pass.Reportf(loop.Pos(),
			"block loop does not poll cancellation; check Run.Cancelled() (or the KernelArgs token) once per block")
	}
}

// isBlockLoop reports whether the loop is a block-iteration loop: it
// references a chunk/block size constant (scanChunk, exprChunk,
// refineBlock) outside nested closures, or carries a faultpoint.Hit block
// checkpoint.
func isBlockLoop(pass *Pass, loop ast.Node) bool {
	block := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if block {
			return false
		}
		switch t := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if !isChunkConstName(t.Name) {
				return true
			}
			if obj, ok := pass.TypesInfo.Uses[t]; ok {
				if _, isConst := obj.(*types.Const); isConst {
					block = true
				}
			}
		case *ast.CallExpr:
			if name, isSel := calleeName(t); isSel && name == "Hit" {
				if isPackageCallee(pass, t) {
					block = true
				}
			}
		}
		return !block
	})
	return block
}

// checkPerRowPoll reports a poll that runs per element of a row-scale loop
// without a block-counter guard.
func checkPerRowPoll(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	// Find the innermost enclosing loop, stopping at closure boundaries,
	// and remember the path for guard detection.
	loopIdx := -1
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			i = -1
		case *ast.ForStmt, *ast.RangeStmt:
			loopIdx = i
		}
		if loopIdx >= 0 {
			break
		}
	}
	if loopIdx < 0 {
		return
	}
	loop := stack[loopIdx]
	if !perElementLoop(pass, loop) {
		return
	}
	// Guarded: any if-condition between the loop and the poll contains a
	// modulo expression (the `i%scanChunk == 0` mask).
	for i := loopIdx + 1; i < len(stack); i++ {
		if ifs, ok := stack[i].(*ast.IfStmt); ok && containsModulo(ifs.Cond) {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"cancellation polled per row; poll at block boundaries instead (mask with a chunk counter or hoist into the block loop)")
}

// perElementLoop reports whether loop visits individual rows/values: a
// range over a slice of basic elements, or a unit-step index loop whose
// induction variable indexes a slice in the body.
func perElementLoop(pass *Pass, loop ast.Node) bool {
	switch l := loop.(type) {
	case *ast.RangeStmt:
		t := pass.TypesInfo.TypeOf(l.X)
		if t == nil {
			return false
		}
		if s, ok := t.Underlying().(*types.Slice); ok {
			return basicKind(s.Elem()) != types.Invalid
		}
		return false
	case *ast.ForStmt:
		inc, ok := l.Post.(*ast.IncDecStmt)
		if !ok || inc.Tok != token.INC {
			return false
		}
		indVar, ok := inc.X.(*ast.Ident)
		if !ok {
			return false
		}
		indexes := false
		ast.Inspect(l.Body, func(n ast.Node) bool {
			if indexes {
				return false
			}
			if ix, ok := n.(*ast.IndexExpr); ok {
				if id, ok := ix.Index.(*ast.Ident); ok && id.Name == indVar.Name {
					indexes = true
				}
			}
			// Unit-step loops whose variable feeds row accessors
			// (col.Value(i)) count as per-element too.
			if c, ok := n.(*ast.CallExpr); ok {
				for _, arg := range c.Args {
					if id, ok := arg.(*ast.Ident); ok && id.Name == indVar.Name {
						indexes = true
					}
				}
			}
			return !indexes
		})
		return indexes
	}
	return false
}

// containsModulo reports whether expr contains a % operation.
func containsModulo(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.REM {
			found = true
		}
		return !found
	})
	return found
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestAllAnalyzers(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("All() = %d analyzers, want 6", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName(nosuch) = non-nil")
	}
}

// TestParseIgnores pins directive parsing: standalone directives target the
// next line, trailing directives their own line, and directives without a
// reason are malformed (reported, suppressing nothing).
func TestParseIgnores(t *testing.T) {
	src := `package p

//lint:ignore constslot standalone directives target the next line
var a int

var b int //lint:ignore releaselist trailing directives target their own line

//lint:ignore epochguard
var c int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var malformed []string
	dirs := parseIgnores(fset, f, func(pos token.Pos, msg string) {
		malformed = append(malformed, msg)
	})
	if len(dirs) != 2 {
		t.Fatalf("parseIgnores: %d well-formed directives, want 2", len(dirs))
	}
	if dirs[0].analyzer != "constslot" || dirs[0].line != 4 {
		t.Errorf("standalone directive: analyzer=%q line=%d, want constslot line 4", dirs[0].analyzer, dirs[0].line)
	}
	if dirs[1].analyzer != "releaselist" || dirs[1].line != 6 {
		t.Errorf("trailing directive: analyzer=%q line=%d, want releaselist line 6", dirs[1].analyzer, dirs[1].line)
	}
	if len(malformed) != 1 || !strings.Contains(malformed[0], "malformed") {
		t.Errorf("malformed directives = %v, want one malformed report", malformed)
	}
}

// TestApplyIgnoresExactlyOne pins the scalpel semantics at the unit level:
// with two identical diagnostics on a line and one directive, exactly one
// survives.
func TestApplyIgnoresExactlyOne(t *testing.T) {
	src := `package p

//lint:ignore constslot reason
var a int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pos := fset.Position(f.Decls[0].Pos()) // line 4
	diags := []Diagnostic{
		{Analyzer: "constslot", Pos: pos, Message: "first"},
		{Analyzer: "constslot", Pos: pos, Message: "second"},
		{Analyzer: "releaselist", Pos: pos, Message: "other analyzer"},
	}
	kept := applyIgnores(fset, []*ast.File{f}, diags)
	if len(kept) != 2 {
		t.Fatalf("applyIgnores kept %d diagnostics, want 2 (one suppressed): %v", len(kept), kept)
	}
	for _, d := range kept {
		if d.Message == "first" {
			t.Error("directive suppressed the wrong diagnostic order; 'first' should be consumed")
		}
	}
}

// Shared AST/type helpers for the analyzers.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// inspectWithStack walks every node under root, invoking fn with the node
// and the stack of its ancestors (outermost first, not including the node
// itself). Returning false from fn prunes the subtree.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// exprPath flattens a chain of identifiers and field selectors into a
// dotted path ("g.table", "run"), or "" for expressions that are not a
// plain path. Slice/index operations are looked through, so g.table[:n]
// and g.table mean the same storage location for tracking purposes.
func exprPath(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		base := exprPath(t.X)
		if base == "" {
			return ""
		}
		return base + "." + t.Sel.Name
	case *ast.SliceExpr:
		return exprPath(t.X)
	case *ast.ParenExpr:
		return exprPath(t.X)
	}
	return ""
}

// calleeName returns the bare name of a call's function: "f" for f(...),
// "m" for x.m(...) — and whether the callee is a method-style selector.
func calleeName(call *ast.CallExpr) (name string, isSelector bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name, false
	case *ast.SelectorExpr:
		return fn.Sel.Name, true
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name, false
		}
	case *ast.IndexListExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name, false
		}
	}
	return "", false
}

// namedTypeName returns the name of t's named type, looking through
// pointers and aliases; "" when t has no name.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := types.Unalias(t).(type) {
	case *types.Named:
		return n.Obj().Name()
	}
	return ""
}

// funcName returns a readable name for a function declaration.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return namedFieldType(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// namedFieldType renders the bare type name of a receiver/field type
// expression ("Run" for *Run, "Run[T]" collapses to "Run").
func namedFieldType(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return namedFieldType(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.IndexExpr:
		return namedFieldType(t.X)
	case *ast.IndexListExpr:
		return namedFieldType(t.X)
	}
	return ""
}

// containsName reports whether s contains sub, ignoring case.
func containsName(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), strings.ToLower(sub))
}

// isChunkConstName reports whether an identifier names a block/chunk size
// constant (scanChunk, exprChunk, refineBlock, ...).
func isChunkConstName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasSuffix(lower, "chunk") || strings.HasSuffix(lower, "block")
}

// typeIsSlice reports whether t's underlying type is a slice.
func typeIsSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// typeIsMap reports whether t's underlying type is a map.
func typeIsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// basicKind returns the basic kind of t's underlying type, or
// types.Invalid when t is not basic.
func basicKind(t types.Type) types.BasicKind {
	if t == nil {
		return types.Invalid
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Kind()
	}
	return types.Invalid
}

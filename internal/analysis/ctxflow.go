// ctxflow: request deadlines must reach the executor (ROADMAP, PR 9).
//
// The serving layer's whole deadline story — client timeout clamped into a
// request context, EWMA doomed-deadline shedding at admission, drain
// cancellation through the run contexts — only works if HTTP handlers run
// queries through the *Context executor variants. A handler that calls
// Executor.Query or PreparedQuery.Run instead silently detaches the query
// from its request: the client can disconnect, the deadline can pass, the
// drain can fire, and the scan keeps running with an admission slot held.
//
// The check is example-driven like the rest of the suite: a "handler" is
// any function or closure with a *Request-typed parameter (the net/http
// handler shape), and inside one — including closures it spawns — every
// call to a context-less query method on an Executor or PreparedQuery
// receiver is flagged with its *Context replacement. Non-handler code
// (REPLs, benchmarks, tests) may use the plain variants freely.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlowAnalyzer enforces context-threaded query execution in handlers.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "HTTP handlers must run queries through the *Context executor variants so deadlines and drain cancellation propagate",
	Run:  runCtxFlow,
}

// ctxlessQueryMethods maps receiver type → context-less method → the
// *Context variant a handler must use instead.
var ctxlessQueryMethods = map[string]map[string]string{
	"Executor": {
		"Query":         "QueryContext",
		"QueryUntraced": "QueryUntracedContext",
	},
	"PreparedQuery": {
		"Run":       "RunContext",
		"RunTraced": "RunContext",
	},
}

func runCtxFlow(pass *Pass) {
	// Handlers can nest (a handler closure inside a handler method), so
	// bodies are scanned wherever they appear and duplicate findings are
	// collapsed by position.
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body != nil && isHandlerFuncType(pass, ft) {
				checkHandlerBody(pass, body, reported)
			}
			return true
		})
	}
}

// isHandlerFuncType reports whether the signature carries a *Request
// parameter — the net/http handler shape (http.HandlerFunc itself, or a
// helper a handler delegates the request to).
func isHandlerFuncType(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, fld := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(fld.Type)
		if t == nil {
			continue
		}
		ptr, ok := t.Underlying().(*types.Pointer)
		if !ok {
			continue
		}
		if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Name() == "Request" {
			return true
		}
	}
	return false
}

// checkHandlerBody flags every context-less query call in the body,
// descending into nested closures: a goroutine spawned by a handler is
// still request-scoped work.
func checkHandlerBody(pass *Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || reported[call.Pos()] {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := namedTypeName(pass.TypesInfo.TypeOf(sel.X))
		variants, ok := ctxlessQueryMethods[recv]
		if !ok {
			return true
		}
		if want, ok := variants[sel.Sel.Name]; ok {
			reported[call.Pos()] = true
			pass.Reportf(call.Pos(),
				"handler calls %s.%s without a context; use %s so the request deadline and drain cancellation propagate",
				recv, sel.Sel.Name, want)
		}
		return true
	})
}

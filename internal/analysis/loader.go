// Package loading for the analyzers: parse + type-check module packages
// from source using only the standard library (go/parser, go/types and the
// "source" importer for the standard library). No go/packages, no network,
// no export data — the suite must run in the same offline container the
// build runs in.
//
// Concurrency contract: a Loader is safe for concurrent use. All loading
// and type-checking serialises behind one mutex (the source importer and
// the type-checker share mutable caches), while cache hits return without
// re-checking — so N goroutines analysing N packages contend only on the
// first load of each package. The -race test in loader_test.go pins this.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("gisnav/internal/engine"), or the directory
	// for packages loaded by directory (testdata).
	Path string
	// Dir is the directory holding the package's files.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and caches type-checked packages of one module.
type Loader struct {
	// ModuleRoot is the directory containing go.mod; ModulePath its module
	// path. Both are derived by NewLoader.
	ModuleRoot string
	ModulePath string

	fset *token.FileSet
	std  types.Importer

	mu      sync.Mutex
	pkgs    map[string]*Package
	errs    map[string]error
	loading map[string]bool
	ctxt    build.Context
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctxt := build.Default
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		errs:       map[string]error{},
		loading:    map[string]bool{},
		ctxt:       ctxt,
	}, nil
}

// Fset exposes the loader's file set (shared across all loaded packages).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModuleRoot walks up from dir to the directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load returns the type-checked package for an import path inside the
// module (or, via LoadDir, a directory). Results — including failures —
// are cached.
func (l *Loader) Load(path string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loadLocked(path)
}

// LoadDir loads the package in an arbitrary directory (testdata packages
// that live outside the module's build graph).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loadDirLocked(abs, abs)
}

// loadLocked resolves an import path to its directory and loads it.
// Callers hold l.mu; recursive imports re-enter on the same goroutine
// without re-locking.
func (l *Loader) loadLocked(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	dir, ok := l.dirForImport(path)
	if !ok {
		return nil, fmt.Errorf("analysis: import %q is outside module %s", path, l.ModulePath)
	}
	return l.loadDirLocked(path, dir)
}

// dirForImport maps a module-internal import path to its directory.
func (l *Loader) dirForImport(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// loadDirLocked parses and type-checks the package in dir, caching under
// key. Test files (_test.go) and files excluded by build constraints are
// skipped — the analyzers enforce production invariants on the default
// build graph.
func (l *Loader) loadDirLocked(key, dir string) (*Package, error) {
	if l.loading[key] {
		err := fmt.Errorf("analysis: import cycle through %q", key)
		l.errs[key] = err
		return nil, err
	}
	l.loading[key] = true
	defer delete(l.loading, key)

	pkg, err := l.parseAndCheck(key, dir)
	if err != nil {
		l.errs[key] = err
		return nil, err
	}
	l.pkgs[key] = pkg
	return pkg, nil
}

// parseAndCheck does the real work of loadDirLocked.
func (l *Loader) parseAndCheck(key, dir string) (*Package, error) {
	names, err := l.sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(key, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", key, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", key, err)
	}
	return &Package{Path: key, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// sourceFiles lists the buildable non-test .go files of dir, honouring
// build constraints under the default tag set (so faultinject-tagged files
// are analysed in their default, disarmed shape).
func (l *Loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := l.ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// moduleImporter routes module-internal imports through the loader (from
// source, recursively) and everything else to the standard library's
// source importer. The loader's mutex is already held when the
// type-checker calls Import, so recursion stays on one goroutine.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := m.l.dirForImport(path); ok {
		pkg, err := m.l.loadLocked(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.l.std.Import(path)
}

// Expand resolves command-line patterns to module import paths. Supported
// forms: "./..." (every package under the current directory), "dir/...",
// and plain directory or import paths. Directories named testdata, vendor
// or starting with "." or "_" are skipped, as the go tool does.
func (l *Loader) Expand(cwd string, patterns []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
			if base == "." || base == "" {
				base = "."
			}
		} else if pat == "..." {
			base, recursive = ".", true
		}
		dir := base
		if !filepath.IsAbs(dir) {
			if strings.HasPrefix(base, l.ModulePath) {
				d, ok := l.dirForImport(base)
				if !ok {
					return nil, fmt.Errorf("analysis: cannot resolve pattern %q", pat)
				}
				dir = d
			} else {
				dir = filepath.Join(cwd, base)
			}
		}
		if !recursive {
			if p, ok := l.importForDir(dir); ok {
				add(p)
				continue
			}
			return nil, fmt.Errorf("analysis: %q is outside module %s", pat, l.ModulePath)
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			files, ferr := l.sourceFiles(path)
			if ferr != nil || len(files) == 0 {
				return nil
			}
			if p, ok := l.importForDir(path); ok {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// importForDir maps a directory inside the module back to its import path.
func (l *Loader) importForDir(dir string) (string, bool) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", false
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	if rel == "." {
		return l.ModulePath, true
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), true
}
